(* Stabilizing token rings (Section 7.1 of the paper).

   Certifies the paper's layered design with Theorem 3 (and shows why the
   literal reading of its antecedents fails), then runs Dijkstra's
   classical wrap-around variant: token circulation, fault injection, and
   recovery under different daemons.

   Run with: dune exec examples/token_ring_demo.exe *)

module State = Guarded.State
module Token_ring = Protocols.Token_ring
module Dijkstra_ring = Protocols.Dijkstra_ring

let () =
  (* The paper's derivation, machine-checked. *)
  let tr = Token_ring.make ~nodes:4 ~k:5 in
  Format.printf "The paper's program (bounded window):@.%a@.@."
    Guarded.Program.pp (Token_ring.combined tr);
  let engine = Explore.Engine.create (Token_ring.env tr) in
  Format.printf "%a@." Nonmask.Certify.pp (Token_ring.certificate ~engine tr);
  let strict = Token_ring.certificate_strict ~engine tr in
  Format.printf
    "Literal reading of Theorem 3 valid? %b — the token-passing closure \
     action violates second-layer constraints; the paper's own remarks \
     resolve this (see DESIGN.md).@.@."
    (Nonmask.Certify.ok strict);

  (* Dijkstra's K-state ring: watch the privileges. *)
  let n = 6 in
  let dr = Dijkstra_ring.make ~nodes:n ~k:(n + 1) in
  let env = Dijkstra_ring.env dr in
  let cp = Guarded.Compile.program (Dijkstra_ring.program dr) in
  let pp_ring ppf s =
    let privileged = Dijkstra_ring.privileged dr s in
    List.iter
      (fun j ->
        Format.fprintf ppf "%s%d%s "
          (if List.mem j privileged then "[" else " ")
          (State.get s (Dijkstra_ring.x dr j))
          (if List.mem j privileged then "]" else " "))
      (Topology.Ring.nodes (Dijkstra_ring.ring dr))
  in
  Format.printf "Dijkstra ring, %d nodes (privileged in brackets):@." n;
  let daemon = Sim.Daemon.round_robin () in
  let state = ref (Dijkstra_ring.all_zero dr) in
  for step = 0 to 9 do
    Format.printf "  %2d: %a@." step pp_ring !state;
    let o =
      Sim.Runner.run ~max_steps:1 ~daemon ~init:!state ~stop:(fun _ -> false)
        cp
    in
    state := o.Sim.Runner.final
  done;

  (* Inject a fault that creates several privileges, then recover. *)
  let rng = Prng.create 2026 in
  let fault = Sim.Fault.corrupt env ~k:3 in
  fault.Sim.Fault.inject rng !state;
  Format.printf "@.After corrupting 3 nodes: %a (%d privileges)@." pp_ring
    !state
    (Dijkstra_ring.privilege_count dr !state);
  let steps = ref 0 in
  while not (Dijkstra_ring.invariant dr !state) && !steps < 100 do
    let o =
      Sim.Runner.run ~max_steps:1
        ~daemon:(Sim.Daemon.random rng)
        ~init:!state ~stop:(fun _ -> false) cp
    in
    state := o.Sim.Runner.final;
    incr steps;
    Format.printf "  %2d: %a (%d privileges)@." !steps pp_ring !state
      (Dijkstra_ring.privilege_count dr !state)
  done;
  Format.printf "Back to exactly one privilege after %d steps.@.@." !steps;

  (* Daemon comparison on recovery times. *)
  Format.printf "Recovery steps from 3-node corruption (500 trials each):@.";
  List.iter
    (fun (name, daemon) ->
      let result =
        Sim.Experiment.convergence_trials ~rng:(Prng.create 7) ~trials:500
          ~daemon
          ~prepare:(fun r ->
            let s = Dijkstra_ring.all_zero dr in
            fault.Sim.Fault.inject r s;
            s)
          ~stop:(fun s -> Dijkstra_ring.invariant dr s)
          cp
      in
      Format.printf "  %-14s %a@." name Sim.Experiment.pp_result result)
    [
      ("random", fun r -> Sim.Daemon.random r);
      ("round-robin", fun _ -> Sim.Daemon.round_robin ());
      ("first-enabled", fun _ -> Sim.Daemon.first_enabled);
      ( "adversarial",
        fun _ ->
          Sim.Daemon.greedy ~name:"max-privileges" (fun s ->
              Dijkstra_ring.privilege_count dr s) );
    ]
