(* Nonmasking fault-tolerant atomic actions (the paper's third
   illustration, reconstructed — see DESIGN.md): a tree-structured atomic
   commitment where corrupted decisions and operation flags heal until the
   whole tree agrees with the root and only commit-justified effects
   remain.

   Run with: dune exec examples/atomic_actions_demo.exe *)

module Tree = Topology.Tree
module State = Guarded.State
module Atomic = Protocols.Atomic_action

let pp_tree a ppf s =
  List.iter
    (fun j ->
      let d = State.get s (Atomic.decision a j) in
      let op = State.get s (Atomic.operation a j) in
      Format.fprintf ppf "%s%s "
        (if d = Atomic.commit then "C" else "A")
        (if op = Atomic.done_ then "!" else "."))
    (Tree.nodes (Atomic.tree a))

let () =
  let tree = Tree.balanced ~arity:2 7 in
  let a = Atomic.make tree in
  let env = Atomic.env a in
  Format.printf "Atomic commitment on a 7-node binary tree.@.";
  Format.printf "Constraint graph (out-tree -> Theorem 1):@.%a@."
    Nonmask.Cgraph.pp (Atomic.cgraph a);

  let engine = Explore.Engine.create env in
  Format.printf "%a@." Nonmask.Certify.pp (Atomic.certificate ~engine a);

  let cp = Guarded.Compile.program (Atomic.program a) in

  (* Commit: every process eventually performs its operation. *)
  let init = Atomic.initial a ~decision:Atomic.commit in
  let outcome =
    Sim.Runner.run
      ~daemon:(Sim.Daemon.round_robin ())
      ~init
      ~stop:(fun s -> Atomic.all_done a s)
      cp
  in
  Format.printf
    "@.Commit decided at the root: all %d operations executed in %d steps \
     (C=commit, !=done).@.  final: %a@."
    (Tree.size tree) outcome.Sim.Runner.steps (pp_tree a)
    outcome.Sim.Runner.final;

  (* Abort with corruption: stray "done" flags and flipped decisions are
     rolled back until nothing executed. *)
  let rng = Prng.create 5 in
  let init = Atomic.initial a ~decision:Atomic.abort in
  (Sim.Fault.corrupt env ~k:5).Sim.Fault.inject rng init;
  State.set init (Atomic.decision a (Tree.root tree)) Atomic.abort;
  Format.printf "@.Abort decided, then 5 variables corrupted: %a@."
    (pp_tree a) init;
  let outcome =
    Sim.Runner.run ~record_trace:true
      ~daemon:(Sim.Daemon.random rng)
      ~init
      ~stop:(fun s -> Atomic.invariant a s && Atomic.none_done a s)
      cp
  in
  (match outcome.Sim.Runner.trace with
  | Some t ->
      List.iteri
        (fun i s -> Format.printf "  %2d: %a@." i (pp_tree a) s)
        (Sim.Trace.states t)
  | None -> ());
  Format.printf
    "All-or-nothing restored in %d steps: no operation survived the abort.@."
    outcome.Sim.Runner.steps;

  (* The atomicity claim: despite k corruptions, the outcome is always
     all-or-nothing once the invariant is re-established. *)
  let trials = 1000 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let init = Atomic.initial a ~decision:Atomic.commit in
    (Sim.Fault.corrupt env ~k:4).Sim.Fault.inject rng init;
    State.set init (Atomic.decision a (Tree.root tree)) Atomic.commit;
    let o =
      Sim.Runner.run
        ~daemon:(Sim.Daemon.random rng)
        ~init
        ~stop:(fun s -> Atomic.invariant a s && Atomic.all_done a s)
        cp
    in
    if Sim.Runner.converged o then incr ok
  done;
  Format.printf
    "@.%d/%d corrupted commit runs converged to everyone-executed.@." !ok
    trials
