(* Stabilizing diffusing computation (Section 5.1 of the paper) on a
   binary tree: certify the design with Theorem 1, watch a healthy wave,
   then corrupt every node and watch the protocol heal itself.

   Run with: dune exec examples/diffusing_demo.exe *)

module Tree = Topology.Tree
module State = Guarded.State
module Diffusing = Protocols.Diffusing

let pp_wave d ppf s =
  let tree = Diffusing.tree d in
  List.iter
    (fun j ->
      let c = State.get s (Diffusing.color d j) in
      let sn = State.get s (Diffusing.session d j) in
      Format.fprintf ppf "%s%d " (if c = Diffusing.red then "R" else "g") sn)
    (Tree.nodes tree)

let () =
  let tree = Tree.balanced ~arity:2 7 in
  let d = Diffusing.make tree in
  let env = Diffusing.env d in
  Format.printf "Tree: %a@." Tree.pp tree;
  Format.printf "The paper's program:@.%a@.@." Guarded.Program.pp
    (Diffusing.combined d);

  (* Theorem 1 certificate (exhaustive over all 4^7 = 16384 states). *)
  let engine = Explore.Engine.create env in
  let cert = Diffusing.certificate ~engine d in
  Format.printf "%a@." Nonmask.Certify.pp cert;

  (* A healthy wave from all-green: red propagates to the leaves and green
     reflects back to the root. *)
  let cp = Guarded.Compile.program (Diffusing.combined d) in
  let daemon = Sim.Daemon.round_robin () in
  let init = Diffusing.all_green d in
  let root = Tree.root tree in
  let sn0 = State.get init (Diffusing.session d root) in
  Format.printf "@.Healthy wave (node colors, g=green R=red, with session \
                 bits):@.";
  let state = ref init in
  let steps = ref 0 in
  let finished s =
    State.get s (Diffusing.color d root) = Diffusing.green
    && State.get s (Diffusing.session d root) <> sn0
  in
  while not (finished !state) && !steps < 100 do
    Format.printf "  %2d: %a@." !steps (pp_wave d) !state;
    let o =
      Sim.Runner.run ~max_steps:1 ~daemon ~init:!state ~stop:(fun _ -> false)
        cp
    in
    state := o.Sim.Runner.final;
    incr steps
  done;
  Format.printf "  %2d: %a  <- wave complete@." !steps (pp_wave d) !state;

  (* Catastrophic corruption: scramble every node, then watch recovery. *)
  let rng = Prng.create 7 in
  let fault = Sim.Fault.scramble env in
  let init = Diffusing.all_green d in
  fault.Sim.Fault.inject rng init;
  Format.printf "@.Scrambled state : %a (%d constraints violated)@."
    (pp_wave d) init (Diffusing.violated d init);
  let outcome =
    Sim.Runner.run ~record_trace:true
      ~daemon:(Sim.Daemon.random rng)
      ~init
      ~stop:(fun s -> Diffusing.invariant d s)
      cp
  in
  (match outcome.Sim.Runner.trace with
  | Some t ->
      List.iteri
        (fun i s ->
          Format.printf "  %2d: %a (%d violated)@." i (pp_wave d) s
            (Diffusing.violated d s))
        (Sim.Trace.states t)
  | None -> ());
  Format.printf "Recovered to the invariant in %d steps.@."
    outcome.Sim.Runner.steps;

  (* Batch statistics across many scrambles. *)
  let result =
    Sim.Experiment.convergence_trials ~rng:(Prng.create 99) ~trials:500
      ~daemon:(fun r -> Sim.Daemon.random r)
      ~prepare:(fun r ->
        let s = Diffusing.all_green d in
        fault.Sim.Fault.inject r s;
        s)
      ~stop:(fun s -> Diffusing.invariant d s)
      cp
  in
  Format.printf "@.500 scrambled trials: %a@." Sim.Experiment.pp_result result
