(* Quickstart: design a nonmasking fault-tolerant program from scratch with
   the paper's recipe (Sections 3-5), using the running example of
   Section 4: variables x, y, z with the constraints {x <> y, x <= z}.

   Steps:
     1. declare variables over finite domains;
     2. state the constraints whose conjunction is the invariant S;
     3. design one convergence action per constraint;
     4. build the constraint graph and let Theorem 1 certify the design;
     5. model-check convergence directly, and watch a recovery run.

   Run with: dune exec examples/quickstart.exe *)

module Env = Guarded.Env
module Domain = Guarded.Domain
module State = Guarded.State
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program

let () =
  (* 1. Variables. *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 4) in
  let y = Env.fresh env "y" (Domain.range 0 5) in
  let z = Env.fresh env "z" (Domain.range 0 4) in

  (* 2. Constraints of the invariant S = (x <> y) /\ (x <= z). *)
  let c_ne = Expr.(Nonmask.Constr.make ~name:"x<>y" (var x <> var y)) in
  let c_le = Expr.(Nonmask.Constr.make ~name:"x<=z" (var x <= var z)) in
  let invariant = Nonmask.Constr.conj [ c_ne; c_le ] in

  (* 3. One convergence action per constraint. Establish x <> y by bumping
     y; establish x <= z by raising z: each action can check and fix its
     constraint on its own. *)
  let fix_ne =
    Nonmask.Design.convergence_action ~name:"bump-y" c_ne
      Expr.[ (y, var y + int 1) ]
  in
  let fix_le =
    Nonmask.Design.convergence_action ~name:"raise-z" c_le
      Expr.[ (z, var x) ]
  in

  (* The candidate triple: no closure actions in this tiny example, the
     invariant S, and fault span T = true (any state corruption). *)
  let spec =
    Nonmask.Spec.make ~name:"quickstart"
      ~program:(Program.make ~name:"quickstart" env [])
      ~invariant ()
  in

  (* 4. Constraint graph: nodes partition the variables; each action's edge
     is derived from its read/write sets. Here: {x} -> {y}, {x} -> {z}. *)
  let cgraph =
    Nonmask.Cgraph.build_exn
      ~nodes:
        [
          ("x", Guarded.Var.Set.singleton x);
          ("y", Guarded.Var.Set.singleton y);
          ("z", Guarded.Var.Set.singleton z);
        ]
      ~pairs:
        [
          { Nonmask.Cgraph.constr = c_ne; action = fix_ne };
          { Nonmask.Cgraph.constr = c_le; action = fix_le };
        ]
  in
  Format.printf "Constraint graph:@.%a@." Nonmask.Cgraph.pp cgraph;

  (* 5. Certify with Theorem 1 (the graph is an out-tree rooted at {x}). *)
  let engine = Explore.Engine.create env in
  let cert = Nonmask.Theorems.validate_theorem1 ~engine ~spec ~cgraph in
  Format.printf "%a@." Nonmask.Certify.pp cert;

  (* Cross-check the theorem's consequent by exhaustive model checking. *)
  let program = Nonmask.Theorems.augmented_program spec [ cgraph ] in
  let cp = Guarded.Compile.program program in
  let inv = Guarded.Compile.pred invariant in
  (match
     Explore.Convergence.check_unfair engine cp ~from:Explore.Engine.All
       ~target:inv
   with
  | Ok { region_states; worst_case_steps; _ } ->
      Format.printf
        "Model checker: converges from all %d states (%d outside S, worst \
         case %s steps), even without fairness.@."
        (Explore.Space.size (Explore.Engine.space engine))
        region_states
        (match worst_case_steps with Some w -> string_of_int w | None -> "-")
  | Error f ->
      Format.printf "Model checker found a failure: %a@."
        (Explore.Convergence.pp_failure env)
        f);

  (* Watch one recovery: corrupt the state, run, print the trace. *)
  let init = State.of_list env [ (x, 3); (y, 3); (z, 1) ] in
  Format.printf "@.Faulty start: %a@." (State.pp env) init;
  let outcome =
    Sim.Runner.run ~record_trace:true
      ~daemon:(Sim.Daemon.random (Prng.create 42))
      ~init ~stop:inv
      (Guarded.Compile.program program)
  in
  (match outcome.Sim.Runner.trace with
  | Some trace -> Format.printf "%a" (Sim.Trace.pp env) trace
  | None -> ());
  Format.printf "Recovered in %d steps: %a@." outcome.Sim.Runner.steps
    (State.pp env) outcome.Sim.Runner.final
