(* The serve subsystem: scheduler fairness and bounds, cache LRU
   behavior, wire-protocol parsing, cache-key semantics, and a live
   in-process daemon driven over TCP — concurrent clients, byte-stable
   hot/cold replies, cache hits that never re-explore, hostile inputs
   that degrade in-protocol instead of killing the daemon, and drain. *)

module Json = Obs.Json
module Sched = Serve.Sched
module Cache = Serve.Cache
module Proto = Serve.Proto
module Job = Serve.Job
module Server = Serve.Server
module Client = Serve.Client

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- scheduler ------------------------------------------------------- *)

let test_sched_round_robin () =
  let s = Sched.create ~cap:16 in
  (* client 1 floods; clients 2 and 3 each submit one job *)
  List.iter
    (fun (c, j) -> checkb "submitted" true (Sched.submit s ~client:c j = `Ok))
    [ (1, "1a"); (1, "1b"); (1, "1c"); (2, "2a"); (3, "3a") ];
  let order = List.init 5 (fun _ -> Option.get (Sched.take s)) in
  (* round-robin: the flooder gets exactly one slot per turn *)
  check
    Alcotest.(list string)
    "fair interleaving"
    [ "1a"; "2a"; "3a"; "1b"; "1c" ]
    order;
  checki "drained" 0 (Sched.pending s)

let test_sched_bounds_and_close () =
  let s = Sched.create ~cap:2 in
  checkb "ok 1" true (Sched.submit s ~client:7 "a" = `Ok);
  checkb "ok 2" true (Sched.submit s ~client:7 "b" = `Ok);
  checkb "full" true (Sched.submit s ~client:7 "c" = `Full);
  (* other clients are not affected by client 7's full queue *)
  checkb "other client ok" true (Sched.submit s ~client:8 "d" = `Ok);
  Sched.close s;
  checkb "closed" true (Sched.submit s ~client:9 "e" = `Closed);
  (* close drains: queued jobs still come out, then None *)
  let drained = List.init 3 (fun _ -> Sched.take s) in
  checkb "drained all" true
    (List.for_all Option.is_some drained);
  checkb "then empty" true (Sched.take s = None)

let test_sched_blocking_take () =
  let s = Sched.create ~cap:4 in
  let got = ref None in
  let th =
    Thread.create
      (fun () ->
        got := Sched.take s)
      ()
  in
  Thread.delay 0.05;
  checkb "taker still blocked" true (!got = None);
  checkb "submit wakes" true (Sched.submit s ~client:1 "x" = `Ok);
  Thread.join th;
  check Alcotest.(option string) "woken with job" (Some "x") !got

(* --- cache ----------------------------------------------------------- *)

let test_cache_lru () =
  let c = Cache.create ~entries:2 in
  checkb "miss" true (Cache.find c "a" = None);
  Cache.store c "a" (Json.Int 1);
  Cache.store c "b" (Json.Int 2);
  checkb "hit a" true (Cache.find c "a" = Some (Json.Int 1));
  (* a is now most recent; storing c evicts b *)
  Cache.store c "c" (Json.Int 3);
  checkb "b evicted" true (Cache.find c "b" = None);
  checkb "a survives" true (Cache.find c "a" = Some (Json.Int 1));
  checkb "c present" true (Cache.find c "c" = Some (Json.Int 3));
  checki "size" 2 (Cache.size c);
  checki "hits" 3 (Cache.hits c);
  checki "misses" 2 (Cache.misses c)

(* --- protocol -------------------------------------------------------- *)

let test_proto_parse () =
  (match Proto.parse_request {|{"id": 7, "op": "ping"}|} with
  | Ok r ->
      checkb "id echoed" true (r.Proto.id = Json.Int 7);
      checkb "op" true (r.Proto.op = Proto.Ping)
  | Error _ -> Alcotest.fail "ping request rejected");
  let code line =
    match Proto.parse_request line with
    | Ok _ -> "ok"
    | Error (c, _) -> Proto.error_code_name c
  in
  checks "malformed json" "bad-json" (code "{nope");
  checks "non-object" "bad-json" (code "[1,2]");
  checks "unknown field" "bad-request" (code {|{"op":"ping","zap":1}|});
  checks "missing op" "bad-request" (code {|{"id":1}|});
  checks "unknown op" "bad-request" (code {|{"op":"explode"}|});
  checks "non-string model" "bad-request" (code {|{"op":"check","model":3}|});
  checks "non-object options" "bad-request"
    (code {|{"op":"check","options":7}|})

(* --- job: cache-key semantics ---------------------------------------- *)

let model_text =
  {|model demo

var x : 0..3
var y : 0..3

action dx: x > 0 -> x := x - 1
action dy: y > 0 -> y := y - 1

invariant x = 0 /\ y = 0
|}

(* The same model, spelled differently: comments, whitespace — the
   canonical digest must not see the difference. *)
let model_text_noisy =
  {|(* a comment *)
model demo

var x : 0..3

var y : 0..3

action dx: x > 0 -> x := x - 1
action dy: y > 0 -> y := y - 1
invariant x = 0 /\ y = 0
|}

let prepare_exn ?(op = "check") ?(model = Some model_text) options =
  let fields =
    [ ("id", Json.Int 1); ("op", Json.Str op) ]
    @ (match model with Some m -> [ ("model", Json.Str m) ] | None -> [])
    @ match options with [] -> [] | o -> [ ("options", Json.Obj o) ]
  in
  match Proto.parse_request (Json.to_string (Json.Obj fields)) with
  | Error (_, msg) -> Alcotest.fail ("request rejected: " ^ msg)
  | Ok req -> (
      match Job.prepare req with
      | Ok p -> p
      | Error (_, msg) -> Alcotest.fail ("prepare rejected: " ^ msg))

let prepare_err ?(op = "check") ?(model = Some model_text) options =
  let fields =
    [ ("id", Json.Int 1); ("op", Json.Str op) ]
    @ (match model with Some m -> [ ("model", Json.Str m) ] | None -> [])
    @ match options with [] -> [] | o -> [ ("options", Json.Obj o) ]
  in
  match Proto.parse_request (Json.to_string (Json.Obj fields)) with
  | Error (_, msg) -> Alcotest.fail ("request rejected: " ^ msg)
  | Ok req -> (
      match Job.prepare req with
      | Ok _ -> Alcotest.fail "prepare accepted, want rejection"
      | Error (code, msg) -> (Proto.error_code_name code, msg))

let test_key_canonicalization () =
  let a = prepare_exn [] in
  let b = prepare_exn ~model:(Some model_text_noisy) [] in
  checks "formatting-invariant digest" a.Job.model_digest b.Job.model_digest;
  checks "formatting-invariant key" a.Job.key b.Job.key

let test_key_excludes_resource_knobs () =
  let base = prepare_exn [] in
  let with_budget =
    prepare_exn
      [
        ("deadline", Json.Float 5.0);
        ("budget_states", Json.Int 100);
        ("budget_bytes", Json.Int 1_000_000);
      ]
  in
  checks "resource knobs keyless" base.Job.key with_budget.Job.key;
  (* storm keys ignore the check-only knobs and vice versa *)
  let storm_a = prepare_exn ~op:"storm" [] in
  let storm_b = prepare_exn ~op:"storm" [ ("ball", Json.Int 2) ] in
  checks "storm ignores ball" storm_a.Job.key storm_b.Job.key

let test_key_includes_semantics () =
  let base = prepare_exn [] in
  let distinct name options =
    let p = prepare_exn options in
    checkb name true (p.Job.key <> base.Job.key)
  in
  distinct "engine keyed" [ ("engine", Json.Str "eager") ];
  distinct "max_states keyed" [ ("max_states", Json.Int 12345) ];
  distinct "ball keyed" [ ("ball", Json.Int 1) ];
  (* seed shapes storm results but not check results *)
  let seeded = prepare_exn [ ("seed", Json.Int 7) ] in
  checks "check ignores seed" base.Job.key seeded.Job.key;
  let storm_a = prepare_exn ~op:"storm" [] in
  let storm_b = prepare_exn ~op:"storm" [ ("seed", Json.Int 7) ] in
  checkb "storm keyed by seed" true (storm_a.Job.key <> storm_b.Job.key);
  (* different ops never share a key *)
  checkb "ops disjoint" true (base.Job.key <> storm_a.Job.key)

let test_prepare_rejections () =
  let c1, _ = prepare_err [ ("bogus", Json.Int 1) ] in
  checks "unknown option" "bad-request" c1;
  let c2, _ = prepare_err [ ("engine", Json.Str "warp") ] in
  checks "unknown engine" "bad-request" c2;
  let c3, _ = prepare_err ~model:None [] in
  checks "check without model" "bad-request" c3;
  let c4, _ = prepare_err ~op:"fuzz" [] in
  checks "fuzz with model" "bad-request" c4;
  let c5, msg = prepare_err ~model:(Some "model broken\n") [] in
  checks "compile error" "bad-request" c5;
  checkb "compile error located" true (String.length msg > 0);
  (* the demo model declares no faults: certify must name a class *)
  let c6, _ = prepare_err ~op:"certify" [] in
  checks "certify without faults" "bad-request" c6;
  let c7, _ = prepare_err [ ("rate", Json.Float 1.5) ] in
  checks "rate out of range" "bad-request" c7

(* --- live server over TCP -------------------------------------------- *)

let with_server ?(tweak = fun c -> c) f =
  let config =
    tweak
      {
        (Server.default_config ~address:(`Tcp ("127.0.0.1", 0))) with
        Server.jobs = 2;
      }
  in
  let server = Server.create config in
  let runner = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.drain ~hard:true server;
      Thread.join runner)
    (fun () ->
      let port = Option.get (Server.port server) in
      f server (`Tcp ("127.0.0.1", port)))

let connect_exn address =
  match Client.connect address with
  | Ok c -> c
  | Error msg -> Alcotest.fail ("connect: " ^ msg)

let request_exn ?timeout client json =
  match Client.request ?timeout client json with
  | Ok v -> v
  | Error msg -> Alcotest.fail ("request: " ^ msg)

let job_request ?(id = Json.Int 1) ~op ?model ?(options = []) () =
  Json.Obj
    ([ ("id", id); ("op", Json.Str op) ]
    @ (match model with Some m -> [ ("model", Json.Str m) ] | None -> [])
    @ match options with [] -> [] | o -> [ ("options", Json.Obj o) ])

let field name reply =
  match Json.member name reply with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "reply lacks %S" name)

let is_ok reply = field "ok" reply = Json.Bool true
let is_cached reply = field "cached" reply = Json.Bool true

let exit_of reply =
  match Json.to_int (field "exit" (field "result" reply)) with
  | Some n -> n
  | None -> Alcotest.fail "result lacks exit"

let states_explored server =
  Obs.Metrics.value
    (Obs.Metrics.counter (Server.metrics_registry server) "serve.states_explored")

let test_server_ping_and_hostile_lines () =
  with_server @@ fun _server address ->
  let c = connect_exn address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let pong = request_exn c (job_request ~op:"ping" ()) in
  checkb "pong ok" true (is_ok pong);
  (* malformed JSON: in-protocol error, connection stays usable *)
  (match Client.send_line c "{this is not json" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Client.read_line c with
  | Ok line -> (
      match Json.of_string line with
      | Ok reply ->
          checkb "bad json flagged" true (not (is_ok reply));
          checkb "code" true (field "code" reply = Json.Str "bad-json")
      | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m);
  let r = request_exn c (job_request ~op:"ping" ()) in
  checkb "daemon alive after garbage" true (is_ok r)

let test_server_cache_roundtrip () =
  with_server @@ fun server address ->
  let c = connect_exn address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let req = job_request ~op:"check" ~model:model_text () in
  let cold = request_exn c req in
  checkb "cold ok" true (is_ok cold);
  checkb "cold not cached" true (not (is_cached cold));
  checki "cold exit 0" 0 (exit_of cold);
  let after_cold = states_explored server in
  checkb "cold explored states" true (after_cold > 0);
  (* hot: byte-identical result, cached, and ZERO new states explored *)
  let hot = request_exn c req in
  checkb "hot cached" true (is_cached hot);
  checks "byte-identical result"
    (Json.to_string (field "result" cold))
    (Json.to_string (field "result" hot));
  checki "cache hit re-explored nothing" after_cold (states_explored server);
  (* the noisy spelling of the same model is the same cache entry *)
  let noisy = request_exn c (job_request ~op:"check" ~model:model_text_noisy ()) in
  checkb "canonicalized spelling hits" true (is_cached noisy);
  checki "still nothing re-explored" after_cold (states_explored server)

let test_server_concurrent_clients () =
  with_server @@ fun _server address ->
  let n_clients = 4 and per_client = 5 in
  let results = Array.make n_clients None in
  let worker i =
    let c = connect_exn address in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let replies =
      List.init per_client (fun j ->
          let op = if (i + j) mod 2 = 0 then "check" else "storm" in
          let options =
            if op = "storm" then [ ("trials", Json.Int 20) ] else []
          in
          request_exn c
            (job_request
               ~id:(Json.Str (Printf.sprintf "c%d-%d" i j))
               ~op ~model:model_text ~options ()))
    in
    results.(i) <- Some replies
  in
  let threads =
    List.init n_clients (fun i -> Thread.create (fun () -> worker i) ())
  in
  List.iter Thread.join threads;
  let all =
    Array.to_list results
    |> List.concat_map (function
         | Some rs -> rs
         | None -> Alcotest.fail "worker died")
  in
  checki "all replies arrived" (n_clients * per_client) (List.length all);
  List.iter
    (fun r ->
      checkb "reply ok" true (is_ok r);
      checki "verdict exit 0" 0 (exit_of r))
    all;
  (* all clients asked the same two questions: results must agree *)
  let by_result =
    List.sort_uniq compare
      (List.map (fun r -> Json.to_string (field "result" r)) all)
  in
  (* exactly two distinct result bodies: one per op *)
  checki "deterministic across clients" 2 (List.length by_result)

(* A model whose exhaustive check is real work (4^8 = 65536 states) but
   still completes — budgets can trip it, full runs finish. *)
let big_model =
  {|model big

param W = 8

var x[W] : 0..3

action dec[i in 0..W-1]: x[i] > 0 -> x[i] := x[i] - 1

invariant (forall i in 0..W-1: x[i] = 0)
|}

(* A model that pins the executor for seconds (4^10 = 1048576 states,
   just under the max_states cap so it genuinely explores — a larger
   domain product would trip Space.Too_large up-front and return
   instantly). The drain and queue-full tests always pair it with a
   deadline or a drain; it is never left to finish. *)
let huge_model =
  {|model huge

param W = 10

var x[W] : 0..3

action dec[i in 0..W-1]: x[i] > 0 -> x[i] := x[i] - 1

invariant (forall i in 0..W-1: x[i] = 0)
|}

let test_server_budget_and_no_incomplete_caching () =
  with_server @@ fun _server address ->
  let c = connect_exn address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* a state budget trips the job into in-protocol exit-5 *)
  let tripped =
    request_exn c
      (job_request ~op:"check" ~model:big_model
         ~options:[ ("budget_states", Json.Int 1000) ]
         ())
  in
  checkb "budget reply ok-envelope" true (is_ok tripped);
  checki "budget exit 5" 5 (exit_of tripped);
  checkb "incomplete not cached" true (not (is_cached tripped));
  (* same cache key, full budget: runs fresh (the incomplete result was
     not cached) and completes *)
  let full =
    request_exn c ~timeout:600.
      (job_request ~op:"check" ~model:big_model ())
  in
  checkb "full run fresh" true (not (is_cached full));
  checki "full run completes" 0 (exit_of full);
  (* and only the complete result is cached *)
  let hot =
    request_exn c
      (job_request ~op:"check" ~model:big_model
         ~options:[ ("budget_states", Json.Int 1000) ]
         ())
  in
  checkb "complete result now serves the key" true (is_cached hot);
  checki "cached exit 0" 0 (exit_of hot)

let test_server_oversized_and_queue_full () =
  with_server
    ~tweak:(fun c -> { c with Server.max_request_bytes = 2048; queue_cap = 1 })
  @@ fun _server address ->
  let c = connect_exn address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* oversized line: rejected in-protocol, stream stays in sync *)
  (match Client.send_line c (String.make 5000 'x') with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Client.read_line c with
  | Ok line -> (
      match Json.of_string line with
      | Ok reply ->
          checkb "too large flagged" true (not (is_ok reply));
          checkb "code too-large" true
            (field "code" reply = Json.Str "too-large")
      | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m);
  let pong = request_exn c (job_request ~op:"ping" ()) in
  checkb "alive after oversize" true (is_ok pong);
  (* flood past the queue cap without reading replies; each job carries
     a deadline so the pinned executor frees itself in-protocol *)
  let send_job i =
    match
      Client.send_line c
        (Json.to_string
           (job_request ~id:(Json.Int i) ~op:"check" ~model:huge_model
              ~options:[ ("deadline", Json.Float 1.0) ]
              ()))
    with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  send_job 0;
  send_job 1;
  send_job 2;
  let replies =
    List.init 3 (fun _ ->
        match Client.read_line ~timeout:600. c with
        | Ok line -> (
            match Json.of_string line with
            | Ok r -> r
            | Error m -> Alcotest.fail m)
        | Error m -> Alcotest.fail m)
  in
  let full_errors =
    List.filter
      (fun r ->
        (not (is_ok r))
        && Json.member "code" r = Some (Json.Str "queue-full"))
      replies
  in
  let answered =
    List.filter (fun r -> is_ok r && exit_of r = 5) replies
  in
  checkb "at least one queue-full" true (List.length full_errors >= 1);
  checkb "at least one deadline-tripped job served" true
    (List.length answered >= 1);
  checki "every submission answered" 3 (List.length replies)

let test_server_disconnect_mid_job () =
  with_server @@ fun _server address ->
  (* client 1 submits expensive work and vanishes *)
  let c1 = connect_exn address in
  (match
     Client.send_line c1
       (Json.to_string (job_request ~op:"check" ~model:big_model ()))
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Thread.delay 0.1;
  Client.close c1;
  (* the daemon survives, and the orphaned job's result lands in the
     cache — poll for the hit *)
  let c2 = connect_exn address in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  let pong = request_exn c2 (job_request ~op:"ping" ()) in
  checkb "alive after disconnect" true (is_ok pong);
  let rec poll tries =
    if tries = 0 then Alcotest.fail "orphaned job never reached the cache"
    else
      let r =
        request_exn c2 ~timeout:600.
          (job_request ~op:"check" ~model:big_model ())
      in
      if is_cached r then r
      else begin
        Thread.delay 0.2;
        poll (tries - 1)
      end
  in
  let r = poll 50 in
  checki "orphaned result correct" 0 (exit_of r)

let test_server_hard_drain_cancels () =
  with_server @@ fun server address ->
  let c = connect_exn address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match
     Client.send_line c
       (Json.to_string (job_request ~op:"check" ~model:huge_model ()))
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Thread.delay 0.2;
  Server.drain ~hard:true server;
  match Client.read_line ~timeout:60. c with
  | Ok line -> (
      match Json.of_string line with
      | Ok reply ->
          checkb "drained job replied" true (is_ok reply);
          checki "cancelled to exit 5" 5 (exit_of reply)
      | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m

let test_server_soft_drain_finishes_queued () =
  with_server @@ fun server address ->
  let c = connect_exn address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let send i =
    match
      Client.send_line c
        (Json.to_string
           (job_request ~id:(Json.Int i) ~op:"check" ~model:model_text ()))
    with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  send 1;
  send 2;
  (* let the reader enqueue both before the drain latch flips *)
  Thread.delay 0.2;
  Server.drain server;
  (* soft drain: both queued jobs still complete with verdicts *)
  let r1 =
    match Client.read_line ~timeout:60. c with
    | Ok l -> Result.get_ok (Json.of_string l)
    | Error m -> Alcotest.fail m
  in
  let r2 =
    match Client.read_line ~timeout:60. c with
    | Ok l -> Result.get_ok (Json.of_string l)
    | Error m -> Alcotest.fail m
  in
  checkb "first finished" true (is_ok r1 && exit_of r1 = 0);
  checkb "second finished" true (is_ok r2 && exit_of r2 = 0);
  (* new jobs are refused while draining *)
  match Client.send_line c (Json.to_string (job_request ~op:"check" ~model:model_text ~id:(Json.Int 3) ())) with
  | Error _ -> ()  (* connection may already be torn down: also a refusal *)
  | Ok () -> (
      match Client.read_line ~timeout:10. c with
      | Error _ -> ()
      | Ok l -> (
          match Json.of_string l with
          | Ok r ->
              if is_ok r then
                (* raced ahead of the drain latch: served from cache is
                   acceptable — the verdict job never re-runs *)
                checkb "post-drain reply cached" true (is_cached r)
              else
                checkb "post-drain refused" true
                  (field "code" r = Json.Str "draining")
          | Error m -> Alcotest.fail m))

let suite =
  [
    Alcotest.test_case "sched: round-robin fairness" `Quick
      test_sched_round_robin;
    Alcotest.test_case "sched: bounds and close" `Quick
      test_sched_bounds_and_close;
    Alcotest.test_case "sched: blocking take" `Quick test_sched_blocking_take;
    Alcotest.test_case "cache: LRU eviction and counters" `Quick
      test_cache_lru;
    Alcotest.test_case "proto: parse and reject" `Quick test_proto_parse;
    Alcotest.test_case "key: canonicalization" `Quick
      test_key_canonicalization;
    Alcotest.test_case "key: resource knobs excluded" `Quick
      test_key_excludes_resource_knobs;
    Alcotest.test_case "key: semantic options included" `Quick
      test_key_includes_semantics;
    Alcotest.test_case "job: prepare rejections" `Quick
      test_prepare_rejections;
    Alcotest.test_case "server: ping and hostile lines" `Quick
      test_server_ping_and_hostile_lines;
    Alcotest.test_case "server: cache hit is byte-identical, no re-explore"
      `Quick test_server_cache_roundtrip;
    Alcotest.test_case "server: concurrent clients agree" `Slow
      test_server_concurrent_clients;
    Alcotest.test_case "server: budgets trip in-protocol, exit-5 never cached"
      `Slow test_server_budget_and_no_incomplete_caching;
    Alcotest.test_case "server: oversized and queue-full degrade in-protocol"
      `Slow test_server_oversized_and_queue_full;
    Alcotest.test_case "server: mid-job disconnect leaves daemon healthy"
      `Slow test_server_disconnect_mid_job;
    Alcotest.test_case "server: hard drain cancels cooperatively" `Slow
      test_server_hard_drain_cancels;
    Alcotest.test_case "server: soft drain finishes queued jobs" `Quick
      test_server_soft_drain_finishes_queued;
  ]
