(* Tests for first-class fault actions: injectors stay in-domain (property,
   both the RNG and the action form), the computed fault span against
   Engine.ball, eager/lazy agreement on span-based verdicts, the tolerance
   certificate, and the storm harness. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Domain = Guarded.Domain
module Var = Guarded.Var
module Action = Guarded.Action
module Space = Explore.Space
module Engine = Explore.Engine
module Faultspan = Explore.Faultspan
module Fault = Sim.Fault

(* Seed-protocol environments with a legitimate state each. *)
let protocol_envs () =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let d = Protocols.Diffusing.make (Topology.Tree.chain 3) in
  let st = Protocols.Spanning_tree.make ~root:0 (Topology.Ugraph.cycle 4) in
  let dr = Protocols.Dijkstra_ring.make ~nodes:3 ~k:4 in
  [
    ( "token-ring",
      Protocols.Token_ring.env tr,
      Protocols.Token_ring.all_zero tr );
    ("diffusing", Protocols.Diffusing.env d, Protocols.Diffusing.all_green d);
    ( "spanning-tree",
      Protocols.Spanning_tree.env st,
      Protocols.Spanning_tree.bfs_state st );
    ( "dijkstra",
      Protocols.Dijkstra_ring.env dr,
      Protocols.Dijkstra_ring.all_zero dr );
  ]

let faults_of env =
  let vars = Array.to_list (Guarded.Env.vars env) in
  let resets = List.map (fun v -> (v, Domain.first (Var.domain v))) vars in
  [
    Fault.corrupt env ~k:1;
    Fault.corrupt env ~k:2;
    Fault.corrupt_vars [ List.hd vars ] ~k:1;
    Fault.scramble env;
    Fault.reset_vars resets;
    Fault.compose "corrupt+reset"
      [ Fault.corrupt env ~k:1; Fault.reset_vars resets ];
  ]

let in_domain env s =
  Array.for_all
    (fun v -> Domain.mem (Var.domain v) (State.get s v))
    (Guarded.Env.vars env)

let randomize rng env s =
  Array.iter
    (fun v ->
      let d = Var.domain v in
      State.set s v (List.nth (Domain.values d) (Prng.int rng (Domain.size d))))
    (Guarded.Env.vars env)

(* Every injector keeps every variable inside its domain — from legitimate
   and from arbitrary in-domain states, in both views of the fault. *)
let prop_injectors_stay_in_domain =
  QCheck.Test.make ~name:"fault injectors keep variables in-domain"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      List.for_all
        (fun (_name, env, legit) ->
          let rng = Prng.create seed in
          List.for_all
            (fun f ->
              let s = State.copy legit in
              f.Fault.inject rng s;
              let ok_legit = in_domain env s in
              randomize rng env s;
              f.Fault.inject rng s;
              let ok_random = in_domain env s in
              randomize rng env s;
              let ok_actions =
                List.for_all
                  (fun a ->
                    (not (Action.enabled a s))
                    || in_domain env (Action.execute a s))
                  (Fault.actions f)
              in
              ok_legit && ok_random && ok_actions)
            (faults_of env))
        (protocol_envs ()))

(* The burst-bounded, program-free span of a corrupt fault from one seed is
   exactly the Hamming ball: fault actions reassign one variable per step. *)
let test_span_equals_ball () =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let env = Protocols.Token_ring.env tr in
  let engine = Engine.create env in
  let space = Engine.space engine in
  let center = Protocols.Token_ring.all_zero tr in
  let fault = Fault.corrupt env ~k:2 in
  let fp =
    Compile.program
      (Guarded.Program.make ~name:"faults" env (Fault.actions fault))
  in
  List.iter
    (fun radius ->
      let span =
        Faultspan.compute engine ~budget:radius ~faults:fp
          ~from:(Engine.Seeds [ center ]) ()
      in
      let ball = Engine.ball env ~center ~radius in
      Alcotest.(check int)
        (Printf.sprintf "span size = ball size at radius %d" radius)
        (List.length ball) (Faultspan.count span);
      List.iter
        (fun s ->
          Alcotest.(check bool) "ball member in span" true (Faultspan.mem span s))
        ball;
      Alcotest.(check bool)
        "depth bounded by radius" true
        (Faultspan.max_depth span <= radius);
      (* depths are minimal: layer d of the span is the d-sphere *)
      if radius >= 1 then
        Alcotest.(check int) "layer 0 is the center" 1
          (Faultspan.depth_histogram span).(0))
    [ 0; 1; 2; 3 ];
  ignore space

(* Eager and lazy engines agree on every fault-span quantity and on the
   membership set itself (keys are canonical mixed-radix codes). *)
let span_fingerprint backend =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let env = Protocols.Token_ring.env tr in
  let engine = Engine.create ~backend env in
  let cp = Compile.program (Protocols.Token_ring.combined tr) in
  let fault = Fault.corrupt env ~k:1 in
  let fp =
    Compile.program
      (Guarded.Program.make ~name:"faults" env (Fault.actions fault))
  in
  let span =
    Faultspan.compute engine ~program:cp ~budget:1 ~faults:fp
      ~from:(Engine.Pred (fun s -> Protocols.Token_ring.invariant tr s))
      ()
  in
  let space = Engine.space engine in
  ( Faultspan.count span,
    Faultspan.root_count span,
    Faultspan.max_depth span,
    Array.to_list (Faultspan.depth_histogram span),
    List.sort compare
      (List.map (fun s -> Space.encode space s) (Faultspan.states span)) )

let test_span_backend_agreement () =
  let e = span_fingerprint Engine.Eager and l = span_fingerprint Engine.Lazy in
  Alcotest.(check bool) "identical spans" true (e = l)

(* Budget edge cases, on both backends. Budget 0 admits no fault step at
   all, so the span is exactly the program-only closure of the roots;
   any budget at least the span's fault diameter (here: one corrupting
   fault per variable reaches every state) coincides with unbounded. *)
let test_span_budget_edges () =
  List.iter
    (fun backend ->
      let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
      let env = Protocols.Token_ring.env tr in
      let engine = Engine.create ~backend env in
      let bname = Engine.backend_name engine in
      let cp = Compile.program (Protocols.Token_ring.combined tr) in
      let fault = Fault.corrupt env ~k:1 in
      let fp =
        Compile.program
          (Guarded.Program.make ~name:"faults" env (Fault.actions fault))
      in
      let from = Engine.Seeds [ Protocols.Token_ring.all_zero tr ] in
      let span_at budget =
        Faultspan.compute engine ~program:cp ?budget ~faults:fp ~from ()
      in
      (* budget 0: the span is the program-only closure *)
      let span0 = span_at (Some 0) in
      let closure = ref 0 in
      Engine.iter_reachable engine cp ~from (fun _ -> incr closure);
      Alcotest.(check int)
        (bname ^ ": budget-0 span is the program closure")
        !closure (Faultspan.count span0);
      Alcotest.(check int)
        (bname ^ ": budget-0 span has depth 0")
        0
        (Faultspan.max_depth span0);
      (* budget >= diameter: one corrupt step per variable reaches any
         state, so vars-many faults saturate — equal to unbounded *)
      let n_vars = Array.length (Guarded.Env.vars env) in
      let saturated = span_at (Some n_vars) in
      let unbounded = span_at None in
      Alcotest.(check int)
        (bname ^ ": budget >= diameter equals unbounded")
        (Faultspan.count unbounded)
        (Faultspan.count saturated);
      Alcotest.(check int)
        (bname ^ ": saturated span covers the space")
        (Faultspan.count unbounded)
        (Space.size (Engine.space engine)))
    [ Engine.Eager; Engine.Lazy ]

let tolerance_fingerprint backend =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let engine = Engine.create ~backend (Protocols.Token_ring.env tr) in
  let cert = Protocols.Token_ring.tolerance_certificate ~engine tr in
  List.map
    (fun (c : Nonmask.Certify.check) -> (c.label, c.ok))
    cert.Nonmask.Certify.checks

let test_tolerance_backend_agreement () =
  let e = tolerance_fingerprint Engine.Eager in
  let l = tolerance_fingerprint Engine.Lazy in
  Alcotest.(check bool) "identical tolerance verdicts" true (e = l)

(* The ring tolerates single-variable corruption: certificate VALID, with
   the recurring-fault livelock rendered as an informational check. *)
let test_token_ring_tolerance_valid () =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let engine = Engine.create (Protocols.Token_ring.env tr) in
  let cert = Protocols.Token_ring.tolerance_certificate ~engine tr in
  Alcotest.(check bool) "certificate valid" true (Nonmask.Certify.ok cert);
  Alcotest.(check int) "five checks" 5
    (List.length cert.Nonmask.Certify.checks);
  let rendered = Format.asprintf "%a" Nonmask.Certify.pp_full cert in
  Alcotest.(check bool) "livelock cycle rendered" true
    (Astring_contains.contains rendered "FAULT")

let test_token_ring_recurrence_resilience_fails () =
  (* demanding resilience to perpetually recurring corruption must fail:
     a fault can always flip a variable back out of S *)
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let engine = Engine.create (Protocols.Token_ring.env tr) in
  let cert =
    Nonmask.Certify.tolerance ~engine
      ~program:(Protocols.Token_ring.combined tr)
      ~faults:(Fault.actions (Fault.corrupt (Protocols.Token_ring.env tr) ~k:1))
      ~invariant:(fun s -> Protocols.Token_ring.invariant tr s)
      ~budget:1 ~require_recurrence_resilience:true ~name:"token-ring" ()
  in
  Alcotest.(check bool) "resilience demanded: invalid" false
    (Nonmask.Certify.ok cert)

let test_spanning_tree_tolerance_valid () =
  let st = Protocols.Spanning_tree.make ~root:0 (Topology.Ugraph.cycle 4) in
  let engine = Engine.create (Protocols.Spanning_tree.env st) in
  let cert = Protocols.Spanning_tree.tolerance_certificate ~engine st in
  Alcotest.(check bool) "certificate valid" true (Nonmask.Certify.ok cert)

(* The naive ring loses its token to a corruption it cannot recreate: the
   convergence check of the tolerance certificate must fail. *)
let test_naive_ring_tolerance_invalid () =
  let nr = Protocols.Naive_ring.make ~nodes:3 in
  let env = Protocols.Naive_ring.env nr in
  let engine = Engine.create env in
  let cert =
    Nonmask.Certify.tolerance ~engine
      ~program:(Protocols.Naive_ring.program nr)
      ~faults:(Fault.actions (Fault.corrupt env ~k:1))
      ~invariant:(fun s -> Protocols.Naive_ring.invariant nr s)
      ~budget:1 ~name:"naive-ring" ()
  in
  Alcotest.(check bool) "certificate invalid" false (Nonmask.Certify.ok cert)

(* Unbudgeted scramble span from anywhere is the whole space, and closure
   then also re-verifies the fault actions. *)
let test_unbounded_scramble_span_is_space () =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:3 in
  let env = Protocols.Token_ring.env tr in
  let engine = Engine.create env in
  let fp =
    Compile.program
      (Guarded.Program.make ~name:"faults" env
         (Fault.actions (Fault.scramble env)))
  in
  let span =
    Faultspan.compute engine ~faults:fp
      ~from:(Engine.Seeds [ Protocols.Token_ring.all_zero tr ])
      ()
  in
  Alcotest.(check int) "span = whole space"
    (Space.size (Engine.space engine))
    (Faultspan.count span)

(* --- the storm harness --- *)

let storm_result ~rate ~seed =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  let env = Protocols.Token_ring.env tr in
  let fault = Fault.scramble env in
  Sim.Storm.trials ~max_steps:20_000 ~rng:(Prng.create seed) ~trials:50
    ~daemon:(fun r -> Sim.Daemon.random r)
    ~prepare:(fun r ->
      let s = Protocols.Token_ring.all_zero tr in
      fault.Fault.inject r s;
      s)
    ~stop:(fun s -> Protocols.Token_ring.invariant tr s)
    ~fault ~rate
    (Compile.program (Protocols.Token_ring.combined tr))

let test_storm_accounting () =
  let r = storm_result ~rate:0.2 ~seed:11 in
  Alcotest.(check int) "every trial accounted" 50
    (Array.length r.Sim.Storm.steps + r.Sim.Storm.failures);
  Alcotest.(check int) "fault counts for all trials" 50
    (Array.length r.Sim.Storm.fault_counts);
  Alcotest.(check bool) "some faults injected" true
    (Array.exists (fun c -> c > 0) r.Sim.Storm.fault_counts)

let test_storm_rate_zero_is_fault_free () =
  let r = storm_result ~rate:0. ~seed:11 in
  Alcotest.(check int) "no failures at rate 0" 0 r.Sim.Storm.failures;
  Alcotest.(check bool) "no faults injected" true
    (Array.for_all (fun c -> c = 0) r.Sim.Storm.fault_counts)

let test_storm_deterministic () =
  let a = storm_result ~rate:0.15 ~seed:7 in
  let b = storm_result ~rate:0.15 ~seed:7 in
  Alcotest.(check bool) "same seed, same storm" true
    (a.Sim.Storm.steps = b.Sim.Storm.steps
    && a.Sim.Storm.failures = b.Sim.Storm.failures
    && a.Sim.Storm.fault_counts = b.Sim.Storm.fault_counts)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_injectors_stay_in_domain;
    Alcotest.test_case "span of corrupt = Hamming ball" `Quick
      test_span_equals_ball;
    Alcotest.test_case "eager/lazy agree on spans" `Quick
      test_span_backend_agreement;
    Alcotest.test_case "span budget edge cases (0 and >= diameter)" `Quick
      test_span_budget_edges;
    Alcotest.test_case "eager/lazy agree on tolerance verdicts" `Quick
      test_tolerance_backend_agreement;
    Alcotest.test_case "token ring tolerance certificate" `Quick
      test_token_ring_tolerance_valid;
    Alcotest.test_case "recurrence resilience is refused" `Quick
      test_token_ring_recurrence_resilience_fails;
    Alcotest.test_case "spanning tree tolerance certificate" `Quick
      test_spanning_tree_tolerance_valid;
    Alcotest.test_case "naive ring is not tolerant" `Quick
      test_naive_ring_tolerance_invalid;
    Alcotest.test_case "unbounded scramble span is the space" `Quick
      test_unbounded_scramble_span_is_space;
    Alcotest.test_case "storm accounting" `Quick test_storm_accounting;
    Alcotest.test_case "storm at rate 0 is fault-free" `Quick
      test_storm_rate_zero_is_fault_free;
    Alcotest.test_case "storm is deterministic" `Quick
      test_storm_deterministic;
  ]
