(* Tests for the simulation engine: daemons, faults, traces, runner,
   statistics, and the experiment harness. *)

module Domain = Guarded.Domain
module Env = Guarded.Env
module State = Guarded.State
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program
module Compile = Guarded.Compile
module Daemon = Sim.Daemon
module Fault = Sim.Fault
module Runner = Sim.Runner
module Trace = Sim.Trace
module Stats = Sim.Stats
module Experiment = Sim.Experiment

(* countdown fixture: "down" decrements x to zero. *)
let countdown () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 10) in
  let open Expr in
  let down =
    Action.make ~name:"down" ~guard:(var x > int 0) [ (x, var x - int 1) ]
  in
  (env, x, Compile.program (Program.make ~name:"cd" env [ down ]))

(* two independent counters, for daemon choice tests *)
let two_counters () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 5) in
  let y = Env.fresh env "y" (Domain.range 0 5) in
  let open Expr in
  let dx = Action.make ~name:"dx" ~guard:(var x > int 0) [ (x, var x - int 1) ] in
  let dy = Action.make ~name:"dy" ~guard:(var y > int 0) [ (y, var y - int 1) ] in
  (env, x, y, Compile.program (Program.make ~name:"two" env [ dx; dy ]))

(* --- Runner --- *)

let test_runner_reaches_target () =
  let env, x, cp = countdown () in
  let init = State.of_list env [ (x, 7) ] in
  let outcome =
    Runner.run ~daemon:Daemon.first_enabled ~init
      ~stop:(fun s -> State.get s x = 0)
      cp
  in
  Alcotest.(check bool) "converged" true (Runner.converged outcome);
  Alcotest.(check int) "steps" 7 outcome.Runner.steps;
  Alcotest.(check int) "final" 0 (State.get outcome.Runner.final x);
  Alcotest.(check int) "init untouched" 7 (State.get init x)

let test_runner_zero_steps () =
  let env, x, cp = countdown () in
  let init = State.of_list env [ (x, 0) ] in
  let outcome =
    Runner.run ~daemon:Daemon.first_enabled ~init
      ~stop:(fun s -> State.get s x = 0)
      cp
  in
  Alcotest.(check int) "zero steps" 0 outcome.Runner.steps

let test_runner_terminal () =
  let env, x, cp = countdown () in
  let init = State.of_list env [ (x, 3) ] in
  let outcome =
    Runner.run ~daemon:Daemon.first_enabled ~init ~stop:(fun _ -> false) cp
  in
  Alcotest.(check bool) "terminal" true (outcome.Runner.reason = Runner.Terminal);
  Alcotest.(check int) "ran to zero" 0 (State.get outcome.Runner.final x)

let test_runner_budget () =
  let env, x, cp = countdown () in
  let init = State.of_list env [ (x, 10) ] in
  let outcome =
    Runner.run ~max_steps:3 ~daemon:Daemon.first_enabled ~init
      ~stop:(fun s -> State.get s x = 0)
      cp
  in
  Alcotest.(check bool) "budget" true
    (outcome.Runner.reason = Runner.Budget_exhausted);
  Alcotest.(check int) "3 steps" 3 outcome.Runner.steps

let test_runner_trace () =
  let env, x, cp = countdown () in
  let init = State.of_list env [ (x, 3) ] in
  let outcome =
    Runner.run ~record_trace:true ~daemon:Daemon.first_enabled ~init
      ~stop:(fun s -> State.get s x = 0)
      cp
  in
  match outcome.Runner.trace with
  | None -> Alcotest.fail "trace requested"
  | Some t ->
      Alcotest.(check int) "length" 3 (Trace.length t);
      Alcotest.(check int) "initial" 3 (State.get (Trace.initial t) x);
      let entries = Trace.entries t in
      Alcotest.(check (list (list string)))
        "action names"
        [ [ "down" ]; [ "down" ]; [ "down" ] ]
        (List.map (fun e -> e.Trace.actions) entries);
      Alcotest.(check (list int)) "state progression" [ 2; 1; 0 ]
        (List.map (fun e -> State.get e.Trace.state x) entries);
      Alcotest.(check int) "states incl initial" 4
        (List.length (Trace.states t))

(* --- Daemons --- *)

let test_daemon_first_enabled () =
  let env, x, y, cp = two_counters () in
  let init = State.of_list env [ (x, 2); (y, 2) ] in
  (* first-enabled always picks dx until x hits 0 *)
  let outcome =
    Runner.run ~daemon:Daemon.first_enabled ~init
      ~stop:(fun s -> State.get s x = 0)
      cp
  in
  Alcotest.(check int) "only dx ran" 2 outcome.Runner.steps;
  Alcotest.(check int) "y untouched" 2 (State.get outcome.Runner.final y)

let test_daemon_round_robin_fair () =
  let env, x, y, cp = two_counters () in
  let init = State.of_list env [ (x, 3); (y, 3) ] in
  let outcome =
    Runner.run
      ~daemon:(Daemon.round_robin ())
      ~init
      ~stop:(fun s -> State.get s x = 0 && State.get s y = 0)
      cp
  in
  Alcotest.(check bool) "converged" true (Runner.converged outcome);
  Alcotest.(check int) "six steps" 6 outcome.Runner.steps

let test_daemon_random_deterministic_per_seed () =
  let env, x, y, cp = two_counters () in
  let init = State.of_list env [ (x, 3); (y, 3) ] in
  let run seed =
    let outcome =
      Runner.run ~record_trace:true
        ~daemon:(Daemon.random (Prng.create seed))
        ~init
        ~stop:(fun s -> State.get s x = 0 && State.get s y = 0)
        cp
    in
    match outcome.Runner.trace with
    | Some t ->
        List.concat_map (fun e -> e.Trace.actions) (Trace.entries t)
    | None -> []
  in
  Alcotest.(check (list string)) "same seed same run" (run 5) (run 5)

let test_daemon_greedy () =
  (* greedy with score = value of x prefers the action that leaves x big *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 10) in
  let open Expr in
  let big = Action.make ~name:"big" ~guard:(var x < int 9) [ (x, int 9) ] in
  let small = Action.make ~name:"small" ~guard:(var x > int 0) [ (x, int 0) ] in
  let cp = Compile.program (Program.make ~name:"g" env [ small; big ]) in
  let d = Daemon.greedy ~name:"max-x" (fun s -> State.get s x) in
  let init = State.of_list env [ (x, 5) ] in
  let outcome = Runner.run ~max_steps:1 ~daemon:d ~init ~stop:(fun _ -> false) cp in
  Alcotest.(check int) "picked big" 9 (State.get outcome.Runner.final x)

let test_daemon_distributed_noninterfering () =
  let env, x, y, cp = two_counters () in
  let init = State.of_list env [ (x, 3); (y, 3) ] in
  let outcome =
    Runner.run
      ~daemon:(Daemon.distributed (Prng.create 3))
      ~init
      ~stop:(fun s -> State.get s x = 0 && State.get s y = 0)
      cp
  in
  (* dx and dy never interfere, so each step runs both: 3 rounds *)
  Alcotest.(check int) "parallel rounds" 3 outcome.Runner.steps

let test_daemon_distributed_conflicting () =
  (* two actions writing the same variable never run together *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 10) in
  let open Expr in
  let a = Action.make ~name:"a" ~guard:(var x < int 10) [ (x, var x + int 1) ] in
  let b = Action.make ~name:"b" ~guard:(var x < int 10) [ (x, var x + int 1) ] in
  let cp = Compile.program (Program.make ~name:"conf" env [ a; b ]) in
  let init = State.of_list env [ (x, 0) ] in
  let outcome =
    Runner.run ~max_steps:4
      ~daemon:(Daemon.distributed (Prng.create 1))
      ~init ~stop:(fun _ -> false) cp
  in
  (* each step executes exactly one of the conflicting actions *)
  Alcotest.(check int) "one increment per step" 4
    (State.get outcome.Runner.final x)

(* --- Faults --- *)

let test_fault_corrupt_stays_in_domain () =
  let env = Env.create () in
  let _ = Env.fresh_family env "x" 5 (Domain.range 2 7) in
  let f = Fault.corrupt env ~k:3 in
  let rng = Prng.create 9 in
  for _ = 1 to 50 do
    let s = State.make env in
    f.Fault.inject rng s;
    Alcotest.(check bool) "in domain" true (State.in_domain env s)
  done

let test_fault_corrupt_k_bound () =
  let env = Env.create () in
  let xs = Env.fresh_family env "x" 6 (Domain.range 0 9) in
  let f = Fault.corrupt env ~k:2 in
  let rng = Prng.create 10 in
  for _ = 1 to 30 do
    let s = State.make env in
    f.Fault.inject rng s;
    let changed =
      Array.fold_left
        (fun acc v -> if State.get s v <> 0 then acc + 1 else acc)
        0 xs
    in
    Alcotest.(check bool) "at most 2 changed" true (changed <= 2)
  done

let test_fault_scramble_covers () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let f = Fault.scramble env in
  let rng = Prng.create 11 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    let s = State.make env in
    f.Fault.inject rng s;
    seen.(State.get s x) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_fault_reset () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let y = Env.fresh env "y" (Domain.range 0 3) in
  let f = Fault.reset_vars [ (x, 2) ] in
  let s = State.of_list env [ (x, 1); (y, 3) ] in
  f.Fault.inject (Prng.create 0) s;
  Alcotest.(check int) "x reset" 2 (State.get s x);
  Alcotest.(check int) "y kept" 3 (State.get s y)

let test_fault_compose () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let y = Env.fresh env "y" (Domain.range 0 3) in
  let f = Fault.compose "both" [ Fault.reset_vars [ (x, 1) ]; Fault.reset_vars [ (y, 2) ] ] in
  let s = State.make env in
  f.Fault.inject (Prng.create 0) s;
  Alcotest.(check int) "x" 1 (State.get s x);
  Alcotest.(check int) "y" 2 (State.get s y)

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "n" 5 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Stats.median;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.Stats.stddev

let test_stats_single () =
  let s = Stats.summarize [| 42.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 42.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "sd" 0.0 s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "p90" 42.0 s.Stats.p90

let test_stats_percentile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Stats.percentile sorted 0.5);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile sorted 0.0);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Stats.percentile sorted 1.0)

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize [||]))

let test_percentile_edge_cases () =
  Alcotest.check_raises "empty array"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 0.5));
  Alcotest.check_raises "nan q" (Invalid_argument "Stats.percentile: q is nan")
    (fun () -> ignore (Stats.percentile [| 1.0; 2.0 |] nan));
  (* a single element answers every quantile *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single q=%g" q)
        7.0
        (Stats.percentile [| 7.0 |] q))
    [ 0.0; 0.5; 1.0; -3.0; 42.0 ];
  (* out-of-range q clamps to the extremes instead of indexing out *)
  let sorted = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "q<0 clamps" 1.0 (Stats.percentile sorted (-0.5));
  Alcotest.(check (float 1e-9)) "q>1 clamps" 3.0 (Stats.percentile sorted 1.5)

(* The interpolating percentile agrees with a naive sort-based
   nearest-rank reference to within one rank, on random inputs of random
   sizes, for the quantiles the summary actually reports. *)
let test_percentile_vs_nearest_rank () =
  let quantiles = [ 0.0; 0.5; 0.9; 0.99; 1.0 ] in
  for seed = 0 to 49 do
    let rng = Prng.create seed in
    let n = 1 + Prng.int rng 200 in
    let data =
      Array.init n (fun _ -> Prng.float rng 1000.0 -. 500.0)
    in
    let sorted = Array.copy data in
    Array.sort compare sorted;
    List.iter
      (fun q ->
        let got = Stats.percentile sorted q in
        (* nearest rank: smallest index r with (r+1)/n >= q *)
        let rank =
          min (n - 1)
            (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))
        in
        let lo = sorted.(max 0 (rank - 1)) in
        let hi = sorted.(min (n - 1) (rank + 1)) in
        if not (got >= lo && got <= hi) then
          Alcotest.failf
            "seed %d n %d q %g: percentile %g outside one-rank bracket \
             [%g, %g] around rank %d"
            seed n q got lo hi rank)
      quantiles
  done

(* --- Experiment --- *)

let test_experiment_trials () =
  let env, x, cp = countdown () in
  let rng = Prng.create 21 in
  let result =
    Experiment.convergence_trials ~rng ~trials:20
      ~daemon:(fun r -> Daemon.random r)
      ~prepare:(fun r ->
        State.of_list env [ (x, 1 + Prng.int r 9) ])
      ~stop:(fun s -> State.get s x = 0)
      cp
  in
  Alcotest.(check int) "all converged" 0 result.Experiment.failures;
  Alcotest.(check int) "20 samples" 20 (Array.length result.Experiment.steps);
  match result.Experiment.summary with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
      Alcotest.(check bool) "mean within bounds" true
        (1.0 <= s.Stats.mean && s.Stats.mean <= 9.0)

let test_experiment_reproducible () =
  let env, x, cp = countdown () in
  let run seed =
    let result =
      Experiment.convergence_trials ~rng:(Prng.create seed) ~trials:10
        ~daemon:(fun r -> Daemon.random r)
        ~prepare:(fun r -> State.of_list env [ (x, 1 + Prng.int r 9) ])
        ~stop:(fun s -> State.get s x = 0)
        cp
    in
    result.Experiment.steps
  in
  Alcotest.(check (array int)) "same seed same steps" (run 4) (run 4)

let test_experiment_failures_counted () =
  let env, x, cp = countdown () in
  let result =
    Experiment.convergence_trials ~max_steps:2 ~rng:(Prng.create 5) ~trials:10
      ~daemon:(fun _ -> Daemon.first_enabled)
      ~prepare:(fun _ -> State.of_list env [ (x, 10) ])
      ~stop:(fun s -> State.get s x = 0)
      cp
  in
  Alcotest.(check int) "all failed" 10 result.Experiment.failures;
  Alcotest.(check bool) "no summary" true (result.Experiment.summary = None)

let suite =
  [
    Alcotest.test_case "runner reaches target" `Quick test_runner_reaches_target;
    Alcotest.test_case "runner zero steps" `Quick test_runner_zero_steps;
    Alcotest.test_case "runner terminal" `Quick test_runner_terminal;
    Alcotest.test_case "runner budget" `Quick test_runner_budget;
    Alcotest.test_case "runner trace" `Quick test_runner_trace;
    Alcotest.test_case "daemon first-enabled" `Quick test_daemon_first_enabled;
    Alcotest.test_case "daemon round-robin" `Quick test_daemon_round_robin_fair;
    Alcotest.test_case "daemon random deterministic" `Quick
      test_daemon_random_deterministic_per_seed;
    Alcotest.test_case "daemon greedy" `Quick test_daemon_greedy;
    Alcotest.test_case "daemon distributed parallel" `Quick
      test_daemon_distributed_noninterfering;
    Alcotest.test_case "daemon distributed conflicts" `Quick
      test_daemon_distributed_conflicting;
    Alcotest.test_case "fault corrupt in domain" `Quick
      test_fault_corrupt_stays_in_domain;
    Alcotest.test_case "fault corrupt bound" `Quick test_fault_corrupt_k_bound;
    Alcotest.test_case "fault scramble coverage" `Quick test_fault_scramble_covers;
    Alcotest.test_case "fault reset" `Quick test_fault_reset;
    Alcotest.test_case "fault compose" `Quick test_fault_compose;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats single value" `Quick test_stats_single;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile_interpolation;
    Alcotest.test_case "stats percentile edge cases" `Quick
      test_percentile_edge_cases;
    Alcotest.test_case "stats percentile vs nearest-rank reference" `Quick
      test_percentile_vs_nearest_rank;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "experiment trials" `Quick test_experiment_trials;
    Alcotest.test_case "experiment reproducible" `Quick test_experiment_reproducible;
    Alcotest.test_case "experiment failures" `Quick test_experiment_failures_counted;
  ]
