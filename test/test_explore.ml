(* Tests for the model checker: bitsets, state spaces, transition systems,
   closure and convergence checking. *)

module Domain = Guarded.Domain
module Env = Guarded.Env
module State = Guarded.State
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program
module Compile = Guarded.Compile
module Bitset = Explore.Bitset
module Space = Explore.Space
module Tsys = Explore.Tsys
module Engine = Explore.Engine
module Closure = Explore.Closure
module Convergence = Explore.Convergence

(* --- Bitset --- *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.cardinal b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  Bitset.add b 99;
  Alcotest.(check int) "card" 3 (Bitset.cardinal b);
  Alcotest.(check bool) "mem" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem" false (Bitset.mem b 64);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "card after remove" 2 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list ascending" [ 0; 99 ] (Bitset.to_list b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.(check bool) "oob" true
    (try
       ignore (Bitset.mem b 8);
       false
     with Invalid_argument _ -> true)

let test_bitset_iteration () =
  let b = Bitset.create 50 in
  List.iter (Bitset.add b) [ 3; 17; 42 ];
  let acc = ref [] in
  Bitset.iter b (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "iter" [ 42; 17; 3 ] !acc;
  Alcotest.(check bool) "for_all" true (Bitset.for_all_members b (fun i -> i >= 3));
  Alcotest.(check bool) "for_all fails" false
    (Bitset.for_all_members b (fun i -> i > 3))

(* --- Space --- *)

let mk_two_vars () =
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 1 3) in
  let b = Env.fresh env "b" Domain.bool in
  (env, a, b)

let test_space_size_and_roundtrip () =
  let env, a, b = mk_two_vars () in
  let space = Space.create env in
  Alcotest.(check int) "3 * 2" 6 (Space.size space);
  for id = 0 to 5 do
    let s = Space.decode space id in
    Alcotest.(check int) "roundtrip" id (Space.encode space s);
    Alcotest.(check bool) "in domain" true (State.in_domain env s)
  done;
  (* distinct ids decode to distinct states *)
  let s0 = Space.decode space 0 and s5 = Space.decode space 5 in
  Alcotest.(check bool) "distinct" false (State.equal s0 s5);
  ignore a;
  ignore b

let test_space_encode_rejects_corrupt () =
  let env, a, _ = mk_two_vars () in
  let space = Space.create env in
  let s = State.make env in
  State.set_corrupt s a 9;
  Alcotest.(check bool) "rejects" true
    (try
       ignore (Space.encode space s);
       false
     with Invalid_argument _ -> true)

let test_space_too_large () =
  let env = Env.create () in
  ignore (Env.fresh_family env "x" 10 (Domain.range 0 99));
  Alcotest.(check bool) "raises Too_large" true
    (try
       ignore (Space.create env);
       false
     with Space.Too_large _ -> true)

let test_space_iter_and_count () =
  let env, a, b = mk_two_vars () in
  let space = Space.create env in
  let n = ref 0 in
  Space.iter space (fun _ _ -> incr n);
  Alcotest.(check int) "visits all" 6 !n;
  let even = Space.count_satisfying space (fun s -> State.get s a = 2) in
  Alcotest.(check int) "a=2 count" 2 even;
  let ids = Space.satisfying space (fun s -> State.get s b = 1) in
  Alcotest.(check int) "b=1 count" 3 (List.length ids)

(* --- A tiny up/down counter fixture ---

   x in 0..3; "up" increments below 3, "reset" jumps to 0 from 3.
   Every state reaches x = 0 eventually, but the loop never stops. *)
let counter () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let open Expr in
  let up = Action.make ~name:"up" ~guard:(var x < int 3) [ (x, var x + int 1) ] in
  let reset = Action.make ~name:"reset" ~guard:(var x = int 3) [ (x, int 0) ] in
  let p = Program.make ~name:"counter" env [ up; reset ] in
  (env, x, p)

let test_tsys_build () =
  let env, _, p = counter () in
  let space = Space.create env in
  let tsys = Tsys.build (Compile.program p) space in
  Alcotest.(check int) "states" 4 (Tsys.state_count tsys);
  Alcotest.(check int) "one transition per state" 4 (Tsys.transition_count tsys);
  (* successors of x=0 is x=1 via action 0 *)
  Alcotest.(check (list (pair int int))) "succ of 0" [ (0, 1) ] (Tsys.succ tsys 0);
  Alcotest.(check (list (pair int int))) "succ of 3 wraps" [ (1, 0) ]
    (Tsys.succ tsys 3);
  Alcotest.(check bool) "no terminal" false (Tsys.is_terminal tsys 2)

let test_tsys_reachable () =
  let env, _, p = counter () in
  let space = Space.create env in
  let tsys = Tsys.build (Compile.program p) space in
  let reach = Tsys.reachable tsys [ 2 ] in
  Alcotest.(check int) "all reachable from 2" 4 (Bitset.cardinal reach)

let test_tsys_region_graph () =
  let env, _, p = counter () in
  let space = Space.create env in
  let tsys = Tsys.build (Compile.program p) space in
  (* region = states with x >= 2 -> nodes 2,3; edges 2->3 only (3->0 exits) *)
  let g, node_to_state, state_to_node =
    Tsys.region_graph_full tsys ~member:(fun id -> id >= 2)
  in
  Alcotest.(check int) "two nodes" 2 (Dgraph.Digraph.node_count g);
  Alcotest.(check int) "one internal edge" 1 (Dgraph.Digraph.edge_count g);
  Alcotest.(check int) "mapping" 2 node_to_state.(0);
  Alcotest.(check int) "inverse" 0 (state_to_node 2);
  Alcotest.(check int) "nonmember" (-1) (state_to_node 0)

(* --- Closure --- *)

let test_closure_holds () =
  let env, x, p = counter () in
  let engine = Engine.create env in
  let cp = Compile.program p in
  (* x <= 3 is closed (trivially); x <= 2 is not (up breaks it at 2). *)
  (match Closure.program_closed engine cp ~pred:(fun s -> State.get s x <= 3) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "x<=3 should be closed");
  match Closure.program_closed engine cp ~pred:(fun s -> State.get s x <= 2) with
  | Ok () -> Alcotest.fail "x<=2 should not be closed"
  | Error v ->
      Alcotest.(check string) "violator" "up" (Action.name v.Closure.action);
      Alcotest.(check int) "pre x" 2 (State.get v.Closure.pre x);
      Alcotest.(check int) "post x" 3 (State.get v.Closure.post x)

let test_closure_given_hypothesis () =
  let env, x, p = counter () in
  let engine = Engine.create env in
  let cp = Compile.program p in
  (* under hypothesis x <> 2, the predicate x <= 2 is preserved *)
  match
    Closure.program_closed
      ~given:(fun s -> State.get s x <> 2)
      engine cp
      ~pred:(fun s -> State.get s x <= 2)
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "hypothesis should exclude the violation"

(* --- Convergence --- *)

let test_convergence_converges () =
  (* "down" only: from anywhere, reach x = 0 and stop. *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let down =
    Expr.(Action.make ~name:"down" ~guard:(var x > int 0) [ (x, var x - int 1) ])
  in
  let p = Program.make ~name:"down" env [ down ] in
  let engine = Engine.create env in
  match
    Convergence.check_unfair engine (Compile.program p) ~from:Engine.All
      ~target:(fun s -> State.get s x = 0)
  with
  | Ok { region_states; worst_case_steps; _ } ->
      Alcotest.(check int) "region" 3 region_states;
      Alcotest.(check (option int)) "worst steps" (Some 3) worst_case_steps
  | Error _ -> Alcotest.fail "should converge"

let test_convergence_deadlock () =
  (* "down" but guard stops at 1: states ending at x=1 never reach 0. *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let down =
    Expr.(Action.make ~name:"down" ~guard:(var x > int 1) [ (x, var x - int 1) ])
  in
  let p = Program.make ~name:"down" env [ down ] in
  let engine = Engine.create env in
  match
    Convergence.check_unfair engine (Compile.program p) ~from:Engine.All
      ~target:(fun s -> State.get s x = 0)
  with
  | Error (Convergence.Deadlock s) ->
      Alcotest.(check int) "stuck at 1" 1 (State.get s x)
  | _ -> Alcotest.fail "expected deadlock"

let test_convergence_livelock () =
  let env, x, p = counter () in
  let engine = Engine.create env in
  (* the counter loops forever; target x = 17 impossible, x=... any
     unreachable predicate gives a livelock through the whole loop *)
  match
    Convergence.check_unfair engine (Compile.program p) ~from:Engine.All
      ~target:(fun s -> State.get s x = 2 && false)
  with
  | Error (Convergence.Livelock states) ->
      Alcotest.(check bool) "cycle non-empty" true (List.length states >= 2)
  | _ -> Alcotest.fail "expected livelock"

let test_convergence_from_restriction () =
  (* two disconnected halves: y=0 stays, y=1 diverges; restricting `from`
     to y=0 should ignore the bad half *)
  let env = Env.create () in
  let y = Env.fresh env "y" Domain.bool in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let down =
    Expr.(
      Action.make ~name:"down"
        ~guard:(var y = int 0 && var x > int 0)
        [ (x, var x - int 1) ])
  in
  let spin =
    Expr.(
      Action.make ~name:"spin"
        ~guard:(var y = int 1 && var x > int 0)
        [ (x, ite (var x = int 1) (int 2) (int 1)) ])
  in
  let p = Program.make ~name:"split" env [ down; spin ] in
  let engine = Engine.create env in
  let cp = Compile.program p in
  let target s = State.get s x = 0 in
  (match
     Convergence.check_unfair engine cp
       ~from:(Engine.Pred (fun s -> State.get s y = 0))
       ~target
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "good half should converge");
  match Convergence.check_unfair engine cp ~from:Engine.All ~target with
  | Error (Convergence.Livelock _) -> ()
  | _ -> Alcotest.fail "bad half should livelock"

let test_convergence_fair_beats_unfair () =
  (* x spins between 1 and 2 via "spin", but "exit" (always enabled while
     x > 0) sends it to 0: unfair check sees a livelock, weak fairness
     converges because exit is continuously enabled and leaves the SCC. *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let spin =
    Expr.(
      Action.make ~name:"spin"
        ~guard:(var x > int 0)
        [ (x, ite (var x = int 1) (int 2) (int 1)) ])
  in
  let exit_a =
    Expr.(Action.make ~name:"exit" ~guard:(var x > int 0) [ (x, int 0) ])
  in
  let p = Program.make ~name:"spin-exit" env [ spin; exit_a ] in
  let engine = Engine.create env in
  let cp = Compile.program p in
  let target s = State.get s x = 0 in
  (match Convergence.check_unfair engine cp ~from:Engine.All ~target with
  | Error (Convergence.Livelock _) -> ()
  | _ -> Alcotest.fail "unfair should livelock");
  match Convergence.check_fair engine cp ~from:Engine.All ~target with
  | Convergence.Converges { worst_case_steps = None; _ } -> ()
  | Convergence.Converges _ -> Alcotest.fail "fair-only should have no bound"
  | _ -> Alcotest.fail "fair check should converge"

let test_convergence_fair_unknown () =
  (* Two actions alternate and neither is continuously enabled across the
     whole SCC with a uniform exit: the sound criterion gives Unknown. *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let a = Expr.(Action.make ~name:"a" ~guard:(var x = int 1) [ (x, int 2) ]) in
  let b = Expr.(Action.make ~name:"b" ~guard:(var x = int 2) [ (x, int 1) ]) in
  let p = Program.make ~name:"ab" env [ a; b ] in
  let engine = Engine.create env in
  match
    Convergence.check_fair engine (Compile.program p) ~from:Engine.All
      ~target:(fun s -> State.get s x = 0)
  with
  | Convergence.Unknown _ -> ()
  | Convergence.Converges _ -> Alcotest.fail "cannot converge"
  | Convergence.Fails (Convergence.Deadlock _) ->
      Alcotest.fail "no deadlock here (x=0 is target)"
  | Convergence.Fails _ -> Alcotest.fail "livelock is genuinely fair here"

let test_convergence_fair_deadlock_definitive () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 1) in
  let p = Program.make ~name:"empty" env [] in
  let engine = Engine.create env in
  match
    Convergence.check_fair engine (Compile.program p) ~from:Engine.All
      ~target:(fun s -> State.get s x = 0)
  with
  | Convergence.Fails (Convergence.Deadlock s) ->
      Alcotest.(check int) "stuck at 1" 1 (State.get s x)
  | _ -> Alcotest.fail "expected deadlock"

let suite =
  [
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset iteration" `Quick test_bitset_iteration;
    Alcotest.test_case "space size and roundtrip" `Quick
      test_space_size_and_roundtrip;
    Alcotest.test_case "space rejects corrupt" `Quick
      test_space_encode_rejects_corrupt;
    Alcotest.test_case "space too large" `Quick test_space_too_large;
    Alcotest.test_case "space iter/count" `Quick test_space_iter_and_count;
    Alcotest.test_case "tsys build" `Quick test_tsys_build;
    Alcotest.test_case "tsys reachable" `Quick test_tsys_reachable;
    Alcotest.test_case "tsys region graph" `Quick test_tsys_region_graph;
    Alcotest.test_case "closure check" `Quick test_closure_holds;
    Alcotest.test_case "closure with hypothesis" `Quick
      test_closure_given_hypothesis;
    Alcotest.test_case "convergence success" `Quick test_convergence_converges;
    Alcotest.test_case "convergence deadlock" `Quick test_convergence_deadlock;
    Alcotest.test_case "convergence livelock" `Quick test_convergence_livelock;
    Alcotest.test_case "convergence from restriction" `Quick
      test_convergence_from_restriction;
    Alcotest.test_case "fair convergence beats unfair" `Quick
      test_convergence_fair_beats_unfair;
    Alcotest.test_case "fair criterion unknown" `Quick
      test_convergence_fair_unknown;
    Alcotest.test_case "fair deadlock definitive" `Quick
      test_convergence_fair_deadlock_definitive;
  ]
