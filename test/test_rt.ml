(* Tests for the runtime-robustness layer: budgets, cancellation tokens,
   guards, watchdogs, and checkpoint files — and, most importantly, that
   a search interrupted at an arbitrary budget point and resumed from its
   checkpoint reaches a verdict bit-identical to the uninterrupted run,
   on the lazy or parallel backend at any job count. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Action = Guarded.Action
module Expr = Guarded.Expr
module Engine = Explore.Engine
module Faultspan = Explore.Faultspan
module Fault = Sim.Fault
module Token_ring = Protocols.Token_ring

(* --- Budget / Cancel / Guard / Watchdog units --- *)

let invalid f = try f () |> ignore; false with Invalid_argument _ -> true

let test_budget_validation () =
  Alcotest.(check bool) "unlimited" true
    (Rt.Budget.is_unlimited Rt.Budget.unlimited);
  Alcotest.(check bool) "empty make unlimited" true
    (Rt.Budget.is_unlimited (Rt.Budget.make ()));
  Alcotest.(check bool) "max_states limited" false
    (Rt.Budget.is_unlimited (Rt.Budget.make ~max_states:1 ()));
  Alcotest.(check bool) "negative deadline rejected" true
    (invalid (fun () -> Rt.Budget.make ~deadline_s:(-1.0) ()));
  Alcotest.(check bool) "zero max_states rejected" true
    (invalid (fun () -> Rt.Budget.make ~max_states:0 ()));
  Alcotest.(check bool) "negative max_bytes rejected" true
    (invalid (fun () -> Rt.Budget.make ~max_bytes:(-5) ()))

let test_cancel_first_wins () =
  let c = Rt.Cancel.create () in
  Alcotest.(check bool) "fresh token empty" true (Rt.Cancel.get c = None);
  Rt.Cancel.request c (Rt.Cancel.Signal "SIGINT");
  Rt.Cancel.request c Rt.Cancel.Deadline;
  Alcotest.(check bool) "first request wins" true
    (Rt.Cancel.get c = Some (Rt.Cancel.Signal "SIGINT"));
  Rt.Cancel.clear c;
  Alcotest.(check bool) "cleared" true (Rt.Cancel.get c = None);
  Alcotest.(check string) "label deadline" "deadline"
    (Rt.Cancel.reason_label Rt.Cancel.Deadline);
  Alcotest.(check string) "label states" "max-states"
    (Rt.Cancel.reason_label Rt.Cancel.Max_states);
  Alcotest.(check string) "label signal" "signal:SIGTERM"
    (Rt.Cancel.reason_label (Rt.Cancel.Signal "SIGTERM"))

let test_guard_thresholds () =
  Alcotest.(check bool) "inert inactive" false (Rt.Guard.active Rt.Guard.inert);
  Alcotest.(check bool) "inert never trips" true
    (Rt.Guard.poll Rt.Guard.inert ~states:max_int ~bytes:max_int = None);
  let g =
    Rt.Guard.create
      ~budget:(Rt.Budget.make ~max_states:100 ~max_bytes:1_000 ())
      ()
  in
  Alcotest.(check bool) "active" true (Rt.Guard.active g);
  Alcotest.(check bool) "at the cap: no trip" true
    (Rt.Guard.poll g ~states:100 ~bytes:1_000 = None);
  Alcotest.(check bool) "states over cap" true
    (Rt.Guard.poll g ~states:101 ~bytes:0 = Some Rt.Cancel.Max_states);
  Alcotest.(check bool) "bytes over cap" true
    (Rt.Guard.poll g ~states:0 ~bytes:1_001 = Some Rt.Cancel.Max_bytes);
  (* a tripped budget marks the attached token so sibling pollers see it *)
  let c = Rt.Cancel.create () in
  let g2 = Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:10 ()) ~cancel:c () in
  ignore (Rt.Guard.poll g2 ~states:11 ~bytes:0);
  Alcotest.(check bool) "trip marks the cancel token" true
    (Rt.Cancel.get c = Some Rt.Cancel.Max_states)

let test_guard_deadline () =
  let g = Rt.Guard.create ~budget:(Rt.Budget.make ~deadline_s:0.005 ()) () in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "expired deadline trips" true
    (Rt.Guard.poll g ~states:0 ~bytes:0 = Some Rt.Cancel.Deadline);
  let far = Rt.Guard.create ~budget:(Rt.Budget.make ~deadline_s:3600.0 ()) () in
  Alcotest.(check bool) "future deadline quiet" true
    (Rt.Guard.poll far ~states:0 ~bytes:0 = None)

let test_guard_link () =
  let parent = Rt.Cancel.create () in
  Alcotest.(check bool) "link alone makes the guard active" true
    (Rt.Guard.active (Rt.Guard.create ~link:parent ()));
  let g =
    Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:10 ()) ~link:parent ()
  in
  Alcotest.(check bool) "scoped budget trips" true
    (Rt.Guard.poll g ~states:11 ~bytes:0 = Some Rt.Cancel.Max_states);
  Alcotest.(check bool) "linked token never marked by a scoped trip" true
    (Rt.Cancel.get parent = None);
  Rt.Cancel.request parent (Rt.Cancel.Signal "SIGTERM");
  Alcotest.(check bool) "parent cancellation observed at the next poll" true
    (Rt.Guard.poll g ~states:0 ~bytes:0 = Some (Rt.Cancel.Signal "SIGTERM"))

let test_watchdog () =
  Alcotest.(check bool) "zero timeout rejected" true
    (invalid (fun () -> Rt.Watchdog.make ~timeout_s:0.0 ()));
  Alcotest.(check bool) "negative retries rejected" true
    (invalid (fun () -> Rt.Watchdog.make ~retries:(-1) ~timeout_s:1.0 ()));
  let w = Rt.Watchdog.make ~retries:3 ~timeout_s:0.5 () in
  Alcotest.(check int) "retries recorded" 3 w.Rt.Watchdog.retries;
  let now = Unix.gettimeofday () in
  let d = Rt.Watchdog.deadline w in
  Alcotest.(check bool) "deadline is timeout from now" true
    (d -. now > 0.4 && d -. now < 0.7)

(* --- Snapshot files --- *)

let sample_snapshot () =
  {
    Rt.Snapshot.kind = "test";
    config_hash = "deadbeefdeadbeef";
    meta = [ ("alpha", 7); ("huge", max_int) ];
    sections =
      [
        ("small", [| 1; 2; 3 |]);
        (* elements past int32 force the 8-byte-wide encoding *)
        ("wide", [| 0; 1 lsl 40; max_int |]);
        ("empty", [||]);
      ];
  }

let with_temp_file f =
  let file = Filename.temp_file "nmsnap" ".snap" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () -> f file)

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let write_file file s =
  let oc = open_out_bin file in
  output_string oc s;
  close_out oc

let loads_corrupt file =
  try
    ignore (Rt.Snapshot.load ~file);
    false
  with Rt.Snapshot.Corrupt _ -> true

let test_snapshot_roundtrip () =
  with_temp_file @@ fun file ->
  let snap = sample_snapshot () in
  Rt.Snapshot.save ~file snap;
  let back = Rt.Snapshot.load ~file in
  Alcotest.(check bool) "roundtrip preserves everything" true (back = snap);
  Alcotest.(check int) "meta_int" 7 (Rt.Snapshot.meta_int back "alpha");
  Alcotest.(check int) "wide section survives" (1 lsl 40)
    (Rt.Snapshot.section back "wide").(1);
  Alcotest.(check int) "total elems" 6 (Rt.Snapshot.total_elems back);
  (* saves rename a temp file into place; a completed save leaves none *)
  Alcotest.(check bool) "no temp file left behind" false
    (Sys.file_exists (file ^ ".tmp"))

let test_snapshot_corruption_detected () =
  with_temp_file @@ fun file ->
  Rt.Snapshot.save ~file (sample_snapshot ());
  let raw = read_file file in
  (* truncation *)
  write_file file (String.sub raw 0 (String.length raw - 7));
  Alcotest.(check bool) "truncated file rejected" true (loads_corrupt file);
  (* single-byte flip mid-file: the checksum must catch it *)
  let flipped = Bytes.of_string raw in
  let mid = String.length raw / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
  write_file file (Bytes.to_string flipped);
  Alcotest.(check bool) "bit-flipped file rejected" true (loads_corrupt file);
  (* not a snapshot at all *)
  write_file file "definitely not a checkpoint";
  Alcotest.(check bool) "garbage rejected" true (loads_corrupt file);
  Alcotest.(check bool) "missing file rejected" true
    (loads_corrupt "/nonexistent/nmsnap.snap")

let test_snapshot_crafted_header_rejected () =
  with_temp_file @@ fun file ->
  (* a valid magic and plausible header length framing garbage header
     bytes must raise Corrupt — the hand-rolled decoder bounds-checks
     every length, where Marshal.from_string could crash the process *)
  let b = Buffer.create 64 in
  Buffer.add_string b "NMSNAP02";
  let len = Bytes.create 4 in
  Bytes.set_int32_le len 0 24l;
  Buffer.add_bytes b len;
  Buffer.add_string b (String.make 24 '\xFF');
  Buffer.add_string b (String.make 8 '\x00');
  write_file file (Buffer.contents b);
  Alcotest.(check bool) "crafted header rejected" true (loads_corrupt file)

let test_snapshot_missing_fields () =
  let snap = sample_snapshot () in
  Alcotest.(check bool) "missing meta key" true
    (try ignore (Rt.Snapshot.meta_int snap "nope"); false
     with Rt.Snapshot.Corrupt _ -> true);
  Alcotest.(check bool) "missing section" true
    (try ignore (Rt.Snapshot.section snap "nope"); false
     with Rt.Snapshot.Corrupt _ -> true)

(* --- interrupt/resume machinery shared by the determinism tests --- *)

let save_load snap =
  with_temp_file @@ fun file ->
  Rt.Snapshot.save ~file snap;
  Rt.Snapshot.load ~file

let region_fp (r : Engine.region) =
  ( Array.to_list r.Engine.node_key,
    Array.to_list r.Engine.terminal,
    r.Engine.explored,
    List.map
      (fun (e : _ Dgraph.Digraph.edge) -> (e.Dgraph.Digraph.src, e.dst, e.label))
      (Dgraph.Digraph.edges r.Engine.graph) )

let interrupt_region ?salt ~backend ~jobs ~budget_states env cp ~from ~target
    () =
  let guard =
    Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:budget_states ()) ()
  in
  let engine =
    Engine.create ~backend ~jobs ~guard ~snapshots:true ?salt env
  in
  match Engine.region engine cp ~from ~target with
  | r -> `Completed r
  | exception Engine.Interrupted it -> (
      Alcotest.(check bool) "partial progress reported" true
        (it.Engine.states_seen > 0);
      Alcotest.(check bool) "frontier pending" true (it.Engine.frontier_size > 0);
      match it.Engine.snapshot with
      | None -> Alcotest.fail "interrupt carries no snapshot"
      | Some snap -> `Snapshot (save_load snap, it.Engine.states_seen))

let resume_region ~backend ~jobs env cp ~target snap =
  let engine = Engine.create ~backend ~jobs env in
  Engine.region ~resume:snap engine cp ~from:(Engine.Seeds []) ~target

(* A pure 0..n-1 counter: branching factor 1, so the lazy backend's
   explored count tracks its pop count and a state budget of [b]
   interrupts within one poll interval of [b] — precise control over
   where the wavefront is cut. *)
let counter_model n =
  let env = Guarded.Env.create () in
  let hi = n - 1 in
  let x = Guarded.Env.fresh env "x" (Guarded.Domain.range 0 hi) in
  let inc =
    Expr.(Action.make ~name:"inc" ~guard:(var x < int hi) [ (x, var x + int 1) ])
  in
  let cp = Compile.program (Guarded.Program.make ~name:"counter" env [ inc ]) in
  (env, cp)

(* The token ring plus single-variable corruption compiled as one
   program: the forward closure of one seed is the whole space, reached
   through wide BFS frontiers — the bushy counterpart to [counter_model]. *)
let ring_with_corrupt ~nodes ~k =
  let tr = Token_ring.make ~nodes ~k in
  let env = Token_ring.env tr in
  let actions =
    Array.to_list (Guarded.Program.actions (Token_ring.combined tr))
    @ Fault.actions (Fault.corrupt env ~k:1)
  in
  let cp =
    Compile.program (Guarded.Program.make ~name:"ring+corrupt" env actions)
  in
  (tr, env, cp)

let writers = [ (Engine.Lazy, 1); (Engine.Parallel, 4) ]
let resumers = [ (Engine.Lazy, 1); (Engine.Parallel, 1); (Engine.Parallel, 4) ]

let bname = function
  | Engine.Eager -> "eager"
  | Engine.Lazy -> "lazy"
  | Engine.Parallel -> "parallel"

let check_resume_matrix ~budgets env cp ~from ~target =
  let base =
    region_fp
      (Engine.region (Engine.create ~backend:Engine.Lazy env) cp ~from ~target)
  in
  List.iter
    (fun budget_states ->
      List.iter
        (fun (wb, wj) ->
          match
            interrupt_region ~backend:wb ~jobs:wj ~budget_states env cp ~from
              ~target ()
          with
          | `Completed r ->
              Alcotest.(check bool)
                (Printf.sprintf "%s j%d finished under budget %d" (bname wb)
                   wj budget_states)
                true
                (region_fp r = base)
          | `Snapshot (snap, _) ->
              List.iter
                (fun (rb, rj) ->
                  let r = resume_region ~backend:rb ~jobs:rj env cp ~target snap in
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "cut at %d by %s j%d, resumed on %s j%d: bit-identical"
                       budget_states (bname wb) wj (bname rb) rj)
                    true
                    (region_fp r = base))
                resumers)
        writers)
    budgets

let test_region_resume_counter () =
  let n = 20_000 in
  let env, cp = counter_model n in
  let from = Engine.Seeds [ State.make env ] in
  (* members everywhere: the full chain, its edges, and its terminal *)
  let target _ = false in
  check_resume_matrix ~budgets:[ 2_000; 9_000; 17_000 ] env cp ~from ~target

let test_region_resume_bushy () =
  let tr, env, cp = ring_with_corrupt ~nodes:4 ~k:12 in
  let from = Engine.Seeds [ Token_ring.all_zero tr ] in
  let target s = Token_ring.invariant tr s in
  check_resume_matrix ~budgets:[ 1_500; 8_000; 18_000 ] env cp ~from ~target

let test_region_resume_chained () =
  (* interrupt, resume under a looser budget, interrupt again strictly
     later, then resume to completion across backends *)
  let n = 20_000 in
  let env, cp = counter_model n in
  let from = Engine.Seeds [ State.make env ] in
  let target _ = false in
  let base =
    region_fp
      (Engine.region (Engine.create ~backend:Engine.Lazy env) cp ~from ~target)
  in
  match
    interrupt_region ~backend:Engine.Lazy ~jobs:1 ~budget_states:2_000 env cp
      ~from ~target ()
  with
  | `Completed _ -> Alcotest.fail "budget 2000 must interrupt a 20000-state run"
  | `Snapshot (snap1, seen1) -> (
      let guard =
        Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:10_000 ()) ()
      in
      let engine =
        Engine.create ~backend:Engine.Lazy ~guard ~snapshots:true env
      in
      match Engine.region ~resume:snap1 engine cp ~from:(Engine.Seeds []) ~target with
      | _ -> Alcotest.fail "budget 10000 must interrupt the resumed run"
      | exception Engine.Interrupted it2 ->
          Alcotest.(check bool) "second cut strictly later" true
            (it2.Engine.states_seen > seen1);
          let snap2 = save_load (Option.get it2.Engine.snapshot) in
          let r =
            resume_region ~backend:Engine.Parallel ~jobs:4 env cp ~target snap2
          in
          Alcotest.(check bool) "twice-interrupted run bit-identical" true
            (region_fp r = base))

let test_resume_rejects_mismatches () =
  let n = 5_000 in
  let env, cp = counter_model n in
  let from = Engine.Seeds [ State.make env ] in
  let target _ = false in
  let snap =
    match
      interrupt_region ~salt:"salted" ~backend:Engine.Lazy ~jobs:1
        ~budget_states:2_000 env cp ~from ~target ()
    with
    | `Snapshot (snap, _) -> snap
    | `Completed _ -> Alcotest.fail "budget must interrupt"
  in
  let rejects f = try ignore (f ()); false with Rt.Snapshot.Corrupt _ -> true in
  (* same model, different salt: the config hash must not match *)
  Alcotest.(check bool) "salt mismatch rejected" true
    (rejects (fun () ->
         Engine.region ~resume:snap
           (Engine.create ~backend:Engine.Lazy env)
           cp ~from:(Engine.Seeds []) ~target));
  let salted = Engine.create ~backend:Engine.Lazy ~salt:"salted" env in
  Alcotest.(check bool) "matching salt accepted" true
    (not
       (rejects (fun () ->
            Engine.region ~resume:snap salted cp ~from:(Engine.Seeds []) ~target)));
  (* a region checkpoint is not a span checkpoint *)
  Alcotest.(check bool) "kind mismatch rejected" true
    (rejects (fun () ->
         Faultspan.compute
           (Engine.create ~backend:Engine.Lazy ~salt:"salted" env)
           ~resume:snap ~faults:cp ~from:(Engine.Seeds []) ()));
  (* the eager backend has no wavefront to restore *)
  Alcotest.(check bool) "eager resume rejected" true
    (rejects (fun () ->
         Engine.region ~resume:snap
           (Engine.create ~backend:Engine.Eager ~salt:"salted" env)
           cp ~from:(Engine.Seeds []) ~target))

let test_interrupt_metadata () =
  let n = 5_000 in
  let env, cp = counter_model n in
  let from = Engine.Seeds [ State.make env ] in
  let target _ = false in
  (* without ~snapshots:true the interrupt must carry None *)
  let guard =
    Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:1_000 ()) ()
  in
  let engine = Engine.create ~backend:Engine.Lazy ~guard env in
  (match Engine.region engine cp ~from ~target with
  | _ -> Alcotest.fail "budget must interrupt"
  | exception Engine.Interrupted it ->
      Alcotest.(check bool) "reason is Max_states" true
        (it.Engine.reason = Rt.Cancel.Max_states);
      Alcotest.(check bool) "no snapshot without opt-in" true
        (it.Engine.snapshot = None));
  (* a pre-signalled cancel token carries its reason through, and the
     checkpoint written at the very first polling point still resumes *)
  let cancel = Rt.Cancel.create () in
  Rt.Cancel.request cancel (Rt.Cancel.Signal "SIGTERM");
  let engine2 =
    Engine.create ~backend:Engine.Lazy
      ~guard:(Rt.Guard.create ~cancel ())
      ~snapshots:true env
  in
  match Engine.region engine2 cp ~from ~target with
  | _ -> Alcotest.fail "signalled token must interrupt"
  | exception Engine.Interrupted it ->
      Alcotest.(check bool) "signal reason preserved" true
        (it.Engine.reason = Rt.Cancel.Signal "SIGTERM");
      let r =
        resume_region ~backend:Engine.Lazy ~jobs:1 env cp ~target
          (save_load (Option.get it.Engine.snapshot))
      in
      let base =
        region_fp
          (Engine.region (Engine.create ~backend:Engine.Lazy env) cp ~from
             ~target)
      in
      Alcotest.(check bool) "first-poll checkpoint resumes" true
        (region_fp r = base)

let test_eager_interrupt_no_snapshot () =
  (* the eager CSR build is a cancellation point but not checkpointable *)
  let tr = Token_ring.make ~nodes:4 ~k:10 in
  let env = Token_ring.env tr in
  let cancel = Rt.Cancel.create () in
  Rt.Cancel.request cancel (Rt.Cancel.Requested "test");
  let engine =
    Engine.create ~backend:Engine.Eager
      ~guard:(Rt.Guard.create ~cancel ())
      ~snapshots:true env
  in
  match
    Engine.region engine
      (Compile.program (Token_ring.combined tr))
      ~from:Engine.All
      ~target:(fun s -> Token_ring.invariant tr s)
  with
  | _ -> Alcotest.fail "cancelled eager build must interrupt"
  | exception Engine.Interrupted it ->
      Alcotest.(check bool) "reason carried" true
        (it.Engine.reason = Rt.Cancel.Requested "test");
      Alcotest.(check bool) "eager interrupts carry no snapshot" true
        (it.Engine.snapshot = None)

(* --- span checkpoint/resume --- *)

let span_fp span =
  ( Faultspan.count span,
    Faultspan.root_count span,
    Faultspan.max_depth span,
    Array.to_list (Faultspan.depth_histogram span),
    List.init (Faultspan.count span) (Faultspan.nth_key span) )

let test_span_resume_bit_identical () =
  let tr = Token_ring.make ~nodes:4 ~k:12 in
  let env = Token_ring.env tr in
  let cp = Compile.program (Token_ring.combined tr) in
  let fp =
    Compile.program
      (Guarded.Program.make ~name:"faults" env
         (Fault.actions (Fault.corrupt env ~k:1)))
  in
  let from = Engine.Seeds [ Token_ring.all_zero tr ] in
  let compute engine ?resume () =
    Faultspan.compute engine ~program:cp ~budget:3 ?resume ~faults:fp ~from ()
  in
  let base =
    span_fp (compute (Engine.create ~backend:Engine.Lazy env) ())
  in
  List.iter
    (fun budget_states ->
      List.iter
        (fun (wb, wj) ->
          let guard =
            Rt.Guard.create
              ~budget:(Rt.Budget.make ~max_states:budget_states ())
              ()
          in
          let engine =
            Engine.create ~backend:wb ~jobs:wj ~guard ~snapshots:true env
          in
          match compute engine () with
          | span ->
              Alcotest.(check bool)
                (Printf.sprintf "%s j%d span finished under %d" (bname wb) wj
                   budget_states)
                true
                (span_fp span = base)
          | exception Engine.Interrupted it ->
              let snap = save_load (Option.get it.Engine.snapshot) in
              Alcotest.(check string) "span-kind checkpoint" "span"
                snap.Rt.Snapshot.kind;
              List.iter
                (fun (rb, rj) ->
                  let span =
                    compute
                      (Engine.create ~backend:rb ~jobs:rj env)
                      ~resume:snap ()
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "span cut at %d by %s j%d, resumed on %s j%d"
                       budget_states (bname wb) wj (bname rb) rj)
                    true
                    (span_fp span = base))
                resumers)
        writers)
    [ 1_500; 8_000; 18_000 ]

(* --- certificate resume --- *)

let test_certify_resume_identical () =
  let tr = Token_ring.make ~nodes:4 ~k:8 in
  let env = Token_ring.env tr in
  let faults = Fault.actions (Fault.corrupt env ~k:1) in
  let certify engine ?resume () =
    Nonmask.Certify.tolerance ~engine ~program:(Token_ring.combined tr)
      ~faults
      ~invariant:(fun s -> Token_ring.invariant tr s)
      ~budget:1 ?resume ~name:"resume-test" ()
  in
  let render c = Format.asprintf "%a" Nonmask.Certify.pp_full c in
  let base = render (certify (Engine.create ~backend:Engine.Lazy env) ()) in
  let guard =
    Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:400 ()) ()
  in
  let engine =
    Engine.create ~backend:Engine.Lazy ~guard ~snapshots:true env
  in
  match certify engine () with
  | _ -> Alcotest.fail "budget 400 must interrupt the span phase"
  | exception Engine.Interrupted it ->
      let snap = save_load (Option.get it.Engine.snapshot) in
      Alcotest.(check string) "interrupted during the span" "span"
        snap.Rt.Snapshot.kind;
      List.iter
        (fun (rb, rj) ->
          let cert =
            certify (Engine.create ~backend:rb ~jobs:rj env) ~resume:snap ()
          in
          Alcotest.(check string)
            (Printf.sprintf "certificate identical on %s j%d" (bname rb) rj)
            base (render cert))
        [ (Engine.Lazy, 1); (Engine.Parallel, 4) ];
      (* a trip after the span (closure/convergence phases re-derive from
         it) must not masquerade as a resumable checkpoint *)
      let g2 =
        Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:1_000 ()) ()
      in
      let e2 = Engine.create ~backend:Engine.Lazy ~guard:g2 ~snapshots:true env in
      (match certify e2 () with
      | _ -> Alcotest.fail "budget 1000 must interrupt a post-span phase"
      | exception Engine.Interrupted it2 ->
          Alcotest.(check bool) "post-span interrupts carry no snapshot" true
            (it2.Engine.snapshot = None))

(* --- storm and fuzz degradation --- *)

let tripped_guard () =
  let cancel = Rt.Cancel.create () in
  Rt.Cancel.request cancel (Rt.Cancel.Requested "test");
  Rt.Guard.create ~cancel ()

let storm_trials ?guard ?watchdog ~stop ~max_steps ~trials () =
  let tr = Token_ring.make ~nodes:3 ~k:3 in
  let env = Token_ring.env tr in
  let fault = Fault.corrupt env ~k:1 in
  Sim.Storm.trials ~max_steps ?guard ?watchdog ~rng:(Prng.create 42) ~trials
    ~daemon:(fun r -> Sim.Daemon.random r)
    ~prepare:(fun r ->
      let s = Token_ring.all_zero tr in
      fault.Fault.inject r s;
      s)
    ~stop ~fault ~rate:0.2
    (Compile.program (Token_ring.combined tr))

let test_storm_skips_on_tripped_guard () =
  let tr = Token_ring.make ~nodes:3 ~k:3 in
  let result =
    storm_trials ~guard:(tripped_guard ())
      ~stop:(fun s -> Token_ring.invariant tr s)
      ~max_steps:10_000 ~trials:5 ()
  in
  Alcotest.(check int) "all trials skipped" 5 result.Sim.Storm.skipped;
  Alcotest.(check int) "skipped is not failed" 0 result.Sim.Storm.failures;
  Alcotest.(check int) "nothing converged" 0
    (Array.length result.Sim.Storm.steps)

let test_storm_watchdog_retries () =
  (* a trial that can never stop: every attempt must expire, be retried
     on a derived stream, and finally be abandoned and counted failed *)
  let result =
    storm_trials
      ~watchdog:(Rt.Watchdog.make ~retries:2 ~timeout_s:0.002 ())
      ~stop:(fun _ -> false)
      ~max_steps:50_000_000 ~trials:2 ()
  in
  Alcotest.(check int) "both trials abandoned" 2 result.Sim.Storm.timeouts;
  Alcotest.(check int) "two retries each" 4 result.Sim.Storm.retries;
  Alcotest.(check int) "abandoned trials are failures" 2
    result.Sim.Storm.failures;
  Alcotest.(check int) "none skipped" 0 result.Sim.Storm.skipped

let test_fuzz_skips_on_tripped_guard () =
  let report =
    Gen.Fuzz.run ~guard:(tripped_guard ()) ~jobs:1 ~seed:7 ~count:3 ()
  in
  Alcotest.(check int) "all trials skipped" 3 report.Gen.Fuzz.skipped;
  Alcotest.(check int) "trial count intact" 3 report.Gen.Fuzz.trials;
  Alcotest.(check bool) "no counterexamples fabricated" true
    (report.Gen.Fuzz.counterexamples = []);
  let rendered = Format.asprintf "%a" Gen.Fuzz.pp_report report in
  Alcotest.(check bool) "report says the sample is partial" true
    (Astring_contains.contains rendered "skipped")

let test_fuzz_watchdog_keeps_sweep_alive () =
  (* regression: a watchdog expiry inside one trial's oracle used to mark
     the sweep's shared cancel token, which skipped every later trial and
     turned one slow trial into a cancelled sweep (exit 5 via the CLI) *)
  let cancel = Rt.Cancel.create () in
  let guard = Rt.Guard.create ~cancel () in
  let watchdog = Rt.Watchdog.make ~retries:1 ~timeout_s:1e-9 () in
  let report = Gen.Fuzz.run ~guard ~watchdog ~jobs:1 ~seed:7 ~count:3 () in
  Alcotest.(check int) "no trial skipped" 0 report.Gen.Fuzz.skipped;
  Alcotest.(check int) "every trial expired instead" 3
    (List.length report.Gen.Fuzz.timeouts);
  Alcotest.(check bool) "global cancel token stays unmarked" true
    (Rt.Cancel.get cancel = None)

let suite =
  [
    Alcotest.test_case "budget validation" `Quick test_budget_validation;
    Alcotest.test_case "cancel token first-wins" `Quick test_cancel_first_wins;
    Alcotest.test_case "guard thresholds" `Quick test_guard_thresholds;
    Alcotest.test_case "guard deadline" `Quick test_guard_deadline;
    Alcotest.test_case "guard linked token is read-only" `Quick
      test_guard_link;
    Alcotest.test_case "watchdog policy" `Quick test_watchdog;
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot corruption detected" `Quick
      test_snapshot_corruption_detected;
    Alcotest.test_case "snapshot crafted header rejected" `Quick
      test_snapshot_crafted_header_rejected;
    Alcotest.test_case "snapshot missing fields" `Quick
      test_snapshot_missing_fields;
    Alcotest.test_case "region resume (counter, varied cuts)" `Slow
      test_region_resume_counter;
    Alcotest.test_case "region resume (bushy frontiers)" `Slow
      test_region_resume_bushy;
    Alcotest.test_case "region resume chained twice" `Quick
      test_region_resume_chained;
    Alcotest.test_case "resume rejects mismatches" `Quick
      test_resume_rejects_mismatches;
    Alcotest.test_case "interrupt metadata and first-poll resume" `Quick
      test_interrupt_metadata;
    Alcotest.test_case "eager interrupt carries no snapshot" `Quick
      test_eager_interrupt_no_snapshot;
    Alcotest.test_case "span resume bit-identical" `Slow
      test_span_resume_bit_identical;
    Alcotest.test_case "certificate resume identical" `Slow
      test_certify_resume_identical;
    Alcotest.test_case "storm skips on tripped guard" `Quick
      test_storm_skips_on_tripped_guard;
    Alcotest.test_case "storm watchdog retries then abandons" `Quick
      test_storm_watchdog_retries;
    Alcotest.test_case "fuzz skips on tripped guard" `Quick
      test_fuzz_skips_on_tripped_guard;
    Alcotest.test_case "fuzz watchdog expiry keeps the sweep alive" `Quick
      test_fuzz_watchdog_keeps_sweep_alive;
  ]
