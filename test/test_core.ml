(* Tests for the nonmask core: constraints, specs, constraint graphs,
   theorem validators, variant functions, and design helpers. *)

module Domain = Guarded.Domain
module Env = Guarded.Env
module State = Guarded.State
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program
module Var = Guarded.Var
module Constr = Nonmask.Constr
module Spec = Nonmask.Spec
module Cgraph = Nonmask.Cgraph
module Theorems = Nonmask.Theorems
module Variant = Nonmask.Variant
module Design = Nonmask.Design
module Certify = Nonmask.Certify

let vset = Var.Set.of_list

(* --- Constr --- *)

let test_constr_basics () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 5) in
  let y = Env.fresh env "y" (Domain.range 0 5) in
  let open Expr in
  let c = Constr.make ~name:"x<y" (var x < var y) in
  let s = State.of_list env [ (x, 1); (y, 3) ] in
  Alcotest.(check bool) "holds" true (Constr.holds c s);
  Alcotest.(check bool) "compiled agrees" true (Constr.compile c s);
  State.set s y 0;
  Alcotest.(check bool) "violated" false (Constr.holds c s);
  Alcotest.(check (list string)) "reads" [ "x"; "y" ]
    (Var.Set.elements (Constr.reads c) |> List.map Var.name)

let test_constr_conj_and_count () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 5) in
  let open Expr in
  let c1 = Constr.make ~name:"pos" (var x > int 0) in
  let c2 = Constr.make ~name:"small" (var x < int 3) in
  let s = State.of_list env [ (x, 0) ] in
  Alcotest.(check int) "one violated" 1 (Constr.violated_count [ c1; c2 ] s);
  Alcotest.(check bool) "conj" false (Expr.eval s (Constr.conj [ c1; c2 ]));
  State.set s x 2;
  Alcotest.(check int) "none violated" 0 (Constr.violated_count [ c1; c2 ] s)

(* --- Spec --- *)

let test_spec_defaults () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 5) in
  let open Expr in
  let p = Program.make ~name:"p" env [] in
  let spec = Spec.make ~name:"s" ~program:p ~invariant:(var x = int 0) () in
  let s = State.make env in
  Alcotest.(check bool) "T defaults to true" true (Spec.fault_span_holds spec s);
  Alcotest.(check bool) "S at zero" true (Spec.invariant_holds spec s);
  State.set s x 1;
  Alcotest.(check bool) "S off zero" false (Spec.invariant_holds spec s)

(* --- Cgraph --- *)

let xyz_fixture () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let y = Env.fresh env "y" (Domain.range 0 4) in
  let z = Env.fresh env "z" (Domain.range 0 3) in
  (env, x, y, z)

let test_cgraph_build_out_tree () =
  let _, x, y, z = xyz_fixture () in
  let c1 = Expr.(Constr.make ~name:"ne" (var x <> var y)) in
  let c2 = Expr.(Constr.make ~name:"le" (var x <= var z)) in
  let a1 =
    Expr.(Action.make ~name:"bump-y" ~guard:(var x = var y) [ (y, var y + int 1) ])
  in
  let a2 = Expr.(Action.make ~name:"raise-z" ~guard:(var x > var z) [ (z, var x) ]) in
  let g =
    Cgraph.build_exn
      ~nodes:
        [ ("x", vset [ x ]); ("y", vset [ y ]); ("z", vset [ z ]) ]
      ~pairs:
        [
          { Cgraph.constr = c1; action = a1 };
          { Cgraph.constr = c2; action = a2 };
        ]
  in
  Alcotest.(check bool) "out-tree" true (Cgraph.shape g = Dgraph.Classify.Out_tree);
  Alcotest.(check (pair int int)) "edge 1 from x to y" (0, 1) (Cgraph.edge_of_pair g 0);
  Alcotest.(check (pair int int)) "edge 2 from x to z" (0, 2) (Cgraph.edge_of_pair g 1);
  (match Cgraph.ranks g with
  | Some r -> Alcotest.(check (array int)) "ranks" [| 1; 2; 2 |] r
  | None -> Alcotest.fail "ranks expected");
  match Cgraph.pair_rank g with
  | Some r -> Alcotest.(check (array int)) "pair ranks" [| 2; 2 |] r
  | None -> Alcotest.fail "pair ranks expected"

let test_cgraph_self_loop_edge () =
  let _, x, y, _ = xyz_fixture () in
  (* action reads and writes only x: a self-loop at node x *)
  let c = Expr.(Constr.make ~name:"xpos" (var x > int 0)) in
  let a = Expr.(Action.make ~name:"fix-x" ~guard:(var x = int 0) [ (x, int 1) ]) in
  let g =
    Cgraph.build_exn
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]) ]
      ~pairs:[ { Cgraph.constr = c; action = a } ]
  in
  let src, dst = Cgraph.edge_of_pair g 0 in
  Alcotest.(check (pair int int)) "self loop" (0, 0) (src, dst);
  Alcotest.(check bool) "self-looping shape" true
    (Cgraph.shape g = Dgraph.Classify.Self_looping)

let test_cgraph_errors () =
  let _, x, y, z = xyz_fixture () in
  let open Expr in
  let c = Constr.make ~name:"c" (var x = int 0) in
  (* overlapping node labels *)
  (match
     Cgraph.build
       ~nodes:[ ("a", vset [ x; y ]); ("b", vset [ y ]) ]
       ~pairs:[]
   with
  | Error (Cgraph.Overlapping_nodes _) -> ()
  | _ -> Alcotest.fail "expected overlap error");
  (* unassigned variable *)
  (match
     Cgraph.build
       ~nodes:[ ("x", vset [ x ]) ]
       ~pairs:
         [
           {
             Cgraph.constr = c;
             action = Action.make ~name:"a" ~guard:(var y = int 0) [ (x, int 1) ];
           };
         ]
   with
  | Error (Cgraph.Unassigned_variable _) -> ()
  | _ -> Alcotest.fail "expected unassigned error");
  (* no writes *)
  (match
     Cgraph.build
       ~nodes:[ ("x", vset [ x ]) ]
       ~pairs:
         [ { Cgraph.constr = c; action = Action.make ~name:"a" ~guard:tt [] } ]
   with
  | Error (Cgraph.No_writes _) -> ()
  | _ -> Alcotest.fail "expected no-writes error");
  (* writes split across nodes *)
  (match
     Cgraph.build
       ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]) ]
       ~pairs:
         [
           {
             Cgraph.constr = c;
             action =
               Action.make ~name:"a" ~guard:tt [ (x, int 1); (y, int 1) ];
           };
         ]
   with
  | Error (Cgraph.Writes_cross_nodes _) -> ()
  | _ -> Alcotest.fail "expected cross-writes error");
  (* reads from three nodes *)
  match
    Cgraph.build
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]); ("z", vset [ z ]) ]
      ~pairs:
        [
          {
            Cgraph.constr = c;
            action =
              Action.make ~name:"a"
                ~guard:(var y = var z)
                [ (x, int 1) ];
          };
        ]
  with
  | Error (Cgraph.Reads_too_wide _) -> ()
  | _ -> Alcotest.fail "expected too-wide error"

let test_cgraph_infer_nodes () =
  let _, x, y, z = xyz_fixture () in
  let c1 = Expr.(Constr.make ~name:"ne" (var x <> var y)) in
  let c2 = Expr.(Constr.make ~name:"le" (var x <= var z)) in
  let pairs =
    [
      {
        Cgraph.constr = c1;
        action =
          Expr.(
            Action.make ~name:"a1" ~guard:(var x = var y) [ (y, var y + int 1) ]);
      };
      {
        Cgraph.constr = c2;
        action = Expr.(Action.make ~name:"a2" ~guard:(var x > var z) [ (z, var x) ]);
      };
    ]
  in
  let nodes = Cgraph.infer_nodes pairs in
  Alcotest.(check int) "three singleton nodes" 3 (List.length nodes);
  let g = Cgraph.build_exn ~nodes ~pairs in
  Alcotest.(check bool) "buildable and out-tree" true
    (Cgraph.shape g = Dgraph.Classify.Out_tree)

let test_cgraph_infer_merges_write_sets () =
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 0 1) in
  let b = Env.fresh env "b" (Domain.range 0 1) in
  let open Expr in
  let c = Constr.make ~name:"c" (var a = var b) in
  let pairs =
    [
      {
        Cgraph.constr = c;
        action =
          Action.make ~name:"w" ~guard:(var a <> var b)
            [ (a, int 0); (b, int 0) ];
      };
    ]
  in
  let nodes = Cgraph.infer_nodes pairs in
  Alcotest.(check int) "merged into one node" 1 (List.length nodes)

let test_cgraph_dot () =
  let _, x, y, _ = xyz_fixture () in
  let open Expr in
  let c = Constr.make ~name:"ne" (var x <> var y) in
  let g =
    Cgraph.build_exn
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]) ]
      ~pairs:
        [
          {
            Cgraph.constr = c;
            action =
              Action.make ~name:"a" ~guard:(var x = var y)
                [ (y, var y + int 1) ];
          };
        ]
  in
  let dot = Cgraph.to_dot g in
  Alcotest.(check bool) "mentions constraint" true
    (Astring_contains.contains dot "ne")

(* --- Theorems: a hand-built miniature --- *)

(* One constraint c: x = y, convergence action y := x; one closure action
   that increments both together. Constraint graph {x} -> {y}: out-tree. *)
let mini_spec () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let y = Env.fresh env "y" (Domain.range 0 2) in
  let open Expr in
  let closure =
    Action.make ~name:"step"
      ~guard:(var x = var y && var x < int 2)
      [ (x, var x + int 1); (y, var y + int 1) ]
  in
  let p = Program.make ~name:"mini" env [ closure ] in
  let c = Constr.make ~name:"agree" (var x = var y) in
  let spec =
    Spec.make ~name:"mini" ~program:p ~invariant:(Constr.pred c) ()
  in
  let pair =
    {
      Cgraph.constr = c;
      action = Design.convergence_action ~name:"sync" c [ (y, var x) ];
    }
  in
  let g =
    Cgraph.build_exn
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]) ]
      ~pairs:[ pair ]
  in
  (env, x, y, spec, g)

let test_theorem1_valid_mini () =
  let env, _, _, spec, g = mini_spec () in
  let engine = Explore.Engine.create env in
  let cert = Theorems.validate_theorem1 ~engine ~spec ~cgraph:g in
  Alcotest.(check bool) "valid" true (Certify.ok cert);
  Alcotest.(check bool) "theorem name" true (cert.Certify.theorem = "Theorem 1")

let test_theorem1_catches_bad_closure () =
  (* a closure action that breaks the constraint *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let y = Env.fresh env "y" (Domain.range 0 2) in
  let open Expr in
  let bad =
    Action.make ~name:"bad" ~guard:(var x < int 2) [ (x, var x + int 1) ]
  in
  let p = Program.make ~name:"bad" env [ bad ] in
  let c = Constr.make ~name:"agree" (var x = var y) in
  let spec = Spec.make ~name:"bad" ~program:p ~invariant:(Constr.pred c) () in
  let pair =
    {
      Cgraph.constr = c;
      action = Design.convergence_action ~name:"sync" c [ (y, var x) ];
    }
  in
  let g =
    Cgraph.build_exn
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]) ]
      ~pairs:[ pair ]
  in
  let engine = Explore.Engine.create env in
  let cert = Theorems.validate_theorem1 ~engine ~spec ~cgraph:g in
  Alcotest.(check bool) "invalid" false (Certify.ok cert);
  Alcotest.(check bool) "some failure names the bad action" true
    (List.exists
       (fun ch ->
         Astring_contains.contains ch.Certify.label "bad")
       (Certify.failures cert))

let test_theorem1_rejects_non_out_tree () =
  (* two convergence actions writing the same node: not an out-tree *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range (-1) 2) in
  let y = Env.fresh env "y" (Domain.range 0 2) in
  let z = Env.fresh env "z" (Domain.range 0 2) in
  let open Expr in
  let p = Program.make ~name:"none" env [] in
  let c1 = Constr.make ~name:"ne" (var x <> var y) in
  let c2 = Constr.make ~name:"le" (var x <= var z) in
  let spec =
    Spec.make ~name:"t" ~program:p ~invariant:(Constr.conj [ c1; c2 ]) ()
  in
  let pairs =
    [
      {
        Cgraph.constr = c2;
        action = Action.make ~name:"lower" ~guard:(var x > var z) [ (x, var z) ];
      };
      {
        Cgraph.constr = c1;
        action =
          Action.make ~name:"dec" ~guard:(var x = var y) [ (x, var x - int 1) ];
      };
    ]
  in
  let g =
    Cgraph.build_exn
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]); ("z", vset [ z ]) ]
      ~pairs
  in
  let engine = Explore.Engine.create env in
  let cert1 = Theorems.validate_theorem1 ~engine ~spec ~cgraph:g in
  Alcotest.(check bool) "thm1 shape check fails" false (Certify.ok cert1);
  let cert2 = Theorems.validate_theorem2 ~engine ~spec ~cgraph:g in
  Alcotest.(check bool) "thm2 accepts with good order" true (Certify.ok cert2)

let test_theorem2_ordering_matters () =
  (* same as above but with the order that does NOT discharge: the
     decrement first, then lower-x, whose preservation of x<>y fails *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range (-1) 2) in
  let y = Env.fresh env "y" (Domain.range 0 2) in
  let z = Env.fresh env "z" (Domain.range 0 2) in
  let open Expr in
  let p = Program.make ~name:"none" env [] in
  let c1 = Constr.make ~name:"ne" (var x <> var y) in
  let c2 = Constr.make ~name:"le" (var x <= var z) in
  let spec =
    Spec.make ~name:"t" ~program:p ~invariant:(Constr.conj [ c1; c2 ]) ()
  in
  let pairs =
    [
      {
        Cgraph.constr = c1;
        action =
          Action.make ~name:"dec" ~guard:(var x = var y) [ (x, var x - int 1) ];
      };
      {
        Cgraph.constr = c2;
        action = Action.make ~name:"lower" ~guard:(var x > var z) [ (x, var z) ];
      };
    ]
  in
  let g =
    Cgraph.build_exn
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]); ("z", vset [ z ]) ]
      ~pairs
  in
  let engine = Explore.Engine.create env in
  let cert = Theorems.validate_theorem2 ~engine ~spec ~cgraph:g in
  Alcotest.(check bool) "bad order rejected" false (Certify.ok cert);
  Alcotest.(check bool) "failure mentions ordering" true
    (List.exists
       (fun ch -> Astring_contains.contains ch.Certify.label "ordering")
       (Certify.failures cert))

let test_augmented_program_dedup () =
  let env, _, _, spec, g = mini_spec () in
  ignore env;
  let p = Theorems.augmented_program spec [ g ] in
  Alcotest.(check int) "closure + conv" 2 (Program.action_count p);
  Alcotest.(check bool) "closure kept" true (Program.find_action p "step" <> None);
  Alcotest.(check bool) "convergence added" true
    (Program.find_action p "sync" <> None)

(* --- Variant --- *)

let test_variant_mini () =
  let env, x, y, spec, g = mini_spec () in
  match Variant.of_cgraph g with
  | None -> Alcotest.fail "ranks exist"
  | Some v ->
      (* node {x} has rank 1, node {y} rank 2; the only pair targets {y} *)
      Alcotest.(check int) "two ranks" 2 (Variant.rank_count v);
      let s = State.of_list env [ (x, 1); (y, 0) ] in
      Alcotest.(check (array int)) "violation at rank 2" [| 0; 1 |]
        (Variant.value v s);
      Alcotest.(check int) "total" 1 (Variant.total_violations v s);
      let engine = Explore.Engine.create env in
      (match Variant.check ~engine ~spec ~cgraph:g v with
      | Ok () -> ()
      | Error f ->
          Alcotest.failf "variant check failed on %s" f.Variant.action)

let test_variant_lex_compare () =
  Alcotest.(check bool) "lex" true (Variant.compare_values [| 0; 5 |] [| 1; 0 |] < 0);
  Alcotest.(check bool) "eq" true (Variant.compare_values [| 1; 2 |] [| 1; 2 |] = 0);
  Alcotest.(check bool) "gt" true (Variant.compare_values [| 2; 0 |] [| 1; 9 |] > 0)

let test_variant_catches_nondecreasing () =
  (* convergence action that does not establish its constraint *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let y = Env.fresh env "y" (Domain.range 0 2) in
  let open Expr in
  let p = Program.make ~name:"none" env [] in
  let c = Constr.make ~name:"agree" (var x = var y) in
  let spec = Spec.make ~name:"v" ~program:p ~invariant:(Constr.pred c) () in
  let pair =
    {
      Cgraph.constr = c;
      action =
        (* rotates y without establishing equality in general *)
        Action.make ~name:"rot"
          ~guard:(var x <> var y)
          [ (y, (var y + int 1) mod int 3) ];
    }
  in
  let g =
    Cgraph.build_exn
      ~nodes:[ ("x", vset [ x ]); ("y", vset [ y ]) ]
      ~pairs:[ pair ]
  in
  let engine = Explore.Engine.create env in
  match Variant.of_cgraph g with
  | None -> Alcotest.fail "ranks exist"
  | Some v -> (
      match Variant.check ~engine ~spec ~cgraph:g v with
      | Ok () -> Alcotest.fail "should catch non-decrease"
      | Error f ->
          Alcotest.(check string) "culprit" "rot" f.Variant.action)

(* --- Design --- *)

let test_design_convergence_action () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let y = Env.fresh env "y" (Domain.range 0 2) in
  let open Expr in
  let c = Constr.make ~name:"agree" (var x = var y) in
  let a = Design.convergence_action ~name:"sync" c [ (y, var x) ] in
  let s = State.of_list env [ (x, 1); (y, 0) ] in
  Alcotest.(check bool) "enabled on violation" true (Action.enabled a s);
  State.set s y 1;
  Alcotest.(check bool) "disabled when satisfied" false (Action.enabled a s)

let test_design_same_statement_and_combine () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let y = Env.fresh env "y" (Domain.range 0 2) in
  let open Expr in
  let a = Action.make ~name:"a" ~guard:(var x = int 0) [ (y, var x) ] in
  let b = Action.make ~name:"b" ~guard:(var x = int 1) [ (y, var x) ] in
  let c = Action.make ~name:"c" ~guard:tt [ (y, int 0) ] in
  Alcotest.(check bool) "same" true (Design.same_statement a b);
  Alcotest.(check bool) "different" false (Design.same_statement a c);
  let merged = Design.combine ~name:"ab" a b in
  let s0 = State.of_list env [ (x, 0); (y, 2) ] in
  let s1 = State.of_list env [ (x, 1); (y, 2) ] in
  let s2 = State.of_list env [ (x, 2); (y, 2) ] in
  Alcotest.(check bool) "enabled via a" true (Action.enabled merged s0);
  Alcotest.(check bool) "enabled via b" true (Action.enabled merged s1);
  Alcotest.(check bool) "disabled" false (Action.enabled merged s2);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Design.combine: statements differ") (fun () ->
      ignore (Design.combine ~name:"x" a c))

let test_design_simplify_action () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 2) in
  let open Expr in
  let a =
    Action.make ~name:"a"
      ~guard:(tt && var x = int 1)
      [ (x, var x + int 0) ]
  in
  let a' = Design.simplify_action a in
  Alcotest.(check bool) "guard simplified" true
    (Expr.equal (Action.guard a') (var x = int 1));
  Alcotest.(check bool) "rhs simplified" true
    (Expr.equal_num (snd (List.hd (Action.assigns a'))) (var x))

(* --- Certify --- *)

let test_certify_rendering () =
  let cert =
    {
      Certify.theorem = "Theorem 1";
      spec_name = "demo";
      shapes = [ ("q", Dgraph.Classify.Out_tree) ];
      checks =
        [ Certify.check_pass "good"; Certify.check_fail "bad" ~detail:"boom" ];
      summary = None;
    }
  in
  Alcotest.(check bool) "not ok" false (Certify.ok cert);
  Alcotest.(check int) "one failure" 1 (List.length (Certify.failures cert));
  let rendered = Format.asprintf "%a" Certify.pp cert in
  Alcotest.(check bool) "mentions INVALID" true
    (Astring_contains.contains rendered "INVALID");
  Alcotest.(check bool) "mentions detail" true
    (Astring_contains.contains rendered "boom")

let suite =
  [
    Alcotest.test_case "constr basics" `Quick test_constr_basics;
    Alcotest.test_case "constr conj/count" `Quick test_constr_conj_and_count;
    Alcotest.test_case "spec defaults" `Quick test_spec_defaults;
    Alcotest.test_case "cgraph out-tree build" `Quick test_cgraph_build_out_tree;
    Alcotest.test_case "cgraph self loop" `Quick test_cgraph_self_loop_edge;
    Alcotest.test_case "cgraph build errors" `Quick test_cgraph_errors;
    Alcotest.test_case "cgraph infer nodes" `Quick test_cgraph_infer_nodes;
    Alcotest.test_case "cgraph infer merges" `Quick test_cgraph_infer_merges_write_sets;
    Alcotest.test_case "cgraph dot" `Quick test_cgraph_dot;
    Alcotest.test_case "theorem1 valid mini" `Quick test_theorem1_valid_mini;
    Alcotest.test_case "theorem1 bad closure" `Quick test_theorem1_catches_bad_closure;
    Alcotest.test_case "theorem1 rejects non-out-tree" `Quick
      test_theorem1_rejects_non_out_tree;
    Alcotest.test_case "theorem2 ordering" `Quick test_theorem2_ordering_matters;
    Alcotest.test_case "augmented program" `Quick test_augmented_program_dedup;
    Alcotest.test_case "variant mini" `Quick test_variant_mini;
    Alcotest.test_case "variant lex compare" `Quick test_variant_lex_compare;
    Alcotest.test_case "variant catches non-decrease" `Quick
      test_variant_catches_nondecreasing;
    Alcotest.test_case "design convergence action" `Quick
      test_design_convergence_action;
    Alcotest.test_case "design combine" `Quick test_design_same_statement_and_combine;
    Alcotest.test_case "design simplify" `Quick test_design_simplify_action;
    Alcotest.test_case "certify rendering" `Quick test_certify_rendering;
  ]
