#!/bin/sh
# Smoke-tests the serve daemon end to end over a Unix socket: startup,
# a cold check, a cache hit on resubmission, verdicts and compile errors
# carried in-protocol (daemon stays up), metrics, and a SIGTERM drain
# that exits 0 and removes the socket file.
# Run from the repo root: sh test/smoke_serve.sh
set -u

BIN="${BIN:-_build/default/bin/nonmask_cli.exe}"
if [ ! -x "$BIN" ]; then
  echo "skip: $BIN not built (run dune build first)"
  exit 0
fi

tmp="${TMPDIR:-/tmp}"
sock="$tmp/nonmask_serve_smoke.$$.sock"
log="$tmp/nonmask_serve_smoke.$$.log"
out="$tmp/nonmask_serve_smoke.$$.out"
nm="$tmp/nonmask_serve_smoke.$$.bad.nm"
failed=0
pid=""
trap 'if [ -n "$pid" ]; then kill -KILL "$pid" 2>/dev/null; fi; rm -f "$sock" "$log" "$out" "$nm"' EXIT

note() { if [ "$1" -eq 0 ]; then echo "ok:   $2"; else echo "FAIL: $2"; failed=1; fi; }

"$BIN" serve --listen "$sock" --jobs 2 >"$log" 2>&1 &
pid=$!

# submit retries the connect internally while the daemon binds
"$BIN" submit --to "$sock" ping >"$out" 2>&1
note $? "daemon answers ping"

model=examples/models/token_ring.nm

"$BIN" submit --to "$sock" check "$model" >"$out" 2>&1
rc=$?
[ "$rc" -eq 0 ] && grep -q '"cached":false' "$out"
note $? "cold check -> exit 0, not cached"

"$BIN" submit --to "$sock" check "$model" >"$out" 2>&1
rc=$?
[ "$rc" -eq 0 ] && grep -q '"cached":true' "$out"
note $? "hot resubmission -> served from cache"

# a different spelling of the same job (explicit default option) is the
# same cache entry: options are normalized before keying
"$BIN" submit --to "$sock" check "$model" --opt engine=lazy >"$out" 2>&1
rc=$?
[ "$rc" -eq 0 ] && grep -q '"cached":true' "$out"
note $? "normalized options hit the same cache entry"

# a failed verdict is ok:true with result.exit=2, and the client
# surfaces it as its own exit code
cat >"$nm" <<'EOF'
model bad

var x : 0..2

action stay: x = 1 -> x := 1

invariant x = 0
EOF
"$BIN" submit --to "$sock" check "$nm" >"$out" 2>&1
rc=$?
[ "$rc" -eq 2 ] && grep -q '"ok":true' "$out"
note $? "failed verdict -> in-protocol exit 2 (got $rc)"

# a model that does not compile is an in-protocol bad-request, client
# exit 1 — and the daemon survives it
printf 'model broken\n' >"$nm"
"$BIN" submit --to "$sock" check "$nm" >"$out" 2>&1
rc=$?
[ "$rc" -eq 1 ] && grep -q '"code":"bad-request"' "$out"
note $? "compile error -> in-protocol bad-request (got $rc)"
"$BIN" submit --to "$sock" ping >"$out" 2>&1
note $? "daemon alive after hostile jobs"

# storm and certify travel the same pipe
"$BIN" submit --to "$sock" storm "$model" --opt trials=20 >"$out" 2>&1
note $? "storm job over the wire"
"$BIN" submit --to "$sock" certify "$model" --opt faults=corrupt:k=1 >"$out" 2>&1
note $? "certify job over the wire"

# metrics reports the cache traffic this script generated
"$BIN" submit --to "$sock" metrics >"$out" 2>&1
rc=$?
[ "$rc" -eq 0 ] && grep -q '"cache"' "$out" && grep -q 'serve_requests' "$out"
note $? "metrics op reports cache and prometheus text"

# SIGTERM: drain, exit 0, no socket file left behind
kill -TERM "$pid"
wait "$pid"
rc=$?
note "$rc" "SIGTERM drain -> daemon exit 0 (got $rc)"
grep -q 'drained' "$log"
note $? "daemon logged the drain"
[ ! -e "$sock" ]
note $? "socket file removed on drain"
pid=""

exit "$failed"
