(* Tests for the methodology extensions: convergence stairs (Section 7),
   refinement checking (concluding remarks), and the distributed-reset
   application (the paper's citation [12]). *)

module State = Guarded.State
module Compile = Guarded.Compile
module Tree = Topology.Tree
module Space = Explore.Space
module Engine = Explore.Engine
module Stair = Nonmask.Stair
module Refine = Nonmask.Refine
module Diffusing = Protocols.Diffusing
module Lowatomic = Protocols.Diffusing_lowatomic
module Token_ring = Protocols.Token_ring
module Reset = Protocols.Reset

(* --- Stairs --- *)

let test_stair_token_ring () =
  (* The paper's own two-stage argument: establish the first conjunct of S,
     then the second. *)
  let tr = Token_ring.make ~nodes:4 ~k:5 in
  let engine = Engine.create (Token_ring.env tr) in
  let x = Token_ring.x tr in
  let first_conjunct =
    Guarded.Compile.pred
      (Guarded.Expr.conj
         (List.init 3 (fun j ->
              let vj = x j and vj1 = x (j + 1) in
              Guarded.Expr.(var vj >= var vj1))))
  in
  let stair =
    Stair.validate ~engine
      ~program:(Token_ring.combined tr)
      ~name:"token-ring"
      [
        ("T", fun _ -> true);
        ("first-conjunct", first_conjunct);
        ("S", fun s -> Token_ring.invariant tr s);
      ]
  in
  if not (Stair.ok stair) then
    Alcotest.failf "stair invalid: %s" (Format.asprintf "%a" Stair.pp stair);
  Alcotest.(check int) "three steps recorded" 3 (List.length stair.Stair.steps)

let test_stair_rejects_bad_intermediate () =
  (* an intermediate predicate that is not closed must be rejected *)
  let tr = Token_ring.make ~nodes:3 ~k:4 in
  let engine = Engine.create (Token_ring.env tr) in
  let x = Token_ring.x tr in
  let not_closed =
    Guarded.Compile.pred Guarded.Expr.(var (x 0) = int 0)
  in
  let stair =
    Stair.validate ~engine
      ~program:(Token_ring.combined tr)
      ~name:"bad"
      [
        ("T", fun _ -> true);
        ("x0=0", not_closed);
        ("S", fun s -> Token_ring.invariant tr s);
      ]
  in
  Alcotest.(check bool) "rejected" false (Stair.ok stair)

let test_stair_rejects_non_contained () =
  let tr = Token_ring.make ~nodes:3 ~k:4 in
  let engine = Engine.create (Token_ring.env tr) in
  let stair =
    Stair.validate ~engine
      ~program:(Token_ring.combined tr)
      ~name:"bad"
      [
        ("R0", (fun s -> Token_ring.invariant tr s));
        ("R1", fun _ -> true);
      ]
  in
  Alcotest.(check bool) "containment fails" false (Stair.ok stair)

let test_stair_needs_two_predicates () =
  let tr = Token_ring.make ~nodes:3 ~k:4 in
  let engine = Engine.create (Token_ring.env tr) in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Stair.validate ~engine
            ~program:(Token_ring.combined tr)
            ~name:"x"
            [ ("T", fun _ -> true) ]);
       false
     with Invalid_argument _ -> true)

(* --- Refinement --- *)

let refinement_setup () =
  let tree = Tree.chain 3 in
  let d = Diffusing.make tree in
  let l = Lowatomic.make tree in
  let projection =
    List.concat_map
      (fun j ->
        [
          (Diffusing.color d j, Lowatomic.color l j);
          (Diffusing.session d j, Lowatomic.session l j);
        ])
      (Tree.nodes tree)
  in
  (tree, d, l, projection)

let test_refinement_within_consistency () =
  let _, d, l, projection = refinement_setup () in
  let r =
    Refine.check
      ~within:(fun s -> Lowatomic.consistent l s)
      ~abstract_env:(Diffusing.env d)
      ~engine:(Engine.create (Lowatomic.env l))
      ~abstract_program:(Diffusing.combined d)
      ~concrete_program:(Lowatomic.program l)
      ~projection
      ~abstract_invariant:(fun s -> Diffusing.invariant d s)
      ~concrete_invariant:(fun s -> Lowatomic.invariant l s)
      ()
  in
  if not (Refine.ok r) then
    Alcotest.failf "refinement failed: %s" (Format.asprintf "%a" Refine.pp r);
  Alcotest.(check bool) "work happened" true (r.Refine.simulated_steps > 0);
  Alcotest.(check bool) "scanning stutters" true (r.Refine.stutter_steps > 0)

let test_refinement_fails_from_arbitrary_states () =
  (* Outside the consistency relation a corrupted pointer reflects
     prematurely — a step the abstract program cannot take. *)
  let _, d, l, projection = refinement_setup () in
  let r =
    Refine.check
      ~abstract_env:(Diffusing.env d)
      ~engine:(Engine.create (Lowatomic.env l))
      ~abstract_program:(Diffusing.combined d)
      ~concrete_program:(Lowatomic.program l)
      ~projection
      ~abstract_invariant:(fun s -> Diffusing.invariant d s)
      ~concrete_invariant:(fun s -> Lowatomic.invariant l s)
      ()
  in
  match r.Refine.result with
  | Error (Refine.Unsimulated_step { action; _ }) ->
      Alcotest.(check bool) "premature reflect" true
        (Astring_contains.contains action "reflect")
  | _ -> Alcotest.fail "expected an unsimulated premature reflect"

let test_consistency_relation_closed () =
  let _, _, l, _ = refinement_setup () in
  let engine = Engine.create (Lowatomic.env l) in
  match
    Explore.Closure.program_closed engine
      (Compile.program (Lowatomic.program l))
      ~pred:(fun s -> Lowatomic.consistent l s)
  with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "consistency not closed: %s"
        (Format.asprintf "%a"
           (Explore.Closure.pp_violation (Lowatomic.env l))
           v)

let test_refinement_rejects_bad_projection () =
  let _, d, l, projection = refinement_setup () in
  Alcotest.(check bool) "missing variable rejected" true
    (try
       ignore
         (Refine.check
            ~abstract_env:(Diffusing.env d)
            ~engine:(Engine.create (Lowatomic.env l))
            ~abstract_program:(Diffusing.combined d)
            ~concrete_program:(Lowatomic.program l)
            ~projection:(List.tl projection)
            ~abstract_invariant:(fun s -> Diffusing.invariant d s)
            ~concrete_invariant:(fun s -> Lowatomic.invariant l s)
            ());
       false
     with Invalid_argument _ -> true)

(* --- Distributed reset --- *)

let test_reset_converges () =
  let r = Reset.make (Tree.chain 3) in
  let engine = Engine.create (Reset.env r) in
  match
    Explore.Convergence.check_unfair engine
      (Compile.program (Reset.program r))
      ~from:Engine.All
      ~target:(fun s -> Reset.invariant r s)
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "reset layer must not break convergence"

let test_reset_zeroes_on_red_exhaustive () =
  (* THE reset guarantee: every program transition that turns a process red
     also zeroes its application variable — over the whole state space. *)
  let r = Reset.make (Tree.balanced ~arity:2 3) in
  let space = Space.create (Reset.env r) in
  let cp = Compile.program (Reset.program r) in
  let post = State.make (Reset.env r) in
  Space.iter space (fun _ s ->
      Array.iter
        (fun (ca : Compile.action) ->
          if ca.Compile.enabled s then begin
            ca.Compile.apply_into s post;
            List.iter
              (fun j ->
                if State.get post (Reset.app r j) <> 0 then
                  Alcotest.failf "process %d turned red with a.%d = %d" j j
                    (State.get post (Reset.app r j)))
              (Reset.turns_red r ~pre:s ~post)
          end)
        cp.Compile.actions)

let test_reset_wave_resets_everyone () =
  (* From a legitimate state with drifted app variables, one complete wave
     resets every process (observed on the trace). *)
  let tree = Tree.balanced ~arity:2 7 in
  let r = Reset.make tree in
  let cp = Compile.program (Reset.program r) in
  let init = Reset.all_green r in
  (* let the application drift first *)
  List.iter (fun j -> State.set init (Reset.app r j) 2) (Tree.nodes tree);
  let root = Tree.root tree in
  let sn0 = State.get init (Reset.session r root) in
  let outcome =
    Sim.Runner.run ~record_trace:true
      ~daemon:(Sim.Daemon.round_robin ())
      ~init
      ~stop:(fun s ->
        State.get s (Reset.color r root) = Protocols.Diffusing.green
        && State.get s (Reset.session r root) <> sn0)
      cp
  in
  Alcotest.(check bool) "wave completes" true (Sim.Runner.converged outcome);
  match outcome.Sim.Runner.trace with
  | None -> Alcotest.fail "trace"
  | Some t ->
      let reset_seen = Array.make (Tree.size tree) false in
      List.iter
        (fun s ->
          List.iter
            (fun j -> if State.get s (Reset.app r j) = 0 then reset_seen.(j) <- true)
            (Tree.nodes tree))
        (Sim.Trace.states t);
      Alcotest.(check bool) "every process reset during the wave" true
        (Array.for_all Fun.id reset_seen)

let test_reset_recovers_from_scramble () =
  let r = Reset.make (Tree.star 5) in
  let cp = Compile.program (Reset.program r) in
  let rng = Prng.create 3 in
  let fault = Sim.Fault.scramble (Reset.env r) in
  for _ = 1 to 30 do
    let init = Reset.all_green r in
    fault.Sim.Fault.inject rng init;
    let o =
      Sim.Runner.run
        ~daemon:(Sim.Daemon.random rng)
        ~init
        ~stop:(fun s -> Reset.invariant r s)
        cp
    in
    Alcotest.(check bool) "recovers" true (Sim.Runner.converged o)
  done

let suite =
  [
    Alcotest.test_case "stair: token ring two stages" `Quick
      test_stair_token_ring;
    Alcotest.test_case "stair: rejects unclosed intermediate" `Quick
      test_stair_rejects_bad_intermediate;
    Alcotest.test_case "stair: rejects non-containment" `Quick
      test_stair_rejects_non_contained;
    Alcotest.test_case "stair: arity check" `Quick test_stair_needs_two_predicates;
    Alcotest.test_case "refinement: valid within consistency" `Quick
      test_refinement_within_consistency;
    Alcotest.test_case "refinement: fails from arbitrary states" `Quick
      test_refinement_fails_from_arbitrary_states;
    Alcotest.test_case "refinement: consistency relation closed" `Quick
      test_consistency_relation_closed;
    Alcotest.test_case "refinement: bad projection rejected" `Quick
      test_refinement_rejects_bad_projection;
    Alcotest.test_case "reset: convergence preserved" `Quick test_reset_converges;
    Alcotest.test_case "reset: red implies zero (exhaustive)" `Quick
      test_reset_zeroes_on_red_exhaustive;
    Alcotest.test_case "reset: wave resets everyone" `Quick
      test_reset_wave_resets_everyone;
    Alcotest.test_case "reset: recovers from scramble" `Quick
      test_reset_recovers_from_scramble;
  ]
