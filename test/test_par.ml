(* Tests for the multicore subsystem: the Par substrate (pool, sharded
   map, int vectors) and the determinism contract of everything built on
   it — the parallel engine backend must be bit-identical to the lazy
   one, parallel fault spans to sequential ones, and parallel storm
   trials to the jobs=1 loop, all at any job count. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Engine = Explore.Engine
module Convergence = Explore.Convergence

(* --- Par.Ivec --- *)

let test_ivec () =
  let v = Par.Ivec.create () in
  for i = 0 to 199 do
    Alcotest.(check int) "push returns index" i (Par.Ivec.push v (i * 3))
  done;
  Alcotest.(check int) "len" 200 (Par.Ivec.len v);
  Alcotest.(check int) "get" 42 (Par.Ivec.get v 14);
  let a = Par.Ivec.to_array v in
  Alcotest.(check int) "to_array len" 200 (Array.length a);
  Alcotest.(check int) "to_array content" 597 a.(199);
  let w = Par.Ivec.create () in
  ignore (Par.Ivec.push w 7);
  Par.Ivec.swap v w;
  Alcotest.(check int) "swap moved len" 1 (Par.Ivec.len v);
  Alcotest.(check int) "swap moved content" 7 (Par.Ivec.get v 0);
  Alcotest.(check int) "swap other way" 200 (Par.Ivec.len w);
  Par.Ivec.clear w;
  Alcotest.(check int) "clear" 0 (Par.Ivec.len w)

(* --- Par.Pool --- *)

let test_pool_parallel_for_covers () =
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 10_000 in
  let hits = Array.make n 0 in
  (* chunks partition [0, n): every index is written exactly once, so no
     atomicity is needed for distinct cells *)
  Par.Pool.parallel_for pool ~n (fun ~worker:_ lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "every index exactly once" true
    (Array.for_all (fun c -> c = 1) hits)

let test_pool_map_reduce_ordered () =
  (* the fold must see chunk results in chunk order, whatever order the
     workers finished in — run a few times to shake scheduling *)
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  for _ = 1 to 5 do
    let ranges =
      Par.Pool.map_reduce pool ~n:1000 ~chunk:64
        ~map:(fun ~worker:_ lo hi -> [ (lo, hi) ])
        (fun acc r -> acc @ r)
        []
    in
    let rec contiguous at = function
      | [] -> at = 1000
      | (lo, hi) :: rest -> lo = at && hi > lo && contiguous hi rest
    in
    Alcotest.(check bool) "chunks folded in order" true (contiguous 0 ranges)
  done

let test_pool_inline_when_single () =
  (* jobs=1 must run the body inline on the caller — observable via a
     plain ref, no synchronization *)
  Par.Pool.with_pool ~jobs:1 @@ fun pool ->
  let sum = ref 0 in
  Par.Pool.parallel_for pool ~n:100 (fun ~worker lo hi ->
      Alcotest.(check int) "single worker id" 0 worker;
      for i = lo to hi - 1 do
        sum := !sum + i
      done);
  Alcotest.(check int) "inline sum" 4950 !sum

let test_pool_propagates_exception () =
  Par.Pool.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.(check bool) "body exception re-raised" true
    (try
       Par.Pool.parallel_for pool ~n:100 ~chunk:1 (fun ~worker:_ lo _ ->
           if lo = 57 then failwith "boom");
       false
     with Failure m -> m = "boom");
  (* the pool survives a failed round *)
  let count = Atomic.make 0 in
  Par.Pool.parallel_for pool ~n:10 (fun ~worker:_ lo hi ->
      ignore (Atomic.fetch_and_add count (hi - lo)));
  Alcotest.(check int) "pool usable after failure" 10 (Atomic.get count)

let test_pool_validation () =
  Alcotest.(check bool) "jobs 0 rejected" true
    (try
       ignore (Par.Pool.create ~jobs:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "default_jobs positive" true
    (Par.Pool.default_jobs () >= 1);
  let pool = Par.Pool.create ~jobs:2 in
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool (* idempotent *)

(* --- Par.Shardmap --- *)

let test_shardmap_basics () =
  let m = Par.Shardmap.create ~shards:8 () in
  for k = 0 to 999 do
    Par.Shardmap.add m k (k * k)
  done;
  Alcotest.(check int) "length" 1000 (Par.Shardmap.length m);
  Alcotest.(check (option int)) "find" (Some 49) (Par.Shardmap.find_opt m 7);
  Alcotest.(check (option int)) "miss" None (Par.Shardmap.find_opt m 1000);
  Alcotest.(check bool) "mem" true (Par.Shardmap.mem m 999);
  Par.Shardmap.add m 7 (-1);
  Alcotest.(check (option int)) "replace" (Some (-1)) (Par.Shardmap.find_opt m 7);
  Alcotest.(check int) "replace keeps length" 1000 (Par.Shardmap.length m);
  let tbl = Par.Shardmap.to_hashtbl m in
  Alcotest.(check int) "snapshot size" 1000 (Hashtbl.length tbl);
  Alcotest.(check (option int)) "snapshot content" (Some 169)
    (Hashtbl.find_opt tbl 13)

let test_shardmap_concurrent_adds () =
  let m = Par.Shardmap.create () in
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  Par.Pool.parallel_for pool ~n:5000 (fun ~worker:_ lo hi ->
      for k = lo to hi - 1 do
        Par.Shardmap.add m k (2 * k)
      done);
  Alcotest.(check int) "all bindings present" 5000 (Par.Shardmap.length m);
  let ok = ref true in
  Par.Shardmap.iter m (fun k v -> if v <> 2 * k then ok := false);
  Alcotest.(check bool) "bindings intact" true !ok

(* --- three-way engine backend agreement --- *)

(* The strong contract: the parallel region record is bit-identical to
   the lazy one — same node numbering, edge list, terminals, explored
   count — at any job count. The eager backend numbers nodes differently
   (space-id order), so against it we compare order-insensitive views. *)
let region_of backend ?(jobs = 1) env program invariant =
  let engine = Engine.create ~backend ~jobs env in
  Engine.region engine (Compile.program program) ~from:Engine.All
    ~target:invariant

let check_identical name (a : Engine.region) (b : Engine.region) =
  Alcotest.(check (array int))
    (name ^ ": node keys in discovery order")
    a.Engine.node_key b.Engine.node_key;
  Alcotest.(check (array bool))
    (name ^ ": terminals")
    a.Engine.terminal b.Engine.terminal;
  Alcotest.(check int) (name ^ ": explored") a.Engine.explored b.Engine.explored;
  let edges g =
    List.map
      (fun (e : int Dgraph.Digraph.edge) -> (e.src, e.dst, e.label))
      (Dgraph.Digraph.edges g)
  in
  Alcotest.(check (list (triple int int int)))
    (name ^ ": edge lists")
    (edges a.Engine.graph) (edges b.Engine.graph)

let sorted_view (r : Engine.region) =
  ( List.sort compare (Array.to_list r.Engine.node_key),
    Array.fold_left (fun n t -> if t then n + 1 else n) 0 r.Engine.terminal,
    Dgraph.Digraph.edge_count r.Engine.graph,
    r.Engine.explored )

let test_three_way_xyz () =
  List.iter
    (fun variant ->
      let d = Protocols.Xyz_demo.make variant in
      let env = Protocols.Xyz_demo.env d in
      let program = Protocols.Xyz_demo.program d in
      let inv s = Protocols.Xyz_demo.invariant d s in
      let eager = region_of Engine.Eager env program inv in
      let lzy = region_of Engine.Lazy env program inv in
      List.iter
        (fun jobs ->
          check_identical
            (Printf.sprintf "xyz jobs=%d" jobs)
            lzy
            (region_of Engine.Parallel ~jobs env program inv))
        [ 1; 2; 4 ];
      Alcotest.(check bool) "xyz: eager agrees up to numbering" true
        (sorted_view eager = sorted_view lzy))
    [ Protocols.Xyz_demo.Good_tree; Protocols.Xyz_demo.Good_ordered;
      Protocols.Xyz_demo.Bad ]

let test_three_way_token_ring () =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  let env = Protocols.Token_ring.env tr in
  let program = Protocols.Token_ring.combined tr in
  let inv s = Protocols.Token_ring.invariant tr s in
  let eager = region_of Engine.Eager env program inv in
  let lzy = region_of Engine.Lazy env program inv in
  List.iter
    (fun jobs ->
      check_identical
        (Printf.sprintf "token-ring jobs=%d" jobs)
        lzy
        (region_of Engine.Parallel ~jobs env program inv))
    [ 1; 2; 4 ];
  Alcotest.(check bool) "token-ring: eager agrees up to numbering" true
    (sorted_view eager = sorted_view lzy)

let test_parallel_verdicts () =
  (* convergence verdicts through the full checker, including a livelock *)
  let check backend jobs env program invariant =
    Convergence.check_unfair
      (Engine.create ~backend ~jobs env)
      (Compile.program program) ~from:Engine.All ~target:invariant
  in
  let agree name env program invariant =
    let sig_of = function
      | Ok { Convergence.region_states; explored; worst_case_steps } ->
          Printf.sprintf "ok/%d/%d/%s" region_states explored
            (match worst_case_steps with
            | Some w -> string_of_int w
            | None -> "-")
      | Error (Convergence.Deadlock _) -> "deadlock"
      | Error (Convergence.Livelock _) -> "livelock"
    in
    let expected = sig_of (check Engine.Lazy 1 env program invariant) in
    List.iter
      (fun jobs ->
        Alcotest.(check string)
          (Printf.sprintf "%s jobs=%d" name jobs)
          expected
          (sig_of (check Engine.Parallel jobs env program invariant)))
      [ 1; 3 ]
  in
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  agree "token-ring" (Protocols.Token_ring.env tr)
    (Protocols.Token_ring.combined tr)
    (fun s -> Protocols.Token_ring.invariant tr s);
  let bad = Protocols.Dijkstra_ring.make ~nodes:4 ~k:2 in
  agree "dijkstra livelock"
    (Protocols.Dijkstra_ring.env bad)
    (Protocols.Dijkstra_ring.program bad)
    (fun s -> Protocols.Dijkstra_ring.invariant bad s)

let test_parallel_overflow_point () =
  (* the budget must trip at exactly the same explored count: seed with a
     radius-2 fault ball (113 states of 5^4) under a 120-state budget so
     the overflow fires mid-BFS, after seeding *)
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  let env = Protocols.Token_ring.env tr in
  let seeds = Engine.ball env ~center:(Protocols.Token_ring.all_zero tr) ~radius:2 in
  let overflow backend jobs =
    let engine = Engine.create ~backend ~max_states:120 ~jobs env in
    try
      ignore
        (Engine.region engine
           (Compile.program (Protocols.Token_ring.combined tr))
           ~from:(Engine.Seeds seeds)
           ~target:(fun s -> Protocols.Token_ring.invariant tr s));
      Alcotest.fail "must overflow a 120-state budget"
    with Engine.Region_overflow n -> n
  in
  let expected = overflow Engine.Lazy 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "overflow count jobs=%d" jobs)
        expected
        (overflow Engine.Parallel jobs))
    [ 1; 2; 4 ]

let test_engine_jobs_validation () =
  let env =
    let env = Guarded.Env.create () in
    ignore (Guarded.Env.fresh env "v" (Guarded.Domain.range 0 3));
    env
  in
  Alcotest.(check bool) "jobs 0 rejected" true
    (try
       ignore (Engine.create ~backend:Engine.Parallel ~jobs:0 env);
       false
     with Invalid_argument _ -> true);
  let engine = Engine.create ~backend:Engine.Parallel ~jobs:2 env in
  Alcotest.(check int) "jobs recorded" 2 (Engine.jobs engine);
  Alcotest.(check string) "backend name" "parallel"
    (Engine.backend_name engine)

(* --- parallel fault spans --- *)

let test_faultspan_parallel_identical () =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:4 in
  let env = Protocols.Token_ring.env tr in
  let cp = Compile.program (Protocols.Token_ring.combined tr) in
  let inv s = Protocols.Token_ring.invariant tr s in
  let span_of backend jobs budget =
    let engine = Engine.create ~backend ~jobs env in
    let fault = Sim.Fault.corrupt env ~k:1 in
    let fp =
      Compile.program
        (Guarded.Program.make ~name:"faults" env
           (Sim.Fault.actions fault))
    in
    Explore.Faultspan.compute engine ~program:cp ?budget ~faults:fp
      ~from:(Engine.Pred inv) ()
  in
  List.iter
    (fun budget ->
      let seq = span_of Engine.Lazy 1 budget in
      List.iter
        (fun jobs ->
          let par = span_of Engine.Parallel jobs budget in
          let tag =
            Printf.sprintf "budget=%s jobs=%d"
              (match budget with Some b -> string_of_int b | None -> "inf")
              jobs
          in
          Alcotest.(check int) (tag ^ ": count")
            (Explore.Faultspan.count seq)
            (Explore.Faultspan.count par);
          Alcotest.(check int) (tag ^ ": roots")
            (Explore.Faultspan.root_count seq)
            (Explore.Faultspan.root_count par);
          Alcotest.(check int) (tag ^ ": max depth")
            (Explore.Faultspan.max_depth seq)
            (Explore.Faultspan.max_depth par);
          Alcotest.(check (array int))
            (tag ^ ": histogram")
            (Explore.Faultspan.depth_histogram seq)
            (Explore.Faultspan.depth_histogram par);
          (* member order (hence Certify's scan order) is identical too *)
          let seq_states = Explore.Faultspan.states seq in
          let par_states = Explore.Faultspan.states par in
          Alcotest.(check bool) (tag ^ ": members in order") true
            (List.for_all2 State.equal seq_states par_states);
          List.iter
            (fun s ->
              Alcotest.(check (option int))
                (tag ^ ": depth agrees")
                (Explore.Faultspan.depth seq s)
                (Explore.Faultspan.depth par s))
            seq_states)
        [ 1; 2; 4 ])
    [ Some 1; Some 2; None ]

let test_certify_parallel_identical () =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:4 in
  let cert backend jobs =
    let engine =
      Engine.create ~backend ~jobs (Protocols.Token_ring.env tr)
    in
    Nonmask.Certify.tolerance ~engine
      ~program:(Protocols.Token_ring.combined tr)
      ~faults:(Sim.Fault.actions
                 (Sim.Fault.corrupt (Protocols.Token_ring.env tr) ~k:2))
      ~invariant:(fun s -> Protocols.Token_ring.invariant tr s)
      ~budget:2 ~name:"token-ring par test" ()
  in
  let render c = Format.asprintf "%a" Nonmask.Certify.pp_full c in
  let expected = render (cert Engine.Lazy 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "certificate jobs=%d" jobs)
        expected
        (render (cert Engine.Parallel jobs)))
    [ 1; 2; 4 ]

(* --- parallel storm trials --- *)

let test_storm_jobs_deterministic () =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  let env = Protocols.Token_ring.env tr in
  let cp = Compile.program (Protocols.Token_ring.combined tr) in
  let fault = Sim.Fault.scramble env in
  let run jobs =
    Sim.Storm.trials ~max_steps:2_000 ~jobs ~rng:(Prng.create 11) ~trials:60
      ~daemon:(fun rng -> Sim.Daemon.random rng)
      ~prepare:(fun rng ->
        let s = Protocols.Token_ring.all_zero tr in
        fault.Sim.Fault.inject rng s;
        s)
      ~stop:(fun s -> Protocols.Token_ring.invariant tr s)
      ~fault ~rate:0.08 cp
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      let tag = Printf.sprintf "jobs=%d" jobs in
      Alcotest.(check (array int))
        (tag ^ ": step counts")
        base.Sim.Storm.steps r.Sim.Storm.steps;
      Alcotest.(check (array int))
        (tag ^ ": fault counts")
        base.Sim.Storm.fault_counts r.Sim.Storm.fault_counts;
      Alcotest.(check int) (tag ^ ": failures") base.Sim.Storm.failures
        r.Sim.Storm.failures;
      match (base.Sim.Storm.summary, r.Sim.Storm.summary) with
      | None, None -> ()
      | Some a, Some b ->
          Alcotest.(check (float 0.0))
            (tag ^ ": median")
            a.Sim.Stats.median b.Sim.Stats.median;
          Alcotest.(check (float 0.0)) (tag ^ ": p90") a.Sim.Stats.p90
            b.Sim.Stats.p90;
          Alcotest.(check (float 0.0)) (tag ^ ": max") a.Sim.Stats.max
            b.Sim.Stats.max
      | _ -> Alcotest.fail (tag ^ ": summary presence differs"))
    [ 2; 4 ]

let test_storm_jobs_validation () =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let env = Protocols.Token_ring.env tr in
  let cp = Compile.program (Protocols.Token_ring.combined tr) in
  let fault = Sim.Fault.scramble env in
  Alcotest.(check bool) "jobs 0 rejected" true
    (try
       ignore
         (Sim.Storm.trials ~jobs:0 ~rng:(Prng.create 1) ~trials:1
            ~daemon:(fun rng -> Sim.Daemon.random rng)
            ~prepare:(fun _ -> Protocols.Token_ring.all_zero tr)
            ~stop:(fun s -> Protocols.Token_ring.invariant tr s)
            ~fault ~rate:0.0 cp);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "ivec basics" `Quick test_ivec;
    Alcotest.test_case "pool: parallel_for covers range" `Quick
      test_pool_parallel_for_covers;
    Alcotest.test_case "pool: map_reduce chunk order" `Quick
      test_pool_map_reduce_ordered;
    Alcotest.test_case "pool: jobs=1 runs inline" `Quick
      test_pool_inline_when_single;
    Alcotest.test_case "pool: exceptions propagate" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "pool: validation and shutdown" `Quick
      test_pool_validation;
    Alcotest.test_case "shardmap basics" `Quick test_shardmap_basics;
    Alcotest.test_case "shardmap concurrent adds" `Quick
      test_shardmap_concurrent_adds;
    Alcotest.test_case "three-way agreement: xyz" `Quick test_three_way_xyz;
    Alcotest.test_case "three-way agreement: token ring" `Quick
      test_three_way_token_ring;
    Alcotest.test_case "parallel verdicts match lazy" `Quick
      test_parallel_verdicts;
    Alcotest.test_case "parallel overflow at same count" `Quick
      test_parallel_overflow_point;
    Alcotest.test_case "engine jobs validation" `Quick
      test_engine_jobs_validation;
    Alcotest.test_case "faultspan: parallel identical" `Quick
      test_faultspan_parallel_identical;
    Alcotest.test_case "certify: parallel identical" `Quick
      test_certify_parallel_identical;
    Alcotest.test_case "storm: deterministic across jobs" `Quick
      test_storm_jobs_deterministic;
    Alcotest.test_case "storm: jobs validation" `Quick
      test_storm_jobs_validation;
  ]
