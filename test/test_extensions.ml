(* Tests for the extension modules: undirected graphs, the stabilizing BFS
   spanning tree, and the analytic expected-steps solver. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Ugraph = Topology.Ugraph
module Space = Explore.Space
module Tsys = Explore.Tsys
module Convergence = Explore.Convergence
module Expected = Explore.Expected
module Spanning_tree = Protocols.Spanning_tree

let sorted = List.sort compare

(* --- Ugraph --- *)

let test_ugraph_basics () =
  let g = Ugraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "size" 4 (Ugraph.size g);
  Alcotest.(check int) "edges" 3 (Ugraph.edge_count g);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 2 ] (Ugraph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Ugraph.degree g 2);
  Alcotest.(check (list (pair int int))) "edges normalized"
    [ (0, 1); (1, 2); (2, 3) ]
    (sorted (Ugraph.edges g))

let test_ugraph_invalid () =
  let rejects f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects (fun () -> Ugraph.of_edges 3 [ (0, 0) ]);
  rejects (fun () -> Ugraph.of_edges 3 [ (0, 1); (1, 0) ]);
  rejects (fun () -> Ugraph.of_edges 3 [ (0, 5) ]);
  rejects (fun () -> Ugraph.cycle 2)

let test_ugraph_connectivity_and_distance () =
  let g = Ugraph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "disconnected" false (Ugraph.is_connected g);
  let dist = Ugraph.distances_from g 0 in
  Alcotest.(check int) "dist to 1" 1 dist.(1);
  Alcotest.(check bool) "unreachable" true (dist.(2) = max_int);
  let p = Ugraph.path 5 in
  Alcotest.(check bool) "path connected" true (Ugraph.is_connected p);
  Alcotest.(check int) "path ecc from end" 4 (Ugraph.eccentricity p 0);
  Alcotest.(check int) "path ecc from middle" 2 (Ugraph.eccentricity p 2)

let test_ugraph_builders () =
  Alcotest.(check int) "cycle edges" 5 (Ugraph.edge_count (Ugraph.cycle 5));
  Alcotest.(check int) "complete edges" 10 (Ugraph.edge_count (Ugraph.complete 5));
  Alcotest.(check int) "star edges" 4 (Ugraph.edge_count (Ugraph.star 5));
  let g = Ugraph.grid ~width:3 ~height:2 in
  Alcotest.(check int) "grid nodes" 6 (Ugraph.size g);
  Alcotest.(check int) "grid edges" 7 (Ugraph.edge_count g);
  Alcotest.(check (list int)) "grid corner neighbors" [ 1; 3 ]
    (Ugraph.neighbors g 0)

let test_ugraph_random_connected () =
  let rng = Prng.create 5 in
  for _ = 1 to 20 do
    let n = 2 + Prng.int rng 15 in
    let g = Ugraph.random_connected rng n ~extra_edges:(Prng.int rng 5) in
    Alcotest.(check bool) "connected" true (Ugraph.is_connected g);
    Alcotest.(check bool) "enough edges" true (Ugraph.edge_count g >= n - 1)
  done

(* --- Spanning tree --- *)

let small_graphs =
  [
    ("path-4", Ugraph.path 4);
    ("cycle-4", Ugraph.cycle 4);
    ("star-5", Ugraph.star 5);
    ("complete-4", Ugraph.complete 4);
  ]

let test_spanning_tree_converges_exactly () =
  List.iter
    (fun (name, g) ->
      let st = Spanning_tree.make ~root:0 g in
      let engine = Explore.Engine.create (Spanning_tree.env st) in
      match
        Convergence.check_unfair engine
          (Compile.program (Spanning_tree.program st))
          ~from:Explore.Engine.All
          ~target:(fun s -> Spanning_tree.invariant st s)
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.failf "%s: spanning tree must converge" name)
    small_graphs

let test_spanning_tree_bfs_state () =
  let g = Ugraph.grid ~width:3 ~height:2 in
  let st = Spanning_tree.make ~root:0 g in
  let s = Spanning_tree.bfs_state st in
  Alcotest.(check bool) "bfs state legitimate" true
    (Spanning_tree.invariant st s);
  Alcotest.(check int) "no violations" 0 (Spanning_tree.violated st s);
  Alcotest.(check int) "dist of far corner" 3
    (State.get s (Spanning_tree.distance st 5));
  Alcotest.(check bool) "terminal once legitimate" true
    (Guarded.Program.is_terminal (Spanning_tree.program st) s)

let test_spanning_tree_edges_form_tree () =
  let g = Ugraph.random_connected (Prng.create 11) 8 ~extra_edges:4 in
  let st = Spanning_tree.make ~root:0 g in
  let s = Spanning_tree.bfs_state st in
  let edges = Spanning_tree.tree_edges st s in
  Alcotest.(check int) "n-1 edges" 7 (List.length edges);
  (* every non-root has exactly one parent, at distance one less *)
  List.iter
    (fun (p, c) ->
      Alcotest.(check int) "parent one closer"
        (State.get s (Spanning_tree.distance st c) - 1)
        (State.get s (Spanning_tree.distance st p)))
    edges;
  Alcotest.(check bool) "root has no parent" true
    (Spanning_tree.parent st s 0 = None)

let test_spanning_tree_recovers_by_simulation () =
  let g = Ugraph.random_connected (Prng.create 13) 12 ~extra_edges:6 in
  let st = Spanning_tree.make ~root:0 g in
  let cp = Compile.program (Spanning_tree.program st) in
  let rng = Prng.create 17 in
  let fault = Sim.Fault.scramble (Spanning_tree.env st) in
  for _ = 1 to 30 do
    let init = Spanning_tree.bfs_state st in
    fault.Sim.Fault.inject rng init;
    let o =
      Sim.Runner.run
        ~daemon:(Sim.Daemon.random rng)
        ~init
        ~stop:(fun s -> Spanning_tree.invariant st s)
        cp
    in
    Alcotest.(check bool) "recovers" true (Sim.Runner.converged o)
  done

let test_spanning_tree_rejects_disconnected () =
  let g = Ugraph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Spanning_tree.make ~root:0 g);
       false
     with Invalid_argument _ -> true)

(* --- Expected steps --- *)

let countdown () =
  let env = Guarded.Env.create () in
  let x = Guarded.Env.fresh env "x" (Guarded.Domain.range 0 4) in
  let down =
    Guarded.Expr.(
      Guarded.Action.make ~name:"down" ~guard:(var x > int 0)
        [ (x, var x - int 1) ])
  in
  (env, x, Guarded.Program.make ~name:"cd" env [ down ])

let test_expected_deterministic_chain () =
  let env, x, p = countdown () in
  let space = Space.create env in
  let tsys = Tsys.build (Compile.program p) space in
  match Expected.steps tsys ~target:(fun s -> State.get s x = 0) with
  | Error _ -> Alcotest.fail "chain reaches 0"
  | Ok value ->
      (* single enabled action: expected = exact = x *)
      for id = 0 to 4 do
        Alcotest.(check (float 1e-6)) "E = x" (float_of_int id) value.(id)
      done

let test_expected_coin_flip () =
  (* from state 1, go to 0 (absorb) or 2 with equal probability; from 2 go
     back to 1. E(1) = 1 + E(2)/2 and E(2) = 1 + E(1), so E(1) = 3 and
     E(2) = 4. *)
  let env = Guarded.Env.create () in
  let x = Guarded.Env.fresh env "x" (Guarded.Domain.range 0 2) in
  let down =
    Guarded.Expr.(
      Guarded.Action.make ~name:"down" ~guard:(var x > int 0)
        [ (x, var x - int 1) ])
  in
  let up =
    Guarded.Expr.(
      Guarded.Action.make ~name:"up" ~guard:(var x = int 1) [ (x, int 2) ])
  in
  let p = Guarded.Program.make ~name:"flip" env [ down; up ] in
  let space = Space.create env in
  let tsys = Tsys.build (Compile.program p) space in
  match Expected.steps tsys ~target:(fun s -> State.get s x = 0) with
  | Error _ -> Alcotest.fail "reaches 0"
  | Ok value ->
      Alcotest.(check (float 1e-6)) "E(1)" 3.0 value.(1);
      Alcotest.(check (float 1e-6)) "E(2)" 4.0 value.(2)

let test_expected_unreachable () =
  let env = Guarded.Env.create () in
  let x = Guarded.Env.fresh env "x" (Guarded.Domain.range 0 1) in
  let p = Guarded.Program.make ~name:"stuck" env [] in
  let space = Space.create env in
  let tsys = Tsys.build (Compile.program p) space in
  match Expected.steps tsys ~target:(fun s -> State.get s x = 0) with
  | Error (Expected.Unreachable s) ->
      Alcotest.(check int) "stuck state" 1 (State.get s x)
  | _ -> Alcotest.fail "x=1 cannot reach x=0"

let test_expected_matches_simulation () =
  let dr = Protocols.Dijkstra_ring.make ~nodes:3 ~k:4 in
  let space = Space.create (Protocols.Dijkstra_ring.env dr) in
  let cp = Compile.program (Protocols.Dijkstra_ring.program dr) in
  let tsys = Tsys.build cp space in
  let target s = Protocols.Dijkstra_ring.invariant dr s in
  match Expected.mean_from tsys ~from:(fun _ -> true) ~target with
  | Error _ -> Alcotest.fail "analytic should succeed"
  | Ok analytic ->
      let rng = Prng.create 23 in
      let trials = 20_000 in
      let total = ref 0 in
      for _ = 1 to trials do
        let s = Space.decode space (Prng.int rng (Space.size space)) in
        let o =
          Sim.Runner.run ~daemon:(Sim.Daemon.random rng) ~init:s ~stop:target
            cp
        in
        total := !total + o.Sim.Runner.steps
      done;
      let simulated = float_of_int !total /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "analytic %.3f ~ simulated %.3f" analytic simulated)
        true
        (abs_float (analytic -. simulated) < 0.1)

let suite =
  [
    Alcotest.test_case "ugraph basics" `Quick test_ugraph_basics;
    Alcotest.test_case "ugraph invalid inputs" `Quick test_ugraph_invalid;
    Alcotest.test_case "ugraph connectivity/distances" `Quick
      test_ugraph_connectivity_and_distance;
    Alcotest.test_case "ugraph builders" `Quick test_ugraph_builders;
    Alcotest.test_case "ugraph random connected" `Quick
      test_ugraph_random_connected;
    Alcotest.test_case "spanning tree converges exactly" `Slow
      test_spanning_tree_converges_exactly;
    Alcotest.test_case "spanning tree bfs state" `Quick
      test_spanning_tree_bfs_state;
    Alcotest.test_case "spanning tree edges form a tree" `Quick
      test_spanning_tree_edges_form_tree;
    Alcotest.test_case "spanning tree recovers (simulation)" `Quick
      test_spanning_tree_recovers_by_simulation;
    Alcotest.test_case "spanning tree rejects disconnected" `Quick
      test_spanning_tree_rejects_disconnected;
    Alcotest.test_case "expected: deterministic chain" `Quick
      test_expected_deterministic_chain;
    Alcotest.test_case "expected: coin flip" `Quick test_expected_coin_flip;
    Alcotest.test_case "expected: unreachable" `Quick test_expected_unreachable;
    Alcotest.test_case "expected matches simulation" `Quick
      test_expected_matches_simulation;
  ]
