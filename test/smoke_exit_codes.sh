#!/bin/sh
# Asserts the CLI's documented exit codes (see README "Exit codes"):
#   0  success
#   1  usage or instance-construction error
#   2  failed certificate or convergence verdict
#   3  state space over the eager engine's budget (Space.Too_large);
#      for fuzz: a surviving minimized counterexample
#   4  lazy exploration over budget (Engine.Region_overflow)
# Every non-zero exit must also say why on stderr — a silent failure is a
# bug regardless of the code.
# Run from the repo root: sh test/smoke_exit_codes.sh
set -u

CLI="${CLI:-dune exec bin/nonmask_cli.exe --}"
failed=0
stderr_file="${TMPDIR:-/tmp}/nonmask_smoke_stderr.$$"
trap 'rm -f "$stderr_file"' EXIT

expect() {
  want="$1"
  shift
  $CLI "$@" >/dev/null 2>"$stderr_file"
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: nonmask $* -> exit $got, want $want"
    failed=1
  elif [ "$got" -ne 0 ] && ! [ -s "$stderr_file" ]; then
    echo "FAIL: nonmask $* -> exit $got with empty stderr"
    failed=1
  else
    echo "ok:   nonmask $* -> exit $got"
  fi
}

# 0: clean verdicts, certificates, and a storm run
expect 0 check token-ring --nodes 3 -k 3
expect 0 certify token-ring --nodes 3 -k 4 --faults corrupt:k=1
expect 0 storm token-ring --nodes 3 -k 4 --rate 0.1 --trials 50
# 0: the parallel backend and parallel storm trials succeed the same way
expect 0 check token-ring --nodes 3 -k 3 --engine parallel --jobs 2
expect 0 certify token-ring --nodes 3 -k 4 --faults corrupt:k=1 --engine parallel --jobs 2
expect 0 storm token-ring --nodes 3 -k 4 --rate 0.1 --trials 50 --jobs 2
# 0: a short differential fuzz run on a known-clean seed
expect 0 fuzz --seed 42 --count 20
expect 0 fuzz --seed 42 --count 20 --jobs 2
# 1: unknown protocol, bad fault spec
expect 1 check no-such-protocol
expect 1 certify token-ring --nodes 3 -k 4 --faults corrupt:k=zero
# 1: flag validation — unknown engine value, non-positive jobs
expect 1 check token-ring --nodes 3 -k 3 --engine turbo
expect 1 check token-ring --nodes 3 -k 3 --engine parallel --jobs 0
expect 1 check token-ring --nodes 3 -k 3 --jobs -2
expect 1 storm token-ring --nodes 3 -k 4 --jobs many
# 1: fuzz flag validation — generators need at least two variables, and a
# negative trial count is meaningless
expect 1 fuzz --seed 42 --count 10 --max-vars 1
expect 1 fuzz --seed 42 --count -5
# 1: observability output files are opened up front — an unwritable path
# fails fast instead of losing the trace at the end of a long run
expect 1 check token-ring --nodes 3 -k 3 --trace-out /nonexistent-dir/trace.jsonl
expect 1 storm token-ring --nodes 3 -k 4 --trials 10 --metrics-out /nonexistent-dir/metrics.json
expect 1 fuzz --seed 42 --count 5 --trace-out /nonexistent-dir/trace.jsonl
# 2: failed verdict / certificate
expect 2 check xyz-bad
expect 2 certify xyz-bad
expect 2 certify xyz-bad --engine parallel --jobs 2
expect 2 certify naive-ring --nodes 3 --faults corrupt:k=1
# 3: eager refuses an oversized space
expect 3 check dijkstra --nodes 12 -k 13 --engine eager
# 3: even the lazy engine refuses a space the 60-bit state encoding cannot
# address (13^56 ≈ 2^207) — a typed encoding overflow, not a crash
expect 3 check dijkstra --nodes 56 -k 13 --engine lazy
expect 3 check dijkstra --nodes 56 -k 13 --engine parallel --jobs 2
# 4: lazy runs out of budget (full sweep and ball-seeded)
expect 4 check dijkstra --nodes 12 -k 13 --engine lazy --max-states 1000
expect 4 check dijkstra --nodes 12 -k 13 --engine lazy --max-states 1000 --ball 2
# 4: the parallel backend trips the same budget
expect 4 check dijkstra --nodes 12 -k 13 --engine parallel --jobs 2 --max-states 1000 --ball 2

exit "$failed"
