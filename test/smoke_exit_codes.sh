#!/bin/sh
# Asserts the CLI's documented exit codes (see README "Exit codes"):
#   0  success
#   1  usage or instance-construction error; also a corrupt, truncated, or
#      mismatched --resume snapshot
#   2  failed certificate or convergence verdict
#   3  state space over the eager engine's budget (Space.Too_large);
#      for fuzz: a surviving minimized counterexample
#   4  lazy exploration over budget (Engine.Region_overflow)
#   5  incomplete: a resource budget (--deadline/--budget-states/
#      --budget-bytes) ran out or the run was interrupted by
#      SIGINT/SIGTERM; partial progress is reported and — with
#      --checkpoint-out — a resumable snapshot is written
# Every non-zero exit must also say why on stderr — a silent failure is a
# bug regardless of the code.
# Run from the repo root: sh test/smoke_exit_codes.sh
set -u

CLI="${CLI:-dune exec bin/nonmask_cli.exe --}"
# The signal leg needs a direct child process (no dune wrapper in between),
# so it execs the built binary.
BIN="${BIN:-_build/default/bin/nonmask_cli.exe}"
failed=0
tmp="${TMPDIR:-/tmp}"
stderr_file="$tmp/nonmask_smoke_stderr.$$"
ckpt="$tmp/nonmask_smoke_ckpt.$$"
out_full="$tmp/nonmask_smoke_full.$$"
out_resumed="$tmp/nonmask_smoke_resumed.$$"
nm="$tmp/nonmask_smoke_model.$$"
frontier="$tmp/nonmask_smoke_frontier.$$"
trap 'rm -f "$stderr_file" "$ckpt" "$ckpt.tmp" "$ckpt.trunc" "$ckpt.garbage" "$ckpt.ph" "$out_full" "$out_resumed" "$nm.syntax.nm" "$nm.unknown.nm" "$nm.domain.nm" "$nm.divzero.nm" "$nm.sensor.nm" "$nm.sensor2.nm" "$nm.sensor.fmt1" "$nm.sensor.fmt2" "$frontier"' EXIT

expect() {
  want="$1"
  shift
  $CLI "$@" >/dev/null 2>"$stderr_file"
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: nonmask $* -> exit $got, want $want"
    failed=1
  elif [ "$got" -ne 0 ] && ! [ -s "$stderr_file" ]; then
    echo "FAIL: nonmask $* -> exit $got with empty stderr"
    failed=1
  else
    echo "ok:   nonmask $* -> exit $got"
  fi
}

# 0: clean verdicts, certificates, and a storm run
expect 0 check token-ring --nodes 3 -k 3
expect 0 certify token-ring --nodes 3 -k 4 --faults corrupt:k=1
expect 0 storm token-ring --nodes 3 -k 4 --rate 0.1 --trials 50
# 0: the parallel backend and parallel storm trials succeed the same way
expect 0 check token-ring --nodes 3 -k 3 --engine parallel --jobs 2
expect 0 certify token-ring --nodes 3 -k 4 --faults corrupt:k=1 --engine parallel --jobs 2
expect 0 storm token-ring --nodes 3 -k 4 --rate 0.1 --trials 50 --jobs 2
# 0: a short differential fuzz run on a known-clean seed
expect 0 fuzz --seed 42 --count 20
expect 0 fuzz --seed 42 --count 20 --jobs 2
# 1: unknown protocol, bad fault spec
expect 1 check no-such-protocol
# the unknown-protocol message must list the available built-ins — a typo
# should hand the user the correct spelling, not just "unknown"
grep -q 'available:' "$stderr_file" && grep -q 'token-ring' "$stderr_file"
if [ $? -ne 0 ]; then
  echo "FAIL: unknown-protocol stderr does not list available built-ins"
  failed=1
else
  echo "ok:   unknown-protocol stderr lists available built-ins"
fi
expect 1 certify token-ring --nodes 3 -k 4 --faults corrupt:k=zero
# 1: flag validation — unknown engine value, non-positive jobs
expect 1 check token-ring --nodes 3 -k 3 --engine turbo
expect 1 check token-ring --nodes 3 -k 3 --engine parallel --jobs 0
expect 1 check token-ring --nodes 3 -k 3 --jobs -2
expect 1 storm token-ring --nodes 3 -k 4 --jobs many
# 1: fuzz flag validation — generators need at least two variables, and a
# negative trial count is meaningless
expect 1 fuzz --seed 42 --count 10 --max-vars 1
expect 1 fuzz --seed 42 --count -5
# 1: observability output files are opened up front — an unwritable path
# fails fast instead of losing the trace at the end of a long run
expect 1 check token-ring --nodes 3 -k 3 --trace-out /nonexistent-dir/trace.jsonl
expect 1 storm token-ring --nodes 3 -k 4 --trials 10 --metrics-out /nonexistent-dir/metrics.json
expect 1 fuzz --seed 42 --count 5 --trace-out /nonexistent-dir/trace.jsonl
# 2: failed verdict / certificate
expect 2 check xyz-bad
expect 2 certify xyz-bad
expect 2 certify xyz-bad --engine parallel --jobs 2
expect 2 certify naive-ring --nodes 3 --faults corrupt:k=1
# 3: eager refuses an oversized space
expect 3 check dijkstra --nodes 12 -k 13 --engine eager
# 3: even the lazy engine refuses a space the 60-bit state encoding cannot
# address (13^56 ≈ 2^207) — a typed encoding overflow, not a crash
expect 3 check dijkstra --nodes 56 -k 13 --engine lazy
expect 3 check dijkstra --nodes 56 -k 13 --engine parallel --jobs 2
# 4: lazy runs out of budget (full sweep and ball-seeded)
expect 4 check dijkstra --nodes 12 -k 13 --engine lazy --max-states 1000
expect 4 check dijkstra --nodes 12 -k 13 --engine lazy --max-states 1000 --ball 2
# 4: the parallel backend trips the same budget
expect 4 check dijkstra --nodes 12 -k 13 --engine parallel --jobs 2 --max-states 1000 --ball 2
# 5: a state budget runs out mid-exploration (graceful, unlike exit 4's
# hard cap) — on the lazy and parallel backends, and for certify's span
expect 5 check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 --budget-states 1000
expect 5 check dijkstra --nodes 12 -k 13 --engine parallel --jobs 2 --ball 2 --budget-states 1000
expect 5 certify token-ring --nodes 4 -k 6 --faults corrupt:k=1 --budget-states 100
# 5: an already-expired deadline stops at the first polling point
expect 5 check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 --deadline 0
# 5: storm and fuzz report a partial sample instead of pretending coverage
expect 5 storm token-ring --nodes 3 -k 4 --rate 0.1 --trials 20 --deadline 0
expect 5 fuzz --seed 42 --count 5 --deadline 0
# 1: graceful-degradation flag validation
expect 1 check token-ring --nodes 3 -k 3 --budget-states 0
expect 1 storm token-ring --nodes 3 -k 4 --trials 5 --trial-timeout 0
expect 1 certify token-ring --nodes 3 -k 4 --checkpoint-out "$ckpt"
# 1: state/byte budgets count explored states, so trial sweeps reject
# them outright instead of accepting flags that could never trip
expect 1 storm token-ring --nodes 3 -k 4 --trials 5 --budget-states 100
expect 1 fuzz --seed 42 --count 5 --budget-bytes 10000

# --- .nm model files ---------------------------------------------------
# 0: a .nm path is accepted everywhere a protocol name is
expect 0 check examples/models/xyz.nm
expect 0 check examples/models/token_ring.nm --engine parallel --jobs 2
expect 0 certify examples/models/token_ring.nm --faults corrupt:k=1
expect 0 check examples/models/token_ring.nm --param N=3 --param K=4
# 1: malformed input exits 1 with a located message on stderr — never an
# exception trace. One file per failure class of the pipeline: lexer/
# parser syntax, unknown variable, out-of-domain constant, zero divisor.
cat >"$nm.syntax.nm" <<'EOF'
model broken
var x : 0..2
action step
  x = 0 -> x := 1
EOF
cat >"$nm.unknown.nm" <<'EOF'
model broken
var x : 0..2
action step:
  x = 0 -> y := 1
invariant x = 0
EOF
cat >"$nm.domain.nm" <<'EOF'
model broken
var x : 0..2
action step:
  x = 0 -> x := 9
invariant x >= 0
EOF
cat >"$nm.divzero.nm" <<'EOF'
model broken
var x : 0..2
action step:
  x / 0 = 0 -> x := 1
invariant x = 0
EOF
for bad in syntax unknown domain divzero; do
  expect 1 check "$nm.$bad.nm"
  grep -Eq '(^|[ "])[^ ]*\.nm:[0-9]+:[0-9]+:' "$stderr_file"
  note2=$?
  if [ "$note2" -ne 0 ]; then
    echo "FAIL: check $bad.nm stderr lacks a file:line:col location"
    failed=1
  else
    echo "ok:   check $bad.nm stderr is located"
  fi
done
# 1: a missing model file and built-ins rejecting --param
expect 1 check /nonexistent/model.nm
expect 1 check token-ring --nodes 3 -k 3 --param N=3
expect 1 check examples/models/xyz.nm --param N=oops

# --- tolerance: the quantified-tolerance sweep ------------------------
# 0: a completed sweep exits 0 — the frontier is the deliverable, even
# when individual points fail certification (naive-ring's cliff at 1)
expect 0 tolerance examples/models/token_ring.nm --budget-max 2
expect 0 tolerance token-ring --nodes 3 -k 4 --budget-max 2 --adversary
expect 0 tolerance naive-ring --nodes 3 --faults corrupt:k=1 --budget-max 1
# 1: a negative sweep ceiling is a usage error with a reason on stderr
expect 1 tolerance examples/models/token_ring.nm --budget-max=-2
grep -q 'budget-max' "$stderr_file"
if [ $? -ne 0 ]; then
  echo "FAIL: negative --budget-max stderr does not name the flag"
  failed=1
else
  echo "ok:   negative --budget-max stderr names the flag"
fi
expect 1 tolerance examples/models/token_ring.nm --budgets 0,oops
# 5: a sweep interrupted mid-exploration exits 5 — and the points that
# completed before the trip survive in the --report file (flushed per
# point, not at the end)
$CLI tolerance token-ring --nodes 4 -k 6 --faults corrupt:k=1 \
  --budget-states 100 --report "$frontier" >/dev/null 2>"$stderr_file"
got=$?
if [ "$got" -eq 5 ] && [ -s "$stderr_file" ] && [ -s "$frontier" ] \
  && head -1 "$frontier" | grep -q '"budget":0'; then
  echo "ok:   interrupted sweep -> exit 5, partial frontier flushed"
else
  echo "FAIL: interrupted sweep (exit $got) did not leave a partial frontier"
  failed=1
fi

# --- env actions: parse, certify, and format idempotently -------------
cat >"$nm.sensor.nm" <<'EOF'
model sensor-demo

var x : 0..2
var sensor : 0..1

action settle:
  x > 0 -> x := x - 1

env flip:
  true -> sensor := 1 - sensor

invariant x = 0
EOF
# the env item parses and rides through a sweep
expect 0 tolerance "$nm.sensor.nm" --budget-max 1
# fmt is idempotent on models with env actions, and preserves the item
$CLI fmt "$nm.sensor.nm" >"$nm.sensor.fmt1" 2>/dev/null
cp "$nm.sensor.fmt1" "$nm.sensor2.nm"
$CLI fmt "$nm.sensor2.nm" >"$nm.sensor.fmt2" 2>/dev/null
if cmp -s "$nm.sensor.fmt1" "$nm.sensor.fmt2" \
  && grep -q '^env flip:' "$nm.sensor.fmt1"; then
  echo "ok:   fmt idempotent on env-action model"
else
  echo "FAIL: fmt not idempotent on env-action model (or env item lost)"
  failed=1
fi

# --- fmt --hash: the canonical model digest --------------------------
# 0: works for .nm files and built-in protocols alike
expect 0 fmt examples/models/token_ring.nm --hash
expect 0 fmt token-ring --nodes 3 -k 4 --hash
# the digest is deterministic, and --param changes it (params are folded
# into the canonical form — the serve cache keys on this)
h1=$($CLI fmt examples/models/token_ring.nm --hash 2>/dev/null)
h2=$($CLI fmt examples/models/token_ring.nm --hash 2>/dev/null)
h3=$($CLI fmt examples/models/token_ring.nm --hash --param N=3 2>/dev/null)
[ -n "$h1" ] && [ "$h1" = "$h2" ] && [ "$h1" != "$h3" ]
note2=$?
if [ "$note2" -ne 0 ]; then
  echo "FAIL: fmt --hash not deterministic or --param not folded in"
  failed=1
else
  echo "ok:   fmt --hash deterministic; --param changes the digest"
fi
# 1: --hash conflicts with the rewrite modes
expect 1 fmt examples/models/token_ring.nm --hash --write
expect 1 fmt examples/models/token_ring.nm --hash --check

# --- checkpoint/resume roundtrip -------------------------------------
# An interrupted run writes a snapshot (exit 5); resuming it must reach
# the verdict of an uninterrupted run, with byte-identical stdout.
note() { if [ "$1" -eq 0 ]; then echo "ok:   $2"; else echo "FAIL: $2"; failed=1; fi; }

$CLI check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 >"$out_full" 2>/dev/null
note $? "uninterrupted baseline run"
$CLI check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 \
  --budget-states 2000 --checkpoint-out "$ckpt" >/dev/null 2>"$stderr_file"
[ $? -eq 5 ] && [ -s "$stderr_file" ] && [ -s "$ckpt" ]
note $? "interrupted run -> exit 5, stderr reason, snapshot written"
grep -q '"checkpoint"' "$stderr_file"
note $? "stderr names the checkpoint file"
$CLI check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 \
  --resume "$ckpt" >"$out_resumed" 2>/dev/null
note $? "resumed run -> exit 0"
cmp -s "$out_full" "$out_resumed"
note $? "resumed stdout identical to uninterrupted run"
# the parallel backend resumes the same snapshot to the same verdict
# (stdout compared against a parallel baseline: the banner names the engine)
$CLI check dijkstra --nodes 12 -k 13 --engine parallel --jobs 2 --ball 2 \
  >"$out_full" 2>/dev/null
$CLI check dijkstra --nodes 12 -k 13 --engine parallel --jobs 2 --ball 2 \
  --resume "$ckpt" >"$out_resumed" 2>/dev/null
cmp -s "$out_full" "$out_resumed"
note $? "parallel resume of the lazy-written snapshot identical"

# a later run that fails without saving (exit 4's hard cap) must not
# clobber the snapshot sitting at --checkpoint-out: it still resumes
$CLI check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 \
  --max-states 1000 --checkpoint-out "$ckpt" >/dev/null 2>"$stderr_file"
[ $? -eq 4 ] && [ -s "$ckpt" ]
note $? "non-saving failed run keeps the existing snapshot"
$CLI check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 \
  --resume "$ckpt" >/dev/null 2>/dev/null
note $? "snapshot still resumes after the failed run"
# a failed run that never saved removes its empty placeholder, so a
# leftover --checkpoint-out file always means "something to resume"
$CLI check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 \
  --max-states 1000 --checkpoint-out "$ckpt.ph" >/dev/null 2>/dev/null
[ ! -e "$ckpt.ph" ]
note $? "failed run leaves no empty checkpoint placeholder"

# 1: corrupt, truncated, or alien snapshots are rejected with a reason
head -c 64 "$ckpt" >"$ckpt.trunc"
expect 1 check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 --resume "$ckpt.trunc"
printf 'not a snapshot' >"$ckpt.garbage"
expect 1 check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 --resume "$ckpt.garbage"
# config-hash mismatch: same snapshot, different instance
expect 1 check dijkstra --nodes 12 -k 12 --engine lazy --ball 2 --resume "$ckpt"
expect 1 check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 --resume /nonexistent/ckpt.snap

# --- SIGTERM during a long check -------------------------------------
# The signal handler requests cooperative cancellation; the run stops at
# the next polling point with exit 5 and a machine-readable reason.
if [ -x "$BIN" ]; then
  "$BIN" check dijkstra --nodes 12 -k 13 --engine lazy --ball 3 \
    --max-states 50000000 >/dev/null 2>"$stderr_file" &
  pid=$!
  sleep 1
  kill -TERM "$pid" 2>/dev/null
  wait "$pid"
  got=$?
  [ "$got" -eq 5 ] && [ -s "$stderr_file" ] && grep -q SIGTERM "$stderr_file"
  note $? "SIGTERM during check -> exit 5 with signal reason (got $got)"
else
  echo "skip: SIGTERM leg ($BIN not built)"
fi

exit "$failed"
