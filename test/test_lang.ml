(* The model language: parser/elaborator twin-equality against the
   OCaml-embedded protocols, print/parse round-trip laws over generated
   models, located error goldens, and TLA+/DOT export goldens. *)

module Engine = Explore.Engine
module Convergence = Explore.Convergence
module Faultspan = Explore.Faultspan
module Compile = Guarded.Compile
module Program = Guarded.Program
module Var = Guarded.Var
module Env = Guarded.Env
module State = Guarded.State

(* `dune runtest` runs with cwd _build/default/test; `dune exec
   test/test_main.exe` from the project root. Probe both. *)
let locate candidates =
  try List.find Sys.file_exists candidates
  with Not_found -> List.hd candidates

let model_path name =
  locate
    [
      Filename.concat "../examples/models" name;
      Filename.concat "examples/models" name;
    ]

let golden_path name =
  locate [ Filename.concat "golden" name; Filename.concat "test/golden" name ]

let compile ?params name = Lang.Driver.compile_file ?params (model_path name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- twin equality ---------------------------------------------------

   A .nm model must compile to the *same* model as its OCaml twin:
   identical environment (variable names, order, domains), identical
   program action names and order, and bit-identical exploration
   artifacts — regions from both root sets, fault spans, certification
   verdicts — on the eager and lazy backends. *)

let backends = [ Engine.Eager; Engine.Lazy ]
let budget = 1 lsl 21

let check_env_equal em_env t_env =
  let sig_of env =
    Env.vars env
    |> Array.map (fun v -> (Var.name v, Var.domain v))
    |> Array.to_list
  in
  let show l =
    String.concat "; " (List.map (fun (n, _) -> n) l)
  in
  let a = sig_of em_env and b = sig_of t_env in
  if a <> b then
    Alcotest.failf "environments differ: [%s] vs [%s]" (show a) (show b)

let check_actions_equal em_p t_p =
  let names p =
    Program.actions p |> Array.map Guarded.Action.name |> Array.to_list
  in
  Alcotest.(check (list string))
    "program action names and order" (names t_p) (names em_p)

(* A region rewritten in terms of state keys: with identical
   environments the codec is identical, so key-level equality is
   bit-identity of the explored region. *)
let region_sig (r : Engine.region) =
  let key v = r.Engine.node_key.(v) in
  let edges =
    Dgraph.Digraph.fold_edges
      (fun acc e -> (key e.Dgraph.Digraph.src, key e.dst, e.label) :: acc)
      [] r.Engine.graph
  in
  let terminals = ref [] in
  Array.iteri
    (fun v t -> if t then terminals := key v :: !terminals)
    r.Engine.terminal;
  ( List.sort compare (Array.to_list r.Engine.node_key),
    List.sort compare edges,
    List.sort compare !terminals,
    r.Engine.explored )

let verdict_sig = function
  | Ok { Convergence.region_states; explored; worst_case_steps } ->
      (true, region_states, explored, worst_case_steps)
  | Error (Convergence.Deadlock _) -> (false, 0, 0, None)
  | Error (Convergence.Livelock _) -> (false, 1, 0, None)

let span_sig span =
  ( Faultspan.count span,
    Faultspan.root_count span,
    Faultspan.max_depth span,
    Array.to_list (Faultspan.depth_histogram span) )

let cert_sig cert =
  ( Nonmask.Certify.ok cert,
    List.map
      (fun c -> (c.Nonmask.Certify.label, c.Nonmask.Certify.ok))
      cert.Nonmask.Certify.checks )

let check_twin ~nm ?params ~t_env ~t_program ~t_invariant ~t_legit () =
  let em = compile ?params nm in
  check_env_equal em.Lang.Elab.env t_env;
  check_actions_equal em.Lang.Elab.program t_program;
  Alcotest.(check string)
    "initial states agree"
    (State.to_string t_env t_legit)
    (State.to_string em.Lang.Elab.env em.Lang.Elab.init);
  let em_cp = Compile.program em.Lang.Elab.program in
  let t_cp = Compile.program t_program in
  List.iter
    (fun backend ->
      let e_em =
        Engine.create ~backend ~max_states:budget ~jobs:1 em.Lang.Elab.env
      in
      let e_t = Engine.create ~backend ~max_states:budget ~jobs:1 t_env in
      List.iter
        (fun (rname, from_em, from_t) ->
          let r_em =
            region_sig
              (Engine.region e_em em_cp ~from:from_em
                 ~target:em.Lang.Elab.invariant)
          in
          let r_t =
            region_sig (Engine.region e_t t_cp ~from:from_t ~target:t_invariant)
          in
          if r_em <> r_t then
            Alcotest.failf "%s: regions differ from %s roots"
              (Engine.backend_name e_em) rname;
          let v_em =
            verdict_sig
              (Convergence.check_unfair e_em em_cp ~from:from_em
                 ~target:em.Lang.Elab.invariant)
          in
          let v_t =
            verdict_sig
              (Convergence.check_unfair e_t t_cp ~from:from_t
                 ~target:t_invariant)
          in
          if v_em <> v_t then
            Alcotest.failf "%s: verdicts differ from %s roots"
              (Engine.backend_name e_em) rname)
        [
          ( "legit",
            Engine.Seeds [ em.Lang.Elab.init ],
            Engine.Seeds [ t_legit ] );
          ("all", Engine.All, Engine.All);
        ];
      (* fault span of one-variable corruption: identical environments
         give identical fault actions, so the spans must coincide *)
      let f_em = Sim.Fault.corrupt em.Lang.Elab.env ~k:1 in
      let f_t = Sim.Fault.corrupt t_env ~k:1 in
      let faults_em =
        Compile.program
          (Program.make ~name:"faults" em.Lang.Elab.env
             (Sim.Fault.actions f_em))
      in
      let faults_t =
        Compile.program
          (Program.make ~name:"faults" t_env (Sim.Fault.actions f_t))
      in
      let s_em =
        span_sig
          (Faultspan.compute e_em ~program:em_cp ~budget:1
             ~faults:faults_em
             ~from:(Engine.Seeds [ em.Lang.Elab.init ])
             ())
      in
      let s_t =
        span_sig
          (Faultspan.compute e_t ~program:t_cp ~budget:1
             ~faults:faults_t
             ~from:(Engine.Seeds [ t_legit ])
             ())
      in
      if s_em <> s_t then
        Alcotest.failf "%s: fault spans differ" (Engine.backend_name e_em);
      (* tolerance certificate: same name on both sides, so the check
         labels — which embed action names — must match exactly *)
      let cert side engine program invariant legit fault =
        Nonmask.Certify.tolerance ~engine ~program
          ~faults:(Sim.Fault.actions fault) ~invariant
          ~from:(Engine.Seeds [ legit ]) ~budget:1
          ~name:(Printf.sprintf "twin:%s" side) ()
      in
      let c_em =
        cert_sig
          (cert nm e_em em.Lang.Elab.program em.Lang.Elab.invariant
             em.Lang.Elab.init f_em)
      in
      let c_t = cert_sig (cert nm e_t t_program t_invariant t_legit f_t) in
      if c_em <> c_t then
        Alcotest.failf "%s: certificates differ" (Engine.backend_name e_em))
    backends

let test_twin_xyz () =
  let d = Protocols.Xyz_demo.make Protocols.Xyz_demo.Good_tree in
  let env = Protocols.Xyz_demo.env d in
  check_twin ~nm:"xyz.nm" ~t_env:env
    ~t_program:(Protocols.Xyz_demo.program d)
    ~t_invariant:(fun s -> Protocols.Xyz_demo.invariant d s)
    ~t_legit:
      (State.of_list env
         [
           (Protocols.Xyz_demo.x d, 0);
           (Protocols.Xyz_demo.y d, 1);
           (Protocols.Xyz_demo.z d, 1);
         ])
    ()

let test_twin_token_ring () =
  let tr = Protocols.Token_ring.make ~nodes:5 ~k:6 in
  check_twin ~nm:"token_ring.nm"
    ~t_env:(Protocols.Token_ring.env tr)
    ~t_program:(Protocols.Token_ring.combined tr)
    ~t_invariant:(fun s -> Protocols.Token_ring.invariant tr s)
    ~t_legit:(Protocols.Token_ring.all_zero tr)
    ()

(* --param overrides reshape the instance: N=3, K=4 must equal the
   OCaml twin of that size, not the declared default. *)
let test_twin_token_ring_params () =
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  check_twin ~nm:"token_ring.nm"
    ~params:[ ("N", 3); ("K", 4) ]
    ~t_env:(Protocols.Token_ring.env tr)
    ~t_program:(Protocols.Token_ring.combined tr)
    ~t_invariant:(fun s -> Protocols.Token_ring.invariant tr s)
    ~t_legit:(Protocols.Token_ring.all_zero tr)
    ()

let test_twin_diffusing () =
  let d = Protocols.Diffusing.make (Topology.Tree.balanced ~arity:2 7) in
  check_twin ~nm:"diffusing.nm"
    ~t_env:(Protocols.Diffusing.env d)
    ~t_program:(Protocols.Diffusing.combined d)
    ~t_invariant:(fun s -> Protocols.Diffusing.invariant d s)
    ~t_legit:(Protocols.Diffusing.all_green d)
    ()

(* --- print/parse round-trip ------------------------------------------

   parse ∘ print = id (modulo formatting): printing a parsed model and
   re-parsing it reproduces the same canonical text — checked over 500
   generator seeds via the Gen.Emit surface form, which also proves the
   emitted corpus files are parseable and elaborable. *)

let test_roundtrip_generated () =
  for seed = 0 to 499 do
    let spec = Gen.Generate.spec (Prng.create seed) in
    let text = Gen.Emit.spec_to_nm spec in
    let file = Printf.sprintf "<seed %d>" seed in
    let canon =
      try Lang.Pretty.print (Lang.Driver.parse_string ~file text)
      with Lang.Err.Error e ->
        Alcotest.failf "seed %d: emitted model does not parse: %s" seed
          (Lang.Err.to_string e)
    in
    let again =
      try Lang.Pretty.print (Lang.Driver.parse_string ~file canon)
      with Lang.Err.Error e ->
        Alcotest.failf "seed %d: canonical text does not re-parse: %s" seed
          (Lang.Err.to_string e)
    in
    if canon <> again then
      Alcotest.failf "seed %d: print/parse round-trip is not a fixpoint" seed;
    match Lang.Driver.compile_string ~file canon with
    | (_ : Lang.Elab.t) -> ()
    | exception Lang.Err.Error e ->
        Alcotest.failf "seed %d: canonical text does not elaborate: %s" seed
          (Lang.Err.to_string e)
  done

(* The checked-in example models are fixpoints of the formatter modulo
   their leading comments (which the formatter strips). *)
let test_fmt_idempotent_examples () =
  List.iter
    (fun name ->
      let text = read_file (model_path name) in
      let canon = Lang.Pretty.print (Lang.Driver.parse_string ~file:name text) in
      let again =
        Lang.Pretty.print (Lang.Driver.parse_string ~file:name canon)
      in
      Alcotest.(check string) (name ^ " formats to a fixpoint") canon again)
    [ "xyz.nm"; "token_ring.nm"; "diffusing.nm" ]

(* --- located errors --------------------------------------------------

   Every malformed input is a single Err.Error carrying file:line:col
   and a caret snippet — never an escaped exception. The exact texts
   are goldens: error messages are part of the interface. *)

let check_error ~name text expected =
  match Lang.Driver.compile_string ~file:"m.nm" text with
  | (_ : Lang.Elab.t) -> Alcotest.failf "%s: expected an error" name
  | exception Lang.Err.Error e ->
      Alcotest.(check string) name expected (Lang.Err.to_string e)

let test_parse_errors () =
  check_error ~name:"truncated guard"
    "model m\nvar x : 0..3\naction a:\n  x = -> x := 1\ninvariant x = 0\n"
    "m.nm:4:7: expected an expression, found '->'\n\
    \  4 |   x = -> x := 1\n\
    \    |       ^";
  check_error ~name:"missing model header" "var x : 0..3\n"
    "m.nm:1:1: expected 'model' but found 'var'\n\
    \  1 | var x : 0..3\n\
    \    | ^";
  check_error ~name:"unterminated comment" "model m (* oops\nvar x : bool\n"
    "m.nm:1:9: unterminated comment\n\
    \  1 | model m (* oops\n\
    \    |         ^";
  check_error ~name:"illegal character" "model m\nvar x : 0..3 ? bool\n"
    "m.nm:2:14: unexpected character '?'\n\
    \  2 | var x : 0..3 ? bool\n\
    \    |              ^"

let test_elab_errors () =
  check_error ~name:"unknown variable"
    "model m\nvar x : 0..3\naction a:\n  y > 0 -> x := 1\ninvariant x = 0\n"
    "m.nm:4:3: unknown variable y\n\
    \  4 |   y > 0 -> x := 1\n\
    \    |   ^";
  check_error ~name:"out-of-domain constant"
    "model m\n\
     var x : 0..3\n\
     action a:\n\
    \  x < 3 -> x := 9\n\
     invariant true \\/ x = 0\n"
    "m.nm:4:17: value 9 is outside the domain of x\n\
    \  4 |   x < 3 -> x := 9\n\
    \    |                 ^";
  check_error ~name:"division by zero"
    "model m\nvar x : 0..3\naction a:\n  x > 1 -> x := x / 0\ninvariant x >= 0\n"
    "m.nm:4:21: division by zero\n\
    \  4 |   x > 1 -> x := x / 0\n\
    \    |                     ^";
  check_error ~name:"non-constant divisor"
    "model m\n\
     var x : 0..3\n\
     action a:\n\
    \  x > 1 -> x := x mod (x - x)\n\
     invariant x >= 0\n"
    "m.nm:4:26: divisor must be a non-zero constant expression\n\
    \  4 |   x > 1 -> x := x mod (x - x)\n\
    \    |                          ^";
  check_error ~name:"init violates invariant"
    "model m\nvar x : 0..3\ninvariant x = 9\n"
    "m.nm:1:1: the initial state {x=0} does not satisfy the invariant\n\
    \  1 | model m\n\
    \    | ^";
  check_error ~name:"init out of domain"
    "model m\nvar x : 0..3\ninvariant x >= 0\ninit x = 9\n"
    "m.nm:4:10: value 9 is outside the domain of x\n\
    \  4 | init x = 9\n\
    \    |          ^"

(* --- exporter goldens ------------------------------------------------ *)

let test_export_goldens () =
  List.iter
    (fun (nm, golden_tla, golden_dot) ->
      let em = compile nm in
      Alcotest.(check string)
        (nm ^ " TLA+ module")
        (read_file (golden_path golden_tla))
        (Lang.Tla.render em);
      Alcotest.(check string)
        (nm ^ " DOT graph")
        (read_file (golden_path golden_dot))
        (Lang.Dot.render em))
    [
      ("xyz.nm", "xyz.tla", "xyz.dot");
      ("token_ring.nm", "token_ring.tla", "token_ring.dot");
      ("diffusing.nm", "diffusing.tla", "diffusing.dot");
    ]

let suite =
  [
    Alcotest.test_case "twin: xyz-good-tree" `Quick test_twin_xyz;
    Alcotest.test_case "twin: token-ring" `Quick test_twin_token_ring;
    Alcotest.test_case "twin: token-ring --param" `Quick
      test_twin_token_ring_params;
    Alcotest.test_case "twin: diffusing" `Slow test_twin_diffusing;
    Alcotest.test_case "roundtrip: 500 generated models" `Quick
      test_roundtrip_generated;
    Alcotest.test_case "fmt: examples are formatter fixpoints" `Quick
      test_fmt_idempotent_examples;
    Alcotest.test_case "errors: parser goldens" `Quick test_parse_errors;
    Alcotest.test_case "errors: elaborator goldens" `Quick test_elab_errors;
    Alcotest.test_case "golden: TLA+ and DOT exports" `Quick
      test_export_goldens;
  ]
