(* The observability subsystem: JSON round-trips, the domain-safety of
   the metrics registry, JSONL trace shape, and the reconciliation
   contract — summed event fields must agree exactly with the final
   metrics snapshot, at any job count. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Engine = Explore.Engine
module Convergence = Explore.Convergence
module Token_ring = Protocols.Token_ring

(* --- Json --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "plain");
        ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [] ]) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)

let test_json_escapes () =
  let s = "quote\" backslash\\ newline\n tab\t ctrl\x01 unicode\xc3\xa9" in
  (match Json.of_string (Json.to_string (Json.Str s)) with
  | Ok (Json.Str s') -> Alcotest.(check string) "escaped string" s s'
  | Ok _ -> Alcotest.fail "not a string"
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg));
  (* \u escapes decode to UTF-8 *)
  (match Json.of_string {|"café ✓"|} with
  | Ok (Json.Str s') -> Alcotest.(check string) "unicode" "caf\xc3\xa9 \xe2\x9c\x93" s'
  | Ok _ -> Alcotest.fail "not a string"
  | Error msg -> Alcotest.fail ("unicode parse failed: " ^ msg));
  (* non-finite floats have no JSON representation; they render as null *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float nan))

(* Roundtrip fuzzing with lib/gen's JSON generators: hostile strings
   (every escape class, raw UTF-8, NUL), numeric edge cases (min_int,
   max_int, negative zero, exponent-rendered magnitudes), and deep
   nesting. Failures print the seed, which replays the exact value. *)
let test_json_roundtrip_fuzz () =
  for seed = 0 to 499 do
    let v = Gen.Jsongen.value (Prng.create seed) in
    let s = Json.to_string v in
    match Json.of_string s with
    | Ok v' ->
        if v <> v' then
          Alcotest.failf "seed %d: %s reparsed as %s" seed s (Json.to_string v')
    | Error msg -> Alcotest.failf "seed %d: %s failed to parse: %s" seed s msg
  done

(* Negative zero survives: it renders as "-0.0" (never bare "-0", which
   would reparse as Int) and compares equal structurally. *)
let test_json_negative_zero () =
  Alcotest.(check string) "renders with fraction" "-0.0"
    (Json.to_string (Json.Float (-0.)));
  match Json.of_string "-0.0" with
  | Ok (Json.Float f) ->
      Alcotest.(check bool) "sign bit kept" true (1. /. f = neg_infinity)
  | Ok _ -> Alcotest.fail "not a float"
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)

let test_json_errors () =
  let bad = [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\":1} trailing" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
      | Error _ -> ())
    bad

(* --- Metrics --- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check int) "same handle" 5 (Metrics.value (Metrics.counter m "c"));
  let g = Metrics.gauge m "g" in
  Metrics.set g 7;
  Metrics.set_max g 3;
  Alcotest.(check int) "set_max keeps max" 7 (Metrics.gauge_value g);
  Metrics.set_max g 11;
  Alcotest.(check int) "set_max raises" 11 (Metrics.gauge_value g);
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 1000 ];
  Alcotest.(check int) "hist count" 4 (Metrics.hist_count h);
  Alcotest.(check int) "hist sum" 1006 (Metrics.hist_sum h);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"c\" already registered as another kind")
    (fun () -> ignore (Metrics.gauge m "c"))

let test_metrics_snapshot_deterministic () =
  let build () =
    let m = Metrics.create () in
    (* registration order must not leak into the snapshot *)
    let names = [ "zeta"; "alpha"; "mid" ] in
    List.iter (fun n -> Metrics.add (Metrics.counter m n) 2) names;
    Metrics.observe (Metrics.histogram m "h") 100;
    Json.to_string (Metrics.snapshot m)
  in
  let build_rev () =
    let m = Metrics.create () in
    let names = [ "mid"; "alpha"; "zeta" ] in
    List.iter (fun n -> Metrics.add (Metrics.counter m n) 2) names;
    Metrics.observe (Metrics.histogram m "h") 100;
    Json.to_string (Metrics.snapshot m)
  in
  Alcotest.(check string) "order-independent" (build ()) (build_rev ())

let test_metrics_multidomain () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hits" in
  let h = Metrics.histogram m "obs" in
  let per_domain = 20_000 and domains = 4 in
  let worker () =
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h (i land 255)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Metrics.value c);
  Alcotest.(check int) "no lost observations" (domains * per_domain)
    (Metrics.hist_count h)

(* --- JSONL sink + reconciliation --- *)

let read_trace file =
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev_map
    (fun line ->
      match Json.of_string line with
      | Ok j -> j
      | Error msg -> Alcotest.fail (Printf.sprintf "bad trace line %S: %s" line msg))
    !lines

let ev_name j =
  match Json.member "ev" j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail ("trace line without ev: " ^ Json.to_string j)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some n -> n
  | None ->
      Alcotest.fail
        (Printf.sprintf "missing int field %s in %s" name (Json.to_string j))

let with_trace f =
  let file = Filename.temp_file "nonmask-test-obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      let obs = Obs.Ctx.create ~sink:(Obs.Sink.jsonl oc) () in
      let r = f obs in
      Obs.Ctx.close obs;
      (r, read_trace file))

let test_sink_lines_ordered () =
  let (), trace =
    with_trace (fun obs ->
        for i = 0 to 9 do
          Obs.Ctx.emit obs "tick"
            [ ("i", Obs.Sink.I i); ("even", Obs.Sink.B (i mod 2 = 0)) ]
        done)
  in
  Alcotest.(check int) "10 lines" 10 (List.length trace);
  List.iteri
    (fun i j ->
      Alcotest.(check string) "ev" "tick" (ev_name j);
      Alcotest.(check int) "seq in order" i (int_field "seq" j);
      Alcotest.(check int) "payload" i (int_field "i" j))
    trace

(* The reconciliation contract: counters in the final snapshot equal the
   sums over the corresponding trace events — and the event profile is
   identical at any job count. *)
let engine_trace jobs =
  with_trace (fun obs ->
      let tr = Token_ring.make ~nodes:4 ~k:4 in
      let engine =
        Engine.create ~backend:Engine.Parallel ~jobs ~obs (Token_ring.env tr)
      in
      let result =
        Convergence.check_unfair engine
          (Guarded.Compile.program (Token_ring.combined tr))
          ~from:
            (Engine.Seeds
               (Engine.ball (Token_ring.env tr) ~center:(Token_ring.all_zero tr)
                  ~radius:2))
          ~target:(fun s -> Token_ring.invariant tr s)
      in
      let discovered =
        Metrics.value (Obs.Ctx.counter obs "engine.states_discovered")
      in
      (result, discovered))

let test_trace_reconciles_with_metrics () =
  let (result, discovered), trace = engine_trace 2 in
  (match result with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "token-ring should converge");
  let by ev = List.filter (fun j -> ev_name j = ev) trace in
  let sum field evs = List.fold_left (fun a j -> a + int_field field j) 0 evs in
  let regions = by "engine.region" in
  Alcotest.(check bool) "has region events" true (regions <> []);
  Alcotest.(check int) "sum explored = states_discovered counter" discovered
    (sum "explored" regions);
  (* parallel backend: roots + wave discoveries account for every state *)
  let roots = sum "discovered" (by "engine.roots") in
  let waves = sum "discovered" (by "engine.wave") in
  Alcotest.(check int) "roots + waves = explored" (sum "explored" regions)
    (roots + waves)

let test_trace_stable_across_jobs () =
  let profile trace =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun j ->
        let ev = ev_name j in
        Hashtbl.replace tbl ev
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl ev)))
      trace;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let (_, d1), t1 = engine_trace 1 in
  let (_, d4), t4 = engine_trace 4 in
  Alcotest.(check int) "same discovery count" d1 d4;
  Alcotest.(check (list (pair string int)))
    "identical event profile at jobs 1 and 4" (profile t1) (profile t4)

let test_storm_trial_events () =
  let trials = 40 in
  let (result, (total_steps, faults_injected)), trace =
    with_trace (fun obs ->
        let tr = Token_ring.make ~nodes:4 ~k:5 in
        let env = Token_ring.env tr in
        let fault = Sim.Fault.corrupt env ~k:1 in
        let result =
          Sim.Storm.trials ~max_steps:2_000 ~jobs:2 ~obs
            ~rng:(Prng.create 7) ~trials
            ~daemon:(fun r -> Sim.Daemon.random r)
            ~prepare:(fun r ->
              let s = Token_ring.all_zero tr in
              fault.Sim.Fault.inject r s;
              s)
            ~stop:(fun s -> Token_ring.invariant tr s)
            ~fault ~rate:0.05
            (Guarded.Compile.program (Token_ring.combined tr))
        in
        ( result,
          ( Metrics.value (Obs.Ctx.counter obs "storm.steps_total"),
            Metrics.value (Obs.Ctx.counter obs "storm.faults_injected") ) ))
  in
  let trial_evs = List.filter (fun j -> ev_name j = "storm.trial") trace in
  Alcotest.(check int) "one event per trial" trials (List.length trial_evs);
  (* events arrive in trial order regardless of which domain ran them *)
  List.iteri
    (fun i j -> Alcotest.(check int) "trial index" i (int_field "trial" j))
    trial_evs;
  let sum field = List.fold_left (fun a j -> a + int_field field j) 0 trial_evs in
  Alcotest.(check int) "sum steps = steps_total counter" total_steps
    (sum "steps");
  Alcotest.(check int) "sum faults = faults_injected counter" faults_injected
    (sum "faults");
  Alcotest.(check int) "steps match result array" total_steps
    (Array.fold_left ( + ) 0 result.Sim.Storm.steps)

let test_certify_span_events () =
  let (cert, ()), trace =
    with_trace (fun obs ->
        let tr = Token_ring.make ~nodes:4 ~k:5 in
        let env = Token_ring.env tr in
        let engine = Engine.create ~obs env in
        let fault = Sim.Fault.corrupt env ~k:1 in
        let cert =
          Nonmask.Certify.tolerance ~engine ~program:(Token_ring.combined tr)
            ~faults:(Sim.Fault.actions fault)
            ~invariant:(fun s -> Token_ring.invariant tr s)
            ~budget:1 ~name:"obs test" ()
        in
        (cert, ()))
  in
  Alcotest.(check bool) "certificate valid" true (Nonmask.Certify.ok cert);
  let span_names =
    List.filter_map
      (fun j ->
        if ev_name j = "span" then
          match Json.member "name" j with
          | Some (Json.Str s) -> Some s
          | _ -> None
        else None)
      trace
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " span present") true
        (List.mem phase span_names))
    [ "certify.span"; "certify.closure"; "certify.convergence" ];
  Alcotest.(check bool) "faultspan layers traced" true
    (List.exists (fun j -> ev_name j = "faultspan.layer") trace);
  match List.rev trace with
  | [] -> Alcotest.fail "empty trace"
  | last :: _ ->
      Alcotest.(check string) "certify.done is final" "certify.done"
        (ev_name last)

(* --- progress (interval <= 0 reports every tick) --- *)

let test_progress_every_tick () =
  let file = Filename.temp_file "nonmask-test-progress" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      let p = Obs.Progress.create ~interval:(-1.0) ~out:oc () in
      Obs.Progress.tick p ~label:"t" ~states:10 ~frontier:3 ~depth:1 ();
      Obs.Progress.tick p ~label:"t" ~states:20 ();
      Obs.Progress.final p ~label:"t" ~states:20;
      close_out oc;
      let ic = open_in file in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check int) "three lines" 3 !n)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json roundtrip fuzz (500 seeds)" `Quick
      test_json_roundtrip_fuzz;
    Alcotest.test_case "json negative zero" `Quick test_json_negative_zero;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "metrics basics" `Quick test_metrics_basics;
    Alcotest.test_case "metrics snapshot deterministic" `Quick
      test_metrics_snapshot_deterministic;
    Alcotest.test_case "metrics multi-domain" `Quick test_metrics_multidomain;
    Alcotest.test_case "jsonl sink ordered" `Quick test_sink_lines_ordered;
    Alcotest.test_case "trace reconciles with metrics" `Quick
      test_trace_reconciles_with_metrics;
    Alcotest.test_case "trace stable across jobs" `Quick
      test_trace_stable_across_jobs;
    Alcotest.test_case "storm trial events" `Quick test_storm_trial_events;
    Alcotest.test_case "certify span events" `Quick test_certify_span_events;
    Alcotest.test_case "progress every tick" `Quick test_progress_every_tick;
  ]
