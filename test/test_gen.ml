(* Tests for lib/gen: generator well-formedness over pinned seeds,
   deterministic reproduction, oracle cleanliness on known-good seeds, the
   harness's ability to catch a (simulated) broken backend, and shrink
   quality — a defect-induced counterexample must minimize to a handful of
   actions and reproduce from its printed seed. *)

module Domain = Guarded.Domain
module Var = Guarded.Var
module State = Guarded.State
module Env = Guarded.Env
module Engine = Explore.Engine

let in_domain env s =
  Array.for_all
    (fun v -> Domain.mem (Var.domain v) (State.get s v))
    (Env.vars env)

(* Every generated model is well-formed: the space respects the cap, the
   legitimate state satisfies the invariant, and every action execution
   from any in-domain state stays in-domain (the materializer's clamp). *)
let test_generator_well_formed () =
  for seed = 0 to 99 do
    let m = Gen.Generate.model (Prng.create seed) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: space under cap" seed)
      true
      (Gen.Spec.space_size m.Gen.Spec.spec <= 4096.0);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: legit satisfies invariant" seed)
      true
      (m.Gen.Spec.invariant m.Gen.Spec.legit);
    let e = Engine.create ~backend:Engine.Eager m.Gen.Spec.env in
    let actions =
      Array.to_list (Guarded.Program.actions m.Gen.Spec.program)
      @ m.Gen.Spec.fault_actions
    in
    Engine.iter_states e (fun s ->
        List.iter
          (fun a ->
            if Guarded.Action.enabled a s then
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: %s stays in-domain" seed
                   (Guarded.Action.name a))
                true
                (in_domain m.Gen.Spec.env (Guarded.Action.execute a s)))
          actions)
  done

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let s1 = Gen.Generate.spec (Prng.create seed) in
      let s2 = Gen.Generate.spec (Prng.create seed) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces" seed)
        (Gen.Spec.to_string s1) (Gen.Spec.to_string s2))
    [ 0; 42; 4096; 20260805 ]

(* Pinned seeds: the differential oracles hold on generated models. This
   is the in-process twin of the CI `fuzz-smoke` leg. *)
let test_oracles_hold () =
  let report = Gen.Fuzz.run ~seed:42 ~count:60 () in
  Alcotest.(check int) "no counterexamples" 0
    (List.length report.Gen.Fuzz.counterexamples)

(* Regression: backends pick exploration-order-dependent deadlock
   witnesses (first terminal node in node order). Seed 20260729 generates
   a model with two deadlock states where eager and lazy report different
   witnesses — verdict-agree must accept both as valid rather than
   compare them for identity. *)
let test_deadlock_witness_regression () =
  let report = Gen.Fuzz.run ~seed:20260729 ~count:1 () in
  Alcotest.(check int) "distinct valid witnesses are not a failure" 0
    (List.length report.Gen.Fuzz.counterexamples)

(* The fuzz report is identical at any job count. *)
let test_jobs_deterministic () =
  let r1 = Gen.Fuzz.run ~seed:7 ~count:24 ~jobs:1 () in
  let r2 = Gen.Fuzz.run ~seed:7 ~count:24 ~jobs:3 () in
  Alcotest.(check int) "same trial count" r1.Gen.Fuzz.trials r2.Gen.Fuzz.trials;
  Alcotest.(check int) "same counterexample count"
    (List.length r1.Gen.Fuzz.counterexamples)
    (List.length r2.Gen.Fuzz.counterexamples)

(* A broken backend must be caught: with a simulated off-by-one defect in
   the parallel backend's explored accounting, every trial fails the
   region-agreement oracle, the shrinker minimizes the counterexample to
   a tiny instance, and the counterexample reproduces from its seed. *)
let test_defect_is_caught_and_minimized () =
  let oracle_config =
    { Gen.Oracle.default with defect = Some Engine.Parallel }
  in
  let report = Gen.Fuzz.run ~oracle_config ~seed:42 ~count:5 () in
  Alcotest.(check int) "every trial is a counterexample" 5
    (List.length report.Gen.Fuzz.counterexamples);
  List.iter
    (fun c ->
      Alcotest.(check string)
        "caught by the region oracle" "region-agree"
        c.Gen.Fuzz.failure.Gen.Oracle.oracle;
      Alcotest.(check bool)
        "minimized to at most 6 actions" true
        (Gen.Spec.action_count c.Gen.Fuzz.spec <= 6);
      Alcotest.(check bool)
        "minimized to at most 2 variables" true
        (List.length (Gen.Spec.live_slots c.Gen.Fuzz.spec) <= 2);
      (* Reproduction: re-running the single printed seed finds the same
         oracle violation again. *)
      let again =
        Gen.Fuzz.run ~oracle_config ~seed:c.Gen.Fuzz.seed ~count:1 ()
      in
      match again.Gen.Fuzz.counterexamples with
      | [ c' ] ->
          Alcotest.(check string) "same oracle on replay"
            c.Gen.Fuzz.failure.Gen.Oracle.oracle
            c'.Gen.Fuzz.failure.Gen.Oracle.oracle
      | l ->
          Alcotest.failf "replay of seed %d found %d counterexamples"
            c.Gen.Fuzz.seed (List.length l))
    report.Gen.Fuzz.counterexamples

(* A defect in the lazy backend is caught just the same — the eager
   backend is the reference, either sibling can be the culprit. *)
let test_lazy_defect_caught () =
  let oracle_config = { Gen.Oracle.default with defect = Some Engine.Lazy } in
  let report = Gen.Fuzz.run ~oracle_config ~seed:1 ~count:3 () in
  Alcotest.(check int) "all trials fail" 3
    (List.length report.Gen.Fuzz.counterexamples)

(* The shrinker respects its oracle: with a synthetic predicate ("fails
   while the model still has a fault action") it must minimize to exactly
   one fault action and keep the failure. *)
let test_shrink_synthetic () =
  let spec = Gen.Generate.spec (Prng.create 9) in
  let fail = { Gen.Oracle.oracle = "synthetic"; detail = "has faults" } in
  let oracle s = if Gen.Spec.fault_count s >= 1 then Some fail else None in
  match oracle spec with
  | None -> Alcotest.fail "seed 9 should generate at least one fault"
  | Some f ->
      let min_spec, _, stats = Gen.Shrink.minimize ~oracle spec f in
      Alcotest.(check int) "one fault action left" 1
        (Gen.Spec.fault_count min_spec);
      Alcotest.(check bool) "spent some evaluations" true (stats.Gen.Shrink.evals > 0)

(* Shrinking never produces an unmaterializable spec. *)
let test_shrink_specs_stay_well_formed () =
  let spec = Gen.Generate.spec (Prng.create 3) in
  let fail = { Gen.Oracle.oracle = "synthetic"; detail = "" } in
  let oracle s =
    ignore (Gen.Spec.materialize s);
    Some fail
  in
  let min_spec, _, _ = Gen.Shrink.minimize ~max_evals:200 ~oracle spec fail in
  let m = Gen.Spec.materialize min_spec in
  Alcotest.(check bool) "minimal model materializes" true
    (m.Gen.Spec.invariant m.Gen.Spec.legit)

let suite =
  [
    Alcotest.test_case "generated models well-formed (100 seeds)" `Quick
      test_generator_well_formed;
    Alcotest.test_case "generation deterministic per seed" `Quick
      test_generator_deterministic;
    Alcotest.test_case "oracles hold on pinned seeds" `Slow test_oracles_hold;
    Alcotest.test_case "deadlock witness may differ across backends" `Quick
      test_deadlock_witness_regression;
    Alcotest.test_case "report identical across job counts" `Quick
      test_jobs_deterministic;
    Alcotest.test_case "parallel defect caught, minimized, reproducible" `Quick
      test_defect_is_caught_and_minimized;
    Alcotest.test_case "lazy defect caught" `Quick test_lazy_defect_caught;
    Alcotest.test_case "shrinker minimizes against synthetic oracle" `Quick
      test_shrink_synthetic;
    Alcotest.test_case "shrunk specs stay well-formed" `Quick
      test_shrink_specs_stay_well_formed;
  ]
