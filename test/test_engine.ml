(* Tests for the pluggable exploration engine: space encoding boundaries,
   the lazy frontier backend, and — most importantly — that eager and lazy
   backends return identical verdicts on the seed protocols. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Tree = Topology.Tree
module Space = Explore.Space
module Engine = Explore.Engine
module Convergence = Explore.Convergence

let env_of_sizes sizes =
  let env = Guarded.Env.create () in
  List.iteri
    (fun i n ->
      ignore
        (Guarded.Env.fresh env
           (Printf.sprintf "v%d" i)
           (Guarded.Domain.range 0 (n - 1))))
    sizes;
  env

(* --- Space encode/decode --- *)

let test_space_roundtrip_exhaustive () =
  let env = env_of_sizes [ 3; 4; 2; 5 ] in
  let space = Space.create env in
  Alcotest.(check int) "size" 120 (Space.size space);
  Space.iter space (fun id s ->
      Alcotest.(check int) "encode(decode id) = id" id (Space.encode space s))

let test_space_roundtrip_unbounded () =
  (* 6^20 ~ 3.6e15 states: far over the default cap, still encodable. An
     unbounded space must roundtrip sampled states exactly. *)
  let env = env_of_sizes (List.init 20 (fun _ -> 6)) in
  let space = Space.create_unbounded env in
  let rng = Prng.create 7 in
  let vars = Guarded.Env.vars env in
  for _ = 1 to 200 do
    let s = State.make env in
    Array.iter
      (fun v ->
        State.set s v (Prng.int rng (Guarded.Domain.size (Guarded.Var.domain v))))
      vars;
    let key = Space.encode space s in
    Alcotest.(check bool) "decode(encode s) = s" true
      (State.equal s (Space.decode space key))
  done

let test_space_too_large_boundary () =
  let env = env_of_sizes [ 4; 5 ] in
  (* exactly at the cap: allowed *)
  let space = Space.create ~max_states:20 env in
  Alcotest.(check int) "at-cap size" 20 (Space.size space);
  (* one below the cap: rejected, carrying the true size *)
  match Space.create ~max_states:19 env with
  | exception Space.Too_large total ->
      Alcotest.(check (float 1e-9)) "reported size" 20.0 total
  | _ -> Alcotest.fail "19-state cap must reject a 20-state space"

let test_space_encodable_max_guard () =
  (* 2^61 states overflow the mixed-radix code even unbounded *)
  let env = env_of_sizes (List.init 61 (fun _ -> 2)) in
  Alcotest.(check bool) "raises Too_large" true
    (try
       ignore (Space.create_unbounded env);
       false
     with Space.Too_large _ -> true)

let test_eager_engine_respects_cap () =
  let env = env_of_sizes [ 10; 10; 10 ] in
  Alcotest.(check bool) "eager over cap rejected" true
    (try
       ignore (Engine.create ~backend:Engine.Eager ~max_states:999 env);
       false
     with Space.Too_large _ -> true);
  (* the lazy engine accepts the same env and raises only on overflow *)
  let engine = Engine.create ~backend:Engine.Lazy ~max_states:999 env in
  Alcotest.(check bool) "lazy create ok" true (Engine.backend engine = Engine.Lazy);
  Alcotest.(check bool) "lazy sweep over budget raises" true
    (try
       Engine.iter_states engine (fun _ -> ());
       false
     with Engine.Region_overflow n -> n > 999)

let test_ball_counts () =
  let env = env_of_sizes [ 3; 4; 2 ] in
  let center = State.make env in
  let count r = List.length (Engine.ball env ~center ~radius:r) in
  (* radius 0: just the center; radius 1: 1 + Σ (dᵢ - 1) = 1 + 2 + 3 + 1 *)
  Alcotest.(check int) "radius 0" 1 (count 0);
  Alcotest.(check int) "radius 1" 7 (count 1);
  (* radius = #vars: the whole space *)
  Alcotest.(check int) "radius 3" 24 (count 3);
  let all = Engine.ball env ~center ~radius:3 in
  let space = Space.create env in
  let keys = List.sort_uniq compare (List.map (Space.encode space) all) in
  Alcotest.(check int) "ball states distinct" 24 (List.length keys)

let test_ball_edge_cases () =
  let env = env_of_sizes [ 3; 4; 2 ] in
  let center = State.make env in
  State.set center (Guarded.Env.var_at env 1) 2;
  (* radius 0: exactly the seed state *)
  (match Engine.ball env ~center ~radius:0 with
  | [ s ] ->
      Alcotest.(check bool) "radius 0 is the center" true (State.equal s center)
  | l -> Alcotest.failf "radius 0 ball has %d states" (List.length l));
  (* radius past the variable count saturates at the full space *)
  let space = Space.create env in
  let full = Engine.ball env ~center ~radius:17 in
  Alcotest.(check int) "oversized radius = whole space" (Space.size space)
    (List.length full);
  let keys = List.sort_uniq compare (List.map (Space.encode space) full) in
  Alcotest.(check int) "distinct states" (Space.size space) (List.length keys)

let test_equiv_ball_rooted_region () =
  (* the two backends must build the same ¬S region from a fault ball *)
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:4 in
  let env = Protocols.Token_ring.env tr in
  let seeds =
    Engine.ball env ~center:(Protocols.Token_ring.all_zero tr) ~radius:2
  in
  let run backend =
    let engine = Engine.create ~backend env in
    let region =
      Engine.region engine
        (Compile.program (Protocols.Token_ring.combined tr))
        ~from:(Engine.Seeds seeds)
        ~target:(fun s -> Protocols.Token_ring.invariant tr s)
    in
    ( List.sort compare (Array.to_list region.Engine.node_key),
      Array.fold_left (fun n t -> if t then n + 1 else n) 0
        region.Engine.terminal,
      Dgraph.Digraph.edge_count region.Engine.graph )
  in
  Alcotest.(check bool) "identical ball-rooted regions" true
    (run Engine.Eager = run Engine.Lazy)

(* --- Eager/lazy verdict equivalence on the seed protocols --- *)

let stats_eq (a : Convergence.stats) (b : Convergence.stats) =
  a.region_states = b.region_states
  && a.explored = b.explored
  && a.worst_case_steps = b.worst_case_steps

let check_both_unfair name env program invariant =
  let run backend =
    Convergence.check_unfair
      (Engine.create ~backend env)
      (Compile.program program) ~from:Engine.All ~target:invariant
  in
  match (run Engine.Eager, run Engine.Lazy) with
  | Ok a, Ok b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical stats" name)
        true (stats_eq a b)
  | Error (Convergence.Deadlock a), Error (Convergence.Deadlock b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: same deadlock" name)
        true (State.equal a b)
  | Error (Convergence.Livelock _), Error (Convergence.Livelock _) -> ()
  | _ -> Alcotest.failf "%s: eager and lazy verdicts differ" name

let test_equiv_diffusing () =
  List.iter
    (fun tree ->
      let d = Protocols.Diffusing.make tree in
      check_both_unfair "diffusing"
        (Protocols.Diffusing.env d)
        (Protocols.Diffusing.combined d)
        (fun s -> Protocols.Diffusing.invariant d s))
    [ Tree.chain 3; Tree.star 4; Tree.balanced ~arity:2 5 ]

let test_equiv_token_ring () =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  check_both_unfair "token-ring"
    (Protocols.Token_ring.env tr)
    (Protocols.Token_ring.combined tr)
    (fun s -> Protocols.Token_ring.invariant tr s)

let test_equiv_dijkstra () =
  (* one converging and one livelocking instance *)
  let dr = Protocols.Dijkstra_ring.make ~nodes:3 ~k:4 in
  check_both_unfair "dijkstra k=4"
    (Protocols.Dijkstra_ring.env dr)
    (Protocols.Dijkstra_ring.program dr)
    (fun s -> Protocols.Dijkstra_ring.invariant dr s);
  let bad = Protocols.Dijkstra_ring.make ~nodes:4 ~k:2 in
  check_both_unfair "dijkstra k=2"
    (Protocols.Dijkstra_ring.env bad)
    (Protocols.Dijkstra_ring.program bad)
    (fun s -> Protocols.Dijkstra_ring.invariant bad s)

let test_equiv_xyz () =
  List.iter
    (fun variant ->
      let d = Protocols.Xyz_demo.make variant in
      check_both_unfair "xyz"
        (Protocols.Xyz_demo.env d)
        (Protocols.Xyz_demo.program d)
        (fun s -> Protocols.Xyz_demo.invariant d s))
    [ Protocols.Xyz_demo.Good_tree; Protocols.Xyz_demo.Good_ordered;
      Protocols.Xyz_demo.Bad ]

let test_equiv_naive_ring_deadlock () =
  let nr = Protocols.Naive_ring.make ~nodes:3 in
  check_both_unfair "naive-ring"
    (Protocols.Naive_ring.env nr)
    (Protocols.Naive_ring.program nr)
    (fun s -> Protocols.Naive_ring.invariant nr s)

let test_equiv_fair_verdicts () =
  let dr = Protocols.Dijkstra_ring.make ~nodes:3 ~k:2 in
  let run backend =
    Convergence.check_fair
      (Engine.create ~backend (Protocols.Dijkstra_ring.env dr))
      (Compile.program (Protocols.Dijkstra_ring.program dr))
      ~from:Engine.All
      ~target:(fun s -> Protocols.Dijkstra_ring.invariant dr s)
  in
  let tag = function
    | Convergence.Converges _ -> "converges"
    | Convergence.Fails (Convergence.Deadlock _) -> "deadlock"
    | Convergence.Fails (Convergence.Livelock _) -> "livelock"
    | Convergence.Unknown _ -> "unknown"
  in
  Alcotest.(check string) "same fair verdict"
    (tag (run Engine.Eager))
    (tag (run Engine.Lazy))

let test_equiv_seed_roots () =
  (* from a fault ball rather than the whole space, on a space far over the
     eager cap: the lazy engine must agree with an uncapped eager engine *)
  let d = Protocols.Diffusing.make (Tree.balanced ~arity:2 8) in
  let env = Protocols.Diffusing.env d in
  let seeds = Engine.ball env ~center:(Protocols.Diffusing.all_green d) ~radius:2 in
  let run backend =
    Convergence.check_unfair
      (Engine.create ~backend env)
      (Compile.program (Protocols.Diffusing.combined d))
      ~from:(Engine.Seeds seeds)
      ~target:(fun s -> Protocols.Diffusing.invariant d s)
  in
  match (run Engine.Eager, run Engine.Lazy) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "identical stats from seeds" true (stats_eq a b)
  | _ -> Alcotest.fail "seeded diffusing must converge under both backends"

let test_equiv_closure () =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  let cp = Compile.program (Protocols.Token_ring.combined tr) in
  let run backend =
    Explore.Closure.program_closed
      (Engine.create ~backend (Protocols.Token_ring.env tr))
      cp
      ~pred:(fun s -> Protocols.Token_ring.invariant tr s)
  in
  match (run Engine.Eager, run Engine.Lazy) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "token ring invariant closed under both backends"

let test_lazy_beyond_eager_cap () =
  (* 13^8 ~ 8.2e8 states: eager materialization is impossible under the 2M
     default cap, but a radius-1 fault ball converges with a tiny region *)
  let dr = Protocols.Dijkstra_ring.make ~nodes:8 ~k:13 in
  let env = Protocols.Dijkstra_ring.env dr in
  (match Engine.create ~backend:Engine.Eager env with
  | exception Space.Too_large _ -> ()
  | _ -> Alcotest.fail "13^8 must exceed the eager cap");
  let engine = Engine.create ~backend:Engine.Lazy env in
  let seeds =
    Engine.ball env ~center:(Protocols.Dijkstra_ring.all_zero dr) ~radius:1
  in
  match
    Convergence.check_unfair engine
      (Compile.program (Protocols.Dijkstra_ring.program dr))
      ~from:(Engine.Seeds seeds)
      ~target:(fun s -> Protocols.Dijkstra_ring.invariant dr s)
  with
  | Ok { explored; _ } ->
      Alcotest.(check bool) "tiny fraction explored" true (explored < 100_000)
  | Error _ -> Alcotest.fail "dijkstra 8/13 converges from radius-1 faults"

let suite =
  [
    Alcotest.test_case "space roundtrip (exhaustive)" `Quick
      test_space_roundtrip_exhaustive;
    Alcotest.test_case "space roundtrip (unbounded, sampled)" `Quick
      test_space_roundtrip_unbounded;
    Alcotest.test_case "Too_large boundary" `Quick test_space_too_large_boundary;
    Alcotest.test_case "encodable_max guard" `Quick test_space_encodable_max_guard;
    Alcotest.test_case "eager cap vs lazy budget" `Quick
      test_eager_engine_respects_cap;
    Alcotest.test_case "fault balls" `Quick test_ball_counts;
    Alcotest.test_case "fault ball edge cases" `Quick test_ball_edge_cases;
    Alcotest.test_case "equivalence: ball-rooted region" `Quick
      test_equiv_ball_rooted_region;
    Alcotest.test_case "equivalence: diffusing" `Quick test_equiv_diffusing;
    Alcotest.test_case "equivalence: token ring" `Quick test_equiv_token_ring;
    Alcotest.test_case "equivalence: dijkstra (ok and livelock)" `Quick
      test_equiv_dijkstra;
    Alcotest.test_case "equivalence: xyz variants" `Quick test_equiv_xyz;
    Alcotest.test_case "equivalence: naive ring failure" `Quick
      test_equiv_naive_ring_deadlock;
    Alcotest.test_case "equivalence: fair verdict" `Quick test_equiv_fair_verdicts;
    Alcotest.test_case "equivalence: seeded roots" `Slow test_equiv_seed_roots;
    Alcotest.test_case "equivalence: closure" `Quick test_equiv_closure;
    Alcotest.test_case "lazy past the eager cap" `Slow test_lazy_beyond_eager_cap;
  ]
