(* Tests for the concrete syntax: lexing/parsing of expressions, actions,
   declarations, whole programs — and the roundtrip law
   [parse (print p) = p] over every protocol program in the library. *)

module Env = Guarded.Env
module Domain = Guarded.Domain
module State = Guarded.State
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program
module Dsl = Guarded.Dsl
module Var = Guarded.Var

let mk_env () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range (-5) 5) in
  let y = Env.fresh env "y" (Domain.range (-5) 5) in
  (env, x, y)

(* --- expressions --- *)

let test_parse_num_basics () =
  let env, x, y = mk_env () in
  let check src expected =
    let e = Dsl.parse_num_exn env src in
    if not (Expr.equal_num e expected) then
      Alcotest.failf "%s parsed as %s" src (Expr.num_to_string e)
  in
  check "42" (Expr.Const 42);
  check "x" (Expr.Var x);
  check "x + 1" Expr.(var x + int 1);
  check "x + y * 2" Expr.(var x + (var y * int 2));
  check "(x + y) * 2" Expr.((var x + var y) * int 2);
  check "x - 1 - 2" Expr.(var x - int 1 - int 2);
  check "x mod 3" Expr.(var x mod int 3);
  check "x / 2" Expr.(var x / int 2);
  check "min(x, y)" (Expr.min_ (Expr.var x) (Expr.var y));
  check "max(x, 0)" (Expr.max_ (Expr.var x) (Expr.int 0));
  check "-x" (Expr.neg (Expr.var x));
  check "(-3)" (Expr.Const (-3));
  check "(if x = y then 1 else 0)"
    (Expr.ite Expr.(var x = var y) (Expr.int 1) (Expr.int 0))

let test_parse_bexp_basics () =
  let env, x, y = mk_env () in
  let check src expected =
    let b = Dsl.parse_bexp_exn env src in
    if not (Expr.equal b expected) then
      Alcotest.failf "%s parsed as %s" src (Expr.to_string b)
  in
  check "true" Expr.tt;
  check "false" Expr.ff;
  check "x = y" Expr.(var x = var y);
  check "x <> y" Expr.(var x <> var y);
  check "x <= y" Expr.(var x <= var y);
  check "x = 1 /\\ y = 2" Expr.(var x = int 1 && var y = int 2);
  check "x = 1 \\/ y = 2" Expr.(var x = int 1 || var y = int 2);
  check "~x = 1" (Expr.not_ Expr.(var x = int 1));
  check "x = 1 => y = 2" Expr.(var x = int 1 ==> (var y = int 2));
  check "x = 1 <=> y = 2" Expr.(var x = int 1 <=> (var y = int 2));
  (* precedence: /\ binds tighter than \/ *)
  check "x = 1 /\\ y = 2 \\/ x = 3"
    Expr.(var x = int 1 && var y = int 2 || var x = int 3);
  (* parenthesized boolean *)
  check "x = 1 /\\ (y = 2 \\/ x = 3)"
    Expr.(var x = int 1 && (var y = int 2 || var x = int 3))

let test_parse_action () =
  let env, x, y = mk_env () in
  let a = Dsl.parse_action_exn env "step: x < y -> x, y := x + 1, y - 1" in
  Alcotest.(check string) "name" "step" (Action.name a);
  Alcotest.(check bool) "guard" true
    (Expr.equal (Action.guard a) Expr.(var x < var y));
  Alcotest.(check int) "two assignments" 2 (List.length (Action.assigns a));
  let skip = Dsl.parse_action_exn env "noop: x = 0 -> skip" in
  Alcotest.(check int) "skip" 0 (List.length (Action.assigns skip));
  let dashed = Dsl.parse_action_exn env "bump-y.2: true -> y := 0" in
  Alcotest.(check string) "dashed name" "bump-y.2" (Action.name dashed)

let test_parse_program () =
  let src =
    {|
    program updown
    var x : 0..3
    var b : bool
    var c : color{green,red}
    begin
      up: x < 3 /\ b = 1 -> x := x + 1
      []
      down: x > 0 -> x, b := x - 1, 0
      []
      paint: c = 0 -> c := 1
    end
    |}
  in
  let env, p = Dsl.parse_program_exn src in
  Alcotest.(check string) "name" "updown" (Program.name p);
  Alcotest.(check int) "three actions" 3 (Program.action_count p);
  Alcotest.(check int) "three vars" 3 (Env.var_count env);
  let x = Env.lookup_exn env "x" in
  Alcotest.(check bool) "x domain" true
    (Domain.equal (Var.domain x) (Domain.range 0 3));
  let c = Env.lookup_exn env "c" in
  Alcotest.(check bool) "enum domain" true
    (Domain.equal (Var.domain c) (Domain.enum "color" [ "green"; "red" ]));
  (* behave sanity: run a step *)
  let s = State.make env in
  State.set s (Env.lookup_exn env "b") 1;
  let up = Option.get (Program.find_action p "up") in
  Alcotest.(check bool) "up enabled" true (Action.enabled up s)

let test_parse_comments_and_multi_decl () =
  let src =
    {|
    program demo (* a (* nested *) comment *)
    var a, b : 0..1;
    begin
      t: a = 0 -> a := 1
    end
    |}
  in
  let env, p = Dsl.parse_program_exn src in
  Alcotest.(check int) "two vars" 2 (Env.var_count env);
  Alcotest.(check int) "one action" 1 (Program.action_count p)

let test_parse_empty_program () =
  let _, p = Dsl.parse_program_exn "program nothing\nbegin\nend" in
  Alcotest.(check int) "no actions" 0 (Program.action_count p)

let test_parse_errors () =
  let env, _, _ = mk_env () in
  let expect_error src =
    match Dsl.parse_bexp env src with
    | Error _ -> ()
    | Ok b -> Alcotest.failf "%s should not parse (got %s)" src (Expr.to_string b)
  in
  expect_error "x +";
  expect_error "x = ";
  expect_error "unknownvar = 1";
  expect_error "x = 1 /\\";
  expect_error "x = 1 extra";
  (match Dsl.parse_program "program p var x : 5..2 begin end" with
  | Error e -> Alcotest.(check bool) "line info" true (e.Dsl.line >= 1)
  | Ok _ -> Alcotest.fail "empty range should be rejected");
  match Dsl.parse_program "program p begin q: true -> skip [] q: true -> skip end" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate action names should be rejected"

let test_error_position () =
  match Dsl.parse_program "program p\nvar x : bool\nbegin\n  a: x @ 1 -> skip\nend" with
  | Error e ->
      Alcotest.(check int) "line" 4 e.Dsl.line;
      Alcotest.(check bool) "message mentions char" true
        (Astring_contains.contains e.Dsl.message "'@'")
  | Ok _ -> Alcotest.fail "@ is not a token"

(* --- the roundtrip law --- *)

let var_signature env =
  Array.to_list (Env.vars env)
  |> List.map (fun v -> (Var.name v, Var.index v, Var.domain v))

let action_equal a b =
  String.equal (Action.name a) (Action.name b)
  && Expr.equal (Action.guard a) (Action.guard b)
  && List.length (Action.assigns a) = List.length (Action.assigns b)
  && List.for_all2
       (fun (v1, e1) (v2, e2) ->
         String.equal (Var.name v1) (Var.name v2) && Expr.equal_num e1 e2)
       (Action.assigns a) (Action.assigns b)

let check_roundtrip p =
  let printed = Program.to_string p in
  match Dsl.parse_program printed with
  | Error e ->
      Alcotest.failf "program %s does not re-parse: %s@.--@.%s"
        (Program.name p)
        (Format.asprintf "%a" Dsl.pp_error e)
        printed
  | Ok (env', p') ->
      if var_signature (Program.env p) <> var_signature env' then
        Alcotest.failf "%s: variable signature changed" (Program.name p);
      Alcotest.(check int)
        (Program.name p ^ ": action count")
        (Program.action_count p) (Program.action_count p');
      Array.iter2
        (fun a b ->
          if not (action_equal a b) then
            Alcotest.failf "%s: action %s changed:\n  %s\n  %s"
              (Program.name p) (Action.name a) (Action.to_string a)
              (Action.to_string b))
        (Program.actions p) (Program.actions p')

let test_roundtrip_protocols () =
  let tree = Topology.Tree.balanced ~arity:2 5 in
  let d = Protocols.Diffusing.make tree in
  check_roundtrip (Protocols.Diffusing.combined d);
  check_roundtrip (Protocols.Diffusing.separate d);
  check_roundtrip (Nonmask.Spec.program (Protocols.Diffusing.spec d));
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  check_roundtrip (Protocols.Token_ring.combined tr);
  check_roundtrip (Protocols.Token_ring.separate tr);
  let dr = Protocols.Dijkstra_ring.make ~nodes:5 ~k:6 in
  check_roundtrip (Protocols.Dijkstra_ring.program dr);
  let a = Protocols.Atomic_action.make tree in
  check_roundtrip (Protocols.Atomic_action.program a);
  let la = Protocols.Diffusing_lowatomic.make tree in
  check_roundtrip (Protocols.Diffusing_lowatomic.program la);
  let nr = Protocols.Naive_ring.make ~nodes:4 in
  check_roundtrip (Protocols.Naive_ring.program nr);
  List.iter
    (fun v -> check_roundtrip (Protocols.Xyz_demo.program (Protocols.Xyz_demo.make v)))
    [ Protocols.Xyz_demo.Good_tree; Protocols.Xyz_demo.Good_ordered;
      Protocols.Xyz_demo.Bad ]

let test_roundtrip_tricky_expressions () =
  let env, x, y = mk_env () in
  let exprs =
    Expr.
      [
        var x + var y * int 2;
        (var x + var y) * int 2;
        var x - (var y - int 1);
        neg (var x + int 1);
        Const (-4);
        min_ (var x) (max_ (var y) (int 0));
        ite (var x = var y) (var x mod int 2) (var y / int 2);
      ]
  in
  List.iter
    (fun e ->
      let printed = Expr.num_to_string e in
      let e' = Dsl.parse_num_exn env printed in
      if not (Expr.equal_num e e') then
        Alcotest.failf "roundtrip changed %s into %s" printed
          (Expr.num_to_string e'))
    exprs;
  let bexps =
    Expr.
      [
        var x = int 1 && var y = int 2 || var x = int 3;
        (var x = int 1 || var y = int 2) && var x = int 3;
        not_ (var x = int 1 && var y = int 2);
        var x = int 1 ==> (var y = int 2 ==> (var x = int 0));
        (var x = int 1 ==> (var y = int 2)) ==> (var x = int 0);
        var x = int 1 <=> (var y = int 2);
        tt && (ff || var x > int 0);
      ]
  in
  List.iter
    (fun b ->
      let printed = Expr.to_string b in
      let b' = Dsl.parse_bexp_exn env printed in
      if not (Expr.equal b b') then
        Alcotest.failf "roundtrip changed %s into %s" printed
          (Expr.to_string b'))
    bexps

let test_roundtrip_random_expressions () =
  (* Random ASTs through print-then-parse come back unchanged. *)
  let env, x, y = mk_env () in
  let rng = Prng.create 20260705 in
  let rec random_num depth =
    match if depth = 0 then 0 else 1 + Prng.int rng 8 with
    | 0 ->
        if Prng.bool rng then Expr.Const (Prng.int_in rng (-4) 4)
        else Expr.Var (if Prng.bool rng then x else y)
    | 1 -> Expr.Add (random_num (depth - 1), random_num (depth - 1))
    | 2 -> Expr.Sub (random_num (depth - 1), random_num (depth - 1))
    | 3 -> Expr.Mul (random_num (depth - 1), random_num (depth - 1))
    | 4 -> Expr.Div (random_num (depth - 1), random_num (depth - 1))
    | 5 -> Expr.Mod (random_num (depth - 1), random_num (depth - 1))
    | 6 -> Expr.Min (random_num (depth - 1), random_num (depth - 1))
    | 7 -> Expr.Neg (random_num (depth - 1))
    | _ -> Expr.Ite (random_bexp (depth - 1), random_num (depth - 1), random_num (depth - 1))
  and random_bexp depth =
    match if depth = 0 then Prng.int rng 2 else Prng.int rng 7 with
    | 0 -> Expr.True
    | 1 -> Expr.False
    | 2 -> Expr.And (random_bexp (depth - 1), random_bexp (depth - 1))
    | 3 -> Expr.Or (random_bexp (depth - 1), random_bexp (depth - 1))
    | 4 -> Expr.Not (random_bexp (depth - 1))
    | 5 -> Expr.Implies (random_bexp (depth - 1), random_bexp (depth - 1))
    | _ ->
        let cmp =
          match Prng.int rng 6 with
          | 0 -> Expr.Eq
          | 1 -> Expr.Ne
          | 2 -> Expr.Lt
          | 3 -> Expr.Le
          | 4 -> Expr.Gt
          | _ -> Expr.Ge
        in
        Expr.Cmp (cmp, random_num (depth - 1), random_num (depth - 1))
  in
  for _ = 1 to 300 do
    let e = random_num 3 in
    let e' = Dsl.parse_num_exn env (Expr.num_to_string e) in
    if not (Expr.equal_num e e') then
      Alcotest.failf "num roundtrip changed %s" (Expr.num_to_string e);
    let b = random_bexp 3 in
    let b' = Dsl.parse_bexp_exn env (Expr.to_string b) in
    if not (Expr.equal b b') then
      Alcotest.failf "bexp roundtrip changed %s" (Expr.to_string b)
  done

let test_parsed_program_runs () =
  (* a parsed program is a first-class citizen: certify and simulate it *)
  let src =
    {|
    program two-cell-agreement
    var x : 0..2
    var y : 0..2
    begin
      sync: ~x = y -> y := x
    end
    |}
  in
  let env, p = Dsl.parse_program_exn src in
  let invariant = Dsl.parse_bexp_exn env "x = y" in
  let engine = Explore.Engine.create env in
  match
    Explore.Convergence.check_unfair engine (Guarded.Compile.program p)
      ~from:Explore.Engine.All
      ~target:(Guarded.Compile.pred invariant)
  with
  | Ok { worst_case_steps = Some 1; _ } -> ()
  | Ok { worst_case_steps; _ } ->
      Alcotest.failf "expected worst case 1, got %s"
        (match worst_case_steps with Some w -> string_of_int w | None -> "-")
  | Error _ -> Alcotest.fail "should converge"

let suite =
  [
    Alcotest.test_case "parse numeric expressions" `Quick test_parse_num_basics;
    Alcotest.test_case "parse boolean expressions" `Quick test_parse_bexp_basics;
    Alcotest.test_case "parse actions" `Quick test_parse_action;
    Alcotest.test_case "parse programs" `Quick test_parse_program;
    Alcotest.test_case "comments and multi declarations" `Quick
      test_parse_comments_and_multi_decl;
    Alcotest.test_case "empty program" `Quick test_parse_empty_program;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error positions" `Quick test_error_position;
    Alcotest.test_case "roundtrip: all protocol programs" `Quick
      test_roundtrip_protocols;
    Alcotest.test_case "roundtrip: tricky expressions" `Quick
      test_roundtrip_tricky_expressions;
    Alcotest.test_case "roundtrip: random expressions" `Quick
      test_roundtrip_random_expressions;
    Alcotest.test_case "parsed programs are runnable" `Quick
      test_parsed_program_runs;
  ]
