(* Tests for the derived protocols: the paper's diffusing computation,
   token rings, x/y/z example, atomic actions, the low-atomicity
   refinement, and the non-stabilizing baseline. These encode the paper's
   claims as executable assertions on small instances. *)

module State = Guarded.State
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program
module Compile = Guarded.Compile
module Tree = Topology.Tree
module Space = Explore.Space
module Tsys = Explore.Tsys
module Convergence = Explore.Convergence
module Certify = Nonmask.Certify
module Diffusing = Protocols.Diffusing
module Token_ring = Protocols.Token_ring
module Dijkstra_ring = Protocols.Dijkstra_ring
module Xyz_demo = Protocols.Xyz_demo
module Atomic_action = Protocols.Atomic_action
module Diffusing_lowatomic = Protocols.Diffusing_lowatomic
module Naive_ring = Protocols.Naive_ring

let check_converges_exactly name program invariant engine =
  match
    Convergence.check_unfair engine (Compile.program program)
      ~from:Explore.Engine.All ~target:invariant
  with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "%s should converge: %s" name
        (Format.asprintf "%a"
           (Convergence.pp_failure (Program.env program))
           f)

(* --- Diffusing computation --- *)

let small_trees =
  [
    ("chain-2", Tree.chain 2);
    ("chain-4", Tree.chain 4);
    ("star-4", Tree.star 4);
    ("balanced-2-5", Tree.balanced ~arity:2 5);
  ]

let test_diffusing_certificates () =
  List.iter
    (fun (name, tree) ->
      let d = Diffusing.make tree in
      let engine = Explore.Engine.create (Diffusing.env d) in
      let cert = Diffusing.certificate ~engine d in
      if not (Certify.ok cert) then
        Alcotest.failf "%s: %s" name (Format.asprintf "%a" Certify.pp cert))
    small_trees

let test_diffusing_converges () =
  List.iter
    (fun (name, tree) ->
      let d = Diffusing.make tree in
      let engine = Explore.Engine.create (Diffusing.env d) in
      check_converges_exactly
        (name ^ " combined")
        (Diffusing.combined d)
        (fun s -> Diffusing.invariant d s)
        engine;
      check_converges_exactly
        (name ^ " separate")
        (Diffusing.separate d)
        (fun s -> Diffusing.invariant d s)
        engine)
    small_trees

let test_diffusing_invariant_at_start () =
  let d = Diffusing.make (Tree.chain 4) in
  let s = Diffusing.all_green d in
  Alcotest.(check bool) "all green in S" true (Diffusing.invariant d s);
  Alcotest.(check int) "no violations" 0 (Diffusing.violated d s)

let test_diffusing_combined_guard_equivalence () =
  (* The paper's combined action has a guard claimed equivalent to
     [~R.j \/ propagate-guard]; check the equivalence exhaustively. *)
  let tree = Tree.chain 3 in
  let d = Diffusing.make tree in
  let space = Space.create (Diffusing.env d) in
  List.iter
    (fun j ->
      let find p name =
        match Program.find_action p name with
        | Some a -> a
        | None -> Alcotest.failf "missing action %s" name
      in
      let combined =
        find (Diffusing.combined d) (Printf.sprintf "copy.%d" j)
      in
      let propagate =
        find (Diffusing.spec d |> Nonmask.Spec.program)
          (Printf.sprintf "propagate.%d" j)
      in
      let converge =
        find (Diffusing.separate d) (Printf.sprintf "converge.%d" j)
      in
      Space.iter space (fun _ s ->
          let lhs = Action.enabled combined s in
          let rhs = Action.enabled propagate s || Action.enabled converge s in
          if lhs <> rhs then
            Alcotest.failf "guard mismatch at %s"
              (State.to_string (Diffusing.env d) s)))
    (Tree.non_root_nodes tree)

let test_diffusing_cycle_repeats () =
  (* From all-green under a fair daemon the wave must complete: the root
     eventually returns to green with a flipped session bit. *)
  let tree = Tree.chain 3 in
  let d = Diffusing.make tree in
  let root = Tree.root tree in
  let init = Diffusing.all_green d in
  let sn0 = State.get init (Diffusing.session d root) in
  let cp = Compile.program (Diffusing.combined d) in
  let outcome =
    Sim.Runner.run
      ~daemon:(Sim.Daemon.round_robin ())
      ~init
      ~stop:(fun s ->
        State.get s (Diffusing.color d root) = Diffusing.green
        && State.get s (Diffusing.session d root) <> sn0)
      cp
  in
  Alcotest.(check bool) "wave completes" true (Sim.Runner.converged outcome);
  Alcotest.(check bool) "took steps" true (outcome.Sim.Runner.steps > 0)

let test_diffusing_recovers_from_scramble () =
  let tree = Tree.balanced ~arity:2 7 in
  let d = Diffusing.make tree in
  let cp = Compile.program (Diffusing.combined d) in
  let rng = Prng.create 77 in
  let fault = Sim.Fault.scramble (Diffusing.env d) in
  for _ = 1 to 50 do
    let init = Diffusing.all_green d in
    fault.Sim.Fault.inject rng init;
    let outcome =
      Sim.Runner.run
        ~daemon:(Sim.Daemon.random rng)
        ~init
        ~stop:(fun s -> Diffusing.invariant d s)
        cp
    in
    Alcotest.(check bool) "recovers" true (Sim.Runner.converged outcome)
  done

let test_diffusing_closure_means_invariant_stays () =
  (* run from a legitimate state; the invariant holds at every step *)
  let tree = Tree.chain 4 in
  let d = Diffusing.make tree in
  let cp = Compile.program (Diffusing.combined d) in
  let outcome =
    Sim.Runner.run ~record_trace:true ~max_steps:200
      ~daemon:(Sim.Daemon.random (Prng.create 3))
      ~init:(Diffusing.all_green d) ~stop:(fun _ -> false) cp
  in
  match outcome.Sim.Runner.trace with
  | None -> Alcotest.fail "trace"
  | Some t ->
      List.iter
        (fun s ->
          Alcotest.(check bool) "S closed along run" true
            (Diffusing.invariant d s))
        (Sim.Trace.states t)

let test_diffusing_variant_function () =
  let d = Diffusing.make (Tree.chain 3) in
  let engine = Explore.Engine.create (Diffusing.env d) in
  match Nonmask.Variant.of_cgraph (Diffusing.cgraph d) with
  | None -> Alcotest.fail "out-tree has ranks"
  | Some v -> (
      match
        Nonmask.Variant.check ~engine ~spec:(Diffusing.spec d)
          ~cgraph:(Diffusing.cgraph d) v
      with
      | Ok () -> ()
      | Error f ->
          Alcotest.failf "variant violated by %s" f.Nonmask.Variant.action)

(* --- Token ring (paper, bounded) --- *)

let test_token_ring_certificate () =
  let tr = Token_ring.make ~nodes:4 ~k:5 in
  let engine = Explore.Engine.create (Token_ring.env tr) in
  let cert = Token_ring.certificate ~engine tr in
  if not (Certify.ok cert) then
    Alcotest.failf "%s" (Format.asprintf "%a" Certify.pp cert);
  Alcotest.(check bool) "modulo noted" true
    (Astring_contains.contains cert.Certify.theorem "modulo")

let test_token_ring_strict_fails () =
  let tr = Token_ring.make ~nodes:4 ~k:5 in
  let engine = Explore.Engine.create (Token_ring.env tr) in
  let cert = Token_ring.certificate_strict ~engine tr in
  Alcotest.(check bool) "literal reading fails" false (Certify.ok cert)

let test_token_ring_converges () =
  List.iter
    (fun (nodes, k) ->
      let tr = Token_ring.make ~nodes ~k in
      let engine = Explore.Engine.create (Token_ring.env tr) in
      check_converges_exactly "combined" (Token_ring.combined tr)
        (fun s -> Token_ring.invariant tr s)
        engine;
      check_converges_exactly "separate" (Token_ring.separate tr)
        (fun s -> Token_ring.invariant tr s)
        engine)
    [ (3, 4); (4, 5); (5, 4) ]

let test_token_ring_exactly_one_privilege_in_s () =
  let tr = Token_ring.make ~nodes:5 ~k:5 in
  let space = Space.create (Token_ring.env tr) in
  Space.iter space (fun _ s ->
      if Token_ring.invariant tr s then
        Alcotest.(check int) "one privilege" 1
          (List.length (Token_ring.privileged tr s)))

let test_token_ring_all_zero_legitimate () =
  let tr = Token_ring.make ~nodes:4 ~k:3 in
  let s = Token_ring.all_zero tr in
  Alcotest.(check bool) "S" true (Token_ring.invariant tr s);
  Alcotest.(check (list int)) "bottom privileged" [ 0 ] (Token_ring.privileged tr s);
  Alcotest.(check int) "no violations" 0 (Token_ring.violated tr s)

(* --- Dijkstra (mod-K) ring --- *)

let test_dijkstra_converges_when_k_large () =
  List.iter
    (fun (nodes, k) ->
      let dr = Dijkstra_ring.make ~nodes ~k in
      let engine = Explore.Engine.create (Dijkstra_ring.env dr) in
      check_converges_exactly "dijkstra" (Dijkstra_ring.program dr)
        (fun s -> Dijkstra_ring.invariant dr s)
        engine)
    [ (3, 4); (4, 5); (4, 4) ]

let test_dijkstra_fails_when_k_too_small () =
  (* classical counterexample needs K <= N - 1 where N = ring size:
     nodes=4, k=2 livelocks under an adversarial schedule. *)
  let dr = Dijkstra_ring.make ~nodes:4 ~k:2 in
  let engine = Explore.Engine.create (Dijkstra_ring.env dr) in
  match
    Convergence.check_unfair engine
      (Compile.program (Dijkstra_ring.program dr))
      ~from:Explore.Engine.All
      ~target:(fun s -> Dijkstra_ring.invariant dr s)
  with
  | Error (Convergence.Livelock _) -> ()
  | Ok _ -> Alcotest.fail "k=2 on 4 nodes must not stabilize"
  | Error (Convergence.Deadlock _) -> Alcotest.fail "no deadlock expected"

let test_dijkstra_token_circulates () =
  let dr = Dijkstra_ring.make ~nodes:5 ~k:6 in
  let cp = Compile.program (Dijkstra_ring.program dr) in
  let init = Dijkstra_ring.all_zero dr in
  (* every node becomes privileged at some point within a bounded run *)
  let seen = Array.make 5 false in
  let state = ref init in
  let d = Sim.Daemon.round_robin () in
  for _ = 1 to 100 do
    List.iter (fun j -> seen.(j) <- true) (Dijkstra_ring.privileged dr !state);
    let outcome =
      Sim.Runner.run ~max_steps:1 ~daemon:d ~init:!state ~stop:(fun _ -> false) cp
    in
    state := outcome.Sim.Runner.final
  done;
  Alcotest.(check bool) "all privileged eventually" true
    (Array.for_all Fun.id seen)

let test_dijkstra_invariant_closed () =
  let dr = Dijkstra_ring.make ~nodes:4 ~k:5 in
  let engine = Explore.Engine.create (Dijkstra_ring.env dr) in
  let cp = Compile.program (Dijkstra_ring.program dr) in
  match
    Explore.Closure.program_closed engine cp ~pred:(fun s ->
        Dijkstra_ring.invariant dr s)
  with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "invariant not closed: %s"
        (Format.asprintf "%a"
           (Explore.Closure.pp_violation (Dijkstra_ring.env dr))
           v)

(* --- x/y/z demo --- *)

let test_xyz_good_tree () =
  let d = Xyz_demo.make Xyz_demo.Good_tree in
  let engine = Explore.Engine.create (Xyz_demo.env d) in
  Alcotest.(check bool) "thm1 valid" true
    (Certify.ok (Xyz_demo.certificate ~engine d));
  Alcotest.(check bool) "out-tree" true
    (Nonmask.Cgraph.shape (Xyz_demo.cgraph d) = Dgraph.Classify.Out_tree);
  check_converges_exactly "good-tree" (Xyz_demo.program d)
    (fun s -> Xyz_demo.invariant d s)
    engine

let test_xyz_good_ordered () =
  let d = Xyz_demo.make Xyz_demo.Good_ordered in
  let engine = Explore.Engine.create (Xyz_demo.env d) in
  Alcotest.(check bool) "thm2 valid" true
    (Certify.ok (Xyz_demo.certificate ~engine d));
  Alcotest.(check bool) "self-looping but not out-tree" true
    (Nonmask.Cgraph.shape (Xyz_demo.cgraph d) = Dgraph.Classify.Self_looping);
  check_converges_exactly "good-ordered" (Xyz_demo.program d)
    (fun s -> Xyz_demo.invariant d s)
    engine

let test_xyz_bad_livelocks () =
  let d = Xyz_demo.make Xyz_demo.Bad in
  let engine = Explore.Engine.create (Xyz_demo.env d) in
  Alcotest.(check bool) "certificate rejected" false
    (Certify.ok (Xyz_demo.certificate ~engine d));
  match
    Convergence.check_unfair engine (Compile.program (Xyz_demo.program d))
      ~from:Explore.Engine.All
      ~target:(fun s -> Xyz_demo.invariant d s)
  with
  | Error (Convergence.Livelock states) ->
      Alcotest.(check bool) "cycle of length >= 2" true (List.length states >= 2)
  | _ -> Alcotest.fail "the bad variant must livelock"

let test_xyz_bad_livelock_is_papers () =
  (* the paper's oscillation: x=y=z, bump x above z, pull it back *)
  let d = Xyz_demo.make Xyz_demo.Bad in
  let env = Xyz_demo.env d in
  let s =
    State.of_list env
      [ (Xyz_demo.x d, 1); (Xyz_demo.y d, 1); (Xyz_demo.z d, 1) ]
  in
  let cp = Compile.program (Xyz_demo.program d) in
  let outcome =
    Sim.Runner.run ~max_steps:100 ~daemon:Sim.Daemon.first_enabled ~init:s
      ~stop:(fun st -> Xyz_demo.invariant d st)
      cp
  in
  Alcotest.(check bool) "spins forever" true
    (outcome.Sim.Runner.reason = Sim.Runner.Budget_exhausted)

(* --- Atomic action --- *)

let test_atomic_certificates () =
  List.iter
    (fun (name, tree) ->
      let a = Atomic_action.make tree in
      let engine = Explore.Engine.create (Atomic_action.env a) in
      let cert = Atomic_action.certificate ~engine a in
      if not (Certify.ok cert) then
        Alcotest.failf "%s: %s" name (Format.asprintf "%a" Certify.pp cert))
    [ ("chain-3", Tree.chain 3); ("star-4", Tree.star 4) ]

let test_atomic_converges () =
  let a = Atomic_action.make (Tree.balanced ~arity:2 5) in
  let engine = Explore.Engine.create (Atomic_action.env a) in
  check_converges_exactly "atomic" (Atomic_action.program a)
    (fun s -> Atomic_action.invariant a s)
    engine

let test_atomic_commit_executes_all () =
  let tree = Tree.balanced ~arity:2 7 in
  let a = Atomic_action.make tree in
  let cp = Compile.program (Atomic_action.program a) in
  let init = Atomic_action.initial a ~decision:Atomic_action.commit in
  let outcome =
    Sim.Runner.run
      ~daemon:(Sim.Daemon.round_robin ())
      ~init
      ~stop:(fun s -> Atomic_action.all_done a s)
      cp
  in
  Alcotest.(check bool) "all executed" true (Sim.Runner.converged outcome)

let test_atomic_abort_rolls_back () =
  (* corrupt a few op flags under an abort decision: they must roll back *)
  let tree = Tree.star 5 in
  let a = Atomic_action.make tree in
  let cp = Compile.program (Atomic_action.program a) in
  let rng = Prng.create 17 in
  for _ = 1 to 30 do
    let init = Atomic_action.initial a ~decision:Atomic_action.abort in
    (Sim.Fault.corrupt (Atomic_action.env a) ~k:3).Sim.Fault.inject rng init;
    (* force the root decision back to abort: the root's decision is the
       protocol's input, not its state *)
    State.set init
      (Atomic_action.decision a (Tree.root tree))
      Atomic_action.abort;
    let outcome =
      Sim.Runner.run
        ~daemon:(Sim.Daemon.random rng)
        ~init
        ~stop:(fun s ->
          Atomic_action.invariant a s && Atomic_action.none_done a s)
        cp
    in
    Alcotest.(check bool) "rollback reached" true (Sim.Runner.converged outcome)
  done

(* --- Low-atomicity refinement --- *)

let test_lowatomic_converges () =
  List.iter
    (fun (name, tree) ->
      let d = Diffusing_lowatomic.make tree in
      let engine = Explore.Engine.create (Diffusing_lowatomic.env d) in
      check_converges_exactly name
        (Diffusing_lowatomic.program d)
        (fun s -> Diffusing_lowatomic.invariant d s)
        engine)
    [ ("chain-3", Tree.chain 3); ("star-4", Tree.star 4) ]

let test_lowatomic_reduces_atomicity () =
  let tree = Tree.star 6 in
  let low = Diffusing_lowatomic.make tree in
  let high = Diffusing.make tree in
  Alcotest.(check int) "refined atomicity" 2
    (Diffusing_lowatomic.max_atomicity (Diffusing_lowatomic.program low));
  Alcotest.(check int) "original reflects over all children" 6
    (Diffusing_lowatomic.max_atomicity (Diffusing.combined high))

let test_lowatomic_wave_completes () =
  let tree = Tree.balanced ~arity:2 5 in
  let d = Diffusing_lowatomic.make tree in
  let root = Tree.root tree in
  let init = Diffusing_lowatomic.all_green d in
  let sn0 = State.get init (Diffusing_lowatomic.session d root) in
  let cp = Compile.program (Diffusing_lowatomic.program d) in
  let outcome =
    Sim.Runner.run
      ~daemon:(Sim.Daemon.round_robin ())
      ~init
      ~stop:(fun s ->
        State.get s (Diffusing_lowatomic.color d root) = Protocols.Diffusing.green
        && State.get s (Diffusing_lowatomic.session d root) <> sn0)
      cp
  in
  Alcotest.(check bool) "wave completes" true (Sim.Runner.converged outcome)

(* --- Naive ring baseline --- *)

let test_naive_ring_not_stabilizing () =
  let nr = Naive_ring.make ~nodes:4 in
  let engine = Explore.Engine.create (Naive_ring.env nr) in
  (match
     Convergence.check_unfair engine (Compile.program (Naive_ring.program nr))
       ~from:Explore.Engine.All
       ~target:(fun s -> Naive_ring.invariant nr s)
   with
  | Ok _ -> Alcotest.fail "naive ring must not stabilize"
  | Error _ -> ());
  (* the zero-token state is a deadlock outside S *)
  let zero = State.make (Naive_ring.env nr) in
  Alcotest.(check int) "no tokens" 0 (Naive_ring.token_count nr zero);
  Alcotest.(check bool) "terminal" true
    (Program.is_terminal (Naive_ring.program nr) zero)

let test_naive_ring_works_without_faults () =
  let nr = Naive_ring.make ~nodes:4 in
  let cp = Compile.program (Naive_ring.program nr) in
  let outcome =
    Sim.Runner.run ~record_trace:true ~max_steps:50
      ~daemon:Sim.Daemon.first_enabled ~init:(Naive_ring.one_token nr)
      ~stop:(fun _ -> false) cp
  in
  match outcome.Sim.Runner.trace with
  | None -> Alcotest.fail "trace"
  | Some t ->
      List.iter
        (fun s ->
          Alcotest.(check int) "token preserved" 1 (Naive_ring.token_count nr s))
        (Sim.Trace.states t)

let test_naive_ring_multi_token_stays_illegitimate_adversarially () =
  (* a greedy daemon that maximizes token count keeps >= 2 tokens apart *)
  let nr = Naive_ring.make ~nodes:6 in
  let cp = Compile.program (Naive_ring.program nr) in
  let env = Naive_ring.env nr in
  let init = State.make env in
  State.set init (Naive_ring.token nr 0) 1;
  State.set init (Naive_ring.token nr 3) 1;
  let d = Sim.Daemon.greedy ~name:"keep-tokens" (fun s -> Naive_ring.token_count nr s) in
  let outcome =
    Sim.Runner.run ~max_steps:100 ~daemon:d ~init
      ~stop:(fun s -> Naive_ring.invariant nr s)
      cp
  in
  Alcotest.(check bool) "never legitimate" true
    (outcome.Sim.Runner.reason = Sim.Runner.Budget_exhausted)

let suite =
  [
    Alcotest.test_case "diffusing certificates (Thm 1)" `Quick
      test_diffusing_certificates;
    Alcotest.test_case "diffusing converges exactly" `Slow
      test_diffusing_converges;
    Alcotest.test_case "diffusing all-green in S" `Quick
      test_diffusing_invariant_at_start;
    Alcotest.test_case "diffusing combined guard equivalence" `Quick
      test_diffusing_combined_guard_equivalence;
    Alcotest.test_case "diffusing wave completes" `Quick
      test_diffusing_cycle_repeats;
    Alcotest.test_case "diffusing recovers from scramble" `Quick
      test_diffusing_recovers_from_scramble;
    Alcotest.test_case "diffusing invariant closed along runs" `Quick
      test_diffusing_closure_means_invariant_stays;
    Alcotest.test_case "diffusing variant function" `Quick
      test_diffusing_variant_function;
    Alcotest.test_case "token ring certificate (Thm 3 modulo)" `Quick
      test_token_ring_certificate;
    Alcotest.test_case "token ring literal Thm 3 fails" `Quick
      test_token_ring_strict_fails;
    Alcotest.test_case "token ring converges exactly" `Slow
      test_token_ring_converges;
    Alcotest.test_case "token ring one privilege in S" `Quick
      test_token_ring_exactly_one_privilege_in_s;
    Alcotest.test_case "token ring all-zero legitimate" `Quick
      test_token_ring_all_zero_legitimate;
    Alcotest.test_case "dijkstra converges (k >= n)" `Slow
      test_dijkstra_converges_when_k_large;
    Alcotest.test_case "dijkstra fails for small k" `Quick
      test_dijkstra_fails_when_k_too_small;
    Alcotest.test_case "dijkstra token circulates" `Quick
      test_dijkstra_token_circulates;
    Alcotest.test_case "dijkstra invariant closed" `Quick
      test_dijkstra_invariant_closed;
    Alcotest.test_case "xyz good-tree (Sec 4)" `Quick test_xyz_good_tree;
    Alcotest.test_case "xyz good-ordered (Sec 6)" `Quick test_xyz_good_ordered;
    Alcotest.test_case "xyz bad livelocks" `Quick test_xyz_bad_livelocks;
    Alcotest.test_case "xyz bad oscillation" `Quick test_xyz_bad_livelock_is_papers;
    Alcotest.test_case "atomic certificates (Thm 1)" `Quick
      test_atomic_certificates;
    Alcotest.test_case "atomic converges exactly" `Slow test_atomic_converges;
    Alcotest.test_case "atomic commit executes all" `Quick
      test_atomic_commit_executes_all;
    Alcotest.test_case "atomic abort rolls back" `Quick
      test_atomic_abort_rolls_back;
    Alcotest.test_case "low-atomicity converges" `Slow test_lowatomic_converges;
    Alcotest.test_case "low-atomicity reduces atomicity" `Quick
      test_lowatomic_reduces_atomicity;
    Alcotest.test_case "low-atomicity wave completes" `Quick
      test_lowatomic_wave_completes;
    Alcotest.test_case "naive ring not stabilizing" `Quick
      test_naive_ring_not_stabilizing;
    Alcotest.test_case "naive ring fault-free behaviour" `Quick
      test_naive_ring_works_without_faults;
    Alcotest.test_case "naive ring adversarial multi-token" `Quick
      test_naive_ring_multi_token_stays_illegitimate_adversarially;
  ]
