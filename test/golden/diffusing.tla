---- MODULE diffusing ----
EXTENDS Integers

VARIABLES c_0, c_1, c_2, c_3, c_4, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6

vars == <<c_0, c_1, c_2, c_3, c_4, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

Min(a, b) == IF a <= b THEN a ELSE b
Max(a, b) == IF a >= b THEN a ELSE b

TypeOK ==
  /\ c_0 \in 0..1  \* color: 0=green, 1=red
  /\ c_1 \in 0..1  \* color: 0=green, 1=red
  /\ c_2 \in 0..1  \* color: 0=green, 1=red
  /\ c_3 \in 0..1  \* color: 0=green, 1=red
  /\ c_4 \in 0..1  \* color: 0=green, 1=red
  /\ c_5 \in 0..1  \* color: 0=green, 1=red
  /\ c_6 \in 0..1  \* color: 0=green, 1=red
  /\ sn_0 \in 0..1
  /\ sn_1 \in 0..1
  /\ sn_2 \in 0..1
  /\ sn_3 \in 0..1
  /\ sn_4 \in 0..1
  /\ sn_5 \in 0..1
  /\ sn_6 \in 0..1

Init ==
  /\ c_0 = 0
  /\ c_1 = 0
  /\ c_2 = 0
  /\ c_3 = 0
  /\ c_4 = 0
  /\ c_5 = 0
  /\ c_6 = 0
  /\ sn_0 = 0
  /\ sn_1 = 0
  /\ sn_2 = 0
  /\ sn_3 = 0
  /\ sn_4 = 0
  /\ sn_5 = 0
  /\ sn_6 = 0

initiate ==
  /\ c_0 = 0
  /\ c_0' = 1
  /\ sn_0' = Max(Min(1 - sn_0, 1), 0)
  /\ UNCHANGED <<c_1, c_2, c_3, c_4, c_5, c_6, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

copy_1 ==
  /\ sn_1 /= sn_0 \/ (c_1 = 1 /\ c_0 = 0)
  /\ c_1' = Max(Min(c_0, 1), 0)
  /\ sn_1' = Max(Min(sn_0, 1), 0)
  /\ UNCHANGED <<c_0, c_2, c_3, c_4, c_5, c_6, sn_0, sn_2, sn_3, sn_4, sn_5, sn_6>>

copy_2 ==
  /\ sn_2 /= sn_0 \/ (c_2 = 1 /\ c_0 = 0)
  /\ c_2' = Max(Min(c_0, 1), 0)
  /\ sn_2' = Max(Min(sn_0, 1), 0)
  /\ UNCHANGED <<c_0, c_1, c_3, c_4, c_5, c_6, sn_0, sn_1, sn_3, sn_4, sn_5, sn_6>>

copy_3 ==
  /\ sn_3 /= sn_1 \/ (c_3 = 1 /\ c_1 = 0)
  /\ c_3' = Max(Min(c_1, 1), 0)
  /\ sn_3' = Max(Min(sn_1, 1), 0)
  /\ UNCHANGED <<c_0, c_1, c_2, c_4, c_5, c_6, sn_0, sn_1, sn_2, sn_4, sn_5, sn_6>>

copy_4 ==
  /\ sn_4 /= sn_1 \/ (c_4 = 1 /\ c_1 = 0)
  /\ c_4' = Max(Min(c_1, 1), 0)
  /\ sn_4' = Max(Min(sn_1, 1), 0)
  /\ UNCHANGED <<c_0, c_1, c_2, c_3, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_5, sn_6>>

copy_5 ==
  /\ sn_5 /= sn_2 \/ (c_5 = 1 /\ c_2 = 0)
  /\ c_5' = Max(Min(c_2, 1), 0)
  /\ sn_5' = Max(Min(sn_2, 1), 0)
  /\ UNCHANGED <<c_0, c_1, c_2, c_3, c_4, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_6>>

copy_6 ==
  /\ sn_6 /= sn_2 \/ (c_6 = 1 /\ c_2 = 0)
  /\ c_6' = Max(Min(c_2, 1), 0)
  /\ sn_6' = Max(Min(sn_2, 1), 0)
  /\ UNCHANGED <<c_0, c_1, c_2, c_3, c_4, c_5, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5>>

reflect_0 ==
  /\ c_0 = 1 /\ ((c_1 = 0 /\ sn_0 = sn_1) /\ (c_2 = 0 /\ sn_0 = sn_2))
  /\ c_0' = 0
  /\ UNCHANGED <<c_1, c_2, c_3, c_4, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

reflect_1 ==
  /\ c_1 = 1 /\ ((c_3 = 0 /\ sn_1 = sn_3) /\ (c_4 = 0 /\ sn_1 = sn_4))
  /\ c_1' = 0
  /\ UNCHANGED <<c_0, c_2, c_3, c_4, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

reflect_2 ==
  /\ c_2 = 1 /\ ((c_5 = 0 /\ sn_2 = sn_5) /\ (c_6 = 0 /\ sn_2 = sn_6))
  /\ c_2' = 0
  /\ UNCHANGED <<c_0, c_1, c_3, c_4, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

reflect_3 ==
  /\ c_3 = 1 /\ TRUE
  /\ c_3' = 0
  /\ UNCHANGED <<c_0, c_1, c_2, c_4, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

reflect_4 ==
  /\ c_4 = 1 /\ TRUE
  /\ c_4' = 0
  /\ UNCHANGED <<c_0, c_1, c_2, c_3, c_5, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

reflect_5 ==
  /\ c_5 = 1 /\ TRUE
  /\ c_5' = 0
  /\ UNCHANGED <<c_0, c_1, c_2, c_3, c_4, c_6, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

reflect_6 ==
  /\ c_6 = 1 /\ TRUE
  /\ c_6' = 0
  /\ UNCHANGED <<c_0, c_1, c_2, c_3, c_4, c_5, sn_0, sn_1, sn_2, sn_3, sn_4, sn_5, sn_6>>

Next == initiate \/ copy_1 \/ copy_2 \/ copy_3 \/ copy_4 \/ copy_5 \/ copy_6 \/ reflect_0 \/ reflect_1 \/ reflect_2 \/ reflect_3 \/ reflect_4 \/ reflect_5 \/ reflect_6

Invariant ==
  ((((((c_1 = c_0 /\ sn_1 = sn_0) \/ (c_1 = 0 /\ c_0 = 1)) /\ ((c_2 = c_0 /\ sn_2 = sn_0) \/ (c_2 = 0 /\ c_0 = 1))) /\ ((c_3 = c_1 /\ sn_3 = sn_1) \/ (c_3 = 0 /\ c_1 = 1))) /\ ((c_4 = c_1 /\ sn_4 = sn_1) \/ (c_4 = 0 /\ c_1 = 1))) /\ ((c_5 = c_2 /\ sn_5 = sn_2) \/ (c_5 = 0 /\ c_2 = 1))) /\ ((c_6 = c_2 /\ sn_6 = sn_2) \/ (c_6 = 0 /\ c_2 = 1))

Spec == Init /\ [][Next]_vars

====
