---- MODULE token_ring ----
EXTENDS Integers

VARIABLES x_0, x_1, x_2, x_3, x_4

vars == <<x_0, x_1, x_2, x_3, x_4>>

Min(a, b) == IF a <= b THEN a ELSE b
Max(a, b) == IF a >= b THEN a ELSE b

TypeOK ==
  /\ x_0 \in 0..5
  /\ x_1 \in 0..5
  /\ x_2 \in 0..5
  /\ x_3 \in 0..5
  /\ x_4 \in 0..5

Init ==
  /\ x_0 = 0
  /\ x_1 = 0
  /\ x_2 = 0
  /\ x_3 = 0
  /\ x_4 = 0

increment ==
  /\ x_0 = x_4 /\ x_0 < 5
  /\ x_0' = Max(Min(x_0 + 1, 5), 0)
  /\ UNCHANGED <<x_1, x_2, x_3, x_4>>

copy_0 ==
  /\ x_0 /= x_1
  /\ x_1' = Max(Min(x_0, 5), 0)
  /\ UNCHANGED <<x_0, x_2, x_3, x_4>>

copy_1 ==
  /\ x_1 /= x_2
  /\ x_2' = Max(Min(x_1, 5), 0)
  /\ UNCHANGED <<x_0, x_1, x_3, x_4>>

copy_2 ==
  /\ x_2 /= x_3
  /\ x_3' = Max(Min(x_2, 5), 0)
  /\ UNCHANGED <<x_0, x_1, x_2, x_4>>

copy_3 ==
  /\ x_3 /= x_4
  /\ x_4' = Max(Min(x_3, 5), 0)
  /\ UNCHANGED <<x_0, x_1, x_2, x_3>>

Next == increment \/ copy_0 \/ copy_1 \/ copy_2 \/ copy_3

Invariant ==
  (((x_0 >= x_1 /\ x_1 >= x_2) /\ x_2 >= x_3) /\ x_3 >= x_4) /\ (x_0 = x_4 \/ x_0 = (x_4 + 1))

Spec == Init /\ [][Next]_vars

====
