---- MODULE xyz_good_tree ----
EXTENDS Integers

VARIABLES x, y, z

vars == <<x, y, z>>

Min(a, b) == IF a <= b THEN a ELSE b
Max(a, b) == IF a >= b THEN a ELSE b

TypeOK ==
  /\ x \in 0..3
  /\ y \in 0..4
  /\ z \in 0..3

Init ==
  /\ x = 0
  /\ y = 1
  /\ z = 1

bump_y ==
  /\ x = y
  /\ y' = Max(Min(y + 1, 4), 0)
  /\ UNCHANGED <<x, z>>

raise_z ==
  /\ x > z
  /\ z' = Max(Min(x, 3), 0)
  /\ UNCHANGED <<x, y>>

Next == bump_y \/ raise_z

Invariant ==
  x /= y /\ x <= z

Spec == Init /\ [][Next]_vars

====
