(* Tests for the flat state-storage layer: the bit-layout codec
   (dense / packed / wide encodings with typed overflow), the
   open-addressing tables (Flattbl / Flatset) against a boxed Hashtbl
   reference, the chunked frontier queue, Shardmap growth under
   multi-domain contention, and the engine-level guarantees — probed,
   direct, and packed-keyed searches all produce the same regions, at
   the same overflow points. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Codec = Explore.Codec
module Space = Explore.Space
module Engine = Explore.Engine
module Faultspan = Explore.Faultspan
module Flatset = Explore.Flatset
module Flatqueue = Explore.Flatqueue
module Flattbl = Par.Flattbl

let env_of_sizes sizes =
  let env = Guarded.Env.create () in
  List.iteri
    (fun i n ->
      ignore
        (Guarded.Env.fresh env
           (Printf.sprintf "v%d" i)
           (Guarded.Domain.range 0 (n - 1))))
    sizes;
  env

let random_state rng env =
  let s = State.make env in
  Array.iter
    (fun v ->
      let d = Guarded.Var.domain v in
      let lo =
        match d with
        | Guarded.Domain.Range { lo; _ } -> lo
        | Guarded.Domain.Bool | Guarded.Domain.Enum _ -> 0
      in
      State.set s v (lo + Prng.int rng (Guarded.Domain.size d)))
    (Guarded.Env.vars env);
  s

(* --- Codec --- *)

let test_codec_roundtrip_fuzz () =
  (* every state of 200 generated models roundtrips through all three
     layouts, and the packed/wide decodes agree with the dense one *)
  for seed = 1 to 200 do
    let m = Gen.Generate.model (Prng.create seed) in
    let env = m.Gen.Spec.env in
    let c = Codec.of_env env in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d dense_ok" seed)
      true (Codec.dense_ok c);
    let space = Space.create_unbounded env in
    let buf = State.make env in
    Space.iter space (fun id s ->
        if Codec.encode_dense c s <> id then
          Alcotest.failf "seed %d: dense encode mismatch at id %d" seed id;
        let p = Codec.encode_packed c s in
        Codec.decode_packed_into c p buf;
        if not (State.equal s buf) then
          Alcotest.failf "seed %d: packed roundtrip failed at id %d" seed id;
        let w = Codec.encode_wide c s in
        Codec.decode_wide_into c w buf;
        if not (State.equal s buf) then
          Alcotest.failf "seed %d: wide roundtrip failed at id %d" seed id;
        Codec.decode_dense_into c id buf;
        if not (State.equal s buf) then
          Alcotest.failf "seed %d: dense decode mismatch at id %d" seed id)
  done

let test_codec_packed_beyond_dense () =
  (* 61 booleans: 2^61 states — over the 2^60 dense cap, but the packed
     layout still fits one word and roundtrips *)
  let env = env_of_sizes (List.init 61 (fun _ -> 2)) in
  let c = Codec.of_env env in
  Alcotest.(check bool) "dense overflows" false (Codec.dense_ok c);
  Alcotest.(check bool) "packed fits" true (Codec.packed_ok c);
  Alcotest.(check int) "packed bits" 61 (Codec.packed_bits c);
  (match Codec.require_dense c with
  | exception Codec.Overflow { layout; _ } ->
      Alcotest.(check string) "typed overflow names the layout" "dense" layout
  | () -> Alcotest.fail "require_dense must raise on 2^61 states");
  let rng = Prng.create 11 in
  let buf = State.make env in
  for _ = 1 to 100 do
    let s = random_state rng env in
    Codec.decode_packed_into c (Codec.encode_packed c s) buf;
    Alcotest.(check bool) "packed roundtrip" true (State.equal s buf)
  done

let test_codec_wide_beyond_packed () =
  (* ten base-100 variables: 70 packed bits — over one word, but the
     two-word layout fits and roundtrips *)
  let env = env_of_sizes (List.init 10 (fun _ -> 100)) in
  let c = Codec.of_env env in
  Alcotest.(check bool) "packed overflows" false (Codec.packed_ok c);
  Alcotest.(check bool) "wide fits" true (Codec.wide_ok c);
  (match Codec.require_packed c with
  | exception Codec.Overflow { layout; bits; _ } ->
      Alcotest.(check string) "layout" "packed" layout;
      Alcotest.(check int) "bits carried" 70 bits
  | () -> Alcotest.fail "require_packed must raise at 70 bits");
  let rng = Prng.create 12 in
  let buf = State.make env in
  for _ = 1 to 100 do
    let s = random_state rng env in
    Codec.decode_wide_into c (Codec.encode_wide c s) buf;
    Alcotest.(check bool) "wide roundtrip" true (State.equal s buf)
  done

let test_codec_wide_overflow () =
  (* 21 base-64 variables: 126 packed bits — not even two words hold it *)
  let env = env_of_sizes (List.init 21 (fun _ -> 64)) in
  let c = Codec.of_env env in
  Alcotest.(check bool) "wide overflows" false (Codec.wide_ok c);
  (match Codec.encode_wide c (State.make env) with
  | exception Codec.Overflow { layout; _ } ->
      Alcotest.(check string) "layout" "wide" layout
  | _ -> Alcotest.fail "encode_wide must raise past 124 bits")

let test_codec_single_value_domains () =
  (* zero-bit fields (single-value domains) must not break any layout *)
  let env = Guarded.Env.create () in
  ignore (Guarded.Env.fresh env "a" (Guarded.Domain.range 0 2));
  ignore (Guarded.Env.fresh env "pinned" (Guarded.Domain.range 5 5));
  ignore (Guarded.Env.fresh env "b" (Guarded.Domain.range 0 6));
  let c = Codec.of_env env in
  let space = Space.create_unbounded env in
  Alcotest.(check int) "size" 21 (Space.size space);
  let buf = State.make env in
  Space.iter space (fun id s ->
      Alcotest.(check int) "dense" id (Codec.encode_dense c s);
      Codec.decode_packed_into c (Codec.encode_packed c s) buf;
      Alcotest.(check bool) "packed" true (State.equal s buf))

let test_codec_out_of_domain () =
  let env = env_of_sizes [ 3; 4 ] in
  let c = Codec.of_env env in
  let s = State.make env in
  State.set_index s 0 7;
  Alcotest.(check bool) "encode rejects out-of-domain" true
    (match Codec.encode_packed c s with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Flattbl --- *)

let test_flattbl_basics () =
  let t = Flattbl.create () in
  Alcotest.(check int) "initial capacity" 16 (Flattbl.capacity t);
  for i = 0 to 999 do
    Flattbl.add t (i * 7) (i + 1000)
  done;
  Alcotest.(check int) "length" 1000 (Flattbl.length t);
  Alcotest.(check bool) "mem" true (Flattbl.mem t 7);
  Alcotest.(check bool) "not mem" false (Flattbl.mem t 8);
  Alcotest.(check int) "find_def hit" 1003 (Flattbl.find_def t 21 (-9));
  Alcotest.(check int) "find_def miss" (-9) (Flattbl.find_def t 22 (-9));
  Alcotest.(check (option int)) "find_opt" (Some 1000) (Flattbl.find_opt t 0);
  Flattbl.add t 21 77;
  Alcotest.(check int) "replace keeps length" 1000 (Flattbl.length t);
  Alcotest.(check int) "replace value" 77 (Flattbl.find_def t 21 0);
  (* capacity is a power of two respecting the 3/4 load cap *)
  let cap = Flattbl.capacity t in
  Alcotest.(check bool) "pow2 capacity" true (cap land (cap - 1) = 0);
  Alcotest.(check bool) "load under 3/4" true (4 * 1000 <= 3 * cap);
  Alcotest.(check bool) "negative key rejected" true
    (match Flattbl.add t (-1) 0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_flattbl_growth_boundary () =
  (* grow fires when used+1 crosses 3/4 of capacity: from 16 slots that
     is the 12th insert; check each boundary up to 4 doublings *)
  let t = Flattbl.create ~capacity:16 () in
  let last_cap = ref (Flattbl.capacity t) in
  let grow_points = ref [] in
  for i = 0 to 199 do
    Flattbl.add t i i;
    let cap = Flattbl.capacity t in
    if cap <> !last_cap then begin
      grow_points := (i + 1, cap) :: !grow_points;
      last_cap := cap
    end
  done;
  List.iter
    (fun (n, cap) ->
      (* the table doubled exactly when the next insert would have pushed
         the old capacity over 3/4 load *)
      Alcotest.(check bool)
        (Printf.sprintf "doubling to %d at count %d" cap n)
        true
        (4 * (n + 1) > 3 * (cap / 2) && 4 * n <= 3 * cap))
    !grow_points;
  Alcotest.(check bool) "grew at least 4 times" true
    (List.length !grow_points >= 4);
  for i = 0 to 199 do
    if Flattbl.find_def t i (-1) <> i then
      Alcotest.failf "key %d lost across growth" i
  done

let test_flattbl_tombstones () =
  let t = Flattbl.create ~capacity:16 () in
  for i = 0 to 499 do
    Flattbl.add t i (2 * i)
  done;
  for i = 0 to 499 do
    if i mod 2 = 0 then Flattbl.remove t i
  done;
  Alcotest.(check int) "length after removes" 250 (Flattbl.length t);
  for i = 0 to 499 do
    Alcotest.(check bool)
      (Printf.sprintf "mem %d" i)
      (i mod 2 = 1) (Flattbl.mem t i)
  done;
  (* probe chains must still find keys past tombstones *)
  Alcotest.(check int) "find through tombstones" 998 (Flattbl.find_def t 499 0);
  (* removing an absent key is a no-op *)
  Flattbl.remove t 10_000;
  Alcotest.(check int) "remove miss no-op" 250 (Flattbl.length t);
  (* churn: add/remove cycles trigger compacting rehashes, not unbounded
     doubling *)
  for round = 0 to 9 do
    for i = 0 to 499 do
      Flattbl.add t (1000 + i) round
    done;
    for i = 0 to 499 do
      Flattbl.remove t (1000 + i)
    done
  done;
  Alcotest.(check int) "churn leaves count intact" 250 (Flattbl.length t);
  Alcotest.(check bool) "churn capacity stays bounded" true
    (Flattbl.capacity t <= 4096);
  Alcotest.(check bool) "max_probe sane" true
    (Flattbl.max_probe t < Flattbl.capacity t)

let test_flattbl_vs_hashtbl () =
  (* randomized add/remove/replace agreement against the boxed reference *)
  let rng = Prng.create 99 in
  let t = Flattbl.create ~capacity:4 () in
  let h : (int, int) Hashtbl.t = Hashtbl.create 16 in
  for _ = 1 to 20_000 do
    let key = Prng.int rng 700 in
    match Prng.int rng 3 with
    | 0 | 1 ->
        let v = Prng.int rng 1000 - 500 in
        Flattbl.add t key v;
        Hashtbl.replace h key v
    | _ ->
        Flattbl.remove t key;
        Hashtbl.remove h key
  done;
  Alcotest.(check int) "length agrees" (Hashtbl.length h) (Flattbl.length t);
  for key = 0 to 699 do
    let expect = Hashtbl.find_opt h key in
    if Flattbl.find_opt t key <> expect then
      Alcotest.failf "binding for %d disagrees with Hashtbl" key
  done;
  let seen = ref 0 in
  Flattbl.iter t (fun k v ->
      incr seen;
      if Hashtbl.find_opt h k <> Some v then
        Alcotest.failf "iter visited stale binding %d" k);
  Alcotest.(check int) "iter visits each binding once" (Hashtbl.length h) !seen

(* --- Flatset --- *)

let test_flatset_direct () =
  let s = Flatset.direct ~size:100 in
  Alcotest.(check bool) "kind" true (Flatset.kind s = `Direct);
  Flatset.add s 0 (-1);
  (* -1 is the engines' non-member marker: it must be storable *)
  Flatset.add s 99 41;
  Alcotest.(check int) "stored -1" (-1) (Flatset.find_def s 0 7);
  Alcotest.(check bool) "mem" true (Flatset.mem s 99);
  Alcotest.(check int) "length" 2 (Flatset.length s);
  Alcotest.(check int) "miss" 7 (Flatset.find_def s 50 7);
  Alcotest.(check int) "out of range miss" 7 (Flatset.find_def s 1000 7);
  Alcotest.(check bool) "out of range add rejected" true
    (match Flatset.add s 100 0 with
    | exception Invalid_argument _ -> true
    | () -> false);
  Flatset.remove s 99;
  Alcotest.(check int) "remove" 1 (Flatset.length s);
  Alcotest.(check int) "bytes = 4/slot" 400 (Flatset.bytes s)

let test_flatset_direct_vs_probed () =
  let d = Flatset.direct ~size:2048 in
  let p = Flatset.probed () in
  let rng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let key = Prng.int rng 2048 in
    if Prng.int rng 3 = 0 then begin
      Flatset.remove d key;
      Flatset.remove p key
    end
    else begin
      let v = Prng.int rng 100 in
      Flatset.add d key v;
      Flatset.add p key v
    end
  done;
  Alcotest.(check int) "lengths agree" (Flatset.length d) (Flatset.length p);
  for key = 0 to 2047 do
    if Flatset.find_def d key min_int <> Flatset.find_def p key min_int then
      Alcotest.failf "direct and probed disagree at %d" key
  done

(* --- Flatqueue --- *)

let test_flatqueue_fifo () =
  let q = Flatqueue.create ~chunk:8 () in
  Alcotest.(check bool) "starts empty" true (Flatqueue.is_empty q);
  (* strict FIFO across many chunk boundaries, with interleaved pops *)
  let next_push = ref 0 and next_pop = ref 0 in
  let rng = Prng.create 3 in
  for _ = 1 to 5000 do
    if !next_push = !next_pop || Prng.int rng 2 = 0 then begin
      Flatqueue.push q !next_push;
      incr next_push
    end
    else begin
      Alcotest.(check int) "fifo order" !next_pop (Flatqueue.pop q);
      incr next_pop
    end;
    if Flatqueue.length q <> !next_push - !next_pop then
      Alcotest.failf "length drifted at %d/%d" !next_push !next_pop
  done;
  while not (Flatqueue.is_empty q) do
    Alcotest.(check int) "drain order" !next_pop (Flatqueue.pop q);
    incr next_pop
  done;
  Alcotest.(check int) "all popped" !next_push !next_pop;
  Alcotest.(check bool) "pop on empty raises" true
    (match Flatqueue.pop q with
    | exception Flatqueue.Empty -> true
    | _ -> false);
  Alcotest.(check bool) "peak covers backlog" true
    (Flatqueue.peak_bytes q >= Flatqueue.bytes q)

let test_flatqueue_transfer_clear () =
  let src = Flatqueue.create ~chunk:4 () in
  let dst = Flatqueue.create ~chunk:4 () in
  for i = 0 to 99 do
    Flatqueue.push src i
  done;
  Flatqueue.transfer src dst;
  Alcotest.(check int) "src emptied" 0 (Flatqueue.length src);
  Alcotest.(check int) "dst took all" 100 (Flatqueue.length dst);
  (* transfer into a non-empty queue appends behind existing elements *)
  for i = 100 to 109 do
    Flatqueue.push src i
  done;
  Flatqueue.transfer src dst;
  for i = 0 to 109 do
    Alcotest.(check int) "order preserved" i (Flatqueue.pop dst)
  done;
  for i = 0 to 9 do
    Flatqueue.push dst i
  done;
  Flatqueue.clear dst;
  Alcotest.(check bool) "clear empties" true (Flatqueue.is_empty dst);
  Flatqueue.push dst 42;
  Alcotest.(check int) "usable after clear" 42 (Flatqueue.pop dst)

(* --- Shardmap growth under contention (the documented invariant) --- *)

let test_shardmap_contended_growth () =
  (* few shards + many keys from 4 domains: every shard's flat table is
     forced through several doublings while other domains probe it *)
  let m = Par.Shardmap.create ~shards:4 () in
  let n = 40_000 in
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  Par.Pool.parallel_for pool ~n (fun ~worker:_ lo hi ->
      for i = lo to hi - 1 do
        Par.Shardmap.add m i (3 * i);
        (* interleave reads of keys some other domain may be inserting,
           racing the growth rehash *)
        ignore (Par.Shardmap.find_def m ((i * 7919) mod n) 0)
      done);
  Alcotest.(check int) "all bindings landed" n (Par.Shardmap.length m);
  let ok = ref true in
  Par.Shardmap.iter m (fun k v -> if v <> 3 * k then ok := false);
  Alcotest.(check bool) "values intact" true !ok;
  for i = 0 to 99 do
    let key = i * 401 in
    Alcotest.(check int)
      (Printf.sprintf "find %d" key)
      (3 * key)
      (Par.Shardmap.find_def m key (-1))
  done;
  Alcotest.(check bool) "bytes accounted" true (Par.Shardmap.bytes m > 0)

(* --- engine-level storage invariance --- *)

let check_identical name (a : Engine.region) (b : Engine.region) =
  Alcotest.(check (array int))
    (name ^ ": node keys")
    a.Engine.node_key b.Engine.node_key;
  Alcotest.(check (array bool)) (name ^ ": terminals") a.Engine.terminal
    b.Engine.terminal;
  Alcotest.(check int) (name ^ ": explored") a.Engine.explored b.Engine.explored;
  let edges g =
    List.map
      (fun (e : int Dgraph.Digraph.edge) -> (e.src, e.dst, e.label))
      (Dgraph.Digraph.edges g)
  in
  Alcotest.(check (list (triple int int int)))
    (name ^ ": edges")
    (edges a.Engine.graph) (edges b.Engine.graph)

let token_ring_pieces () =
  let tr = Protocols.Token_ring.make ~nodes:4 ~k:5 in
  ( Protocols.Token_ring.env tr,
    Protocols.Token_ring.combined tr,
    fun s -> Protocols.Token_ring.invariant tr s )

let test_engine_storage_invariant () =
  let env, program, inv = token_ring_pieces () in
  let cp = Compile.program program in
  let region ?packed_keys backend storage jobs =
    let e = Engine.create ~backend ~storage ?packed_keys ~jobs env in
    (e, Engine.region e cp ~from:Engine.All ~target:inv)
  in
  let _, reference = region Engine.Lazy Engine.Auto 1 in
  let ed, rd = region Engine.Lazy Engine.Direct 1 in
  let ep, rp = region Engine.Lazy Engine.Probed 1 in
  Alcotest.(check string) "direct resolved" "direct" (Engine.storage_name ed);
  Alcotest.(check string) "probed resolved" "probed" (Engine.storage_name ep);
  check_identical "lazy direct" reference rd;
  check_identical "lazy probed" reference rp;
  Alcotest.(check bool) "storage bytes recorded" true
    (Engine.storage_bytes ed > 0 && Engine.storage_bytes ep > 0);
  List.iter
    (fun jobs ->
      let _, r = region Engine.Parallel Engine.Direct jobs in
      check_identical (Printf.sprintf "par direct jobs=%d" jobs) reference r;
      let _, r = region Engine.Parallel Engine.Probed jobs in
      check_identical (Printf.sprintf "par probed jobs=%d" jobs) reference r)
    [ 1; 4 ]

let test_engine_packed_keys () =
  let env, program, inv = token_ring_pieces () in
  let cp = Compile.program program in
  let dense_e = Engine.create ~backend:Engine.Lazy env in
  let dense = Engine.region dense_e cp ~from:Engine.All ~target:inv in
  let space = Engine.space dense_e in
  List.iter
    (fun backend ->
      let e = Engine.create ~backend ~packed_keys:true ~jobs:2 env in
      Alcotest.(check bool) "packed flag" true (Engine.packed_keys e);
      Alcotest.(check string) "packed forces probed" "probed"
        (Engine.storage_name e);
      let r = Engine.region e cp ~from:Engine.All ~target:inv in
      (* same discovery order state-for-state: decoding node i's packed
         key gives node i's dense key in the reference run *)
      let decoded =
        Array.map
          (fun key -> Space.encode space (Engine.decode_key e key))
          r.Engine.node_key
      in
      Alcotest.(check (array int)) "node order matches dense run"
        dense.Engine.node_key decoded;
      Alcotest.(check int) "explored" dense.Engine.explored r.Engine.explored;
      Alcotest.(check (array bool)) "terminals" dense.Engine.terminal
        r.Engine.terminal)
    [ Engine.Lazy; Engine.Parallel ];
  (* packed keys refuse layouts over one word and eager engines; base 33
     wastes ~0.96 bits per slot, so 11 slots are dense-encodable (5e16
     states) yet need 66 packed bits *)
  let wide_env = env_of_sizes (List.init 11 (fun _ -> 33)) in
  Alcotest.(check bool) "packed overflow is typed" true
    (match Engine.create ~backend:Engine.Lazy ~packed_keys:true wide_env with
    | exception Codec.Overflow { layout; _ } -> layout = "packed"
    | _ -> false);
  Alcotest.(check bool) "eager + packed rejected" true
    (match Engine.create ~backend:Engine.Eager ~packed_keys:true env with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_engine_storage_overflow_point () =
  (* the budget trips after the same number of visits whatever the
     storage; the carried count must match across all combinations *)
  let env, program, inv = token_ring_pieces () in
  let cp = Compile.program program in
  let overflow storage backend =
    match
      Engine.region
        (Engine.create ~backend ~storage ~max_states:120 ~jobs:2 env)
        cp ~from:Engine.All ~target:inv
    with
    | exception Engine.Region_overflow n -> n
    | _ -> Alcotest.fail "must overflow a 120-state budget"
  in
  let reference = overflow Engine.Probed Engine.Lazy in
  List.iter
    (fun (storage, backend) ->
      Alcotest.(check int) "overflow point" reference (overflow storage backend))
    [
      (Engine.Direct, Engine.Lazy);
      (Engine.Probed, Engine.Parallel);
      (Engine.Direct, Engine.Parallel);
    ]

let test_faultspan_storage_invariant () =
  let env, program, inv = token_ring_pieces () in
  let cp = Compile.program program in
  let fault = Sim.Fault.corrupt env ~k:1 in
  let fp =
    Compile.program
      (Guarded.Program.make ~name:"faults" env (Sim.Fault.actions fault))
  in
  let legit =
    (* any invariant state works as a seed; find one by sweep *)
    let found = ref None in
    Space.iter (Space.create env) (fun _ s ->
        if !found = None && inv s then found := Some (State.copy s));
    Option.get !found
  in
  let span storage backend =
    Faultspan.compute
      (Engine.create ~backend ~storage ~jobs:2 env)
      ~program:cp ~budget:1 ~faults:fp
      ~from:(Engine.Seeds [ legit ])
      ()
  in
  let reference = span Engine.Auto Engine.Lazy in
  let sig_of sp =
    ( (Faultspan.count sp, Faultspan.root_count sp),
      (Faultspan.max_depth sp, Array.to_list (Faultspan.depth_histogram sp)) )
  in
  let states_of sp = List.map State.to_array (Faultspan.states sp) in
  List.iter
    (fun (name, storage, backend) ->
      let sp = span storage backend in
      Alcotest.(check (pair (pair int int) (pair int (list int))))
        (name ^ ": span signature") (sig_of reference) (sig_of sp);
      (* member iteration order is part of the contract (certificates
         scan it); it must survive both storage and backend changes *)
      Alcotest.(check bool)
        (name ^ ": member order")
        true
        (states_of reference = states_of sp))
    [
      ("lazy/direct", Engine.Direct, Engine.Lazy);
      ("lazy/probed", Engine.Probed, Engine.Lazy);
      ("par/direct", Engine.Direct, Engine.Parallel);
      ("par/probed", Engine.Probed, Engine.Parallel);
    ];
  (* indexed access agrees with iter *)
  let buf = State.make env in
  let i = ref 0 in
  Faultspan.iter reference (fun s ->
      Faultspan.decode_nth_into reference !i buf;
      if not (State.equal s buf) then
        Alcotest.failf "decode_nth_into disagrees with iter at %d" !i;
      incr i);
  Alcotest.(check int) "indexed count" (Faultspan.count reference) !i

let suite =
  [
    Alcotest.test_case "codec: fuzz roundtrips (200 seeds)" `Quick
      test_codec_roundtrip_fuzz;
    Alcotest.test_case "codec: packed beyond dense cap" `Quick
      test_codec_packed_beyond_dense;
    Alcotest.test_case "codec: wide beyond packed" `Quick
      test_codec_wide_beyond_packed;
    Alcotest.test_case "codec: wide overflow is typed" `Quick
      test_codec_wide_overflow;
    Alcotest.test_case "codec: single-value domains" `Quick
      test_codec_single_value_domains;
    Alcotest.test_case "codec: out-of-domain rejected" `Quick
      test_codec_out_of_domain;
    Alcotest.test_case "flattbl basics" `Quick test_flattbl_basics;
    Alcotest.test_case "flattbl growth boundaries" `Quick
      test_flattbl_growth_boundary;
    Alcotest.test_case "flattbl tombstones and churn" `Quick
      test_flattbl_tombstones;
    Alcotest.test_case "flattbl agrees with Hashtbl" `Quick
      test_flattbl_vs_hashtbl;
    Alcotest.test_case "flatset direct basics" `Quick test_flatset_direct;
    Alcotest.test_case "flatset direct vs probed" `Quick
      test_flatset_direct_vs_probed;
    Alcotest.test_case "flatqueue fifo across chunks" `Quick
      test_flatqueue_fifo;
    Alcotest.test_case "flatqueue transfer and clear" `Quick
      test_flatqueue_transfer_clear;
    Alcotest.test_case "shardmap growth under contention" `Quick
      test_shardmap_contended_growth;
    Alcotest.test_case "engine: storage-invariant regions" `Quick
      test_engine_storage_invariant;
    Alcotest.test_case "engine: packed keys agree with dense" `Quick
      test_engine_packed_keys;
    Alcotest.test_case "engine: overflow point storage-invariant" `Quick
      test_engine_storage_overflow_point;
    Alcotest.test_case "faultspan: storage-invariant spans" `Quick
      test_faultspan_storage_invariant;
  ]
