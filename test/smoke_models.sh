#!/bin/sh
# Model-language smoke: every examples/models/*.nm must parse, format
# idempotently (fmt of fmt output is a fixpoint), compile and reach a
# verdict on both the eager and lazy backends, and export to TLA+ and
# DOT. The paper's three worked models must additionally produce
# `check` output byte-identical to their hand-coded OCaml twins.
# Run from the repo root: sh test/smoke_models.sh
set -u

CLI="${CLI:-dune exec bin/nonmask_cli.exe --}"
failed=0
tmp="${TMPDIR:-/tmp}"
t1="$tmp/nonmask_smoke_fmt1.$$"
t2="$tmp/nonmask_smoke_fmt2.$$"
out_a="$tmp/nonmask_smoke_model_a.$$"
out_b="$tmp/nonmask_smoke_model_b.$$"
trap 'rm -f "$t1" "$t2" "$out_a" "$out_b"' EXIT

note() { if [ "$1" -eq 0 ]; then echo "ok:   $2"; else echo "FAIL: $2"; failed=1; fi; }

models=$(ls examples/models/*.nm 2>/dev/null)
if [ -z "$models" ]; then
  echo "FAIL: no examples/models/*.nm found (run from the repo root)"
  exit 1
fi

for m in $models; do
  # parse + canonical print
  $CLI fmt "$m" >"$t1" 2>/dev/null
  note $? "fmt $m"
  # idempotence: formatting the formatted text is a fixpoint
  $CLI fmt "$t1" >"$t2" 2>/dev/null && cmp -s "$t1" "$t2"
  note $? "fmt idempotent on $m"
  # compile + explore on both exhaustive backends
  $CLI check "$m" --engine eager >/dev/null 2>&1
  note $? "check $m --engine eager"
  $CLI check "$m" --engine lazy >/dev/null 2>&1
  note $? "check $m --engine lazy"
  # exporters
  $CLI export --tla "$m" >/dev/null 2>&1
  note $? "export --tla $m"
  $CLI export --dot "$m" >/dev/null 2>&1
  note $? "export --dot $m"
done

# The paper models' OCaml twins: `check MODEL.nm` must be byte-identical
# below the banner line (the banner carries the instance's display name,
# which for built-ins embeds the parameterization).
twin() {
  m="$1"
  shift
  $CLI check "$m" 2>/dev/null | tail -n +2 >"$out_a" &&
    $CLI check "$@" 2>/dev/null | tail -n +2 >"$out_b" &&
    [ -s "$out_a" ] && cmp -s "$out_a" "$out_b"
  note $? "check $m byte-identical to builtin twin"
}
twin examples/models/xyz.nm xyz-good-tree
twin examples/models/token_ring.nm token-ring --nodes 5 -k 6
twin examples/models/diffusing.nm diffusing --tree balanced --size 7

exit "$failed"
