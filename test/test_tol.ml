(* Quantified tolerance: frontier sweeps, the adversarial daemon bound,
   and environment actions.

   The sweep's laws are metamorphic: spans, depths, and worst-case bounds
   are monotone in the fault budget; saturated budgets replay instead of
   re-exploring; the adversary bound agrees with the certificate's exact
   convergence bound and dominates every storm-observed recovery; and the
   whole curve is bit-identical across backends and job counts. *)

module Engine = Explore.Engine
module Compile = Guarded.Compile
module State = Guarded.State
module Fault = Sim.Fault
module Token_ring = Protocols.Token_ring
module Diffusing = Protocols.Diffusing
module Xyz_demo = Protocols.Xyz_demo

let corrupt_actions env = Fault.actions (Fault.corrupt env ~k:1)

let sweep ?(backend = Engine.Lazy) ?(jobs = 1) ?(adversary = true)
    ?(budgets = Tol.Sweep.range ~max:3) ?(envs = []) ~env ~program ~invariant
    ~legit name =
  let engine = Engine.create ~backend ~jobs env in
  Tol.Sweep.run ~engine ~program ~faults:(corrupt_actions env) ~envs
    ~invariant
    ~from:(Engine.Seeds [ legit ])
    ~budgets ~adversary ~name ()

(* --- monotonicity on the paper's three worked programs --------------- *)

(* Budgets ascend, spans and depths are monotone, and wherever both the
   certificate's exact bound and the adversary bound exist they agree —
   two independent derivations of the same worst case. *)
let check_frontier_laws name (f : Tol.Sweep.frontier) =
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        if a.Tol.Sweep.budget >= b.Tol.Sweep.budget then
          Alcotest.failf "%s: budgets not ascending" name;
        if a.Tol.Sweep.span_states > b.Tol.Sweep.span_states then
          Alcotest.failf "%s: span shrank from budget %d to %d" name
            a.Tol.Sweep.budget b.Tol.Sweep.budget;
        if a.Tol.Sweep.max_depth > b.Tol.Sweep.max_depth then
          Alcotest.failf "%s: depth shrank from budget %d to %d" name
            a.Tol.Sweep.budget b.Tol.Sweep.budget;
        (match (a.Tol.Sweep.worst_case, b.Tol.Sweep.worst_case) with
        | Some wa, Some wb when wa > wb ->
            Alcotest.failf "%s: worst case shrank from %d to %d" name wa wb
        | _ -> ());
        pairwise rest
    | _ -> ()
  in
  pairwise f.Tol.Sweep.points;
  List.iter
    (fun (p : Tol.Sweep.point) ->
      match (p.worst_case, p.adversary) with
      | Some w, Some r -> (
          match r.Tol.Adversary.verdict with
          | Tol.Adversary.Bounded w' when w = w' -> ()
          | Tol.Adversary.Bounded w' ->
              Alcotest.failf
                "%s@b=%d: adversary bound %d but certificate worst case %d"
                name p.budget w' w
          | Tol.Adversary.Unbounded _ ->
              Alcotest.failf
                "%s@b=%d: adversary unbounded but certificate worst case %d"
                name p.budget w)
      | _ -> ())
    f.Tol.Sweep.points

let test_sweep_token_ring () =
  let tr = Token_ring.make ~nodes:3 ~k:4 in
  let f =
    sweep ~env:(Token_ring.env tr) ~program:(Token_ring.combined tr)
      ~invariant:(Token_ring.invariant tr) ~legit:(Token_ring.all_zero tr)
      "token-ring"
  in
  check_frontier_laws "token-ring" f;
  Alcotest.(check int) "four points" 4 (List.length f.Tol.Sweep.points);
  List.iter
    (fun (p : Tol.Sweep.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "certified at budget %d" p.budget)
        true p.certified)
    f.Tol.Sweep.points;
  Alcotest.(check (option int)) "no cliff" None f.Tol.Sweep.cliff

let test_sweep_diffusing () =
  let d = Diffusing.make (Topology.Tree.chain 3) in
  let f =
    sweep ~env:(Diffusing.env d) ~program:(Diffusing.combined d)
      ~invariant:(Diffusing.invariant d) ~legit:(Diffusing.all_green d)
      "diffusing"
  in
  check_frontier_laws "diffusing" f

let test_sweep_xyz () =
  let d = Xyz_demo.make Xyz_demo.Good_tree in
  let env = Xyz_demo.env d in
  let legit =
    State.of_list env
      [ (Xyz_demo.x d, 0); (Xyz_demo.y d, 1); (Xyz_demo.z d, 1) ]
  in
  let f =
    sweep ~env ~program:(Xyz_demo.program d)
      ~invariant:(Xyz_demo.invariant d) ~legit "xyz"
  in
  check_frontier_laws "xyz" f

(* --- cliff: the naive ring certifies fault-free, fails at budget 1 --- *)

let test_cliff_naive_ring () =
  let nr = Protocols.Naive_ring.make ~nodes:3 in
  let env = Protocols.Naive_ring.env nr in
  let f =
    sweep ~adversary:false ~env
      ~program:(Protocols.Naive_ring.program nr)
      ~invariant:(Protocols.Naive_ring.invariant nr)
      ~legit:(Protocols.Naive_ring.one_token nr)
      ~budgets:[ 0; 1; 2 ] "naive-ring"
  in
  (match f.Tol.Sweep.points with
  | [ p0; p1; p2 ] ->
      Alcotest.(check bool) "budget 0 certifies" true p0.Tol.Sweep.certified;
      Alcotest.(check bool) "budget 1 fails" false p1.Tol.Sweep.certified;
      Alcotest.(check bool) "budget 2 fails" false p2.Tol.Sweep.certified
  | _ -> Alcotest.fail "three points expected");
  Alcotest.(check (option int)) "cliff at 1" (Some 1) f.Tol.Sweep.cliff

(* --- saturation: once depth < budget, larger budgets replay ---------- *)

let test_sweep_saturation_reuse () =
  let tr = Token_ring.make ~nodes:3 ~k:3 in
  let f =
    sweep ~env:(Token_ring.env tr) ~program:(Token_ring.combined tr)
      ~invariant:(Token_ring.invariant tr) ~legit:(Token_ring.all_zero tr)
      ~budgets:(Tol.Sweep.range ~max:8) "token-ring"
  in
  let reused = List.filter (fun p -> p.Tol.Sweep.reused) f.Tol.Sweep.points in
  Alcotest.(check bool) "some budget saturates by 8" true (reused <> []);
  (* reused points replay the saturated point verbatim *)
  let rec check prev = function
    | [] -> ()
    | p :: rest ->
        (if p.Tol.Sweep.reused then
           match prev with
           | None -> Alcotest.fail "first point cannot be reused"
           | Some q ->
               Alcotest.(check int) "reused span" q.Tol.Sweep.span_states
                 p.Tol.Sweep.span_states;
               Alcotest.(check bool) "reused verdict" q.Tol.Sweep.certified
                 p.Tol.Sweep.certified;
               Alcotest.(check (option int))
                 "reused worst case" q.Tol.Sweep.worst_case
                 p.Tol.Sweep.worst_case);
        check (Some p) rest
  in
  check None f.Tol.Sweep.points;
  (* reuse is a suffix: once saturated, every later budget replays *)
  let rec suffix seen = function
    | [] -> ()
    | p :: rest ->
        if seen && not p.Tol.Sweep.reused then
          Alcotest.failf "budget %d recomputed after saturation"
            p.Tol.Sweep.budget;
        suffix (seen || p.Tol.Sweep.reused) rest
  in
  suffix false f.Tol.Sweep.points

(* --- the adversary bound dominates storm observations ---------------- *)

(* 100 seeded storm trials under the certified budget: every observed
   recovery must sit below the composite bound the adversary implies —
   at most [b] injections split a trial into fault-free segments of at
   most [w] adversarial steps each. *)
let test_adversary_dominates_storm () =
  let tr = Token_ring.make ~nodes:3 ~k:4 in
  let env = Token_ring.env tr in
  let b = 2 in
  let f =
    sweep ~env ~program:(Token_ring.combined tr)
      ~invariant:(Token_ring.invariant tr) ~legit:(Token_ring.all_zero tr)
      ~budgets:[ b ] "token-ring"
  in
  let p = List.hd f.Tol.Sweep.points in
  let w =
    match p.Tol.Sweep.adversary with
    | Some r -> (
        match r.Tol.Adversary.verdict with
        | Tol.Adversary.Bounded w -> w
        | Tol.Adversary.Unbounded _ ->
            Alcotest.fail "token ring adversary bound must be finite")
    | None -> Alcotest.fail "adversary requested"
  in
  Alcotest.(check (option int))
    "adversary agrees with certificate" (Some w) p.Tol.Sweep.worst_case;
  let bound = ((b + 1) * w) + b in
  let result =
    Sim.Storm.trials ~max_steps:10_000 ~fault_budget:b ~jobs:1
      ~rng:(Prng.create 0xad5e) ~trials:100
      ~daemon:(fun r -> Sim.Daemon.random r)
      ~prepare:(fun rng ->
        let s = State.copy (Token_ring.all_zero tr) in
        (Fault.corrupt env ~k:1).Fault.inject rng s;
        s)
      ~stop:(Token_ring.invariant tr)
      ~fault:(Fault.corrupt env ~k:1)
      ~rate:0.2
      (Compile.program (Token_ring.combined tr))
  in
  Alcotest.(check int) "all trials converge" 0 result.Sim.Storm.failures;
  Array.iteri
    (fun i steps ->
      if steps > bound then
        Alcotest.failf "trial %d took %d steps, above the sound bound %d" i
          steps bound)
    result.Sim.Storm.steps

(* --- environment actions --------------------------------------------- *)

let ring_sensor_src =
  {|model ring-sensor

param N = 3
param K = 4

topology ring(N)

var x[N] : 0..K-1
var sensor : 0..1

action increment:
  x[0] = x[N-1] /\ x[0] < K-1 -> x[0] := x[0] + 1

action copy[j in 0..N-2]:
  x[j] <> x[j+1] -> x[j+1] := x[j]

env flip:
  true -> sensor := 1 - sensor

invariant (forall j in 0..N-2: x[j] >= x[j+1]) /\ (x[0] = x[N-1] \/ x[0] = x[N-1] + 1)
|}

let ring_hostile_src =
  {|model ring-hostile

param N = 3
param K = 4

topology ring(N)

var x[N] : 0..K-1

action increment:
  x[0] = x[N-1] /\ x[0] < K-1 -> x[0] := x[0] + 1

action copy[j in 0..N-2]:
  x[j] <> x[j+1] -> x[j+1] := x[j]

env corrupt_head:
  x[0] < K-1 -> x[0] := x[0] + 1

invariant (forall j in 0..N-2: x[j] >= x[j+1]) /\ (x[0] = x[N-1] \/ x[0] = x[N-1] + 1)
|}

(* A benign environment (a sensor the invariant ignores) keeps the
   certificate valid — but the unfair daemon can schedule the sensor
   forever, so the exact bound degrades to the weak-fairness fallback
   and the adversary honestly reports Unbounded. *)
let test_env_benign_certifies_adversary_unbounded () =
  let em = Lang.Driver.compile_string ~file:"ring-sensor.nm" ring_sensor_src in
  Alcotest.(check int) "one env action" 1
    (List.length em.Lang.Elab.env_actions);
  let f =
    sweep ~envs:em.Lang.Elab.env_actions ~env:em.Lang.Elab.env
      ~program:em.Lang.Elab.program ~invariant:em.Lang.Elab.invariant
      ~legit:em.Lang.Elab.init ~budgets:[ 0; 1 ] "ring-sensor"
  in
  List.iter
    (fun (p : Tol.Sweep.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "certified at budget %d" p.budget)
        true p.certified;
      if p.budget = 0 then begin
        (* fault-free, the whole span sits inside S: trivially exact *)
        Alcotest.(check (option int)) "budget 0 exact" (Some 0) p.worst_case;
        match p.adversary with
        | Some { Tol.Adversary.verdict = Tol.Adversary.Bounded 0; _ } -> ()
        | _ -> Alcotest.fail "budget 0 adversary must be Bounded 0"
      end
      else begin
        (* off-S states exist and the daemon can schedule the sensor
           forever: the exact bound degrades to the weak-fairness
           fallback and the adversary reports the starvation cycle *)
        Alcotest.(check (option int))
          (Printf.sprintf "no exact bound at budget %d" p.budget)
          None p.worst_case;
        match p.adversary with
        | Some { Tol.Adversary.verdict = Tol.Adversary.Unbounded _; _ } -> ()
        | Some { Tol.Adversary.verdict = Tol.Adversary.Bounded w; _ } ->
            Alcotest.failf "adversary bounded at %d despite the free sensor" w
        | None -> Alcotest.fail "adversary requested"
      end)
    f.Tol.Sweep.points

(* A hostile environment that pushes the head variable breaks legitimacy
   without consuming fault budget: the environment-closure obligation
   fails at every budget, including 0. *)
let test_env_hostile_fails_certification () =
  let em =
    Lang.Driver.compile_string ~file:"ring-hostile.nm" ring_hostile_src
  in
  let f =
    sweep ~adversary:false ~envs:em.Lang.Elab.env_actions
      ~env:em.Lang.Elab.env ~program:em.Lang.Elab.program
      ~invariant:em.Lang.Elab.invariant ~legit:em.Lang.Elab.init
      ~budgets:[ 0; 1 ] "ring-hostile"
  in
  List.iter
    (fun (p : Tol.Sweep.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "fails at budget %d" p.budget)
        false p.certified)
    f.Tol.Sweep.points;
  Alcotest.(check (option int)) "uniformly failed: no cliff" None
    f.Tol.Sweep.cliff

(* --- cross-backend / cross-job bit-identity -------------------------- *)

let point_sig (p : Tol.Sweep.point) =
  ( p.Tol.Sweep.budget,
    p.Tol.Sweep.span_states,
    p.Tol.Sweep.span_roots,
    p.Tol.Sweep.max_depth,
    p.Tol.Sweep.certified,
    p.Tol.Sweep.worst_case,
    (match p.Tol.Sweep.adversary with
    | None -> None
    | Some r ->
        Some
          ( (match r.Tol.Adversary.verdict with
            | Tol.Adversary.Bounded w -> Some w
            | Tol.Adversary.Unbounded _ -> None),
            r.Tol.Adversary.span_states,
            r.Tol.Adversary.outside,
            r.Tol.Adversary.ranked,
            r.Tol.Adversary.waves )),
    p.Tol.Sweep.reused )

let frontier_sig (f : Tol.Sweep.frontier) =
  (List.map point_sig f.Tol.Sweep.points, f.Tol.Sweep.cliff)

let test_cross_backend_identity () =
  let curve backend jobs =
    let tr = Token_ring.make ~nodes:3 ~k:4 in
    frontier_sig
      (sweep ~backend ~jobs ~env:(Token_ring.env tr)
         ~program:(Token_ring.combined tr)
         ~invariant:(Token_ring.invariant tr)
         ~legit:(Token_ring.all_zero tr) "token-ring")
  in
  let reference = curve Engine.Lazy 1 in
  List.iter
    (fun (backend, jobs, label) ->
      if curve backend jobs <> reference then
        Alcotest.failf "%s frontier differs from lazy --jobs 1" label)
    [
      (Engine.Eager, 1, "eager --jobs 1");
      (Engine.Lazy, 4, "lazy --jobs 4");
      (Engine.Parallel, 4, "parallel --jobs 4");
    ]

(* --- storm rendering: observations vs the sound bound ----------------- *)

(* Golden rendering: quantiles carry the [observed] label, the sound
   bound its own [bound=] column. Constant samples pin every statistic
   regardless of quantile conventions. *)
let test_storm_bound_labels () =
  let r =
    {
      Sim.Storm.steps = [| 4; 4; 4 |];
      failures = 0;
      fault_counts = [| 1; 1; 1 |];
      summary = Some (Sim.Stats.summarize_ints [| 4; 4; 4 |]);
      skipped = 0;
      timeouts = 0;
      retries = 0;
    }
  in
  Alcotest.(check string)
    "finite bound rendering"
    "observed n=3 mean=4.00 sd=0.00 min=4 med=4.0 p90=4.0 max=4 \
     faults/trial=1.0 bound=24"
    (Format.asprintf "%a" (Sim.Storm.pp_result_with_bound ~bound:(Some 24)) r);
  Alcotest.(check string)
    "unbounded rendering"
    "observed n=3 mean=4.00 sd=0.00 min=4 med=4.0 p90=4.0 max=4 \
     faults/trial=1.0 bound=unbounded"
    (Format.asprintf "%a" (Sim.Storm.pp_result_with_bound ~bound:None) r)

(* --- frontier rendering ----------------------------------------------- *)

let test_frontier_rendering () =
  let tr = Token_ring.make ~nodes:3 ~k:3 in
  let f =
    sweep ~env:(Token_ring.env tr) ~program:(Token_ring.combined tr)
      ~invariant:(Token_ring.invariant tr) ~legit:(Token_ring.all_zero tr)
      ~budgets:(Tol.Sweep.range ~max:5) "token-ring"
  in
  let rendered = Format.asprintf "%a" Tol.Sweep.pp_frontier f in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions %S" needle)
        true
        (Astring_contains.contains rendered needle))
    [ "budget"; "span(|T|)"; "certified"; "adversary"; "(reused)"; "cliff" ]

(* --- sweep input validation ------------------------------------------- *)

let test_sweep_rejects_bad_budgets () =
  Alcotest.check_raises "negative range"
    (Invalid_argument "Tol.Sweep.range: negative budget") (fun () ->
      ignore (Tol.Sweep.range ~max:(-1)));
  let tr = Token_ring.make ~nodes:3 ~k:3 in
  let attempt budgets =
    ignore
      (sweep ~adversary:false ~env:(Token_ring.env tr)
         ~program:(Token_ring.combined tr)
         ~invariant:(Token_ring.invariant tr)
         ~legit:(Token_ring.all_zero tr) ~budgets "token-ring")
  in
  (try
     attempt [];
     Alcotest.fail "empty budget list accepted"
   with Invalid_argument _ -> ());
  try
    attempt [ 1; -3 ];
    Alcotest.fail "negative budget accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "sweep laws: token ring" `Quick test_sweep_token_ring;
    Alcotest.test_case "sweep laws: diffusing" `Quick test_sweep_diffusing;
    Alcotest.test_case "sweep laws: xyz" `Quick test_sweep_xyz;
    Alcotest.test_case "cliff: naive ring" `Quick test_cliff_naive_ring;
    Alcotest.test_case "saturation reuse" `Quick test_sweep_saturation_reuse;
    Alcotest.test_case "adversary dominates storm" `Quick
      test_adversary_dominates_storm;
    Alcotest.test_case "env benign: certified, adversary unbounded" `Quick
      test_env_benign_certifies_adversary_unbounded;
    Alcotest.test_case "env hostile: certification fails" `Quick
      test_env_hostile_fails_certification;
    Alcotest.test_case "cross-backend bit-identity" `Quick
      test_cross_backend_identity;
    Alcotest.test_case "storm observed/bound labels" `Quick
      test_storm_bound_labels;
    Alcotest.test_case "frontier rendering" `Quick test_frontier_rendering;
    Alcotest.test_case "sweep rejects bad budgets" `Quick
      test_sweep_rejects_bad_budgets;
  ]
