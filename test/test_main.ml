(* Test runner: one alcotest section per library. *)

let () =
  Alcotest.run "nonmask"
    [
      ("prng", Test_prng.suite);
      ("guarded", Test_guarded.suite);
      ("dsl", Test_dsl.suite);
      ("dgraph", Test_dgraph.suite);
      ("topology", Test_topology.suite);
      ("explore", Test_explore.suite);
      ("engine", Test_engine.suite);
      ("par", Test_par.suite);
      ("storage", Test_storage.suite);
      ("sim", Test_sim.suite);
      ("faults", Test_faults.suite);
      ("core", Test_core.suite);
      ("protocols", Test_protocols.suite);
      ("extensions", Test_extensions.suite);
      ("method", Test_method.suite);
      ("derive", Test_derive.suite);
      ("properties", Test_properties.suite);
      ("obs", Test_obs.suite);
      ("rt", Test_rt.suite);
      ("lang", Test_lang.suite);
      ("gen", Test_gen.suite);
      ("tol", Test_tol.suite);
      ("serve", Test_serve.suite);
    ]
