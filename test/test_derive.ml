(* Tests for the end-to-end design procedure. *)

module Env = Guarded.Env
module Domain = Guarded.Domain
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program
module Var = Guarded.Var
module Engine = Explore.Engine
module Derive = Nonmask.Derive
module Cgraph = Nonmask.Cgraph
module Constr = Nonmask.Constr
module Certify = Nonmask.Certify

let pair constr action = { Cgraph.constr; action }

let test_design_picks_theorem1 () =
  (* the Section-4 out-tree example, with inferred nodes *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let y = Env.fresh env "y" (Domain.range 0 4) in
  let z = Env.fresh env "z" (Domain.range 0 3) in
  let c_ne = Expr.(Constr.make ~name:"ne" (var x <> var y)) in
  let c_le = Expr.(Constr.make ~name:"le" (var x <= var z)) in
  let spec =
    Nonmask.Spec.make ~name:"xyz"
      ~program:(Program.make ~name:"xyz" env [])
      ~invariant:(Constr.conj [ c_ne; c_le ])
      ()
  in
  let layers =
    [
      [
        pair c_ne
          Expr.(Action.make ~name:"bump-y" ~guard:(var x = var y)
                  [ (y, var y + int 1) ]);
        pair c_le
          Expr.(Action.make ~name:"raise-z" ~guard:(var x > var z)
                  [ (z, var x) ]);
      ];
    ]
  in
  let engine = Engine.create env in
  match Derive.design ~engine ~spec layers with
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Derive.pp_error e)
  | Ok plan ->
      Alcotest.(check string) "theorem 1 chosen" "Theorem 1"
        plan.Derive.certificate.Certify.theorem;
      Alcotest.(check bool) "valid" true (Certify.ok plan.Derive.certificate);
      Alcotest.(check int) "two convergence actions added" 2
        (Program.action_count plan.Derive.program)

let test_design_picks_theorem2 () =
  (* the Section-6 ordered example: both actions write x *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range (-1) 3) in
  let y = Env.fresh env "y" (Domain.range 0 3) in
  let z = Env.fresh env "z" (Domain.range 0 3) in
  let c_ne = Expr.(Constr.make ~name:"ne" (var x <> var y)) in
  let c_le = Expr.(Constr.make ~name:"le" (var x <= var z)) in
  let spec =
    Nonmask.Spec.make ~name:"xyz"
      ~program:(Program.make ~name:"xyz" env [])
      ~invariant:(Constr.conj [ c_ne; c_le ])
      ()
  in
  let layers =
    [
      [
        pair c_le
          Expr.(Action.make ~name:"lower-x" ~guard:(var x > var z)
                  [ (x, var z) ]);
        pair c_ne
          Expr.(Action.make ~name:"dec-x" ~guard:(var x = var y)
                  [ (x, var x - int 1) ]);
      ];
    ]
  in
  let engine = Engine.create env in
  match Derive.design ~engine ~spec layers with
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Derive.pp_error e)
  | Ok plan ->
      Alcotest.(check string) "theorem 2 chosen" "Theorem 2"
        plan.Derive.certificate.Certify.theorem;
      Alcotest.(check bool) "valid" true (Certify.ok plan.Derive.certificate)

let test_design_token_ring_uses_modulo () =
  (* the paper's two-layer token ring needs the modulo-invariant reading *)
  let tr = Protocols.Token_ring.make ~nodes:3 ~k:4 in
  let engine = Engine.create (Protocols.Token_ring.env tr) in
  let layers =
    List.map
      (fun g -> Array.to_list (Cgraph.pairs g))
      (Protocols.Token_ring.layers tr)
  in
  match
    Derive.design ~engine ~spec:(Protocols.Token_ring.spec tr) layers
  with
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Derive.pp_error e)
  | Ok plan ->
      Alcotest.(check bool) "valid" true (Certify.ok plan.Derive.certificate);
      Alcotest.(check bool) "modulo reading was needed" true
        (Astring_contains.contains plan.Derive.certificate.Certify.theorem
           "modulo")

let test_design_rejects_cyclic_single_layer () =
  (* two constraints whose repair actions write each other's reads in a
     2-cycle: no single-layer theorem applies *)
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 0 2) in
  let b = Env.fresh env "b" (Domain.range 0 2) in
  let c1 = Expr.(Constr.make ~name:"c1" (var a <= var b)) in
  let c2 = Expr.(Constr.make ~name:"c2" (var b <= var a)) in
  let spec =
    Nonmask.Spec.make ~name:"cyc"
      ~program:(Program.make ~name:"cyc" env [])
      ~invariant:(Constr.conj [ c1; c2 ])
      ()
  in
  let layers =
    [
      [
        pair c1
          Expr.(Action.make ~name:"fix1" ~guard:(var a > var b)
                  [ (a, var b) ]);
        pair c2
          Expr.(Action.make ~name:"fix2" ~guard:(var b > var a)
                  [ (b, var a) ]);
      ];
    ]
  in
  let engine = Engine.create env in
  match Derive.design ~engine ~spec layers with
  | Error Derive.Cyclic_needs_layers -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Derive.pp_error e)
  | Ok _ -> Alcotest.fail "cyclic single layer must be rejected"

let test_design_surfaces_graph_errors () =
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 0 2) in
  let c = Expr.(Constr.make ~name:"c" (var a = int 0)) in
  let spec =
    Nonmask.Spec.make ~name:"g"
      ~program:(Program.make ~name:"g" env [])
      ~invariant:(Constr.pred c) ()
  in
  (* an action with no writes cannot be placed in the graph *)
  let layers =
    [ [ pair c (Action.make ~name:"noop" ~guard:Expr.tt []) ] ]
  in
  let engine = Engine.create env in
  match Derive.design ~engine ~spec layers with
  | Error (Derive.Graph_error (Cgraph.No_writes _)) -> ()
  | _ -> Alcotest.fail "expected a graph error"

let test_design_diffusing_end_to_end () =
  (* rebuild the diffusing computation's design through the procedure and
     confirm the augmented program converges *)
  let d = Protocols.Diffusing.make (Topology.Tree.chain 3) in
  let engine = Engine.create (Protocols.Diffusing.env d) in
  let layers =
    [ Array.to_list (Cgraph.pairs (Protocols.Diffusing.cgraph d)) ]
  in
  (* keep the protocol's own node partition: one node per process *)
  let nodes =
    Array.to_list (Cgraph.nodes (Protocols.Diffusing.cgraph d))
    |> List.map (fun (n : Cgraph.node) -> (n.Cgraph.label, n.Cgraph.vars))
  in
  match Derive.design ~nodes ~engine ~spec:(Protocols.Diffusing.spec d) layers with
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Derive.pp_error e)
  | Ok plan ->
      Alcotest.(check string) "theorem 1" "Theorem 1"
        plan.Derive.certificate.Certify.theorem;
      Alcotest.(check bool) "valid" true (Certify.ok plan.Derive.certificate);
      (match
         Explore.Convergence.check_unfair engine
           (Guarded.Compile.program plan.Derive.program)
           ~from:Engine.All
           ~target:(fun s -> Protocols.Diffusing.invariant d s)
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "augmented program must converge")

let suite =
  [
    Alcotest.test_case "design picks Theorem 1" `Quick test_design_picks_theorem1;
    Alcotest.test_case "design picks Theorem 2" `Quick test_design_picks_theorem2;
    Alcotest.test_case "design falls back to modulo-invariant Thm 3" `Quick
      test_design_token_ring_uses_modulo;
    Alcotest.test_case "design rejects cyclic single layer" `Quick
      test_design_rejects_cyclic_single_layer;
    Alcotest.test_case "design surfaces graph errors" `Quick
      test_design_surfaces_graph_errors;
    Alcotest.test_case "design end-to-end on diffusing" `Quick
      test_design_diffusing_end_to_end;
  ]
