(* Property-based tests (qcheck) over the core data structures and the
   paper-level invariants, registered as alcotest cases. *)

module Domain = Guarded.Domain
module Env = Guarded.Env
module State = Guarded.State
module Expr = Guarded.Expr
module Tree = Topology.Tree
module Space = Explore.Space

(* --- Generators --- *)

(* A random parent array describing a rooted tree on n nodes (root 0). *)
let tree_gen =
  QCheck.Gen.(
    sized_size (int_range 1 8) (fun n ->
        if n <= 1 then return (Tree.chain 1)
        else
          let rec parents i acc =
            if i >= n then return (List.rev acc)
            else int_range 0 (i - 1) >>= fun p -> parents (i + 1) (p :: acc)
          in
          parents 1 [ 0 ] >>= fun ps -> return (Tree.of_parents (Array.of_list ps))))

let arbitrary_tree =
  QCheck.make tree_gen ~print:(fun t -> Format.asprintf "%a" Tree.pp t)

(* Random integer expressions over two fixed variables. *)
type expr_env = {
  e_env : Env.t;
  e_x : Guarded.Var.t;
  e_y : Guarded.Var.t;
}

let make_expr_env () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range (-5) 5) in
  let y = Env.fresh env "y" (Domain.range (-5) 5) in
  { e_env = env; e_x = x; e_y = y }

let shared_expr_env = make_expr_env ()

let num_gen =
  let open QCheck.Gen in
  let { e_x; e_y; _ } = shared_expr_env in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map Expr.int (int_range (-4) 4);
               return (Expr.var e_x);
               return (Expr.var e_y);
             ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map2 (fun a b -> Expr.( + ) a b) sub sub;
               map2 (fun a b -> Expr.( - ) a b) sub sub;
               map2 (fun a b -> Expr.( * ) a b) sub sub;
               map2 Expr.min_ sub sub;
               map2 Expr.max_ sub sub;
               map Expr.neg sub;
             ])

let arbitrary_num = QCheck.make num_gen ~print:Expr.num_to_string

let bool_gen =
  let open QCheck.Gen in
  num_gen >>= fun a ->
  num_gen >>= fun b ->
  oneofl [ Expr.( = ); Expr.( <> ); Expr.( < ); Expr.( <= ); Expr.( > ); Expr.( >= ) ]
  >>= fun cmp -> return (cmp a b)

let bexp_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then oneof [ return Expr.tt; return Expr.ff; bool_gen ]
         else
           let sub = self (n / 2) in
           oneof
             [
               bool_gen;
               map2 (fun a b -> Expr.( && ) a b) sub sub;
               map2 (fun a b -> Expr.( || ) a b) sub sub;
               map2 (fun a b -> Expr.( ==> ) a b) sub sub;
               map Expr.not_ sub;
             ])

let arbitrary_bexp = QCheck.make bexp_gen ~print:Expr.to_string

let random_state rng =
  let { e_env; e_x; e_y } = shared_expr_env in
  State.of_list e_env
    [ (e_x, Prng.int_in rng (-5) 5); (e_y, Prng.int_in rng (-5) 5) ]

(* --- Properties --- *)

let prop_simplify_num_sound =
  QCheck.Test.make ~name:"simplify_num preserves evaluation" ~count:500
    arbitrary_num (fun e ->
      let rng = Prng.create (Hashtbl.hash e) in
      let ok = ref true in
      for _ = 1 to 10 do
        let s = random_state rng in
        if Expr.eval_num s e <> Expr.eval_num s (Expr.simplify_num e) then
          ok := false
      done;
      !ok)

let prop_simplify_bool_sound =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:500
    arbitrary_bexp (fun b ->
      let rng = Prng.create (Hashtbl.hash b) in
      let ok = ref true in
      for _ = 1 to 10 do
        let s = random_state rng in
        if Expr.eval s b <> Expr.eval s (Expr.simplify b) then ok := false
      done;
      !ok)

let prop_compile_num_agrees =
  QCheck.Test.make ~name:"compiled num agrees with interpreter" ~count:500
    arbitrary_num (fun e ->
      let f = Guarded.Compile.num e in
      let rng = Prng.create (Hashtbl.hash e) in
      let ok = ref true in
      for _ = 1 to 10 do
        let s = random_state rng in
        if Expr.eval_num s e <> f s then ok := false
      done;
      !ok)

let prop_compile_bool_agrees =
  QCheck.Test.make ~name:"compiled pred agrees with interpreter" ~count:500
    arbitrary_bexp (fun b ->
      let f = Guarded.Compile.pred b in
      let rng = Prng.create (Hashtbl.hash b) in
      let ok = ref true in
      for _ = 1 to 10 do
        let s = random_state rng in
        if Expr.eval s b <> f s then ok := false
      done;
      !ok)

let prop_reads_cover_dependencies =
  (* changing a variable outside reads(e) never changes the value of e *)
  QCheck.Test.make ~name:"reads covers semantic dependencies" ~count:300
    arbitrary_num (fun e ->
      let { e_env; e_x; e_y } = shared_expr_env in
      let reads = Expr.reads_num e in
      let rng = Prng.create (Hashtbl.hash e) in
      let ok = ref true in
      for _ = 1 to 10 do
        let s = random_state rng in
        let v0 = Expr.eval_num s e in
        let s' = State.copy s in
        (* mutate the variables NOT read *)
        List.iter
          (fun v ->
            if not (Guarded.Var.Set.mem v reads) then
              State.set s' v (Prng.int_in rng (-5) 5))
          [ e_x; e_y ];
        if Expr.eval_num s' e <> v0 then ok := false
      done;
      ignore e_env;
      !ok)

let prop_tree_digraph_out_tree =
  QCheck.Test.make ~name:"tree digraphs are out-trees" ~count:100
    arbitrary_tree (fun t ->
      Dgraph.Classify.is_out_tree (Tree.to_digraph t))

let prop_tree_depth_height =
  QCheck.Test.make ~name:"height is the max depth" ~count:100 arbitrary_tree
    (fun t ->
      Tree.height t
      = List.fold_left (fun acc j -> max acc (Tree.depth t j)) 0 (Tree.nodes t))

let prop_diffusing_cgraph_out_tree =
  QCheck.Test.make ~name:"diffusing constraint graph is an out-tree (Thm 1)"
    ~count:50 arbitrary_tree (fun t ->
      QCheck.assume (Tree.size t >= 2);
      let d = Protocols.Diffusing.make t in
      Nonmask.Cgraph.shape (Protocols.Diffusing.cgraph d)
      = Dgraph.Classify.Out_tree)

let prop_diffusing_converges_by_simulation =
  QCheck.Test.make
    ~name:"diffusing recovers from any scrambled state (simulation)" ~count:25
    arbitrary_tree (fun t ->
      QCheck.assume (Tree.size t >= 2);
      let d = Protocols.Diffusing.make t in
      let rng = Prng.create (Tree.size t * 7919) in
      let cp = Guarded.Compile.program (Protocols.Diffusing.combined d) in
      let fault = Sim.Fault.scramble (Protocols.Diffusing.env d) in
      let ok = ref true in
      for _ = 1 to 5 do
        let init = Protocols.Diffusing.all_green d in
        fault.Sim.Fault.inject rng init;
        let outcome =
          Sim.Runner.run ~max_steps:20_000
            ~daemon:(Sim.Daemon.random rng)
            ~init
            ~stop:(fun s -> Protocols.Diffusing.invariant d s)
            cp
        in
        if not (Sim.Runner.converged outcome) then ok := false
      done;
      !ok)

let prop_dijkstra_recovers_by_simulation =
  QCheck.Test.make ~name:"dijkstra ring recovers from any scramble" ~count:25
    QCheck.(int_range 3 10)
    (fun nodes ->
      let dr = Protocols.Dijkstra_ring.make ~nodes ~k:(nodes + 1) in
      let rng = Prng.create (nodes * 104729) in
      let cp = Guarded.Compile.program (Protocols.Dijkstra_ring.program dr) in
      let fault = Sim.Fault.scramble (Protocols.Dijkstra_ring.env dr) in
      let ok = ref true in
      for _ = 1 to 5 do
        let init = Protocols.Dijkstra_ring.all_zero dr in
        fault.Sim.Fault.inject rng init;
        let outcome =
          Sim.Runner.run ~max_steps:50_000
            ~daemon:(Sim.Daemon.random rng)
            ~init
            ~stop:(fun s -> Protocols.Dijkstra_ring.invariant dr s)
            cp
        in
        if not (Sim.Runner.converged outcome) then ok := false
      done;
      !ok)

let prop_dijkstra_one_privilege_stays =
  QCheck.Test.make ~name:"dijkstra legitimate states keep one privilege"
    ~count:25
    QCheck.(int_range 3 8)
    (fun nodes ->
      let dr = Protocols.Dijkstra_ring.make ~nodes ~k:(nodes + 1) in
      let cp = Guarded.Compile.program (Protocols.Dijkstra_ring.program dr) in
      let rng = Prng.create nodes in
      let outcome =
        Sim.Runner.run ~record_trace:true ~max_steps:200
          ~daemon:(Sim.Daemon.random rng)
          ~init:(Protocols.Dijkstra_ring.all_zero dr)
          ~stop:(fun _ -> false) cp
      in
      match outcome.Sim.Runner.trace with
      | None -> false
      | Some t ->
          List.for_all
            (fun s -> Protocols.Dijkstra_ring.privilege_count dr s = 1)
            (Sim.Trace.states t))

let small_tree_gen =
  QCheck.Gen.(
    sized_size (int_range 2 5) (fun n ->
        let rec parents i acc =
          if i >= n then return (List.rev acc)
          else int_range 0 (i - 1) >>= fun p -> parents (i + 1) (p :: acc)
        in
        parents 1 [ 0 ] >>= fun ps -> return (Tree.of_parents (Array.of_list ps))))

let arbitrary_small_tree =
  QCheck.make small_tree_gen ~print:(fun t -> Format.asprintf "%a" Tree.pp t)

let prop_diffusing_certificate_valid_on_random_trees =
  QCheck.Test.make
    ~name:"Theorem 1 certificate valid for diffusing on random trees"
    ~count:10 arbitrary_small_tree (fun t ->
      let d = Protocols.Diffusing.make t in
      let engine = Explore.Engine.create (Protocols.Diffusing.env d) in
      Nonmask.Certify.ok (Protocols.Diffusing.certificate ~engine d))

let prop_atomic_certificate_and_convergence =
  QCheck.Test.make
    ~name:"atomic action certified and exhaustively convergent on random trees"
    ~count:8 arbitrary_small_tree (fun t ->
      QCheck.assume (Tree.size t <= 4);
      let a = Protocols.Atomic_action.make t in
      let engine = Explore.Engine.create (Protocols.Atomic_action.env a) in
      Nonmask.Certify.ok (Protocols.Atomic_action.certificate ~engine a)
      &&
      match
        Explore.Convergence.check_unfair engine
          (Guarded.Compile.program (Protocols.Atomic_action.program a))
          ~from:Explore.Engine.All
          ~target:(fun s -> Protocols.Atomic_action.invariant a s)
      with
      | Ok _ -> true
      | Error _ -> false)

let prop_variant_decreases_on_random_trees =
  QCheck.Test.make
    ~name:"rank variant decreases for diffusing on random trees" ~count:8
    arbitrary_small_tree (fun t ->
      let d = Protocols.Diffusing.make t in
      let engine = Explore.Engine.create (Protocols.Diffusing.env d) in
      match Nonmask.Variant.of_cgraph (Protocols.Diffusing.cgraph d) with
      | None -> false
      | Some v -> (
          match
            Nonmask.Variant.check ~engine ~spec:(Protocols.Diffusing.spec d)
              ~cgraph:(Protocols.Diffusing.cgraph d) v
          with
          | Ok () -> true
          | Error _ -> false))

let prop_space_roundtrip =
  QCheck.Test.make ~name:"space encode/decode roundtrip" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 2 4))
    (fun (nvars, dsize) ->
      let env = Env.create () in
      ignore (Env.fresh_family env "v" nvars (Domain.range 0 (dsize - 1)));
      let space = Space.create env in
      let ok = ref true in
      for id = 0 to Space.size space - 1 do
        if Space.encode space (Space.decode space id) <> id then ok := false
      done;
      !ok)

let prop_scc_component_ids_topological =
  QCheck.Test.make ~name:"scc component ids are topologically ordered"
    ~count:200
    QCheck.(pair (int_range 1 12) (list_of_size (QCheck.Gen.int_range 0 25) (pair small_nat small_nat)))
    (fun (n, raw_edges) ->
      let edges =
        List.map (fun (a, b) -> (a mod n, b mod n, ())) raw_edges
      in
      let g = Dgraph.Digraph.of_edges n edges in
      let scc = Dgraph.Scc.compute g in
      List.for_all
        (fun (e : _ Dgraph.Digraph.edge) ->
          let cs = scc.Dgraph.Scc.component.(e.src)
          and cd = scc.Dgraph.Scc.component.(e.dst) in
          cs <= cd)
        (Dgraph.Digraph.edges g))

let prop_scc_members_consistent =
  QCheck.Test.make ~name:"scc members match component assignment" ~count:200
    QCheck.(pair (int_range 1 12) (list_of_size (QCheck.Gen.int_range 0 25) (pair small_nat small_nat)))
    (fun (n, raw_edges) ->
      let edges = List.map (fun (a, b) -> (a mod n, b mod n, ())) raw_edges in
      let g = Dgraph.Digraph.of_edges n edges in
      let scc = Dgraph.Scc.compute g in
      let total =
        Array.fold_left (fun acc ms -> acc + List.length ms) 0 scc.Dgraph.Scc.members
      in
      total = n
      && Array.for_all
           (fun _ -> true)
           scc.Dgraph.Scc.members
      &&
      let ok = ref true in
      Array.iteri
        (fun comp ms ->
          List.iter
            (fun v -> if scc.Dgraph.Scc.component.(v) <> comp then ok := false)
            ms)
        scc.Dgraph.Scc.members;
      !ok)

let prop_ranks_increase_along_edges =
  QCheck.Test.make ~name:"paper ranks increase along non-self edges" ~count:200
    QCheck.(pair (int_range 1 10) (list_of_size (QCheck.Gen.int_range 0 15) (pair small_nat small_nat)))
    (fun (n, raw_edges) ->
      let edges = List.map (fun (a, b) -> (a mod n, b mod n, ())) raw_edges in
      let g = Dgraph.Digraph.of_edges n edges in
      match Dgraph.Topo.ranks g with
      | None -> QCheck.assume_fail ()
      | Some r ->
          List.for_all
            (fun (e : _ Dgraph.Digraph.edge) ->
              e.src = e.dst || r.(e.src) < r.(e.dst))
            (Dgraph.Digraph.edges g))

let prop_stats_percentiles_ordered =
  QCheck.Test.make ~name:"summary percentiles are ordered" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Sim.Stats.summarize (Array.of_list xs) in
      s.Sim.Stats.min <= s.Sim.Stats.p25
      && s.Sim.Stats.p25 <= s.Sim.Stats.median
      && s.Sim.Stats.median <= s.Sim.Stats.p75
      && s.Sim.Stats.p75 <= s.Sim.Stats.p90
      && s.Sim.Stats.p90 <= s.Sim.Stats.p99
      && s.Sim.Stats.p99 <= s.Sim.Stats.max)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:300
    QCheck.(pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = Prng.int g bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_simplify_num_sound;
      prop_simplify_bool_sound;
      prop_compile_num_agrees;
      prop_compile_bool_agrees;
      prop_reads_cover_dependencies;
      prop_tree_digraph_out_tree;
      prop_tree_depth_height;
      prop_diffusing_cgraph_out_tree;
      prop_diffusing_converges_by_simulation;
      prop_dijkstra_recovers_by_simulation;
      prop_dijkstra_one_privilege_stays;
      prop_diffusing_certificate_valid_on_random_trees;
      prop_atomic_certificate_and_convergence;
      prop_variant_decreases_on_random_trees;
      prop_space_roundtrip;
      prop_scc_component_ids_topological;
      prop_scc_members_consistent;
      prop_ranks_increase_along_edges;
      prop_stats_percentiles_ordered;
      prop_prng_int_bounds;
    ]
