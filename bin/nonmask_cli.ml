(* nonmask — command-line front end.

   Subcommands:
     list                         protocols and instances
     show     PROTO [opts]        print the program and constraint graph
     certify  PROTO [opts]        run the theorem validator; with
                                  --faults SPEC, certify nonmasking
                                  tolerance with a computed fault span
     tolerance PROTO [opts]       sweep fault budgets and report the
                                  tolerance frontier (span growth,
                                  verdicts, worst-case recovery, cliff),
                                  optionally with the adversarial bound
     check    PROTO [opts]        exhaustive convergence check
     simulate PROTO [opts]        fault-injection runs with statistics
     storm    PROTO [opts]        recovery under recurring faults
     fuzz     [opts]              differential fuzzing over generated models
     dot      PROTO [opts]        constraint graph in Graphviz DOT
     fmt      MODEL.nm [opts]     canonically format a model file
     export   MODEL.nm --tla|--dot   TLA+ module / dependency graph

   Protocols: diffusing, lowatomic, token-ring, dijkstra, xyz-good-tree,
   xyz-good-ordered, xyz-bad, atomic, naive-ring. Tree-based protocols take
   --tree SHAPE and --size N; ring-based take --nodes and -k. Every PROTO
   position also accepts a path to a .nm model-language file (shaped by
   repeatable --param NAME=INT overrides); see README "Model language".

   Exit codes (documented in the README, asserted by
   test/smoke_exit_codes.sh):
     0  success
     1  usage or instance-construction error (including corrupt or
        mismatched --resume snapshots)
     2  failed certificate or convergence verdict
     3  state space over the eager engine's budget (Space.Too_large);
        for fuzz: a surviving minimized counterexample
     4  lazy exploration over budget (Engine.Region_overflow)
     5  incomplete: a --deadline/--budget-* ceiling or SIGINT/SIGTERM
        stopped the run before a verdict; stderr carries one
        machine-readable "error: incomplete: {...}" line, and
        --checkpoint-out (check, certify --faults) holds a snapshot
        that --resume continues bit-identically *)

open Cmdliner

module Tree = Topology.Tree
module State = Guarded.State
module Compile = Guarded.Compile

(* A protocol instance, abstracted over what the CLI needs. Both
   built-in protocols and compiled .nm model files resolve to this. *)
type instance = {
  i_name : string;
  env : Guarded.Env.t;
  program : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
  legitimate : unit -> Guarded.State.t;
  certify : (engine:Explore.Engine.t -> Nonmask.Certify.t) option;
  cgraphs : Nonmask.Cgraph.t list;
  declared_fault : Sim.Fault.t option;
      (* the fault actions a .nm model declares, if any — the default
         fault class for certify/storm on that model *)
  declared_envs : Guarded.Action.t list;
      (* the environment actions a .nm model declares ([] for built-in
         protocols) — threaded into tolerance certification *)
}

let protocols =
  [
    "diffusing";
    "lowatomic";
    "token-ring";
    "dijkstra";
    "xyz-good-tree";
    "xyz-good-ordered";
    "xyz-bad";
    "atomic";
    "naive-ring";
    "reset";
    "spanning-tree";
  ]

let tree_of ~shape ~size ~seed =
  match shape with
  | "chain" -> Tree.chain size
  | "star" -> Tree.star size
  | "balanced" | "balanced-2" -> Tree.balanced ~arity:2 size
  | "balanced-3" -> Tree.balanced ~arity:3 size
  | "random" -> Tree.random (Prng.create seed) size
  | s -> failwith (Printf.sprintf "unknown tree shape %S" s)

let build_instance proto ~shape ~size ~nodes ~k ~seed =
  match proto with
  | "diffusing" ->
      let d = Protocols.Diffusing.make (tree_of ~shape ~size ~seed) in
      {
        i_name = Printf.sprintf "diffusing %s-%d" shape size;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Diffusing.env d;
        program = Protocols.Diffusing.combined d;
        invariant = (fun s -> Protocols.Diffusing.invariant d s);
        legitimate = (fun () -> Protocols.Diffusing.all_green d);
        certify = Some (fun ~engine -> Protocols.Diffusing.certificate ~engine d);
        cgraphs = [ Protocols.Diffusing.cgraph d ];
      }
  | "lowatomic" ->
      let d = Protocols.Diffusing_lowatomic.make (tree_of ~shape ~size ~seed) in
      {
        i_name = Printf.sprintf "lowatomic %s-%d" shape size;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Diffusing_lowatomic.env d;
        program = Protocols.Diffusing_lowatomic.program d;
        invariant = (fun s -> Protocols.Diffusing_lowatomic.invariant d s);
        legitimate = (fun () -> Protocols.Diffusing_lowatomic.all_green d);
        certify = None;
        cgraphs = [];
      }
  | "token-ring" ->
      let tr = Protocols.Token_ring.make ~nodes ~k in
      {
        i_name = Printf.sprintf "token-ring %d (K=%d)" nodes k;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Token_ring.env tr;
        program = Protocols.Token_ring.combined tr;
        invariant = (fun s -> Protocols.Token_ring.invariant tr s);
        legitimate = (fun () -> Protocols.Token_ring.all_zero tr);
        certify = Some (fun ~engine -> Protocols.Token_ring.certificate ~engine tr);
        cgraphs = Protocols.Token_ring.layers tr;
      }
  | "dijkstra" ->
      let dr = Protocols.Dijkstra_ring.make ~nodes ~k in
      {
        i_name = Printf.sprintf "dijkstra %d (K=%d)" nodes k;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Dijkstra_ring.env dr;
        program = Protocols.Dijkstra_ring.program dr;
        invariant = (fun s -> Protocols.Dijkstra_ring.invariant dr s);
        legitimate = (fun () -> Protocols.Dijkstra_ring.all_zero dr);
        certify = None;
        cgraphs = [];
      }
  | "xyz-good-tree" | "xyz-good-ordered" | "xyz-bad" ->
      let variant =
        match proto with
        | "xyz-good-tree" -> Protocols.Xyz_demo.Good_tree
        | "xyz-good-ordered" -> Protocols.Xyz_demo.Good_ordered
        | _ -> Protocols.Xyz_demo.Bad
      in
      let d = Protocols.Xyz_demo.make variant in
      {
        i_name = proto;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Xyz_demo.env d;
        program = Protocols.Xyz_demo.program d;
        invariant = (fun s -> Protocols.Xyz_demo.invariant d s);
        legitimate =
          (fun () ->
            State.of_list (Protocols.Xyz_demo.env d)
              [
                (Protocols.Xyz_demo.x d, 0);
                (Protocols.Xyz_demo.y d, 1);
                (Protocols.Xyz_demo.z d, 1);
              ]);
        certify = Some (fun ~engine -> Protocols.Xyz_demo.certificate ~engine d);
        cgraphs = [ Protocols.Xyz_demo.cgraph d ];
      }
  | "atomic" ->
      let a = Protocols.Atomic_action.make (tree_of ~shape ~size ~seed) in
      {
        i_name = Printf.sprintf "atomic %s-%d" shape size;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Atomic_action.env a;
        program = Protocols.Atomic_action.program a;
        invariant = (fun s -> Protocols.Atomic_action.invariant a s);
        legitimate =
          (fun () ->
            Protocols.Atomic_action.initial a
              ~decision:Protocols.Atomic_action.commit);
        certify =
          Some (fun ~engine -> Protocols.Atomic_action.certificate ~engine a);
        cgraphs = [ Protocols.Atomic_action.cgraph a ];
      }
  | "naive-ring" ->
      let nr = Protocols.Naive_ring.make ~nodes in
      {
        i_name = Printf.sprintf "naive-ring %d" nodes;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Naive_ring.env nr;
        program = Protocols.Naive_ring.program nr;
        invariant = (fun s -> Protocols.Naive_ring.invariant nr s);
        legitimate = (fun () -> Protocols.Naive_ring.one_token nr);
        certify = None;
        cgraphs = [];
      }
  | "reset" ->
      let r = Protocols.Reset.make (tree_of ~shape ~size ~seed) in
      {
        i_name = Printf.sprintf "reset %s-%d" shape size;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Reset.env r;
        program = Protocols.Reset.program r;
        invariant = (fun s -> Protocols.Reset.invariant r s);
        legitimate = (fun () -> Protocols.Reset.all_green r);
        certify = None;
        cgraphs = [];
      }
  | "spanning-tree" ->
      let g =
        match shape with
        | "cycle" -> Topology.Ugraph.cycle size
        | "grid" ->
            let side = max 2 (int_of_float (sqrt (float_of_int size))) in
            Topology.Ugraph.grid ~width:side ~height:side
        | "complete" -> Topology.Ugraph.complete size
        | "star" -> Topology.Ugraph.star size
        | "path" | "chain" -> Topology.Ugraph.path size
        | _ ->
            Topology.Ugraph.random_connected (Prng.create seed) size
              ~extra_edges:(size / 2)
      in
      let st = Protocols.Spanning_tree.make ~root:0 g in
      {
        i_name = Printf.sprintf "spanning-tree %s-%d" shape size;
        declared_fault = None;
        declared_envs = [];
        env = Protocols.Spanning_tree.env st;
        program = Protocols.Spanning_tree.program st;
        invariant = (fun s -> Protocols.Spanning_tree.invariant st s);
        legitimate = (fun () -> Protocols.Spanning_tree.bfs_state st);
        certify = None;
        cgraphs = [];
      }
  | p ->
      failwith
        (Printf.sprintf
           "unknown protocol %S; available: %s — or a path to a .nm model \
            file (see: nonmask list)"
           p
           (String.concat ", " protocols))

(* --- .nm model files --- *)

let is_model_path s = Filename.check_suffix s ".nm"

(* Every pipeline failure is a located Err.t; folding it into Failure
   routes it through the commands' shared error path (one message on
   stderr, exit 1) without an exception trace ever escaping. *)
let compile_model ~params path =
  try Lang.Driver.compile_file ~params path with
  | Lang.Err.Error e -> failwith (Lang.Err.to_string e)
  | Sys_error msg -> failwith msg

let parse_model_file path =
  try Lang.Driver.load_file path with
  | Lang.Err.Error e -> failwith (Lang.Err.to_string e)
  | Sys_error msg -> failwith msg

let nm_instance ~params path =
  let em = compile_model ~params path in
  let declared_fault =
    match em.Lang.Elab.fault_actions with
    | [] -> None
    | acts -> Some (Sim.Fault.of_actions "declared faults" ~burst:1 acts)
  in
  {
    i_name = em.Lang.Elab.name;
    env = em.Lang.Elab.env;
    program = em.Lang.Elab.program;
    invariant = em.Lang.Elab.invariant;
    legitimate = (fun () -> em.Lang.Elab.init);
    certify = None;
    cgraphs = [];
    declared_fault;
    declared_envs = em.Lang.Elab.env_actions;
  }

(* Model selection, shared by every verb: a PROTOCOL argument is either a
   built-in name (flags like --tree/--size/--nodes/-k shape it) or a path
   to a .nm model file (shaped by --param overrides instead). *)
let parse_param_overrides l =
  List.map
    (fun s ->
      match String.index_opt s '=' with
      | Some i -> (
          let name = String.sub s 0 i in
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt v with
          | Some n when name <> "" -> (name, n)
          | _ -> failwith (Printf.sprintf "bad --param %S (want NAME=INT)" s))
      | None -> failwith (Printf.sprintf "bad --param %S (want NAME=INT)" s))
    l

let load_instance proto ~shape ~size ~nodes ~k ~seed ~params =
  if is_model_path proto then
    nm_instance ~params:(parse_param_overrides params) proto
  else if params <> [] then
    failwith "--param only applies to .nm model files"
  else build_instance proto ~shape ~size ~nodes ~k ~seed

(* --- common options --- *)

let proto_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROTOCOL"
        ~doc:
          "A built-in protocol name (see $(b,nonmask list)), or a path to \
           a $(b,.nm) model file (anything ending in $(b,.nm)).")

let params_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "param" ] ~docv:"NAME=INT"
        ~doc:
          "Override a $(b,param) declared by a .nm model file (repeatable); \
           rejected for built-in protocols.")

let shape_arg =
  Arg.(value & opt string "balanced" & info [ "tree" ] ~docv:"SHAPE"
         ~doc:"Tree shape: chain, star, balanced, balanced-3, random.")

let size_arg =
  Arg.(value & opt int 7 & info [ "size" ] ~docv:"N" ~doc:"Tree size.")

let nodes_arg =
  Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Ring size.")

let k_arg =
  Arg.(value & opt int 6 & info [ "k" ] ~docv:"K" ~doc:"Counter modulus.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let backend_str = function
  | Explore.Engine.Eager -> "eager"
  | Explore.Engine.Lazy -> "lazy"
  | Explore.Engine.Parallel -> "parallel"

let backend_conv =
  let parse = function
    | "eager" -> Ok Explore.Engine.Eager
    | "lazy" -> Ok Explore.Engine.Lazy
    | "parallel" -> Ok Explore.Engine.Parallel
    | s ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown engine %S; valid values are eager, lazy, parallel" s))
  in
  let print ppf b = Format.pp_print_string ppf (backend_str b) in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(
    value
    & opt backend_conv Explore.Engine.Eager
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Exploration engine: $(b,eager) materializes the whole transition \
           system up front; $(b,lazy) generates successors on the fly and \
           only stores discovered states; $(b,parallel) is the lazy search \
           level-parallelized over $(b,--jobs) worker domains, with \
           bit-identical results.")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n ->
        Error
          (`Msg (Printf.sprintf "jobs must be a positive integer (got %d)" n))
    | None ->
        Error
          (`Msg (Printf.sprintf "jobs must be a positive integer (got %S)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv (Par.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the $(b,parallel) engine and for parallel \
           storm trials (default: the machine's recommended domain count). \
           Verdicts, spans, and statistics are bit-identical at any job \
           count.")

let max_states_arg =
  Arg.(
    value
    & opt int 2_000_000
    & info [ "max-states" ] ~docv:"N"
        ~doc:
          "State budget. The eager engine refuses spaces larger than this; \
           the lazy engine aborts once it has discovered this many states.")

let ball_arg =
  Arg.(
    value
    & opt int (-1)
    & info [ "ball" ] ~docv:"R"
        ~doc:
          "Check convergence from the states within Hamming distance $(docv) \
           of the legitimate state (at most $(docv) corrupted variables) \
           instead of from every state. Lets the lazy engine give verdicts \
           on spaces far beyond $(b,--max-states).")

let make_engine ~backend ~max_states ~jobs ?obs ?guard ?snapshots ?salt env =
  Explore.Engine.create ~backend ~max_states ~jobs ?obs ?guard ?snapshots
    ?salt env

(* --- graceful degradation: budgets, signals, checkpoints --- *)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget for the whole run. When it expires the run \
           stops cooperatively at the next wave/chunk boundary with a \
           partial verdict (exit 5) instead of being killed — and, with \
           $(b,--checkpoint-out), a resumable snapshot.")

let budget_states_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-states" ] ~docv:"N"
        ~doc:
          "Stop gracefully (exit 5) once the search has visited $(docv) \
           states. Unlike $(b,--max-states) — a hard cap that aborts with \
           exit 4 — this yields a partial verdict and, with \
           $(b,--checkpoint-out), a resumable snapshot.")

let budget_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-bytes" ] ~docv:"BYTES"
        ~doc:
          "Stop gracefully (exit 5) once the search's flat storage \
           (visited tables plus frontiers) exceeds $(docv) bytes.")

let checkpoint_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-out" ] ~docv:"FILE"
        ~doc:
          "When the run is interrupted (budget exhausted, SIGINT/SIGTERM), \
           write a versioned, checksummed snapshot of the exploration \
           wavefront to $(docv); $(b,--resume) $(docv) continues to a \
           verdict bit-identical to an uninterrupted run, on the lazy or \
           parallel engine at any $(b,--jobs) count. Opened up front, so \
           an unwritable path fails immediately; removed again when the \
           run completes without interruption.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Continue from a $(b,--checkpoint-out) snapshot. The model and \
           engine configuration must match the interrupted run (the \
           snapshot's config hash is verified; engine and job count may \
           differ); corrupt or mismatched snapshots exit 1.")

let trial_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "trial-timeout" ] ~docv:"SECS"
        ~doc:
          "Watchdog: abandon any single trial that runs longer than \
           $(docv) seconds and retry it (up to $(b,--trial-retries) \
           times), so one pathological trial cannot hang the sweep.")

let trial_retries_arg =
  Arg.(
    value
    & opt int 1
    & info [ "trial-retries" ] ~docv:"N"
        ~doc:"Extra attempts after a trial times out (default 1).")

let exit_incomplete = 5

(* First signal: request cooperative cancellation; the run stops at the
   next polling point, saves its checkpoint, flushes --trace-out and
   --metrics-out, and exits 5. Second signal: stop waiting and exit 5
   directly — the at_exit finalizers still flush the observability
   files, which a default signal death would lose. *)
let install_signal_handlers cancel =
  let handle name =
    Sys.Signal_handle
      (fun _ ->
        if Rt.Cancel.get cancel <> None then exit exit_incomplete
        else Rt.Cancel.request cancel (Rt.Cancel.Signal name))
  in
  List.iter
    (fun (s, name) ->
      try Sys.set_signal s (handle name) with Invalid_argument _ -> ())
    [ (Sys.sigint, "SIGINT"); (Sys.sigterm, "SIGTERM") ]

let make_guard ~deadline ~budget_states ~budget_bytes =
  let cancel = Rt.Cancel.create () in
  install_signal_handlers cancel;
  let budget =
    try
      Rt.Budget.make ?deadline_s:deadline ?max_states:budget_states
        ?max_bytes:budget_bytes ()
    with Invalid_argument msg -> failwith msg
  in
  Rt.Guard.create ~budget ~cancel ()

(* Probe --checkpoint-out for writability up front {e without}
   truncating: the file may already hold the snapshot being resumed, and
   Rt.Snapshot.save renames a complete temp file into place — so a prior
   snapshot survives until its replacement is durable, even if this run
   dies on a path that never saves one. An empty placeholder (the file
   did not exist) is removed again from at_exit, so on {e every} exit
   path a leftover --checkpoint-out file means "there is something to
   resume". *)
let prepare_checkpoint = function
  | None -> ()
  | Some file ->
      (try close_out (open_out_gen [ Open_wronly; Open_creat ] 0o644 file)
       with Sys_error msg ->
         failwith (Printf.sprintf "cannot open --checkpoint-out: %s" msg));
      at_exit (fun () ->
          if
            Sys.file_exists file
            && (try (Unix.stat file).Unix.st_size = 0
                with Unix.Unix_error _ -> false)
          then try Sys.remove file with Sys_error _ -> ())

(* A clean completion removes the checkpoint file — the empty
   placeholder, or the now-stale snapshot of the interrupted run we just
   resumed to completion; the at_exit finalizer above covers every other
   exit path. *)
let cleanup_checkpoint = function
  | Some file when Sys.file_exists file -> (
      try Sys.remove file with Sys_error _ -> ())
  | _ -> ()

let load_snapshot file =
  try Rt.Snapshot.load ~file with
  | Rt.Snapshot.Corrupt msg ->
      failwith (Printf.sprintf "cannot resume from %s: %s" file msg)
  | Sys_error msg -> failwith (Printf.sprintf "cannot resume: %s" msg)

(* The exit-5 path: save the checkpoint if one was captured, emit a final
   run.incomplete trace event, and print one machine-readable line on
   stderr (stdout may be discarded by scripts; the at_exit finalizers
   flush --trace-out/--metrics-out). *)
let report_incomplete ~obs ?checkpoint_out (it : Explore.Engine.interrupt) =
  let saved =
    match (checkpoint_out, it.Explore.Engine.snapshot) with
    | Some file, Some snap ->
        Rt.Snapshot.save snap ~file;
        Some file
    | _ -> None
  in
  let reason = Rt.Cancel.reason_label it.Explore.Engine.reason in
  if Obs.Ctx.enabled obs then
    Obs.Ctx.emit obs "run.incomplete"
      ([
         ("reason", Obs.Sink.S reason);
         ("states_seen", Obs.Sink.I it.Explore.Engine.states_seen);
         ("frontier_size", Obs.Sink.I it.Explore.Engine.frontier_size);
       ]
      @
      match saved with
      | Some f -> [ ("checkpoint", Obs.Sink.S f) ]
      | None -> []);
  Printf.eprintf "error: incomplete: %s\n"
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("reason", Obs.Json.Str reason);
            ("states_seen", Obs.Json.Int it.Explore.Engine.states_seen);
            ("frontier_size", Obs.Json.Int it.Explore.Engine.frontier_size);
            ( "checkpoint",
              match saved with
              | Some f -> Obs.Json.Str f
              | None -> Obs.Json.Null );
          ]));
  exit exit_incomplete

(* The reason a guard-governed Monte-Carlo sweep (storm, fuzz) went
   partial: the cancel token records what tripped first. *)
let guard_reason guard =
  match Rt.Guard.cancel guard with
  | Some c -> (
      match Rt.Cancel.get c with
      | Some r -> r
      | None -> Rt.Cancel.Deadline)
  | None -> Rt.Cancel.Deadline

(* --- observability flags (check / certify / storm) --- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL event trace to $(docv): one JSON object per line \
           (engine waves, fault-span layers, certificate phases, storm \
           trials; schema in the README). Event counts are identical at \
           any $(b,--jobs) count.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable metrics snapshot (counters, gauges, \
           histograms, elapsed wall-clock, peak RSS) as JSON to $(docv) \
           when the run finishes — including on a negative verdict.")

let progress_arg =
  Arg.(
    value
    & flag
    & info [ "progress" ]
        ~doc:
          "Report live progress on stderr (states/sec, frontier size, \
           depth, elapsed, peak RSS) roughly once per second, driven from \
           the exploration loop.")

(* The context plus a finalizer that writes [--metrics-out] and flushes
   the trace. The finalizer is registered [at_exit] so negative-verdict
   exits (code 2) and overflow exits (3/4) still produce their files;
   both output files are opened up front so an unwritable path fails
   fast with the documented usage exit code 1. *)
let obs_setup ~trace_out ~metrics_out ~progress ~meta =
  if trace_out = None && metrics_out = None && not progress then
    Obs.Ctx.disabled
  else begin
    let open_file flag file =
      try open_out file
      with Sys_error msg ->
        failwith (Printf.sprintf "cannot open %s %s: %s" flag file msg)
    in
    let trace_oc = Option.map (open_file "--trace-out") trace_out in
    let metrics_oc = Option.map (open_file "--metrics-out") metrics_out in
    let sink =
      match trace_oc with
      | None -> Obs.Sink.noop
      | Some oc -> Obs.Sink.jsonl oc
    in
    let progress =
      if progress then Some (Obs.Progress.create ()) else None
    in
    let obs = Obs.Ctx.create ~sink ?progress () in
    let finalized = ref false in
    at_exit (fun () ->
        if not !finalized then begin
          finalized := true;
          (match metrics_oc with
          | Some oc ->
              output_string oc
                (Obs.Json.to_string (Obs.Ctx.metrics_json obs ~extra:meta));
              output_char oc '\n';
              close_out oc
          | None -> ());
          Obs.Ctx.close obs
        end);
    obs
  end

let run_meta ~command ~instance ~engine ~jobs =
  [
    ("command", Obs.Json.Str command);
    ("instance", Obs.Json.Str instance);
    ("engine", Obs.Json.Str engine);
    ("jobs", Obs.Json.Int jobs);
    ("version", Obs.Json.Str Version_info.version);
  ]

let exit_verdict_failed = 2
let exit_too_large = 3
let exit_region_overflow = 4

(* Non-zero exits must say why on stderr, even though the verdict details
   go to stdout — scripts routinely discard stdout and keep stderr. *)
let fail_verdict what =
  Printf.eprintf "error: %s\n" what;
  exit exit_verdict_failed

let report_overflow i = function
  | Explore.Space.Too_large total ->
      Printf.eprintf
        "error: %s has ~%.3g states, over the budget; retry with --engine \
         lazy (and --ball R for huge spaces) or raise --max-states\n"
        i.i_name total;
      exit exit_too_large
  | Explore.Codec.Overflow { layout; bits; states } ->
      Printf.eprintf
        "error: %s has ~%.3g states, more than the %s state encoding can \
         address (%d bits needed); shrink the instance\n"
        i.i_name states layout bits;
      exit exit_too_large
  | Explore.Engine.Region_overflow n ->
      Printf.eprintf
        "error: %s: lazy exploration exceeded the budget after %d states; \
         raise --max-states or shrink --ball\n"
        i.i_name n;
      exit exit_region_overflow
  | e -> raise e

(* --faults SPEC: a fault class in action form. *)
let parse_fault_spec env spec =
  let bad () =
    failwith
      (Printf.sprintf "bad fault spec %S (corrupt | corrupt:k=N | scramble)"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ "corrupt" ] -> Sim.Fault.corrupt env ~k:1
  | [ "corrupt"; ks ] -> (
      match String.split_on_char '=' ks with
      | [ "k"; n ] -> (
          match int_of_string_opt n with
          | Some k when k > 0 -> Sim.Fault.corrupt env ~k
          | _ -> bad ())
      | _ -> bad ())
  | [ "scramble" ] -> Sim.Fault.scramble env
  | _ -> bad ()

let with_instance f proto shape size nodes k seed params =
  try
    let i = load_instance proto ~shape ~size ~nodes ~k ~seed ~params in
    f i seed;
    0
  with Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let instance_term f =
  Term.(
    const (with_instance f)
    $ proto_arg $ shape_arg $ size_arg $ nodes_arg $ k_arg $ seed_arg
    $ params_arg)

(* --- subcommands --- *)

let list_cmd =
  let run () =
    print_endline "protocols:";
    List.iter (fun p -> Printf.printf "  %s\n" p) protocols;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List available protocols")
    Term.(const run $ const ())

let show_cmd =
  let run i _seed =
    Format.printf "%a@." Guarded.Program.pp i.program;
    List.iteri
      (fun l g ->
        if List.length i.cgraphs > 1 then Format.printf "layer %d:@." l;
        Format.printf "%a@." Nonmask.Cgraph.pp g)
      i.cgraphs
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the program and its constraint graph(s)")
    (instance_term run)

let fault_spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault class in action form: $(b,corrupt) (one variable), \
           $(b,corrupt:k=N) (up to N variables), $(b,scramble) (every \
           variable). For $(b,certify) this switches from the theorem \
           validator to a nonmasking-tolerance certificate over the \
           computed fault span.")

let fault_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-budget" ] ~docv:"N"
        ~doc:
          "At most $(docv) fault steps per derivation when computing the \
           fault span (default: the fault's burst, e.g. N for \
           corrupt:k=N). Negative = unbounded — the recurring-fault span.")

let certify_cmd =
  let run proto shape size nodes k seed params backend max_states jobs
      fault_spec fault_budget ball trace_out metrics_out progress deadline
      budget_states budget_bytes checkpoint_out resume_file =
    try
      let i = load_instance proto ~shape ~size ~nodes ~k ~seed ~params in
      (* --faults wins; a .nm model's declared fault actions are the
         default fault class when the flag is absent. *)
      let fault_opt =
        match fault_spec with
        | Some spec -> Some (parse_fault_spec i.env spec)
        | None -> i.declared_fault
      in
      if (checkpoint_out <> None || resume_file <> None) && fault_opt = None
      then
        failwith
          "certify: --checkpoint-out/--resume require --faults (only the \
           computed fault span is checkpointable)";
      let obs =
        obs_setup ~trace_out ~metrics_out ~progress
          ~meta:
            (run_meta ~command:"certify" ~instance:i.i_name
               ~engine:(backend_str backend) ~jobs)
      in
      let guard = make_guard ~deadline ~budget_states ~budget_bytes in
      let handle_incomplete work =
        try work () with
        | Explore.Engine.Interrupted it ->
            report_incomplete ~obs ?checkpoint_out it
        | Rt.Cancel.Cancelled reason ->
            report_incomplete ~obs ?checkpoint_out
              { reason; states_seen = 0; frontier_size = 0; snapshot = None }
        | Rt.Snapshot.Corrupt msg ->
            failwith (Printf.sprintf "cannot resume: %s" msg)
      in
      (match fault_opt with
      | Some fault -> (
          let resume = Option.map load_snapshot resume_file in
          prepare_checkpoint checkpoint_out;
          let salt =
            Printf.sprintf "certify|%s|seed=%d|faults=%s|ball=%d" i.i_name
              seed fault.Sim.Fault.name ball
          in
          try
            handle_incomplete @@ fun () ->
            let engine =
              make_engine ~backend ~max_states ~jobs ~obs ~guard
                ~snapshots:(checkpoint_out <> None) ~salt i.env
            in
            let from =
              if ball < 0 then None
              else
                Some
                  (Explore.Engine.Seeds
                     (Explore.Engine.ball i.env ~center:(i.legitimate ())
                        ~radius:ball))
            in
            let budget =
              match fault_budget with
              | Some b when b < 0 -> None
              | Some b -> Some b
              | None -> Some (Sim.Fault.burst fault)
            in
            let cert =
              Nonmask.Certify.tolerance ~engine ~program:i.program
                ~faults:(Sim.Fault.actions fault) ~invariant:i.invariant
                ?from ?budget ?resume
                ~name:
                  (Printf.sprintf "%s under %s" i.i_name
                     fault.Sim.Fault.name)
                ()
            in
            cleanup_checkpoint checkpoint_out;
            Format.printf "%a@." Nonmask.Certify.pp_full cert;
            if not (Nonmask.Certify.ok cert) then
              fail_verdict
                (Printf.sprintf "%s: tolerance certificate failed" i.i_name)
          with e -> report_overflow i e)
      | None -> (
          match i.certify with
          | None ->
              Printf.printf
                "%s has no theorem certificate (validated by direct model \
                 checking; use `check`, or `certify --faults SPEC` for a \
                 tolerance certificate).\n"
                i.i_name
          | Some certify -> (
              try
                handle_incomplete @@ fun () ->
                let engine =
                  make_engine ~backend ~max_states ~jobs ~obs ~guard i.env
                in
                let cert = certify ~engine in
                Format.printf "%a@." Nonmask.Certify.pp_full cert;
                if not (Nonmask.Certify.ok cert) then
                  fail_verdict
                    (Printf.sprintf "%s: certificate failed" i.i_name)
              with e -> report_overflow i e)));
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Validate the design with the applicable theorem, or — with \
          $(b,--faults) — certify nonmasking tolerance over the computed \
          fault span (exhaustive)")
    Term.(
      const run $ proto_arg $ shape_arg $ size_arg $ nodes_arg $ k_arg
      $ seed_arg $ params_arg $ engine_arg $ max_states_arg $ jobs_arg
      $ fault_spec_arg $ fault_budget_arg $ ball_arg $ trace_out_arg
      $ metrics_out_arg $ progress_arg $ deadline_arg $ budget_states_arg
      $ budget_bytes_arg $ checkpoint_out_arg $ resume_arg)

(* tolerance: the quantified version of `certify --faults` — sweep the
   fault budget from 0 to --budget-max (or an explicit --budgets list),
   certify each point against its computed span, and report the
   tolerance frontier: span growth, verdicts, exact worst-case recovery,
   the first budget where certification flips (the cliff), and — with
   --adversary — the independent game-style upper bound. A completed
   sweep exits 0 whatever the verdicts are: the curve itself is the
   deliverable (points that fail certification are part of the
   frontier); an interrupted sweep exits 5 with every finished point
   already flushed to --report. *)
let budget_max_arg =
  Arg.(
    value
    & opt int 3
    & info [ "budget-max" ] ~docv:"B"
        ~doc:
          "Sweep fault budgets 0..$(docv) (rejected when negative). Each \
           budget bounds the fault steps per derivation when computing \
           that point's span.")

let budgets_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "budgets" ] ~docv:"LIST"
        ~doc:
          "Explicit comma-separated budget list (e.g. $(b,0,2,8)) instead \
           of 0..$(b,--budget-max).")

let adversary_arg =
  Arg.(
    value & flag
    & info [ "adversary" ]
        ~doc:
          "Also compute the adversarial-daemon bound per point: the exact \
           worst-case recovery steps over the span under a worst-case \
           scheduler, by a backward attractor — a sound upper bound that \
           dominates every storm-observed recovery time, validated \
           against the certificate's convergence bound.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write the frontier as JSONL to $(docv), one point object per \
           line, flushed as each point completes — an interrupted sweep \
           (exit 5) leaves the partial curve behind.")

let tolerance_point_json (p : Tol.Sweep.point) =
  Obs.Json.Obj
    ([
       ("budget", Obs.Json.Int p.Tol.Sweep.budget);
       ("span_states", Obs.Json.Int p.Tol.Sweep.span_states);
       ("span_roots", Obs.Json.Int p.Tol.Sweep.span_roots);
       ("max_depth", Obs.Json.Int p.Tol.Sweep.max_depth);
       ("certified", Obs.Json.Bool p.Tol.Sweep.certified);
       ( "worst_case",
         match p.Tol.Sweep.worst_case with
         | Some w -> Obs.Json.Int w
         | None -> Obs.Json.Null );
       ("reused", Obs.Json.Bool p.Tol.Sweep.reused);
     ]
    @
    match p.Tol.Sweep.adversary with
    | None -> []
    | Some r -> (
        match r.Tol.Adversary.verdict with
        | Tol.Adversary.Bounded w -> [ ("adversary_bound", Obs.Json.Int w) ]
        | Tol.Adversary.Unbounded _ ->
            [ ("adversary_bound", Obs.Json.Str "unbounded") ]))

let tolerance_cmd =
  let run proto shape size nodes k seed params backend max_states jobs
      fault_spec budget_max budgets_csv adversary report ball trace_out
      metrics_out progress deadline budget_states budget_bytes =
    try
      let i = load_instance proto ~shape ~size ~nodes ~k ~seed ~params in
      let fault =
        match (fault_spec, i.declared_fault) with
        | Some spec, _ -> parse_fault_spec i.env spec
        | None, Some f -> f
        | None, None -> parse_fault_spec i.env "corrupt:k=1"
      in
      let budgets =
        match budgets_csv with
        | Some csv ->
            List.map
              (fun s ->
                match int_of_string_opt (String.trim s) with
                | Some b when b >= 0 -> b
                | Some b ->
                    failwith
                      (Printf.sprintf "tolerance: negative budget %d" b)
                | None ->
                    failwith
                      (Printf.sprintf "tolerance: bad --budgets entry %S" s))
              (String.split_on_char ',' csv)
        | None ->
            if budget_max < 0 then
              failwith
                (Printf.sprintf "tolerance: --budget-max must be >= 0 (got %d)"
                   budget_max);
            Tol.Sweep.range ~max:budget_max
      in
      let report_oc =
        Option.map
          (fun file ->
            let oc =
              try open_out file
              with Sys_error msg ->
                failwith (Printf.sprintf "cannot open --report: %s" msg)
            in
            at_exit (fun () -> close_out_noerr oc);
            oc)
          report
      in
      let obs =
        obs_setup ~trace_out ~metrics_out ~progress
          ~meta:
            (run_meta ~command:"tolerance" ~instance:i.i_name
               ~engine:(backend_str backend) ~jobs)
      in
      let guard = make_guard ~deadline ~budget_states ~budget_bytes in
      (try
         let engine =
           make_engine ~backend ~max_states ~jobs ~obs ~guard i.env
         in
         let from =
           if ball < 0 then None
           else
             Some
               (Explore.Engine.Seeds
                  (Explore.Engine.ball i.env ~center:(i.legitimate ())
                     ~radius:ball))
         in
         let on_point p =
           match report_oc with
           | None -> ()
           | Some oc ->
               output_string oc
                 (Obs.Json.to_string (tolerance_point_json p));
               output_char oc '\n';
               flush oc
         in
         let frontier =
           Tol.Sweep.run ~engine ~program:i.program
             ~faults:(Sim.Fault.actions fault) ~envs:i.declared_envs
             ~invariant:i.invariant ?from ~budgets ~adversary ~on_point
             ~name:
               (Printf.sprintf "%s under %s" i.i_name fault.Sim.Fault.name)
             ()
         in
         Format.printf "%s under %s (%s engine):@.%a@." i.i_name
           fault.Sim.Fault.name
           (Explore.Engine.backend_name engine)
           Tol.Sweep.pp_frontier frontier
       with
       | Explore.Engine.Interrupted it -> report_incomplete ~obs it
       | Rt.Cancel.Cancelled reason ->
           report_incomplete ~obs
             { reason; states_seen = 0; frontier_size = 0; snapshot = None }
       | e -> report_overflow i e);
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "tolerance"
       ~doc:
         "Quantified tolerance: sweep fault budgets, certifying each \
          point over its computed span, and report the tolerance \
          frontier with its cliff (optionally with the exact adversarial \
          worst-case recovery bound)")
    Term.(
      const run $ proto_arg $ shape_arg $ size_arg $ nodes_arg $ k_arg
      $ seed_arg $ params_arg $ engine_arg $ max_states_arg $ jobs_arg
      $ fault_spec_arg $ budget_max_arg $ budgets_arg $ adversary_arg
      $ report_arg $ ball_arg $ trace_out_arg $ metrics_out_arg
      $ progress_arg $ deadline_arg $ budget_states_arg $ budget_bytes_arg)

let check_cmd =
  let run proto shape size nodes k seed params backend max_states jobs ball
      trace_out metrics_out progress deadline budget_states budget_bytes
      checkpoint_out resume_file =
    try
      let i = load_instance proto ~shape ~size ~nodes ~k ~seed ~params in
      let obs =
        obs_setup ~trace_out ~metrics_out ~progress
          ~meta:
            (run_meta ~command:"check" ~instance:i.i_name
               ~engine:(backend_str backend) ~jobs)
      in
      let guard =
        make_guard ~deadline ~budget_states ~budget_bytes
      in
      let resume = Option.map load_snapshot resume_file in
      prepare_checkpoint checkpoint_out;
      (* The salt excludes engine and jobs (checkpoints resume across
         both) but pins everything else that shapes the result. *)
      let salt =
        Printf.sprintf "check|%s|seed=%d|ball=%d" i.i_name seed ball
      in
      (try
         let engine =
           make_engine ~backend ~max_states ~jobs ~obs ~guard
             ~snapshots:(checkpoint_out <> None) ~salt i.env
         in
         let from, from_desc =
           if ball < 0 then (Explore.Engine.All, "every state")
           else
             ( Explore.Engine.Seeds
                 (Explore.Engine.ball i.env ~center:(i.legitimate ())
                    ~radius:ball),
               Printf.sprintf "every state within %d faults of legitimacy"
                 ball )
         in
         match
           Explore.Convergence.check_unfair ?resume engine
             (Compile.program i.program) ~from ~target:i.invariant
         with
         | Ok { region_states; explored; worst_case_steps } ->
             cleanup_checkpoint checkpoint_out;
             Printf.printf
               "%s (%s engine): converges from %s, even without fairness\n\
               \  explored: %d  outside invariant: %d  worst-case steps: %s\n"
               i.i_name
               (Explore.Engine.backend_name engine)
               from_desc explored region_states
               (match worst_case_steps with
               | Some w -> string_of_int w
               | None -> "-")
         | Error f ->
             cleanup_checkpoint checkpoint_out;
             Format.printf "%s: FAILS@.%a@." i.i_name
               (Explore.Convergence.pp_failure i.env)
               f;
             fail_verdict
               (Printf.sprintf "%s: convergence check failed" i.i_name)
       with
       | Explore.Engine.Interrupted it ->
           report_incomplete ~obs ?checkpoint_out it
       | Rt.Cancel.Cancelled reason ->
           report_incomplete ~obs ?checkpoint_out
             { reason; states_seen = 0; frontier_size = 0; snapshot = None }
       | Rt.Snapshot.Corrupt msg ->
           failwith (Printf.sprintf "cannot resume: %s" msg)
       | e -> report_overflow i e);
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check convergence exhaustively (or from a fault ball with \
          $(b,--ball))")
    Term.(
      const run $ proto_arg $ shape_arg $ size_arg $ nodes_arg $ k_arg
      $ seed_arg $ params_arg $ engine_arg $ max_states_arg $ jobs_arg
      $ ball_arg $ trace_out_arg $ metrics_out_arg $ progress_arg
      $ deadline_arg $ budget_states_arg $ budget_bytes_arg
      $ checkpoint_out_arg $ resume_arg)

let trials_arg =
  Arg.(value & opt int 500 & info [ "trials" ] ~docv:"T" ~doc:"Trial count.")

let faults_arg =
  Arg.(
    value
    & opt int 0
    & info [ "faults" ] ~docv:"K"
        ~doc:"Corrupt K variables per trial (0 = scramble everything).")

let simulate_cmd =
  let run i seed trials faults =
    let cp = Compile.program i.program in
    let fault =
      if faults = 0 then Sim.Fault.scramble i.env
      else Sim.Fault.corrupt i.env ~k:faults
    in
    let result =
      Sim.Experiment.convergence_trials ~rng:(Prng.create seed) ~trials
        ~daemon:(fun r -> Sim.Daemon.random r)
        ~prepare:(fun r ->
          let s = i.legitimate () in
          fault.Sim.Fault.inject r s;
          s)
        ~stop:i.invariant cp
    in
    Format.printf "%s under %s, %d trials: %a@." i.i_name
      fault.Sim.Fault.name trials Sim.Experiment.pp_result result
  in
  let wrapped proto shape size nodes k seed params trials faults =
    try
      let i = load_instance proto ~shape ~size ~nodes ~k ~seed ~params in
      run i seed trials faults;
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Fault-injection trials under a random daemon, with statistics")
    Term.(
      const wrapped $ proto_arg $ shape_arg $ size_arg $ nodes_arg $ k_arg
      $ seed_arg $ params_arg $ trials_arg $ faults_arg)

let rate_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "rate" ] ~docv:"P"
        ~doc:
          "Per-step probability that the fault injects again instead of a \
           program step executing.")

let max_steps_storm_arg =
  Arg.(
    value
    & opt int 100_000
    & info [ "max-steps" ] ~docv:"N" ~doc:"Step budget per trial.")

let make_watchdog ~trial_timeout ~trial_retries =
  match trial_timeout with
  | None -> None
  | Some t -> (
      try Some (Rt.Watchdog.make ~retries:trial_retries ~timeout_s:t ())
      with Invalid_argument msg -> failwith msg)

(* Storm and fuzz sweeps poll the guard between trials with no global
   state/byte counts to report, so --budget-states/--budget-bytes could
   never trip there: the flags are not accepted (cmdliner rejects them
   with a usage error); --deadline and the per-trial watchdog are the
   degradation knobs for trial sweeps. *)
let storm_cmd =
  let run proto shape size nodes k seed params trials fault_spec rate
      fault_budget max_steps jobs trace_out metrics_out progress deadline
      trial_timeout trial_retries =
    try
      let i = load_instance proto ~shape ~size ~nodes ~k ~seed ~params in
      let obs =
        obs_setup ~trace_out ~metrics_out ~progress
          ~meta:(run_meta ~command:"storm" ~instance:i.i_name ~engine:"-" ~jobs)
      in
      let guard =
        make_guard ~deadline ~budget_states:None ~budget_bytes:None
      in
      let watchdog = make_watchdog ~trial_timeout ~trial_retries in
      let cp = Compile.program i.program in
      let fault =
        match (fault_spec, i.declared_fault) with
        | Some spec, _ -> parse_fault_spec i.env spec
        | None, Some f -> f
        | None, None -> parse_fault_spec i.env "corrupt:k=1"
      in
      let fault_budget =
        match fault_budget with Some b when b >= 0 -> Some b | _ -> None
      in
      let result =
        Sim.Storm.trials ~max_steps ?fault_budget ~jobs ~obs ~guard ?watchdog
          ~rng:(Prng.create seed) ~trials
          ~daemon:(fun r -> Sim.Daemon.random r)
          ~prepare:(fun r ->
            let s = i.legitimate () in
            fault.Sim.Fault.inject r s;
            s)
          ~stop:i.invariant ~fault ~rate cp
      in
      Format.printf "%s: storm %s rate=%g, %d trials: %a@." i.i_name
        fault.Sim.Fault.name rate trials Sim.Storm.pp_result result;
      if result.Sim.Storm.skipped > 0 then
        report_incomplete ~obs
          {
            Explore.Engine.reason = guard_reason guard;
            states_seen = trials - result.Sim.Storm.skipped;
            frontier_size = result.Sim.Storm.skipped;
            snapshot = None;
          };
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Recovery under recurring faults: every step is either a fault \
          injection (probability $(b,--rate)) or a daemon-chosen program \
          step")
    Term.(
      const run $ proto_arg $ shape_arg $ size_arg $ nodes_arg $ k_arg
      $ seed_arg $ params_arg $ trials_arg $ fault_spec_arg $ rate_arg
      $ fault_budget_arg $ max_steps_storm_arg $ jobs_arg $ trace_out_arg
      $ metrics_out_arg $ progress_arg $ deadline_arg $ trial_timeout_arg
      $ trial_retries_arg)

let count_arg =
  Arg.(
    value
    & opt int 200
    & info [ "count" ] ~docv:"N" ~doc:"Number of generated models to try.")

let max_vars_arg =
  Arg.(
    value
    & opt int 4
    & info [ "max-vars" ] ~docv:"N"
        ~doc:
          "Largest variable count of a generated model (state spaces are \
           capped accordingly). Reproduction requires the same value the \
           counterexample was found with.")

let no_shrink_arg =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:"Report counterexamples as generated, without minimizing them.")

let exit_counterexample = 3

let corpus_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus-out" ] ~docv:"DIR"
        ~doc:
          "Write every failing trial's generated model to $(docv) as \
           replayable .nm source: trial-NNNN-seed-S.nm (original) and \
           trial-NNNN-seed-S-min.nm (shrunk minimum).")

let corpus_all_arg =
  Arg.(
    value & flag
    & info [ "corpus-all" ]
        ~doc:
          "With $(b,--corpus-out), also write the models of passing \
           trials.")

let fuzz_cmd =
  let run seed count max_vars jobs no_shrink corpus_out corpus_all trace_out
      metrics_out progress deadline trial_timeout trial_retries =
    try
      if max_vars < 2 then failwith "fuzz: --max-vars must be at least 2";
      if count < 0 then failwith "fuzz: --count must be non-negative";
      let obs =
        obs_setup ~trace_out ~metrics_out ~progress
          ~meta:
            (run_meta ~command:"fuzz"
               ~instance:(Printf.sprintf "seed=%d count=%d" seed count)
               ~engine:"all" ~jobs)
      in
      let guard =
        make_guard ~deadline ~budget_states:None ~budget_bytes:None
      in
      let watchdog = make_watchdog ~trial_timeout ~trial_retries in
      if corpus_all && corpus_out = None then
        failwith "fuzz: --corpus-all requires --corpus-out";
      let report =
        Gen.Fuzz.run
          ~gen_config:(Gen.Generate.with_max_vars max_vars)
          ~shrink:(not no_shrink) ~jobs ~obs ~guard ?watchdog
          ?corpus_out ~corpus_all ~seed ~count ()
      in
      Format.printf "%a@." Gen.Fuzz.pp_report report;
      if report.Gen.Fuzz.counterexamples <> [] then begin
        Printf.eprintf
          "error: fuzz found %d counterexample(s); reproduce with the seeds \
           above\n"
          (List.length report.Gen.Fuzz.counterexamples);
        exit exit_counterexample
      end;
      (* A counterexample outranks a partial sweep: exit 3 above wins.
         Watchdog-abandoned trials also leave the sample incomplete —
         but only a skip means the global guard tripped; a timeout-only
         sweep names the watchdog, not a budget. *)
      if report.Gen.Fuzz.skipped > 0 || report.Gen.Fuzz.timeouts <> [] then
        report_incomplete ~obs
          {
            Explore.Engine.reason =
              (if report.Gen.Fuzz.skipped > 0 then guard_reason guard
               else Rt.Cancel.Requested "trial-timeout");
            states_seen =
              count - report.Gen.Fuzz.skipped
              - List.length report.Gen.Fuzz.timeouts;
            frontier_size = report.Gen.Fuzz.skipped;
            snapshot = None;
          };
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random guarded programs and check \
          that all exploration backends, fault spans, certificates, and \
          storm simulations agree (exit 3 on a surviving minimized \
          counterexample)")
    Term.(
      const run $ seed_arg $ count_arg $ max_vars_arg $ jobs_arg
      $ no_shrink_arg $ corpus_out_arg $ corpus_all_arg $ trace_out_arg
      $ metrics_out_arg $ progress_arg $ deadline_arg $ trial_timeout_arg
      $ trial_retries_arg)

let dot_cmd =
  let run proto shape size nodes k seed params =
    try
      (if is_model_path proto then
         let em = compile_model ~params:(parse_param_overrides params) proto in
         print_string (Lang.Dot.render em)
       else
         let i = load_instance proto ~shape ~size ~nodes ~k ~seed ~params in
         match i.cgraphs with
         | [] -> failwith (Printf.sprintf "%s has no constraint graph" i.i_name)
         | gs -> List.iter (fun g -> print_string (Nonmask.Cgraph.to_dot g)) gs);
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the constraint graph(s) as Graphviz DOT")
    Term.(
      const run $ proto_arg $ shape_arg $ size_arg $ nodes_arg $ k_arg
      $ seed_arg $ params_arg)

(* --- model-language tooling: fmt and export --------------------------- *)

let model_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL.nm")

(* fmt --hash: the canonical content address the serve daemon keys its
   result cache on. A .nm file hashes its Pretty-canonical text with the
   final (default-filled) parameter values folded in — byte-for-byte the
   digest `nonmask serve` computes for the same model, so cache behavior
   is scriptable. A built-in protocol has no .nm text; it hashes a
   canonical instance rendering (the paper-style program listing plus
   the legitimate state), so two invocations agree iff the instance
   does. *)
let model_hash ~params ~shape ~size ~nodes ~k ~seed target =
  if is_model_path target then
    let em = compile_model ~params:(parse_param_overrides params) target in
    let ast = Lang.Driver.parse_string ~file:target (Lang.Source.read_file target).Lang.Source.text in
    Lang.Canon.with_params ~params:em.Lang.Elab.params
      (Lang.Canon.model_digest ast)
  else
    let i = load_instance target ~shape ~size ~nodes ~k ~seed ~params in
    let text =
      Printf.sprintf "%s\n%s\nlegitimate: %s\n" i.i_name
        (Guarded.Program.to_string i.program)
        (State.to_string i.env (i.legitimate ()))
    in
    Lang.Canon.digest_text text

let fmt_cmd =
  let run file write check hash shape size nodes k seed params =
    try
      if hash then begin
        if write || check then
          failwith "fmt: --hash conflicts with --write/--check";
        print_endline (model_hash ~params ~shape ~size ~nodes ~k ~seed file)
      end
      else begin
        if write && check then failwith "fmt: --write and --check conflict";
        if not (is_model_path file) then
          failwith
            (Printf.sprintf
               "fmt: %S is not a .nm file (built-in protocols are accepted \
                only with --hash)"
               file);
        let _src, ast = parse_model_file file in
        let formatted = Lang.Pretty.print ast in
        if check then begin
          let original =
            let ic = open_in_bin file in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          if original <> formatted then
            failwith
              (Printf.sprintf "fmt: %s is not canonically formatted" file)
        end
        else if write then begin
          let oc = open_out file in
          output_string oc formatted;
          close_out oc
        end
        else print_string formatted
      end;
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  let write_arg =
    Arg.(
      value & flag
      & info [ "write" ] ~doc:"Rewrite the file in place instead of printing.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit 1 if the file is not already in canonical form; print \
             nothing. The formatter is idempotent, so a formatted file \
             always passes.")
  in
  let hash_arg =
    Arg.(
      value & flag
      & info [ "hash" ]
          ~doc:
            "Print the canonical model digest (SHA-256 of the canonical \
             text, $(b,--param) overrides folded in) instead of the \
             formatted model — the content address $(b,nonmask serve) keys \
             its result cache on. Accepts a built-in protocol name as well \
             as a .nm file.")
  in
  Cmd.v
    (Cmd.info "fmt"
       ~doc:
         "Canonically format a .nm model file (or print its canonical \
          digest with $(b,--hash))")
    Term.(
      const run $ model_file_arg $ write_arg $ check_arg $ hash_arg
      $ shape_arg $ size_arg $ nodes_arg $ k_arg $ seed_arg $ params_arg)

let export_cmd =
  let run file params tla dot out =
    try
      let text =
        let em = compile_model ~params:(parse_param_overrides params) file in
        match (tla, dot) with
        | true, false -> Lang.Tla.render em
        | false, true -> Lang.Dot.render em
        | _ -> failwith "export: pass exactly one of --tla, --dot"
      in
      (match out with
      | None -> print_string text
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc);
      0
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  let tla_arg =
    Arg.(
      value & flag
      & info [ "tla" ]
          ~doc:
            "Emit a TLA+ module (Init/Next/Faults/Invariant) for TLC model \
             checking.")
  in
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Emit the constraint/read-write dependency graph as Graphviz \
             DOT.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a .nm model as TLA+ or Graphviz DOT")
    Term.(
      const run $ model_file_arg $ params_arg $ tla_arg $ dot_arg $ out_arg)

(* --- the checking service: serve and submit --------------------------- *)

let listen_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Address to listen on: a Unix socket path, or $(b,HOST:PORT) / \
           $(b,:PORT) for TCP (port 0 binds an ephemeral port, printed on \
           startup).")

let serve_cmd =
  let run listen jobs queue_cap cache_entries max_request_bytes artifacts
      default_deadline =
    try
      let address =
        match Serve.Client.parse_address listen with
        | Ok a -> a
        | Error msg -> failwith (Printf.sprintf "serve: %s" msg)
      in
      let config =
        {
          (Serve.Server.default_config ~address) with
          Serve.Server.jobs;
          queue_cap;
          cache_entries;
          max_request_bytes;
          artifacts_dir = artifacts;
          default_deadline;
        }
      in
      let server = Serve.Server.create config in
      Rt.Drain.install_signals (Serve.Server.drain_handle server);
      (match Serve.Server.address server with
      | `Unix path -> Printf.printf "nonmask serve: listening on %s\n%!" path
      | `Tcp (host, port) ->
          Printf.printf "nonmask serve: listening on %s:%d\n%!" host port);
      Serve.Server.run server;
      Printf.printf "nonmask serve: drained\n%!";
      0
    with
    | Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "error: serve: %s%s\n" (Unix.error_message e)
          (if arg = "" then "" else Printf.sprintf " (%s)" arg);
        1
  in
  let serve_jobs_arg =
    Arg.(
      value
      & opt jobs_conv (Par.Pool.default_jobs ())
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains of the one shared pool every job runs over \
             (default: the machine's recommended domain count).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Pending-job bound per client; further submissions are answered \
             with an in-protocol queue-full error.")
  in
  let cache_entries_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Result-cache capacity (LRU-evicted).")
  in
  let max_request_arg =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-request-bytes" ] ~docv:"BYTES"
          ~doc:
            "Largest accepted request line; longer lines are rejected \
             in-protocol without buffering them.")
  in
  let artifacts_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:
            "Write each executed job's JSONL trace to \
             $(docv)/job-NNNNNN-<digest>.jsonl (created if missing).")
  in
  let default_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget applied to every job that sets no deadline \
             of its own; expiry degrades the job to an in-protocol \
             incomplete (exit-5) result.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent checking service: newline-delimited JSON \
          requests (check/certify/storm/fuzz/ping/metrics) over a Unix or \
          TCP socket, one shared worker pool, content-addressed result \
          cache. First SIGTERM/SIGINT drains gracefully; a second cancels \
          in-flight work cooperatively.")
    Term.(
      const run $ listen_arg $ serve_jobs_arg $ queue_cap_arg
      $ cache_entries_arg $ max_request_arg $ artifacts_arg
      $ default_deadline_arg)

(* submit: one request over the wire, the reply on stdout, and the reply's
   in-protocol exit code as the process exit code — so scripts get the
   same exit contract from a daemon they get from the direct verbs. *)
let submit_cmd =
  let parse_opt_value v =
    match int_of_string_opt v with
    | Some n -> Obs.Json.Int n
    | None -> (
        match float_of_string_opt v with
        | Some f -> Obs.Json.Float f
        | None -> (
            match v with
            | "true" -> Obs.Json.Bool true
            | "false" -> Obs.Json.Bool false
            | s -> Obs.Json.Str s))
  in
  let run addr op model opts params id =
    try
      let address =
        match Serve.Client.parse_address addr with
        | Ok a -> a
        | Error msg -> failwith (Printf.sprintf "submit: %s" msg)
      in
      if Serve.Proto.op_of_name op = None then
        failwith
          (Printf.sprintf
             "submit: unknown op %S \
              (check|certify|tolerance|storm|fuzz|ping|metrics)"
             op);
      let model_field =
        match model with
        | None -> []
        | Some path ->
            let src = try Lang.Source.read_file path with Failure m -> failwith m in
            [ ("model", Obs.Json.Str src.Lang.Source.text) ]
      in
      let options =
        List.map
          (fun s ->
            match String.index_opt s '=' with
            | Some i when i > 0 ->
                ( String.sub s 0 i,
                  parse_opt_value
                    (String.sub s (i + 1) (String.length s - i - 1)) )
            | _ -> failwith (Printf.sprintf "bad --opt %S (want KEY=VALUE)" s))
          opts
      in
      let options =
        match parse_param_overrides params with
        | [] -> options
        | ps ->
            options
            @ [
                ( "params",
                  Obs.Json.Obj
                    (List.map (fun (n, v) -> (n, Obs.Json.Int v)) ps) );
              ]
      in
      let request =
        Obs.Json.Obj
          (("id", Obs.Json.Str id) :: ("op", Obs.Json.Str op) :: model_field
          @
          match options with
          | [] -> []
          | o -> [ ("options", Obs.Json.Obj o) ])
      in
      let client =
        match Serve.Client.connect address with
        | Ok c -> c
        | Error msg -> failwith (Printf.sprintf "submit: %s" msg)
      in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          match Serve.Client.request client request with
          | Error msg -> failwith (Printf.sprintf "submit: %s" msg)
          | Ok reply -> (
              print_endline (Obs.Json.to_string reply);
              match Obs.Json.member "ok" reply with
              | Some (Obs.Json.Bool true) -> (
                  match
                    Option.bind
                      (Option.bind
                         (Obs.Json.member "result" reply)
                         (Obs.Json.member "exit"))
                      Obs.Json.to_int
                  with
                  | Some code -> code
                  | None -> 0)
              | _ -> 1))
    with Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  let addr_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "to" ] ~docv:"ADDR"
          ~doc:"The daemon's address (Unix socket path or HOST:PORT).")
  in
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:"check | certify | tolerance | storm | fuzz | ping | metrics")
  in
  let submit_model_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"MODEL.nm"
          ~doc:"Model file to submit (required for check/certify/storm).")
  in
  let opt_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "opt" ] ~docv:"KEY=VALUE"
          ~doc:
            "A job option, repeatable: engine, max_states, ball, seed, \
             trials, rate, max_steps, faults, fault_budget, budget_max, \
             adversary, count, max_vars, deadline, budget_states, \
             budget_bytes.")
  in
  let id_arg =
    Arg.(
      value & opt string "cli"
      & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed in the reply.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one job to a running $(b,nonmask serve) daemon and print \
          the JSON reply; the process exit code is the reply's in-protocol \
          exit code.")
    Term.(
      const run $ addr_arg $ op_arg $ submit_model_arg $ opt_arg $ params_arg
      $ id_arg)

let main =
  let doc =
    "design and validation of nonmasking fault-tolerant programs \
     (Arora-Gouda-Varghese 1994)"
  in
  (* The version string is generated at build time from dune-project's
     (version ...); see the rule in bin/dune. *)
  Cmd.group
    (Cmd.info "nonmask" ~version:Version_info.version ~doc)
    [
      list_cmd; show_cmd; certify_cmd; tolerance_cmd; check_cmd;
      simulate_cmd; storm_cmd; fuzz_cmd; dot_cmd; fmt_cmd; export_cmd;
      serve_cmd; submit_cmd;
    ]

(* Fold cmdliner's own flag-validation failures (unknown --engine value,
   non-positive --jobs, ...) into the documented usage exit code 1
   instead of cmdliner's default 124; keep 125 for genuine crashes. *)
let () =
  exit
    (match Cmd.eval_value main with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Error (`Parse | `Term) -> 1
    | Error `Exn -> 125)
