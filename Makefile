.PHONY: all build test check smoke serve-smoke fuzz bench e19-smoke e20-smoke e21-smoke e22-smoke e23-smoke clean

all: build

build:
	dune build

test:
	dune runtest --force

# Full gate: build, test suite, a CLI smoke run with both engines, and a
# short differential fuzz run.
check: build test smoke fuzz

smoke:
	dune exec bin/nonmask_cli.exe -- check diffusing --nodes 7 --engine eager
	dune exec bin/nonmask_cli.exe -- check diffusing --nodes 7 --engine lazy
	dune exec bin/nonmask_cli.exe -- check diffusing --nodes 7 --engine parallel --jobs 2
	dune exec bin/nonmask_cli.exe -- check dijkstra --nodes 12 -k 13 --engine lazy --ball 2
	dune exec bin/nonmask_cli.exe -- check dijkstra --nodes 12 -k 13 --engine parallel --jobs 2 --ball 2
	dune exec bin/nonmask_cli.exe -- certify token-ring --nodes 4 -k 5 --engine lazy
	dune exec bin/nonmask_cli.exe -- certify token-ring --nodes 4 -k 5 --faults corrupt:k=1 --engine parallel --jobs 2
	dune exec bin/nonmask_cli.exe -- storm token-ring --nodes 5 -k 6 --rate 0.1 --trials 200 --jobs 2
	dune exec bin/nonmask_cli.exe -- tolerance token-ring --nodes 4 -k 5 --budget-max 2 --adversary
	dune exec bin/nonmask_cli.exe -- check token-ring --nodes 4 -k 4 --engine parallel --jobs 2 --trace-out /tmp/nonmask-smoke-trace.jsonl --metrics-out /tmp/nonmask-smoke-metrics.json --progress
	dune exec bin/nonmask_cli.exe -- fuzz --seed 42 --count 50 --jobs 2
	sh -c 'dune exec bin/nonmask_cli.exe -- check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 --budget-states 2000 --checkpoint-out /tmp/nonmask-smoke-ckpt.snap; [ $$? -eq 5 ]'
	dune exec bin/nonmask_cli.exe -- check dijkstra --nodes 12 -k 13 --engine lazy --ball 2 --resume /tmp/nonmask-smoke-ckpt.snap
	sh test/smoke_exit_codes.sh
	sh test/smoke_serve.sh

# Serve daemon smoke on its own: lifecycle over a Unix socket, cold
# check, cache hit on resubmission, in-protocol errors, SIGTERM drain.
serve-smoke: build
	sh test/smoke_serve.sh

# Differential fuzzing: random models through all three engine backends,
# fault spans, certificates, and storms, with counterexample shrinking.
# Override the knobs like: make fuzz FUZZ_SEED=7 FUZZ_COUNT=5000
FUZZ_SEED ?= 42
FUZZ_COUNT ?= 1000
FUZZ_JOBS ?= 2
fuzz:
	dune exec bin/nonmask_cli.exe -- fuzz --seed $(FUZZ_SEED) --count $(FUZZ_COUNT) --jobs $(FUZZ_JOBS)

bench:
	dune exec bench/main.exe

# Bounded large-state leg: the E19 flat-storage tier at 10^6 states
# (the full 10^8 tier is `dune exec bench/main.exe -- e19`).
e19-smoke:
	dune exec bench/main.exe -- e19-smoke --metrics-out bench-e19-metrics.json

# Bounded graceful-degradation leg: E20 checkpoint/resume fidelity and
# overhead at 10^6 states (the full 10^7 tier is
# `dune exec bench/main.exe -- e20`).
e20-smoke:
	dune exec bench/main.exe -- e20-smoke --metrics-out bench-e20-metrics.json

# Bounded model-language leg: E21 .nm compile throughput over 300
# generated models (the full 2000-model tier is
# `dune exec bench/main.exe -- e21`).
e21-smoke:
	dune exec bench/main.exe -- e21-smoke --metrics-out bench-e21-metrics.json

# Bounded serve-cache leg: E22 cold check vs cached resubmission at
# 65536 states (the full 10^6-state tier is
# `dune exec bench/main.exe -- e22`).
e22-smoke:
	dune exec bench/main.exe -- e22-smoke --metrics-out bench-e22-metrics.json

# Bounded quantified-tolerance leg: E23 frontier sweep with the
# adversarial bound vs storm observations on the 4-node token ring
# (the full 5-node tier is `dune exec bench/main.exe -- e23`).
e23-smoke:
	dune exec bench/main.exe -- e23-smoke --metrics-out bench-e23-metrics.json

clean:
	dune clean
