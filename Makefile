.PHONY: all build test check smoke bench clean

all: build

build:
	dune build

test:
	dune runtest --force

# Full gate: build, test suite, and a CLI smoke run with both engines.
check: build test smoke

smoke:
	dune exec bin/nonmask_cli.exe -- check diffusing --nodes 7 --engine eager
	dune exec bin/nonmask_cli.exe -- check diffusing --nodes 7 --engine lazy
	dune exec bin/nonmask_cli.exe -- check diffusing --nodes 7 --engine parallel --jobs 2
	dune exec bin/nonmask_cli.exe -- check dijkstra --nodes 12 -k 13 --engine lazy --ball 2
	dune exec bin/nonmask_cli.exe -- check dijkstra --nodes 12 -k 13 --engine parallel --jobs 2 --ball 2
	dune exec bin/nonmask_cli.exe -- certify token-ring --nodes 4 -k 5 --engine lazy
	dune exec bin/nonmask_cli.exe -- certify token-ring --nodes 4 -k 5 --faults corrupt:k=1 --engine parallel --jobs 2
	dune exec bin/nonmask_cli.exe -- storm token-ring --nodes 5 -k 6 --rate 0.1 --trials 200 --jobs 2
	dune exec bin/nonmask_cli.exe -- check token-ring --nodes 4 -k 4 --engine parallel --jobs 2 --trace-out /tmp/nonmask-smoke-trace.jsonl --metrics-out /tmp/nonmask-smoke-metrics.json --progress
	sh test/smoke_exit_codes.sh

bench:
	dune exec bench/main.exe

clean:
	dune clean
