(* Experiment harness: regenerates every table of EXPERIMENTS.md (E1-E19)
   and runs the bechamel microbenchmarks (micro / B1-B6).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe e1 e4     # selected experiments
     dune exec bench/main.exe micro     # microbenchmarks only
     dune exec bench/main.exe e14 --metrics-out bench.json
                                        # + machine-readable metrics

   The paper (an extended abstract) has no numbered tables or figures; the
   experiments below operationalize its claims — the mapping is recorded in
   DESIGN.md section 4 and EXPERIMENTS.md. All randomness is seeded: the
   output is reproducible bit for bit. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Tree = Topology.Tree
module Space = Explore.Space
module Tsys = Explore.Tsys
module Engine = Explore.Engine
module Convergence = Explore.Convergence
module Diffusing = Protocols.Diffusing
module Token_ring = Protocols.Token_ring
module Dijkstra_ring = Protocols.Dijkstra_ring
module Xyz_demo = Protocols.Xyz_demo
module Atomic = Protocols.Atomic_action
module Lowatomic = Protocols.Diffusing_lowatomic
module Naive_ring = Protocols.Naive_ring

let seed = 20260705

(* Shared timing and memory helpers on the Obs substrate (each experiment
   used to carry its own copy). Wall-clock, not CPU time: the parallel
   rows are meaningless under [Sys.time]. *)
let time f =
  let t0 = Obs.Ctx.now () in
  let r = f () in
  (r, (Obs.Ctx.now () -. t0) *. 1000.0)

let peak_rss_mb () =
  match Obs.Progress.peak_rss_kb () with
  | Some kb -> float_of_int kb /. 1024.
  | None -> nan

let summary_cells (r : Sim.Experiment.result) =
  match r.summary with
  | None -> [ "-"; "-"; "-"; Table.i r.failures ]
  | Some s ->
      [
        Table.f1 s.Sim.Stats.mean;
        Table.f1 s.Sim.Stats.p90;
        Table.f1 s.Sim.Stats.max;
        Table.i r.failures;
      ]

let scramble_trials ?(trials = 200) ~env ~program ~invariant ~legit () =
  let fault = Sim.Fault.scramble env in
  Sim.Experiment.convergence_trials ~rng:(Prng.create seed) ~trials
    ~daemon:(fun r -> Sim.Daemon.random r)
    ~prepare:(fun r ->
      let s = legit () in
      fault.Sim.Fault.inject r s;
      s)
    ~stop:invariant program

(* E1 — convergence of the diffusing computation across tree shapes and
   sizes (Theorem 1 / Section 5.1). *)
let e1 () =
  let shapes =
    [
      ("chain", fun n -> Tree.chain n);
      ("star", fun n -> Tree.star n);
      ("balanced-2", fun n -> Tree.balanced ~arity:2 n);
      ("random", fun n -> Tree.random (Prng.create (seed + n)) n);
    ]
  in
  let rows =
    List.concat_map
      (fun (shape, build) ->
        List.map
          (fun n ->
            let d = Diffusing.make (build n) in
            let r =
              scramble_trials ~env:(Diffusing.env d)
                ~program:(Compile.program (Diffusing.combined d))
                ~invariant:(fun s -> Diffusing.invariant d s)
                ~legit:(fun () -> Diffusing.all_green d)
                ()
            in
            shape :: Table.i n
            :: Table.i (Tree.height (Diffusing.tree d))
            :: summary_cells r)
          [ 7; 15; 31; 63 ])
      shapes
  in
  Table.print
    ~title:
      "E1: diffusing computation - recovery steps from full scramble \
       (random daemon, 200 trials)"
    ~header:[ "shape"; "N"; "height"; "mean"; "p90"; "max"; "fail" ]
    rows

(* E2 — Dijkstra's ring: stabilization steps vs ring size (Section 7.1). *)
let e2 () =
  let rows =
    List.map
      (fun n ->
        let dr = Dijkstra_ring.make ~nodes:n ~k:(n + 1) in
        let r =
          scramble_trials ~env:(Dijkstra_ring.env dr)
            ~program:(Compile.program (Dijkstra_ring.program dr))
            ~invariant:(fun s -> Dijkstra_ring.invariant dr s)
            ~legit:(fun () -> Dijkstra_ring.all_zero dr)
            ()
        in
        Table.i n :: Table.i (n + 1) :: summary_cells r)
      [ 4; 8; 16; 32; 64 ]
  in
  Table.print
    ~title:
      "E2: Dijkstra K-state token ring - stabilization steps from full \
       scramble (random daemon, 200 trials)"
    ~header:[ "nodes"; "K"; "mean"; "p90"; "max"; "fail" ]
    rows

(* E3 — recovery time vs fault severity: corrupt k processes of a 31-node
   diffusing computation (Section 3's fault-span view). *)
let e3 () =
  let d = Diffusing.make (Tree.balanced ~arity:2 31) in
  let cp = Compile.program (Diffusing.combined d) in
  let corrupt_nodes rr k s =
    let nodes = Prng.sample_without_replacement rr k 31 in
    Array.iter
      (fun j ->
        State.set s (Diffusing.color d j) (Prng.int rr 2);
        State.set s (Diffusing.session d j) (Prng.int rr 2))
      nodes
  in
  let rows =
    List.map
      (fun k ->
        let r =
          Sim.Experiment.convergence_trials ~rng:(Prng.create (seed + k))
            ~trials:200
            ~daemon:(fun rr -> Sim.Daemon.random rr)
            ~prepare:(fun rr ->
              let s = Diffusing.all_green d in
              corrupt_nodes rr k s;
              s)
            ~stop:(fun s -> Diffusing.invariant d s)
            cp
        in
        let violated_sample =
          let rr = Prng.create (seed + k) in
          let s = Diffusing.all_green d in
          corrupt_nodes rr k s;
          Diffusing.violated d s
        in
        Table.i k :: Table.i violated_sample :: summary_cells r)
      [ 1; 2; 4; 8; 16; 31 ]
  in
  Table.print
    ~title:
      "E3: diffusing computation (N=31) - recovery steps vs number of \
       corrupted processes (random daemon, 200 trials)"
    ~header:[ "corrupted"; "violated@0"; "mean"; "p90"; "max"; "fail" ]
    rows

(* E4 — daemon sensitivity (Section 2's computation model). *)
let e4 () =
  let daemons violated =
    [
      ("random", fun r -> Sim.Daemon.random r);
      ("round-robin", fun _ -> Sim.Daemon.round_robin ());
      ("first-enabled", fun _ -> Sim.Daemon.first_enabled);
      ("distributed", fun r -> Sim.Daemon.distributed r);
      ("adversarial", fun _ -> Sim.Daemon.greedy ~name:"adv" violated);
    ]
  in
  let rows_for name env program invariant legit violated =
    let fault = Sim.Fault.scramble env in
    List.map
      (fun (dname, daemon) ->
        let r =
          Sim.Experiment.convergence_trials ~rng:(Prng.create seed)
            ~trials:200 ~daemon
            ~prepare:(fun rr ->
              let s = legit () in
              fault.Sim.Fault.inject rr s;
              s)
            ~stop:invariant program
        in
        name :: dname :: summary_cells r)
      (daemons violated)
  in
  let d = Diffusing.make (Tree.balanced ~arity:2 15) in
  let dr = Dijkstra_ring.make ~nodes:8 ~k:9 in
  Table.print
    ~title:
      "E4: daemon sensitivity - recovery steps from full scramble (200 \
       trials)"
    ~header:[ "protocol"; "daemon"; "mean"; "p90"; "max"; "fail" ]
    (rows_for "diffusing-15" (Diffusing.env d)
       (Compile.program (Diffusing.combined d))
       (fun s -> Diffusing.invariant d s)
       (fun () -> Diffusing.all_green d)
       (fun s -> Diffusing.violated d s)
    @ rows_for "dijkstra-8" (Dijkstra_ring.env dr)
        (Compile.program (Dijkstra_ring.program dr))
        (fun s -> Dijkstra_ring.invariant dr s)
        (fun () -> Dijkstra_ring.all_zero dr)
        (fun s -> Dijkstra_ring.privilege_count dr s))

(* E5 — the theorem validators: every certificate obligation discharged
   exhaustively, plus the consequent checked directly. *)
let e5 () =
  let direct program invariant engine =
    match
      Convergence.check_unfair engine (Compile.program program)
        ~from:Engine.All ~target:invariant
    with
    | Ok { region_states; worst_case_steps; _ } ->
        Printf.sprintf "converges (region %d, worst %s)" region_states
          (match worst_case_steps with
          | Some w -> string_of_int w
          | None -> "-")
    | Error (Convergence.Deadlock _) -> "DEADLOCK"
    | Error (Convergence.Livelock _) -> "LIVELOCK"
  in
  let rows = ref [] in
  let add name theorem cert ms states verdict =
    rows :=
      [
        name;
        theorem;
        (if Nonmask.Certify.ok cert then "VALID" else "INVALID");
        Table.i (List.length cert.Nonmask.Certify.checks);
        Table.i states;
        Table.f1 ms;
        verdict;
      ]
      :: !rows
  in
  List.iter
    (fun (name, tree) ->
      let d = Diffusing.make tree in
      let engine = Engine.create (Diffusing.env d) in
      let cert, ms = time (fun () -> Diffusing.certificate ~engine d) in
      add name "Thm 1" cert ms (Space.size (Engine.space engine))
        (direct (Diffusing.combined d)
           (fun s -> Diffusing.invariant d s)
           engine))
    [
      ("diffusing chain-4", Tree.chain 4);
      ("diffusing star-5", Tree.star 5);
      ("diffusing bal-2-6", Tree.balanced ~arity:2 6);
    ];
  (let tr = Token_ring.make ~nodes:4 ~k:5 in
   let engine = Engine.create (Token_ring.env tr) in
   let states = Space.size (Engine.space engine) in
   let cert, ms = time (fun () -> Token_ring.certificate ~engine tr) in
   add "token ring 4,K=5" "Thm 3*" cert ms states
     (direct (Token_ring.combined tr)
        (fun s -> Token_ring.invariant tr s)
        engine);
   let cert2, ms2 =
     time (fun () -> Token_ring.certificate_strict ~engine tr)
   in
   add "token ring 4,K=5" "Thm 3 literal" cert2 ms2 states
     "(antecedent fails as expected)");
  List.iter
    (fun (name, variant) ->
      let d = Xyz_demo.make variant in
      let engine = Engine.create (Xyz_demo.env d) in
      let cert, ms = time (fun () -> Xyz_demo.certificate ~engine d) in
      let theorem =
        match variant with Xyz_demo.Good_tree -> "Thm 1" | _ -> "Thm 2"
      in
      add name theorem cert ms (Space.size (Engine.space engine))
        (direct (Xyz_demo.program d) (fun s -> Xyz_demo.invariant d s) engine))
    [
      ("xyz good-tree", Xyz_demo.Good_tree);
      ("xyz good-ordered", Xyz_demo.Good_ordered);
      ("xyz bad", Xyz_demo.Bad);
    ];
  (let a = Atomic.make (Tree.balanced ~arity:2 5) in
   let engine = Engine.create (Atomic.env a) in
   let cert, ms = time (fun () -> Atomic.certificate ~engine a) in
   add "atomic bal-2-5" "Thm 1" cert ms (Space.size (Engine.space engine))
     (direct (Atomic.program a) (fun s -> Atomic.invariant a s) engine));
  Table.print
    ~title:
      "E5: machine-checked certificates (Thm 3* = Theorem 3 modulo \
       invariant) and direct model-checked consequents"
    ~header:
      [ "instance"; "theorem"; "cert"; "checks"; "states"; "ms"; "direct check" ]
    (List.rev !rows)

(* E6 — the x/y/z example of Sections 4 and 6: good designs converge, the
   bad one livelocks. *)
let e6 () =
  let rows =
    List.map
      (fun (name, variant) ->
        let d = Xyz_demo.make variant in
        let engine = Engine.create (Xyz_demo.env d) in
        let cert = Xyz_demo.certificate ~engine d in
        let direct =
          match
            Convergence.check_unfair engine
              (Compile.program (Xyz_demo.program d))
              ~from:Engine.All
              ~target:(fun s -> Xyz_demo.invariant d s)
          with
          | Ok { worst_case_steps = Some w; _ } ->
              Printf.sprintf "converges (worst %d)" w
          | Ok _ -> "converges"
          | Error (Convergence.Livelock c) ->
              Printf.sprintf "LIVELOCK (cycle of %d)" (List.length c)
          | Error (Convergence.Deadlock _) -> "DEADLOCK"
        in
        let shape =
          Dgraph.Classify.shape_to_string
            (Nonmask.Cgraph.shape (Xyz_demo.cgraph d))
        in
        [
          name;
          shape;
          (if Nonmask.Certify.ok cert then "VALID" else "INVALID");
          direct;
        ])
      [
        ("good-tree (Sec 4)", Xyz_demo.Good_tree);
        ("good-ordered (Sec 6)", Xyz_demo.Good_ordered);
        ("bad (Sec 6)", Xyz_demo.Bad);
      ]
  in
  Table.print
    ~title:"E6: the x<>y / x<=z example - design choices decide convergence"
    ~header:[ "variant"; "graph"; "certificate"; "exhaustive check" ]
    rows

(* E7 — combined vs separate convergence actions (the design note at the
   end of Section 5.1). *)
let e7 () =
  let model_rows =
    List.map
      (fun (name, tree) ->
        let d = Diffusing.make tree in
        let engine = Engine.create (Diffusing.env d) in
        let worst program =
          match
            Convergence.check_unfair engine (Compile.program program)
              ~from:Engine.All
              ~target:(fun s -> Diffusing.invariant d s)
          with
          | Ok { worst_case_steps = Some w; _ } -> string_of_int w
          | Ok _ -> "-"
          | Error _ -> "FAIL"
        in
        [
          name;
          Table.i (Guarded.Program.action_count (Diffusing.combined d));
          Table.i (Guarded.Program.action_count (Diffusing.separate d));
          worst (Diffusing.combined d);
          worst (Diffusing.separate d);
        ])
      [
        ("chain-4", Tree.chain 4);
        ("star-5", Tree.star 5);
        ("bal-2-6", Tree.balanced ~arity:2 6);
      ]
  in
  Table.print
    ~title:
      "E7a: combined vs separate convergence actions - worst-case steps \
       (exhaustive)"
    ~header:[ "tree"; "acts(comb)"; "acts(sep)"; "worst(comb)"; "worst(sep)" ]
    model_rows;
  let sim_rows =
    List.concat_map
      (fun n ->
        let d = Diffusing.make (Tree.balanced ~arity:2 n) in
        let run program =
          scramble_trials ~env:(Diffusing.env d)
            ~program:(Compile.program program)
            ~invariant:(fun s -> Diffusing.invariant d s)
            ~legit:(fun () -> Diffusing.all_green d)
            ()
        in
        [
          "combined" :: Table.i n :: summary_cells (run (Diffusing.combined d));
          "separate" :: Table.i n :: summary_cells (run (Diffusing.separate d));
        ])
      [ 15; 31 ]
  in
  Table.print
    ~title:
      "E7b: combined vs separate - recovery steps from scramble (random \
       daemon, 200 trials)"
    ~header:[ "variant"; "N"; "mean"; "p90"; "max"; "fail" ]
    sim_rows

(* E8 — the concluding-remarks claim: the derived programs converge even
   without fairness. Checked exactly: no cycles and no deadlocks outside S
   under arbitrary (unfair) scheduling. *)
let e8 () =
  let verdict program invariant env =
    let engine = Engine.create env in
    match
      Convergence.check_unfair engine (Compile.program program)
        ~from:Engine.All ~target:invariant
    with
    | Ok { region_states; worst_case_steps = Some w; _ } ->
        [ "yes"; Table.i region_states; Table.i w ]
    | Ok { region_states; worst_case_steps = None; _ } ->
        [ "yes"; Table.i region_states; "-" ]
    | Error (Convergence.Deadlock _) -> [ "NO (deadlock)"; "-"; "-" ]
    | Error (Convergence.Livelock _) -> [ "NO (livelock)"; "-"; "-" ]
  in
  let rows =
    [
      (let d = Diffusing.make (Tree.chain 4) in
       "diffusing chain-4"
       :: verdict (Diffusing.combined d)
            (fun s -> Diffusing.invariant d s)
            (Diffusing.env d));
      (let d = Diffusing.make (Tree.balanced ~arity:2 6) in
       "diffusing bal-2-6"
       :: verdict (Diffusing.combined d)
            (fun s -> Diffusing.invariant d s)
            (Diffusing.env d));
      (let d = Lowatomic.make (Tree.balanced ~arity:2 5) in
       "low-atomicity bal-2-5"
       :: verdict (Lowatomic.program d)
            (fun s -> Lowatomic.invariant d s)
            (Lowatomic.env d));
      (let tr = Token_ring.make ~nodes:4 ~k:5 in
       "token ring 4,K=5"
       :: verdict (Token_ring.combined tr)
            (fun s -> Token_ring.invariant tr s)
            (Token_ring.env tr));
      (let dr = Dijkstra_ring.make ~nodes:5 ~k:6 in
       "dijkstra 5,K=6"
       :: verdict (Dijkstra_ring.program dr)
            (fun s -> Dijkstra_ring.invariant dr s)
            (Dijkstra_ring.env dr));
      (let a = Atomic.make (Tree.balanced ~arity:2 5) in
       "atomic bal-2-5"
       :: verdict (Atomic.program a)
            (fun s -> Atomic.invariant a s)
            (Atomic.env a));
      (let d = Xyz_demo.make Xyz_demo.Good_tree in
       "xyz good-tree"
       :: verdict (Xyz_demo.program d)
            (fun s -> Xyz_demo.invariant d s)
            (Xyz_demo.env d));
      (let d = Xyz_demo.make Xyz_demo.Good_ordered in
       "xyz good-ordered"
       :: verdict (Xyz_demo.program d)
            (fun s -> Xyz_demo.invariant d s)
            (Xyz_demo.env d));
    ]
  in
  Table.print
    ~title:
      "E8: convergence WITHOUT fairness (exact check: no unfair daemon can \
       prevent convergence)"
    ~header:[ "program"; "converges unfairly"; "region"; "worst steps" ]
    rows

(* E9 — the rank-derived variant function (concluding remarks): verified to
   decrease, and shown along a recovery run. *)
let e9 () =
  let rows =
    List.map
      (fun (name, spec, cgraph, env) ->
        match Nonmask.Variant.of_cgraph cgraph with
        | None -> [ name; "-"; "cyclic: no ranks"; "-" ]
        | Some v ->
            let engine = Engine.create env in
            let result =
              match Nonmask.Variant.check ~engine ~spec ~cgraph v with
              | Ok () -> "decreases (verified)"
              | Error f -> "FAILS at " ^ f.Nonmask.Variant.action
            in
            [
              name;
              Table.i (Nonmask.Variant.rank_count v);
              result;
              Table.i (Space.size (Engine.space engine));
            ])
      [
        (let d = Diffusing.make (Tree.chain 4) in
         ( "diffusing chain-4",
           Diffusing.spec d,
           Diffusing.cgraph d,
           Diffusing.env d ));
        (let d = Diffusing.make (Tree.star 5) in
         ( "diffusing star-5",
           Diffusing.spec d,
           Diffusing.cgraph d,
           Diffusing.env d ));
        (let d = Diffusing.make (Tree.balanced ~arity:2 6) in
         ( "diffusing bal-2-6",
           Diffusing.spec d,
           Diffusing.cgraph d,
           Diffusing.env d ));
        (let d = Xyz_demo.make Xyz_demo.Good_tree in
         ("xyz good-tree", Xyz_demo.spec d, Xyz_demo.cgraph d, Xyz_demo.env d));
        (let a = Atomic.make (Tree.balanced ~arity:2 5) in
         ("atomic bal-2-5", Atomic.spec a, Atomic.cgraph a, Atomic.env a));
      ]
  in
  Table.print
    ~title:
      "E9: variant functions synthesized from constraint-graph ranks \
       (convergence actions strictly decrease; closure actions never \
       increase)"
    ~header:[ "instance"; "ranks"; "exhaustive verification"; "states" ]
    rows;
  (* a sample trajectory: violations per rank along one recovery *)
  let d = Diffusing.make (Tree.chain 5) in
  match Nonmask.Variant.of_cgraph (Diffusing.cgraph d) with
  | None -> ()
  | Some v ->
      let rng = Prng.create seed in
      let s = Diffusing.all_green d in
      (Sim.Fault.scramble (Diffusing.env d)).Sim.Fault.inject rng s;
      let cp = Compile.program (Diffusing.separate d) in
      Printf.printf
        "E9 sample trajectory (diffusing chain-5, separate actions): \
         violations per rank, lexicographic\n";
      let state = ref s in
      let steps = ref 0 in
      let daemon = Sim.Daemon.random rng in
      let pp_value st =
        String.concat "; "
          (Array.to_list (Array.map string_of_int (Nonmask.Variant.value v st)))
      in
      while (not (Diffusing.invariant d !state)) && !steps < 30 do
        Printf.printf "  step %2d: [%s]\n" !steps (pp_value !state);
        let o =
          Sim.Runner.run ~max_steps:1 ~daemon ~init:!state
            ~stop:(fun _ -> false) cp
        in
        state := o.Sim.Runner.final;
        incr steps
      done;
      Printf.printf "  step %2d: [%s]  <- S holds\n" !steps (pp_value !state)

(* E10 — the baseline: a naive token ring without convergence actions does
   not self-stabilize. *)
let e10 () =
  let nr = Naive_ring.make ~nodes:5 in
  let dr = Dijkstra_ring.make ~nodes:5 ~k:6 in
  let check name program invariant env =
    let engine = Engine.create env in
    match
      Convergence.check_unfair engine (Compile.program program)
        ~from:Engine.All ~target:invariant
    with
    | Ok _ -> [ name; "stabilizes"; "-" ]
    | Error (Convergence.Deadlock s) ->
        [ name; "NO: deadlock"; State.to_string env s ]
    | Error (Convergence.Livelock c) ->
        [
          name;
          "NO: livelock";
          Printf.sprintf "cycle of %d states" (List.length c);
        ]
  in
  Table.print
    ~title:"E10a: the method matters - exhaustive verdicts on 5-node rings"
    ~header:[ "program"; "self-stabilizing?"; "witness" ]
    [
      check "naive ring" (Naive_ring.program nr)
        (fun s -> Naive_ring.invariant nr s)
        (Naive_ring.env nr);
      check "dijkstra ring" (Dijkstra_ring.program dr)
        (fun s -> Dijkstra_ring.invariant dr s)
        (Dijkstra_ring.env dr);
    ];
  (* Simulation: from a two-token state, random scheduling sometimes merges
     tokens by luck; an adversarial daemon never does; token loss is
     unrecoverable either way. *)
  let cp = Compile.program (Naive_ring.program nr) in
  let env = Naive_ring.env nr in
  let two_tokens () =
    let s = State.make env in
    State.set s (Naive_ring.token nr 0) 1;
    State.set s (Naive_ring.token nr 2) 1;
    s
  in
  let run daemon =
    let converged = ref 0 in
    let rng = Prng.create seed in
    for _ = 1 to 200 do
      let o =
        Sim.Runner.run ~max_steps:500 ~daemon:(daemon rng)
          ~init:(two_tokens ())
          ~stop:(fun s -> Naive_ring.invariant nr s)
          cp
      in
      if Sim.Runner.converged o then incr converged
    done;
    !converged
  in
  let random_merges = run (fun r -> Sim.Daemon.random r) in
  let adv_merges =
    run (fun _ ->
        Sim.Daemon.greedy ~name:"keep" (fun s -> Naive_ring.token_count nr s))
  in
  Table.print
    ~title:
      "E10b: naive ring from a two-token state - lucky merges vs adversary \
       (200 trials, 500-step budget)"
    ~header:[ "daemon"; "recovered"; "of" ]
    [
      [ "random"; Table.i random_merges; "200" ];
      [ "adversarial"; Table.i adv_merges; "200" ];
      [ "any (zero tokens)"; "0"; "200" ];
    ]

(* E11 — stabilizing BFS spanning trees on general networks: a protocol the
   paper's theorems do not cover (convergence actions read all neighbors),
   validated by the exhaustive checker and measured by simulation. *)
let e11 () =
  let exact_rows =
    List.map
      (fun (name, g) ->
        let st = Protocols.Spanning_tree.make ~root:0 g in
        let engine = Engine.create (Protocols.Spanning_tree.env st) in
        let verdict =
          match
            Convergence.check_unfair engine
              (Compile.program (Protocols.Spanning_tree.program st))
              ~from:Engine.All
              ~target:(fun s -> Protocols.Spanning_tree.invariant st s)
          with
          | Ok { worst_case_steps = Some w; _ } ->
              Printf.sprintf "converges (worst %d)" w
          | Ok _ -> "converges"
          | Error (Convergence.Deadlock _) -> "DEADLOCK"
          | Error (Convergence.Livelock _) -> "LIVELOCK"
        in
        [
          name;
          Table.i (Topology.Ugraph.size g);
          Table.i (Topology.Ugraph.edge_count g);
          Table.i (Space.size (Engine.space engine));
          verdict;
        ])
      [
        ("path-4", Topology.Ugraph.path 4);
        ("cycle-5", Topology.Ugraph.cycle 5);
        ("star-5", Topology.Ugraph.star 5);
        ("grid-2x3", Topology.Ugraph.grid ~width:2 ~height:3);
        ("complete-4", Topology.Ugraph.complete 4);
      ]
  in
  Table.print
    ~title:
      "E11a: BFS spanning tree - exhaustive convergence on small networks \
       (beyond the theorems' graph classes)"
    ~header:[ "network"; "nodes"; "edges"; "states"; "verdict" ]
    exact_rows;
  let sim_rows =
    List.map
      (fun (name, g) ->
        let st = Protocols.Spanning_tree.make ~root:0 g in
        let r =
          scramble_trials
            ~env:(Protocols.Spanning_tree.env st)
            ~program:(Compile.program (Protocols.Spanning_tree.program st))
            ~invariant:(fun s -> Protocols.Spanning_tree.invariant st s)
            ~legit:(fun () -> Protocols.Spanning_tree.bfs_state st)
            ()
        in
        (name :: Table.i (Topology.Ugraph.size g) :: summary_cells r))
      [
        ("grid-4x4", Topology.Ugraph.grid ~width:4 ~height:4);
        ("grid-6x6", Topology.Ugraph.grid ~width:6 ~height:6);
        ("cycle-32", Topology.Ugraph.cycle 32);
        ( "sparse-32",
          Topology.Ugraph.random_connected (Prng.create seed) 32
            ~extra_edges:8 );
        ( "dense-32",
          Topology.Ugraph.random_connected (Prng.create seed) 32
            ~extra_edges:64 );
      ]
  in
  Table.print
    ~title:
      "E11b: BFS spanning tree - recovery from scramble (random daemon, 200 \
       trials)"
    ~header:[ "network"; "nodes"; "mean"; "p90"; "max"; "fail" ]
    sim_rows

(* E12 — cross-validation: the analytic expected convergence time (absorbing
   Markov chain, value iteration) against the simulator's estimate. *)
let e12 () =
  let rows =
    List.map
      (fun (name, env, program, invariant) ->
        let space = Space.create env in
        let cp = Compile.program program in
        let tsys = Tsys.build cp space in
        let analytic =
          match
            Explore.Expected.mean_from tsys ~from:(fun _ -> true)
              ~target:invariant
          with
          | Ok m -> m
          | Error _ -> nan
        in
        (* simulate from uniformly random states *)
        let rng = Prng.create seed in
        let trials = 20_000 in
        let total = ref 0 in
        for _ = 1 to trials do
          let s = Space.decode space (Prng.int rng (Space.size space)) in
          let o =
            Sim.Runner.run ~daemon:(Sim.Daemon.random rng) ~init:s
              ~stop:invariant cp
          in
          total := !total + o.Sim.Runner.steps
        done;
        let simulated = float_of_int !total /. float_of_int trials in
        [
          name;
          Table.i (Space.size space);
          Printf.sprintf "%.4f" analytic;
          Printf.sprintf "%.4f" simulated;
          Printf.sprintf "%.2f%%"
            (100.0 *. abs_float (simulated -. analytic) /. analytic);
        ])
      [
        (let d = Diffusing.make (Tree.chain 4) in
         ( "diffusing chain-4",
           Diffusing.env d,
           Diffusing.combined d,
           fun s -> Diffusing.invariant d s ));
        (let dr = Dijkstra_ring.make ~nodes:4 ~k:5 in
         ( "dijkstra 4,K=5",
           Dijkstra_ring.env dr,
           Dijkstra_ring.program dr,
           fun s -> Dijkstra_ring.invariant dr s ));
        (let st = Protocols.Spanning_tree.make ~root:0 (Topology.Ugraph.cycle 4) in
         ( "spanning cycle-4",
           Protocols.Spanning_tree.env st,
           Protocols.Spanning_tree.program st,
           fun s -> Protocols.Spanning_tree.invariant st s ));
      ]
  in
  Table.print
    ~title:
      "E12: analytic expected recovery steps (absorbing Markov chain) vs \
       simulation (uniform random start, 20k trials)"
    ~header:[ "program"; "states"; "analytic"; "simulated"; "error" ]
    rows

(* E13 — the methodology beyond the three theorems: convergence stairs
   (Section 7), refinement checking (concluding remarks), and the
   distributed-reset application (the paper's citation [12]). *)
let e13 () =
  (* stairs: the token ring's own two-stage argument *)
  let tr = Token_ring.make ~nodes:4 ~k:5 in
  let engine = Engine.create (Token_ring.env tr) in
  let x = Token_ring.x tr in
  let first_conjunct =
    Guarded.Compile.pred
      (Guarded.Expr.conj
         (List.init 3 (fun j ->
              let vj = x j and vj1 = x (j + 1) in
              Guarded.Expr.(var vj >= var vj1))))
  in
  let stair =
    Nonmask.Stair.validate ~engine
      ~program:(Token_ring.combined tr)
      ~name:"token-ring (4 nodes, K=5)"
      [
        ("T", fun _ -> true);
        ("first-conjunct", first_conjunct);
        ("S", fun s -> Token_ring.invariant tr s);
      ]
  in
  Printf.printf "\n== E13a: convergence stair (Section 7) ==\n";
  Format.printf "%a@." Nonmask.Stair.pp stair;
  (* refinement: low-atomicity diffusing vs the original *)
  let tree = Tree.chain 3 in
  let d = Diffusing.make tree in
  let l = Lowatomic.make tree in
  let projection =
    List.concat_map
      (fun j ->
        [
          (Diffusing.color d j, Lowatomic.color l j);
          (Diffusing.session d j, Lowatomic.session l j);
        ])
      (Tree.nodes tree)
  in
  let run_refine ?within label =
    let r =
      Nonmask.Refine.check ?within
        ~abstract_env:(Diffusing.env d)
        ~engine:(Engine.create (Lowatomic.env l))
        ~abstract_program:(Diffusing.combined d)
        ~concrete_program:(Lowatomic.program l)
        ~projection
        ~abstract_invariant:(fun s -> Diffusing.invariant d s)
        ~concrete_invariant:(fun s -> Lowatomic.invariant l s)
        ()
    in
    Printf.printf "%s:\n  " label;
    Format.printf "%a@." Nonmask.Refine.pp r
  in
  Printf.printf "\n== E13b: refinement of the diffusing computation \
                 (concluding remarks) ==\n";
  run_refine "from arbitrary states (expected to fail)";
  run_refine
    ~within:(fun s -> Lowatomic.consistent l s)
    "within the closed scan-pointer consistency relation";
  let consistency_closed =
    match
      Explore.Closure.program_closed
        (Engine.create (Lowatomic.env l))
        (Compile.program (Lowatomic.program l))
        ~pred:(fun s -> Lowatomic.consistent l s)
    with
    | Ok () -> "closed (verified exhaustively)"
    | Error _ -> "NOT CLOSED"
  in
  Printf.printf "consistency relation: %s\n" consistency_closed;
  (* distributed reset: convergence + the reset guarantee *)
  Printf.printf "\n== E13c: distributed reset (the paper's citation [12]) ==\n";
  let r = Protocols.Reset.make (Tree.balanced ~arity:2 3) in
  let rspace = Space.create (Protocols.Reset.env r) in
  let cp = Compile.program (Protocols.Reset.program r) in
  (match
     Convergence.check_unfair
       (Engine.of_space rspace)
       cp ~from:Engine.All
       ~target:(fun s -> Protocols.Reset.invariant r s)
   with
  | Ok { region_states; worst_case_steps; _ } ->
      Printf.printf
        "reset layer converges (region %d, worst %s) - the application \
         variables do not disturb the wave\n"
        region_states
        (match worst_case_steps with Some w -> string_of_int w | None -> "-")
  | Error _ -> Printf.printf "reset layer FAILS\n");
  let violations = ref 0 and red_turns = ref 0 in
  let post = State.make (Protocols.Reset.env r) in
  Space.iter rspace (fun _ s ->
      Array.iter
        (fun (ca : Compile.action) ->
          if ca.Compile.enabled s then begin
            ca.Compile.apply_into s post;
            List.iter
              (fun j ->
                incr red_turns;
                if State.get post (Protocols.Reset.app r j) <> 0 then
                  incr violations)
              (Protocols.Reset.turns_red r ~pre:s ~post)
          end)
        cp.Compile.actions);
  Printf.printf
    "reset guarantee: %d/%d red-turning transitions zero the application \
     variable (checked over the whole space)\n"
    (!red_turns - !violations) !red_turns

(* E14 — eager vs lazy exploration engines. On spaces that fit under the
   eager cap both engines answer the same query, with different cost
   envelopes (the eager backend materializes the full CSR transition
   system; the lazy backend only ever touches the states it discovers).
   Past the cap only the lazy engine, seeded with a bounded-fault Hamming
   ball around the legitimate state, returns a verdict at all. *)
let e14 () =
  let backend_name = function
    | Engine.Eager -> "eager"
    | Engine.Lazy -> "lazy"
    | Engine.Parallel -> "parallel"
  in
  let row (name, states, env, cp, invariant, legit) ~backend ~radius =
    let from_desc, from =
      match radius with
      | None -> ("all", fun _ -> Engine.All)
      | Some r ->
          ( Printf.sprintf "ball-%d" r,
            fun () -> Engine.Seeds (Engine.ball env ~center:(legit ()) ~radius:r)
          )
    in
    (* flat-storage bytes per explored state; the eager backend's cost
       lives in the CSR relation, not a visited table, so its cell is "-" *)
    let bytes_cell engine explored =
      let b = Engine.storage_bytes engine in
      if b = 0 || explored = 0 then "-"
      else Printf.sprintf "%.1f" (float_of_int b /. float_of_int explored)
    in
    let outcome =
      match
        let engine = Engine.create ~backend env in
        let verdict, ms =
          time (fun () ->
              Convergence.check_unfair engine cp ~from:(from ())
                ~target:invariant)
        in
        (engine, verdict, ms)
      with
      | exception Space.Too_large _ -> [ "-"; "-"; "over eager cap"; "-"; "-" ]
      | exception Engine.Region_overflow n ->
          [ Table.i n; "-"; "over lazy budget"; "-"; "-" ]
      | engine, Ok { Convergence.region_states; explored; worst_case_steps }, ms
        ->
          [
            Table.i explored;
            Table.i region_states;
            (match worst_case_steps with
            | Some w -> Printf.sprintf "converges (worst %d)" w
            | None -> "converges");
            Table.f1 ms;
            bytes_cell engine explored;
          ]
      | _, Error (Convergence.Deadlock _), ms ->
          [ "-"; "-"; "DEADLOCK"; Table.f1 ms; "-" ]
      | _, Error (Convergence.Livelock _), ms ->
          [ "-"; "-"; "LIVELOCK"; Table.f1 ms; "-" ]
    in
    name :: states :: from_desc :: backend_name backend :: outcome
  in
  let diffusing n =
    let d = Diffusing.make (Tree.balanced ~arity:2 n) in
    ( Printf.sprintf "diffusing bal-2-%d" n,
      Printf.sprintf "4^%d" n,
      Diffusing.env d,
      Compile.program (Diffusing.combined d),
      (fun s -> Diffusing.invariant d s),
      fun () -> Diffusing.all_green d )
  in
  let dijkstra n =
    let dr = Dijkstra_ring.make ~nodes:n ~k:(n + 1) in
    ( Printf.sprintf "dijkstra %d,K=%d" n (n + 1),
      Printf.sprintf "%d^%d" (n + 1) n,
      Dijkstra_ring.env dr,
      Compile.program (Dijkstra_ring.program dr),
      (fun s -> Dijkstra_ring.invariant dr s),
      fun () -> Dijkstra_ring.all_zero dr )
  in
  let token_ring n k =
    let tr = Token_ring.make ~nodes:n ~k in
    ( Printf.sprintf "token-ring %d,K=%d" n k,
      Printf.sprintf "%d^%d" k n,
      Token_ring.env tr,
      Compile.program (Token_ring.combined tr),
      (fun s -> Token_ring.invariant tr s),
      fun () -> Token_ring.all_zero tr )
  in
  (* Fits under the cap: both engines, full sweep and ball roots. *)
  let moderate = [ diffusing 8; dijkstra 6; token_ring 6 7 ] in
  let huge = [ diffusing 15; dijkstra 12; token_ring 12 13 ] in
  let rows =
    List.concat_map
      (fun inst ->
        [
          row inst ~backend:Engine.Eager ~radius:None;
          row inst ~backend:Engine.Lazy ~radius:None;
          row inst ~backend:Engine.Eager ~radius:(Some 2);
          row inst ~backend:Engine.Lazy ~radius:(Some 2);
        ])
      moderate
    @ List.concat_map
        (fun inst ->
          [
            row inst ~backend:Engine.Eager ~radius:(Some 2);
            row inst ~backend:Engine.Lazy ~radius:(Some 2);
          ])
        huge
  in
  Table.print
    ~title:
      "E14: exploration engines - eager CSR vs lazy frontier (explored = \
       states visited, the peak-memory driver; ball-R = states within R \
       faults of legitimacy; B/state = flat visited-set + frontier bytes \
       per explored state)"
    ~header:
      [ "instance"; "space"; "roots"; "engine"; "explored"; "region";
        "verdict"; "ms"; "B/state" ]
    rows

(* micro — bechamel microbenchmarks of the substrate (B1-B6). *)
let micro () =
  let open Bechamel in
  let d = Diffusing.make (Tree.balanced ~arity:2 15) in
  (* the full invariant: a 14-way conjunction, where compilation pays *)
  let invariant_expr = Nonmask.Spec.invariant (Diffusing.spec d) in
  let compiled_guard = Guarded.Compile.pred invariant_expr in
  let guard_expr = invariant_expr in
  let legit = Diffusing.all_green d in
  let cp = Compile.program (Diffusing.combined d) in
  let small = Diffusing.make (Tree.chain 3) in
  let small_space = Space.create (Diffusing.env small) in
  let small_cp = Compile.program (Diffusing.combined small) in
  let dr = Dijkstra_ring.make ~nodes:16 ~k:17 in
  let dr_cp = Compile.program (Dijkstra_ring.program dr) in
  let scc_graph =
    let rng = Prng.create 1 in
    let n = 10_000 in
    let g = Dgraph.Digraph.create n in
    for _ = 1 to 30_000 do
      Dgraph.Digraph.add_edge g ~src:(Prng.int rng n) ~dst:(Prng.int rng n) ()
    done;
    g
  in
  let rng = Prng.create seed in
  let fault = Sim.Fault.scramble (Dijkstra_ring.env dr) in
  let tests =
    [
      Test.make ~name:"B1 invariant eval (interpreted)"
        (Staged.stage (fun () -> Guarded.Expr.eval legit guard_expr));
      Test.make ~name:"B1 invariant eval (compiled)"
        (Staged.stage (fun () -> compiled_guard legit));
      Test.make ~name:"B2 action apply (compiled)"
        (Staged.stage
           (let post = State.copy legit in
            let act = cp.Compile.actions.(0) in
            fun () -> act.Compile.apply_into legit post));
      Test.make ~name:"B3 state-space enumeration (4^3)"
        (Staged.stage (fun () -> Space.iter small_space (fun _ _ -> ())));
      Test.make ~name:"B4 transition system build (4^3)"
        (Staged.stage (fun () -> Tsys.build small_cp small_space));
      Test.make ~name:"B5 convergence check (4^3)"
        (Staged.stage
           (let engine = Engine.of_space small_space in
            fun () ->
              Convergence.check_unfair engine small_cp ~from:Engine.All
                ~target:(fun s -> Diffusing.invariant small s)));
      Test.make ~name:"B5 scc (10k nodes, 30k edges)"
        (Staged.stage (fun () -> Dgraph.Scc.compute scc_graph));
      Test.make ~name:"B6 full recovery run (dijkstra-16)"
        (Staged.stage (fun () ->
             let s = Dijkstra_ring.all_zero dr in
             fault.Sim.Fault.inject rng s;
             Sim.Runner.run
               ~daemon:(Sim.Daemon.random rng)
               ~init:s
               ~stop:(fun st -> Dijkstra_ring.invariant dr st)
               dr_cp));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"micro" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ t ] ->
          let cell =
            if t > 1_000_000.0 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else if t > 1_000.0 then Printf.sprintf "%.3f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
          in
          rows := [ name; cell ] :: !rows
      | _ -> rows := [ name; "?" ] :: !rows)
    results;
  Table.print ~title:"microbenchmarks (bechamel, monotonic clock)"
    ~header:[ "benchmark"; "time/op" ]
    (List.sort compare !rows)

(* E15 — hand-written vs computed fault spans, and recovery under fault
   storms. The paper supplies the fault span T by hand; for stabilizing
   programs that is T = true, i.e. the whole state space. Faultspan instead
   computes T exactly as the closure of S under program ∪ fault actions.
   Under bounded corruption the computed span is a small fraction of the
   hand-written one, and the tolerance certificate (span + closure +
   convergence + recurrence) is discharged over just that region. *)
let e15 () =
  let row name env program invariant =
    let engine = Engine.create env in
    let space_n = Space.size (Engine.space engine) in
    let fault = Sim.Fault.corrupt env ~k:1 in
    let faults = Sim.Fault.actions fault in
    let fp =
      Compile.program (Guarded.Program.make ~name:"faults" env faults)
    in
    let cp = Compile.program program in
    let (span, cert), ms =
      time (fun () ->
          let span =
            Explore.Faultspan.compute engine ~program:cp ~budget:1 ~faults:fp
              ~from:(Engine.Pred invariant) ()
          in
          let cert =
            Nonmask.Certify.tolerance ~engine ~program ~faults ~invariant
              ~budget:1 ~name ()
          in
          (span, cert))
    in
    let t = Explore.Faultspan.count span in
    [
      name;
      Table.i space_n;
      Table.i (Explore.Faultspan.root_count span);
      Table.i t;
      Printf.sprintf "%.1f%%" (100.0 *. float_of_int t /. float_of_int space_n);
      (if Nonmask.Certify.ok cert then "VALID" else "INVALID");
      Table.f1 ms;
    ]
  in
  let tr = Token_ring.make ~nodes:4 ~k:5 in
  let st = Protocols.Spanning_tree.make ~root:0 (Topology.Ugraph.cycle 5) in
  let d = Diffusing.make (Tree.balanced ~arity:2 7) in
  let r = Protocols.Reset.make (Tree.balanced ~arity:2 4) in
  Table.print
    ~title:
      "E15: hand-written span (stabilizing default T = true, i.e. the whole \
       space) vs computed span under corrupt:k=1 (one fault step), with the \
       tolerance certificate discharged over the computed T"
    ~header:
      [ "instance"; "hand |T|"; "|S|"; "computed |T|"; "of space";
        "tolerance"; "ms" ]
    [
      row "token-ring 4,K=5" (Token_ring.env tr) (Token_ring.combined tr)
        (fun s -> Token_ring.invariant tr s);
      row "spanning-tree cycle-5"
        (Protocols.Spanning_tree.env st)
        (Protocols.Spanning_tree.program st)
        (fun s -> Protocols.Spanning_tree.invariant st s);
      row "diffusing bal-2-7" (Diffusing.env d) (Diffusing.combined d)
        (fun s -> Diffusing.invariant d s);
      row "reset bal-2-4" (Protocols.Reset.env r) (Protocols.Reset.program r)
        (fun s -> Protocols.Reset.invariant r s);
    ];
  (* Storms: stabilization of the token ring while faults keep arriving at
     increasing rates. At rate 0 this is an ordinary convergence experiment;
     the fault-sustained livelock in the certificate's recurrence check shows
     up statistically as a heavier tail and outright failures. *)
  let tr5 = Token_ring.make ~nodes:5 ~k:6 in
  let env = Token_ring.env tr5 in
  let cp = Compile.program (Token_ring.combined tr5) in
  let fault = Sim.Fault.scramble env in
  let storm_row rate =
    let res =
      Sim.Storm.trials ~max_steps:5_000 ~rng:(Prng.create seed) ~trials:300
        ~daemon:(fun rng -> Sim.Daemon.random rng)
        ~prepare:(fun rng ->
          let s = Token_ring.all_zero tr5 in
          fault.Sim.Fault.inject rng s;
          s)
        ~stop:(fun s -> Token_ring.invariant tr5 s)
        ~fault ~rate cp
    in
    let faults_per_trial =
      float_of_int (Array.fold_left ( + ) 0 res.Sim.Storm.fault_counts)
      /. float_of_int (Array.length res.Sim.Storm.fault_counts)
    in
    Printf.sprintf "%.2f" rate
    :: (match res.Sim.Storm.summary with
       | None -> [ "-"; "-"; "-"; "-" ]
       | Some s ->
           [
             Table.f1 s.Sim.Stats.median;
             Table.f1 s.Sim.Stats.p90;
             Table.f1 s.Sim.Stats.p99;
             Table.f1 s.Sim.Stats.max;
           ])
    @ [ Table.i res.Sim.Storm.failures; Table.f1 faults_per_trial ]
  in
  Table.print
    ~title:
      "E15 (cont.): token-ring 5,K=6 stabilization under fault storms \
       (scramble at per-step rate; 300 trials, budget 5000 steps)"
    ~header:
      [ "rate"; "median"; "p90"; "p99"; "max"; "failures"; "faults/trial" ]
    (List.map storm_row [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.4 ])

(* E16 — multicore scaling of the parallel subsystem. The parallel engine
   backend runs the lazy search level-synchronized over a Par.Pool of
   worker domains; parallel storm trials spread independent trials over the
   same pool. The contract measured here is twofold: results must be
   bit-identical to the sequential backends at every job count (the
   "verdict" column), and wall-clock should drop with jobs on multicore
   hardware (the "speedup" column — on a single-core container it stays
   ~1x, the scheduling overhead being the price of the level barriers).
   Peak RSS is VmHWM from /proc/self/status, which is monotone over the
   process: later rows inherit earlier rows' peak. *)
let e16 () =
  let job_counts = [ 1; 2; 4; 8 ] in
  let verdict_sig = function
    | Ok { Convergence.region_states; explored; worst_case_steps } ->
        Printf.sprintf "ok/%d/%d/%s" region_states explored
          (match worst_case_steps with
          | Some w -> string_of_int w
          | None -> "-")
    | Error (Convergence.Deadlock _) -> "deadlock"
    | Error (Convergence.Livelock _) -> "livelock"
  in
  let bytes_cell engine = function
    | Ok { Convergence.explored; _ } when explored > 0 ->
        let b = Engine.storage_bytes engine in
        if b = 0 then "-"
        else Printf.sprintf "%.1f" (float_of_int b /. float_of_int explored)
    | _ -> "-"
  in
  let instance_rows (name, env, cp, invariant) =
    let check backend jobs =
      let engine = Engine.create ~backend ~jobs env in
      let verdict =
        Convergence.check_unfair engine cp ~from:Engine.All ~target:invariant
      in
      (engine, verdict)
    in
    let (seq_eng, seq), seq_ms = time (fun () -> check Engine.Lazy 1) in
    let seq_sig = verdict_sig seq in
    (* bind the baseline row now: [::] evaluates right to left, and the
       rss cell must be sampled before the parallel runs move the peak *)
    let base_row =
      [ name; "lazy"; "-"; Table.f1 seq_ms; "1.00"; "baseline";
        Table.f1 (peak_rss_mb ()); bytes_cell seq_eng seq ]
    in
    (base_row
    :: List.map
         (fun jobs ->
           let (par_eng, par), ms = time (fun () -> check Engine.Parallel jobs) in
           [
             name;
             "parallel";
             string_of_int jobs;
             Table.f1 ms;
             Printf.sprintf "%.2f" (seq_ms /. ms);
             (if verdict_sig par = seq_sig then "= lazy" else "DIFFERS");
             Table.f1 (peak_rss_mb ());
             bytes_cell par_eng par;
           ])
         job_counts)
  in
  let d = Diffusing.make (Tree.balanced ~arity:2 8) in
  let tr = Token_ring.make ~nodes:6 ~k:7 in
  let dr = Dijkstra_ring.make ~nodes:6 ~k:7 in
  let st = Protocols.Spanning_tree.make ~root:0 (Topology.Ugraph.cycle 5) in
  let instances =
    [
      ( "diffusing bal-2-8",
        Diffusing.env d,
        Compile.program (Diffusing.combined d),
        fun s -> Diffusing.invariant d s );
      ( "token-ring 6,K=7",
        Token_ring.env tr,
        Compile.program (Token_ring.combined tr),
        fun s -> Token_ring.invariant tr s );
      ( "dijkstra 6,K=7",
        Dijkstra_ring.env dr,
        Compile.program (Dijkstra_ring.program dr),
        fun s -> Dijkstra_ring.invariant dr s );
      ( "spanning-tree cycle-5",
        Protocols.Spanning_tree.env st,
        Compile.program (Protocols.Spanning_tree.program st),
        fun s -> Protocols.Spanning_tree.invariant st s );
    ]
  in
  Table.print
    ~title:
      "E16: parallel engine scaling - full convergence check per job count \
       (verdict asserts bit-identical stats vs the sequential lazy backend; \
       peak-rss MB is the process high-water mark, monotone across rows; \
       B/state = flat visited + frontier bytes per explored state)"
    ~header:
      [ "instance"; "engine"; "jobs"; "ms"; "speedup"; "verdict"; "rss MB";
        "B/state" ]
    (List.concat_map instance_rows instances);
  (* Storm trials over the same pool: independent trials, pre-split PRNG
     streams, so the statistics must agree exactly at every job count. *)
  let tr5 = Token_ring.make ~nodes:5 ~k:6 in
  let env = Token_ring.env tr5 in
  let cp = Compile.program (Token_ring.combined tr5) in
  let fault = Sim.Fault.scramble env in
  let storm jobs =
    Sim.Storm.trials ~max_steps:5_000 ~jobs ~rng:(Prng.create seed)
      ~trials:400
      ~daemon:(fun rng -> Sim.Daemon.random rng)
      ~prepare:(fun rng ->
        let s = Token_ring.all_zero tr5 in
        fault.Sim.Fault.inject rng s;
        s)
      ~stop:(fun s -> Token_ring.invariant tr5 s)
      ~fault ~rate:0.05 cp
  in
  let summary_sig (r : Sim.Storm.result) =
    match r.Sim.Storm.summary with
    | None -> Printf.sprintf "none/%d" r.Sim.Storm.failures
    | Some s ->
        Printf.sprintf "%d/%.3f/%.3f/%.3f/%d" (Array.length r.Sim.Storm.steps)
          s.Sim.Stats.median s.Sim.Stats.p90 s.Sim.Stats.max
          r.Sim.Storm.failures
  in
  let base, base_ms = time (fun () -> storm 1) in
  let base_sig = summary_sig base in
  Table.print
    ~title:
      "E16 (cont.): parallel storm trials - token-ring 5,K=6, scramble \
       rate=0.05, 400 trials (quantiles asserts bit-identical statistics \
       vs jobs=1)"
    ~header:[ "jobs"; "ms"; "speedup"; "quantiles" ]
    ([ "1"; Table.f1 base_ms; "1.00"; "baseline" ]
    :: List.map
         (fun jobs ->
           let r, ms = time (fun () -> storm jobs) in
           [
             string_of_int jobs;
             Table.f1 ms;
             Printf.sprintf "%.2f" (base_ms /. ms);
             (if summary_sig r = base_sig then "= jobs-1" else "DIFFER");
           ])
         [ 2; 4; 8 ])

(* E17 — observability overhead and trace stability. The instrumentation
   contract (lib/obs): a disabled context costs one branch per checkpoint,
   and checkpoints sit at wave/region granularity, never per state — so
   enabling metrics, or even streaming JSONL, must not move the E14 lazy
   numbers. Measured as full lazy sweeps under (a) the disabled context,
   (b) an enabled context with the no-op sink, (c) an enabled context
   streaming JSONL to /dev/null; best of 5 runs to damp scheduler noise.
   The second table asserts the trace contract: the parallel engine's
   per-event-name counts are identical at jobs=1 and jobs=4 (timestamps
   and interleaving may differ; the event profile may not). *)
let e17 () =
  let d = Diffusing.make (Tree.balanced ~arity:2 8) in
  let dr = Dijkstra_ring.make ~nodes:6 ~k:7 in
  let tr = Token_ring.make ~nodes:6 ~k:7 in
  let instances =
    [
      ( "diffusing bal-2-8",
        Diffusing.env d,
        Compile.program (Diffusing.combined d),
        fun s -> Diffusing.invariant d s );
      ( "dijkstra 6,K=7",
        Dijkstra_ring.env dr,
        Compile.program (Dijkstra_ring.program dr),
        fun s -> Dijkstra_ring.invariant dr s );
      ( "token-ring 6,K=7",
        Token_ring.env tr,
        Compile.program (Token_ring.combined tr),
        fun s -> Token_ring.invariant tr s );
    ]
  in
  let sweep obs (_, env, cp, invariant) =
    let engine = Engine.create ~backend:Engine.Lazy ~obs env in
    ignore (Convergence.check_unfair engine cp ~from:Engine.All ~target:invariant)
  in
  let best_ms mk_obs inst =
    let best = ref infinity in
    for _ = 1 to 5 do
      let obs, cleanup = mk_obs () in
      let (), ms = time (fun () -> sweep obs inst) in
      cleanup ();
      if ms < !best then best := ms
    done;
    !best
  in
  let nothing () = () in
  let modes =
    [
      ("disabled", fun () -> (Obs.Ctx.disabled, nothing));
      ("noop-sink", fun () -> (Obs.Ctx.create (), nothing));
      ( "jsonl-devnull",
        fun () ->
          let oc = open_out "/dev/null" in
          let obs = Obs.Ctx.create ~sink:(Obs.Sink.jsonl oc) () in
          (obs, fun () -> Obs.Ctx.close obs) );
    ]
  in
  let rows =
    List.concat_map
      (fun ((name, _, _, _) as inst) ->
        let base = best_ms (List.assoc "disabled" modes) inst in
        List.map
          (fun (mode, mk_obs) ->
            let ms = if mode = "disabled" then base else best_ms mk_obs inst in
            [
              name;
              mode;
              Table.f1 ms;
              (if mode = "disabled" then "baseline"
               else Printf.sprintf "%+.1f%%" (100.0 *. ((ms /. base) -. 1.0)));
            ])
          modes)
      instances
  in
  Table.print
    ~title:
      "E17: observability overhead - E14 lazy full sweep per instrumentation \
       mode (best of 5; the contract is that noop-sink stays within noise of \
       disabled)"
    ~header:[ "instance"; "obs mode"; "ms"; "overhead" ]
    rows;
  (* Trace stability across job counts. *)
  let event_profile jobs =
    let file = Filename.temp_file "nonmask-e17" ".jsonl" in
    let oc = open_out file in
    let obs = Obs.Ctx.create ~sink:(Obs.Sink.jsonl oc) () in
    let engine =
      Engine.create ~backend:Engine.Parallel ~jobs ~obs (Token_ring.env tr)
    in
    (* ball roots, not All: a full sweep seeds every state into level 0
       and the whole run is one wave — ball-2 forces a real multi-wave
       expansion, which is what the profile must keep stable *)
    ignore
      (Convergence.check_unfair engine
         (Compile.program (Token_ring.combined tr))
         ~from:
           (Engine.Seeds
              (Engine.ball (Token_ring.env tr)
                 ~center:(Token_ring.all_zero tr) ~radius:2))
         ~target:(fun s -> Token_ring.invariant tr s));
    Obs.Ctx.close obs;
    let counts = Hashtbl.create 8 in
    let ic = open_in file in
    (try
       while true do
         let line = input_line ic in
         match Obs.Json.of_string line with
         | Ok j -> (
             match Obs.Json.member "ev" j with
             | Some (Obs.Json.Str ev) ->
                 Hashtbl.replace counts ev
                   (1 + Option.value ~default:0 (Hashtbl.find_opt counts ev))
             | _ -> Printf.eprintf "e17: trace line without ev: %s\n" line)
         | Error msg -> Printf.eprintf "e17: unparseable trace line: %s\n" msg
       done
     with End_of_file -> ());
    close_in ic;
    Sys.remove file;
    counts
  in
  let p1 = event_profile 1 in
  let p4 = event_profile 4 in
  let names =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) p1
         (Hashtbl.fold (fun k _ acc -> k :: acc) p4 []))
  in
  let count tbl ev = Option.value ~default:0 (Hashtbl.find_opt tbl ev) in
  Table.print
    ~title:
      "E17 (cont.): parallel-engine trace profile per event name - token-ring \
       6,K=7 from ball-2 roots (counts must be identical at every job count)"
    ~header:[ "event"; "jobs=1"; "jobs=4"; "verdict" ]
    (List.map
       (fun ev ->
         let c1 = count p1 ev and c4 = count p4 ev in
         [
           ev;
           Table.i c1;
           Table.i c4;
           (if c1 = c4 then "=" else "DIFFERS");
         ])
       names)

(* E18: differential fuzzing throughput and shrink quality. Throughput is
   clean-run trials/sec at three generator sizes; shrink quality uses the
   oracle's simulated-defect hook (an off-by-one in the parallel backend's
   counts) so every trial fails, measuring how small the minimizer gets
   the counterexamples and what it spends to do so. *)
let e18 () =
  let sizes = [ 3; 4; 5 ] in
  let count = 300 in
  let throughput_rows =
    List.map
      (fun max_vars ->
        let gen_config = Gen.Generate.with_max_vars max_vars in
        let report = ref None in
        let (), ms =
          time (fun () ->
              report := Some (Gen.Fuzz.run ~gen_config ~seed ~count ()))
        in
        let r = Option.get !report in
        [
          Printf.sprintf "max-vars %d" max_vars;
          Table.i r.Gen.Fuzz.trials;
          Table.i (List.length r.Gen.Fuzz.counterexamples);
          Table.f1 ms;
          Table.f1 (float_of_int count /. (ms /. 1000.0));
        ])
      sizes
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E18: fuzz throughput - %d clean trials per generator size, all \
          eight oracles per trial (seed %d)"
         count seed)
    ~header:[ "size"; "trials"; "cex"; "ms"; "trials/s" ]
    throughput_rows;
  let oracle_config =
    { Gen.Oracle.default with defect = Some Explore.Engine.Parallel }
  in
  let shrink_rows =
    List.map
      (fun max_vars ->
        let gen_config = Gen.Generate.with_max_vars max_vars in
        let r =
          Gen.Fuzz.run ~gen_config ~oracle_config ~seed ~count:20 ()
        in
        let cexs = r.Gen.Fuzz.counterexamples in
        let n = List.length cexs in
        let favg f =
          if n = 0 then nan
          else
            List.fold_left (fun acc c -> acc +. f c) 0.0 cexs /. float_of_int n
        in
        let worst =
          List.fold_left
            (fun acc c -> max acc (Gen.Spec.action_count c.Gen.Fuzz.spec))
            0 cexs
        in
        [
          Printf.sprintf "max-vars %d" max_vars;
          Table.i n;
          Table.f1
            (favg (fun c -> float_of_int c.Gen.Fuzz.original_actions));
          Table.f1
            (favg (fun c -> float_of_int (Gen.Spec.action_count c.Gen.Fuzz.spec)));
          Table.i worst;
          Table.f1
            (favg (fun c -> float_of_int c.Gen.Fuzz.shrink.Gen.Shrink.evals));
        ])
      sizes
  in
  Table.print
    ~title:
      "E18 (cont.): shrink quality under a simulated parallel-backend defect \
       - 20 failing trials per size (every counterexample should minimize to \
       a handful of actions)"
    ~header:
      [ "size"; "cex"; "orig actions"; "min actions"; "worst min"; "evals" ]
    shrink_rows

(* E19: flat-storage scale tier over two synthetic 10^vars-state models.
   The "odometer" is a base-10 counter with carry - exactly one action
   enabled per state, so reachability from zero is a single 10^vars-state
   chain and the frontier stays one state wide: the visited table IS the
   cost of the search, which makes it the headline bytes/state instance.
   The "grid" drops the carry (every digit increments independently), so
   every state has [vars] successors and the search has real frontier
   width and real parallel structure: it drives the storage-comparison
   and determinism legs. [e19] runs the 10^8-state tier; [e19-smoke] is
   the same shape at 10^6 for CI. *)
let grid_model vars =
  let env = Guarded.Env.create () in
  let xs = Guarded.Env.fresh_family env "c" vars (Guarded.Domain.range 0 9) in
  let actions =
    Array.to_list
      (Array.mapi
         (fun i x ->
           Guarded.Action.make
             ~name:(Printf.sprintf "inc.%d" i)
             ~guard:Guarded.Expr.tt
             [ (x, Guarded.Expr.((var x + int 1) mod int 10)) ])
         xs)
  in
  let p =
    Guarded.Program.make ~name:(Printf.sprintf "grid-%d" vars) env actions
  in
  (env, Compile.program p)

let odometer_model vars =
  let env = Guarded.Env.create () in
  let xs = Guarded.Env.fresh_family env "c" vars (Guarded.Domain.range 0 9) in
  (* action i fires when digits 0..i-1 are all 9 and digit i is not:
     digit i steps, the lower digits wrap to 0 - a textbook carry, so
     exactly one action is enabled everywhere except all-nines. *)
  let actions =
    List.init vars (fun i ->
        let open Guarded.Expr in
        let lower_nines =
          conj (List.init i (fun j -> var xs.(j) = int 9))
        in
        Guarded.Action.make
          ~name:(Printf.sprintf "carry.%d" i)
          ~guard:(lower_nines && var xs.(i) <> int 9)
          ((xs.(i), var xs.(i) + int 1)
          :: List.init i (fun j -> (xs.(j), int 0))))
  in
  let p =
    Guarded.Program.make ~name:(Printf.sprintf "odometer-%d" vars) env actions
  in
  (env, Compile.program p)

(* Resident-set growth of the process, for pricing the boxed baseline.
   Live-words undercounts what a boxed Hashtbl really costs a process:
   every resize strands the previous bucket array in the major heap, and
   the freed space is not returned to the OS. VmRSS (current, not the
   VmHWM high-water mark) captures exactly that, and the flat tables are
   churn-free so their RSS growth matches [Engine.storage_bytes]. *)
let vm_rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rv = ref 0 in
      (try
         while true do
           let line = input_line ic in
           try Scanf.sscanf line "VmRSS: %d kB" (fun kb -> rv := kb * 1024)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         done
       with End_of_file -> ());
      close_in ic;
      !rv

(* Bytes per entry of the boxed [(int, int) Hashtbl] + [Queue] pair the
   flat layer replaced, holding [n] visited bindings, measured as RSS
   growth after compacting the heap. Measured, not assumed, so the
   "vs boxed" ratio in E19 tracks the runtime we actually ship. *)
let boxed_baseline_bytes_per_entry n =
  Gc.compact ();
  let before = vm_rss_bytes () in
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let q : int Queue.t = Queue.create () in
  for i = 0 to n - 1 do
    Hashtbl.replace tbl i i;
    Queue.add i q;
    if Queue.length q > 1 then ignore (Queue.pop q)
  done;
  Gc.full_major ();
  let after = vm_rss_bytes () in
  ignore (Sys.opaque_identity (Hashtbl.length tbl, Queue.length q));
  float_of_int (after - before) /. float_of_int n

let e19_run ~vars ~det_vars ~baseline_keys () =
  let pow10 n = int_of_float (10.0 ** float_of_int n) in
  let sweep ?(backend = Engine.Lazy) ?(jobs = 1) ?(packed_keys = false)
      ~storage model nvars target =
    let env, cp = model nvars in
    let zero = Guarded.State.init env (fun _ -> 0) in
    let engine =
      Engine.create ~backend ~max_states:(4 * pow10 nvars) ~jobs ~storage
        ~packed_keys env
    in
    let region, ms =
      time (fun () ->
          Engine.region engine cp ~from:(Engine.Seeds [ zero ]) ~target)
    in
    (engine, region, ms)
  in
  let bytes_per_state engine (region : Engine.region) =
    float_of_int (Engine.storage_bytes engine)
    /. float_of_int region.Engine.explored
  in
  let all _ = true in
  (* Headline: full odometer sweep vs the boxed baseline. *)
  let base_bpe = boxed_baseline_bytes_per_entry baseline_keys in
  let eng, reg, ms = sweep ~storage:Engine.Direct odometer_model vars all in
  let bps = bytes_per_state eng reg in
  Table.print
    ~title:
      (Printf.sprintf
         "E19: flat-storage scale tier - odometer-%d, %s reachable states \
          swept from the zero seed (B/state = visited + frontier high-water \
          bytes per explored state; baseline = RSS growth of the boxed \
          Hashtbl+Queue pair the flat layer replaced)"
         vars (Table.i (pow10 vars)))
    ~header:[ "storage"; "states"; "ms"; "states/s"; "B/state"; "vs boxed" ]
    [
      [
        Printf.sprintf "boxed Hashtbl (%s int keys)" (Table.i baseline_keys);
        Table.i baseline_keys; "-"; "-";
        Printf.sprintf "%.1f" base_bpe; "1.0x";
      ];
      [
        "flat direct (lazy)";
        Table.i reg.Engine.explored;
        Table.f1 ms;
        Printf.sprintf "%.3g"
          (float_of_int reg.Engine.explored /. (ms /. 1000.0));
        Printf.sprintf "%.1f" bps;
        Printf.sprintf "%.1fx" (base_bpe /. bps);
      ];
    ];
  (* Storage/keying comparison at the smaller tier: every representation
     must visit exactly the same set of states. *)
  let legs =
    [
      ("direct", Engine.Direct, false);
      ("probed", Engine.Probed, false);
      ("probed + packed keys", Engine.Probed, true);
    ]
  in
  let comparison =
    List.map
      (fun (label, storage, packed_keys) ->
        let e, r, ms = sweep ~storage ~packed_keys grid_model det_vars all in
        (label, e, r, ms))
      legs
  in
  let _, _, ref_reg, _ = List.hd comparison in
  Table.print
    ~title:
      (Printf.sprintf
         "E19 (cont.): storage representations - grid-%d sweep, %s states \
          (every leg must explore the same set)"
         det_vars (Table.i (pow10 det_vars)))
    ~header:[ "storage"; "explored"; "ms"; "B/state"; "verdict" ]
    (List.map
       (fun (label, e, (r : Engine.region), ms) ->
         [
           label;
           Table.i r.Engine.explored;
           Table.f1 ms;
           Printf.sprintf "%.1f" (bytes_per_state e r);
           (if r.Engine.explored = ref_reg.Engine.explored then "= direct"
            else "DIFFERS");
         ])
       comparison);
  (* Determinism at scale: a real region query (the digit-sum slice) on
     the full tier - the lazy and parallel backends must produce
     bit-identical regions at every job count (the E16 contract, now over
     flat storage). *)
  let slice_sum = 9 * vars / 2 in
  let slice s =
    let sum = ref 0 in
    for i = 0 to vars - 1 do
      sum := !sum + Guarded.State.get_index s i
    done;
    !sum <> slice_sum
  in
  let _, lazy_reg, lazy_ms = sweep ~storage:Engine.Auto grid_model vars slice in
  let par_rows =
    List.map
      (fun jobs ->
        let _, preg, pms =
          sweep ~backend:Engine.Parallel ~jobs ~storage:Engine.Auto grid_model
            vars slice
        in
        let same =
          preg.Engine.explored = lazy_reg.Engine.explored
          && preg.Engine.node_key = lazy_reg.Engine.node_key
        in
        [
          "parallel"; string_of_int jobs;
          Table.i preg.Engine.explored;
          Table.i (Array.length preg.Engine.node_key);
          Table.f1 pms;
          (if same then "= lazy (bit-identical)" else "DIFFERS");
        ])
      [ 1; 4 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E19 (cont.): determinism at scale - region of digit-sum = %d over \
          grid-%d (node keys compared element-wise vs the lazy run)"
         slice_sum vars)
    ~header:[ "engine"; "jobs"; "explored"; "region"; "ms"; "verdict" ]
    ([
       "lazy"; "-";
       Table.i lazy_reg.Engine.explored;
       Table.i (Array.length lazy_reg.Engine.node_key);
       Table.f1 lazy_ms; "baseline";
     ]
    :: par_rows)

let e19 () = e19_run ~vars:8 ~det_vars:7 ~baseline_keys:10_000_000 ()
let e19_smoke () = e19_run ~vars:6 ~det_vars:5 ~baseline_keys:1_000_000 ()

(* E20: graceful degradation - checkpoint/resume fidelity and overhead.
   E19's digit-sum region query over the grid model, but each leg is cut
   by a state-budget guard at ~1/3 and again at ~2/3 of the sweep; at
   each cut the wavefront snapshot is written to disk, loaded back, and
   resumed in a fresh engine. The final region must be bit-identical to
   the uninterrupted lazy baseline on the lazy backend and the parallel
   backend at jobs 1 and 4, and the snapshot write+load time must stay
   under 15% of the leg's wall clock (the graceful-degradation
   contract). [e20] runs the 10^7-state tier; [e20-smoke] is the same
   shape at 10^6 for CI. *)
let e20_run ~vars () =
  let pow10 n = int_of_float (10.0 ** float_of_int n) in
  let total = pow10 vars in
  let slice_sum = 9 * vars / 2 in
  let slice s =
    let sum = ref 0 in
    for i = 0 to vars - 1 do
      sum := !sum + Guarded.State.get_index s i
    done;
    !sum <> slice_sum
  in
  let env, cp = grid_model vars in
  let zero () = Guarded.State.init env (fun _ -> 0) in
  let salt = Printf.sprintf "e20-grid-%d" vars in
  let make ?guard ~backend ~jobs () =
    Engine.create ?guard ~backend ~jobs ~max_states:(4 * total)
      ~snapshots:true ~salt env
  in
  let base_reg, base_ms =
    let engine = make ~backend:Engine.Lazy ~jobs:1 () in
    time (fun () ->
        Engine.region engine cp ~from:(Engine.Seeds [ zero () ]) ~target:slice)
  in
  let file = Filename.temp_file "nonmask-e20" ".snap" in
  (* Run one interrupted/resumed chain: budget at total/3, snapshot to
     disk, load, resume under 2*total/3, snapshot again, resume to the
     verdict. Returns the final region, search wall time, snapshot
     write+load wall time, the number of cuts actually taken (the
     parallel backend polls at wave boundaries, so a wide wave can
     overshoot the second budget), and the last snapshot's file size. *)
  let chain ~backend ~jobs =
    let snap_ms = ref 0.0 and resume = ref None in
    let cuts = ref 0 and snap_bytes = ref 0 in
    let rec go budgets run_ms =
      let guard =
        match budgets with
        | [] -> None
        | b :: _ ->
            Some (Rt.Guard.create ~budget:(Rt.Budget.make ~max_states:b ()) ())
      in
      let engine = make ?guard ~backend ~jobs () in
      match
        time (fun () ->
            try
              `Done
                (Engine.region ?resume:!resume engine cp
                   ~from:(Engine.Seeds [ zero () ]) ~target:slice)
            with Engine.Interrupted it -> `Cut it)
      with
      | `Done r, ms -> (r, run_ms +. ms)
      | `Cut it, ms ->
          incr cuts;
          let snap = Option.get it.Engine.snapshot in
          let (), save_ms = time (fun () -> Rt.Snapshot.save ~file snap) in
          let loaded, load_ms = time (fun () -> Rt.Snapshot.load ~file) in
          snap_bytes := (Unix.stat file).Unix.st_size;
          snap_ms := !snap_ms +. save_ms +. load_ms;
          resume := Some loaded;
          go (List.tl budgets) (run_ms +. ms)
    in
    let region, run_ms = go [ total / 3; 2 * total / 3 ] 0.0 in
    (region, run_ms, !snap_ms, !cuts, !snap_bytes)
  in
  let rows =
    List.map
      (fun (backend, jobs) ->
        let reg, run_ms, snap_ms, cuts, snap_bytes = chain ~backend ~jobs in
        let same =
          reg.Engine.explored = base_reg.Engine.explored
          && reg.Engine.node_key = base_reg.Engine.node_key
          && reg.Engine.terminal = base_reg.Engine.terminal
        in
        let pct = 100.0 *. snap_ms /. (run_ms +. snap_ms) in
        [
          (match backend with Engine.Lazy -> "lazy" | _ -> "parallel");
          string_of_int jobs;
          string_of_int cuts;
          Table.i reg.Engine.explored;
          Table.f1 (run_ms +. snap_ms);
          Printf.sprintf "%.1f" snap_ms;
          Printf.sprintf "%.1f KiB" (float_of_int snap_bytes /. 1024.0);
          Printf.sprintf "%.2f%%%s" pct (if pct >= 15.0 then " OVER" else "");
          (if same then "= lazy (bit-identical)" else "DIFFERS");
        ])
      [ (Engine.Lazy, 1); (Engine.Parallel, 1); (Engine.Parallel, 4) ]
  in
  Sys.remove file;
  Table.print
    ~title:
      (Printf.sprintf
         "E20: checkpoint/resume - region of digit-sum = %d over grid-%d \
          (%s states), each leg interrupted at ~1/3 and ~2/3 by a state \
          budget, snapshotted to disk, and resumed; node keys and \
          terminal flags compared element-wise vs the uninterrupted lazy \
          run (snap%% = snapshot write+load share of wall time, contract \
          < 15%%)"
         slice_sum vars (Table.i total))
    ~header:
      [
        "engine"; "jobs"; "cuts"; "explored"; "ms"; "snap ms"; "snap size";
        "snap%"; "verdict";
      ]
    ([
       "lazy (baseline)"; "-"; "0";
       Table.i base_reg.Engine.explored;
       Table.f1 base_ms; "-"; "-"; "-"; "baseline";
     ]
    :: rows)

let e20 () = e20_run ~vars:7 ()
let e20_smoke () = e20_run ~vars:6 ()

(* E21: model-language compile throughput. Generate [count] random
   specs (Gen.Generate, seeds 0..count-1), render each to .nm surface
   syntax once, then time each pipeline stage over the whole corpus:
   emit (spec -> text), parse (text -> AST), format (AST -> canonical
   text), and compile (text -> elaborated Guarded model, i.e. parse +
   elaborate). Reports models/s and mean us/model per stage. [e21]
   runs 2000 models; [e21-smoke] is the same shape at 300 for CI. *)
let e21_run ~count () =
  let specs =
    List.init count (fun seed -> Gen.Generate.spec (Prng.create seed))
  in
  let texts = List.map Gen.Emit.spec_to_nm specs in
  let bytes =
    List.fold_left (fun acc t -> acc + String.length t) 0 texts
  in
  let asts = List.map (fun t -> Lang.Driver.parse_string t) texts in
  let stage name f =
    let (), ms = time f in
    let per_s = float_of_int count /. (ms /. 1000.0) in
    [
      name;
      Table.i count;
      Table.f1 ms;
      Table.i (int_of_float per_s);
      Printf.sprintf "%.1f" (1000.0 *. ms /. float_of_int count);
    ]
  in
  let rows =
    [
      stage "emit" (fun () ->
          List.iter (fun s -> ignore (Gen.Emit.spec_to_nm s)) specs);
      stage "parse" (fun () ->
          List.iter (fun t -> ignore (Lang.Driver.parse_string t)) texts);
      stage "format" (fun () ->
          List.iter (fun a -> ignore (Lang.Pretty.print a)) asts);
      stage "compile" (fun () ->
          List.iter (fun t -> ignore (Lang.Driver.compile_string t)) texts);
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E21: .nm pipeline throughput over %s generated models (%s KiB \
          of surface syntax); compile = parse + elaborate to the Guarded \
          representation"
         (Table.i count)
         (Table.i (bytes / 1024)))
    ~header:[ "stage"; "models"; "ms"; "models/s"; "us/model" ]
    rows

let e21 () = e21_run ~count:2000 ()
let e21_smoke () = e21_run ~count:300 ()

(* E22: serve cache effectiveness. Start an in-process serve daemon on
   an ephemeral TCP port, submit one cold exhaustive check of a
   [vars]-variable decrement grid (4^vars states), then resubmit the
   identical job [hot] times. The cold request pays a full exploration;
   every hot request is answered from the content-addressed cache by the
   reader thread in O(1) — the acceptance bar is a >= 100x cold/hot
   latency ratio at the 10^6-state tier, with zero states explored
   during the hot phase and byte-identical result objects throughout.
   [e22] runs vars = 10 (1048576 states); [e22-smoke] vars = 8 (65536)
   for CI. *)
let e22_run ~vars ~hot () =
  let model =
    Printf.sprintf
      "model grid\n\n\
       param W = %d\n\n\
       var x[W] : 0..3\n\n\
       action dec[i in 0..W-1]: x[i] > 0 -> x[i] := x[i] - 1\n\n\
       invariant (forall i in 0..W-1: x[i] = 0)\n"
      vars
  in
  let config =
    {
      (Serve.Server.default_config ~address:(`Tcp ("127.0.0.1", 0))) with
      Serve.Server.jobs = 2;
    }
  in
  let server = Serve.Server.create config in
  let runner = Thread.create Serve.Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.drain ~hard:true server;
      Thread.join runner)
  @@ fun () ->
  let port = Option.get (Serve.Server.port server) in
  let client =
    match Serve.Client.connect (`Tcp ("127.0.0.1", port)) with
    | Ok c -> c
    | Error m -> failwith ("e22: connect: " ^ m)
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
  let req =
    Obs.Json.Obj
      [
        ("id", Obs.Json.Str "e22");
        ("op", Obs.Json.Str "check");
        ("model", Obs.Json.Str model);
      ]
  in
  let request () =
    match Serve.Client.request ~timeout:600.0 client req with
    | Ok r -> r
    | Error m -> failwith ("e22: request: " ^ m)
  in
  let result_of r =
    match Obs.Json.member "result" r with
    | Some v -> Obs.Json.to_string v
    | None -> failwith ("e22: reply without result: " ^ Obs.Json.to_string r)
  in
  let cached r = Obs.Json.member "cached" r = Some (Obs.Json.Bool true) in
  let explored () =
    Obs.Metrics.value
      (Obs.Metrics.counter
         (Serve.Server.metrics_registry server)
         "serve.states_explored")
  in
  let cold, cold_ms = time request in
  if cached cold then failwith "e22: cold request served from cache";
  let cold_result = result_of cold in
  let cold_explored = explored () in
  let hot_ms = Array.make hot 0.0 in
  for i = 0 to hot - 1 do
    let r, ms = time request in
    hot_ms.(i) <- ms;
    if not (cached r) then failwith "e22: hot request missed the cache";
    if result_of r <> cold_result then
      failwith "e22: hot result differs from cold result"
  done;
  let hot_explored = explored () - cold_explored in
  let total_hot = Array.fold_left ( +. ) 0.0 hot_ms in
  let mean_hot = total_hot /. float_of_int hot in
  let sorted = Array.copy hot_ms in
  Array.sort compare sorted;
  let p90_hot = sorted.(min (hot - 1) (hot * 9 / 10)) in
  let speedup = cold_ms /. mean_hot in
  let row phase requests ms per states verdict =
    [
      phase;
      Table.i requests;
      Table.f1 ms;
      Printf.sprintf "%.1f" per;
      Table.i states;
      verdict;
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E22: serve content-addressed cache at the %s-state tier — one \
          cold check, %s hot resubmissions of the identical job \
          (byte-identical results; acceptance: hot latency >= 100x below \
          cold)"
         (Table.i (int_of_float (4.0 ** float_of_int vars)))
         (Table.i hot))
    ~header:[ "phase"; "requests"; "ms"; "ms/request"; "states"; "verdict" ]
    [
      row "cold check" 1 cold_ms cold_ms cold_explored "-";
      row "hot (cache)" hot total_hot mean_hot hot_explored
        (if hot_explored = 0 then "no re-exploration" else "RE-EXPLORED");
      [
        "speedup";
        "-";
        "-";
        Printf.sprintf "%.0fx" speedup;
        "-";
        (if speedup >= 100.0 then "pass (>=100x)" else "UNDER");
      ];
      [
        "hot p90";
        "-";
        "-";
        Printf.sprintf "%.2f" p90_hot;
        "-";
        "-";
      ];
    ]

let e22 () = e22_run ~vars:10 ~hot:200 ()
let e22_smoke () = e22_run ~vars:8 ~hot:100 ()

(* E23: quantified tolerance — frontier throughput and the
   adversary-vs-storm gap. Sweep the token ring's fault budgets with the
   adversarial bound enabled, timing the span/certify/adversary work per
   point, then storm each budget with [trials] random-daemon runs and
   compare: the adversary bound must dominate the largest observed
   recovery at every budget (SOUND column; any UNSOUND is a bug — the
   attractor computation or the storm harness disagrees about the same
   span). The gap between the bound and the observation is the price of
   a guarantee over a sample. [e23] runs nodes = 5, k = 6 at budgets
   0..4 with 400 trials per budget; [e23-smoke] nodes = 4, k = 5,
   budgets 0..3, 100 trials for CI. *)
let e23_run ~nodes ~k ~budget_max ~trials () =
  let tr = Token_ring.make ~nodes ~k in
  let env = Token_ring.env tr in
  let program = Token_ring.combined tr in
  let invariant s = Token_ring.invariant tr s in
  let legit = Token_ring.all_zero tr in
  let fault = Sim.Fault.corrupt env ~k:1 in
  let engine = Engine.create ~backend:Engine.Lazy env in
  let timings = ref [] in
  let on_point (p : Tol.Sweep.point) =
    timings := (p.Tol.Sweep.budget, Obs.Ctx.now ()) :: !timings
  in
  let t0 = Obs.Ctx.now () in
  let frontier =
    Tol.Sweep.run ~engine ~program ~faults:(Sim.Fault.actions fault)
      ~invariant
      ~from:(Engine.Seeds [ legit ])
      ~budgets:(Tol.Sweep.range ~max:budget_max)
      ~adversary:true ~on_point ~name:"e23" ()
  in
  let point_ms =
    (* on_point fires in budget order; difference successive stamps *)
    let stamps = List.rev !timings in
    let rec diff prev = function
      | [] -> []
      | (b, t) :: rest -> (b, (t -. prev) *. 1000.0) :: diff t rest
    in
    diff t0 stamps
  in
  let cp = Compile.program program in
  let storm_max = ref [] in
  let rows =
    List.map
      (fun (p : Tol.Sweep.point) ->
        let b = p.Tol.Sweep.budget in
        let bound = Option.bind p.Tol.Sweep.adversary Tol.Sweep.adversary_bound in
        let result =
          Sim.Storm.trials ~max_steps:100_000 ~fault_budget:b ~jobs:1
            ~rng:(Prng.create (0xe23 + b))
            ~trials
            ~daemon:(fun r -> Sim.Daemon.random r)
            ~prepare:(fun rng ->
              let s = State.copy legit in
              if b > 0 then fault.Sim.Fault.inject rng s;
              s)
            ~stop:invariant ~fault ~rate:0.2 cp
        in
        let observed =
          Array.fold_left max 0 result.Sim.Storm.steps
        in
        storm_max := (b, bound, result) :: !storm_max;
        let sound =
          match bound with
          | Some w -> if observed <= ((b + 1) * w) + b then "sound" else "UNSOUND"
          | None -> "-"
        in
        [
          Table.i b;
          Table.i p.Tol.Sweep.span_states;
          Table.f1 (try List.assoc b point_ms with Not_found -> 0.0);
          (match bound with Some w -> Table.i w | None -> "unbounded");
          Table.i observed;
          (match bound with
          | Some w -> Table.i ((((b + 1) * w) + b) - observed)
          | None -> "-");
          sound;
          (if p.Tol.Sweep.reused then "reused" else "-");
        ])
      frontier.Tol.Sweep.points
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E23: tolerance frontier of the %d-node token ring (k = %d), \
          budgets 0..%d with the adversarial bound; %s storm trials per \
          budget — the bound must dominate every observation (gap = \
          composite bound - observed max)"
         nodes k budget_max (Table.i trials))
    ~header:
      [ "budget"; "span"; "point ms"; "bound"; "observed"; "gap"; "verdict";
        "" ]
    rows;
  (* the deepest budget's storm, rendered with the sound bound column *)
  (match !storm_max with
  | (b, bound, result) :: _ ->
      Format.printf "budget %d storm: %a@." b
        (Sim.Storm.pp_result_with_bound
           ~bound:
             (Option.map (fun w -> ((b + 1) * w) + b) bound))
        result
  | [] -> ())

let e23 () = e23_run ~nodes:5 ~k:6 ~budget_max:4 ~trials:400 ()
let e23_smoke () = e23_run ~nodes:4 ~k:5 ~budget_max:3 ~trials:100 ()

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19", e19);
    ("e19-smoke", e19_smoke);
    ("e20", e20);
    ("e20-smoke", e20_smoke);
    ("e21", e21);
    ("e21-smoke", e21_smoke);
    ("e22", e22);
    ("e22-smoke", e22_smoke);
    ("e23", e23);
    ("e23-smoke", e23_smoke);
    ("micro", micro);
  ]

(* With [--metrics-out FILE] each experiment's wall time lands in a
   [bench.<name>_us] histogram and the whole run is written as one
   machine-readable metrics JSON document (same schema as the CLI's
   --metrics-out), so CI can trend experiment cost without scraping the
   tables. *)
let () =
  let metrics_out = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--metrics-out" :: file :: rest ->
        metrics_out := Some file;
        parse acc rest
    | [ "--metrics-out" ] ->
        prerr_endline "--metrics-out needs a FILE argument";
        exit 2
    | name :: rest -> parse (String.lowercase_ascii name :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    (* the no-arg run covers everything except the 100M-state e19 tier,
       the 10M-state e20 tier, and the 10^6-state e22 cold check
       (minutes of wall clock); their *-smoke twins stand in for them *)
    | [] ->
        List.filter
          (fun n -> n <> "e19" && n <> "e20" && n <> "e22")
          (List.map fst experiments)
    | names -> names
  in
  let obs =
    match !metrics_out with
    | None -> Obs.Ctx.disabled
    | Some _ -> Obs.Ctx.create ()
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> Obs.Ctx.time obs ("bench." ^ name) f
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested;
  match !metrics_out with
  | None -> ()
  | Some file ->
      Obs.Ctx.write_metrics obs ~file
        ~extra:
          [
            ("command", Obs.Json.Str "bench");
            ( "experiments",
              Obs.Json.List (List.map (fun n -> Obs.Json.Str n) requested) );
          ]
