(** Directed multigraphs over dense integer nodes.

    Nodes are [0 .. node_count - 1]; each edge carries a polymorphic label.
    Parallel edges and self-loops are allowed — the paper's constraint graph
    has one edge per convergence action, and self-loops are semantically
    significant (Section 6). *)

type 'a t

type 'a edge = { src : int; dst : int; label : 'a }

val create : int -> 'a t
(** [create n] is the edgeless graph on [n] nodes.
    @raise Invalid_argument if [n < 0]. *)

val of_edges : int -> (int * int * 'a) list -> 'a t
(** [of_edges n edges] builds a graph on [n] nodes from [(src, dst, label)]
    triples. *)

val of_edges_f : int -> n_edges:int -> (int -> int * int * 'a) -> 'a t
(** [of_edges_f n ~n_edges f] builds a graph on [n] nodes whose [i]-th
    inserted edge is [f i] — [of_edges] without materializing a list,
    for edge sets held in flat buffers. Insertion order (and therefore
    every order-sensitive accessor) matches
    [of_edges n (List.init n_edges f)]. *)

val add_edge : 'a t -> src:int -> dst:int -> 'a -> unit
(** @raise Invalid_argument if an endpoint is out of range. *)

val node_count : 'a t -> int
val edge_count : 'a t -> int

val succ : 'a t -> int -> int list
(** Successor nodes (with multiplicity, in insertion order). *)

val pred : 'a t -> int -> int list

val out_edges : 'a t -> int -> 'a edge list
val in_edges : 'a t -> int -> 'a edge list
val edges : 'a t -> 'a edge list

val out_degree : 'a t -> int -> int
val in_degree : 'a t -> int -> int

val has_self_loop : 'a t -> int -> bool

val map_labels : ('a -> 'b) -> 'a t -> 'b t

val filter_edges : ('a edge -> bool) -> 'a t -> 'a t
(** Same nodes, only the edges satisfying the predicate. *)

val drop_self_loops : 'a t -> 'a t

val reverse : 'a t -> 'a t

val iter_succ : 'a t -> int -> (int -> unit) -> unit

val fold_edges : ('acc -> 'a edge -> 'acc) -> 'acc -> 'a t -> 'acc

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
