type 'a edge = { src : int; dst : int; label : 'a }

type 'a t = {
  n : int;
  mutable m : int;
  out_adj : 'a edge list array; (* reversed insertion order *)
  in_adj : 'a edge list array;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  { n; m = 0; out_adj = Array.make n []; in_adj = Array.make n [] }

let check_node g i name =
  if i < 0 || i >= g.n then
    invalid_arg (Printf.sprintf "Digraph.%s: node %d out of range" name i)

let add_edge g ~src ~dst label =
  check_node g src "add_edge";
  check_node g dst "add_edge";
  let e = { src; dst; label } in
  g.out_adj.(src) <- e :: g.out_adj.(src);
  g.in_adj.(dst) <- e :: g.in_adj.(dst);
  g.m <- g.m + 1

let of_edges n edges =
  let g = create n in
  List.iter (fun (src, dst, label) -> add_edge g ~src ~dst label) edges;
  g

let of_edges_f n ~n_edges f =
  if n_edges < 0 then invalid_arg "Digraph.of_edges_f: negative edge count";
  let g = create n in
  for i = 0 to n_edges - 1 do
    let src, dst, label = f i in
    add_edge g ~src ~dst label
  done;
  g

let node_count g = g.n
let edge_count g = g.m

let out_edges g i =
  check_node g i "out_edges";
  List.rev g.out_adj.(i)

let in_edges g i =
  check_node g i "in_edges";
  List.rev g.in_adj.(i)

let succ g i = List.map (fun e -> e.dst) (out_edges g i)
let pred g i = List.map (fun e -> e.src) (in_edges g i)

let edges g =
  List.concat (List.init g.n (fun i -> out_edges g i))

let out_degree g i =
  check_node g i "out_degree";
  List.length g.out_adj.(i)

let in_degree g i =
  check_node g i "in_degree";
  List.length g.in_adj.(i)

let has_self_loop g i =
  check_node g i "has_self_loop";
  List.exists (fun e -> e.dst = i) g.out_adj.(i)

let map_labels f g =
  of_edges g.n (List.map (fun e -> (e.src, e.dst, f e.label)) (edges g))

let filter_edges keep g =
  of_edges g.n
    (List.filter_map
       (fun e -> if keep e then Some (e.src, e.dst, e.label) else None)
       (edges g))

let drop_self_loops g = filter_edges (fun e -> e.src <> e.dst) g

let reverse g =
  of_edges g.n (List.map (fun e -> (e.dst, e.src, e.label)) (edges g))

let iter_succ g i f =
  check_node g i "iter_succ";
  List.iter (fun e -> f e.dst) g.out_adj.(i)

let fold_edges f acc g = List.fold_left f acc (edges g)

let pp pp_label ppf g =
  Format.fprintf ppf "@[<v>digraph (%d nodes, %d edges)@," g.n g.m;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %d -> %d [%a]@," e.src e.dst pp_label e.label)
    (edges g);
  Format.fprintf ppf "@]"
