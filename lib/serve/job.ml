(* One serve job: a validated request, its compiled model, its cache
   key, and the execution mapping onto the engine/certify/storm/fuzz
   pipelines.

   [prepare] runs on the reader thread — it is the cheap, allocation-
   bounded part (option validation, one compile of a size-capped model
   text, a SHA-256) whose results let the reader answer cache hits and
   rejections without ever touching the executor. [run] is the
   expensive part, executed one job at a time on the executor over the
   server's shared Par.Pool.

   Cache-key policy: the key covers exactly the inputs that determine
   the result bytes — the op, the canonical model digest (params
   folded), and the per-op semantic options. It excludes [jobs] (every
   backend is bit-identical at any job count — the repo's equivalence
   contract) and the resource knobs deadline/budget_states/budget_bytes
   (a completed verdict is valid however much budget it was given; runs
   the budget stops are exit-5 and never cached). *)

type options = {
  engine : Explore.Engine.backend;  (* default Lazy: serves arbitrary
                                       models without an eager-size cap *)
  max_states : int;
  ball : int;
  seed : int;
  trials : int;
  rate : float;
  max_steps : int;
  faults : string option;
  fault_budget : int option;
  budget_max : int;  (* tolerance sweep range: budgets 0..budget_max *)
  adversary : bool;  (* tolerance: also run the adversary bound *)
  count : int;
  max_vars : int;
  params : (string * int) list;
  (* resource knobs — never part of the cache key *)
  deadline : float option;
  budget_states : int option;
  budget_bytes : int option;
}

let defaults =
  {
    engine = Explore.Engine.Lazy;
    max_states = 2_000_000;
    ball = -1;
    seed = 42;
    trials = 500;
    rate = 0.05;
    max_steps = 100_000;
    faults = None;
    fault_budget = None;
    budget_max = 3;
    adversary = false;
    count = 200;
    max_vars = 4;
    params = [];
    deadline = None;
    budget_states = None;
    budget_bytes = None;
  }

let backend_name = function
  | Explore.Engine.Eager -> "eager"
  | Explore.Engine.Lazy -> "lazy"
  | Explore.Engine.Parallel -> "parallel"

let ( let* ) = Result.bind

let as_int name v =
  match Obs.Json.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "option %s: expected an integer" name)

let as_float name = function
  | Obs.Json.Float f -> Ok f
  | Obs.Json.Int n -> Ok (float_of_int n)
  | _ -> Error (Printf.sprintf "option %s: expected a number" name)

let as_string name = function
  | Obs.Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "option %s: expected a string" name)

let positive name n =
  if n > 0 then Ok n
  else Error (Printf.sprintf "option %s: must be positive" name)

let non_negative name n =
  if n >= 0 then Ok n
  else Error (Printf.sprintf "option %s: must be non-negative" name)

let parse_params v =
  match v with
  | Obs.Json.Obj fields ->
      List.fold_left
        (fun acc (name, value) ->
          let* acc = acc in
          let* n = as_int (Printf.sprintf "params.%s" name) value in
          Ok ((name, n) :: acc))
        (Ok []) fields
      |> Result.map List.rev
  | _ -> Error "option params: expected an object of NAME: INT"

let options_of_json fields =
  List.fold_left
    (fun acc (name, value) ->
      let* o = acc in
      match name with
      | "engine" -> (
          let* s = as_string name value in
          match s with
          | "eager" -> Ok { o with engine = Explore.Engine.Eager }
          | "lazy" -> Ok { o with engine = Explore.Engine.Lazy }
          | "parallel" -> Ok { o with engine = Explore.Engine.Parallel }
          | s ->
              Error
                (Printf.sprintf
                   "option engine: unknown engine %S (eager|lazy|parallel)" s))
      | "max_states" ->
          let* n = as_int name value in
          let* n = positive name n in
          Ok { o with max_states = n }
      | "ball" ->
          let* n = as_int name value in
          Ok { o with ball = n }
      | "seed" ->
          let* n = as_int name value in
          Ok { o with seed = n }
      | "trials" ->
          let* n = as_int name value in
          let* n = non_negative name n in
          Ok { o with trials = n }
      | "rate" ->
          let* f = as_float name value in
          if f < 0. || f > 1. then
            Error "option rate: must be within [0, 1]"
          else Ok { o with rate = f }
      | "max_steps" ->
          let* n = as_int name value in
          let* n = positive name n in
          Ok { o with max_steps = n }
      | "faults" ->
          let* s = as_string name value in
          Ok { o with faults = Some s }
      | "fault_budget" ->
          let* n = as_int name value in
          Ok { o with fault_budget = Some n }
      | "budget_max" ->
          let* n = as_int name value in
          let* n = non_negative name n in
          Ok { o with budget_max = n }
      | "adversary" -> (
          match value with
          | Obs.Json.Bool b -> Ok { o with adversary = b }
          | _ -> Error "option adversary: expected a boolean")
      | "count" ->
          let* n = as_int name value in
          let* n = non_negative name n in
          Ok { o with count = n }
      | "max_vars" ->
          let* n = as_int name value in
          if n < 2 then Error "option max_vars: must be at least 2"
          else Ok { o with max_vars = n }
      | "params" ->
          let* ps = parse_params value in
          Ok { o with params = ps }
      | "deadline" ->
          let* f = as_float name value in
          if f <= 0. then Error "option deadline: must be positive"
          else Ok { o with deadline = Some f }
      | "budget_states" ->
          let* n = as_int name value in
          let* n = positive name n in
          Ok { o with budget_states = Some n }
      | "budget_bytes" ->
          let* n = as_int name value in
          let* n = positive name n in
          Ok { o with budget_bytes = Some n }
      | name -> Error (Printf.sprintf "unknown option %S" name))
    (Ok defaults) fields

(* Same grammar as the CLI's --faults SPEC. *)
let parse_fault_spec env spec =
  let bad () =
    Error
      (Printf.sprintf
         "option faults: bad spec %S (corrupt | corrupt:k=N | scramble)" spec)
  in
  match String.split_on_char ':' spec with
  | [ "corrupt" ] -> Ok (Sim.Fault.corrupt env ~k:1)
  | [ "corrupt"; ks ] -> (
      match String.split_on_char '=' ks with
      | [ "k"; n ] -> (
          match int_of_string_opt n with
          | Some k when k > 0 -> Ok (Sim.Fault.corrupt env ~k)
          | _ -> bad ())
      | _ -> bad ())
  | [ "scramble" ] -> Ok (Sim.Fault.scramble env)
  | _ -> bad ()

type prepared = {
  op : Proto.op;
  opts : options;
  elab : Lang.Elab.t option;  (* [None] only for fuzz *)
  fault : Sim.Fault.t option;  (* resolved fault class (certify/storm) *)
  model_digest : string;  (* ["-"] for fuzz *)
  key : string;
}

let key_of ~op ~digest o =
  let i name v = Printf.sprintf "%s=%d" name v in
  let engine_parts =
    [
      "engine=" ^ backend_name o.engine;
      i "max_states" o.max_states;
      i "ball" o.ball;
    ]
  in
  let faults_part =
    "faults=" ^ Option.value o.faults ~default:"declared"
  in
  let fault_budget_part =
    "fault_budget="
    ^ (match o.fault_budget with None -> "default" | Some b -> string_of_int b)
  in
  let parts =
    match op with
    | Proto.Check -> engine_parts
    | Proto.Certify -> engine_parts @ [ faults_part; fault_budget_part ]
    | Proto.Tolerance ->
        engine_parts
        @ [
            faults_part;
            i "budget_max" o.budget_max;
            Printf.sprintf "adversary=%b" o.adversary;
          ]
    | Proto.Storm ->
        [
          i "seed" o.seed;
          i "trials" o.trials;
          Printf.sprintf "rate=%.17g" o.rate;
          i "max_steps" o.max_steps;
          faults_part;
          fault_budget_part;
        ]
    | Proto.Fuzz -> [ i "seed" o.seed; i "count" o.count; i "max_vars" o.max_vars ]
    | Proto.Ping | Proto.Metrics -> []
  in
  Lang.Sha256.hex
    (String.concat "|"
       (("op=" ^ Proto.op_name op) :: ("model=" ^ digest) :: parts))

let bad msg = Error (Proto.Bad_request, msg)

let compile_model ~params text =
  try
    let src = Lang.Source.of_string ~file:"<request>" text in
    let ast = Lang.Driver.parse_string ~file:"<request>" text in
    let em = Lang.Driver.compile ~params src ast in
    Ok (ast, em)
  with
  | Lang.Err.Error e -> bad (Lang.Err.to_string e)
  | Failure msg -> bad msg

let prepare (req : Proto.request) =
  match req.op with
  | Proto.Ping | Proto.Metrics ->
      bad (Printf.sprintf "op %S is not a job" (Proto.op_name req.op))
  | op -> (
      match options_of_json req.options with
      | Error msg -> bad msg
      | Ok opts -> (
          match (op, req.model) with
          | Proto.Fuzz, Some _ -> bad "fuzz takes no model"
          | Proto.Fuzz, None ->
              let digest = "-" in
              Ok
                {
                  op;
                  opts;
                  elab = None;
                  fault = None;
                  model_digest = digest;
                  key = key_of ~op ~digest opts;
                }
          | _, None ->
              bad
                (Printf.sprintf "op %S requires a model" (Proto.op_name op))
          | _, Some text -> (
              match compile_model ~params:opts.params text with
              | Error e -> Error e
              | Ok (ast, em) -> (
                  let digest =
                    Lang.Canon.with_params ~params:em.Lang.Elab.params
                      (Lang.Canon.model_digest ast)
                  in
                  (* Resolve the fault class up front so a bad spec (or a
                     certify job with no fault class at all) is rejected
                     inline, before it ever occupies the executor. *)
                  let fault_result =
                    match (op, opts.faults) with
                    | (Proto.Certify | Proto.Tolerance | Proto.Storm), Some spec
                      ->
                        Result.map Option.some
                          (parse_fault_spec em.Lang.Elab.env spec)
                    | (Proto.Certify | Proto.Tolerance | Proto.Storm), None -> (
                        match em.Lang.Elab.fault_actions with
                        | [] when op = Proto.Certify ->
                            Error
                              "certify: the model declares no faults; pass \
                               options.faults"
                        | [] ->
                            Result.map Option.some
                              (parse_fault_spec em.Lang.Elab.env "corrupt:k=1")
                        | acts ->
                            Ok
                              (Some
                                 (Sim.Fault.of_actions "declared faults"
                                    ~burst:1 acts)))
                    | _ -> Ok None
                  in
                  match fault_result with
                  | Error msg -> bad msg
                  | Ok fault ->
                      Ok
                        {
                          op;
                          opts;
                          elab = Some em;
                          fault;
                          model_digest = digest;
                          key = key_of ~op ~digest opts;
                        }))))

(* --- execution --- *)

type outcome = {
  exit_code : int;  (* the CLI's exit-code contract, in-protocol *)
  cacheable : bool;
  result : Obs.Json.t;  (* the reply's [result] object *)
  states_explored : int;  (* work accounting for the server metrics *)
}

let render pp v = Format.asprintf "%a" pp v

let result_obj ~status ~exit_code fields =
  Obs.Json.Obj
    (("status", Obs.Json.Str status)
    :: ("exit", Obs.Json.Int exit_code)
    :: fields)

let ok_outcome ?(cacheable = true) ~exit_code ~states ~status fields =
  {
    exit_code;
    cacheable;
    result = result_obj ~status ~exit_code fields;
    states_explored = states;
  }

let run_check ~pool ~obs ~guard (em : Lang.Elab.t) o =
  let engine =
    Explore.Engine.create ~backend:o.engine ~max_states:o.max_states ~pool
      ~obs ~guard em.env
  in
  let from =
    if o.ball < 0 then Explore.Engine.All
    else
      Explore.Engine.Seeds
        (Explore.Engine.ball em.env ~center:em.init ~radius:o.ball)
  in
  match
    Explore.Convergence.check_unfair engine
      (Guarded.Compile.program em.program)
      ~from ~target:em.invariant
  with
  | Ok { region_states; explored; worst_case_steps } ->
      ok_outcome ~exit_code:0 ~states:explored ~status:"converges"
        [
          ("explored", Obs.Json.Int explored);
          ("region_states", Obs.Json.Int region_states);
          ( "worst_case_steps",
            match worst_case_steps with
            | Some w -> Obs.Json.Int w
            | None -> Obs.Json.Null );
          ("engine", Obs.Json.Str (Explore.Engine.backend_name engine));
        ]
  | Error f ->
      ok_outcome ~exit_code:2 ~states:0 ~status:"fails"
        [
          ("engine", Obs.Json.Str (Explore.Engine.backend_name engine));
          ( "failure",
            Obs.Json.Str (render (Explore.Convergence.pp_failure em.env) f) );
        ]

let run_certify ~pool ~obs ~guard (em : Lang.Elab.t) fault o =
  let engine =
    Explore.Engine.create ~backend:o.engine ~max_states:o.max_states ~pool
      ~obs ~guard em.env
  in
  let from =
    if o.ball < 0 then None
    else
      Some
        (Explore.Engine.Seeds
           (Explore.Engine.ball em.env ~center:em.init ~radius:o.ball))
  in
  let budget =
    match o.fault_budget with
    | Some b when b < 0 -> None
    | Some b -> Some b
    | None -> Some (Sim.Fault.burst fault)
  in
  let cert =
    Nonmask.Certify.tolerance ~engine ~program:em.program
      ~faults:(Sim.Fault.actions fault) ~invariant:em.invariant ?from ?budget
      ~name:(Printf.sprintf "%s under %s" em.name fault.Sim.Fault.name)
      ()
  in
  let ok = Nonmask.Certify.ok cert in
  let failures =
    List.map
      (fun (c : Nonmask.Certify.check) ->
        Obs.Json.Obj
          [
            ("label", Obs.Json.Str c.label);
            ( "detail",
              match c.detail with
              | Some d -> Obs.Json.Str d
              | None -> Obs.Json.Null );
          ])
      (Nonmask.Certify.failures cert)
  in
  ok_outcome
    ~exit_code:(if ok then 0 else 2)
    ~states:0
    ~status:(if ok then "certified" else "failed")
    [
      ("theorem", Obs.Json.Str cert.Nonmask.Certify.theorem);
      ("checks", Obs.Json.Int (List.length cert.Nonmask.Certify.checks));
      ("failures", Obs.Json.List failures);
      ("certificate", Obs.Json.Str (render Nonmask.Certify.pp_full cert));
    ]

let run_tolerance ~pool ~obs ~guard (em : Lang.Elab.t) fault o =
  let engine =
    Explore.Engine.create ~backend:o.engine ~max_states:o.max_states ~pool
      ~obs ~guard em.env
  in
  let from =
    if o.ball < 0 then None
    else
      Some
        (Explore.Engine.Seeds
           (Explore.Engine.ball em.env ~center:em.init ~radius:o.ball))
  in
  let frontier =
    Tol.Sweep.run ~engine ~program:em.program
      ~faults:(Sim.Fault.actions fault) ~envs:em.env_actions
      ~invariant:em.invariant ?from
      ~budgets:(Tol.Sweep.range ~max:o.budget_max)
      ~adversary:o.adversary
      ~name:(Printf.sprintf "%s under %s" em.name fault.Sim.Fault.name)
      ()
  in
  let point_json (p : Tol.Sweep.point) =
    Obs.Json.Obj
      ([
         ("budget", Obs.Json.Int p.Tol.Sweep.budget);
         ("span_states", Obs.Json.Int p.Tol.Sweep.span_states);
         ("span_roots", Obs.Json.Int p.Tol.Sweep.span_roots);
         ("max_depth", Obs.Json.Int p.Tol.Sweep.max_depth);
         ("certified", Obs.Json.Bool p.Tol.Sweep.certified);
         ( "worst_case",
           match p.Tol.Sweep.worst_case with
           | Some w -> Obs.Json.Int w
           | None -> Obs.Json.Null );
         ("reused", Obs.Json.Bool p.Tol.Sweep.reused);
       ]
      @
      match p.Tol.Sweep.adversary with
      | None -> []
      | Some r -> (
          match r.Tol.Adversary.verdict with
          | Tol.Adversary.Bounded w ->
              [ ("adversary_bound", Obs.Json.Int w) ]
          | Tol.Adversary.Unbounded _ ->
              [ ("adversary_bound", Obs.Json.Str "unbounded") ]))
  in
  let span_total =
    List.fold_left
      (fun acc (p : Tol.Sweep.point) ->
        if p.Tol.Sweep.reused then acc else acc + p.Tol.Sweep.span_states)
      0 frontier.Tol.Sweep.points
  in
  (* the sweep either completes or raises (Interrupted/overflow), so a
     returned frontier is always a complete, cacheable curve *)
  ok_outcome ~exit_code:0 ~states:span_total ~status:"done"
    [
      ("points", Obs.Json.List (List.map point_json frontier.Tol.Sweep.points));
      ( "cliff",
        match frontier.Tol.Sweep.cliff with
        | Some c -> Obs.Json.Int c
        | None -> Obs.Json.Null );
      ("table", Obs.Json.Str (render Tol.Sweep.pp_frontier frontier));
      ("engine", Obs.Json.Str (Explore.Engine.backend_name engine));
    ]

let run_storm ~pool ~obs ~guard (em : Lang.Elab.t) fault o =
  let cp = Guarded.Compile.program em.program in
  let fault_budget =
    match o.fault_budget with Some b when b >= 0 -> Some b | _ -> None
  in
  let result =
    Sim.Storm.trials ~max_steps:o.max_steps ?fault_budget ~pool ~obs ~guard
      ~rng:(Prng.create o.seed) ~trials:o.trials
      ~daemon:(fun r -> Sim.Daemon.random r)
      ~prepare:(fun r ->
        (* copy: em.init is shared across trials and [inject] mutates *)
        let s = Guarded.State.copy em.init in
        fault.Sim.Fault.inject r s;
        s)
      ~stop:em.invariant ~fault ~rate:o.rate cp
  in
  let steps_total = Array.fold_left ( + ) 0 result.Sim.Storm.steps in
  let incomplete = result.Sim.Storm.skipped > 0 in
  ok_outcome
    ~exit_code:(if incomplete then 5 else 0)
    ~cacheable:(not incomplete) ~states:steps_total
    ~status:(if incomplete then "incomplete" else "done")
    [
      ("trials", Obs.Json.Int o.trials);
      ("converged", Obs.Json.Int (Array.length result.Sim.Storm.steps));
      ("failures", Obs.Json.Int result.Sim.Storm.failures);
      ("skipped", Obs.Json.Int result.Sim.Storm.skipped);
      ("steps_total", Obs.Json.Int steps_total);
      ("summary", Obs.Json.Str (render Sim.Storm.pp_result result));
    ]

let run_fuzz ~pool ~obs ~guard o =
  let report =
    Gen.Fuzz.run
      ~gen_config:(Gen.Generate.with_max_vars o.max_vars)
      ~pool ~obs ~guard ~seed:o.seed ~count:o.count ()
  in
  let n_cex = List.length report.Gen.Fuzz.counterexamples in
  let incomplete = report.Gen.Fuzz.skipped > 0 in
  let exit_code = if n_cex > 0 then 3 else if incomplete then 5 else 0 in
  let status =
    if n_cex > 0 then "counterexamples"
    else if incomplete then "incomplete"
    else "done"
  in
  ok_outcome ~exit_code ~cacheable:(not incomplete)
    ~states:(o.count - report.Gen.Fuzz.skipped)
    ~status
    [
      ("trials", Obs.Json.Int report.Gen.Fuzz.trials);
      ("skipped", Obs.Json.Int report.Gen.Fuzz.skipped);
      ( "counterexamples",
        Obs.Json.List
          (List.map
             (fun (c : Gen.Fuzz.counterexample) ->
               Obs.Json.Obj
                 [
                   ("trial", Obs.Json.Int c.trial);
                   ("seed", Obs.Json.Int c.seed);
                 ])
             report.Gen.Fuzz.counterexamples) );
      ("report", Obs.Json.Str (render Gen.Fuzz.pp_report report));
    ]

let error_outcome ~exit_code ?(cacheable = false) ~status msg states =
  {
    exit_code;
    cacheable;
    result =
      result_obj ~status ~exit_code [ ("message", Obs.Json.Str msg) ]
      |> (fun r ->
           match (r, states) with
           | Obs.Json.Obj fields, Some n ->
               Obs.Json.Obj (fields @ [ ("states_seen", Obs.Json.Int n) ])
           | r, _ -> r);
    states_explored = (match states with Some n -> n | None -> 0);
  }

let run ~pool ~obs ~guard p =
  try
    match (p.op, p.elab, p.fault) with
    | Proto.Check, Some em, _ -> run_check ~pool ~obs ~guard em p.opts
    | Proto.Certify, Some em, Some fault ->
        run_certify ~pool ~obs ~guard em fault p.opts
    | Proto.Tolerance, Some em, Some fault ->
        run_tolerance ~pool ~obs ~guard em fault p.opts
    | Proto.Storm, Some em, Some fault ->
        run_storm ~pool ~obs ~guard em fault p.opts
    | Proto.Fuzz, None, _ -> run_fuzz ~pool ~obs ~guard p.opts
    | _ ->
        error_outcome ~exit_code:1 ~status:"error" "malformed prepared job"
          None
  with
  | Explore.Space.Too_large total ->
      error_outcome ~exit_code:3 ~cacheable:true ~status:"too-large"
        (Printf.sprintf
           "~%.3g states, over the eager budget; use engine=lazy or raise \
            max_states"
           total)
        None
  | Explore.Codec.Overflow { layout; bits; states } ->
      error_outcome ~exit_code:3 ~cacheable:true ~status:"too-large"
        (Printf.sprintf
           "~%.3g states, more than the %s encoding can address (%d bits \
            needed)"
           states layout bits)
        None
  | Explore.Engine.Region_overflow n ->
      error_outcome ~exit_code:4 ~cacheable:true ~status:"region-overflow"
        (Printf.sprintf
           "lazy exploration exceeded the budget after %d states" n)
        (Some n)
  | Explore.Engine.Interrupted it ->
      error_outcome ~exit_code:5 ~status:"incomplete"
        (Rt.Cancel.reason_label it.Explore.Engine.reason)
        (Some it.Explore.Engine.states_seen)
  | Rt.Cancel.Cancelled reason ->
      error_outcome ~exit_code:5 ~status:"incomplete"
        (Rt.Cancel.reason_label reason) None
  | Failure msg -> error_outcome ~exit_code:1 ~status:"error" msg None
  | Invalid_argument msg ->
      error_outcome ~exit_code:1 ~status:"error" msg None
