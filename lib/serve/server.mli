(** The serve daemon: a persistent checking service with
    content-addressed result caching.

    One shared {!Par.Pool} serves every job; concurrency across clients
    comes from bounded per-client queues with round-robin fairness
    ({!Sched}), not from overlapping analyses. Reader threads answer
    ping, metrics, protocol errors, compile rejections, and cache hits
    inline in O(1); only cache misses reach the executor. Results of
    complete deterministic jobs are cached under the canonical model
    digest plus normalized options ({!Job.cache_key}), so resubmitting
    an identical job is a hash probe, not a re-exploration.

    Degradation: per-job guards (deadline, state and byte budgets)
    linked to the drain token give hostile jobs the CLI's exit-5
    incomplete semantics in-protocol; malformed or oversized requests
    are answered with in-protocol errors without disturbing other
    clients; a client that stops reading is dropped on a write timeout.
    {!drain} (or SIGTERM via {!Rt.Drain.install_signals} on
    {!drain_handle}) stops accepting, finishes queued jobs, joins every
    thread, and removes the Unix socket file; a hard drain additionally
    cancels in-flight work cooperatively. *)

type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  jobs : int;  (** worker domains of the one shared pool *)
  queue_cap : int;  (** pending-job bound per client *)
  cache_entries : int;  (** LRU capacity of the result cache *)
  max_request_bytes : int;  (** request-line bound; larger lines are
                                rejected in-protocol *)
  artifacts_dir : string option;
      (** when set, every executed job writes a JSONL trace to
          [job-NNNNNN-<key prefix>.jsonl] in this directory *)
  default_deadline : float option;
      (** wall-clock budget applied to jobs that set none *)
}

val default_config : address:address -> config
(** Machine-recommended jobs, [queue_cap = 64], [cache_entries = 1024],
    [max_request_bytes = 1 MiB], no artifacts, no default deadline. *)

type t

val create : config -> t
(** Bind the listening socket (a stale Unix socket file is removed; TCP
    port [0] binds an ephemeral port — read it back with {!port}) and
    initialize scheduler, cache, and metrics. The daemon does not
    accept until {!run}.
    @raise Unix.Unix_error when the address cannot be bound.
    @raise Failure when a TCP host cannot be resolved.
    @raise Invalid_argument when [jobs <= 0]. *)

val run : t -> unit
(** Serve until drained: spawns the acceptor and drain-watcher threads,
    runs the executor over one shared pool on the calling thread, and
    on drain joins every thread and cleans up the socket. SIGPIPE is
    ignored process-wide (a dropped client surfaces as a write error on
    its own connection). *)

val drain : ?hard:bool -> t -> unit
(** Programmatic drain: stop accepting, finish queued jobs, shut down.
    [hard] additionally cancels queued and in-flight jobs cooperatively
    (they reply with incomplete/exit-5 results). *)

val drain_handle : t -> Rt.Drain.t
(** For wiring process signals: [Rt.Drain.install_signals
    (drain_handle t)] maps the first SIGTERM/SIGINT to a soft drain and
    a second to a hard drain. *)

val address : t -> address
(** The bound address, with a TCP ephemeral port resolved. *)

val port : t -> int option
(** The bound TCP port ([None] for Unix sockets). *)

val metrics_registry : t -> Obs.Metrics.t
(** The server-lifetime metrics registry ([serve.requests],
    [serve.jobs], [serve.cache_hits]/[serve.cache_misses],
    [serve.states_explored], [serve.queue_depth], latency histograms) —
    the same registry the in-protocol [metrics] op snapshots and
    renders as a Prometheus scrape. *)
