(** Bounded fair job scheduling: one bounded queue per client,
    round-robin service across clients.

    After serving client [c], the next {!take} starts from the smallest
    client id greater than [c] (wrapping), so no client can starve the
    others regardless of submission volume. {!close} implements drain:
    no further submits, but {!take} keeps draining queued jobs until
    every queue is empty, then returns [None]. Thread-safe; {!take}
    blocks. *)

type 'a t

val create : cap:int -> 'a t
(** [cap] bounds each client's pending jobs.
    @raise Invalid_argument if [cap <= 0]. *)

val submit : 'a t -> client:int -> 'a -> [ `Ok | `Full | `Closed ]

val take : 'a t -> 'a option
(** Block until a job is available (round-robin across clients) or the
    scheduler is closed and empty ([None]). *)

val close : 'a t -> unit
val closed : 'a t -> bool

val pending : 'a t -> int
(** Jobs currently queued (all clients). *)
