(* A minimal blocking client for the serve protocol: one line out, one
   line back. Used by `nonmask submit`, the smoke scripts, and the
   concurrency tests — which is why [connect] retries inside a window
   (the daemon it talks to was usually started a moment ago) and why
   raw-line sending is exposed (the hostile-input tests need to send
   deliberately malformed bytes). *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read past the last returned line *)
  chunk : Bytes.t;
}

let parse_address s =
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> Ok (`Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad TCP port in address %S" s))
  | _ ->
      if s = "" then Error "empty address"
      else Ok (`Unix s)

let sockaddr_of = function
  | `Unix path -> Ok (Unix.ADDR_UNIX path)
  | `Tcp (host, port) -> (
      match
        try Some (Unix.inet_addr_of_string host)
        with Failure _ -> (
          try Some (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> None)
      with
      | Some addr -> Ok (Unix.ADDR_INET (addr, port))
      | None -> Error (Printf.sprintf "cannot resolve host %S" host))

(* Retry inside the window: the common caller just started the daemon,
   whose socket appears asynchronously. *)
let connect ?(timeout = 5.0) address =
  match sockaddr_of address with
  | Error _ as e -> e
  | Ok sockaddr ->
      let deadline = Unix.gettimeofday () +. timeout in
      let domain =
        match sockaddr with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let rec attempt () =
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd sockaddr with
        | () ->
            Ok { fd; buf = Buffer.create 4096; chunk = Bytes.create 8192 }
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if Unix.gettimeofday () >= deadline then
              Error
                (Printf.sprintf "cannot connect: %s" (Unix.error_message e))
            else begin
              Thread.delay 0.05;
              attempt ()
            end
      in
      attempt ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let line = line ^ "\n" in
  let rec write off len =
    if len > 0 then begin
      let n = Unix.write_substring t.fd line off len in
      write (off + n) (len - n)
    end
  in
  match write 0 (String.length line) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

(* One reply line. The buffer may already hold bytes past a previous
   line (pipelined replies); consume from it first. *)
let read_line ?(timeout = 300.0) t =
  let take_line () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear t.buf;
        Buffer.add_string t.buf
          (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    match take_line () with
    | Some line -> Ok line
    | None ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then Error "timed out waiting for reply"
        else begin
          match Unix.select [ t.fd ] [] [] remaining with
          | [], _, _ -> Error "timed out waiting for reply"
          | _, _, _ -> (
              match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
              | 0 -> Error "connection closed by server"
              | n ->
                  Buffer.add_subbytes t.buf t.chunk 0 n;
                  loop ()
              | exception Unix.Unix_error (e, _, _) ->
                  Error
                    (Printf.sprintf "read failed: %s" (Unix.error_message e)))
        end
  in
  loop ()

let request ?timeout t json =
  match send_line t (Obs.Json.to_string json) with
  | Error _ as e -> e
  | Ok () -> (
      match read_line ?timeout t with
      | Error _ as e -> e
      | Ok line -> (
          match Obs.Json.of_string line with
          | Ok v -> Ok v
          | Error msg -> Error (Printf.sprintf "bad reply: %s" msg)))
