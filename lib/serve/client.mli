(** A minimal blocking client for the serve protocol: one JSON line
    out, one reply line back. Used by [nonmask submit], the smoke
    scripts, and the concurrency tests. *)

type t

val parse_address :
  string -> ([ `Unix of string | `Tcp of string * int ], string) result
(** ["HOST:PORT"] or [":PORT"] (host defaults to 127.0.0.1) is TCP —
    unless the string contains a [/], which always reads as a Unix
    socket path; anything else is a Unix socket path too. *)

val connect :
  ?timeout:float ->
  [ `Unix of string | `Tcp of string * int ] ->
  (t, string) result
(** Connect, retrying inside the [timeout] window (default 5s) — the
    daemon is usually started moments before the first client. *)

val close : t -> unit

val request : ?timeout:float -> t -> Obs.Json.t -> (Obs.Json.t, string) result
(** Send one request, wait for one reply line (default 300s), parse it. *)

val send_line : t -> string -> (unit, string) result
(** Send a raw line verbatim — for tests that need malformed requests. *)

val read_line : ?timeout:float -> t -> (string, string) result
(** Read one reply line (without its newline). *)
