(* Content-addressed result cache: cache key (SHA-256 hex over the
   canonical model digest plus normalized options) → rendered result
   object. Bounded LRU: a doubly-linked recency list woven through the
   table's entries, entries counted (results are small rendered JSON;
   an entry cap is the honest bound). Thread-safe under one mutex —
   lookups are reader-thread hot path, but the critical section is a
   hash probe plus four pointer swings, never a model run. *)

type entry = {
  key : string;
  value : Obs.Json.t;
  mutable prev : entry option;  (* toward most-recently-used *)
  mutable next : entry option;  (* toward least-recently-used *)
}

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  cap : int;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable hits : int;
  mutable misses : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Cache.create: entries must be positive";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 256;
    cap = entries;
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      unlink t e;
      push_front t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

(* Last write wins on a racing double-store of the same key; both racers
   computed the same deterministic result, so the value is identical. *)
let store t key value =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      unlink t old;
      Hashtbl.remove t.table key
  | None -> ());
  let e = { key; value; prev = None; next = None } in
  Hashtbl.add t.table key e;
  push_front t e;
  if Hashtbl.length t.table > t.cap then
    match t.lru with
    | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.key
    | None -> ()

let size t = locked t @@ fun () -> Hashtbl.length t.table
let hits t = locked t @@ fun () -> t.hits
let misses t = locked t @@ fun () -> t.misses
