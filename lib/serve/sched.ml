(* Bounded fair job scheduling.

   One queue per client, bounded to [cap] pending jobs (backpressure is
   an in-protocol "queue-full" error, not an unbounded buffer), and a
   round-robin cursor across clients: after serving client [c], the
   next take starts from the smallest client id greater than [c] — so
   a client streaming a thousand jobs cannot starve one submitting a
   single job. Client entries exist only while they hold pending work:
   a queue that empties is dropped and re-created on the next submit,
   keeping the scan proportional to clients-with-work.

   Close semantics match drain: after [close] no submit is accepted,
   but [take] keeps returning queued jobs until every queue is empty,
   then [None] — "stop accepting, finish what you have". *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  cap : int;
  mutable queues : (int * 'a Queue.t) list;  (* ascending client id *)
  mutable cursor : int;  (* id of the last-served client *)
  mutable closed : bool;
  mutable pending : int;
}

let create ~cap =
  if cap <= 0 then invalid_arg "Sched.create: cap must be positive";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    cap;
    queues = [];
    cursor = -1;
    closed = false;
    pending = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let submit t ~client job =
  locked t @@ fun () ->
  if t.closed then `Closed
  else begin
    let q =
      match List.assoc_opt client t.queues with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          t.queues <-
            List.merge
              (fun (a, _) (b, _) -> compare a b)
              t.queues [ (client, q) ];
          q
    in
    if Queue.length q >= t.cap then `Full
    else begin
      Queue.push job q;
      t.pending <- t.pending + 1;
      Condition.signal t.nonempty;
      `Ok
    end
  end

(* The next client after the cursor, wrapping — queues are kept in
   ascending id order and only exist while nonempty, so the first entry
   with id > cursor (or the head of the list) is the fair choice. *)
let pick t =
  match List.find_opt (fun (id, _) -> id > t.cursor) t.queues with
  | Some entry -> Some entry
  | None -> ( match t.queues with entry :: _ -> Some entry | [] -> None)

let take t =
  locked t @@ fun () ->
  let rec wait () =
    match pick t with
    | Some (id, q) ->
        let job = Queue.pop q in
        t.pending <- t.pending - 1;
        if Queue.is_empty q then
          t.queues <- List.remove_assoc id t.queues;
        t.cursor <- id;
        Some job
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
  in
  wait ()

let close t =
  locked t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.nonempty

let closed t = locked t @@ fun () -> t.closed
let pending t = locked t @@ fun () -> t.pending
