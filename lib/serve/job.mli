(** One serve job: request validation, content-addressed cache key, and
    the execution mapping onto the engine/certify/storm/fuzz pipelines.

    {!prepare} is the reader-thread half — cheap and bounded (option
    validation, one compile of the size-capped model text, a SHA-256) —
    so cache probes and rejections never occupy the executor. {!run} is
    the executor half, one job at a time over the server's shared
    {!Par.Pool}. *)

type options = {
  engine : Explore.Engine.backend;
      (** default [Lazy] — serves arbitrary models without the eager
          size cap *)
  max_states : int;  (** default [2_000_000] *)
  ball : int;  (** fault-ball radius; negative = from every state *)
  seed : int;  (** default [42] *)
  trials : int;  (** storm trials; default [500] *)
  rate : float;  (** storm fault rate; default [0.05] *)
  max_steps : int;  (** storm step budget per trial; default [100_000] *)
  faults : string option;  (** [corrupt | corrupt:k=N | scramble] *)
  fault_budget : int option;
  budget_max : int;
      (** tolerance sweep range, budgets [0..budget_max]; default [3] *)
  adversary : bool;
      (** tolerance: also compute the adversary bound; default [false] *)
  count : int;  (** fuzz trials; default [200] *)
  max_vars : int;  (** fuzz model size cap; default [4] *)
  params : (string * int) list;  (** .nm parameter overrides *)
  deadline : float option;  (** resource knob — never in the cache key *)
  budget_states : int option;  (** resource knob *)
  budget_bytes : int option;  (** resource knob *)
}

val defaults : options

type prepared = {
  op : Proto.op;
  opts : options;
  elab : Lang.Elab.t option;  (** [None] only for fuzz *)
  fault : Sim.Fault.t option;
      (** resolved fault class (certify/tolerance/storm): the [faults]
          option, else the model's declared faults, else [corrupt:k=1]
          (storm and tolerance only — certify requires one) *)
  model_digest : string;  (** canonical digest, params folded; ["-"] for
                              fuzz *)
  key : string;
      (** cache key: SHA-256 over op, model digest, and the op's
          semantic options — excluding [jobs] (bit-identical at any job
          count) and the resource knobs (a completed verdict is valid
          under any budget) *)
}

val prepare : Proto.request -> (prepared, Proto.error_code * string) result
(** Validate options, compile the model, resolve the fault class, and
    derive the cache key. Every rejection (unknown option, compile
    error, missing model, certify without a fault class) comes back as
    [Bad_request] with a located message — never an exception. *)

type outcome = {
  exit_code : int;
      (** the CLI's exit-code contract, carried in-protocol: 0 ok,
          1 error, 2 failed verdict, 3 too-large / fuzz counterexample,
          4 region overflow, 5 incomplete *)
  cacheable : bool;
      (** complete deterministic outcomes only (exit 0/2/3/4) — an
          incomplete (exit-5) outcome is never cached, so a budget trip
          or drain can never poison the cache *)
  result : Obs.Json.t;  (** the reply's [result] object, byte-stable *)
  states_explored : int;  (** work accounting for the server metrics *)
}

val run :
  pool:Par.Pool.t -> obs:Obs.Ctx.t -> guard:Rt.Guard.t -> prepared -> outcome
(** Execute. Never raises: engine overflows, guard trips, and
    cancellation map to the matching in-protocol outcome. *)
