(** The serve wire protocol: newline-delimited JSON over a Unix or TCP
    socket, one request and one reply per line.

    A request is [{"id": <any>, "op": "check"|"certify"|"tolerance"|
    "storm"|"fuzz"|"ping"|"metrics", "model": "<.nm source>",
    "options": {...}}]. The
    reply echoes [id] and carries either [ok:true] with a [result]
    object (the cacheable, deterministic part — byte-identical between
    a cold run and a cache hit) plus [cached]/[elapsed_us] envelope
    fields, or [ok:false] with a machine-dispatchable [code] and a
    human [error]. [ok] means the request was processed, not that the
    verdict passed: a failed certificate is [ok:true] with
    [result.exit = 2]. *)

type op = Check | Certify | Tolerance | Storm | Fuzz | Ping | Metrics

val op_name : op -> string
val op_of_name : string -> op option

type request = {
  id : Obs.Json.t;  (** echoed verbatim; [Null] when absent *)
  op : op;
  model : string option;
  options : (string * Obs.Json.t) list;  (** raw; {!Job} normalizes *)
}

type error_code =
  | Bad_json
  | Bad_request
  | Too_large
  | Queue_full
  | Draining

val error_code_name : error_code -> string

val parse_request : string -> (request, error_code * string) result
(** Parse one request line. Unknown top-level fields, non-string ops,
    and malformed JSON are rejected with the matching code — never an
    exception. *)

val error_reply : ?id:Obs.Json.t -> error_code -> string -> Obs.Json.t
val reply :
  id:Obs.Json.t -> cached:bool -> elapsed_us:int -> result:Obs.Json.t ->
  Obs.Json.t
