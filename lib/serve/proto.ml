(* The wire protocol: newline-delimited JSON, one request and one reply
   per line, in both directions symmetric enough to print with a pipe
   and drive with socat.

   Request:  {"id": <any>, "op": "check", "model": "<.nm text>",
              "options": {...}}
   Reply:    {"id": <echoed>, "ok": true, "cached": false,
              "elapsed_us": 1234, "result": {...}}
     or      {"id": <echoed|null>, "ok": false, "code": "bad-json",
              "error": "..."}

   The [result] object is everything deterministic about the job — the
   cache stores it verbatim, so a hot reply's [result] is byte-identical
   to the cold reply's; only the envelope ([id], [cached], [elapsed_us])
   differs. [ok] means "the request was processed", not "the verdict
   passed": a failed certificate is [ok:true] with
   [result.exit = 2]. *)

type op = Check | Certify | Tolerance | Storm | Fuzz | Ping | Metrics

let op_name = function
  | Check -> "check"
  | Certify -> "certify"
  | Tolerance -> "tolerance"
  | Storm -> "storm"
  | Fuzz -> "fuzz"
  | Ping -> "ping"
  | Metrics -> "metrics"

let op_of_name = function
  | "check" -> Some Check
  | "certify" -> Some Certify
  | "tolerance" -> Some Tolerance
  | "storm" -> Some Storm
  | "fuzz" -> Some Fuzz
  | "ping" -> Some Ping
  | "metrics" -> Some Metrics
  | _ -> None

type request = {
  id : Obs.Json.t;  (* echoed verbatim; Null when absent *)
  op : op;
  model : string option;
  options : (string * Obs.Json.t) list;
}

(* Error codes are part of the contract (asserted by tests): a client
   can dispatch on [code] without parsing prose. *)
type error_code =
  | Bad_json  (* the line is not a JSON object *)
  | Bad_request  (* a JSON object, but not a valid request *)
  | Too_large  (* request line over the daemon's byte cap *)
  | Queue_full  (* this client's queue is at capacity; retry later *)
  | Draining  (* daemon is draining; no new jobs accepted *)

let error_code_name = function
  | Bad_json -> "bad-json"
  | Bad_request -> "bad-request"
  | Too_large -> "too-large"
  | Queue_full -> "queue-full"
  | Draining -> "draining"

let parse_request line =
  match Obs.Json.of_string line with
  | Error msg -> Error (Bad_json, msg)
  | Ok (Obs.Json.Obj fields as obj) -> (
      let bad msg = Error (Bad_request, msg) in
      let known =
        List.for_all
          (fun (k, _) ->
            match k with
            | "id" | "op" | "model" | "options" -> true
            | _ -> false)
          fields
      in
      if not known then
        bad "unknown request field (want id, op, model, options)"
      else
        match Obs.Json.member "op" obj with
        | Some (Obs.Json.Str name) -> (
            match op_of_name name with
            | None ->
                bad
                  (Printf.sprintf
                     "unknown op %S (check, certify, tolerance, storm, \
                      fuzz, ping, metrics)"
                     name)
            | Some op -> (
                let id =
                  Option.value (Obs.Json.member "id" obj) ~default:Obs.Json.Null
                in
                let model =
                  match Obs.Json.member "model" obj with
                  | None | Some Obs.Json.Null -> Ok None
                  | Some (Obs.Json.Str s) -> Ok (Some s)
                  | Some _ -> Error "model must be a string"
                in
                let options =
                  match Obs.Json.member "options" obj with
                  | None | Some Obs.Json.Null -> Ok []
                  | Some (Obs.Json.Obj o) -> Ok o
                  | Some _ -> Error "options must be an object"
                in
                match (model, options) with
                | Ok model, Ok options -> Ok { id; op; model; options }
                | Error msg, _ | _, Error msg -> bad msg))
        | Some _ -> bad "op must be a string"
        | None -> bad "missing op")
  | Ok _ -> Error (Bad_json, "request must be a JSON object")

let error_reply ?(id = Obs.Json.Null) code msg =
  Obs.Json.Obj
    [
      ("id", id);
      ("ok", Obs.Json.Bool false);
      ("code", Obs.Json.Str (error_code_name code));
      ("error", Obs.Json.Str msg);
    ]

let reply ~id ~cached ~elapsed_us ~result =
  Obs.Json.Obj
    [
      ("id", id);
      ("ok", Obs.Json.Bool true);
      ("cached", Obs.Json.Bool cached);
      ("elapsed_us", Obs.Json.Int elapsed_us);
      ("result", result);
    ]
