(** Content-addressed result cache.

    Maps a cache key — SHA-256 hex over the canonical model digest plus
    normalized options (see {!Job.cache_key}) — to the rendered
    [result] object of a completed job. Bounded LRU by entry count;
    thread-safe (reader threads probe on the hot path, the executor
    stores). Only deterministic, {e complete} outcomes belong here: the
    server never stores incomplete (exit-5) results, so a budget or
    drain can never poison the cache. *)

type t

val create : entries:int -> t
(** @raise Invalid_argument if [entries <= 0]. *)

val find : t -> string -> Obs.Json.t option
(** Probe; a hit refreshes recency. *)

val store : t -> string -> Obs.Json.t -> unit
(** Insert (or refresh) an entry, evicting the least recently used one
    over capacity. A racing double-store of one key is benign: both
    racers computed the same deterministic result. *)

val size : t -> int
val hits : t -> int
val misses : t -> int
