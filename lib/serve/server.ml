(* The serve daemon: a long-lived checking service multiplexing every
   analysis over ONE shared Par.Pool.

   Thread shape:
   - acceptor: selects on the listening socket (with a timeout, so it
     observes drain without relying on close-waking accept) and spawns
     one reader thread per connection;
   - readers: bounded line reader per connection. The reader answers
     everything O(1) inline — ping, metrics, protocol errors, compile
     rejections, and cache hits — and only forwards cache misses to the
     scheduler. A line that grows past max_request_bytes is answered
     with an in-protocol "too-large" error and discarded up to its
     newline, so an oversized payload costs bounded memory and never
     desyncs the stream;
   - executor (the caller of [run], which owns the pool): takes jobs in
     round-robin fairness from the scheduler and runs them one at a
     time over the shared pool — the pool is a collective-operation
     resource, concurrency across clients comes from the queue, not
     from overlapping analyses;
   - drain watcher: polls the Rt.Drain latches (signal handlers only
     flip atomics — no lock is safe in signal context) and performs the
     lock-taking part: stop accepting, close the scheduler. Queued jobs
     still run (soft drain); a hard drain's cancel token is linked into
     every job guard, so in-flight and queued work degrades to the
     documented exit-5 incomplete semantics instead of being lost.

   A slow or dead client can never wedge the daemon: replies are
   written under a per-connection mutex with a select timeout, and a
   connection that stops reading is dropped. Jobs whose client
   disconnected mid-run still complete (their result is cached — the
   work is not wasted) and their reply write is skipped. *)

type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  jobs : int;
  queue_cap : int;  (* per-client pending-job bound *)
  cache_entries : int;
  max_request_bytes : int;
  artifacts_dir : string option;
      (* per-job JSONL trace files: job-NNNNNN-<key prefix>.jsonl *)
  default_deadline : float option;
      (* applied when a job sets no deadline of its own *)
}

let default_config ~address =
  {
    address;
    jobs = Par.Pool.default_jobs ();
    queue_cap = 64;
    cache_entries = 1024;
    max_request_bytes = 1 lsl 20;
    artifacts_dir = None;
    default_deadline = None;
  }

type conn = {
  conn_id : int;
  fd : Unix.file_descr;
  lock : Mutex.t;  (* guards writes, [alive], [pending], [fd_closed] *)
  mutable alive : bool;  (* peer still connected *)
  mutable pending : int;  (* queued/in-flight jobs holding the fd open *)
  mutable fd_closed : bool;
}

type queued = {
  q_conn : conn;
  q_id : Obs.Json.t;
  q_prepared : Job.prepared;
  q_seq : int;
  q_enqueued : float;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  actual : address;  (* the TCP port resolved when binding port 0 *)
  drain : Rt.Drain.t;
  sched : queued Sched.t;
  cache : Cache.t;
  ctx : Obs.Ctx.t;
  started : float;
  conn_seq : int Atomic.t;
  job_seq : int Atomic.t;
  conns : (int, conn) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable readers : Thread.t list;
  readers_lock : Mutex.t;
}

let write_timeout = 10.0

(* --- setup --- *)

let bind_listener = function
  | `Unix path ->
      (* A stale socket file from a dead daemon blocks bind; remove it.
         A live daemon on the same path loses its socket — the race is
         inherent to Unix sockets, and single-daemon-per-path is the
         operator's contract. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with e ->
         Unix.close fd;
         raise e);
      (fd, `Unix path)
  | `Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            failwith (Printf.sprintf "serve: cannot resolve host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, port));
         Unix.listen fd 64
       with e ->
         Unix.close fd;
         raise e);
      let actual_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, `Tcp (host, actual_port))

let create config =
  if config.jobs <= 0 then invalid_arg "Server.create: jobs must be positive";
  (match config.artifacts_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  let listen_fd, actual = bind_listener config.address in
  {
    config;
    listen_fd;
    actual;
    drain = Rt.Drain.create ();
    sched = Sched.create ~cap:config.queue_cap;
    cache = Cache.create ~entries:config.cache_entries;
    ctx = Obs.Ctx.create ();
    started = Unix.gettimeofday ();
    conn_seq = Atomic.make 0;
    job_seq = Atomic.make 0;
    conns = Hashtbl.create 16;
    conns_lock = Mutex.create ();
    readers = [];
    readers_lock = Mutex.create ();
  }

let drain_handle t = t.drain
let address t = t.actual

let port t =
  match t.actual with `Tcp (_, p) -> Some p | `Unix _ -> None

let drain ?(hard = false) t =
  if hard then Rt.Drain.request_hard t.drain else Rt.Drain.request t.drain

let metrics_registry t = Obs.Ctx.metrics t.ctx

(* --- metrics helpers --- *)

let m_counter t name = Obs.Metrics.counter (metrics_registry t) name
let m_gauge t name = Obs.Metrics.gauge (metrics_registry t) name
let m_hist t name = Obs.Metrics.histogram (metrics_registry t) name
let count t name = Obs.Metrics.incr (m_counter t name)

let update_depth t =
  Obs.Metrics.set (m_gauge t "serve.queue_depth") (Sched.pending t.sched)

(* --- connection output --- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let _, ready, _ = Unix.select [] [ fd ] [] write_timeout in
    if ready = [] then failwith "write timeout";
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let close_fd_locked conn =
  if not conn.fd_closed then begin
    conn.fd_closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Write one reply line; a failed or timed-out write marks the
   connection dead (and wakes its reader via shutdown) instead of
   propagating — a client that stopped reading is the client's problem,
   never the daemon's. *)
let send t conn json =
  locked conn.lock @@ fun () ->
  if conn.alive then
    let line = Obs.Json.to_string json ^ "\n" in
    try write_all conn.fd line 0 (String.length line)
    with _ ->
      conn.alive <- false;
      count t "serve.dropped_connections";
      (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ())

(* The reader saw EOF (or a read error): no more requests will arrive.
   The fd stays open while queued jobs still reference the connection —
   the executor closes it when the last one completes. *)
let conn_eof t conn =
  locked t.conns_lock (fun () -> Hashtbl.remove t.conns conn.conn_id);
  locked conn.lock @@ fun () ->
  conn.alive <- false;
  if conn.pending = 0 then close_fd_locked conn

let job_done conn =
  locked conn.lock @@ fun () ->
  conn.pending <- conn.pending - 1;
  if (not conn.alive) && conn.pending = 0 then close_fd_locked conn

(* --- request handling (reader threads) --- *)

let elapsed_us since = int_of_float ((Unix.gettimeofday () -. since) *. 1e6)

let send_error t conn ~id code msg =
  count t "serve.errors";
  send t conn (Proto.error_reply ~id code msg)

let metrics_result t =
  let reg = metrics_registry t in
  Obs.Json.Obj
    [
      ("status", Obs.Json.Str "ok");
      ("uptime_s", Obs.Json.Float (Unix.gettimeofday () -. t.started));
      ("pending", Obs.Json.Int (Sched.pending t.sched));
      ( "cache",
        Obs.Json.Obj
          [
            ("size", Obs.Json.Int (Cache.size t.cache));
            ("hits", Obs.Json.Int (Cache.hits t.cache));
            ("misses", Obs.Json.Int (Cache.misses t.cache));
          ] );
      ("metrics", Obs.Metrics.snapshot reg);
      ("prometheus", Obs.Json.Str (Obs.Metrics.render_prometheus reg));
    ]

let handle_line t conn line =
  count t "serve.requests";
  let start = Unix.gettimeofday () in
  match Proto.parse_request line with
  | Error (code, msg) -> send_error t conn ~id:Obs.Json.Null code msg
  | Ok req -> (
      match req.Proto.op with
      | Proto.Ping ->
          send t conn
            (Proto.reply ~id:req.Proto.id ~cached:false
               ~elapsed_us:(elapsed_us start)
               ~result:(Obs.Json.Obj [ ("status", Obs.Json.Str "ok") ]))
      | Proto.Metrics ->
          send t conn
            (Proto.reply ~id:req.Proto.id ~cached:false
               ~elapsed_us:(elapsed_us start) ~result:(metrics_result t))
      | _ -> (
          match Job.prepare req with
          | Error (code, msg) -> send_error t conn ~id:req.Proto.id code msg
          | Ok prepared -> (
              match Cache.find t.cache prepared.Job.key with
              | Some result ->
                  count t "serve.cache_hits";
                  Obs.Metrics.observe (m_hist t "serve.hit_us")
                    (elapsed_us start);
                  send t conn
                    (Proto.reply ~id:req.Proto.id ~cached:true
                       ~elapsed_us:(elapsed_us start) ~result)
              | None -> (
                  count t "serve.cache_misses";
                  let q =
                    {
                      q_conn = conn;
                      q_id = req.Proto.id;
                      q_prepared = prepared;
                      q_seq = Atomic.fetch_and_add t.job_seq 1;
                      q_enqueued = start;
                    }
                  in
                  locked conn.lock (fun () ->
                      conn.pending <- conn.pending + 1);
                  match Sched.submit t.sched ~client:conn.conn_id q with
                  | `Ok -> update_depth t
                  | `Full ->
                      job_done conn;
                      send_error t conn ~id:req.Proto.id Proto.Queue_full
                        (Printf.sprintf
                           "client queue full (%d pending jobs); read some \
                            replies first"
                           t.config.queue_cap)
                  | `Closed ->
                      job_done conn;
                      send_error t conn ~id:req.Proto.id Proto.Draining
                        "server is draining; not accepting new jobs"))))

let reader t conn =
  let chunk = Bytes.create 8192 in
  let buf = Buffer.create 8192 in
  let skipping = ref false in
  let running = ref true in
  while !running do
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> running := false
    | exception Unix.Unix_error _ -> running := false
    | exception Sys_error _ -> running := false
    | n ->
        for i = 0 to n - 1 do
          match Bytes.get chunk i with
          | '\n' ->
              if !skipping then skipping := false
              else begin
                let line = Buffer.contents buf in
                if String.trim line <> "" then handle_line t conn line
              end;
              Buffer.clear buf
          | c ->
              if not !skipping then begin
                Buffer.add_char buf c;
                if Buffer.length buf > t.config.max_request_bytes then begin
                  (* Reject now, then discard silently up to the newline
                     so the reply count stays one per request line. *)
                  Buffer.clear buf;
                  skipping := true;
                  count t "serve.requests";
                  send_error t conn ~id:Obs.Json.Null Proto.Too_large
                    (Printf.sprintf "request exceeds %d bytes"
                       t.config.max_request_bytes)
                end
              end
        done
  done;
  conn_eof t conn

(* --- acceptor --- *)

let accept_loop t =
  let stop = ref false in
  while not !stop do
    if Rt.Drain.requested t.drain then stop := true
    else
      match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error _ -> stop := Rt.Drain.requested t.drain
          | fd, _ ->
              let conn =
                {
                  conn_id = Atomic.fetch_and_add t.conn_seq 1;
                  fd;
                  lock = Mutex.create ();
                  alive = true;
                  pending = 0;
                  fd_closed = false;
                }
              in
              locked t.conns_lock (fun () ->
                  Hashtbl.replace t.conns conn.conn_id conn);
              count t "serve.connections";
              let th = Thread.create (fun () -> reader t conn) () in
              locked t.readers_lock (fun () ->
                  t.readers <- th :: t.readers))
      | exception Unix.Unix_error _ -> stop := true
  done

(* --- executor --- *)

let job_guard t (prepared : Job.prepared) =
  let o = prepared.Job.opts in
  let deadline =
    match o.Job.deadline with
    | Some _ as d -> d
    | None -> t.config.default_deadline
  in
  let budget =
    Rt.Budget.make ?deadline_s:deadline ?max_states:o.Job.budget_states
      ?max_bytes:o.Job.budget_bytes ()
  in
  Rt.Guard.create ~budget ~cancel:(Rt.Cancel.create ())
    ~link:(Rt.Drain.cancel t.drain) ()

let job_ctx t q =
  match t.config.artifacts_dir with
  | None -> (Obs.Ctx.disabled, None)
  | Some dir -> (
      let file =
        Filename.concat dir
          (Printf.sprintf "job-%06d-%s.jsonl" q.q_seq
             (String.sub q.q_prepared.Job.key 0 12))
      in
      try
        let oc = open_out file in
        (Obs.Ctx.create ~sink:(Obs.Sink.jsonl oc) (), Some file)
      with Sys_error _ -> (Obs.Ctx.disabled, None))

let run_one t pool q =
  update_depth t;
  let started = Unix.gettimeofday () in
  let guard = job_guard t q.q_prepared in
  let obs, _artifact = job_ctx t q in
  let outcome = Job.run ~pool ~obs ~guard q.q_prepared in
  Obs.Ctx.close obs;
  count t "serve.jobs";
  Obs.Metrics.add
    (m_counter t "serve.states_explored")
    outcome.Job.states_explored;
  Obs.Metrics.observe (m_hist t "serve.job_us") (elapsed_us started);
  Obs.Metrics.observe (m_hist t "serve.queue_wait_us")
    (int_of_float ((started -. q.q_enqueued) *. 1e6));
  if outcome.Job.cacheable then
    Cache.store t.cache q.q_prepared.Job.key outcome.Job.result;
  send t q.q_conn
    (Proto.reply ~id:q.q_id ~cached:false
       ~elapsed_us:(elapsed_us q.q_enqueued) ~result:outcome.Job.result);
  job_done q.q_conn

let executor t pool =
  let rec loop () =
    match Sched.take t.sched with
    | None -> ()
    | Some q ->
        run_one t pool q;
        update_depth t;
        loop ()
  in
  loop ()

(* --- drain watcher --- *)

(* The signal handler only flips atomics (Rt.Drain); this thread does
   the lock-taking part at ~50ms granularity: stop accepting, close the
   scheduler so the executor drains to completion. *)
let drain_watcher t =
  while not (Rt.Drain.requested t.drain) do
    Thread.delay 0.05
  done;
  Sched.close t.sched

(* --- lifecycle --- *)

let run t =
  (* A dropped client must surface as EPIPE on write, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let watcher = Thread.create drain_watcher t in
  let acceptor = Thread.create accept_loop t in
  Par.Pool.with_pool ~jobs:t.config.jobs (fun pool -> executor t pool);
  (* Executor done: the scheduler is closed and empty. Tear down. *)
  Thread.join watcher;
  Thread.join acceptor;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* Wake readers blocked on idle connections, then join them so no
     thread outlives [run]. *)
  let live =
    locked t.conns_lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    live;
  let readers = locked t.readers_lock (fun () -> t.readers) in
  List.iter Thread.join readers;
  (* No orphaned socket file: the drain contract includes temp-file
     cleanliness. *)
  match t.actual with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ()
