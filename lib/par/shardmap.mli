(** Sharded int→int hash maps for concurrent visited sets.

    The parallel exploration backends key their visited sets by state
    codes ({!Explore.Space.encode} dense ids, or bit-packed codes). A
    [Shardmap.t] spreads those keys over a power-of-two number of
    shards — each a flat open-addressing {!Flattbl} behind its own
    mutex — so probes from many domains contend on different locks
    with high probability, and each entry costs two unboxed words
    instead of a boxed [Hashtbl] bucket cell. Keys are spread by a
    splitmix64-style finalizer, not by low bits: state codes are
    dense, and low-bit sharding would put entire BFS levels in one
    shard.

    The intended access pattern is phased: during a parallel phase
    every domain may call {!find_opt}/{!find_def}/{!mem} (and, if it
    owns the key, {!add}); the sequential merge between phases may use
    the unlocked {!iter}/{!length}.

    {b Growth under contention}: a shard grows (rehashing into a
    doubled flat array) inside {!add}, while the caller holds that
    shard's mutex. Every reader of the same shard also takes the
    mutex, so no domain can observe a half-built table, and other
    shards are untouched — resizing is safe {e by construction}, not
    by a no-resize protocol invariant. The multi-domain stress test in
    [test/test_storage.ml] drives every shard through several
    doublings under 4-way contention to pin this. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] (default [64]) is rounded up to a power of two. *)

val find_opt : t -> int -> int option
val mem : t -> int -> bool

val find_def : t -> int -> int -> int
(** [find_def t key default] — allocation-free probe for the BFS inner
    loop. *)

val add : t -> int -> int -> unit
(** Bind the key, replacing any previous binding. *)

val length : t -> int
(** Total bindings across shards. Not linearizable with concurrent
    writers; call it from quiescent (merge) phases. *)

val iter : t -> (int -> int -> unit) -> unit
(** Visit every binding, shard by shard, without locking — merge-phase
    only. *)

val to_hashtbl : t -> (int, int) Hashtbl.t
(** Snapshot into a plain [Hashtbl] (merge-phase only). *)

val bytes : t -> int
(** Heap footprint of the shard storage (merge-phase only). *)
