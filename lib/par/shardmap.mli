(** Sharded integer-keyed hash maps for concurrent visited sets.

    The parallel exploration backends key their visited sets by
    {!Explore.Space.encode} state codes. A [Shardmap.t] spreads those keys
    over a power-of-two number of shards — each an ordinary [Hashtbl]
    behind its own mutex — so probes from many domains contend on
    different locks with high probability. Keys are spread by a
    splitmix64-style finalizer, not by low bits: state codes are dense,
    and low-bit sharding would put entire BFS levels in one shard.

    The intended access pattern is phased: during a parallel phase every
    domain may call {!find_opt}/{!mem} (and, if it owns the key,
    {!add}); the sequential merge between phases may use the unlocked
    {!iter}/{!length}. *)

type 'a t

val create : ?shards:int -> unit -> 'a t
(** [shards] (default [64]) is rounded up to a power of two. *)

val find_opt : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val add : 'a t -> int -> 'a -> unit
(** Bind the key, replacing any previous binding. *)

val length : 'a t -> int
(** Total bindings across shards. Not linearizable with concurrent
    writers; call it from quiescent (merge) phases. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every binding, shard by shard, without locking — merge-phase
    only. *)

val to_hashtbl : 'a t -> (int, 'a) Hashtbl.t
(** Snapshot into a plain [Hashtbl] (merge-phase only). *)
