(* Fork/join pool over persistent worker domains.

   Protocol: the caller publishes a task under the mutex and bumps
   [epoch]; workers sleep on [work] until they see a fresh epoch, run the
   task outside the lock, then decrement [pending] and signal [done_].
   The caller participates as worker 0 and blocks on [done_] until every
   worker has finished, so a round is a full barrier — which is what the
   level-synchronized searches built on top need anyway. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable task : (int -> unit) option;
  mutable epoch : int;
  mutable pending : int;  (* workers still running the current epoch *)
  mutable failure : exn option;  (* first exception of the round *)
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

let record_failure t e =
  Mutex.lock t.mutex;
  (match t.failure with None -> t.failure <- Some e | Some _ -> ());
  Mutex.unlock t.mutex

let worker_loop t w =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.epoch = !seen && not t.stopped do
      Condition.wait t.work t.mutex
    done;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.epoch;
      let task = t.task in
      Mutex.unlock t.mutex;
      (match task with
      | None -> ()
      | Some body -> ( try body w with e -> record_failure t e));
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.done_;
      Mutex.unlock t.mutex
    end
  done

let create ~jobs =
  if jobs <= 0 then invalid_arg "Par.Pool.create: jobs must be positive";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      task = None;
      epoch = 0;
      pending = 0;
      failure = None;
      stopped = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  if not was_stopped then Array.iter Domain.join t.domains

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* A long-lived service multiplexes many analyses over one pool: the
   shared pool survives the call, a transient one does not. The caller
   of a shared pool owns its lifetime; [jobs] is only the fallback. *)
let use ?pool ~jobs f =
  match pool with Some t -> f t | None -> with_pool ~jobs f

let run t body =
  if t.stopped then invalid_arg "Par.Pool.run: pool is shut down";
  if t.jobs = 1 then body 0
  else begin
    Mutex.lock t.mutex;
    t.task <- Some body;
    t.failure <- None;
    t.pending <- t.jobs - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (try body 0 with e -> record_failure t e);
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.done_ t.mutex
    done;
    t.task <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with None -> () | Some e -> raise e
  end

let default_chunk ~jobs ~n = max 1 (n / (8 * jobs))

let parallel_for ?chunk t ~n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Par.Pool.parallel_for: chunk must be positive"
      | None -> default_chunk ~jobs:t.jobs ~n
    in
    if t.jobs = 1 || n <= chunk then f ~worker:0 0 n
    else begin
      let next = Atomic.make 0 in
      run t (fun w ->
          let continue = ref true in
          while !continue do
            let lo = Atomic.fetch_and_add next chunk in
            if lo >= n then continue := false
            else f ~worker:w lo (min n (lo + chunk))
          done)
    end
  end

let map_reduce ?chunk t ~n ~map reduce init =
  if n <= 0 then init
  else begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Par.Pool.map_reduce: chunk must be positive"
      | None -> default_chunk ~jobs:t.jobs ~n
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let results = Array.make n_chunks None in
    parallel_for ~chunk t ~n (fun ~worker lo hi ->
        results.(lo / chunk) <- Some (map ~worker lo hi));
    (* fold in chunk order: deterministic for non-commutative reduce *)
    Array.fold_left
      (fun acc r ->
        match r with
        | Some v -> reduce acc v
        | None -> acc (* unreachable: every chunk is covered *))
      init results
  end
