(** Open-addressing int→int hash tables in flat array storage.

    The visited-set workhorse of the exploration engines: keys are
    non-negative state codes, values are small ints (node ids, BFS
    depths). Storage is a single [int array] of interleaved
    [(key, value)] pairs — two words per slot, no boxing, no per-entry
    allocation — probed linearly from a splitmix64-mixed hash, with
    power-of-two capacity and grow-by-doubling at 3/4 load. Compared to
    [(int, int) Hashtbl.t] (a 4-word bucket cell plus bucket-array slot
    per entry, ~40+ bytes/state) a flat table costs [16 / load] bytes
    per state — ~21 B at the 3/4 load bound, ~32 B right after a
    doubling.

    Removal writes a tombstone (probe chains must stay connected);
    tombstones are reclaimed at the next rehash, and a rehash triggered
    mostly by tombstones keeps the capacity instead of doubling.

    Not thread-safe: callers serialize access (see {!Shardmap} for the
    sharded concurrent discipline). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 16, rounded up to a power of two) is the initial
    slot count — size it to the expected population to skip growth
    rehashes; the table grows regardless when load demands it. *)

val mem : t -> int -> bool
(** @raise Invalid_argument on a negative key (reserved for sentinels). *)

val find_def : t -> int -> int -> int
(** [find_def t key default] — the binding of [key], or [default] when
    absent. Allocation-free: this is the hot probe of the BFS inner
    loop. @raise Invalid_argument on a negative key. *)

val find_opt : t -> int -> int option

val add : t -> int -> int -> unit
(** Bind the key, replacing any previous binding. Values are
    unrestricted ints. @raise Invalid_argument on a negative key. *)

val remove : t -> int -> unit

val length : t -> int

val capacity : t -> int
(** Current slot count (a power of two). *)

val iter : t -> (int -> int -> unit) -> unit
(** Visit every binding in storage (not insertion) order. *)

val bytes : t -> int
(** Heap footprint of the backing storage. *)

val max_probe : t -> int
(** Longest probe chain any current binding sits at the end of — the
    cluster metric the probe-distribution tests bound. *)
