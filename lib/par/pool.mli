(** Fixed-size domain pools: fork/join data parallelism on OCaml 5.

    A pool owns [jobs - 1] worker domains (the caller is worker [0]) that
    block on a condition variable between collective operations, so a pool
    can be reused across many fork/join rounds — e.g. one round per BFS
    level — without paying a domain spawn per round. All operations are
    {e collective}: the caller forks a task to every worker, participates
    itself, and joins before returning, re-raising the first exception any
    worker observed.

    Determinism is a design constraint of this library, not an accident:
    {!parallel_for} partitions work by index ranges and {!map_reduce}
    folds chunk results in chunk order, so any pipeline whose chunk
    bodies are pure functions of their index range produces output
    independent of the job count and of scheduling. The analyses built on
    top (the parallel exploration backend, fault spans, storm trials)
    rely on exactly this to keep verdicts bit-identical to their
    sequential counterparts.

    A pool with [jobs = 1] spawns no domains and runs everything inline
    in the caller — the zero-overhead degenerate case. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of how
    many domains this machine runs efficiently. *)

val create : jobs:int -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] new domains).
    @raise Invalid_argument if [jobs <= 0]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Using the pool after
    shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)

val use : ?pool:t -> jobs:int -> (t -> 'a) -> 'a
(** [use ?pool ~jobs f]: with [pool], run [f pool] and leave the pool
    running — the caller owns its lifetime and [jobs] is ignored;
    without, behave as [with_pool ~jobs f]. This is how a long-lived
    service (the [serve] daemon) multiplexes every analysis over one
    shared pool instead of paying a domain spawn per request. The pool
    is a collective-operation resource: only one analysis may use it at
    a time. *)

val run : t -> (int -> unit) -> unit
(** [run t body] executes [body w] on every worker [w] in
    [0 .. jobs - 1] concurrently ([body 0] in the caller) and waits for
    all of them. The first exception raised by any worker is re-raised
    in the caller after the join. *)

val parallel_for : ?chunk:int -> t -> n:int -> (worker:int -> int -> int -> unit) -> unit
(** [parallel_for t ~n f] covers the index range [0, n) with disjoint
    chunks, calling [f ~worker lo hi] for each chunk [\[lo, hi)] on some
    worker; [~worker] indexes per-worker scratch (buffers, compiled
    closures) so bodies can stay allocation-free. Chunks are handed out
    dynamically (an atomic counter), so uneven per-index cost still
    balances. [chunk] defaults to roughly [n / (8 * jobs)]. *)

val map_reduce :
  ?chunk:int -> t -> n:int -> map:(worker:int -> int -> int -> 'a) -> ('b -> 'a -> 'b) -> 'b -> 'b
(** [map_reduce t ~n ~map reduce init] maps every chunk of [0, n) to a
    value and folds the chunk values {e in chunk order} — the fold is
    sequential and deterministic even for non-commutative [reduce]. *)
