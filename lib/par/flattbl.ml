(* Interleaved (key, value) pairs: slot [i] is data.(2i), data.(2i+1).
   Key sentinels: [empty] marks a never-used slot (probe chains stop
   here), [tomb] a deleted one (probe chains continue through it). Real
   keys are >= 0, so both sentinels are unmistakable. *)

let empty = -1
let tomb = -2

type t = {
  mutable data : int array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable count : int;  (* live bindings *)
  mutable used : int;  (* live + tombstones: what load is measured on *)
}

(* splitmix64 finalizer — state codes are dense or bit-packed, so
   consecutive keys must land in unrelated slots. Same mix as
   Shardmap's shard selector, for the same reason. *)
let mix key =
  let h = Int64.of_int key in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logxor h (Int64.shift_right_logical h 31)) land max_int

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let create ?(capacity = 16) () =
  let cap = pow2_at_least (max 2 capacity) 2 in
  { data = Array.make (2 * cap) empty; mask = cap - 1; count = 0; used = 0 }

let length t = t.count
let capacity t = t.mask + 1
let bytes t = 8 * (Array.length t.data + 4)

let[@inline] check_key key =
  if key < 0 then invalid_arg "Flattbl: keys must be non-negative"

(* Slot of [key] if present, else the first reusable slot (tombstone if
   the chain crossed one, else the terminating empty). The chain is
   finite: load never reaches 1. *)
let[@inline] probe t key =
  let data = t.data and mask = t.mask in
  let rec go i first_tomb =
    let k = Array.unsafe_get data (2 * i) in
    if k = key then i
    else if k = empty then if first_tomb >= 0 then first_tomb else i
    else
      go ((i + 1) land mask)
        (if k = tomb && first_tomb < 0 then i else first_tomb)
  in
  go (mix key land mask) (-1)

let mem t key =
  check_key key;
  t.data.(2 * probe t key) = key

let find_def t key default =
  check_key key;
  let i = probe t key in
  if Array.unsafe_get t.data (2 * i) = key then
    Array.unsafe_get t.data ((2 * i) + 1)
  else default

let find_opt t key =
  check_key key;
  let i = probe t key in
  if t.data.(2 * i) = key then Some t.data.((2 * i) + 1) else None

let iter t f =
  let data = t.data in
  for i = 0 to t.mask do
    let k = data.(2 * i) in
    if k >= 0 then f k data.((2 * i) + 1)
  done

(* Rehash into [cap] slots, dropping tombstones. The insert loop needs no
   tombstone or duplicate handling: every key is distinct and the target
   is all-empty. *)
let rehash t cap =
  let old = t.data in
  let old_mask = t.mask in
  t.data <- Array.make (2 * cap) empty;
  t.mask <- cap - 1;
  t.used <- t.count;
  let data = t.data and mask = t.mask in
  for i = 0 to old_mask do
    let k = old.(2 * i) in
    if k >= 0 then begin
      let j = ref (mix k land mask) in
      while Array.unsafe_get data (2 * !j) <> empty do
        j := (!j + 1) land mask
      done;
      data.(2 * !j) <- k;
      data.((2 * !j) + 1) <- old.((2 * i) + 1)
    end
  done

let add t key v =
  check_key key;
  let i = probe t key in
  let k = t.data.(2 * i) in
  t.data.(2 * i) <- key;
  t.data.((2 * i) + 1) <- v;
  if k <> key then begin
    t.count <- t.count + 1;
    if k = empty then t.used <- t.used + 1;
    (* grow at 3/4 load; if half the occupancy is tombstones the rehash
       only compacts, keeping the capacity (no unbounded doubling from
       add/remove churn) *)
    if 4 * (t.used + 1) > 3 * (t.mask + 1) then
      rehash t
        (if 2 * t.count > t.mask + 1 then 2 * (t.mask + 1) else t.mask + 1)
  end

let remove t key =
  check_key key;
  let i = probe t key in
  if t.data.(2 * i) = key then begin
    t.data.(2 * i) <- tomb;
    t.count <- t.count - 1
  end

let max_probe t =
  let worst = ref 0 in
  iter t (fun k _ ->
      let start = mix k land t.mask in
      let i = ref start and steps = ref 0 in
      while t.data.(2 * !i) <> k do
        incr steps;
        i := (!i + 1) land t.mask
      done;
      if !steps > !worst then worst := !steps);
  !worst
