(** Growable int vectors — the frontier/result buffers of the parallel
    searches. Not thread-safe; each domain owns its vectors, and the
    level-synchronized algorithms only share them across the sequential
    merge phases. *)

type t

val create : unit -> t

val push : t -> int -> int
(** Append, returning the element's index. *)

val len : t -> int
val get : t -> int -> int

val clear : t -> unit
(** Reset to length 0 without shrinking the backing array. *)

val swap : t -> t -> unit
(** Exchange the contents of two vectors in O(1) — the frontier flip of a
    level-synchronized search. *)

val to_array : t -> int array
(** Fresh array of the current contents. *)

val of_array : int array -> t
(** Vector holding a copy of the array — the restore direction of
    checkpoint round-trips. *)

val bytes : t -> int
(** Heap footprint of the backing array (capacity, not length) — feeds
    the unified storage accounting behind byte budgets. *)
