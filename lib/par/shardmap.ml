type t = {
  mask : int;
  tables : Flattbl.t array;
  locks : Mutex.t array;
}

(* splitmix64 finalizer: state codes are dense integers, so the shard
   index must come from mixed high bits, not [key land mask]. The
   in-shard table mixes again (Flattbl's own hash); reusing bits of one
   mix for both levels would correlate shard choice with slot choice. *)
let mix key =
  let h = Int64.of_int key in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logxor h (Int64.shift_right_logical h 31)) land max_int

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let create ?(shards = 64) () =
  let shards = pow2_at_least (max 1 shards) 1 in
  {
    mask = shards - 1;
    tables = Array.init shards (fun _ -> Flattbl.create ~capacity:64 ());
    locks = Array.init shards (fun _ -> Mutex.create ());
  }

let[@inline] shard t key = mix key land t.mask

let find_opt t key =
  let s = shard t key in
  Mutex.lock t.locks.(s);
  let r = Flattbl.find_opt t.tables.(s) key in
  Mutex.unlock t.locks.(s);
  r

let find_def t key default =
  let s = shard t key in
  Mutex.lock t.locks.(s);
  let r = Flattbl.find_def t.tables.(s) key default in
  Mutex.unlock t.locks.(s);
  r

let mem t key =
  let s = shard t key in
  Mutex.lock t.locks.(s);
  let r = Flattbl.mem t.tables.(s) key in
  Mutex.unlock t.locks.(s);
  r

let add t key v =
  let s = shard t key in
  Mutex.lock t.locks.(s);
  (* may grow the shard's flat table: safe, the mutex serializes every
     same-shard access (see the .mli) *)
  Flattbl.add t.tables.(s) key v;
  Mutex.unlock t.locks.(s)

let length t =
  Array.fold_left (fun n tbl -> n + Flattbl.length tbl) 0 t.tables

let iter t f = Array.iter (fun tbl -> Flattbl.iter tbl f) t.tables

let to_hashtbl t =
  let out = Hashtbl.create (max 16 (length t)) in
  iter t (fun k v -> Hashtbl.add out k v);
  out

let bytes t =
  Array.fold_left (fun n tbl -> n + Flattbl.bytes tbl) 0 t.tables
