type t = { mutable a : int array; mutable len : int }

let create () = { a = Array.make 64 0; len = 0 }

let push v x =
  if v.len = Array.length v.a then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.a 0 b 0 v.len;
    v.a <- b
  end;
  v.a.(v.len) <- x;
  let i = v.len in
  v.len <- v.len + 1;
  i

let len v = v.len
let get v i = v.a.(i)
let clear v = v.len <- 0

let swap u v =
  let a = u.a and len = u.len in
  u.a <- v.a;
  u.len <- v.len;
  v.a <- a;
  v.len <- len

let to_array v = Array.sub v.a 0 v.len

let of_array a =
  let n = Array.length a in
  if n = 0 then create ()
  else { a = Array.copy a; len = n }

let bytes v = 8 * Array.length v.a
