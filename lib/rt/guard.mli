(** The polling point a long-running search checks at wave/chunk
    boundaries: one value bundling a {!Budget} and a {!Cancel} token.

    The inert guard is shared and never trips, so engines can hold one
    unconditionally and the hot path stays a single physical-equality
    test away from the uninstrumented code. *)

type t

val inert : t
(** Never trips; {!active} is [false]. *)

val create : ?budget:Budget.t -> ?cancel:Cancel.t -> ?link:Cancel.t -> unit -> t
(** [cancel] is this guard's {e owned} token: a tripped budget marks it
    so sibling pollers converge on the stop. [link] is a parent scope's
    token, {e observed} at every poll but never marked — use it to
    tighten a budget for a sub-task (a per-trial watchdog, say) that
    must still honour the enclosing run's cancellation without its own
    local expiry poisoning the shared token. *)

val active : t -> bool
(** Whether polling can ever trip (a cancel token or a non-unlimited
    budget is attached). Callers may skip byte accounting entirely when
    this is [false]. *)

val budget : t -> Budget.t
val cancel : t -> Cancel.t option

val poll : t -> states:int -> bytes:int -> Cancel.reason option
(** The cancellation point. Checks, in order: the linked token, the
    owned cancel token, the state-count ceiling, the byte ceiling, the
    deadline (the only check that reads the clock, and only when a
    deadline is set). A tripped budget also marks the owned cancel
    token, so sibling workers observing only the token stop too; the
    linked token is read-only. *)

val check : t -> states:int -> bytes:int -> unit
(** {!poll}, raising {!Cancel.Cancelled} — for cancellation points with
    no partial result to hand back. *)
