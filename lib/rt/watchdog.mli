(** Per-trial watchdog policy for Monte-Carlo sweeps (storm, fuzz): a
    timeout for each trial attempt plus a bounded number of retries, so
    one pathological trial cannot hang a 1000-trial sweep. Consumers
    keep their own seed bookkeeping for the retries; this module only
    carries the policy and the per-attempt deadline arithmetic. *)

type t = private { timeout_s : float; retries : int }

val make : ?retries:int -> timeout_s:float -> unit -> t
(** [retries] (default [1]) is the number of {e extra} attempts after
    the first times out. @raise Invalid_argument on a non-positive
    [timeout_s] or negative [retries]. *)

val deadline : t -> float
(** An absolute deadline [timeout_s] from now, for one attempt. *)
