(* Graceful drain for long-lived processes.

   A drain is two latches. The soft latch ("stop taking new work,
   finish what you have") is what SIGTERM requests the first time; the
   hard latch ("also stop the work in flight, cooperatively") is the
   escalation a second signal requests — it marks a caller-supplied
   cancel token, so every job guard linked to that token trips at its
   next polling point and the job degrades to the documented
   incomplete semantics instead of being killed mid-write.

   Signal handlers only flip atomics and mark the token (both
   async-signal-safe in OCaml: no locks, no allocation beyond the
   closure); the process's threads observe the latches at their own
   polling points — the accept loop, the scheduler, the executor. *)

type t = {
  soft : bool Atomic.t;
  hard : bool Atomic.t;
  cancel : Cancel.t;  (* marked on hard drain; link job guards to it *)
}

let create () =
  { soft = Atomic.make false; hard = Atomic.make false; cancel = Cancel.create () }

let request t = Atomic.set t.soft true
let requested t = Atomic.get t.soft

let request_hard t =
  Atomic.set t.soft true;
  Atomic.set t.hard true;
  Cancel.request t.cancel (Cancel.Signal "drain")

let hard_requested t = Atomic.get t.hard
let cancel t = t.cancel

let install_signals ?(signals = [ Sys.sigterm; Sys.sigint ]) t =
  let handle =
    Sys.Signal_handle
      (fun _ -> if requested t then request_hard t else request t)
  in
  List.iter
    (fun s -> try Sys.set_signal s handle with Invalid_argument _ -> ())
    signals
