(** Resource budgets for long-running explorations.

    A budget is a set of optional ceilings — wall-clock deadline,
    visited-state count, flat-storage bytes — that a search compares
    against its own live accounting at wave/chunk boundaries (see
    {!Guard}). Exceeding a budget is {e graceful}: the search stops
    cooperatively with a partial verdict (and, when enabled, a resumable
    checkpoint), unlike the engine's hard [max_states] cap which raises
    [Region_overflow].

    Deadlines are stored as absolute [Unix.gettimeofday] timestamps so
    one budget value can govern a whole pipeline (span, then closure,
    then convergence) without the clock restarting at each phase. *)

type t = {
  deadline : float option;  (** absolute [Unix.gettimeofday] timestamp *)
  max_states : int option;  (** ceiling on visited/explored states *)
  max_bytes : int option;  (** ceiling on live flat-storage bytes *)
}

val unlimited : t
(** No ceilings; {!Guard.poll} against it never trips. *)

val make : ?deadline_s:float -> ?max_states:int -> ?max_bytes:int -> unit -> t
(** [deadline_s] is {e relative} seconds from now, converted to an
    absolute timestamp at call time. Omitted fields are unlimited.
    @raise Invalid_argument on a negative [deadline_s], or a
    non-positive [max_states] or [max_bytes]. *)

val is_unlimited : t -> bool

val pp : Format.formatter -> t -> unit
