type reason =
  | Deadline
  | Max_states
  | Max_bytes
  | Signal of string
  | Requested of string

type t = reason option Atomic.t

exception Cancelled of reason

let create () = Atomic.make None

(* First request wins. A lost race just means someone else's reason was
   recorded first — exactly the semantics we want, so no retry loop. *)
let request t reason =
  ignore (Atomic.compare_and_set t None (Some reason))

let get t = Atomic.get t
let clear t = Atomic.set t None

let reason_label = function
  | Deadline -> "deadline"
  | Max_states -> "max-states"
  | Max_bytes -> "max-bytes"
  | Signal s -> "signal:" ^ s
  | Requested s -> "requested:" ^ s

let () =
  Printexc.register_printer (function
    | Cancelled r -> Some (Printf.sprintf "Rt.Cancel.Cancelled(%s)" (reason_label r))
    | _ -> None)
