type t = {
  deadline : float option;
  max_states : int option;
  max_bytes : int option;
}

let unlimited = { deadline = None; max_states = None; max_bytes = None }

let make ?deadline_s ?max_states ?max_bytes () =
  (match deadline_s with
  | Some d when d < 0. ->
      invalid_arg "Budget.make: deadline_s must be non-negative"
  | _ -> ());
  (match max_states with
  | Some n when n <= 0 -> invalid_arg "Budget.make: max_states must be positive"
  | _ -> ());
  (match max_bytes with
  | Some n when n <= 0 -> invalid_arg "Budget.make: max_bytes must be positive"
  | _ -> ());
  {
    deadline = Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s;
    max_states;
    max_bytes;
  }

let is_unlimited t =
  t.deadline = None && t.max_states = None && t.max_bytes = None

let pp ppf t =
  if is_unlimited t then Format.fprintf ppf "unlimited"
  else begin
    let sep = ref "" in
    let field name pp_v v =
      Format.fprintf ppf "%s%s=%a" !sep name pp_v v;
      sep := " "
    in
    Option.iter
      (fun d -> field "deadline" Format.pp_print_float (d -. Unix.gettimeofday ()))
      t.deadline;
    Option.iter (fun n -> field "max_states" Format.pp_print_int n) t.max_states;
    Option.iter (fun n -> field "max_bytes" Format.pp_print_int n) t.max_bytes
  end
