(** Versioned, checksummed checkpoint files.

    A snapshot is a typed container — a kind tag, the writing engine's
    config hash, small named integer metadata, and named [int array]
    sections (visited keys, frontiers, edges). The on-disk format is a
    magic string, a small length-prefixed header (decoded by hand with
    bounds checks — never [Marshal], whose decoder can crash the process
    on crafted input instead of raising), each section's data as raw
    little-endian integers (4 bytes per element when the section fits
    [int32], 8 otherwise), and a trailing checksum folded over the
    header and every element. Sections of a 10^7-state wavefront
    therefore write and load at bulk-I/O speed rather than
    [Marshal]-the-world speed.

    {!load} verifies the magic, the declared sizes against the file
    size, and the checksum, and raises {!Corrupt} with a descriptive
    message on any mismatch — truncation, bit rot, or a file that is
    not a snapshot at all. Config-hash validation is the {e reader's}
    job (the engine compares against its own hash and raises {!Corrupt}
    on mismatch). *)

type t = {
  kind : string;  (** e.g. ["region"], ["span"] *)
  config_hash : string;  (** writing engine's configuration fingerprint *)
  meta : (string * int) list;
  sections : (string * int array) list;
}

exception Corrupt of string

val save : file:string -> t -> unit
(** Write atomically: the snapshot is written to [file ^ ".tmp"] and
    renamed into place only once complete, so an interrupted or failed
    save leaves any previous snapshot at [file] intact (the temp file is
    removed on failure). @raise Sys_error when the path is not
    writable. *)

val load : file:string -> t
(** @raise Corrupt on unreadable, truncated, altered, or non-snapshot
    files. *)

val meta_int : t -> string -> int
(** @raise Corrupt when the key is missing (a snapshot of the wrong
    kind or a version skew). *)

val section : t -> string -> int array
(** @raise Corrupt when the section is missing. *)

val total_elems : t -> int
(** Total element count over all sections — the size figure reported
    by checkpoint-writing paths. *)
