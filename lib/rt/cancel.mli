(** Domain-safe cooperative cancellation.

    A token is shared between a requester (a signal handler, a serving
    thread, a budget check) and any number of workers that poll it at
    wave/chunk boundaries. The first request wins; later requests are
    ignored so the recorded reason names what actually stopped the run.

    Requests are a single [Atomic.set], so they are safe from OCaml
    signal handlers and from any domain. *)

type reason =
  | Deadline  (** wall-clock budget exhausted *)
  | Max_states  (** state-count budget exhausted *)
  | Max_bytes  (** byte budget exhausted *)
  | Signal of string  (** e.g. ["SIGINT"], ["SIGTERM"] *)
  | Requested of string  (** programmatic cancellation with a label *)

type t

exception Cancelled of reason
(** Raised by cancellation points that cannot return a partial result
    (e.g. the eager backend's CSR build). *)

val create : unit -> t

val request : t -> reason -> unit
(** Record the reason unless one is already recorded. *)

val get : t -> reason option
(** The winning reason, if any. A plain [Atomic.get] — cheap enough for
    per-chunk polling. *)

val clear : t -> unit
(** Forget any recorded reason (for reusing a token across runs in
    tests). *)

val reason_label : reason -> string
(** Stable machine-readable label: ["deadline"], ["max-states"],
    ["max-bytes"], ["signal:SIGINT"], ["requested:<label>"]. *)
