(** Graceful drain for long-lived processes (the serve daemon).

    Two latches: {e soft} — stop accepting new work, finish (or
    checkpoint) what is already queued; {e hard} — additionally request
    cooperative cancellation of the work in flight through the embedded
    {!Cancel} token, so jobs whose guards link to it stop at their next
    polling point with the documented incomplete semantics.

    {!install_signals} maps the first delivery of each signal to a soft
    drain and any further delivery to a hard drain. Handlers only flip
    atomics and mark the token; the process's threads observe the
    latches at their own polling points (accept loop, scheduler,
    executor), so no lock is ever taken in signal context. *)

type t

val create : unit -> t

val request : t -> unit
(** Request a soft drain (idempotent). *)

val requested : t -> bool

val request_hard : t -> unit
(** Request a hard drain: implies soft, and marks {!cancel} with
    [Signal "drain"]. *)

val hard_requested : t -> bool

val cancel : t -> Cancel.t
(** The token hard drain marks. Link per-job guards to it
    ([Rt.Guard.create ~link:(Drain.cancel d)]) so escalation reaches
    running jobs cooperatively. *)

val install_signals : ?signals:int list -> t -> unit
(** Install handlers (default [SIGTERM; SIGINT]): first delivery →
    {!request}, later deliveries → {!request_hard}. Signals unknown to
    the platform are skipped. *)
