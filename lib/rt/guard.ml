type t = {
  budget : Budget.t;
  cancel : Cancel.t option;  (* owned: marked when this guard's budget trips *)
  link : Cancel.t option;  (* observed only: a parent's token, never marked *)
  active : bool;
}

let inert =
  { budget = Budget.unlimited; cancel = None; link = None; active = false }

let create ?(budget = Budget.unlimited) ?cancel ?link () =
  let active =
    cancel <> None || link <> None || not (Budget.is_unlimited budget)
  in
  { budget; cancel; link; active }

let active t = t.active
let budget t = t.budget
let cancel t = t.cancel

let trip t reason =
  (* mark the owned token so sibling pollers (worker domains, later
     phases) observe the stop without re-deriving it from the budget;
     the linked token belongs to an enclosing scope and is left alone *)
  Option.iter (fun c -> Cancel.request c reason) t.cancel;
  Some reason

let poll t ~states ~bytes =
  if not t.active then None
  else
    match Option.bind t.link Cancel.get with
    | Some r -> Some r
    | None -> (
        match Option.bind t.cancel Cancel.get with
        | Some r -> Some r
        | None -> (
            match t.budget.Budget.max_states with
            | Some cap when states > cap -> trip t Cancel.Max_states
            | _ -> (
                match t.budget.Budget.max_bytes with
                | Some cap when bytes > cap -> trip t Cancel.Max_bytes
                | _ -> (
                    match t.budget.Budget.deadline with
                    | Some d when Unix.gettimeofday () > d ->
                        trip t Cancel.Deadline
                    | _ -> None))))

let check t ~states ~bytes =
  match poll t ~states ~bytes with
  | None -> ()
  | Some reason -> raise (Cancel.Cancelled reason)
