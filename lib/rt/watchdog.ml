type t = { timeout_s : float; retries : int }

let make ?(retries = 1) ~timeout_s () =
  if timeout_s <= 0. then invalid_arg "Watchdog.make: timeout_s must be positive";
  if retries < 0 then invalid_arg "Watchdog.make: retries must be non-negative";
  { timeout_s; retries }

let deadline t = Unix.gettimeofday () +. t.timeout_s
