type t = {
  kind : string;
  config_hash : string;
  meta : (string * int) list;
  sections : (string * int array) list;
}

exception Corrupt of string

(* Header layout is versioned by the magic string: bump it on any
   incompatible change so old snapshots fail loudly at the magic check
   instead of unmarshalling garbage. *)
let magic = "NMSNAP01"

type header = {
  h_kind : string;
  h_hash : string;
  h_meta : (string * int) list;
  h_secs : (string * int * int) list;  (* name, element count, width *)
}

(* Checksum: a splitmix-style avalanche folded over the header bytes and
   every section element. Integer-granularity folding keeps verification
   far cheaper than a cryptographic digest over the raw bytes — the
   checkpoint overhead budget (E20: < 15% of wall time) is tight. *)
let mix h v =
  let h = h lxor v in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let seed = 0x6e6d736e (* "nmsn" *)

let fold_string acc s =
  let acc = ref (mix acc (String.length s)) in
  String.iter (fun c -> acc := mix !acc (Char.code c)) s;
  !acc

let width_of a =
  let fits = ref true in
  Array.iter (fun v -> if v < 0 || v > 0x7FFFFFFF then fits := false) a;
  if !fits then 4 else 8

let chunk_elems = 1 lsl 20

let save ~file t =
  let oc = open_out_bin file in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !ok then try Sys.remove file with Sys_error _ -> ())
  @@ fun () ->
  let secs = List.map (fun (name, a) -> (name, a, width_of a)) t.sections in
  let header =
    Marshal.to_string
      {
        h_kind = t.kind;
        h_hash = t.config_hash;
        h_meta = t.meta;
        h_secs = List.map (fun (n, a, w) -> (n, Array.length a, w)) secs;
      }
      []
  in
  output_string oc magic;
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length header));
  output_bytes oc (Bytes.sub b 0 4);
  output_string oc header;
  let sum = ref (fold_string seed header) in
  let buf = Bytes.create (chunk_elems * 8) in
  List.iter
    (fun (_, a, w) ->
      let n = Array.length a in
      let cap = Bytes.length buf / w in
      let i = ref 0 in
      while !i < n do
        let m = min cap (n - !i) in
        if w = 4 then
          for j = 0 to m - 1 do
            let v = Array.unsafe_get a (!i + j) in
            sum := mix !sum v;
            Bytes.set_int32_le buf (4 * j) (Int32.of_int v)
          done
        else
          for j = 0 to m - 1 do
            let v = Array.unsafe_get a (!i + j) in
            sum := mix !sum v;
            Bytes.set_int64_le buf (8 * j) (Int64.of_int v)
          done;
        output oc buf 0 (m * w);
        i := !i + m
      done)
    secs;
  Bytes.set_int64_le b 0 (Int64.of_int !sum);
  output_bytes oc b;
  ok := true

let load ~file =
  let ic =
    try open_in_bin file
    with Sys_error m -> raise (Corrupt (Printf.sprintf "cannot open: %s" m))
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let fail msg = raise (Corrupt (Printf.sprintf "%s: %s" file msg)) in
  let total = in_channel_length ic in
  let read_exact n =
    try really_input_string ic n with End_of_file -> fail "truncated"
  in
  if total < String.length magic + 4 + 8 then fail "truncated";
  if read_exact (String.length magic) <> magic then
    fail "bad magic (not a nonmask snapshot)";
  let hlen = Int32.to_int (String.get_int32_le (read_exact 4) 0) in
  if hlen <= 0 || hlen > total then fail "implausible header length";
  let header_s = read_exact hlen in
  let header =
    try (Marshal.from_string header_s 0 : header)
    with _ -> fail "unreadable header"
  in
  let data_bytes =
    List.fold_left
      (fun acc (_, len, w) ->
        if len < 0 || len > total || (w <> 4 && w <> 8) then
          fail "implausible section descriptor"
        else acc + (len * w))
      0 header.h_secs
  in
  if String.length magic + 4 + hlen + data_bytes + 8 <> total then
    fail "size mismatch (truncated or padded)";
  let sum = ref (fold_string seed header_s) in
  let buf = Bytes.create (chunk_elems * 8) in
  let sections =
    List.map
      (fun (name, len, w) ->
        let a = Array.make len 0 in
        let cap = Bytes.length buf / w in
        let i = ref 0 in
        while !i < len do
          let m = min cap (len - !i) in
          (try really_input ic buf 0 (m * w)
           with End_of_file -> fail "truncated section");
          if w = 4 then
            for j = 0 to m - 1 do
              let v = Int32.to_int (Bytes.get_int32_le buf (4 * j)) in
              sum := mix !sum v;
              Array.unsafe_set a (!i + j) v
            done
          else
            for j = 0 to m - 1 do
              let v = Int64.to_int (Bytes.get_int64_le buf (8 * j)) in
              sum := mix !sum v;
              Array.unsafe_set a (!i + j) v
            done;
          i := !i + m
        done;
        (name, a))
      header.h_secs
  in
  let stored = Int64.to_int (String.get_int64_le (read_exact 8) 0) in
  if stored <> !sum then fail "checksum mismatch";
  {
    kind = header.h_kind;
    config_hash = header.h_hash;
    meta = header.h_meta;
    sections;
  }

let meta_int t name =
  match List.assoc_opt name t.meta with
  | Some v -> v
  | None -> raise (Corrupt (Printf.sprintf "snapshot lacks meta %S" name))

let section t name =
  match List.assoc_opt name t.sections with
  | Some a -> a
  | None -> raise (Corrupt (Printf.sprintf "snapshot lacks section %S" name))

let total_elems t =
  List.fold_left (fun acc (_, a) -> acc + Array.length a) 0 t.sections
