type t = {
  kind : string;
  config_hash : string;
  meta : (string * int) list;
  sections : (string * int array) list;
}

exception Corrupt of string

(* Header layout is versioned by the magic string: bump it on any
   incompatible change so old snapshots fail loudly at the magic check
   instead of decoding garbage. 02: the header switched from [Marshal]
   to the hand-rolled length-prefixed encoding below. *)
let magic = "NMSNAP02"

type header = {
  h_kind : string;
  h_hash : string;
  h_meta : (string * int) list;
  h_secs : (string * int * int) list;  (* name, element count, width *)
}

(* The header is only strings and ints, so it is encoded by hand —
   4-byte-length-prefixed strings, 8-byte little-endian ints,
   count-prefixed lists — rather than with [Marshal], whose decoder is
   not robust against corrupted or crafted input (it can crash the
   process instead of raising). Every length and count is bounds-checked
   against the header string before it is used. *)
let encode_header h =
  let b = Buffer.create 256 in
  let str s =
    Buffer.add_int32_le b (Int32.of_int (String.length s));
    Buffer.add_string b s
  in
  let int v = Buffer.add_int64_le b (Int64.of_int v) in
  str h.h_kind;
  str h.h_hash;
  int (List.length h.h_meta);
  List.iter
    (fun (k, v) ->
      str k;
      int v)
    h.h_meta;
  int (List.length h.h_secs);
  List.iter
    (fun (n, len, w) ->
      str n;
      int len;
      int w)
    h.h_secs;
  Buffer.contents b

(* [fail] raises; it is the caller's Corrupt-with-filename reporter. *)
let decode_header ~fail s =
  let pos = ref 0 in
  let bad () = fail "unreadable header" in
  let take n =
    if n < 0 || n > String.length s - !pos then bad ();
    let p = !pos in
    pos := p + n;
    p
  in
  let str () =
    let p = take 4 in
    let n = Int32.to_int (String.get_int32_le s p) in
    let p = take n in
    String.sub s p n
  in
  let int () =
    let p = take 8 in
    Int64.to_int (String.get_int64_le s p)
  in
  let list read =
    let n = int () in
    (* every element is at least 4 bytes, so a count beyond the
       remaining bytes is garbage — reject before building the list *)
    if n < 0 || n > (String.length s - !pos) / 4 then bad ();
    let rec go k acc =
      if k = 0 then List.rev acc else go (k - 1) (read () :: acc)
    in
    go n []
  in
  let h_kind = str () in
  let h_hash = str () in
  let h_meta =
    list (fun () ->
        let k = str () in
        let v = int () in
        (k, v))
  in
  let h_secs =
    list (fun () ->
        let n = str () in
        let len = int () in
        (n, len, int ()))
  in
  if !pos <> String.length s then bad ();
  { h_kind; h_hash; h_meta; h_secs }

(* Checksum: a splitmix-style avalanche folded over the header bytes and
   every section element. Integer-granularity folding keeps verification
   far cheaper than a cryptographic digest over the raw bytes — the
   checkpoint overhead budget (E20: < 15% of wall time) is tight. *)
let mix h v =
  let h = h lxor v in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let seed = 0x6e6d736e (* "nmsn" *)

let fold_string acc s =
  let acc = ref (mix acc (String.length s)) in
  String.iter (fun c -> acc := mix !acc (Char.code c)) s;
  !acc

let width_of a =
  let fits = ref true in
  Array.iter (fun v -> if v < 0 || v > 0x7FFFFFFF then fits := false) a;
  if !fits then 4 else 8

let chunk_elems = 1 lsl 20

(* Saves go to a sibling temp file and are renamed into place only once
   complete: rename(2) is atomic on POSIX, so a crash or failure mid-save
   leaves any previous snapshot at [file] intact instead of a truncated
   ruin. *)
let save ~file t =
  let tmp = file ^ ".tmp" in
  (let oc = open_out_bin tmp in
   let ok = ref false in
   Fun.protect
     ~finally:(fun () ->
       close_out_noerr oc;
       if not !ok then try Sys.remove tmp with Sys_error _ -> ())
   @@ fun () ->
   let secs = List.map (fun (name, a) -> (name, a, width_of a)) t.sections in
   let header =
     encode_header
       {
         h_kind = t.kind;
         h_hash = t.config_hash;
         h_meta = t.meta;
         h_secs = List.map (fun (n, a, w) -> (n, Array.length a, w)) secs;
       }
   in
   output_string oc magic;
   let b = Bytes.create 8 in
   Bytes.set_int32_le b 0 (Int32.of_int (String.length header));
   output_bytes oc (Bytes.sub b 0 4);
   output_string oc header;
   let sum = ref (fold_string seed header) in
   let buf = Bytes.create (chunk_elems * 8) in
   List.iter
     (fun (_, a, w) ->
       let n = Array.length a in
       let cap = Bytes.length buf / w in
       let i = ref 0 in
       while !i < n do
         let m = min cap (n - !i) in
         if w = 4 then
           for j = 0 to m - 1 do
             let v = Array.unsafe_get a (!i + j) in
             sum := mix !sum v;
             Bytes.set_int32_le buf (4 * j) (Int32.of_int v)
           done
         else
           for j = 0 to m - 1 do
             let v = Array.unsafe_get a (!i + j) in
             sum := mix !sum v;
             Bytes.set_int64_le buf (8 * j) (Int64.of_int v)
           done;
         output oc buf 0 (m * w);
         i := !i + m
       done)
     secs;
   Bytes.set_int64_le b 0 (Int64.of_int !sum);
   output_bytes oc b;
   ok := true);
  Sys.rename tmp file

let load ~file =
  let ic =
    try open_in_bin file
    with Sys_error m -> raise (Corrupt (Printf.sprintf "cannot open: %s" m))
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let fail msg = raise (Corrupt (Printf.sprintf "%s: %s" file msg)) in
  let total = in_channel_length ic in
  let read_exact n =
    try really_input_string ic n with End_of_file -> fail "truncated"
  in
  if total < String.length magic + 4 + 8 then fail "truncated";
  if read_exact (String.length magic) <> magic then
    fail "bad magic (not a nonmask snapshot)";
  let hlen = Int32.to_int (String.get_int32_le (read_exact 4) 0) in
  if hlen <= 0 || hlen > total then fail "implausible header length";
  let header_s = read_exact hlen in
  let header = decode_header ~fail header_s in
  let data_bytes =
    List.fold_left
      (fun acc (_, len, w) ->
        if len < 0 || len > total || (w <> 4 && w <> 8) then
          fail "implausible section descriptor"
        else acc + (len * w))
      0 header.h_secs
  in
  if String.length magic + 4 + hlen + data_bytes + 8 <> total then
    fail "size mismatch (truncated or padded)";
  let sum = ref (fold_string seed header_s) in
  let buf = Bytes.create (chunk_elems * 8) in
  let sections =
    List.map
      (fun (name, len, w) ->
        let a = Array.make len 0 in
        let cap = Bytes.length buf / w in
        let i = ref 0 in
        while !i < len do
          let m = min cap (len - !i) in
          (try really_input ic buf 0 (m * w)
           with End_of_file -> fail "truncated section");
          if w = 4 then
            for j = 0 to m - 1 do
              let v = Int32.to_int (Bytes.get_int32_le buf (4 * j)) in
              sum := mix !sum v;
              Array.unsafe_set a (!i + j) v
            done
          else
            for j = 0 to m - 1 do
              let v = Int64.to_int (Bytes.get_int64_le buf (8 * j)) in
              sum := mix !sum v;
              Array.unsafe_set a (!i + j) v
            done;
          i := !i + m
        done;
        (name, a))
      header.h_secs
  in
  let stored = Int64.to_int (String.get_int64_le (read_exact 8) 0) in
  if stored <> !sum then fail "checksum mismatch";
  {
    kind = header.h_kind;
    config_hash = header.h_hash;
    meta = header.h_meta;
    sections;
  }

let meta_int t name =
  match List.assoc_opt name t.meta with
  | Some v -> v
  | None -> raise (Corrupt (Printf.sprintf "snapshot lacks meta %S" name))

let section t name =
  match List.assoc_opt name t.sections with
  | Some a -> a
  | None -> raise (Corrupt (Printf.sprintf "snapshot lacks section %S" name))

let total_elems t =
  List.fold_left (fun acc (_, a) -> acc + Array.length a) 0 t.sections
