(** Tolerance-frontier sweeps.

    The paper certifies nonmasking [T]-tolerance at one fault budget; a
    sweep quantifies it, running {!Nonmask.Certify.tolerance} across a
    budget range and reporting, per budget: the span size and depth, the
    certification verdict, the exact worst-case recovery bound, and
    (optionally) the independent adversary bound ({!Adversary}). The
    {e cliff} is the first budget where the verdict flips — the edge of
    the program's quantified tolerance.

    Spans are monotone in the budget, and once a budget-[b] span's
    deepest fault layer sits strictly below [b] the closure is
    saturated: every larger budget yields the identical span, hence the
    identical certificate and adversary bound. The sweep walks budgets
    in ascending order and replays saturated points with
    [reused = true] instead of re-exploring; below saturation each span
    is computed once and shared between certification and the
    adversary. *)

type point = {
  budget : int;
  span_states : int;  (** [|T|] at this budget *)
  span_roots : int;
  max_depth : int;  (** deepest fault layer actually reached *)
  certified : bool;
  worst_case : int option;
      (** exact worst-case recovery steps from the certificate's
          convergence check; [None] when unavailable (weak-fairness
          fallback or failed certification) *)
  adversary : Adversary.result option;  (** when the sweep ran with it *)
  reused : bool;  (** replayed from a saturated smaller budget *)
  cert : Nonmask.Certify.t;  (** the full certificate *)
}

type frontier = {
  points : point list;  (** ascending budget order *)
  cliff : int option;
      (** first budget whose verdict differs from its predecessor's;
          [None] when the verdict is uniform *)
}

val range : max:int -> int list
(** [[0; 1; …; max]].
    @raise Invalid_argument when [max < 0]. *)

val adversary_bound : Adversary.result -> int option
(** The finite bound, if the verdict is [Bounded]. *)

val run :
  engine:Explore.Engine.t ->
  program:Guarded.Program.t ->
  faults:Guarded.Action.t list ->
  ?envs:Guarded.Action.t list ->
  invariant:(Guarded.State.t -> bool) ->
  ?from:Explore.Engine.roots ->
  budgets:int list ->
  ?adversary:bool ->
  ?on_point:(point -> unit) ->
  name:string ->
  unit ->
  frontier
(** Sweep the budgets (sorted ascending, deduplicated). Each point
    certifies with a precomputed span ({!Explore.Faultspan.compute} once
    per unsaturated budget, handed to [Certify.tolerance ~span]); with
    [adversary] (default [false]) it also runs {!Adversary.worst_case}
    over the same span. [envs] are environment actions, threaded through
    both the span and the certificate.

    [on_point] fires after each point, in budget order — stream points
    to a report file so an interrupted sweep still leaves the partial
    curve behind. The engine's {!Obs.Ctx} receives a ["tol.point"] event
    per point and a closing ["tol.frontier"] event.

    @raise Invalid_argument on an empty budget list or a negative
    budget.
    @raise Explore.Engine.Interrupted when the engine's guard trips
    mid-sweep (points already emitted through [on_point] stand).
    @raise Explore.Engine.Region_overflow when a span exceeds the
    engine's state budget. *)

val pp_frontier : Format.formatter -> frontier -> unit
(** Rendered table, one row per point, cliff line last. *)
