(* Exact worst-case recovery time over a fault span, by a backward
   attractor computation (the game view of the stochastic-game masking
   papers, specialized to one player): every scheduling choice belongs
   to the adversarial daemon, so the worst case is the max over all
   program choices at every state.

   rank(s) = 0 for s ∈ S; a state outside S is ranked once all of its
   successors are ranked, at 1 + max over successor ranks. The ranks are
   the unique fixpoint on the acyclic part of T \ S, so the computation
   is a backward BFS from S in waves: wave k ranks the states whose last
   unranked successor was ranked in wave k-1. A state never ranked sits
   on a cycle (the daemon can postpone recovery forever) or behind a
   deadlock — no finite bound exists. The bound equals the longest
   path + 1 that [Explore.Convergence]'s exact analysis reports, but is
   derived independently: straight from the span and the compiled
   actions, never touching [Engine.region] — which is what lets it
   validate the certificate's claim rather than restate it.

   Successor expansion (the state-decoding, action-applying bulk) is
   chunk-parallel over the span via [Par.Pool]; wave ranking reads only
   ranks assigned in strictly earlier waves, so it parallelizes over the
   frontier waves the same way. Results are bit-identical at any job
   count: per-state successor sets are deterministic and the rank
   fixpoint is order-independent. *)

module State = Guarded.State
module Compile = Guarded.Compile
module Engine = Explore.Engine
module Faultspan = Explore.Faultspan

type witness =
  | Deadlock of State.t
  | Cycle of State.t list
  | Escape of State.t

type verdict = Bounded of int | Unbounded of witness

type result = {
  verdict : verdict;
  span_states : int;
  outside : int;  (* states of T \ S *)
  ranked : int;  (* states that received a finite rank *)
  waves : int;  (* backward waves from S *)
}

let pp_verdict env ppf = function
  | Bounded w -> Format.fprintf ppf "bounded: worst case %d steps" w
  | Unbounded (Deadlock s) ->
      Format.fprintf ppf "unbounded: deadlock outside S at %a" (State.pp env)
        s
  | Unbounded (Cycle sample) ->
      Format.fprintf ppf
        "unbounded: the daemon can cycle outside S (sample: %a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (State.pp env))
        sample
  | Unbounded (Escape s) ->
      Format.fprintf ppf "unbounded: a step escapes T at %a" (State.pp env) s

let worst_case engine ~program ?envs ~span ~invariant () =
  let env = Engine.env engine in
  let n = Faultspan.count span in
  let base_acts =
    let p = (program : Compile.program).Compile.actions in
    match envs with
    | None -> p
    | Some (e : Compile.program) -> Array.append p e.Compile.actions
  in
  let recompiled () =
    let p = (Compile.program program.Compile.source).Compile.actions in
    match envs with
    | None -> p
    | Some e ->
        Array.append p (Compile.program e.Compile.source).Compile.actions
  in
  (* span index of every member key, iter order *)
  let idx_of = Hashtbl.create (2 * n) in
  for i = 0 to n - 1 do
    Hashtbl.replace idx_of (Faultspan.nth_key span i) i
  done;
  let in_s = Bytes.make n '\000' in
  let has_succ = Bytes.make n '\000' in
  let escaped = Bytes.make n '\000' in
  (* per non-S state: deduped span indices of its non-S successors *)
  let succs = Array.make n [||] in
  let expand ~(acts : Compile.action array) buf post scratch lo hi =
    for i = lo to hi - 1 do
      Faultspan.decode_nth_into span i buf;
      if invariant buf then Bytes.unsafe_set in_s i '\001'
      else begin
        let cnt = ref 0 in
        Array.iter
          (fun (ca : Compile.action) ->
            if ca.Compile.enabled buf then begin
              Bytes.unsafe_set has_succ i '\001';
              ca.Compile.apply_into buf post;
              if not (invariant post) then begin
                match Hashtbl.find_opt idx_of (Engine.encode_key engine post) with
                | Some j ->
                    let dup = ref false in
                    for k = 0 to !cnt - 1 do
                      if scratch.(k) = j then dup := true
                    done;
                    if not !dup then begin
                      scratch.(!cnt) <- j;
                      incr cnt
                    end
                | None -> Bytes.unsafe_set escaped i '\001'
                | exception Invalid_argument _ ->
                    Bytes.unsafe_set escaped i '\001'
              end
            end)
          acts;
        succs.(i) <- Array.sub scratch 0 !cnt
      end
    done
  in
  let jobs = Engine.jobs engine in
  (if jobs <= 1 then
     expand ~acts:base_acts (State.make env) (State.make env)
       (Array.make (Array.length base_acts) 0)
       0 n
   else
     Par.Pool.use ?pool:(Engine.pool engine) ~jobs @@ fun pool ->
     let j = Par.Pool.jobs pool in
     (* compiled actions carry private scratch: one recompilation per
        worker domain *)
     let worker_acts =
       Array.init j (fun w -> if w = 0 then base_acts else recompiled ())
     in
     let worker_buf = Array.init j (fun _ -> State.make env) in
     let worker_post = Array.init j (fun _ -> State.make env) in
     let worker_scratch =
       Array.init j (fun w -> Array.make (Array.length worker_acts.(w)) 0)
     in
     Par.Pool.parallel_for pool ~n (fun ~worker lo hi ->
         expand ~acts:worker_acts.(worker) worker_buf.(worker)
           worker_post.(worker) worker_scratch.(worker) lo hi));
  let outside = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.unsafe_get in_s i = '\000' then incr outside
  done;
  let outside = !outside in
  let nth_state i =
    let s = State.make env in
    Faultspan.decode_nth_into span i s;
    s
  in
  let first_flag flags =
    let rec go i =
      if i >= n then None
      else if Bytes.unsafe_get flags i = '\001' then Some i
      else go (i + 1)
    in
    go 0
  in
  match first_flag escaped with
  | Some i ->
      {
        verdict = Unbounded (Escape (nth_state i));
        span_states = n;
        outside;
        ranked = 0;
        waves = 0;
      }
  | None -> (
      let deadlock =
        let rec go i =
          if i >= n then None
          else if
            Bytes.unsafe_get in_s i = '\000'
            && Bytes.unsafe_get has_succ i = '\000'
          then Some i
          else go (i + 1)
        in
        go 0
      in
      match deadlock with
      | Some i ->
          {
            verdict = Unbounded (Deadlock (nth_state i));
            span_states = n;
            outside;
            ranked = 0;
            waves = 0;
          }
      | None ->
          (* reverse adjacency over the non-S successor edges, flat *)
          let pred_cnt = Array.make n 0 in
          let pending = Array.make n 0 in
          for i = 0 to n - 1 do
            pending.(i) <- Array.length succs.(i);
            Array.iter (fun j -> pred_cnt.(j) <- pred_cnt.(j) + 1) succs.(i)
          done;
          let pred_off = Array.make (n + 1) 0 in
          for i = 0 to n - 1 do
            pred_off.(i + 1) <- pred_off.(i) + pred_cnt.(i)
          done;
          let pred_arr = Array.make pred_off.(n) 0 in
          let fill = Array.copy pred_off in
          for i = 0 to n - 1 do
            Array.iter
              (fun j ->
                pred_arr.(fill.(j)) <- i;
                fill.(j) <- fill.(j) + 1)
              succs.(i)
          done;
          let rank = Array.make n (-1) in
          let ranked = ref 0 in
          let waves = ref 0 in
          let wave = ref [] in
          (* collect in reverse index order so the wave list is in index
             order — purely cosmetic (ranks are order-independent) but
             keeps traces and witnesses deterministic by construction *)
          for i = n - 1 downto 0 do
            if Bytes.unsafe_get in_s i = '\000' && pending.(i) = 0 then
              wave := i :: !wave
          done;
          let worst = ref 0 in
          while !wave <> [] do
            incr waves;
            let members = !wave in
            wave := [];
            (* rank the wave: every successor was ranked in an earlier
               wave, so this is a pure read of [rank] *)
            List.iter
              (fun i ->
                let r =
                  1
                  + Array.fold_left
                      (fun acc j -> max acc rank.(j))
                      0 succs.(i)
                in
                rank.(i) <- r;
                if r > !worst then worst := r;
                incr ranked)
              members;
            (* propagate: a predecessor whose last unranked successor was
               in this wave joins the next *)
            let next = ref [] in
            List.iter
              (fun i ->
                for k = pred_off.(i) to pred_off.(i + 1) - 1 do
                  let p = pred_arr.(k) in
                  pending.(p) <- pending.(p) - 1;
                  if pending.(p) = 0 && Bytes.unsafe_get in_s p = '\000' then
                    next := p :: !next
                done)
              members;
            wave := List.sort compare !next
          done;
          if !ranked < outside then begin
            let sample = ref [] in
            let taken = ref 0 in
            (try
               for i = 0 to n - 1 do
                 if Bytes.unsafe_get in_s i = '\000' && rank.(i) < 0 then begin
                   sample := nth_state i :: !sample;
                   incr taken;
                   if !taken >= 10 then raise Exit
                 end
               done
             with Exit -> ());
            {
              verdict = Unbounded (Cycle (List.rev !sample));
              span_states = n;
              outside;
              ranked = !ranked;
              waves = !waves;
            }
          end
          else
            {
              verdict = Bounded !worst;
              span_states = n;
              outside;
              ranked = !ranked;
              waves = !waves;
            })
