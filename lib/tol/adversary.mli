(** Adversarial daemon search: the exact worst-case recovery time over a
    fault span.

    Storm simulation ({!Sim.Storm}) samples recovery times under a random
    daemon — its quantiles are {e observations}, not guarantees. This
    module computes the {e sound upper bound}: treating every scheduling
    choice as adversarial, the worst number of program (∪ environment)
    steps any state of [T] can take to reach [S], by a backward attractor
    (rank) computation over the span. A finite bound dominates every
    schedule a storm can sample; an unbounded verdict comes with a
    witness the daemon can exploit forever. *)

type witness =
  | Deadlock of Guarded.State.t
      (** A span state outside [S] with no enabled action. *)
  | Cycle of Guarded.State.t list
      (** The daemon can cycle outside [S] forever; a sample (at most 10,
          span order) of the states never ranked. *)
  | Escape of Guarded.State.t
      (** A step from this state leaves [T] without entering [S] — the
          span does not cover the supplied program/environment (a closure
          violation; certification would also fail). *)

type verdict = Bounded of int | Unbounded of witness

type result = {
  verdict : verdict;
  span_states : int;  (** [|T|] *)
  outside : int;  (** states of [T \ S] *)
  ranked : int;  (** states that received a finite rank *)
  waves : int;  (** backward waves from [S] *)
}

val worst_case :
  Explore.Engine.t ->
  program:Guarded.Compile.program ->
  ?envs:Guarded.Compile.program ->
  span:Explore.Faultspan.t ->
  invariant:(Guarded.State.t -> bool) ->
  unit ->
  result
(** [worst_case engine ~program ~span ~invariant ()] ranks every state of
    the span: [rank s = 0] for [s ∈ S], otherwise [1 + max] over the
    ranks of its program (∪ [envs]) successors, computed backward from
    [S] in Kahn waves. [Bounded w] means every schedule from every span
    state reaches [S] within [w] steps, and some adversarial schedule
    needs exactly [w] — the same quantity as the convergence check's
    exact worst case, derived independently from the span and compiled
    actions. [Unbounded] carries a {!witness}.

    Successor expansion is chunk-parallel over the span when the engine
    has [jobs > 1] (borrowing {!Explore.Engine.pool} when set); results
    are bit-identical at any job count — the rank fixpoint is
    order-independent.

    Faults are deliberately absent: the daemon schedules program and
    environment steps only, matching the nonmasking-tolerance obligation
    (recovery once faults stop; environment never stops). *)

val pp_verdict : Guarded.Env.t -> Format.formatter -> verdict -> unit
