(* Tolerance-frontier sweeps: Certify.tolerance across a fault-budget
   range, reusing work where the spans must coincide.

   The only quantity that varies with the budget is the span: budget b
   admits derivations with at most b fault steps, so spans are monotone
   in b, and once a budget-b span's deepest layer sits strictly below b
   the closure is saturated — no derivation wanted more faults than it
   was allowed, so every larger budget yields the identical span, hence
   the identical certificate and adversary bound. The sweep walks
   budgets in ascending order and, past saturation, replays the last
   computed point with [reused = true] instead of re-exploring.

   Each span is computed once via [Explore.Faultspan.compute] and handed
   to [Certify.tolerance ~span] (and the adversary), so no budget point
   ever explores twice. *)

type point = {
  budget : int;
  span_states : int;
  span_roots : int;
  max_depth : int;
  certified : bool;
  worst_case : int option;
  adversary : Adversary.result option;
  reused : bool;
  cert : Nonmask.Certify.t;
}

type frontier = { points : point list; cliff : int option }

let range ~max:b =
  if b < 0 then invalid_arg "Tol.Sweep.range: negative budget";
  List.init (b + 1) Fun.id

let adversary_bound (r : Adversary.result) =
  match r.Adversary.verdict with
  | Adversary.Bounded w -> Some w
  | Adversary.Unbounded _ -> None

let point_fields p =
  let open Obs.Sink in
  [
    ("budget", I p.budget);
    ("span_states", I p.span_states);
    ("span_roots", I p.span_roots);
    ("max_depth", I p.max_depth);
    ("certified", B p.certified);
    ("reused", B p.reused);
  ]
  @ (match p.worst_case with
    | Some w -> [ ("worst_case", I w) ]
    | None -> [])
  @
  match p.adversary with
  | None -> []
  | Some r -> (
      match r.Adversary.verdict with
      | Adversary.Bounded w -> [ ("adversary_bound", I w) ]
      | Adversary.Unbounded _ -> [ ("adversary_bound", S "unbounded") ])

let cliff_of points =
  let rec go prev = function
    | [] -> None
    | p :: tl ->
        if p.certified <> prev then Some p.budget else go p.certified tl
  in
  match points with [] -> None | p :: tl -> go p.certified tl

let run ~engine ~program ~faults ?(envs = []) ~invariant ?from ~budgets
    ?(adversary = false) ?on_point ~name () =
  let env = Explore.Engine.env engine in
  let obs = Explore.Engine.obs engine in
  let budgets =
    let b = List.sort_uniq compare budgets in
    (match b with
    | x :: _ when x < 0 -> invalid_arg "Tol.Sweep.run: negative budget"
    | [] -> invalid_arg "Tol.Sweep.run: empty budget list"
    | _ -> ());
    b
  in
  let from =
    match from with Some f -> f | None -> Explore.Engine.Pred invariant
  in
  let cp = Guarded.Compile.program program in
  let fp =
    Guarded.Compile.program
      (Guarded.Program.make
         ~name:(Guarded.Program.name program ^ ":faults")
         env faults)
  in
  let ep =
    match envs with
    | [] -> None
    | _ ->
        Some
          (Guarded.Compile.program
             (Guarded.Program.make
                ~name:(Guarded.Program.name program ^ ":envs")
                env envs))
  in
  let emit_point p =
    Obs.Ctx.emit obs "tol.point" (point_fields p);
    match on_point with None -> () | Some f -> f p
  in
  (* last computed (not reused) point; valid for every larger budget
     once its span is saturated *)
  let saturated = ref None in
  let compute_point budget =
    let span =
      Obs.Ctx.time obs "tol.span" @@ fun () ->
      Explore.Faultspan.compute engine ~program:cp ?envs:ep ~budget ~faults:fp
        ~from ()
    in
    let cert =
      Obs.Ctx.time obs "tol.certify" @@ fun () ->
      Nonmask.Certify.tolerance ~engine ~program ~faults ~envs ~invariant
        ~from ~budget ~span ~name:(Printf.sprintf "%s@b=%d" name budget) ()
    in
    let summary =
      match cert.Nonmask.Certify.summary with
      | Some s -> s
      | None -> assert false (* tolerance certificates always carry one *)
    in
    let adv =
      if not adversary then None
      else
        Some
          ( Obs.Ctx.time obs "tol.adversary" @@ fun () ->
            Adversary.worst_case engine ~program:cp ?envs:ep ~span ~invariant
              () )
    in
    {
      budget;
      span_states = summary.Nonmask.Certify.span_states;
      span_roots = summary.Nonmask.Certify.span_roots;
      max_depth = summary.Nonmask.Certify.span_max_depth;
      certified = Nonmask.Certify.ok cert;
      worst_case = summary.Nonmask.Certify.convergence_worst;
      adversary = adv;
      reused = false;
      cert;
    }
  in
  let points =
    List.map
      (fun budget ->
        let p =
          match !saturated with
          | Some prev -> { prev with budget; reused = true }
          | None ->
              let p = compute_point budget in
              (* deepest layer strictly below the allowance: the closure
                 wanted fewer faults than it was given, so every larger
                 budget reproduces this exact span *)
              if p.max_depth < budget then saturated := Some p;
              p
        in
        emit_point p;
        p)
      budgets
  in
  let cliff = cliff_of points in
  Obs.Ctx.emit obs "tol.frontier"
    (let open Obs.Sink in
     [ ("points", I (List.length points)) ]
     @ match cliff with Some c -> [ ("cliff", I c) ] | None -> []);
  { points; cliff }

let pp_point ppf p =
  let opt_int = function Some w -> string_of_int w | None -> "-" in
  let adversary_cell = function
    | None -> "-"
    | Some r -> (
        match r.Adversary.verdict with
        | Adversary.Bounded w -> Printf.sprintf "%d" w
        | Adversary.Unbounded _ -> "unbounded")
  in
  Format.fprintf ppf "%6d  %10d  %6d  %9s  %11s  %11s%s" p.budget
    p.span_states p.max_depth
    (if p.certified then "yes" else "NO")
    (opt_int p.worst_case)
    (adversary_cell p.adversary)
    (if p.reused then "  (reused)" else "")

let pp_frontier ppf f =
  Format.fprintf ppf
    "@[<v>budget     span(|T|)   depth  certified  worst-case    adversary@,";
  List.iter (fun p -> Format.fprintf ppf "%a@," pp_point p) f.points;
  (match f.cliff with
  | Some c -> Format.fprintf ppf "cliff: certification flips at budget %d" c
  | None -> Format.fprintf ppf "cliff: none (verdict uniform across sweep)");
  Format.fprintf ppf "@]"
