module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain

type variant = Good_tree | Good_ordered | Bad

type t = {
  variant : variant;
  env : Guarded.Env.t;
  x : Guarded.Var.t;
  y : Guarded.Var.t;
  z : Guarded.Var.t;
  spec : Nonmask.Spec.t;
  cgraph : Nonmask.Cgraph.t;
  program : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
}

let make ?(bound = 3) variant =
  if bound < 1 then invalid_arg "Xyz_demo.make: bound must be positive";
  let env = Guarded.Env.create () in
  (* Domain windows sized so every convergence action stays in-domain:
     Good_ordered decrements x (needs -1); Good_tree bumps y and Bad bumps x
     (need bound + 1). *)
  let x_domain =
    match variant with
    | Good_tree -> Domain.range 0 bound
    | Good_ordered -> Domain.range (-1) bound
    | Bad -> Domain.range 0 (bound + 1)
  in
  let y_domain =
    match variant with
    | Good_tree -> Domain.range 0 (bound + 1)
    | Good_ordered | Bad -> Domain.range 0 bound
  in
  let x = Guarded.Env.fresh env "x" x_domain in
  let y = Guarded.Env.fresh env "y" y_domain in
  let z = Guarded.Env.fresh env "z" (Domain.range 0 bound) in
  let open Expr in
  let c_ne = Nonmask.Constr.make ~name:"x<>y" (var x <> var y) in
  let c_le = Nonmask.Constr.make ~name:"x<=z" (var x <= var z) in
  let invariant_expr = Nonmask.Constr.conj [ c_ne; c_le ] in
  let closure = Guarded.Program.make ~name:"xyz" env [] in
  let spec =
    Nonmask.Spec.make ~name:"xyz-demo" ~program:closure
      ~invariant:invariant_expr ()
  in
  let pair constr action = { Nonmask.Cgraph.constr; action } in
  let pairs =
    match variant with
    | Good_tree ->
        [
          pair c_ne
            (Action.make ~name:"bump-y" ~guard:(var x = var y)
               [ (y, var y + int 1) ]);
          pair c_le
            (Action.make ~name:"raise-z" ~guard:(var x > var z)
               [ (z, var x) ]);
        ]
    | Good_ordered ->
        (* The linear order: the x<=z action first, then the x<>y action,
           which preserves x<=z because it only decreases x. *)
        [
          pair c_le
            (Action.make ~name:"lower-x" ~guard:(var x > var z)
               [ (x, var z) ]);
          pair c_ne
            (Action.make ~name:"decrement-x" ~guard:(var x = var y)
               [ (x, var x - int 1) ]);
        ]
    | Bad ->
        (* Establishing x<>y by *increasing* x can violate x<=z, and vice
           versa: the two actions chase each other forever. *)
        [
          pair c_ne
            (Action.make ~name:"increment-x" ~guard:(var x = var y)
               [ (x, var x + int 1) ]);
          pair c_le
            (Action.make ~name:"lower-x" ~guard:(var x > var z)
               [ (x, var z) ]);
        ]
  in
  let nodes =
    [
      ("x", Guarded.Var.Set.singleton x);
      ("y", Guarded.Var.Set.singleton y);
      ("z", Guarded.Var.Set.singleton z);
    ]
  in
  let cgraph = Nonmask.Cgraph.build_exn ~nodes ~pairs in
  let program = Nonmask.Theorems.augmented_program spec [ cgraph ] in
  let invariant = Guarded.Compile.pred invariant_expr in
  { variant; env; x; y; z; spec; cgraph; program; invariant }

let variant t = t.variant
let env t = t.env
let x t = t.x
let y t = t.y
let z t = t.z
let spec t = t.spec
let cgraph t = t.cgraph
let program t = t.program
let invariant t s = t.invariant s

let certificate ~engine t =
  match t.variant with
  | Good_tree ->
      Nonmask.Theorems.validate_theorem1 ~engine ~spec:t.spec ~cgraph:t.cgraph
  | Good_ordered | Bad ->
      Nonmask.Theorems.validate_theorem2 ~engine ~spec:t.spec ~cgraph:t.cgraph
