module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Ring = Topology.Ring

type t = {
  ring : Ring.t;
  k : int;
  env : Guarded.Env.t;
  x : Guarded.Var.t array;
  spec : Nonmask.Spec.t;
  layers : Nonmask.Cgraph.t list;
  separate : Guarded.Program.t;
  combined : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
  violated_preds : (Guarded.State.t -> bool) list;
}

let make ~nodes ~k =
  if nodes < 2 then invalid_arg "Token_ring.make: need at least 2 nodes";
  if k < 2 then invalid_arg "Token_ring.make: need k >= 2";
  let ring = Ring.create nodes in
  let last = nodes - 1 in
  let env = Guarded.Env.create () in
  let x = Guarded.Env.fresh_family env "x" nodes (Domain.range 0 (k - 1)) in
  let nxt j = j + 1 in
  let ceiling = k - 1 in
  let open Expr in
  (* S: non-increasing along 0..N with at most one decrease. *)
  let invariant_expr =
    forall (List.init last Fun.id) (fun j -> var x.(j) >= var x.(nxt j))
    && (var x.(0) = var x.(last) || var x.(0) = var x.(last) + int 1)
  in
  (* Closure: pass the token. The root increment is guarded by the bounded
     window (see the interface comment). *)
  let increment =
    Action.make ~name:"increment"
      ~guard:(var x.(0) = var x.(last) && var x.(0) < int ceiling)
      [ (x.(0), var x.(0) + int 1) ]
  in
  let pass j =
    Action.make
      ~name:(Printf.sprintf "pass.%d" j)
      ~guard:(var x.(j) > var x.(nxt j))
      [ (x.(nxt j), var x.(j)) ]
  in
  let segments = List.init last Fun.id in
  let closure_program =
    Guarded.Program.make ~name:"token-ring" env
      (increment :: List.map pass segments)
  in
  let spec =
    Nonmask.Spec.make ~name:"token-ring" ~program:closure_program
      ~invariant:invariant_expr ()
  in
  (* Layer 0: x.j >= x.(j+1); layer 1: x.j = x.(j+1). Both establish with
     x.(j+1) := x.j; the layer-1 actions coincide with the closure ones. *)
  let ge_pairs =
    List.map
      (fun j ->
        let c =
          Nonmask.Constr.make
            ~name:(Printf.sprintf "ge.%d" j)
            (var x.(j) >= var x.(nxt j))
        in
        {
          Nonmask.Cgraph.constr = c;
          action =
            Action.make
              ~name:(Printf.sprintf "raise.%d" j)
              ~guard:(var x.(j) < var x.(nxt j))
              [ (x.(nxt j), var x.(j)) ];
        })
      segments
  in
  let eq_pairs =
    List.map
      (fun j ->
        let c =
          Nonmask.Constr.make
            ~name:(Printf.sprintf "eq.%d" j)
            (var x.(j) = var x.(nxt j))
        in
        { Nonmask.Cgraph.constr = c; action = pass j })
      segments
  in
  let nodes_partition =
    List.init nodes (fun j ->
        (Printf.sprintf "x%d" j, Guarded.Var.Set.singleton x.(j)))
  in
  let layer0 = Nonmask.Cgraph.build_exn ~nodes:nodes_partition ~pairs:ge_pairs in
  let layer1 = Nonmask.Cgraph.build_exn ~nodes:nodes_partition ~pairs:eq_pairs in
  let layers = [ layer0; layer1 ] in
  let separate = Nonmask.Theorems.augmented_program spec layers in
  (* The paper's final program: both convergence layers and the closure pass
     merge into a single action per segment. *)
  let copy j =
    Action.make
      ~name:(Printf.sprintf "copy.%d" j)
      ~guard:(var x.(j) <> var x.(nxt j))
      [ (x.(nxt j), var x.(j)) ]
  in
  let combined =
    Guarded.Program.make ~name:"token-ring-combined" env
      (increment :: List.map copy segments)
  in
  let invariant = Guarded.Compile.pred invariant_expr in
  let violated_preds =
    List.map
      (fun (p : Nonmask.Cgraph.pair) -> Nonmask.Constr.compile p.constr)
      (ge_pairs @ eq_pairs)
  in
  {
    ring;
    k;
    env;
    x;
    spec;
    layers;
    separate;
    combined;
    invariant;
    violated_preds;
  }

let ring t = t.ring
let env t = t.env
let x t j = t.x.(j)
let k t = t.k
let spec t = t.spec
let layers t = t.layers
let separate t = t.separate
let combined t = t.combined
let invariant t s = t.invariant s

let privileged t s =
  let n = Ring.size t.ring in
  let get j = Guarded.State.get s t.x.(j) in
  let acc = ref [] in
  for j = n - 2 downto 0 do
    if get j > get (j + 1) then acc := (j + 1) :: !acc
  done;
  if get 0 = get (n - 1) then 0 :: !acc else !acc

let all_zero t = Guarded.State.make t.env

let violated t s =
  List.fold_left (fun acc p -> if p s then acc else acc + 1) 0 t.violated_preds

let certificate ~engine t =
  Nonmask.Theorems.validate_theorem3 ~modulo_invariant:true ~engine
    ~spec:t.spec t.layers

let certificate_strict ~engine t =
  Nonmask.Theorems.validate_theorem3 ~modulo_invariant:false ~engine
    ~spec:t.spec t.layers

let tolerance_certificate ~engine ?fault ?budget t =
  let fault =
    match fault with Some f -> f | None -> Sim.Fault.corrupt t.env ~k:1
  in
  let budget =
    match budget with
    | Some b when b < 0 -> None
    | Some b -> Some b
    | None -> Some (Sim.Fault.burst fault)
  in
  Nonmask.Certify.tolerance ~engine ~program:t.combined
    ~faults:(Sim.Fault.actions fault) ~invariant:t.invariant ?budget
    ~name:(Printf.sprintf "token-ring under %s" fault.Sim.Fault.name)
    ()
