module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Tree = Topology.Tree

let abort = 0
let commit = 1
let pending = 0
let done_ = 1

type t = {
  tree : Tree.t;
  env : Guarded.Env.t;
  decision : Guarded.Var.t array;
  operation : Guarded.Var.t array;
  spec : Nonmask.Spec.t;
  cgraph : Nonmask.Cgraph.t;
  program : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
  violated_preds : (Guarded.State.t -> bool) list;
}

let decision_domain = Domain.enum "decision" [ "abort"; "commit" ]
let operation_domain = Domain.enum "operation" [ "pending"; "done" ]

let make tree =
  let n = Tree.size tree in
  let env = Guarded.Env.create () in
  let decision = Guarded.Env.fresh_family env "d" n decision_domain in
  let operation = Guarded.Env.fresh_family env "op" n operation_domain in
  let non_root = Tree.non_root_nodes tree in
  let open Expr in
  (* Closure: perform the operation once commit is (locally) decided. *)
  let exec j =
    Action.make
      ~name:(Printf.sprintf "exec.%d" j)
      ~guard:(var decision.(j) = int commit && var operation.(j) = int pending)
      [ (operation.(j), int done_) ]
  in
  let closure_program =
    Guarded.Program.make ~name:"atomic-action" env
      (List.map exec (Tree.nodes tree))
  in
  (* Constraints: decisions agree along the tree; effects only under
     commit. *)
  let agree j =
    let p = Tree.parent tree j in
    Nonmask.Constr.make
      ~name:(Printf.sprintf "A.%d" j)
      (var decision.(j) = var decision.(p))
  in
  let justified j =
    Nonmask.Constr.make
      ~name:(Printf.sprintf "B.%d" j)
      (var operation.(j) = int done_ ==> (var decision.(j) = int commit))
  in
  let agree_constraints = List.map agree non_root in
  let justified_constraints = List.map justified (Tree.nodes tree) in
  let invariant_expr =
    Nonmask.Constr.conj (agree_constraints @ justified_constraints)
  in
  let spec =
    Nonmask.Spec.make ~name:"atomic-action" ~program:closure_program
      ~invariant:invariant_expr ()
  in
  let agree_pairs =
    List.map2
      (fun j c ->
        let p = Tree.parent tree j in
        {
          Nonmask.Cgraph.constr = c;
          action =
            Nonmask.Design.convergence_action
              ~name:(Printf.sprintf "adopt.%d" j)
              c
              [ (decision.(j), var decision.(p)) ];
        })
      non_root agree_constraints
  in
  let justified_pairs =
    List.map2
      (fun j c ->
        {
          Nonmask.Cgraph.constr = c;
          action =
            Nonmask.Design.convergence_action
              ~name:(Printf.sprintf "rollback.%d" j)
              c
              [ (operation.(j), int pending) ];
        })
      (Tree.nodes tree) justified_constraints
  in
  let nodes =
    List.concat_map
      (fun j ->
        [
          (Printf.sprintf "d%d" j, Guarded.Var.Set.singleton decision.(j));
          (Printf.sprintf "op%d" j, Guarded.Var.Set.singleton operation.(j));
        ])
      (Tree.nodes tree)
  in
  let cgraph =
    Nonmask.Cgraph.build_exn ~nodes ~pairs:(agree_pairs @ justified_pairs)
  in
  let program = Nonmask.Theorems.augmented_program spec [ cgraph ] in
  let invariant = Guarded.Compile.pred invariant_expr in
  let violated_preds =
    List.map Nonmask.Constr.compile (agree_constraints @ justified_constraints)
  in
  {
    tree;
    env;
    decision;
    operation;
    spec;
    cgraph;
    program;
    invariant;
    violated_preds;
  }

let tree t = t.tree
let env t = t.env
let decision t j = t.decision.(j)
let operation t j = t.operation.(j)
let spec t = t.spec
let cgraph t = t.cgraph
let program t = t.program
let invariant t s = t.invariant s

let initial t ~decision =
  Guarded.State.init t.env (fun v ->
      if Array.exists (fun d -> Guarded.Var.equal d v) t.decision then decision
      else pending)

let all_done t s =
  Array.for_all (fun v -> Guarded.State.get s v = done_) t.operation

let none_done t s =
  Array.for_all (fun v -> Guarded.State.get s v = pending) t.operation

let violated t s =
  List.fold_left (fun acc p -> if p s then acc else acc + 1) 0 t.violated_preds

let certificate ~engine t =
  Nonmask.Theorems.validate_theorem1 ~engine ~spec:t.spec ~cgraph:t.cgraph
