(** The paper's stabilizing token ring (Section 7.1).

    [N+1] nodes [0 .. N] in a ring; node [j] holds an integer [x.j]. The
    invariant is

    [S = (∀ j < N :: x.j ≥ x.(j+1)) ∧ (x.0 = x.N ∨ x.0 = x.N + 1)]

    — a non-increasing sequence with at most one decrease. Node 0 is
    privileged when [x.0 = x.N]; node [j+1] is privileged when
    [x.j > x.(j+1)].

    The paper uses unbounded integers; for exhaustive checking we bound
    [x.j ∈ 0 .. K-1] and guard the root's increment with [x.0 < K-1]
    (a bounded window of the unbounded behaviour — convergence to [S] is
    unaffected; only token circulation eventually parks at the all-[K-1]
    state, which satisfies [S]). {!Dijkstra_ring} provides the classical
    wrap-around variant whose token circulates forever.

    Convergence actions come in the paper's two layers:
    - layer 0 (first conjunct): constraint [x.j ≥ x.(j+1)] with action
      [x.j < x.(j+1) → x.(j+1) := x.j];
    - layer 1 (second conjunct, strengthened to equality): constraint
      [x.j = x.(j+1)] with action [x.j > x.(j+1) → x.(j+1) := x.j].

    Layer-1 convergence actions are identical to the token-passing closure
    actions — the paper's own observation — and Theorem 3 applies with the
    [modulo_invariant] refinement (see {!Nonmask.Theorems}). *)

type t

val make : nodes:int -> k:int -> t
(** [make ~nodes ~k]: [nodes ≥ 2] ring members with [x.j ∈ 0..k-1],
    [k ≥ 2]. @raise Invalid_argument otherwise. *)

val ring : t -> Topology.Ring.t
val env : t -> Guarded.Env.t
val x : t -> int -> Guarded.Var.t
val k : t -> int

val spec : t -> Nonmask.Spec.t
val layers : t -> Nonmask.Cgraph.t list
(** Layer 0 then layer 1. *)

val separate : t -> Guarded.Program.t
(** Closure plus non-duplicate convergence actions. *)

val combined : t -> Guarded.Program.t
(** The paper's final program: [x.0 = x.N → x.0 := x.0 + 1] (bounded) and
    [x.j ≠ x.(j+1) → x.(j+1) := x.j]. *)

val invariant : t -> Guarded.State.t -> bool

val privileged : t -> Guarded.State.t -> int list
(** All privileged nodes in the state (exactly one under [S]). *)

val all_zero : t -> Guarded.State.t

val violated : t -> Guarded.State.t -> int
(** Violated constraints across both layers. *)

val certificate : engine:Explore.Engine.t -> t -> Nonmask.Certify.t
(** Theorem-3 certificate ([modulo_invariant = true]). *)

val certificate_strict : engine:Explore.Engine.t -> t -> Nonmask.Certify.t
(** Theorem 3 with the antecedents read literally — expected to {e fail}
    (experiment E5 documents why; see DESIGN.md). *)

val tolerance_certificate :
  engine:Explore.Engine.t ->
  ?fault:Sim.Fault.t ->
  ?budget:int ->
  t ->
  Nonmask.Certify.t
(** Nonmasking-tolerance certificate for {!combined} with a {e computed}
    fault span (see [Nonmask.Certify.tolerance]). [fault] defaults to
    [Sim.Fault.corrupt ~k:1]; [budget] defaults to the fault's burst, and a
    negative [budget] removes the bound (the recurring-fault span). The ring
    tolerates any such fault class — but its recurrence check renders the
    fault-sustained livelock in which a corruption keeps undoing the
    token-passing progress. *)
