(** Nonmasking fault-tolerant atomic actions (reconstruction).

    The paper's abstract lists atomic actions as its third illustration, but
    the worked example lives only in the unpublished full version [13]. We
    reconstruct one with the paper's own recipe (see DESIGN.md): a
    tree-structured {e atomic commitment} in which a distinguished root owns
    a decision and every process must eventually execute the decided
    operation exactly when commit was decided — the all-or-nothing essence
    of an atomic action — despite arbitrary corruption of decisions and
    operation flags.

    Per node [j]: a decision [d.j ∈ {abort, commit}] and an operation flag
    [op.j ∈ {pending, done}]. Constraints, for every node [j]:

    - [A.j] (non-root only): [d.j = d.P.j] — decisions agree along the tree;
    - [B.j]: [op.j = done ⟹ d.j = commit] — no effect without a commit.

    Convergence actions copy the parent's decision ([¬A.j → d.j := d.P.j])
    and roll back orphaned effects ([¬B.j → op.j := pending]). The closure
    action [exec.j : d.j = commit ∧ op.j = pending → op.j := done] performs
    the atomic action's operation.

    The constraint graph has one node per variable; decision edges form the
    tree and each [B.j] edge hangs [{op.j}] off [{d.j}] — an out-tree, so
    Theorem 1 certifies the design. The root's decision is the (uncorrupted)
    input: it has no actions, and [S] says every process agrees with it and
    no abort-side effects exist. *)

type t

val abort : int
val commit : int
val pending : int
val done_ : int

val make : Topology.Tree.t -> t

val tree : t -> Topology.Tree.t
val env : t -> Guarded.Env.t
val decision : t -> int -> Guarded.Var.t
val operation : t -> int -> Guarded.Var.t

val spec : t -> Nonmask.Spec.t
val cgraph : t -> Nonmask.Cgraph.t
val program : t -> Guarded.Program.t
(** Closure plus convergence actions. *)

val invariant : t -> Guarded.State.t -> bool

val initial : t -> decision:int -> Guarded.State.t
(** All processes agreeing with the root's decision, all flags pending. *)

val all_done : t -> Guarded.State.t -> bool
(** Every operation flag is [done] (the committed outcome). *)

val none_done : t -> Guarded.State.t -> bool
(** No operation flag is [done] (the aborted outcome). *)

val violated : t -> Guarded.State.t -> int

val certificate : engine:Explore.Engine.t -> t -> Nonmask.Certify.t
(** Theorem 1. *)
