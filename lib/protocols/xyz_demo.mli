(** The running constraint example of Sections 4 and 6.

    Three integer variables and the constraint set [{x ≠ y, x ≤ z}]. The
    paper uses it three times:

    - {b Section 4} (out-tree): establish [x ≠ y] by changing [y], and
      [x ≤ z] by raising [z] — edges [{x} → {y}] and [{x} → {z}], an
      out-tree, so Theorem 1 applies ([good_tree]).
    - {b Section 6, bad}: establish [x ≠ y] by {e increasing} [x] and
      [x ≤ z] by lowering [x] — both actions write [x], each can violate
      the other's constraint, and the pair livelocks ([bad]).
    - {b Section 6, good}: establish [x ≠ y] by {e decreasing} [x] — the
      decrease preserves [x ≤ z], so the actions order linearly and
      Theorem 2 applies ([good_ordered]).

    All three variants share the invariant [S = x ≠ y ∧ x ≤ z] and fault
    span [T = true]; there are no closure actions (the paper's example is
    about the convergence actions alone). Domains are small windows around
    [0 .. bound] sized so that every convergence action stays in-domain. *)

type variant = Good_tree | Good_ordered | Bad

type t

val make : ?bound:int -> variant -> t
(** [bound] defaults to 3. *)

val variant : t -> variant
val env : t -> Guarded.Env.t
val x : t -> Guarded.Var.t
val y : t -> Guarded.Var.t
val z : t -> Guarded.Var.t

val spec : t -> Nonmask.Spec.t
val cgraph : t -> Nonmask.Cgraph.t
val program : t -> Guarded.Program.t
(** The convergence actions as a runnable program. *)

val invariant : t -> Guarded.State.t -> bool

val certificate : engine:Explore.Engine.t -> t -> Nonmask.Certify.t
(** Theorem 1 for [Good_tree]; Theorem 2 for [Good_ordered] and [Bad]
    (where it is expected to fail on the ordering obligations). *)
