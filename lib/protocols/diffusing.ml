module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Tree = Topology.Tree

let green = 0
let red = 1

type t = {
  tree : Tree.t;
  env : Guarded.Env.t;
  color : Guarded.Var.t array;
  session : Guarded.Var.t array;
  spec : Nonmask.Spec.t;
  cgraph : Nonmask.Cgraph.t;
  constraints : Nonmask.Constr.t list;
  separate : Guarded.Program.t;
  combined : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
  violated_preds : (Guarded.State.t -> bool) list;
}

let color_domain = Domain.enum "color" [ "green"; "red" ]

(* R.j = (c.j = c.P.j /\ sn.j = sn.P.j) \/ (c.j = green /\ c.P.j = red) *)
let constraint_pred color session tree j =
  let p = Tree.parent tree j in
  let open Expr in
  var color.(j) = var color.(p)
  && var session.(j) = var session.(p)
  || (var color.(j) = int green && var color.(p) = int red)

let make tree =
  let n = Tree.size tree in
  let env = Guarded.Env.create () in
  let color = Guarded.Env.fresh_family env "c" n color_domain in
  let session = Guarded.Env.fresh_family env "sn" n Domain.bool in
  let root = Tree.root tree in
  let open Expr in
  (* Closure action 1: the root initiates a diffusing computation. *)
  let initiate =
    Action.make ~name:"initiate"
      ~guard:(var color.(root) = int green)
      [ (color.(root), int red); (session.(root), int 1 - var session.(root)) ]
  in
  (* Closure action 2 (per non-root j): propagate red from P.j to j. *)
  let propagate j =
    let p = Tree.parent tree j in
    Action.make
      ~name:(Printf.sprintf "propagate.%d" j)
      ~guard:
        (var color.(j) = int green
        && var color.(p) = int red
        && var session.(j) <> var session.(p))
      [ (color.(j), var color.(p)); (session.(j), var session.(p)) ]
  in
  (* Closure action 3 (per j): reflect green from the children of j to j. *)
  let reflect j =
    let kids = Tree.children tree j in
    Action.make
      ~name:(Printf.sprintf "reflect.%d" j)
      ~guard:
        (var color.(j) = int red
        && forall kids (fun k ->
               var color.(k) = int green && var session.(j) = var session.(k)))
      [ (color.(j), int green) ]
  in
  let non_root = Tree.non_root_nodes tree in
  let closure_actions =
    (initiate :: List.map propagate non_root)
    @ List.map reflect (Tree.nodes tree)
  in
  let constraints =
    List.map
      (fun j ->
        Nonmask.Constr.make
          ~name:(Printf.sprintf "R.%d" j)
          (constraint_pred color session tree j))
      non_root
  in
  let invariant_expr = Nonmask.Constr.conj constraints in
  let closure_program = Guarded.Program.make ~name:"diffusing" env closure_actions in
  let spec =
    Nonmask.Spec.make ~name:"diffusing-computation" ~program:closure_program
      ~invariant:invariant_expr ()
  in
  (* Convergence action per non-root j: ~R.j -> copy the parent. *)
  let pairs =
    List.map2
      (fun j c ->
        let p = Tree.parent tree j in
        {
          Nonmask.Cgraph.constr = c;
          action =
            Nonmask.Design.convergence_action
              ~name:(Printf.sprintf "converge.%d" j)
              c
              [ (color.(j), var color.(p)); (session.(j), var session.(p)) ];
        })
      non_root constraints
  in
  let nodes =
    List.map
      (fun j ->
        ( Printf.sprintf "n%d" j,
          Guarded.Var.Set.of_list [ color.(j); session.(j) ] ))
      (Tree.nodes tree)
  in
  let cgraph = Nonmask.Cgraph.build_exn ~nodes ~pairs in
  let separate = Nonmask.Theorems.augmented_program spec [ cgraph ] in
  (* The paper's combined program: propagation and convergence merge. *)
  let combined_action j =
    let p = Tree.parent tree j in
    Action.make
      ~name:(Printf.sprintf "copy.%d" j)
      ~guard:
        (var session.(j) <> var session.(p)
        || (var color.(j) = int red && var color.(p) = int green))
      [ (color.(j), var color.(p)); (session.(j), var session.(p)) ]
  in
  let combined =
    Guarded.Program.make ~name:"diffusing-combined" env
      ((initiate :: List.map combined_action non_root)
      @ List.map reflect (Tree.nodes tree))
  in
  let invariant = Guarded.Compile.pred invariant_expr in
  let violated_preds = List.map Nonmask.Constr.compile constraints in
  {
    tree;
    env;
    color;
    session;
    spec;
    cgraph;
    constraints;
    separate;
    combined;
    invariant;
    violated_preds;
  }

let tree t = t.tree
let env t = t.env
let color t j = t.color.(j)
let session t j = t.session.(j)
let spec t = t.spec
let cgraph t = t.cgraph
let constraints t = t.constraints
let separate t = t.separate
let combined t = t.combined
let invariant t s = t.invariant s

let all_green t = Guarded.State.make t.env

let violated t s =
  List.fold_left (fun acc p -> if p s then acc else acc + 1) 0 t.violated_preds

let certificate ~engine t =
  Nonmask.Theorems.validate_theorem1 ~engine ~spec:t.spec ~cgraph:t.cgraph
