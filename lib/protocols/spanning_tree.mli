(** Stabilizing BFS spanning-tree construction.

    The paper motivates diffusing computations as a building block for
    global tasks (snapshot, reset, termination detection); those in turn
    presuppose a rooted spanning structure. This protocol constructs one —
    and repairs it after arbitrary corruption — on any connected undirected
    network, using the same constraint-satisfaction reading: each process
    maintains a distance estimate [d.j], and the constraints

    - [d.root = 0], established by the root alone, and
    - [d.j = min(cap, 1 + min over neighbors of d.k)] for [j ≠ root],
      established by [j] reading its neighbors,

    have the true BFS distances as their unique solution on a connected
    graph (cap = [n - 1]). Each convergence action writes one variable, but
    it reads {e all} neighbors, so for non-tree networks the constraint
    graph falls outside the out-tree/self-looping classes — this protocol
    is the library's worked example of a design that the paper's theorems
    do not cover and that the exhaustive checker validates directly
    (experiment E11; the spanning tree of [d]-decreasing neighbors emerges
    from the fixpoint).

    Actions (one per process):
    - root: [d.root <> 0 -> d.root := 0]
    - other [j]: [d.j <> t.j -> d.j := t.j] where
      [t.j = min(n-1, 1 + min_k d.k)]. *)

type t

val make : root:int -> Topology.Ugraph.t -> t
(** @raise Invalid_argument if the graph is disconnected or the root is out
    of range. *)

val graph : t -> Topology.Ugraph.t
val root : t -> int
val env : t -> Guarded.Env.t
val distance : t -> int -> Guarded.Var.t
val program : t -> Guarded.Program.t
val invariant : t -> Guarded.State.t -> bool
(** All distances equal the true BFS distances. *)

val bfs_state : t -> Guarded.State.t
(** The legitimate state. *)

val parent : t -> Guarded.State.t -> int -> int option
(** In a legitimate state, a neighbor at distance [d.j - 1] (the smallest
    such); [None] for the root or when no neighbor qualifies (corrupted
    states). *)

val tree_edges : t -> Guarded.State.t -> (int * int) list
(** [(parent, child)] pairs derived from the current estimates; in a
    legitimate state these form a spanning tree rooted at [root]. *)

val violated : t -> Guarded.State.t -> int
(** Number of processes whose local constraint is violated. *)

val tolerance_certificate :
  engine:Explore.Engine.t ->
  ?fault:Sim.Fault.t ->
  ?budget:int ->
  t ->
  Nonmask.Certify.t
(** Nonmasking-tolerance certificate with a {e computed} fault span (see
    [Nonmask.Certify.tolerance]) — the direct-model-checking counterpart to
    the theorem certificates the paper's classes would give, since this
    protocol's constraint graph is outside them. [fault] defaults to
    [Sim.Fault.corrupt ~k:1]; [budget] defaults to the fault's burst; a
    negative [budget] removes the bound. *)
