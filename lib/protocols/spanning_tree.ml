module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Ugraph = Topology.Ugraph

type t = {
  graph : Ugraph.t;
  root : int;
  env : Guarded.Env.t;
  distance : Guarded.Var.t array;
  program : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
  true_dist : int array;
  constraint_preds : (Guarded.State.t -> bool) array;
}

let make ~root g =
  let n = Ugraph.size g in
  if root < 0 || root >= n then invalid_arg "Spanning_tree.make: bad root";
  if not (Ugraph.is_connected g) then
    invalid_arg "Spanning_tree.make: graph must be connected";
  let env = Guarded.Env.create () in
  let cap = max 1 (n - 1) in
  let distance = Guarded.Env.fresh_family env "d" n (Domain.range 0 cap) in
  let open Expr in
  (* t.j = min(cap, 1 + min over neighbors of d.k) *)
  let target j =
    match Ugraph.neighbors g j with
    | [] -> assert false (* connected, n >= 2 handled below *)
    | k :: ks ->
        let min_nbr =
          List.fold_left (fun acc k' -> min_ acc (var distance.(k'))) (var distance.(k)) ks
        in
        min_ (int cap) (min_nbr + int 1)
  in
  let actions =
    List.init n (fun j ->
        if Stdlib.( = ) j root then
          Action.make ~name:"root"
            ~guard:(var distance.(root) <> int 0)
            [ (distance.(root), int 0) ]
        else
          Action.make
            ~name:(Printf.sprintf "adjust.%d" j)
            ~guard:(var distance.(j) <> target j)
            [ (distance.(j), target j) ])
  in
  let program = Guarded.Program.make ~name:"spanning-tree" env actions in
  let true_dist = Ugraph.distances_from g root in
  let invariant_pred s =
    let ok = ref true in
    Array.iteri
      (fun j v ->
        if Stdlib.( <> ) (Guarded.State.get s v) true_dist.(j) then ok := false)
      distance;
    !ok
  in
  let constraint_preds =
    Array.of_list
      (List.init n (fun j ->
           if Stdlib.( = ) j root then
             Guarded.Compile.pred (var distance.(root) = int 0)
           else Guarded.Compile.pred (var distance.(j) = target j)))
  in
  {
    graph = g;
    root;
    env;
    distance;
    program;
    invariant = invariant_pred;
    true_dist;
    constraint_preds;
  }

let graph t = t.graph
let root t = t.root
let env t = t.env
let distance t j = t.distance.(j)
let program t = t.program
let invariant t s = t.invariant s

let bfs_state t =
  Guarded.State.init t.env (fun v ->
      let j =
        (* variables were declared in node order *)
        Guarded.Var.index v
      in
      t.true_dist.(j))

let parent t s j =
  if j = t.root then None
  else
    let dj = Guarded.State.get s t.distance.(j) in
    List.find_opt
      (fun k -> Guarded.State.get s t.distance.(k) = dj - 1)
      (Ugraph.neighbors t.graph j)

let tree_edges t s =
  List.filter_map
    (fun j ->
      match parent t s j with Some p -> Some (p, j) | None -> None)
    (List.init (Ugraph.size t.graph) Fun.id)

let violated t s =
  Array.fold_left
    (fun acc pred -> if pred s then acc else acc + 1)
    0 t.constraint_preds

let tolerance_certificate ~engine ?fault ?budget t =
  let fault =
    match fault with Some f -> f | None -> Sim.Fault.corrupt t.env ~k:1
  in
  let budget =
    match budget with
    | Some b when b < 0 -> None
    | Some b -> Some b
    | None -> Some (Sim.Fault.burst fault)
  in
  Nonmask.Certify.tolerance ~engine ~program:t.program
    ~faults:(Sim.Fault.actions fault) ~invariant:t.invariant ?budget
    ~name:(Printf.sprintf "spanning-tree under %s" fault.Sim.Fault.name)
    ()
