(** Stabilizing diffusing computations (Section 5.1 of the paper).

    A finite rooted tree of processes. Starting from all-green, the root
    initiates a diffusing computation that propagates red toward the leaves
    and is reflected back green toward the root, and the cycle repeats. The
    program tolerates arbitrary corruption of any number of nodes
    (fault span [T = true]).

    Per node [j]: a color [c.j ∈ {green, red}] and a boolean session number
    [sn.j]. The invariant is [S = (∀ j ≠ root :: R.j)] with

    [R.j = (c.j = c.P.j ∧ sn.j ≡ sn.P.j) ∨ (c.j = green ∧ c.P.j = red)].

    Three program variants are exposed:
    - the {e candidate triple} ([spec]): closure actions only — initiate at
      the root, propagate red downward, reflect green upward;
    - the {e separate} program: closure actions plus one pure convergence
      action [¬R.j → c.j, sn.j := c.P.j, sn.P.j] per non-root node;
    - the {e combined} program: the paper's final three-action-per-node
      program, in which propagation and convergence merge into
      [sn.j ≠ sn.P.j ∨ (c.j = red ∧ c.P.j = green) → c.j, sn.j := c.P.j, sn.P.j].

    The constraint graph of the convergence actions is the tree itself — an
    out-tree — so Theorem 1 certifies the design. *)

type t

val make : Topology.Tree.t -> t

val green : int
val red : int

val tree : t -> Topology.Tree.t
val env : t -> Guarded.Env.t
val color : t -> int -> Guarded.Var.t
(** [c.j]. *)

val session : t -> int -> Guarded.Var.t
(** [sn.j]. *)

val spec : t -> Nonmask.Spec.t
(** The candidate triple (closure actions, [S], [T = true]). *)

val cgraph : t -> Nonmask.Cgraph.t
(** Constraint graph of the convergence actions (one node per process). *)

val constraints : t -> Nonmask.Constr.t list
(** [R.j] for each non-root [j]. *)

val separate : t -> Guarded.Program.t
val combined : t -> Guarded.Program.t

val invariant : t -> Guarded.State.t -> bool
(** Compiled [S]. *)

val all_green : t -> Guarded.State.t
(** The initial state of the specification: every node green, all session
    numbers equal. *)

val violated : t -> Guarded.State.t -> int
(** Number of violated constraints — a severity score for adversarial
    daemons and diagnostics. *)

val certificate : engine:Explore.Engine.t -> t -> Nonmask.Certify.t
(** Theorem-1 certificate for this instance. *)
