(** Canonical content addressing for models.

    The canonical model digest is SHA-256 over the {!Pretty}-canonical
    text, so formatting (comments, whitespace, item spelling the
    formatter normalizes) never changes it: two sources that [fmt] to
    the same text share a digest. The serve daemon keys its result
    cache on this digest; [nonmask fmt --hash] prints it. *)

val digest_text : string -> string
(** SHA-256 hex of an already-canonical text (or any string — used for
    the built-in protocols' canonical instance rendering). *)

val model_text : Ast.model -> string
(** The canonical text: exactly {!Pretty.print}. *)

val model_digest : Ast.model -> string
(** [digest_text (model_text ast)] — the content address of a model. *)

val with_params : params:(string * int) list -> string -> string
(** Fold final parameter values into a model digest (sorted by name, so
    the digest is independent of override spelling order). An empty
    list returns the digest unchanged, so models without parameters
    keep the plain content address. *)
