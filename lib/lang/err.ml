type t = {
  file : string;
  line : int;
  col : int;
  msg : string;
  snippet : string;
}

exception Error of t

let render_snippet (src : Source.t) (loc : Loc.t) =
  match Source.line src loc.Loc.line with
  | None -> ""
  | Some text ->
      let gutter = string_of_int loc.Loc.line in
      let pad = String.make (String.length gutter) ' ' in
      (* Tabs would desynchronize the caret column; render them as one
         space so the marker stays under the offending character. *)
      let text =
        String.map (fun c -> if c = '\t' then ' ' else c) text
      in
      let caret_col = max 0 (loc.Loc.col - 1) in
      Printf.sprintf "%s | %s\n%s | %s^" gutter text pad
        (String.make caret_col ' ')

let fail src (loc : Loc.t) msg =
  raise
    (Error
       {
         file = src.Source.file;
         line = loc.Loc.line;
         col = loc.Loc.col;
         msg;
         snippet = render_snippet src loc;
       })

let to_string e =
  if e.snippet = "" then
    Printf.sprintf "%s:%d:%d: %s" e.file e.line e.col e.msg
  else
    Printf.sprintf "%s:%d:%d: %s\n  %s" e.file e.line e.col e.msg
      (String.concat "\n  " (String.split_on_char '\n' e.snippet))

let pp ppf e = Format.pp_print_string ppf (to_string e)
