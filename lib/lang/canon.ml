(* The canonical model digest: SHA-256 over the Pretty-canonical text.

   Two sources that format to the same canonical text are the same
   model — comments, whitespace, and item spelling variations do not
   change the digest — so the digest is a content address: the serve
   daemon keys its result cache on it, and `nonmask fmt --hash` prints
   it so cache behavior is scriptable from the CLI.

   Parameter overrides change the compiled model, so an override set is
   folded into the digest after the text (in sorted-by-name order,
   normalized so that spelling a declared default explicitly hashes the
   same as omitting it — the caller passes the *final* parameter
   values from the elaborated model, which are default-filled and
   declaration-ordered; we sort by name for spelling independence). *)

let digest_text text = Sha256.hex text

let model_text ast = Pretty.print ast

let model_digest ast = digest_text (model_text ast)

let with_params ~params digest =
  match params with
  | [] -> digest
  | ps ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ps in
      let rendered =
        String.concat ","
          (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) sorted)
      in
      Sha256.hex (digest ^ "|params:" ^ rendered)
