(** The located abstract syntax of [.nm] model files.

    Every node carries the {!Loc.t} of its first token so the elaborator
    can point type errors at source positions. Parentheses are not
    recorded: two parses that differ only in redundant grouping or
    formatting produce equal trees under {!equal}, which is what the
    round-trip law [parse ∘ print = id] is stated over. *)

type binop = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type quant = Forall | Exists

(** Index sets for binders and quantifiers. *)
type iset =
  | Srange of nexp * nexp  (** [lo .. hi], inclusive *)
  | Snodes  (** all topology nodes *)
  | Snonroot  (** tree nodes except the root *)
  | Schildren of nexp  (** children of a tree node *)

and nexp =
  | Int of Loc.t * int
  | Ref of Loc.t * string * nexp option
      (** [x] or [x\[e\]]; also binders, params, enum labels, [root] *)
  | Call of Loc.t * string * nexp list
      (** [min], [max], [parent], [succ], [pred] *)
  | Neg of Loc.t * nexp
  | Binop of Loc.t * binop * nexp * nexp
  | Ite of Loc.t * bexp * nexp * nexp

and bexp =
  | Bool of Loc.t * bool
  | Cmp of Loc.t * cmp * nexp * nexp
  | Not of Loc.t * bexp
  | And of Loc.t * bexp * bexp
  | Or of Loc.t * bexp * bexp
  | Implies of Loc.t * bexp * bexp
  | Iff of Loc.t * bexp * bexp
  | Quant of Loc.t * quant * string * iset * bexp
      (** [(forall j in S: b)] — always parenthesized in the surface
          syntax, like [Guarded.Expr]'s [(if _ then _ else _)] *)

type domain =
  | Dbool
  | Drange of nexp * nexp  (** bounds are compile-time constants *)
  | Denum of string * string list

type vdecl = {
  v_loc : Loc.t;
  v_name : string;
  v_size : nexp option;  (** [Some n]: the family [x\[0\] .. x\[n-1\]] *)
  v_dom : domain;
}

type binder = { b_loc : Loc.t; b_name : string; b_set : iset }

(** [x := e] targets; [None] index for scalars. *)
type lhs = { l_loc : Loc.t; l_name : string; l_index : nexp option }

type act = {
  a_loc : Loc.t;
  a_name : string;
  a_binders : binder list;
  a_guard : bexp;
  a_assigns : (lhs list * nexp list) option;  (** [None] is [skip] *)
}

type constr = {
  c_loc : Loc.t;
  c_name : string;
  c_binders : binder list;
  c_body : bexp;
}

(** [x = e], [x\[i\] = e], or the family form [x\[j in S\] = e]. *)
type init_index = Iexact of nexp | Iall of string * iset

type init_bind = {
  i_loc : Loc.t;
  i_name : string;
  i_index : init_index option;
  i_value : nexp;
}

type topo =
  | Tring of Loc.t * nexp
  | Ttree of Loc.t * string * nexp * int option
      (** shape, size, optional PRNG seed (shape [random]) *)

type item =
  | Param of Loc.t * string * nexp
  | Topology of topo
  | Vars of vdecl list
  | Action of act
  | Fault of act
  | Env of act
      (** environment action: uncontrollable but budget-free — the
          certifier must tolerate it and may never repair through it *)
  | Constraint of constr
  | Invariant of Loc.t * bexp
  | Init of Loc.t * init_bind list

type model = { m_loc : Loc.t; m_name : string; m_items : item list }

val strip : model -> model
(** The same tree with every location replaced by {!Loc.none}. *)

val equal : model -> model -> bool
(** Structural equality modulo locations. *)
