type t = { file : string; text : string }

let of_string ~file text = { file; text }

let read_file file =
  match open_in_bin file with
  | exception Sys_error msg -> failwith msg
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      { file; text }

let line t k =
  if k < 1 then None
  else
    let rec skip i k =
      if k = 1 then Some i
      else
        match String.index_from_opt t.text i '\n' with
        | None -> None
        | Some j -> skip (j + 1) (k - 1)
    in
    match skip 0 k with
    | None -> None
    | Some start ->
        if start > String.length t.text then None
        else
          let stop =
            match String.index_from_opt t.text start '\n' with
            | None -> String.length t.text
            | Some j -> j
          in
          Some (String.sub t.text start (stop - start))
