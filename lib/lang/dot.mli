(** Graphviz constraint-graph emitter.

    With declared constraints, nodes are the expanded constraint
    instances (labeled with the variables each reads) and there is an
    edge [A -> B] labeled with an action's name whenever that action
    reads a variable of [A] and writes a variable of [B] — the
    dependency rendering of the paper's Section 4 picture. Without
    constraints it degenerates to the variable graph: an edge [v -> w]
    per action reading [v] and writing [w]. Deterministic output. *)

val render : Elab.t -> string
