open Lexer

type state = { toks : located array; mutable pos : int; src : Source.t }

let current p = p.toks.(p.pos)
let peek_tok p = (current p).tok
let loc p = (current p).loc

let peek2 p =
  if p.pos + 1 < Array.length p.toks then p.toks.(p.pos + 1).tok else EOF

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1
let failp p message = Err.fail p.src (loc p) message

let eat p tok =
  if peek_tok p = tok then advance p
  else
    failp p
      (Printf.sprintf "expected %s but found %s" (token_to_string tok)
         (token_to_string (peek_tok p)))

(* --- numeric expressions ---
   Precedence, loosest first: additive, multiplicative, unary minus,
   atoms — the same scheme as Guarded.Dsl, so Guarded.Expr.pp output
   reparses. *)

let rec parse_nexp p = parse_additive p

and parse_additive p =
  let lhs = ref (parse_multiplicative p) in
  let continue = ref true in
  while !continue do
    let l = loc p in
    match peek_tok p with
    | PLUS ->
        advance p;
        lhs := Ast.Binop (l, Ast.Add, !lhs, parse_multiplicative p)
    | MINUS ->
        advance p;
        lhs := Ast.Binop (l, Ast.Sub, !lhs, parse_multiplicative p)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative p =
  let lhs = ref (parse_unary p) in
  let continue = ref true in
  while !continue do
    let l = loc p in
    match peek_tok p with
    | STAR ->
        advance p;
        lhs := Ast.Binop (l, Ast.Mul, !lhs, parse_unary p)
    | SLASH ->
        advance p;
        lhs := Ast.Binop (l, Ast.Div, !lhs, parse_unary p)
    | KW_MOD ->
        advance p;
        lhs := Ast.Binop (l, Ast.Mod, !lhs, parse_unary p)
    | _ -> continue := false
  done;
  !lhs

and parse_unary p =
  match peek_tok p with
  | MINUS -> (
      let l = loc p in
      advance p;
      match peek_tok p with
      | INT n ->
          advance p;
          Ast.Int (l, -n)
      | _ -> Ast.Neg (l, parse_unary p))
  | _ -> parse_num_atom p

and parse_num_atom p =
  let l = loc p in
  match peek_tok p with
  | INT n ->
      advance p;
      Ast.Int (l, n)
  | IDENT name -> (
      advance p;
      match peek_tok p with
      | LPAREN ->
          advance p;
          let args = parse_args p in
          Ast.Call (l, name, args)
      | LBRACKET ->
          advance p;
          let idx = parse_nexp p in
          eat p RBRACKET;
          Ast.Ref (l, name, Some idx)
      | _ -> Ast.Ref (l, name, None))
  | KW_MIN ->
      advance p;
      eat p LPAREN;
      Ast.Call (l, "min", parse_args p)
  | KW_MAX ->
      advance p;
      eat p LPAREN;
      Ast.Call (l, "max", parse_args p)
  | LPAREN -> (
      advance p;
      match peek_tok p with
      | KW_IF ->
          advance p;
          let c = parse_bexp p in
          eat p KW_THEN;
          let a = parse_nexp p in
          eat p KW_ELSE;
          let b = parse_nexp p in
          eat p RPAREN;
          Ast.Ite (l, c, a, b)
      | _ ->
          let e = parse_nexp p in
          eat p RPAREN;
          e)
  | t ->
      failp p
        (Printf.sprintf "expected an expression, found %s" (token_to_string t))

and parse_args p =
  (* after the opening '(' *)
  if peek_tok p = RPAREN then begin
    advance p;
    []
  end
  else begin
    let rec more acc =
      let e = parse_nexp p in
      if peek_tok p = COMMA then begin
        advance p;
        more (e :: acc)
      end
      else begin
        eat p RPAREN;
        List.rev (e :: acc)
      end
    in
    more []
  end

(* --- boolean expressions ---
   Precedence, loosest first: => and <=> < \/ < /\ < ~ < atoms. *)
and parse_bexp p =
  let lhs = parse_disj p in
  let l = loc p in
  match peek_tok p with
  | IMPLIES ->
      advance p;
      Ast.Implies (l, lhs, parse_bexp p)
  | IFF ->
      advance p;
      Ast.Iff (l, lhs, parse_disj p)
  | _ -> lhs

and parse_disj p =
  let lhs = ref (parse_conj p) in
  while peek_tok p = OR do
    let l = loc p in
    advance p;
    lhs := Ast.Or (l, !lhs, parse_conj p)
  done;
  !lhs

and parse_conj p =
  let lhs = ref (parse_neg p) in
  while peek_tok p = AND do
    let l = loc p in
    advance p;
    lhs := Ast.And (l, !lhs, parse_neg p)
  done;
  !lhs

and parse_neg p =
  match peek_tok p with
  | NOT ->
      let l = loc p in
      advance p;
      Ast.Not (l, parse_neg p)
  | _ -> parse_bool_atom p

and parse_bool_atom p =
  let l = loc p in
  match peek_tok p with
  | KW_TRUE ->
      advance p;
      Ast.Bool (l, true)
  | KW_FALSE ->
      advance p;
      Ast.Bool (l, false)
  | LPAREN when peek2 p = KW_FORALL || peek2 p = KW_EXISTS ->
      advance p;
      let q = parse_quant_body p l in
      eat p RPAREN;
      q
  | KW_FORALL | KW_EXISTS ->
      (* unparenthesized quantifier: the body extends as far right as an
         expression can (like if-then-else), so it only appears as the
         trailing form of a formula *)
      parse_quant_body p l
  | LPAREN -> (
      (* backtracking: a '(' opens either a numeric atom of a comparison
         or a parenthesized boolean *)
      let saved = p.pos in
      match parse_comparison p with
      | cmp -> cmp
      | exception Err.Error _ ->
          p.pos <- saved;
          advance p;
          let b = parse_bexp p in
          eat p RPAREN;
          b)
  | _ -> parse_comparison p

and parse_quant_body p l =
  let q = match peek_tok p with KW_FORALL -> Ast.Forall | _ -> Ast.Exists in
  advance p;
  let x =
    match peek_tok p with
    | IDENT x ->
        advance p;
        x
    | t ->
        failp p
          (Printf.sprintf "expected a quantified variable, found %s"
             (token_to_string t))
  in
  eat p KW_IN;
  let s = parse_iset p in
  eat p COLON;
  let body = parse_bexp p in
  Ast.Quant (l, q, x, s, body)

and parse_comparison p =
  let lhs = parse_nexp p in
  let l = loc p in
  let cmp =
    match peek_tok p with
    | EQ -> Ast.Eq
    | NE -> Ast.Ne
    | LT -> Ast.Lt
    | LE -> Ast.Le
    | GT -> Ast.Gt
    | GE -> Ast.Ge
    | t ->
        failp p
          (Printf.sprintf "expected a comparison, found %s"
             (token_to_string t))
  in
  advance p;
  let rhs = parse_nexp p in
  Ast.Cmp (l, cmp, lhs, rhs)

(* --- index sets --- *)
and parse_iset p =
  match peek_tok p with
  | KW_NODES ->
      advance p;
      Ast.Snodes
  | KW_NONROOT ->
      advance p;
      Ast.Snonroot
  | KW_CHILDREN ->
      advance p;
      eat p LPAREN;
      let e = parse_nexp p in
      eat p RPAREN;
      Ast.Schildren e
  | _ ->
      let lo = parse_nexp p in
      eat p DOTDOT;
      let hi = parse_nexp p in
      Ast.Srange (lo, hi)

(* Model, action, and constraint names may contain dashes, which lex as
   MINUS: re-join the fragments up to the given stop condition. *)
let parse_name p ~stop =
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek_tok p with
    | t when stop t -> continue := false
    | IDENT s ->
        Buffer.add_string buf s;
        advance p
    | INT n ->
        Buffer.add_string buf (string_of_int n);
        advance p
    | MINUS ->
        Buffer.add_char buf '-';
        advance p
    | t -> (
        (* keyword words are fine as name fragments ("token-ring"): the
           stop condition has already claimed the tokens that end the
           name, so no ambiguity remains *)
        match Lexer.keyword_text t with
        | Some w ->
            Buffer.add_string buf w;
            advance p
        | None ->
            failp p
              (Printf.sprintf "unexpected %s in name" (token_to_string t)))
  done;
  if Buffer.length buf = 0 then failp p "expected a name";
  Buffer.contents buf

let parse_binders p =
  let rec more acc =
    match peek_tok p with
    | LBRACKET ->
        let l = loc p in
        advance p;
        let x =
          match peek_tok p with
          | IDENT x ->
              advance p;
              x
          | t ->
              failp p
                (Printf.sprintf "expected a binder variable, found %s"
                   (token_to_string t))
        in
        eat p KW_IN;
        let s = parse_iset p in
        eat p RBRACKET;
        more ({ Ast.b_loc = l; b_name = x; b_set = s } :: acc)
    | _ -> List.rev acc
  in
  more []

let parse_domain p =
  match peek_tok p with
  | KW_BOOL ->
      advance p;
      Ast.Dbool
  | IDENT ename when peek2 p = LBRACE ->
      advance p;
      advance p;
      let rec labels acc =
        match peek_tok p with
        | IDENT l ->
            advance p;
            if peek_tok p = COMMA then begin
              advance p;
              labels (l :: acc)
            end
            else List.rev (l :: acc)
        | t ->
            failp p
              (Printf.sprintf "expected an enum label, found %s"
                 (token_to_string t))
      in
      let ls = labels [] in
      eat p RBRACE;
      Ast.Denum (ename, ls)
  | _ ->
      let lo = parse_nexp p in
      eat p DOTDOT;
      let hi = parse_nexp p in
      Ast.Drange (lo, hi)

let parse_vdecls p =
  let rec more acc =
    let l = loc p in
    let name =
      match peek_tok p with
      | IDENT x ->
          advance p;
          x
      | t ->
          failp p
            (Printf.sprintf "expected a variable name, found %s"
               (token_to_string t))
    in
    let size =
      if peek_tok p = LBRACKET then begin
        advance p;
        let e = parse_nexp p in
        eat p RBRACKET;
        Some e
      end
      else None
    in
    eat p COLON;
    let dom = parse_domain p in
    let d = { Ast.v_loc = l; v_name = name; v_size = size; v_dom = dom } in
    if peek_tok p = COMMA then begin
      advance p;
      more (d :: acc)
    end
    else begin
      if peek_tok p = SEMI then advance p;
      List.rev (d :: acc)
    end
  in
  more []

let parse_statement p =
  match peek_tok p with
  | KW_SKIP ->
      advance p;
      None
  | _ ->
      let parse_lhs () =
        let l = loc p in
        match peek_tok p with
        | IDENT name ->
            advance p;
            let idx =
              if peek_tok p = LBRACKET then begin
                advance p;
                let e = parse_nexp p in
                eat p RBRACKET;
                Some e
              end
              else None
            in
            { Ast.l_loc = l; l_name = name; l_index = idx }
        | t ->
            failp p
              (Printf.sprintf "expected an assignment target, found %s"
                 (token_to_string t))
      in
      let rec lhs_list acc =
        let v = parse_lhs () in
        if peek_tok p = COMMA then begin
          advance p;
          lhs_list (v :: acc)
        end
        else List.rev (v :: acc)
      in
      let targets = lhs_list [] in
      eat p ASSIGN;
      let rec rhs_list acc =
        let e = parse_nexp p in
        if peek_tok p = COMMA then begin
          advance p;
          rhs_list (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let exprs = rhs_list [] in
      if List.length targets <> List.length exprs then
        failp p
          (Printf.sprintf "%d assignment targets but %d expressions"
             (List.length targets) (List.length exprs));
      Some (targets, exprs)

let item_start = function
  | KW_PARAM | KW_TOPOLOGY | KW_VAR | KW_ACTION | KW_FAULT | KW_ENV
  | KW_CONSTRAINT | KW_INVARIANT | KW_INIT | EOF ->
      true
  | _ -> false

let parse_action p =
  let l = loc p in
  let name = parse_name p ~stop:(fun t -> t = COLON || t = LBRACKET) in
  let binders = parse_binders p in
  eat p COLON;
  let guard = parse_bexp p in
  eat p ARROW;
  let assigns = parse_statement p in
  {
    Ast.a_loc = l;
    a_name = name;
    a_binders = binders;
    a_guard = guard;
    a_assigns = assigns;
  }

let parse_init_binds p =
  let rec more acc =
    let l = loc p in
    let name =
      match peek_tok p with
      | IDENT x ->
          advance p;
          x
      | t ->
          failp p
            (Printf.sprintf "expected a variable name, found %s"
               (token_to_string t))
    in
    let idx =
      if peek_tok p = LBRACKET then begin
        advance p;
        let idx =
          match peek_tok p with
          | IDENT x when peek2 p = KW_IN ->
              advance p;
              advance p;
              Ast.Iall (x, parse_iset p)
          | _ -> Ast.Iexact (parse_nexp p)
        in
        eat p RBRACKET;
        Some idx
      end
      else None
    in
    eat p EQ;
    let value = parse_nexp p in
    let bind =
      { Ast.i_loc = l; i_name = name; i_index = idx; i_value = value }
    in
    if peek_tok p = COMMA then begin
      advance p;
      more (bind :: acc)
    end
    else List.rev (bind :: acc)
  in
  more []

let parse_topology p =
  let l = loc p in
  match peek_tok p with
  | KW_RING ->
      advance p;
      eat p LPAREN;
      let n = parse_nexp p in
      eat p RPAREN;
      Ast.Tring (l, n)
  | KW_TREE ->
      advance p;
      eat p LPAREN;
      let shape = parse_name p ~stop:(fun t -> t = COMMA) in
      eat p COMMA;
      let n = parse_nexp p in
      let seed =
        if peek_tok p = COMMA then begin
          advance p;
          match peek_tok p with
          | INT s ->
              advance p;
              Some s
          | t ->
              failp p
                (Printf.sprintf "expected a seed integer, found %s"
                   (token_to_string t))
        end
        else None
      in
      eat p RPAREN;
      Ast.Ttree (l, shape, n, seed)
  | t ->
      failp p
        (Printf.sprintf "expected 'ring' or 'tree', found %s"
           (token_to_string t))

let parse_item p =
  let l = loc p in
  match peek_tok p with
  | KW_PARAM ->
      advance p;
      let name =
        match peek_tok p with
        | IDENT x ->
            advance p;
            x
        | t ->
            failp p
              (Printf.sprintf "expected a parameter name, found %s"
                 (token_to_string t))
      in
      eat p EQ;
      Ast.Param (l, name, parse_nexp p)
  | KW_TOPOLOGY ->
      advance p;
      Ast.Topology (parse_topology p)
  | KW_VAR ->
      advance p;
      Ast.Vars (parse_vdecls p)
  | KW_ACTION ->
      advance p;
      Ast.Action (parse_action p)
  | KW_FAULT ->
      advance p;
      Ast.Fault (parse_action p)
  | KW_ENV ->
      advance p;
      Ast.Env (parse_action p)
  | KW_CONSTRAINT ->
      advance p;
      let cl = loc p in
      let name = parse_name p ~stop:(fun t -> t = COLON || t = LBRACKET) in
      let binders = parse_binders p in
      eat p COLON;
      let body = parse_bexp p in
      Ast.Constraint
        { Ast.c_loc = cl; c_name = name; c_binders = binders; c_body = body }
  | KW_INVARIANT ->
      advance p;
      Ast.Invariant (l, parse_bexp p)
  | KW_INIT ->
      advance p;
      Ast.Init (l, parse_init_binds p)
  | t ->
      failp p
        (Printf.sprintf
           "expected a model item (param, topology, var, action, fault, \
            env, constraint, invariant, init), found %s"
           (token_to_string t))

let parse src =
  let p = { toks = Lexer.lex src; pos = 0; src } in
  let l = loc p in
  eat p KW_MODEL;
  let name = parse_name p ~stop:item_start in
  let rec items acc =
    if peek_tok p = EOF then List.rev acc else items (parse_item p :: acc)
  in
  let its = items [] in
  { Ast.m_loc = l; m_name = name; m_items = its }
