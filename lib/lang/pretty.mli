(** Canonical formatter for [.nm] models.

    [print] is deterministic and depends only on the location-stripped
    tree, so it is idempotent as a source formatter
    ([fmt ∘ fmt = fmt]); and it emits exactly the grammar {!Parser}
    accepts, giving the round-trip law [parse (print ast) ≡ ast]
    (modulo locations — see {!Ast.equal}). *)

val print : Ast.model -> string
(** The whole model, canonically formatted, ending in a newline. *)

val print_nexp : Ast.nexp -> string
val print_bexp : Ast.bexp -> string
