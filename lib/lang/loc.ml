type t = { line : int; col : int }

let none = { line = 0; col = 0 }
let pp ppf l = Format.fprintf ppf "%d:%d" l.line l.col
