(** Recursive-descent parser for [.nm] model files.

    The grammar (EBNF; see the README "Model language" section):

    {v
model       ::= "model" name item*
item        ::= "param" IDENT "=" nexp
              | "topology" ("ring" "(" nexp ")"
                           | "tree" "(" name "," nexp ["," INT] ")")
              | "var" vdecl ("," vdecl)* [";"]
              | ("action" | "fault") name binder* ":" bexp "->" stmt
              | "constraint" name binder* ":" bexp
              | "invariant" bexp
              | "init" bind ("," bind)*
vdecl       ::= IDENT ["[" nexp "]"] ":" domain
domain      ::= "bool" | nexp ".." nexp | IDENT "{" IDENT ("," IDENT)* "}"
binder      ::= "[" IDENT "in" iset "]"
iset        ::= nexp ".." nexp | "nodes" | "nonroot" | "children" "(" nexp ")"
stmt        ::= "skip" | lhs ("," lhs)* ":=" nexp ("," nexp)*
lhs         ::= IDENT ["[" nexp "]"]
bind        ::= IDENT ["[" (IDENT "in" iset | nexp) "]"] "=" nexp
    v}

    Expressions follow {!Guarded.Dsl}: [~ /\ \/ => <=>] over comparisons
    [= <> < <= > >=] of numeric expressions [+ - * / mod], with
    [min(a, b)], [max(a, b)], [(if b then a else c)], family indexing
    [x\[e\]], topology calls [parent(e)], [succ(e)], [pred(e)], and
    parenthesized quantifiers [(forall j in S: b)]. Names may contain
    dashes ([bump-y]). *)

val parse : Source.t -> Ast.model
(** @raise Err.Error on any lexical or syntax error, located with a
    caret snippet. *)
