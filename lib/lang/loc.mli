(** Source positions.

    Lines and columns are 1-based, matching what editors display and what
    the CLI error contract promises ([file:line:col]). *)

type t = { line : int; col : int }

val none : t
(** A position for nodes that have no meaningful origin (synthesized
    ASTs); renders as [0:0]. *)

val pp : Format.formatter -> t -> unit
