(** One-call conveniences tying the pipeline together:
    read → lex → parse → elaborate. All raise {!Err.Error} with a
    located message on malformed input; {!load_file} raises [Failure]
    if the file cannot be read at all. *)

val parse_string : ?file:string -> string -> Ast.model
(** Parse from an in-memory string; [file] names it in errors
    (default ["<string>"]). *)

val load_file : string -> Source.t * Ast.model
(** Read and parse a [.nm] file. *)

val compile : ?params:(string * int) list -> Source.t -> Ast.model -> Elab.t

val compile_file : ?params:(string * int) list -> string -> Elab.t

val compile_string :
  ?params:(string * int) list -> ?file:string -> string -> Elab.t
