(** Hand-written lexer for [.nm] model files.

    Tokens carry their 1-based source position. Comments are OCaml-style
    [(* ... *)] and nest. Identifiers are
    [\[A-Za-z_\]\[A-Za-z0-9_\]*]; dashed names ([bump-y]) lex as
    ident/minus sequences and are re-joined by the parser. *)

type token =
  | IDENT of string
  | INT of int
  | KW_MODEL
  | KW_PARAM
  | KW_TOPOLOGY
  | KW_RING
  | KW_TREE
  | KW_VAR
  | KW_ACTION
  | KW_FAULT
  | KW_ENV
  | KW_CONSTRAINT
  | KW_INVARIANT
  | KW_INIT
  | KW_IN
  | KW_FORALL
  | KW_EXISTS
  | KW_NODES
  | KW_NONROOT
  | KW_CHILDREN
  | KW_BOOL
  | KW_SKIP
  | KW_TRUE
  | KW_FALSE
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_MIN
  | KW_MAX
  | KW_MOD
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | DOTDOT
  | ARROW
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | IMPLIES
  | IFF
  | EOF

type located = { tok : token; loc : Loc.t }

val token_to_string : token -> string
(** For error messages: ["'('"], ["identifier \"x\""], ... *)

val keyword_text : token -> string option
(** The source word a keyword token lexed from ([Some "ring"] for
    [KW_RING]), [None] for non-keywords — lets the parser accept keyword
    words as fragments of dashed names. *)

val lex : Source.t -> located array
(** Tokenize the whole source; the last token is always [EOF].
    @raise Err.Error on an illegal character or unterminated comment. *)
