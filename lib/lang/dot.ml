open Guarded

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let var_names vs =
  Var.Set.elements vs |> List.map Var.name |> String.concat ", "

let render (m : Elab.t) : string =
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let actions = Array.to_list (Program.actions m.Elab.program) in
  line "digraph %s {" (quote m.Elab.name);
  line "  rankdir=LR;";
  line "  node [shape=box, fontname=\"monospace\"];";
  (match m.Elab.constraints with
  | _ :: _ as constraints ->
      (* one node per constraint instance, labeled with its variables;
         an action's edge goes from a constraint it reads to one it
         writes (Section 4's picture) *)
      let cvars =
        List.map (fun (name, body) -> (name, Expr.reads body)) constraints
      in
      List.iter
        (fun (name, vs) ->
          (* the \n between name and variable set is a DOT line break:
             escape the components, not the separator *)
          line "  %s [label=\"%s\\n{%s}\"];" (quote name) (escape name)
            (escape (var_names vs)))
        cvars;
      List.iter
        (fun act ->
          let reads = Action.reads act and writes = Action.writes act in
          List.iter
            (fun (src, svs) ->
              List.iter
                (fun (dst, dvs) ->
                  if
                    src <> dst
                    && (not (Var.Set.is_empty (Var.Set.inter svs reads)))
                    && not (Var.Set.is_empty (Var.Set.inter dvs writes))
                  then
                    line "  %s -> %s [label=%s];" (quote src) (quote dst)
                      (quote (Action.name act)))
                cvars)
            cvars)
        actions
  | [] ->
      (* no declared constraints: fall back to the variable graph *)
      Array.iter
        (fun v -> line "  %s;" (quote (Var.name v)))
        (Env.vars m.Elab.env);
      List.iter
        (fun act ->
          let writes = Action.writes act in
          Var.Set.iter
            (fun r ->
              Var.Set.iter
                (fun w ->
                  if not (Var.equal r w) then
                    line "  %s -> %s [label=%s];" (quote (Var.name r))
                      (quote (Var.name w))
                      (quote (Action.name act)))
                writes)
            (Action.reads act))
        actions);
  line "}";
  Buffer.contents buf
