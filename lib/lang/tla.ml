open Guarded

(* TLA+ identifiers: letters, digits, underscores, not starting with a
   digit. Dots and dashes in our names become underscores; collisions
   (or clashes with the module's own operator names) get a numeric
   suffix, deterministically. *)

let reserved =
  [ "Init"; "Next"; "Spec"; "TypeOK"; "Invariant"; "Faults"; "vars";
    "Min"; "Max"; "MODULE"; "EXTENDS"; "VARIABLES"; "UNCHANGED"; "IF";
    "THEN"; "ELSE"; "TRUE"; "FALSE" ]

let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      then Buffer.add_char buf c
      else Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  let s = if s = "" then "x" else s in
  if s.[0] >= '0' && s.[0] <= '9' then "v_" ^ s else s

(* A fresh-name table seeded with the reserved words. *)
let make_namer () =
  let used = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace used r ()) reserved;
  fun name ->
    let base = sanitize name in
    let candidate = ref base in
    let k = ref 1 in
    while Hashtbl.mem used !candidate do
      incr k;
      candidate := Printf.sprintf "%s_%d" base !k
    done;
    Hashtbl.replace used !candidate ();
    !candidate

(* Conservatively parenthesized expression rendering: compound operands
   always get parens, so TLA+ operator precedence never matters. *)
let rec num vname (e : Expr.num) =
  let atom x =
    match x with
    | Expr.Const n when n >= 0 -> num vname x
    | Expr.Var _ -> num vname x
    | _ -> "(" ^ num vname x ^ ")"
  in
  match e with
  | Expr.Const n -> string_of_int n
  | Expr.Var v -> vname v
  | Expr.Neg a -> "-" ^ atom a
  | Expr.Add (a, b) -> atom a ^ " + " ^ atom b
  | Expr.Sub (a, b) -> atom a ^ " - " ^ atom b
  | Expr.Mul (a, b) -> atom a ^ " * " ^ atom b
  | Expr.Div (a, b) -> atom a ^ " \\div " ^ atom b
  | Expr.Mod (a, b) -> atom a ^ " % " ^ atom b
  | Expr.Min (a, b) -> Printf.sprintf "Min(%s, %s)" (num vname a) (num vname b)
  | Expr.Max (a, b) -> Printf.sprintf "Max(%s, %s)" (num vname a) (num vname b)
  | Expr.Ite (c, a, b) ->
      Printf.sprintf "(IF %s THEN %s ELSE %s)" (boolean vname c) (num vname a)
        (num vname b)

and boolean vname (e : Expr.boolean) =
  let atom x =
    match x with
    | Expr.True | Expr.False | Expr.Cmp _ | Expr.Not _ -> boolean vname x
    | _ -> "(" ^ boolean vname x ^ ")"
  in
  match e with
  | Expr.True -> "TRUE"
  | Expr.False -> "FALSE"
  | Expr.Cmp (op, a, b) ->
      let sym =
        match op with
        | Expr.Eq -> "="
        | Expr.Ne -> "/="
        | Expr.Lt -> "<"
        | Expr.Le -> "<="
        | Expr.Gt -> ">"
        | Expr.Ge -> ">="
      in
      let natom x =
        match x with
        | Expr.Const n when n >= 0 -> num vname x
        | Expr.Var _ -> num vname x
        | _ -> "(" ^ num vname x ^ ")"
      in
      Printf.sprintf "%s %s %s" (natom a) sym (natom b)
  | Expr.Not a -> "~" ^ atom a
  | Expr.And (a, b) -> atom a ^ " /\\ " ^ atom b
  | Expr.Or (a, b) -> atom a ^ " \\/ " ^ atom b
  | Expr.Implies (a, b) -> atom a ^ " => " ^ atom b
  | Expr.Iff (a, b) -> atom a ^ " <=> " ^ atom b

let domain_set = function
  | Domain.Bool -> "0..1"
  | Domain.Range { lo; hi } -> Printf.sprintf "%d..%d" lo hi
  | Domain.Enum { labels; _ } ->
      Printf.sprintf "0..%d" (Array.length labels - 1)

let domain_comment = function
  | Domain.Enum { name; labels } ->
      Printf.sprintf "  \\* %s: %s" name
        (String.concat ", "
           (Array.to_list
              (Array.mapi (fun i l -> Printf.sprintf "%d=%s" i l) labels)))
  | _ -> ""

let render (m : Elab.t) : string =
  let fresh = make_namer () in
  let module_name = sanitize m.Elab.name in
  let vars = Env.vars m.Elab.env in
  let vnames = Array.map (fun v -> fresh (Var.name v)) vars in
  let vname v = vnames.(Var.index v) in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "---- MODULE %s ----" module_name;
  line "EXTENDS Integers";
  line "";
  line "VARIABLES %s"
    (String.concat ", " (Array.to_list vnames));
  line "";
  line "vars == <<%s>>" (String.concat ", " (Array.to_list vnames));
  line "";
  line "Min(a, b) == IF a <= b THEN a ELSE b";
  line "Max(a, b) == IF a >= b THEN a ELSE b";
  line "";
  line "TypeOK ==";
  Array.iteri
    (fun i v ->
      line "  /\\ %s \\in %s%s" vnames.(i)
        (domain_set (Var.domain v))
        (domain_comment (Var.domain v)))
    vars;
  line "";
  line "Init ==";
  Array.iteri
    (fun i v -> line "  /\\ %s = %d" vnames.(i) (State.get m.Elab.init v))
    vars;
  line "";
  let emit_action (act : Action.t) =
    let aname = fresh (Action.name act) in
    line "%s ==" aname;
    line "  /\\ %s" (boolean vname (Action.guard act));
    let written =
      List.map (fun (v, _) -> Var.index v) (Action.assigns act)
    in
    List.iter
      (fun (v, rhs) -> line "  /\\ %s' = %s" (vname v) (num vname rhs))
      (Action.assigns act);
    let unchanged =
      Array.to_list vnames
      |> List.filteri (fun i _ -> not (List.mem i written))
    in
    (match unchanged with
    | [] -> ()
    | us -> line "  /\\ UNCHANGED <<%s>>" (String.concat ", " us));
    line "";
    aname
  in
  let prog_names =
    List.map emit_action (Array.to_list (Program.actions m.Elab.program))
  in
  line "Next == %s"
    (match prog_names with
    | [] -> "FALSE"
    | ns -> String.concat " \\/ " ns);
  line "";
  (match m.Elab.fault_actions with
  | [] -> ()
  | faults ->
      let fault_names = List.map emit_action faults in
      line "Faults == %s" (String.concat " \\/ " fault_names);
      line "");
  (match m.Elab.env_actions with
  | [] -> ()
  | envs ->
      let env_names = List.map emit_action envs in
      line "Environment == %s" (String.concat " \\/ " env_names);
      line "");
  line "Invariant ==";
  line "  %s" (boolean vname m.Elab.invariant_expr);
  line "";
  line "Spec == Init /\\ [][Next]_vars";
  line "";
  line "====";
  Buffer.contents buf
