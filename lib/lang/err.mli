(** Located compilation errors.

    Every failure of the pipeline — lexing, parsing, elaboration — is
    reported as one value carrying [file:line:col], the message, and a
    pre-rendered caret snippet of the offending source line. The CLI
    prints {!to_string} verbatim and exits 1; an exception trace never
    reaches the user. *)

type t = {
  file : string;
  line : int;
  col : int;
  msg : string;
  snippet : string;
      (** the source line plus a caret marker, or [""] when the source
          text is unavailable *)
}

exception Error of t

val fail : Source.t -> Loc.t -> string -> 'a
(** Raise {!Error} at the given position, rendering the snippet. *)

val to_string : t -> string
(** ["file:line:col: msg"] followed by the indented snippet lines. *)

val pp : Format.formatter -> t -> unit
