(** A model's source text, kept alongside its file name so that every
    error can carry a caret snippet of the offending line. *)

type t = { file : string; text : string }

val of_string : file:string -> string -> t

val read_file : string -> t
(** @raise Failure when the file cannot be read. *)

val line : t -> int -> string option
(** The 1-based line, without its newline. [None] when out of range. *)
