let parse_string ?(file = "<string>") text =
  Parser.parse (Source.of_string ~file text)

let load_file path =
  let src = Source.read_file path in
  (src, Parser.parse src)

let compile ?params src ast = Elab.model ?params src ast

let compile_file ?params path =
  let src, ast = load_file path in
  Elab.model ?params src ast

let compile_string ?params ?(file = "<string>") text =
  let src = Source.of_string ~file text in
  Elab.model ?params src (Parser.parse src)
