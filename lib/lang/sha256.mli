(** Self-contained SHA-256 (FIPS 180-4).

    The basis of content addressing in this codebase: the canonical
    model digest ({!Canon}) and the serve result-cache key are SHA-256
    hex strings. Correctness is pinned by the FIPS test vectors in the
    test suite. *)

val digest_bytes : string -> string
(** Raw 32-byte digest of the input. *)

val hex : string -> string
(** 64-character lowercase hex digest of the input. *)
