(** Elaboration: typecheck a parsed {!Ast.model} and compile it to the
    executable {!Guarded} representation.

    The result runs unchanged on every [Explore.Engine] backend and on
    the simulator: variables are declared in source order (families as
    [x.0 .. x.(n-1)], matching {!Guarded.Env.fresh_family}), binder
    families expand to one action per index with dotted names
    ([copy.3]), fault actions are prefixed [fault:], assignment
    right-hand sides are clamped to the target domain exactly as
    [Gen.Spec.materialize] clamps generated programs, and [/] and [mod]
    require divisors that constant-fold to a non-zero constant (the same
    rule [Gen.Generate] obeys).

    Every rejected model raises {!Err.Error} with a [file:line:col]
    location and caret snippet — never an unlocated exception. *)

type t = {
  name : string;  (** the model's declared name *)
  env : Guarded.Env.t;
  program : Guarded.Program.t;
  fault_actions : Guarded.Action.t list;
      (** declared [fault] items, expanded; names are [fault:<name>] *)
  env_actions : Guarded.Action.t list;
      (** declared [env] items, expanded; names are [env:<name>].
          Environment actions are uncontrollable like faults but free:
          they extend the fault span without consuming budget, closure
          and convergence must hold under them, and they are never part
          of a repair. *)
  constraints : (string * Guarded.Expr.boolean) list;
      (** expanded constraint instances, in declaration order *)
  invariant_expr : Guarded.Expr.boolean;
      (** conjunction of all constraints and [invariant] items *)
  invariant : Guarded.State.t -> bool;
  init : Guarded.State.t;
      (** the [init] item applied over domain-minimal defaults; always
          satisfies [invariant] *)
  params : (string * int) list;
      (** final parameter values, in declaration order *)
}

val model : ?params:(string * int) list -> Source.t -> Ast.model -> t
(** Elaborate. [params] overrides declared [param] defaults by name;
    naming a parameter the model does not declare is an error.
    @raise Err.Error on any type, scope, arity, domain, or divisor
    error. *)
