open Guarded
module Tree = Topology.Tree
module Ring = Topology.Ring

type t = {
  name : string;
  env : Env.t;
  program : Program.t;
  fault_actions : Action.t list;
  env_actions : Action.t list;
  constraints : (string * Expr.boolean) list;
  invariant_expr : Expr.boolean;
  invariant : State.t -> bool;
  init : State.t;
  params : (string * int) list;
}

type topo = Tring of Ring.t | Ttree of Tree.t
type ventry = Scalar of Var.t | Family of Var.t array

type ctx = {
  src : Source.t;
  env : Env.t;
  mutable params : (string * int) list;  (* declaration order *)
  mutable labels : (string * int) list;  (* enum label -> value *)
  mutable topo : topo option;
  mutable vents : (string * ventry) list;
}

let fail ctx loc msg = Err.fail ctx.src loc msg

let nexp_loc : Ast.nexp -> Loc.t = function
  | Ast.Int (l, _)
  | Ast.Ref (l, _, _)
  | Ast.Call (l, _, _)
  | Ast.Neg (l, _)
  | Ast.Binop (l, _, _, _)
  | Ast.Ite (l, _, _, _) ->
      l

(* Same clamping discipline as Gen.Spec.materialize: every assignment
   right-hand side is pinched into the target domain, so executing an
   action can never raise State.Domain_violation. *)
let bounds = function
  | Domain.Bool -> (0, 1)
  | Domain.Range { lo; hi } -> (lo, hi)
  | Domain.Enum { labels; _ } -> (0, Array.length labels - 1)

let clamp_rhs dom rhs =
  let lo, hi = bounds dom in
  if lo = hi then Expr.Const lo
  else
    Expr.simplify_num (Expr.max_ (Expr.min_ rhs (Expr.Const hi)) (Expr.Const lo))

let topo_size ctx =
  match ctx.topo with
  | Some (Ttree t) -> Tree.size t
  | Some (Tring r) -> Ring.size r
  | None -> 0

let check_node ctx loc what j =
  let n = topo_size ctx in
  if j < 0 || j >= n then
    fail ctx loc
      (Printf.sprintf "%s: node index %d is out of range 0..%d" what j (n - 1));
  j

let topo_call ctx loc fn j =
  match (fn, ctx.topo) with
  | _, None ->
      fail ctx loc (Printf.sprintf "%s requires a topology declaration" fn)
  | "parent", Some (Ttree t) -> Tree.parent t (check_node ctx loc fn j)
  | "parent", Some (Tring _) -> fail ctx loc "parent requires a tree topology"
  | "succ", Some (Tring r) -> Ring.succ r (check_node ctx loc fn j)
  | "pred", Some (Tring r) -> Ring.pred r (check_node ctx loc fn j)
  | ("succ" | "pred"), Some (Ttree _) ->
      fail ctx loc (Printf.sprintf "%s requires a ring topology" fn)
  | _ -> fail ctx loc (Printf.sprintf "unknown function %s" fn)

let cmp_int (op : Ast.cmp) a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Ne -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

let cmp_op : Ast.cmp -> Expr.cmp = function
  | Ast.Eq -> Expr.Eq
  | Ast.Ne -> Expr.Ne
  | Ast.Lt -> Expr.Lt
  | Ast.Le -> Expr.Le
  | Ast.Gt -> Expr.Gt
  | Ast.Ge -> Expr.Ge

(* ------------------------------------------------------------------ *)
(* Constant evaluation: parameters, binders, enum labels, topology.   *)
(* State variables are rejected — these contexts (domain bounds,      *)
(* family sizes and indices, binder sets, init values) must be fixed  *)
(* at compile time.                                                   *)
(* ------------------------------------------------------------------ *)

let rec eval_const ctx bnd (e : Ast.nexp) : int =
  match e with
  | Ast.Int (_, n) -> n
  | Ast.Ref (loc, name, None) -> (
      match List.assoc_opt name bnd with
      | Some v -> v
      | None -> (
          match List.assoc_opt name ctx.params with
          | Some v -> v
          | None -> (
              match (name, ctx.topo) with
              | "root", Some (Ttree t) -> Tree.root t
              | "root", Some (Tring _) ->
                  fail ctx loc "root requires a tree topology"
              | _ -> (
                  match List.assoc_opt name ctx.labels with
                  | Some v -> v
                  | None ->
                      if List.mem_assoc name ctx.vents then
                        fail ctx loc
                          (Printf.sprintf
                             "variable %s cannot appear in a constant \
                              expression"
                             name)
                      else
                        fail ctx loc
                          (Printf.sprintf
                             "unknown name %s in constant expression" name)))))
  | Ast.Ref (loc, name, Some _) ->
      fail ctx loc
        (Printf.sprintf "%s[...] is not allowed in a constant expression" name)
  | Ast.Call (loc, ("min" | "max" as fn), args) -> (
      match args with
      | [ a; b ] ->
          let a = eval_const ctx bnd a and b = eval_const ctx bnd b in
          if fn = "min" then min a b else max a b
      | _ ->
          fail ctx loc
            (Printf.sprintf "%s expects 2 arguments, got %d" fn
               (List.length args)))
  | Ast.Call (loc, fn, args) -> (
      match args with
      | [ a ] -> topo_call ctx loc fn (eval_const ctx bnd a)
      | _ ->
          fail ctx loc
            (Printf.sprintf "%s expects 1 argument, got %d" fn
               (List.length args)))
  | Ast.Neg (_, a) -> -eval_const ctx bnd a
  | Ast.Binop (_, op, a, b) -> (
      let a = eval_const ctx bnd a in
      let bv = eval_const ctx bnd b in
      match op with
      | Ast.Add -> a + bv
      | Ast.Sub -> a - bv
      | Ast.Mul -> a * bv
      | Ast.Div ->
          if bv = 0 then
            fail ctx (nexp_loc b) "division by zero in constant expression"
          else a / bv
      | Ast.Mod ->
          if bv = 0 then
            fail ctx (nexp_loc b) "division by zero in constant expression"
          else a mod bv)
  | Ast.Ite (_, c, a, b) ->
      if eval_const_bool ctx bnd c then eval_const ctx bnd a
      else eval_const ctx bnd b

and eval_const_bool ctx bnd (e : Ast.bexp) : bool =
  match e with
  | Ast.Bool (_, b) -> b
  | Ast.Cmp (_, op, a, b) ->
      cmp_int op (eval_const ctx bnd a) (eval_const ctx bnd b)
  | Ast.Not (_, a) -> not (eval_const_bool ctx bnd a)
  | Ast.And (_, a, b) -> eval_const_bool ctx bnd a && eval_const_bool ctx bnd b
  | Ast.Or (_, a, b) -> eval_const_bool ctx bnd a || eval_const_bool ctx bnd b
  | Ast.Implies (_, a, b) ->
      (not (eval_const_bool ctx bnd a)) || eval_const_bool ctx bnd b
  | Ast.Iff (_, a, b) ->
      eval_const_bool ctx bnd a = eval_const_bool ctx bnd b
  | Ast.Quant (loc, q, x, set, body) -> (
      let vals = eval_iset ctx bnd loc set in
      let test v = eval_const_bool ctx ((x, v) :: bnd) body in
      match q with
      | Ast.Forall -> List.for_all test vals
      | Ast.Exists -> List.exists test vals)

and eval_iset ctx bnd loc (s : Ast.iset) : int list =
  match s with
  | Ast.Srange (lo, hi) ->
      let lo = eval_const ctx bnd lo and hi = eval_const ctx bnd hi in
      List.init (max 0 (hi - lo + 1)) (fun k -> lo + k)
  | Ast.Snodes -> (
      match ctx.topo with
      | Some (Ttree t) -> Tree.nodes t
      | Some (Tring r) -> Ring.nodes r
      | None -> fail ctx loc "nodes requires a topology declaration")
  | Ast.Snonroot -> (
      match ctx.topo with
      | Some (Ttree t) -> Tree.non_root_nodes t
      | Some (Tring _) -> fail ctx loc "nonroot requires a tree topology"
      | None -> fail ctx loc "nonroot requires a tree topology")
  | Ast.Schildren e -> (
      match ctx.topo with
      | Some (Ttree t) ->
          Tree.children t (check_node ctx loc "children" (eval_const ctx bnd e))
      | Some (Tring _) -> fail ctx loc "children requires a tree topology"
      | None -> fail ctx loc "children requires a tree topology")

(* ------------------------------------------------------------------ *)
(* State expressions: guards, right-hand sides, constraint bodies.    *)
(* ------------------------------------------------------------------ *)

let mk_binop (op : Ast.binop) a b =
  match (a, b) with
  | Expr.Const x, Expr.Const y ->
      Expr.Const
        (match op with
        | Ast.Add -> x + y
        | Ast.Sub -> x - y
        | Ast.Mul -> x * y
        | Ast.Div -> x / y
        | Ast.Mod -> x mod y)
  | _ -> (
      match op with
      | Ast.Add -> Expr.Add (a, b)
      | Ast.Sub -> Expr.Sub (a, b)
      | Ast.Mul -> Expr.Mul (a, b)
      | Ast.Div -> Expr.Div (a, b)
      | Ast.Mod -> Expr.Mod (a, b))

let rec compile_num ctx bnd (e : Ast.nexp) : Expr.num =
  match e with
  | Ast.Int (_, n) -> Expr.Const n
  | Ast.Ref (loc, name, None) -> (
      match List.assoc_opt name bnd with
      | Some v -> Expr.Const v
      | None -> (
          match List.assoc_opt name ctx.vents with
          | Some (Scalar v) -> Expr.Var v
          | Some (Family arr) ->
              fail ctx loc
                (Printf.sprintf
                   "%s is a family of %d variables and needs an index" name
                   (Array.length arr))
          | None -> (
              match List.assoc_opt name ctx.params with
              | Some v -> Expr.Const v
              | None -> (
                  match (name, ctx.topo) with
                  | "root", Some (Ttree t) -> Expr.Const (Tree.root t)
                  | "root", Some (Tring _) ->
                      fail ctx loc "root requires a tree topology"
                  | _ -> (
                      match List.assoc_opt name ctx.labels with
                      | Some v -> Expr.Const v
                      | None ->
                          fail ctx loc
                            (Printf.sprintf "unknown variable %s" name))))))
  | Ast.Ref (loc, name, Some idx) -> (
      match List.assoc_opt name ctx.vents with
      | Some (Family arr) ->
          let i = eval_const ctx bnd idx in
          if i < 0 || i >= Array.length arr then
            fail ctx (nexp_loc idx)
              (Printf.sprintf "index %d is out of range for %s[0..%d]" i name
                 (Array.length arr - 1));
          Expr.Var arr.(i)
      | Some (Scalar _) ->
          fail ctx loc
            (Printf.sprintf "%s is a scalar variable and cannot be indexed"
               name)
      | None -> fail ctx loc (Printf.sprintf "unknown family %s" name))
  | Ast.Call (loc, ("min" | "max" as fn), args) -> (
      match args with
      | [ a; b ] ->
          let a = compile_num ctx bnd a and b = compile_num ctx bnd b in
          if fn = "min" then Expr.Min (a, b) else Expr.Max (a, b)
      | _ ->
          fail ctx loc
            (Printf.sprintf "%s expects 2 arguments, got %d" fn
               (List.length args)))
  | Ast.Call (loc, fn, args) -> (
      (* parent/succ/pred: topology is static, so the argument must be
         a compile-time constant and the call folds to a constant *)
      match args with
      | [ a ] -> Expr.Const (topo_call ctx loc fn (eval_const ctx bnd a))
      | _ ->
          fail ctx loc
            (Printf.sprintf "%s expects 1 argument, got %d" fn
               (List.length args)))
  | Ast.Neg (_, a) -> (
      match compile_num ctx bnd a with
      | Expr.Const n -> Expr.Const (-n)
      | a -> Expr.Neg a)
  | Ast.Binop (_, op, a, b) -> (
      let a' = compile_num ctx bnd a in
      let b' = compile_num ctx bnd b in
      match op with
      | Ast.Div | Ast.Mod -> (
          match Expr.simplify_num b' with
          | Expr.Const 0 -> fail ctx (nexp_loc b) "division by zero"
          | Expr.Const _ -> mk_binop op a' b'
          | _ ->
              fail ctx (nexp_loc b)
                "divisor must be a non-zero constant expression")
      | _ -> mk_binop op a' b')
  | Ast.Ite (_, c, a, b) ->
      Expr.Ite (compile_bool ctx bnd c, compile_num ctx bnd a, compile_num ctx bnd b)

and compile_bool ctx bnd (e : Ast.bexp) : Expr.boolean =
  match e with
  | Ast.Bool (_, true) -> Expr.True
  | Ast.Bool (_, false) -> Expr.False
  | Ast.Cmp (_, op, a, b) ->
      Expr.Cmp (cmp_op op, compile_num ctx bnd a, compile_num ctx bnd b)
  | Ast.Not (_, a) -> Expr.Not (compile_bool ctx bnd a)
  | Ast.And (_, a, b) -> Expr.And (compile_bool ctx bnd a, compile_bool ctx bnd b)
  | Ast.Or (_, a, b) -> Expr.Or (compile_bool ctx bnd a, compile_bool ctx bnd b)
  | Ast.Implies (_, a, b) ->
      Expr.Implies (compile_bool ctx bnd a, compile_bool ctx bnd b)
  | Ast.Iff (_, a, b) -> Expr.Iff (compile_bool ctx bnd a, compile_bool ctx bnd b)
  | Ast.Quant (loc, q, x, set, body) -> (
      let vals = eval_iset ctx bnd loc set in
      let insts = List.map (fun v -> compile_bool ctx ((x, v) :: bnd) body) vals in
      match q with Ast.Forall -> Expr.conj insts | Ast.Exists -> Expr.disj insts)

(* ------------------------------------------------------------------ *)
(* Items.                                                             *)
(* ------------------------------------------------------------------ *)

let resolve_lhs ctx bnd (l : Ast.lhs) : Var.t =
  match List.assoc_opt l.Ast.l_name ctx.vents with
  | Some (Scalar v) -> (
      match l.Ast.l_index with
      | None -> v
      | Some _ ->
          fail ctx l.Ast.l_loc
            (Printf.sprintf "%s is a scalar variable and cannot be indexed"
               l.Ast.l_name))
  | Some (Family arr) -> (
      match l.Ast.l_index with
      | None ->
          fail ctx l.Ast.l_loc
            (Printf.sprintf "%s is a family of %d variables and needs an index"
               l.Ast.l_name (Array.length arr))
      | Some idx ->
          let i = eval_const ctx bnd idx in
          if i < 0 || i >= Array.length arr then
            fail ctx (nexp_loc idx)
              (Printf.sprintf "index %d is out of range for %s[0..%d]" i
                 l.Ast.l_name (Array.length arr - 1));
          arr.(i))
  | None ->
      if List.mem_assoc l.Ast.l_name ctx.params then
        fail ctx l.Ast.l_loc
          (Printf.sprintf "cannot assign to parameter %s" l.Ast.l_name)
      else
        fail ctx l.Ast.l_loc
          (Printf.sprintf "unknown variable %s" l.Ast.l_name)

(* Expand an action's (or constraint's) binder list into the list of
   complete bindings, in declaration order per binder and ascending
   value order per set — the expansion order fixes action order in the
   compiled program. *)
let expand_binders ctx (binders : Ast.binder list) : (string * int) list list =
  let rec go bnd = function
    | [] -> [ List.rev bnd ]
    | (b : Ast.binder) :: rest ->
        if List.mem_assoc b.Ast.b_name bnd then
          fail ctx b.Ast.b_loc
            (Printf.sprintf "duplicate binder %s" b.Ast.b_name);
        let vals = eval_iset ctx bnd b.Ast.b_loc b.Ast.b_set in
        List.concat_map (fun v -> go ((b.Ast.b_name, v) :: bnd) rest) vals
  in
  go [] binders

let suffix_of bnd =
  String.concat "" (List.map (fun (_, v) -> "." ^ string_of_int v) bnd)

let elaborate_act ctx seen ~prefix (a : Ast.act) : Action.t list =
  expand_binders ctx a.Ast.a_binders
  |> List.map (fun bnd ->
         let name = a.Ast.a_name ^ suffix_of bnd in
         let full = prefix ^ name in
         (if Hashtbl.mem seen full then
            fail ctx a.Ast.a_loc
              (Printf.sprintf "duplicate action name %s" full));
         Hashtbl.add seen full ();
         (* binder lookup wants innermost-first *)
         let bnd = List.rev bnd in
         let guard = compile_bool ctx bnd a.Ast.a_guard in
         let assigns =
           match a.Ast.a_assigns with
           | None -> []
           | Some (lhss, rhss) ->
               List.map2
                 (fun l r ->
                   let v = resolve_lhs ctx bnd l in
                   let rhs = compile_num ctx bnd r in
                   (match Expr.simplify_num rhs with
                   | Expr.Const c when not (Domain.mem (Var.domain v) c) ->
                       fail ctx (nexp_loc r)
                         (Printf.sprintf
                            "value %d is outside the domain of %s" c
                            (Var.name v))
                   | _ -> ());
                   (v, clamp_rhs (Var.domain v) rhs))
                 lhss rhss
         in
         let rec dup_target = function
           | [] -> None
           | (v, _) :: rest ->
               if List.exists (fun (w, _) -> Var.equal v w) rest then Some v
               else dup_target rest
         in
         (match dup_target assigns with
         | Some v ->
             fail ctx a.Ast.a_loc
               (Printf.sprintf "action %s assigns twice to %s" full
                  (Var.name v))
         | None -> ());
         Action.make ~name:full ~guard assigns)

let model ?(params = []) (src : Source.t) (m : Ast.model) : t =
  let ctx =
    { src; env = Env.create (); params = []; labels = []; topo = None; vents = [] }
  in
  List.iter
    (fun (name, _) ->
      let declared =
        List.exists
          (function Ast.Param (_, n, _) -> n = name | _ -> false)
          m.Ast.m_items
      in
      if not declared then
        Err.fail src m.Ast.m_loc
          (Printf.sprintf "unknown parameter %s (model %s does not declare it)"
             name m.Ast.m_name))
    params;
  let prog_acts = ref [] and fault_acts = ref [] and env_acts = ref [] in
  let prog_seen = Hashtbl.create 16
  and fault_seen = Hashtbl.create 16
  and env_seen = Hashtbl.create 16 in
  let constraints = ref [] and invariants = ref [] in
  let init_sets = ref [] and init_loc = ref None in
  let do_item = function
    | Ast.Param (loc, name, e) ->
        if List.mem_assoc name ctx.params then
          fail ctx loc (Printf.sprintf "duplicate parameter %s" name);
        if List.mem_assoc name ctx.vents then
          fail ctx loc
            (Printf.sprintf "parameter %s collides with a variable" name);
        let v =
          match List.assoc_opt name params with
          | Some v -> v
          | None -> eval_const ctx [] e
        in
        ctx.params <- ctx.params @ [ (name, v) ]
    | Ast.Topology topo ->
        let loc =
          match topo with Ast.Tring (l, _) | Ast.Ttree (l, _, _, _) -> l
        in
        (match ctx.topo with
        | Some _ -> fail ctx loc "topology already declared"
        | None -> ());
        let built =
          match topo with
          | Ast.Tring (_, n) ->
              let n = eval_const ctx [] n in
              if n < 2 then
                fail ctx loc
                  (Printf.sprintf "ring size must be at least 2, got %d" n);
              Tring (Ring.create n)
          | Ast.Ttree (_, shape, n, seed) -> (
              let n = eval_const ctx [] n in
              if n < 1 then
                fail ctx loc
                  (Printf.sprintf "tree size must be positive, got %d" n);
              match shape with
              | "chain" -> Ttree (Tree.chain n)
              | "star" -> Ttree (Tree.star n)
              | "balanced" | "balanced-2" -> Ttree (Tree.balanced ~arity:2 n)
              | "balanced-3" -> Ttree (Tree.balanced ~arity:3 n)
              | "random" ->
                  let seed = match seed with Some s -> s | None -> 0 in
                  Ttree (Tree.random (Prng.create seed) n)
              | s ->
                  fail ctx loc
                    (Printf.sprintf
                       "unknown tree shape %s (expected chain, star, \
                        balanced, balanced-2, balanced-3, or random)"
                       s))
        in
        ctx.topo <- Some built
    | Ast.Vars decls ->
        List.iter
          (fun (d : Ast.vdecl) ->
            if List.mem_assoc d.Ast.v_name ctx.vents then
              fail ctx d.Ast.v_loc
                (Printf.sprintf "duplicate variable %s" d.Ast.v_name);
            if List.mem_assoc d.Ast.v_name ctx.params then
              fail ctx d.Ast.v_loc
                (Printf.sprintf "variable %s collides with a parameter"
                   d.Ast.v_name);
            let dom =
              match d.Ast.v_dom with
              | Ast.Dbool -> Domain.bool
              | Ast.Drange (lo, hi) ->
                  let l = eval_const ctx [] lo in
                  let h = eval_const ctx [] hi in
                  if h < l then
                    fail ctx (nexp_loc lo)
                      (Printf.sprintf "empty range %d..%d" l h);
                  Domain.range l h
              | Ast.Denum (ename, lbls) ->
                  let here = Hashtbl.create 8 in
                  List.iteri
                    (fun i lbl ->
                      if Hashtbl.mem here lbl then
                        fail ctx d.Ast.v_loc
                          (Printf.sprintf "duplicate enum label %s" lbl);
                      Hashtbl.add here lbl ();
                      match List.assoc_opt lbl ctx.labels with
                      | Some v when v <> i ->
                          fail ctx d.Ast.v_loc
                            (Printf.sprintf
                               "enum label %s already denotes %d and cannot \
                                also denote %d"
                               lbl v i)
                      | Some _ -> ()
                      | None -> ctx.labels <- ctx.labels @ [ (lbl, i) ])
                    lbls;
                  Domain.enum ename lbls
            in
            let ent =
              match d.Ast.v_size with
              | None -> Scalar (Env.fresh ctx.env d.Ast.v_name dom)
              | Some n ->
                  let k = eval_const ctx [] n in
                  if k < 1 then
                    fail ctx (nexp_loc n)
                      (Printf.sprintf "family size must be positive, got %d" k);
                  Family (Env.fresh_family ctx.env d.Ast.v_name k dom)
            in
            ctx.vents <- ctx.vents @ [ (d.Ast.v_name, ent) ])
          decls
    | Ast.Action a ->
        prog_acts := List.rev_append (elaborate_act ctx prog_seen ~prefix:"" a) !prog_acts
    | Ast.Fault a ->
        fault_acts :=
          List.rev_append (elaborate_act ctx fault_seen ~prefix:"fault:" a) !fault_acts
    | Ast.Env a ->
        env_acts :=
          List.rev_append (elaborate_act ctx env_seen ~prefix:"env:" a) !env_acts
    | Ast.Constraint c ->
        expand_binders ctx c.Ast.c_binders
        |> List.iter (fun bnd ->
               let name = c.Ast.c_name ^ suffix_of bnd in
               if List.mem_assoc name !constraints then
                 fail ctx c.Ast.c_loc
                   (Printf.sprintf "duplicate constraint name %s" name);
               let body = compile_bool ctx (List.rev bnd) c.Ast.c_body in
               constraints := !constraints @ [ (name, body) ])
    | Ast.Invariant (_, e) -> invariants := !invariants @ [ compile_bool ctx [] e ]
    | Ast.Init (loc, binds) ->
        if !init_loc = None then init_loc := Some loc;
        List.iter
          (fun (b : Ast.init_bind) ->
            let targets =
              match List.assoc_opt b.Ast.i_name ctx.vents with
              | Some (Scalar v) -> (
                  match b.Ast.i_index with
                  | None -> [ (v, []) ]
                  | Some _ ->
                      fail ctx b.Ast.i_loc
                        (Printf.sprintf
                           "%s is a scalar variable and cannot be indexed"
                           b.Ast.i_name))
              | Some (Family arr) -> (
                  match b.Ast.i_index with
                  | None ->
                      fail ctx b.Ast.i_loc
                        (Printf.sprintf
                           "%s is a family; write %s[i] = e or %s[j in set] \
                            = e"
                           b.Ast.i_name b.Ast.i_name b.Ast.i_name)
                  | Some (Ast.Iexact e) ->
                      let i = eval_const ctx [] e in
                      if i < 0 || i >= Array.length arr then
                        fail ctx (nexp_loc e)
                          (Printf.sprintf "index %d is out of range for \
                                           %s[0..%d]"
                             i b.Ast.i_name (Array.length arr - 1));
                      [ (arr.(i), []) ]
                  | Some (Ast.Iall (x, set)) ->
                      eval_iset ctx [] b.Ast.i_loc set
                      |> List.map (fun j ->
                             if j < 0 || j >= Array.length arr then
                               fail ctx b.Ast.i_loc
                                 (Printf.sprintf
                                    "index %d is out of range for %s[0..%d]" j
                                    b.Ast.i_name (Array.length arr - 1));
                             (arr.(j), [ (x, j) ])))
              | None ->
                  fail ctx b.Ast.i_loc
                    (Printf.sprintf "unknown variable %s" b.Ast.i_name)
            in
            List.iter
              (fun (var, bnd) ->
                let v = eval_const ctx bnd b.Ast.i_value in
                if not (Domain.mem (Var.domain var) v) then
                  fail ctx (nexp_loc b.Ast.i_value)
                    (Printf.sprintf "value %d is outside the domain of %s" v
                       (Var.name var));
                init_sets := !init_sets @ [ (var, v) ])
              targets)
          binds
  in
  List.iter do_item m.Ast.m_items;
  if Env.var_count ctx.env = 0 then
    Err.fail src m.Ast.m_loc "model declares no variables";
  let program = Program.make ~name:m.Ast.m_name ctx.env (List.rev !prog_acts) in
  let constraints = !constraints in
  if constraints = [] && !invariants = [] then
    Err.fail src m.Ast.m_loc
      "model has no invariant (add an invariant or constraint item)";
  let invariant_expr = Expr.conj (List.map snd constraints @ !invariants) in
  let init = State.make ctx.env in
  List.iter (fun (var, v) -> State.set init var v) !init_sets;
  if not (Expr.eval init invariant_expr) then begin
    let loc = match !init_loc with Some l -> l | None -> m.Ast.m_loc in
    Err.fail src loc
      (Printf.sprintf "the initial state %s does not satisfy the invariant"
         (State.to_string ctx.env init))
  end;
  {
    name = m.Ast.m_name;
    env = ctx.env;
    program;
    fault_actions = List.rev !fault_acts;
    env_actions = List.rev !env_acts;
    constraints;
    invariant_expr;
    invariant = (fun st -> Expr.eval st invariant_expr);
    init;
    params = ctx.params;
  }
