type token =
  | IDENT of string
  | INT of int
  | KW_MODEL
  | KW_PARAM
  | KW_TOPOLOGY
  | KW_RING
  | KW_TREE
  | KW_VAR
  | KW_ACTION
  | KW_FAULT
  | KW_ENV
  | KW_CONSTRAINT
  | KW_INVARIANT
  | KW_INIT
  | KW_IN
  | KW_FORALL
  | KW_EXISTS
  | KW_NODES
  | KW_NONROOT
  | KW_CHILDREN
  | KW_BOOL
  | KW_SKIP
  | KW_TRUE
  | KW_FALSE
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_MIN
  | KW_MAX
  | KW_MOD
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | DOTDOT
  | ARROW
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | IMPLIES
  | IFF
  | EOF

type located = { tok : token; loc : Loc.t }

let keyword = function
  | "model" -> Some KW_MODEL
  | "param" -> Some KW_PARAM
  | "topology" -> Some KW_TOPOLOGY
  | "ring" -> Some KW_RING
  | "tree" -> Some KW_TREE
  | "var" -> Some KW_VAR
  | "action" -> Some KW_ACTION
  | "fault" -> Some KW_FAULT
  | "env" -> Some KW_ENV
  | "constraint" -> Some KW_CONSTRAINT
  | "invariant" -> Some KW_INVARIANT
  | "init" -> Some KW_INIT
  | "in" -> Some KW_IN
  | "forall" -> Some KW_FORALL
  | "exists" -> Some KW_EXISTS
  | "nodes" -> Some KW_NODES
  | "nonroot" -> Some KW_NONROOT
  | "children" -> Some KW_CHILDREN
  | "bool" -> Some KW_BOOL
  | "skip" -> Some KW_SKIP
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "min" -> Some KW_MIN
  | "max" -> Some KW_MAX
  | "mod" -> Some KW_MOD
  | _ -> None

(* Inverse of [keyword]: the source word a keyword token lexed from.
   Lets dashed names reuse keyword words as fragments ("token-ring",
   "xyz-good-tree") — a name position is never ambiguous with a
   keyword position. *)
let keyword_text = function
  | KW_MODEL -> Some "model"
  | KW_PARAM -> Some "param"
  | KW_TOPOLOGY -> Some "topology"
  | KW_RING -> Some "ring"
  | KW_TREE -> Some "tree"
  | KW_VAR -> Some "var"
  | KW_ACTION -> Some "action"
  | KW_FAULT -> Some "fault"
  | KW_ENV -> Some "env"
  | KW_CONSTRAINT -> Some "constraint"
  | KW_INVARIANT -> Some "invariant"
  | KW_INIT -> Some "init"
  | KW_IN -> Some "in"
  | KW_FORALL -> Some "forall"
  | KW_EXISTS -> Some "exists"
  | KW_NODES -> Some "nodes"
  | KW_NONROOT -> Some "nonroot"
  | KW_CHILDREN -> Some "children"
  | KW_BOOL -> Some "bool"
  | KW_SKIP -> Some "skip"
  | KW_TRUE -> Some "true"
  | KW_FALSE -> Some "false"
  | KW_IF -> Some "if"
  | KW_THEN -> Some "then"
  | KW_ELSE -> Some "else"
  | KW_MIN -> Some "min"
  | KW_MAX -> Some "max"
  | KW_MOD -> Some "mod"
  | _ -> None

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW_MODEL -> "'model'"
  | KW_PARAM -> "'param'"
  | KW_TOPOLOGY -> "'topology'"
  | KW_RING -> "'ring'"
  | KW_TREE -> "'tree'"
  | KW_VAR -> "'var'"
  | KW_ACTION -> "'action'"
  | KW_FAULT -> "'fault'"
  | KW_ENV -> "'env'"
  | KW_CONSTRAINT -> "'constraint'"
  | KW_INVARIANT -> "'invariant'"
  | KW_INIT -> "'init'"
  | KW_IN -> "'in'"
  | KW_FORALL -> "'forall'"
  | KW_EXISTS -> "'exists'"
  | KW_NODES -> "'nodes'"
  | KW_NONROOT -> "'nonroot'"
  | KW_CHILDREN -> "'children'"
  | KW_BOOL -> "'bool'"
  | KW_SKIP -> "'skip'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_IF -> "'if'"
  | KW_THEN -> "'then'"
  | KW_ELSE -> "'else'"
  | KW_MIN -> "'min'"
  | KW_MAX -> "'max'"
  | KW_MOD -> "'mod'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOTDOT -> "'..'"
  | ARROW -> "'->'"
  | ASSIGN -> "':='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EQ -> "'='"
  | NE -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | AND -> "'/\\'"
  | OR -> "'\\/'"
  | NOT -> "'~'"
  | IMPLIES -> "'=>'"
  | IFF -> "'<=>'"
  | EOF -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex (src : Source.t) : located array =
  let s = src.Source.text in
  let n = String.length s in
  let line = ref 1 and col = ref 1 in
  let here () = { Loc.line = !line; col = !col } in
  let fail message = Err.fail src (here ()) message in
  let tokens = ref [] in
  let emit tok = tokens := { tok; loc = here () } :: !tokens in
  let i = ref 0 in
  let advance k =
    for _ = 1 to k do
      (if !i < n && s.[!i] = '\n' then begin
         incr line;
         col := 0
       end);
      incr i;
      incr col
    done
  in
  let peek off = if !i + off < n then Some s.[!i + off] else None in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance 1
    else if c = '(' && peek 1 = Some '*' then begin
      (* comment: skip to the matching close, allowing nesting *)
      let opened = here () in
      let depth = ref 1 in
      advance 2;
      while !depth > 0 && !i < n do
        if peek 0 = Some '(' && peek 1 = Some '*' then begin
          incr depth;
          advance 2
        end
        else if peek 0 = Some '*' && peek 1 = Some ')' then begin
          decr depth;
          advance 2
        end
        else advance 1
      done;
      if !depth > 0 then Err.fail src opened "unterminated comment"
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      (match keyword word with Some kw -> emit kw | None -> emit (IDENT word));
      advance (String.length word)
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      (match int_of_string_opt word with
      | Some v -> emit (INT v)
      | None -> fail (Printf.sprintf "integer literal %s is out of range" word));
      advance (String.length word)
    end
    else begin
      let two =
        match peek 1 with Some c2 -> Printf.sprintf "%c%c" c c2 | None -> ""
      in
      let three =
        match (peek 1, peek 2) with
        | Some c2, Some c3 -> Printf.sprintf "%c%c%c" c c2 c3
        | _ -> ""
      in
      if three = "<=>" then begin
        emit IFF;
        advance 3
      end
      else
        match two with
        | ".." ->
            emit DOTDOT;
            advance 2
        | "->" ->
            emit ARROW;
            advance 2
        | ":=" ->
            emit ASSIGN;
            advance 2
        | "<>" ->
            emit NE;
            advance 2
        | "<=" ->
            emit LE;
            advance 2
        | ">=" ->
            emit GE;
            advance 2
        | "/\\" ->
            emit AND;
            advance 2
        | "\\/" ->
            emit OR;
            advance 2
        | "=>" ->
            emit IMPLIES;
            advance 2
        | _ -> (
            match c with
            | '(' ->
                emit LPAREN;
                advance 1
            | ')' ->
                emit RPAREN;
                advance 1
            | '[' ->
                emit LBRACKET;
                advance 1
            | ']' ->
                emit RBRACKET;
                advance 1
            | '{' ->
                emit LBRACE;
                advance 1
            | '}' ->
                emit RBRACE;
                advance 1
            | ',' ->
                emit COMMA;
                advance 1
            | ';' ->
                emit SEMI;
                advance 1
            | ':' ->
                emit COLON;
                advance 1
            | '+' ->
                emit PLUS;
                advance 1
            | '-' ->
                emit MINUS;
                advance 1
            | '*' ->
                emit STAR;
                advance 1
            | '/' ->
                emit SLASH;
                advance 1
            | '=' ->
                emit EQ;
                advance 1
            | '<' ->
                emit LT;
                advance 1
            | '>' ->
                emit GT;
                advance 1
            | '~' ->
                emit NOT;
                advance 1
            | c -> fail (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit EOF;
  Array.of_list (List.rev !tokens)
