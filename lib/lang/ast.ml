type binop = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type quant = Forall | Exists

type iset =
  | Srange of nexp * nexp
  | Snodes
  | Snonroot
  | Schildren of nexp

and nexp =
  | Int of Loc.t * int
  | Ref of Loc.t * string * nexp option
  | Call of Loc.t * string * nexp list
  | Neg of Loc.t * nexp
  | Binop of Loc.t * binop * nexp * nexp
  | Ite of Loc.t * bexp * nexp * nexp

and bexp =
  | Bool of Loc.t * bool
  | Cmp of Loc.t * cmp * nexp * nexp
  | Not of Loc.t * bexp
  | And of Loc.t * bexp * bexp
  | Or of Loc.t * bexp * bexp
  | Implies of Loc.t * bexp * bexp
  | Iff of Loc.t * bexp * bexp
  | Quant of Loc.t * quant * string * iset * bexp

type domain =
  | Dbool
  | Drange of nexp * nexp
  | Denum of string * string list

type vdecl = {
  v_loc : Loc.t;
  v_name : string;
  v_size : nexp option;
  v_dom : domain;
}

type binder = { b_loc : Loc.t; b_name : string; b_set : iset }
type lhs = { l_loc : Loc.t; l_name : string; l_index : nexp option }

type act = {
  a_loc : Loc.t;
  a_name : string;
  a_binders : binder list;
  a_guard : bexp;
  a_assigns : (lhs list * nexp list) option;
}

type constr = {
  c_loc : Loc.t;
  c_name : string;
  c_binders : binder list;
  c_body : bexp;
}

type init_index = Iexact of nexp | Iall of string * iset

type init_bind = {
  i_loc : Loc.t;
  i_name : string;
  i_index : init_index option;
  i_value : nexp;
}

type topo =
  | Tring of Loc.t * nexp
  | Ttree of Loc.t * string * nexp * int option

type item =
  | Param of Loc.t * string * nexp
  | Topology of topo
  | Vars of vdecl list
  | Action of act
  | Fault of act
  | Env of act
  | Constraint of constr
  | Invariant of Loc.t * bexp
  | Init of Loc.t * init_bind list

type model = { m_loc : Loc.t; m_name : string; m_items : item list }

(* --- location erasure: structural equality modulo positions --- *)

let z = Loc.none

let rec strip_iset = function
  | Srange (a, b) -> Srange (strip_nexp a, strip_nexp b)
  | (Snodes | Snonroot) as s -> s
  | Schildren e -> Schildren (strip_nexp e)

and strip_nexp = function
  | Int (_, n) -> Int (z, n)
  | Ref (_, x, i) -> Ref (z, x, Option.map strip_nexp i)
  | Call (_, f, args) -> Call (z, f, List.map strip_nexp args)
  | Neg (_, e) -> Neg (z, strip_nexp e)
  | Binop (_, op, a, b) -> Binop (z, op, strip_nexp a, strip_nexp b)
  | Ite (_, c, a, b) -> Ite (z, strip_bexp c, strip_nexp a, strip_nexp b)

and strip_bexp = function
  | Bool (_, b) -> Bool (z, b)
  | Cmp (_, c, a, b) -> Cmp (z, c, strip_nexp a, strip_nexp b)
  | Not (_, b) -> Not (z, strip_bexp b)
  | And (_, a, b) -> And (z, strip_bexp a, strip_bexp b)
  | Or (_, a, b) -> Or (z, strip_bexp a, strip_bexp b)
  | Implies (_, a, b) -> Implies (z, strip_bexp a, strip_bexp b)
  | Iff (_, a, b) -> Iff (z, strip_bexp a, strip_bexp b)
  | Quant (_, q, x, s, b) -> Quant (z, q, x, strip_iset s, strip_bexp b)

let strip_domain = function
  | Dbool -> Dbool
  | Drange (a, b) -> Drange (strip_nexp a, strip_nexp b)
  | Denum _ as d -> d

let strip_vdecl d =
  {
    d with
    v_loc = z;
    v_size = Option.map strip_nexp d.v_size;
    v_dom = strip_domain d.v_dom;
  }

let strip_binder b = { b with b_loc = z; b_set = strip_iset b.b_set }
let strip_lhs l = { l with l_loc = z; l_index = Option.map strip_nexp l.l_index }

let strip_act a =
  {
    a with
    a_loc = z;
    a_binders = List.map strip_binder a.a_binders;
    a_guard = strip_bexp a.a_guard;
    a_assigns =
      Option.map
        (fun (ls, es) -> (List.map strip_lhs ls, List.map strip_nexp es))
        a.a_assigns;
  }

let strip_item = function
  | Param (_, x, e) -> Param (z, x, strip_nexp e)
  | Topology (Tring (_, n)) -> Topology (Tring (z, strip_nexp n))
  | Topology (Ttree (_, shape, n, seed)) ->
      Topology (Ttree (z, shape, strip_nexp n, seed))
  | Vars ds -> Vars (List.map strip_vdecl ds)
  | Action a -> Action (strip_act a)
  | Fault a -> Fault (strip_act a)
  | Env a -> Env (strip_act a)
  | Constraint c ->
      Constraint
        {
          c with
          c_loc = z;
          c_binders = List.map strip_binder c.c_binders;
          c_body = strip_bexp c.c_body;
        }
  | Invariant (_, b) -> Invariant (z, strip_bexp b)
  | Init (_, binds) ->
      Init
        ( z,
          List.map
            (fun i ->
              {
                i with
                i_loc = z;
                i_index =
                  Option.map
                    (function
                      | Iexact e -> Iexact (strip_nexp e)
                      | Iall (x, s) -> Iall (x, strip_iset s))
                    i.i_index;
                i_value = strip_nexp i.i_value;
              })
            binds )

let strip m = { m with m_loc = z; m_items = List.map strip_item m.m_items }
let equal a b = strip a = strip b
