open Ast

(* Precedence levels mirror Guarded.Expr.pp so that printing an
   elaborated expression with Expr.pp yields text this module's parser
   accepts with the same meaning. Numeric: additive = 1,
   multiplicative = 2, atoms = 3. Boolean: implies/iff = 1, or = 2,
   and = 3, not = 4, atoms self-delimiting. *)

let rec nexp buf prec (e : nexp) =
  let paren level body =
    if prec > level then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match e with
  | Int (_, n) ->
      if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
      else Buffer.add_string buf (string_of_int n)
  | Ref (_, name, None) -> Buffer.add_string buf name
  | Ref (_, name, Some idx) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '[';
      nexp buf 0 idx;
      Buffer.add_char buf ']'
  | Call (_, name, args) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      List.iteri
        (fun k a ->
          if k > 0 then Buffer.add_string buf ", ";
          nexp buf 0 a)
        args;
      Buffer.add_char buf ')'
  | Neg (_, a) ->
      Buffer.add_string buf "-(";
      nexp buf 0 a;
      Buffer.add_char buf ')'
  | Binop (_, op, a, b) ->
      let level, sym =
        match op with
        | Add -> (1, " + ")
        | Sub -> (1, " - ")
        | Mul -> (2, " * ")
        | Div -> (2, " / ")
        | Mod -> (2, " mod ")
      in
      paren level (fun () ->
          nexp buf level a;
          Buffer.add_string buf sym;
          nexp buf (level + 1) b)
  | Ite (_, c, a, b) ->
      Buffer.add_string buf "(if ";
      bexp buf 0 c;
      Buffer.add_string buf " then ";
      nexp buf 0 a;
      Buffer.add_string buf " else ";
      nexp buf 0 b;
      Buffer.add_char buf ')'

and bexp buf prec (e : bexp) =
  let paren level body =
    if prec > level then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match e with
  | Bool (_, b) -> Buffer.add_string buf (if b then "true" else "false")
  | Cmp (_, op, a, b) ->
      let sym =
        match op with
        | Eq -> " = "
        | Ne -> " <> "
        | Lt -> " < "
        | Le -> " <= "
        | Gt -> " > "
        | Ge -> " >= "
      in
      nexp buf 1 a;
      Buffer.add_string buf sym;
      nexp buf 1 b
  | Not (_, a) ->
      paren 4 (fun () ->
          Buffer.add_char buf '~';
          bexp buf 4 a)
  | And (_, a, b) ->
      paren 3 (fun () ->
          bexp buf 3 a;
          Buffer.add_string buf " /\\ ";
          bexp buf 4 b)
  | Or (_, a, b) ->
      paren 2 (fun () ->
          bexp buf 2 a;
          Buffer.add_string buf " \\/ ";
          bexp buf 3 b)
  | Implies (_, a, b) ->
      paren 1 (fun () ->
          bexp buf 2 a;
          Buffer.add_string buf " => ";
          bexp buf 1 b)
  | Iff (_, a, b) ->
      paren 1 (fun () ->
          bexp buf 2 a;
          Buffer.add_string buf " <=> ";
          bexp buf 2 b)
  | Quant (_, q, x, set, body) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (match q with Forall -> "forall" | Exists -> "exists");
      Buffer.add_char buf ' ';
      Buffer.add_string buf x;
      Buffer.add_string buf " in ";
      iset buf set;
      Buffer.add_string buf ": ";
      bexp buf 0 body;
      Buffer.add_char buf ')'

and iset buf = function
  | Srange (lo, hi) ->
      nexp buf 0 lo;
      Buffer.add_string buf "..";
      nexp buf 0 hi
  | Snodes -> Buffer.add_string buf "nodes"
  | Snonroot -> Buffer.add_string buf "nonroot"
  | Schildren e ->
      Buffer.add_string buf "children(";
      nexp buf 0 e;
      Buffer.add_char buf ')'

let print_nexp e =
  let buf = Buffer.create 64 in
  nexp buf 0 e;
  Buffer.contents buf

let print_bexp e =
  let buf = Buffer.create 64 in
  bexp buf 0 e;
  Buffer.contents buf

let domain buf = function
  | Dbool -> Buffer.add_string buf "bool"
  | Drange (lo, hi) ->
      nexp buf 0 lo;
      Buffer.add_string buf "..";
      nexp buf 0 hi
  | Denum (name, labels) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '{';
      List.iteri
        (fun k l ->
          if k > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf l)
        labels;
      Buffer.add_char buf '}'

let binders buf bs =
  List.iter
    (fun b ->
      Buffer.add_char buf '[';
      Buffer.add_string buf b.b_name;
      Buffer.add_string buf " in ";
      iset buf b.b_set;
      Buffer.add_char buf ']')
    bs

let act buf kw (a : act) =
  Buffer.add_string buf kw;
  Buffer.add_char buf ' ';
  Buffer.add_string buf a.a_name;
  binders buf a.a_binders;
  Buffer.add_string buf ":\n  ";
  bexp buf 0 a.a_guard;
  Buffer.add_string buf " -> ";
  (match a.a_assigns with
  | None -> Buffer.add_string buf "skip"
  | Some (lhss, rhss) ->
      List.iteri
        (fun k l ->
          if k > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf l.l_name;
          match l.l_index with
          | None -> ()
          | Some idx ->
              Buffer.add_char buf '[';
              nexp buf 0 idx;
              Buffer.add_char buf ']')
        lhss;
      Buffer.add_string buf " := ";
      List.iteri
        (fun k r ->
          if k > 0 then Buffer.add_string buf ", ";
          nexp buf 0 r)
        rhss);
  Buffer.add_char buf '\n'

let item buf = function
  | Param (_, name, e) ->
      Buffer.add_string buf "param ";
      Buffer.add_string buf name;
      Buffer.add_string buf " = ";
      nexp buf 0 e;
      Buffer.add_char buf '\n'
  | Topology (Tring (_, n)) ->
      Buffer.add_string buf "topology ring(";
      nexp buf 0 n;
      Buffer.add_string buf ")\n"
  | Topology (Ttree (_, shape, n, seed)) ->
      Buffer.add_string buf "topology tree(";
      Buffer.add_string buf shape;
      Buffer.add_string buf ", ";
      nexp buf 0 n;
      (match seed with
      | None -> ()
      | Some s ->
          Buffer.add_string buf ", ";
          Buffer.add_string buf (string_of_int s));
      Buffer.add_string buf ")\n"
  | Vars decls ->
      Buffer.add_string buf "var ";
      List.iteri
        (fun k d ->
          if k > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf d.v_name;
          (match d.v_size with
          | None -> ()
          | Some n ->
              Buffer.add_char buf '[';
              nexp buf 0 n;
              Buffer.add_char buf ']');
          Buffer.add_string buf " : ";
          domain buf d.v_dom)
        decls;
      Buffer.add_char buf '\n'
  | Action a -> act buf "action" a
  | Fault a -> act buf "fault" a
  | Env a -> act buf "env" a
  | Constraint c ->
      Buffer.add_string buf "constraint ";
      Buffer.add_string buf c.c_name;
      binders buf c.c_binders;
      Buffer.add_string buf ":\n  ";
      bexp buf 0 c.c_body;
      Buffer.add_char buf '\n'
  | Invariant (_, e) ->
      Buffer.add_string buf "invariant ";
      bexp buf 0 e;
      Buffer.add_char buf '\n'
  | Init (_, binds) ->
      Buffer.add_string buf "init ";
      List.iteri
        (fun k b ->
          if k > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf b.i_name;
          (match b.i_index with
          | None -> ()
          | Some (Iexact e) ->
              Buffer.add_char buf '[';
              nexp buf 0 e;
              Buffer.add_char buf ']'
          | Some (Iall (x, set)) ->
              Buffer.add_char buf '[';
              Buffer.add_string buf x;
              Buffer.add_string buf " in ";
              iset buf set;
              Buffer.add_char buf ']');
          Buffer.add_string buf " = ";
          nexp buf 0 b.i_value)
        binds;
      Buffer.add_char buf '\n'

let print (m : model) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "model ";
  Buffer.add_string buf m.m_name;
  Buffer.add_char buf '\n';
  List.iter
    (fun it ->
      Buffer.add_char buf '\n';
      item buf it)
    m.m_items;
  Buffer.contents buf
