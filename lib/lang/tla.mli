(** TLA+ module emitter.

    Renders an elaborated model as a self-contained TLA+ module:
    variables with integer-coded domains ([TypeOK]), [Init] from the
    model's initial state, one operator per program action (guard,
    primed assignments, [UNCHANGED] frame), [Next] as their
    disjunction, declared fault actions as a separate [Faults]
    disjunction, and [Invariant]. Deterministic: equal models produce
    byte-equal modules. *)

val render : Elab.t -> string
