module State = Guarded.State
module Compile = Guarded.Compile
module Program = Guarded.Program
module Engine = Explore.Engine
module Faultspan = Explore.Faultspan
module Convergence = Explore.Convergence
module Closure = Explore.Closure
module Certify = Nonmask.Certify

type failure = { oracle : string; detail : string }

type config = {
  cert_budget : int;
  storm_trials : int;
  storm_rate : float;
  defect : Engine.backend option;
}

let default =
  { cert_budget = 2; storm_trials = 20; storm_rate = 0.2; defect = None }

let oracle_names =
  [
    "region-agree";
    "verdict-agree";
    "span-agree";
    "span-monotone";
    "cert-agree";
    "reorder-stable";
    "storm-consistent";
    "adversary-sound";
    "storage-agree";
    "emit-roundtrip";
  ]

let backends = [ Engine.Eager; Engine.Lazy; Engine.Parallel ]

let backend_name = function
  | Engine.Eager -> "eager"
  | Engine.Lazy -> "lazy"
  | Engine.Parallel -> "parallel"

(* Spaces are capped at generation time (Generate.config.max_states), so a
   budget far above the cap means no backend can overflow. *)
let engine_budget = 1 lsl 21

(* --- canonical signatures, comparable across backends --- *)

(* A region, rewritten in terms of state keys so that it is independent of
   the backend's node numbering. *)
type region_sig = {
  r_keys : int list;  (* sorted member keys *)
  r_edges : (int * int * int) list;  (* sorted (src key, dst key, action) *)
  r_terminals : int list;  (* sorted member keys with no enabled action *)
  r_explored : int;
}

let region_sig ~bump (r : Engine.region) =
  let key v = r.Engine.node_key.(v) in
  let edges =
    Dgraph.Digraph.fold_edges
      (fun acc e -> (key e.Dgraph.Digraph.src, key e.dst, e.label) :: acc)
      [] r.Engine.graph
  in
  let terminals = ref [] in
  Array.iteri
    (fun v t -> if t then terminals := key v :: !terminals)
    r.Engine.terminal;
  {
    r_keys = List.sort compare (Array.to_list r.Engine.node_key);
    r_edges = List.sort compare edges;
    r_terminals = List.sort compare !terminals;
    r_explored = r.Engine.explored + bump;
  }

let diff_region a b =
  if a.r_keys <> b.r_keys then Some "member state sets differ"
  else if a.r_edges <> b.r_edges then Some "edge multisets differ"
  else if a.r_terminals <> b.r_terminals then Some "terminal sets differ"
  else if a.r_explored <> b.r_explored then
    Some
      (Printf.sprintf "explored counts differ (%d vs %d)" a.r_explored
         b.r_explored)
  else None

type verdict_sig =
  | V_ok of int * int * int option
  | V_deadlock of string  (* "" for a valid witness — see below *)
  | V_livelock

(* Deadlock and livelock witnesses depend on the backend's node numbering
   (Convergence picks the first terminal node in node order), so backends
   legitimately report different ones. region-agree already proves the
   terminal sets coincide; here we only require each backend's witness to
   be a genuine deadlock — terminal under the program and outside the
   target — which makes valid witnesses compare equal. *)
let verdict_sig env ~program ~target = function
  | Ok { Convergence.region_states; explored; worst_case_steps } ->
      V_ok (region_states, explored, worst_case_steps)
  | Error (Convergence.Deadlock s) ->
      let enabled =
        Array.exists
          (fun a -> Guarded.Action.enabled a s)
          (Program.actions program)
      in
      if enabled || target s then
        V_deadlock ("invalid witness " ^ State.to_string env s)
      else V_deadlock ""
  | Error (Convergence.Livelock _) -> V_livelock

let verdict_str = function
  | V_ok (r, e, w) ->
      Printf.sprintf "converges (region=%d explored=%d worst=%s)" r e
        (match w with Some w -> string_of_int w | None -> "-")
  | V_deadlock "" -> "deadlock (valid witness)"
  | V_deadlock s -> "deadlock: " ^ s
  | V_livelock -> "livelock"

type span_sig = {
  s_count : int;
  s_roots : int;
  s_depth : int;
  s_hist : int list;
}

let span_sig ~bump span =
  {
    s_count = Faultspan.count span + bump;
    s_roots = Faultspan.root_count span;
    s_depth = Faultspan.max_depth span;
    s_hist = Array.to_list (Faultspan.depth_histogram span);
  }

let span_str s =
  Printf.sprintf "count=%d roots=%d depth=%d hist=[%s]" s.s_count s.s_roots
    s.s_depth
    (String.concat ";" (List.map string_of_int s.s_hist))

let cert_sig cert =
  ( Certify.ok cert,
    List.map (fun c -> (c.Certify.label, c.Certify.ok)) cert.Certify.checks )

(* --- the oracles --- *)

type ctx = {
  cfg : config;
  m : Spec.model;
  cp : Compile.program;
  faults_cp : Compile.program;
  engines : (Engine.backend * Engine.t) list;
  guard : Rt.Guard.t;
  storm_seed : int;
  reorder_seed : int;
}

let bump_of cfg b = if cfg.defect = Some b then 1 else 0

let eager ctx = List.assoc Engine.Eager ctx.engines
let lazy_e ctx = List.assoc Engine.Lazy ctx.engines

let root_sets ctx =
  [ ("legit", Engine.Seeds [ ctx.m.Spec.legit ]); ("all", Engine.All) ]

(* Compare every backend's value of [f] against the eager backend's. *)
let against_eager ctx ~name ~describe ~diff f =
  let reference = f (eager ctx) Engine.Eager in
  List.fold_left
    (fun acc (b, e) ->
      match acc with
      | Some _ -> acc
      | None when b = Engine.Eager -> None
      | None -> (
          match diff reference (f e b) with
          | None -> None
          | Some why ->
              Some
                {
                  oracle = name;
                  detail =
                    Printf.sprintf "%s: %s disagrees with eager: %s" describe
                      (backend_name b) why;
                }))
    None ctx.engines

let o_region_agree ctx =
  List.fold_left
    (fun acc (rname, from) ->
      match acc with
      | Some _ -> acc
      | None ->
          against_eager ctx ~name:"region-agree"
            ~describe:(Printf.sprintf "roots=%s" rname) ~diff:diff_region
            (fun e b ->
              region_sig ~bump:(bump_of ctx.cfg b)
                (Engine.region e ctx.cp ~from ~target:ctx.m.Spec.invariant)))
    None (root_sets ctx)

let o_verdict_agree ctx =
  let diff a b =
    if a = b then None
    else Some (Printf.sprintf "%s vs %s" (verdict_str b) (verdict_str a))
  in
  List.fold_left
    (fun acc (rname, from) ->
      match acc with
      | Some _ -> acc
      | None ->
          against_eager ctx ~name:"verdict-agree"
            ~describe:(Printf.sprintf "roots=%s" rname) ~diff
            (fun e _b ->
              verdict_sig ctx.m.Spec.env ~program:ctx.m.Spec.program
                ~target:ctx.m.Spec.invariant
                (Convergence.check_unfair e ctx.cp ~from
                   ~target:ctx.m.Spec.invariant)))
    None (root_sets ctx)

let span ctx e ~budget ~from =
  Faultspan.compute e ~program:ctx.cp ?budget ~faults:ctx.faults_cp ~from ()

let o_span_agree ctx =
  let budgets =
    [ ("budget=0", Some 0);
      (Printf.sprintf "budget=%d" ctx.cfg.cert_budget, Some ctx.cfg.cert_budget);
      ("unbounded", None);
    ]
  in
  let diff a b =
    if a = b then None
    else Some (Printf.sprintf "%s vs %s" (span_str b) (span_str a))
  in
  List.fold_left
    (fun acc (bname, budget) ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc (rname, from) ->
              match acc with
              | Some _ -> acc
              | None ->
                  against_eager ctx ~name:"span-agree"
                    ~describe:(Printf.sprintf "roots=%s %s" rname bname) ~diff
                    (fun e b ->
                      span_sig ~bump:(bump_of ctx.cfg b)
                        (span ctx e ~budget ~from)))
            acc (root_sets ctx))
    None budgets

let o_span_monotone ctx =
  let e = lazy_e ctx in
  let from = Engine.Seeds [ ctx.m.Spec.legit ] in
  let counts =
    List.map
      (fun budget -> Faultspan.count (span ctx e ~budget ~from))
      [ Some 0; Some 1; Some ctx.cfg.cert_budget; None ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> if a > b then false else monotone rest
    | _ -> true
  in
  if not (monotone counts) then
    Some
      {
        oracle = "span-monotone";
        detail =
          Printf.sprintf "span counts not monotone in budget: [%s]"
            (String.concat ";" (List.map string_of_int counts));
      }
  else begin
    (* Budget 0 forbids every fault step, so the span must equal the
       program-only closure of the roots. *)
    let reachable = ref 0 in
    Engine.iter_reachable e ctx.cp ~from (fun _ -> incr reachable);
    let b0 = List.hd counts in
    if b0 <> !reachable then
      Some
        {
          oracle = "span-monotone";
          detail =
            Printf.sprintf
              "budget-0 span has %d states but the program closure has %d" b0
              !reachable;
        }
    else None
  end

let certificate ctx e program =
  Certify.tolerance ~engine:e ~program ~faults:ctx.m.Spec.fault_actions
    ~invariant:ctx.m.Spec.invariant ~budget:ctx.cfg.cert_budget ~name:"gen" ()

let o_cert_agree ctx =
  let diff (ok_a, checks_a) (ok_b, checks_b) =
    if ok_a <> ok_b then
      Some (Printf.sprintf "verdict %b vs %b" ok_b ok_a)
    else if checks_a <> checks_b then Some "per-check outcomes differ"
    else None
  in
  against_eager ctx ~name:"cert-agree" ~describe:"tolerance certificate" ~diff
    (fun e _b -> cert_sig (certificate ctx e ctx.m.Spec.program))

let o_reorder_stable ctx =
  let actions = Program.actions ctx.m.Spec.program in
  if Array.length actions < 2 then None
  else begin
    let rng = Prng.create ctx.reorder_seed in
    Prng.shuffle_in_place rng actions;
    let reordered =
      Program.make
        ~name:(Program.name ctx.m.Spec.program)
        ctx.m.Spec.env (Array.to_list actions)
    in
    let e = lazy_e ctx in
    let ok_orig = Certify.ok (certificate ctx e ctx.m.Spec.program) in
    let ok_re = Certify.ok (certificate ctx e reordered) in
    if ok_orig <> ok_re then
      Some
        {
          oracle = "reorder-stable";
          detail =
            Printf.sprintf
              "certificate verdict changed under action reordering (%b -> %b)"
              ok_orig ok_re;
        }
    else
      let closed p =
        match
          Closure.program_closed e (Compile.program p)
            ~pred:ctx.m.Spec.invariant
        with
        | Ok () -> true
        | Error _ -> false
      in
      if closed ctx.m.Spec.program <> closed reordered then
        Some
          {
            oracle = "reorder-stable";
            detail = "invariant closure verdict changed under action reordering";
          }
      else None
  end

let o_storm_consistent ctx =
  let e = lazy_e ctx in
  let cert = certificate ctx e ctx.m.Spec.program in
  if not (Certify.ok cert) then None
  else begin
    (* The storm starts in S and injects at most [cert_budget] single-step
       faults, so it can only visit the budgeted span of the legitimate
       state. When the fault-free convergence verdict over that span is
       exact (acyclic region, worst case [w] steps), any interleaving uses
       at most [(budget+1) * w] program steps plus [budget] injections —
       a theorem-implied bound, so a trial that exceeds it is a real
       contradiction, not bad luck. *)
    let sp =
      span ctx e ~budget:(Some ctx.cfg.cert_budget)
        ~from:(Engine.Seeds [ ctx.m.Spec.legit ])
    in
    match
      Convergence.check_unfair e ctx.cp
        ~from:(Engine.Seeds (Faultspan.states sp))
        ~target:ctx.m.Spec.invariant
    with
    | Error _ | Ok { worst_case_steps = None; _ } -> None
    | Ok { worst_case_steps = Some w; _ } ->
        let b = ctx.cfg.cert_budget in
        let max_steps = ((b + 1) * (w + 1)) + b + 4 in
        let result =
          Sim.Storm.trials ~max_steps ~fault_budget:b ~jobs:1
            ~rng:(Prng.create ctx.storm_seed) ~trials:ctx.cfg.storm_trials
            ~daemon:(fun r -> Sim.Daemon.random r)
            ~prepare:(fun _ -> State.copy ctx.m.Spec.legit)
            ~stop:ctx.m.Spec.invariant ~fault:ctx.m.Spec.fault
            ~rate:ctx.cfg.storm_rate ctx.cp
        in
        if result.Sim.Storm.failures > 0 then
          Some
            {
              oracle = "storm-consistent";
              detail =
                Printf.sprintf
                  "%d/%d storm trials failed to converge within the \
                   certificate-implied bound of %d steps (budget=%d, \
                   worst-case=%d)"
                  result.Sim.Storm.failures ctx.cfg.storm_trials max_steps b w;
            }
        else None
  end

(* The adversary bound (Tol.Adversary: exact worst-case recovery steps
   over the span under a worst-case scheduler) is validated three ways on
   models with a positive certificate:

   1. eager and lazy engines produce the identical result;
   2. the verdict coincides with the exact unfair convergence check over
      the same span — [Bounded w] iff the fault-free region is acyclic
      with longest path [w - 1], and then the bounds are equal;
   3. when bounded, the theorem-implied composite bound dominates every
      storm trial: at most [budget] injections split a trial into
      fault-free segments of at most [w] program steps each, so a trial
      that fails to converge within [(b+1)*(w+1) + b + 4] steps is a real
      soundness contradiction, not bad luck. *)
let o_adversary_sound ctx =
  let fail detail = Some { oracle = "adversary-sound"; detail } in
  let e = lazy_e ctx in
  if not (Certify.ok (certificate ctx e ctx.m.Spec.program)) then None
  else begin
    let budget = Some ctx.cfg.cert_budget in
    let from = Engine.Seeds [ ctx.m.Spec.legit ] in
    let adv_of e =
      let sp = span ctx e ~budget ~from in
      ( sp,
        Tol.Adversary.worst_case e ~program:ctx.cp ~span:sp
          ~invariant:ctx.m.Spec.invariant () )
    in
    let adv_sig (r : Tol.Adversary.result) =
      ( (match r.Tol.Adversary.verdict with
        | Tol.Adversary.Bounded w -> Some w
        | Tol.Adversary.Unbounded _ -> None),
        r.Tol.Adversary.span_states,
        r.Tol.Adversary.outside )
    in
    let adv_str (b, states, outside) =
      Printf.sprintf "bound=%s span=%d outside=%d"
        (match b with Some w -> string_of_int w | None -> "unbounded")
        states outside
    in
    let sp, adv = adv_of e in
    let _, adv_eager = adv_of (eager ctx) in
    if adv_sig adv <> adv_sig adv_eager then
      fail
        (Printf.sprintf "lazy (%s) disagrees with eager (%s)"
           (adv_str (adv_sig adv))
           (adv_str (adv_sig adv_eager)))
    else
      let conv_worst =
        match
          Convergence.check_unfair e ctx.cp
            ~from:(Engine.Seeds (Faultspan.states sp))
            ~target:ctx.m.Spec.invariant
        with
        | Ok { Convergence.worst_case_steps; _ } -> worst_case_steps
        | Error _ -> None
      in
      match (adv.Tol.Adversary.verdict, conv_worst) with
      | Tol.Adversary.Bounded w, Some w' when w <> w' ->
          fail
            (Printf.sprintf
               "adversary bound %d but exact convergence worst case %d" w w')
      | Tol.Adversary.Bounded w, None ->
          fail
            (Printf.sprintf
               "adversary bound %d but the unfair convergence check found no \
                finite worst case"
               w)
      | Tol.Adversary.Unbounded _, Some w' ->
          fail
            (Printf.sprintf
               "adversary says unbounded but the unfair convergence check \
                bounds recovery at %d steps"
               w')
      | Tol.Adversary.Unbounded _, None -> None
      | Tol.Adversary.Bounded w, Some _ ->
          let b = ctx.cfg.cert_budget in
          let max_steps = ((b + 1) * (w + 1)) + b + 4 in
          let result =
            Sim.Storm.trials ~max_steps ~fault_budget:b ~jobs:1
              ~rng:(Prng.create ctx.storm_seed) ~trials:ctx.cfg.storm_trials
              ~daemon:(fun r -> Sim.Daemon.random r)
              ~prepare:(fun _ -> State.copy ctx.m.Spec.legit)
              ~stop:ctx.m.Spec.invariant ~fault:ctx.m.Spec.fault
              ~rate:ctx.cfg.storm_rate ctx.cp
          in
          if result.Sim.Storm.failures > 0 then
            fail
              (Printf.sprintf
                 "%d/%d storm trials exceeded the adversary-implied bound of \
                  %d steps (budget=%d, adversary bound=%d)"
                 result.Sim.Storm.failures ctx.cfg.storm_trials max_steps b w)
          else None
  end

(* Fuzz models are small, so the engines above resolve their visited-set
   storage to direct-mapped arrays. This oracle re-runs the region query
   on engines with {e forced} open-addressing storage and with bit-packed
   state keys, so the probed tables and the packed codec face the same
   random models as everything else. Packed engines key nodes by packed
   codes, so their signatures are normalized back to dense ids before
   comparison. *)
let o_storage_agree ctx =
  let module Space = Explore.Space in
  let mk ?packed_keys backend =
    Engine.create ~backend ~max_states:engine_budget ~jobs:1
      ~storage:Engine.Probed ?packed_keys ~guard:ctx.guard ctx.m.Spec.env
  in
  let legs =
    [
      ("lazy/probed", mk Engine.Lazy);
      ("parallel/probed", mk Engine.Parallel);
      ("lazy/packed", mk ~packed_keys:true Engine.Lazy);
      ("parallel/packed", mk ~packed_keys:true Engine.Parallel);
    ]
  in
  let sig_of e from =
    let r = Engine.region e ctx.cp ~from ~target:ctx.m.Spec.invariant in
    let norm key = Space.encode (Engine.space e) (Engine.decode_key e key) in
    let key v = norm r.Engine.node_key.(v) in
    let edges =
      Dgraph.Digraph.fold_edges
        (fun acc e -> (key e.Dgraph.Digraph.src, key e.dst, e.label) :: acc)
        [] r.Engine.graph
    in
    let terminals = ref [] in
    Array.iteri
      (fun v t -> if t then terminals := key v :: !terminals)
      r.Engine.terminal;
    {
      r_keys =
        List.sort compare (Array.to_list (Array.map norm r.Engine.node_key));
      r_edges = List.sort compare edges;
      r_terminals = List.sort compare !terminals;
      r_explored = r.Engine.explored;
    }
  in
  List.fold_left
    (fun acc (rname, from) ->
      match acc with
      | Some _ -> acc
      | None ->
          let reference = sig_of (eager ctx) from in
          List.fold_left
            (fun acc (lname, e) ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match diff_region reference (sig_of e from) with
                  | None -> None
                  | Some why ->
                      Some
                        {
                          oracle = "storage-agree";
                          detail =
                            Printf.sprintf
                              "roots=%s: %s disagrees with eager: %s" rname
                              lname why;
                        }))
            None legs)
    None (root_sets ctx)

(* The .nm surface form round-trips: emitting the materialized model as
   model-language text and compiling it back through the full
   lexer/parser/elaborator pipeline yields a model with the same
   reachable regions (from both root sets), the same convergence
   verdict, and the same fault span — checked on the eager and lazy
   backends. Fault action *names* differ by construction (Emit renames
   "fault:<j>" to "f<j>"), so the comparison sticks to the
   name-independent signatures. *)
let o_emit_roundtrip ctx =
  let fail detail = Some { oracle = "emit-roundtrip"; detail } in
  let text = Emit.model_to_nm ctx.m in
  match Lang.Driver.compile_string ~file:"<emitted>" text with
  | exception Lang.Err.Error e ->
      fail ("emitted model rejected: " ^ Lang.Err.to_string e)
  | em -> (
      let open Lang.Elab in
      let ecp = Compile.program em.program in
      let efaults =
        Compile.program (Program.make ~name:"faults" em.env em.fault_actions)
      in
      let einv st = em.invariant st in
      let pairs b =
        (* fresh emitted-side engine per backend; the direct side reuses
           the ctx engine. No defect bump on either side: both sides run
           the same backend, so a simulated defect cancels out and this
           oracle stays quiet during harness self-tests. *)
        let e = List.assoc b ctx.engines in
        let ee =
          Engine.create ~backend:b ~max_states:engine_budget ~jobs:1
            ~guard:ctx.guard em.env
        in
        (e, ee)
      in
      let check b =
        let e, ee = pairs b in
        let roots =
          [
            ( "legit",
              Engine.Seeds [ ctx.m.Spec.legit ],
              Engine.Seeds [ em.init ] );
            ("all", Engine.All, Engine.All);
          ]
        in
        List.fold_left
          (fun acc (rname, from, efrom) ->
            match acc with
            | Some _ -> acc
            | None -> (
                let where what =
                  Printf.sprintf "%s roots=%s %s" (backend_name b) rname what
                in
                let dr =
                  region_sig ~bump:0
                    (Engine.region e ctx.cp ~from ~target:ctx.m.Spec.invariant)
                in
                let er =
                  region_sig ~bump:0
                    (Engine.region ee ecp ~from:efrom ~target:einv)
                in
                match diff_region dr er with
                | Some why -> fail (where ("region: " ^ why))
                | None -> (
                    let dv =
                      verdict_sig ctx.m.Spec.env ~program:ctx.m.Spec.program
                        ~target:ctx.m.Spec.invariant
                        (Convergence.check_unfair e ctx.cp ~from
                           ~target:ctx.m.Spec.invariant)
                    in
                    let ev =
                      verdict_sig em.env ~program:em.program ~target:einv
                        (Convergence.check_unfair ee ecp ~from:efrom
                           ~target:einv)
                    in
                    if dv <> ev then
                      fail
                        (where
                           (Printf.sprintf "verdict: %s vs %s"
                              (verdict_str dv) (verdict_str ev)))
                    else
                      let budget = Some ctx.cfg.cert_budget in
                      let ds =
                        span_sig ~bump:0 (span ctx e ~budget ~from)
                      in
                      let es =
                        span_sig ~bump:0
                          (Faultspan.compute ee ~program:ecp ?budget
                             ~faults:efaults ~from:efrom ())
                      in
                      if ds <> es then
                        fail
                          (where
                             (Printf.sprintf "span: %s vs %s" (span_str ds)
                                (span_str es)))
                      else None)))
          None roots
      in
      match check Engine.Eager with
      | Some f -> Some f
      | None -> check Engine.Lazy)

let oracles =
  [
    ("region-agree", o_region_agree);
    ("verdict-agree", o_verdict_agree);
    ("span-agree", o_span_agree);
    ("span-monotone", o_span_monotone);
    ("cert-agree", o_cert_agree);
    ("reorder-stable", o_reorder_stable);
    ("storm-consistent", o_storm_consistent);
    ("adversary-sound", o_adversary_sound);
    ("storage-agree", o_storage_agree);
    ("emit-roundtrip", o_emit_roundtrip);
  ]

let make_ctx cfg ~guard ~rng (m : Spec.model) =
  (* Draw the oracle-local seeds up front so every oracle is a pure
     function of the model regardless of evaluation order. *)
  let storm_seed = Prng.int rng (1 lsl 30) in
  let reorder_seed = Prng.int rng (1 lsl 30) in
  let faults_prog =
    Program.make ~name:"faults" m.Spec.env m.Spec.fault_actions
  in
  {
    cfg;
    m;
    cp = Compile.program m.Spec.program;
    faults_cp = Compile.program faults_prog;
    engines =
      List.map
        (fun b ->
          ( b,
            Engine.create ~backend:b ~max_states:engine_budget ~jobs:1 ~guard
              m.Spec.env ))
        backends;
    guard;
    storm_seed;
    reorder_seed;
  }

let run_all ?(config = default) ?(guard = Rt.Guard.inert) ~rng m =
  let ctx = make_ctx config ~guard ~rng m in
  List.filter_map (fun (_, o) -> o ctx) oracles

let run ?(config = default) ?(guard = Rt.Guard.inert) ~rng m =
  let ctx = make_ctx config ~guard ~rng m in
  List.fold_left
    (fun acc (_, o) -> match acc with Some _ -> acc | None -> o ctx)
    None oracles
