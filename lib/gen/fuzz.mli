(** The differential fuzzing driver.

    Trial [i] of [run ~seed ~count] is a pure function of the scalar seed
    [seed + i]: the trial builds its generator and oracle streams from
    that one number, so any counterexample reproduces from the printed
    seed alone — [nonmask fuzz --seed <that seed> --count 1] (with the
    same [--max-vars]) replays exactly trial [i], including the shrink.

    Trials are independent, so [jobs > 1] spreads them over a
    {!Par.Pool}; per-trial seeds are assigned by index up front and all
    observability is recorded post-hoc in trial order, so the report,
    counters, and JSONL trace are identical at any job count. *)

type counterexample = {
  trial : int;
  seed : int;  (** reproduces the trial: [--seed this --count 1] *)
  failure : Oracle.failure;  (** after minimization *)
  spec : Spec.t;  (** minimized *)
  original_failure : Oracle.failure;
  original_actions : int;  (** action count before shrinking *)
  shrink : Shrink.stats;
}

type report = {
  trials : int;
  start_seed : int;
  counterexamples : counterexample list;  (** in trial order *)
}

val run :
  ?gen_config:Generate.config ->
  ?oracle_config:Oracle.config ->
  ?shrink:bool ->
  ?jobs:int ->
  ?obs:Obs.Ctx.t ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run [count] trials starting at [seed]. [shrink] (default [true])
    minimizes each failing trial before reporting. [jobs] (default [1])
    parallelizes trials. [obs] receives counters ([fuzz.trials],
    [fuzz.counterexamples], [fuzz.shrink_evals], per-oracle
    [fuzz.fail.<oracle>]), one [fuzz.trial] event per trial, and a
    closing [fuzz.done] event.
    @raise Invalid_argument when [jobs <= 0] or [count < 0]. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary: every counterexample with its oracle, detail,
    reproduction seed, and minimized model listing. *)
