(** The differential fuzzing driver.

    Trial [i] of [run ~seed ~count] is a pure function of the scalar seed
    [seed + i]: the trial builds its generator and oracle streams from
    that one number, so any counterexample reproduces from the printed
    seed alone — [nonmask fuzz --seed <that seed> --count 1] (with the
    same [--max-vars]) replays exactly trial [i], including the shrink.

    Trials are independent, so [jobs > 1] spreads them over a
    {!Par.Pool}; per-trial seeds are assigned by index up front and all
    observability is recorded post-hoc in trial order, so the report,
    counters, and JSONL trace are identical at any job count. *)

type counterexample = {
  trial : int;
  seed : int;  (** reproduces the trial: [--seed this --count 1] *)
  failure : Oracle.failure;  (** after minimization *)
  spec : Spec.t;  (** minimized *)
  original_failure : Oracle.failure;
  original_actions : int;  (** action count before shrinking *)
  shrink : Shrink.stats;
}

type timeout_record = {
  t_trial : int;
  t_seed : int;  (** replay offline: [--seed this --count 1] *)
  t_attempts : int;  (** attempts made, every one expired *)
}

type report = {
  trials : int;
  start_seed : int;
  counterexamples : counterexample list;  (** in trial order *)
  skipped : int;
      (** Trials never run because the global [guard] had tripped — the
          sweep is a partial sample (the CLI reports exit 5). *)
  timeouts : timeout_record list;
      (** Trials abandoned by the watchdog, in trial order. *)
}

val run :
  ?gen_config:Generate.config ->
  ?oracle_config:Oracle.config ->
  ?shrink:bool ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?obs:Obs.Ctx.t ->
  ?guard:Rt.Guard.t ->
  ?watchdog:Rt.Watchdog.t ->
  ?corpus_out:string ->
  ?corpus_all:bool ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run [count] trials starting at [seed]. [shrink] (default [true])
    minimizes each failing trial before reporting. [jobs] (default [1])
    parallelizes trials; [pool] borrows a caller-owned shared {!Par.Pool}
    instead of spawning a transient one (and supplies the default
    [jobs]). [obs] receives counters ([fuzz.trials],
    [fuzz.counterexamples], [fuzz.shrink_evals], per-oracle
    [fuzz.fail.<oracle>]), a live [fuzz.start] event {e before} each
    trial runs (so a hung or killed run's trace ends with the seed to
    replay), one post-hoc [fuzz.trial] event per trial, and a closing
    [fuzz.done] event.

    [guard] (default {!Rt.Guard.inert}) is polled before each trial and
    threaded into every oracle engine: once the sweep's deadline passes
    or cancellation is requested, the trial in flight stops at its next
    polling point and the remaining trials are {e skipped} — found
    counterexamples are kept (a stop mid-shrink freezes the current
    minimum), and the report says how much of the sample is missing.
    [watchdog] (default none) bounds each trial attempt by wall-clock:
    an expired attempt is retried up to [retries] times {e on the same
    seed} (a trial is a pure function of its seed; expiry is a
    wall-clock accident), and a trial whose every attempt expires is
    recorded in [timeouts] with its seed for offline replay. Each
    attempt runs under its own guard scope that only {e observes} the
    global cancel token, so a watchdog expiry (or a per-attempt budget
    trip) abandons that trial without cancelling the sweep.

    [corpus_out] (default none) names a directory (created if missing)
    that receives each failing trial's generated model as replayable
    [.nm] source ({!Emit}): [trial-NNNN-seed-S.nm] is the original and
    [trial-NNNN-seed-S-min.nm] the shrunk minimum. With
    [corpus_all:true], passing trials are written too. Writing is
    best-effort and post-hoc, in trial order.
    @raise Invalid_argument when [jobs <= 0] or [count < 0]. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary: every counterexample with its oracle, detail,
    reproduction seed, and minimized model listing. *)
