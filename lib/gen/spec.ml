module Domain = Guarded.Domain
module Var = Guarded.Var
module Expr = Guarded.Expr
module Env = Guarded.Env
module Action = Guarded.Action
module Program = Guarded.Program
module State = Guarded.State
module Compile = Guarded.Compile

type action_spec = {
  a_name : string;
  a_guard : Expr.boolean;
  a_assigns : (int * Expr.num) list;
}

type t = {
  title : string;
  doms : Domain.t array;
  live : bool array;
  actions : action_spec list;
  faults : action_spec list;
  cubes : (int * int) list list;
}

let slot_name i = Printf.sprintf "v%d" i

let canonical_var spec i =
  Var.make ~name:(slot_name i) ~index:i ~domain:spec.doms.(i)

let live_slots spec =
  Array.to_list
    (Array.of_seq
       (Seq.filter
          (fun i -> spec.live.(i))
          (Seq.init (Array.length spec.doms) Fun.id)))

let action_count spec = List.length spec.actions
let fault_count spec = List.length spec.faults

let space_size spec =
  Array.to_list spec.doms
  |> List.mapi (fun i d -> if spec.live.(i) then Domain.size d else 1)
  |> List.fold_left (fun acc n -> acc *. float_of_int n) 1.0

let bounds = function
  | Domain.Bool -> (0, 1)
  | Domain.Range { lo; hi } -> (lo, hi)
  | Domain.Enum { labels; _ } -> (0, Array.length labels - 1)

let clamp_value dom v =
  let lo, hi = bounds dom in
  if v < lo then lo else if v > hi then hi else v

type model = {
  spec : t;
  env : Env.t;
  program : Program.t;
  fault_actions : Action.t list;
  fault : Sim.Fault.t;
  invariant_expr : Expr.boolean;
  invariant : State.t -> bool;
  legit : State.t;
}

let materialize spec =
  if not (Array.exists Fun.id spec.live) then
    invalid_arg "Spec.materialize: no live slot";
  if spec.cubes = [] then invalid_arg "Spec.materialize: no invariant cube";
  let env = Env.create () in
  let var_map =
    Array.mapi
      (fun i dom -> if spec.live.(i) then Some (Env.fresh env (slot_name i) dom) else None)
      spec.doms
  in
  (* Substitute canonical slot handles by the fresh environment's
     variables; dead slots become the first value of their domain. *)
  let subst_fn v =
    let i = Var.index v in
    match var_map.(i) with
    | Some nv -> Some (Expr.Var nv)
    | None -> Some (Expr.Const (Domain.first spec.doms.(i)))
  in
  let clamp_rhs dom rhs =
    let lo, hi = bounds dom in
    if lo = hi then Expr.Const lo
    else Expr.simplify_num (Expr.max_ (Expr.min_ rhs (Expr.Const hi)) (Expr.Const lo))
  in
  let mat_action a =
    let assigns =
      List.filter_map
        (fun (slot, rhs) ->
          match var_map.(slot) with
          | None -> None
          | Some nv ->
              let rhs = Expr.subst_num subst_fn rhs in
              Some (nv, clamp_rhs spec.doms.(slot) rhs))
        a.a_assigns
    in
    match assigns with
    | [] -> None
    | _ ->
        let guard = Expr.simplify (Expr.subst subst_fn a.a_guard) in
        Some (Action.make ~name:a.a_name ~guard assigns)
  in
  let prog_actions = List.filter_map mat_action spec.actions in
  let fault_actions = List.filter_map mat_action spec.faults in
  let program = Program.make ~name:spec.title env prog_actions in
  let cube_expr cube =
    Expr.conj
      (List.filter_map
         (fun (slot, v) ->
           match var_map.(slot) with
           | None -> None
           | Some nv ->
               let v = clamp_value spec.doms.(slot) v in
               Some (Expr.Cmp (Expr.Eq, Expr.Var nv, Expr.Const v)))
         cube)
  in
  let invariant_expr = Expr.simplify (Expr.disj (List.map cube_expr spec.cubes)) in
  let invariant = Compile.pred invariant_expr in
  let legit = State.make env in
  List.iter
    (fun (slot, v) ->
      match var_map.(slot) with
      | None -> ()
      | Some nv -> State.set legit nv (clamp_value spec.doms.(slot) v))
    (List.hd spec.cubes);
  let fault = Sim.Fault.of_actions (spec.title ^ "-faults") ~burst:1 fault_actions in
  {
    spec;
    env;
    program;
    fault_actions;
    fault;
    invariant_expr;
    invariant;
    legit;
  }

let pp ppf spec =
  let m = materialize spec in
  Format.fprintf ppf "@[<v>%a@,invariant: %a@," Program.pp m.program Expr.pp
    m.invariant_expr;
  (match m.fault_actions with
  | [] -> Format.fprintf ppf "faults: (none)"
  | fs ->
      Format.fprintf ppf "faults:@,";
      List.iter (fun a -> Format.fprintf ppf "  %a@," Action.pp a) fs);
  Format.fprintf ppf "@,states: %.0f@]" (space_size spec)

let to_string spec = Format.asprintf "%a" pp spec
