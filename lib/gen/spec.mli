(** Pure descriptions of generated models.

    A spec is plain data: variable slots with finite domains, guarded
    actions whose expressions refer to slots through canonical
    {!Guarded.Var.t} handles (index = slot), a fault action set, and an
    invariant in disjunctive cube form. Specs exist so that the shrinker
    ({!Shrink}) can mutate a failing instance structurally — delete a slot,
    narrow a domain, drop an action — and {e re-materialize} a well-formed
    program from what is left. Well-formedness is by construction: every
    assignment right-hand side is clamped into the target's domain at
    materialization, so no generated or shrunk model can raise
    [State.Domain_violation].

    Slots are never renumbered. Deleting a variable marks its slot dead;
    materialization declares only live slots in a fresh environment and
    substitutes dead occurrences by the first value of their domain. *)

type action_spec = {
  a_name : string;
  a_guard : Guarded.Expr.boolean;  (** over the canonical slot variables *)
  a_assigns : (int * Guarded.Expr.num) list;
      (** [(slot, rhs)]; slots distinct within an action *)
}

type t = {
  title : string;  (** e.g. ["ring-4"] — the topology flavor used *)
  doms : Guarded.Domain.t array;  (** slot [i]'s domain; fixed length *)
  live : bool array;  (** dead slots are substituted out *)
  actions : action_spec list;  (** program actions, names ["a<i>"] *)
  faults : action_spec list;  (** fault actions, names ["fault:<i>"] *)
  cubes : (int * int) list list;
      (** invariant: disjunction of cubes; a cube conjoins [slot = value]
          literals over distinct live slots *)
}

val canonical_var : t -> int -> Guarded.Var.t
(** The canonical handle for a slot, as embedded in spec expressions. *)

val live_slots : t -> int list
val action_count : t -> int
val fault_count : t -> int

val space_size : t -> float
(** Product of the live slots' domain sizes. *)

val bounds : Guarded.Domain.t -> int * int
(** Smallest and largest legal value of a domain. *)

val clamp_value : Guarded.Domain.t -> int -> int
(** Clamp an int into the domain's value range. *)

(** A spec made executable: a fresh environment, the program, the fault
    class in both views, and the compiled invariant. *)
type model = {
  spec : t;
  env : Guarded.Env.t;
  program : Guarded.Program.t;
  fault_actions : Guarded.Action.t list;
  fault : Sim.Fault.t;  (** action-set view, [burst = 1] *)
  invariant_expr : Guarded.Expr.boolean;
  invariant : Guarded.State.t -> bool;
  legit : Guarded.State.t;
      (** satisfies the first cube, hence the invariant *)
}

val materialize : t -> model
(** Build the model. Total on any spec with at least one live slot and one
    cube: dead slots are substituted by constants, right-hand sides are
    clamped into their target domains, actions whose assignments all
    target dead slots are dropped, and cube literals are clamped into the
    (possibly narrowed) domains.
    @raise Invalid_argument when no slot is live or [cubes] is empty. *)

val pp : Format.formatter -> t -> unit
(** Render the materialized program, fault actions, and invariant — the
    human-readable form of a minimized counterexample. *)

val to_string : t -> string
