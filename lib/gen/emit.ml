open Guarded

let domain_str = function
  | Domain.Bool -> "bool"
  | Domain.Range { lo; hi } -> Printf.sprintf "%d..%d" lo hi
  | Domain.Enum { name; labels } ->
      Printf.sprintf "%s{%s}" name
        (String.concat ", " (Array.to_list labels))

(* Materialized fault actions are named "fault:<j>"; the surface syntax
   needs an identifier, so they come back as "fault f<j>" (elaborating
   to "fault:f<j>" — the name difference is invisible to the
   signature comparisons the roundtrip oracle makes). *)
let fault_ident name =
  match String.index_opt name ':' with
  | Some i -> "f" ^ String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let add_action buf kw name (a : Action.t) =
  Buffer.add_string buf (Printf.sprintf "\n%s %s:\n  " kw name);
  Buffer.add_string buf (Expr.to_string (Action.guard a));
  Buffer.add_string buf " -> ";
  (match Action.assigns a with
  | [] -> Buffer.add_string buf "skip"
  | assigns ->
      Buffer.add_string buf
        (String.concat ", " (List.map (fun (v, _) -> Var.name v) assigns));
      Buffer.add_string buf " := ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map (fun (_, e) -> Expr.num_to_string e) assigns)));
  Buffer.add_char buf '\n'

let model_to_nm (m : Spec.model) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "model %s\n" m.Spec.spec.Spec.title);
  let vars = Env.vars m.Spec.env in
  Array.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "\nvar %s : %s" (Var.name v)
           (domain_str (Var.domain v))))
    vars;
  Buffer.add_char buf '\n';
  Array.iter
    (fun a -> add_action buf "action" (Action.name a) a)
    (Program.actions m.Spec.program);
  List.iter
    (fun a -> add_action buf "fault" (fault_ident (Action.name a)) a)
    m.Spec.fault_actions;
  Buffer.add_string buf
    (Printf.sprintf "\ninvariant %s\n" (Expr.to_string m.Spec.invariant_expr));
  Buffer.add_string buf
    (Printf.sprintf "\ninit %s\n"
       (String.concat ", "
          (Array.to_list vars
          |> List.map (fun v ->
                 Printf.sprintf "%s = %d" (Var.name v)
                   (State.get m.Spec.legit v)))));
  Buffer.contents buf

let spec_to_nm spec = model_to_nm (Spec.materialize spec)
