(** Seeded random model generation.

    Draws a well-formed {!Spec.t} from a {!Prng.t} stream: variables over
    small finite domains, guard and right-hand-side expression trees, a
    communication structure borrowed from [lib/topology] (ring, random
    rooted tree, random connected graph, or unstructured), a small fault
    action set, and a satisfiable invariant in cube form. Everything is a
    pure function of the stream, so a model reproduces exactly from the
    seed that created its generator.

    Structure matters for the differential oracles: ring/tree/graph
    flavors constrain each action's read set to its process's
    neighborhood, which produces constraint graphs shaped like the
    paper's protocols rather than arbitrary global programs — while the
    [free] flavor keeps the fully unstructured case in the mix. *)

type config = {
  max_vars : int;  (** at most this many variables (>= 2) *)
  max_dom : int;  (** largest domain size (>= 2) *)
  max_actions : int;  (** at most this many program actions (>= 1) *)
  max_faults : int;  (** at most this many fault actions (>= 1) *)
  max_depth : int;  (** expression tree depth *)
  max_states : int;  (** cap on the product of domain sizes *)
}

val default : config
(** [{ max_vars = 4; max_dom = 4; max_actions = 6; max_faults = 3;
      max_depth = 3; max_states = 4096 }] *)

val with_max_vars : int -> config
(** {!default} with [max_vars] set (and [max_states] scaled so bigger
    instances stay explorable). *)

val spec : ?config:config -> Prng.t -> Spec.t
(** Draw a spec. All invariant cubes are over live slots with in-domain
    values, action names are distinct, and the space size respects
    [max_states]. *)

val model : ?config:config -> Prng.t -> Spec.model
(** [Spec.materialize (spec rng)]. *)

val num : Prng.t -> depth:int -> reads:Guarded.Var.t array -> Guarded.Expr.num
(** Random integer expression over the given variables. Division and
    modulus only ever appear with non-zero constant divisors, so
    evaluation never raises. *)

val boolean :
  Prng.t -> depth:int -> reads:Guarded.Var.t array -> Guarded.Expr.boolean
(** Random predicate over the given variables. *)
