(** Counterexample minimization.

    Greedy delta debugging over {!Spec.t}: repeatedly try structural
    reductions — drop a program action, drop a fault action, delete a
    variable, narrow a domain, blank a guard, simplify the invariant —
    keeping a candidate only when the caller's oracle still reports a
    failure of the {e same} oracle. Reductions re-materialize through
    {!Spec.materialize}, so every candidate is a well-formed model and the
    minimized spec reproduces its failure from scratch.

    The oracle predicate must be deterministic (the fuzz driver rebuilds
    the oracle PRNG from the trial seed on every evaluation), otherwise
    minimization can chase noise. *)

type stats = {
  evals : int;  (** oracle evaluations spent *)
  accepted : int;  (** reductions that kept the failure *)
}

val minimize :
  ?max_evals:int ->
  oracle:(Spec.t -> Oracle.failure option) ->
  Spec.t ->
  Oracle.failure ->
  Spec.t * Oracle.failure * stats
(** [minimize ~oracle spec failure] returns a (locally) minimal spec that
    still fails the same oracle, the failure it produces, and the search
    cost. [max_evals] (default [400]) caps oracle evaluations; the best
    spec found so far is returned when the cap is hit. *)
