module Domain = Guarded.Domain
module Expr = Guarded.Expr

type stats = { evals : int; accepted : int }

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

let live_count (s : Spec.t) =
  Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 s.Spec.live

(* Narrow a domain by one value; [None] when it is already a singleton. *)
let narrow_dom = function
  | Domain.Bool -> Some (Domain.range 0 0)
  | Domain.Range { lo; hi } -> if hi > lo then Some (Domain.range lo (hi - 1)) else None
  | Domain.Enum { name; labels } ->
      let n = Array.length labels in
      if n <= 1 then None
      else Some (Domain.enum name (Array.to_list (Array.sub labels 0 (n - 1))))

(* Candidate reductions, most aggressive first. Cubes are kept consistent
   with the mutation (dead slots dropped, values clamped) so that
   materialization stays total and the legitimate state stays inside the
   invariant. *)
let candidates (s : Spec.t) : Spec.t list =
  let drop_actions =
    List.mapi (fun i _ -> { s with Spec.actions = remove_nth i s.Spec.actions }) s.Spec.actions
  in
  let drop_vars =
    if live_count s < 2 then []
    else
      List.filter_map
        (fun slot ->
          let live = Array.copy s.Spec.live in
          live.(slot) <- false;
          let prune a =
            {
              a with
              Spec.a_assigns =
                List.filter (fun (t, _) -> t <> slot) a.Spec.a_assigns;
            }
          in
          let keep_nonempty a = a.Spec.a_assigns <> [] in
          let cubes =
            List.map (List.filter (fun (t, _) -> t <> slot)) s.Spec.cubes
          in
          Some
            {
              s with
              Spec.live;
              actions = List.filter keep_nonempty (List.map prune s.Spec.actions);
              faults = List.filter keep_nonempty (List.map prune s.Spec.faults);
              cubes;
            })
        (Spec.live_slots s)
  in
  let drop_faults =
    List.mapi (fun i _ -> { s with Spec.faults = remove_nth i s.Spec.faults }) s.Spec.faults
  in
  let narrow_doms =
    List.filter_map
      (fun slot ->
        match narrow_dom s.Spec.doms.(slot) with
        | None -> None
        | Some d ->
            let doms = Array.copy s.Spec.doms in
            doms.(slot) <- d;
            let cubes =
              List.map
                (List.map (fun (t, v) ->
                     if t = slot then (t, Spec.clamp_value d v) else (t, v)))
                s.Spec.cubes
            in
            Some { s with Spec.doms; cubes })
      (Spec.live_slots s)
  in
  let blank_guards =
    List.filter_map
      (fun (i, a) ->
        if a.Spec.a_guard = Expr.True then None
        else
          Some
            {
              s with
              Spec.actions =
                List.mapi
                  (fun j a' -> if j = i then { a' with Spec.a_guard = Expr.True } else a')
                  s.Spec.actions;
            })
      (List.mapi (fun i a -> (i, a)) s.Spec.actions)
  in
  let drop_cubes =
    if List.length s.Spec.cubes < 2 then []
    else List.mapi (fun i _ -> { s with Spec.cubes = remove_nth i s.Spec.cubes }) s.Spec.cubes
  in
  let shrink_cubes =
    List.concat
      (List.mapi
         (fun ci cube ->
           if List.length cube < 2 then []
           else
             List.mapi
               (fun li _ ->
                 {
                   s with
                   Spec.cubes =
                     List.mapi
                       (fun cj c -> if cj = ci then remove_nth li c else c)
                       s.Spec.cubes;
                 })
               cube)
         s.Spec.cubes)
  in
  drop_actions @ drop_vars @ drop_faults @ narrow_doms @ blank_guards
  @ drop_cubes @ shrink_cubes

let minimize ?(max_evals = 400) ~oracle spec (failure : Oracle.failure) =
  let evals = ref 0 in
  let accepted = ref 0 in
  let best = ref (spec, failure) in
  let try_candidate c =
    if !evals >= max_evals then false
    else begin
      incr evals;
      match oracle c with
      | Some f when f.Oracle.oracle = failure.Oracle.oracle ->
          incr accepted;
          best := (c, f);
          true
      | _ -> false
    end
  in
  let rec fixpoint () =
    if !evals >= max_evals then ()
    else
      let cur, _ = !best in
      match List.find_opt try_candidate (candidates cur) with
      | Some _ -> fixpoint ()
      | None -> ()
  in
  fixpoint ();
  let min_spec, min_failure = !best in
  (min_spec, min_failure, { evals = !evals; accepted = !accepted })
