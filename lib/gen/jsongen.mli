(** Random {!Obs.Json} values for roundtrip fuzzing.

    Values are drawn so that [Json.of_string (Json.to_string v)] must
    reproduce [v] exactly: floats are always finite (non-finite floats
    render as [null] by design, which cannot roundtrip) and integral
    floats below [1e15] render with a [.0] suffix so they parse back as
    {!Obs.Json.Float}, never {!Obs.Json.Int}. Strings deliberately cover
    every escape class (quotes, backslashes, control characters, raw
    UTF-8); numbers cover [min_int]/[max_int], negative zero, and
    magnitudes that force exponent forms. *)

val string_ : Prng.t -> string
(** A hostile string: random length 0-24 drawing from quotes, backslashes,
    newlines, NUL and other control bytes, multi-byte UTF-8, and plain
    ASCII. *)

val number : Prng.t -> Obs.Json.t
(** An {!Obs.Json.Int} or finite {!Obs.Json.Float} biased toward edge
    cases: 0, [min_int], [max_int], [-0.], huge and tiny magnitudes
    (exponent rendering), and integral floats. *)

val value : ?depth:int -> Prng.t -> Obs.Json.t
(** An arbitrary roundtrip-safe value: nulls, bools, numbers, strings,
    and nested arrays/objects up to [depth] (default 4). *)
