module Domain = Guarded.Domain
module Var = Guarded.Var
module Expr = Guarded.Expr

type config = {
  max_vars : int;
  max_dom : int;
  max_actions : int;
  max_faults : int;
  max_depth : int;
  max_states : int;
}

let default =
  {
    max_vars = 4;
    max_dom = 4;
    max_actions = 6;
    max_faults = 3;
    max_depth = 3;
    max_states = 4096;
  }

let with_max_vars n =
  let n = max 2 n in
  (* Keep instances explorable as they grow: 4^n states at most, capped so
     the eager backend never refuses a generated space. *)
  { default with max_vars = n; max_states = min 65_536 (1 lsl (2 * n)) }

(* --- expressions --- *)

let rec num rng ~depth ~reads =
  let leaf () =
    if Array.length reads = 0 || Prng.bool rng then
      Expr.Const (Prng.int_in rng (-2) 3)
    else Expr.Var (Prng.pick rng reads)
  in
  if depth <= 0 then leaf ()
  else
    match Prng.int rng 10 with
    | 0 | 1 | 2 -> leaf ()
    | 3 -> Expr.Add (num rng ~depth:(depth - 1) ~reads, num rng ~depth:(depth - 1) ~reads)
    | 4 -> Expr.Sub (num rng ~depth:(depth - 1) ~reads, num rng ~depth:(depth - 1) ~reads)
    | 5 -> Expr.Mul (num rng ~depth:(depth - 1) ~reads, Expr.Const (Prng.int_in rng (-1) 2))
    | 6 -> Expr.Min (num rng ~depth:(depth - 1) ~reads, num rng ~depth:(depth - 1) ~reads)
    | 7 -> Expr.Max (num rng ~depth:(depth - 1) ~reads, num rng ~depth:(depth - 1) ~reads)
    | 8 ->
        (* Non-zero constant divisor only: evaluation must never raise. *)
        Expr.Mod (num rng ~depth:(depth - 1) ~reads, Expr.Const (Prng.int_in rng 2 3))
    | _ ->
        Expr.Ite
          ( boolean rng ~depth:(depth - 1) ~reads,
            num rng ~depth:(depth - 1) ~reads,
            num rng ~depth:(depth - 1) ~reads )

and boolean rng ~depth ~reads =
  let cmp () =
    let op =
      match Prng.int rng 6 with
      | 0 -> Expr.Eq
      | 1 -> Expr.Ne
      | 2 -> Expr.Lt
      | 3 -> Expr.Le
      | 4 -> Expr.Gt
      | _ -> Expr.Ge
    in
    Expr.Cmp (op, num rng ~depth:(depth - 1) ~reads, num rng ~depth:(depth - 1) ~reads)
  in
  if depth <= 0 then cmp ()
  else
    match Prng.int rng 10 with
    | 0 | 1 | 2 | 3 -> cmp ()
    | 4 -> Expr.True
    | 5 -> Expr.Not (boolean rng ~depth:(depth - 1) ~reads)
    | 6 -> Expr.And (boolean rng ~depth:(depth - 1) ~reads, boolean rng ~depth:(depth - 1) ~reads)
    | 7 -> Expr.Or (boolean rng ~depth:(depth - 1) ~reads, boolean rng ~depth:(depth - 1) ~reads)
    | 8 -> Expr.Implies (boolean rng ~depth:(depth - 1) ~reads, boolean rng ~depth:(depth - 1) ~reads)
    | _ -> Expr.Iff (boolean rng ~depth:(depth - 1) ~reads, boolean rng ~depth:(depth - 1) ~reads)

(* --- domains --- *)

let random_domain rng ~max_size =
  let size = Prng.int_in rng 2 (max 2 max_size) in
  match Prng.int rng 4 with
  | 0 -> if size = 2 then Domain.bool else Domain.range 0 (size - 1)
  | 1 ->
      let lo = Prng.int_in rng (-2) 1 in
      Domain.range lo (lo + size - 1)
  | 2 ->
      Domain.enum
        (Printf.sprintf "e%d" size)
        (List.init size (fun i -> Printf.sprintf "l%d" i))
  | _ -> Domain.range 0 (size - 1)

(* Domains for [n] slots whose product stays under [cap]: draw each domain
   with the per-slot size budget that the remaining slots leave over. *)
let random_domains rng ~n ~max_dom ~cap =
  let doms = Array.make n Domain.bool in
  let budget = ref (float_of_int (max 4 cap)) in
  for i = 0 to n - 1 do
    let remaining = n - i - 1 in
    (* Every later slot needs at least size 2. *)
    let allowance =
      int_of_float (!budget /. (2.0 ** float_of_int remaining))
    in
    let d = random_domain rng ~max_size:(min max_dom (max 2 allowance)) in
    doms.(i) <- d;
    budget := !budget /. float_of_int (Domain.size d)
  done;
  doms

(* --- communication structure --- *)

(* For each slot, the slots an action owned by it may read. *)
let neighborhoods rng ~n =
  match Prng.int rng 4 with
  | 0 ->
      if n < 2 then ("free", Array.init n (fun i -> [| i |]))
      else
        let ring = Topology.Ring.create n in
        ("ring", Array.init n (fun i -> [| i; Topology.Ring.pred ring i |]))
  | 1 ->
      let tree = Topology.Tree.random (Prng.split rng) n in
      ("tree", Array.init n (fun i -> [| i; Topology.Tree.parent tree i |]))
  | 2 ->
      if n < 2 then ("free", Array.init n (fun i -> [| i |]))
      else
        let g =
          Topology.Ugraph.random_connected (Prng.split rng) n
            ~extra_edges:(n / 2)
        in
        ( "graph",
          Array.init n (fun i ->
              let ns = Topology.Ugraph.neighbors g i in
              Array.of_list (i :: ns)) )
  | _ ->
      let all = Array.init n Fun.id in
      ("free", Array.make n all)

(* --- specs --- *)

let spec ?(config = default) rng =
  let n = Prng.int_in rng 2 (max 2 config.max_vars) in
  let doms = random_domains rng ~n ~max_dom:config.max_dom ~cap:config.max_states in
  let shape, hood = neighborhoods rng ~n in
  let pre_spec =
    {
      Spec.title = Printf.sprintf "%s-%d" shape n;
      doms;
      live = Array.make n true;
      actions = [];
      faults = [];
      cubes = [];
    }
  in
  let var_of = Spec.canonical_var pre_spec in
  let reads_of slot = Array.map var_of hood.(slot) in
  let action prefix j =
    let owner = Prng.int rng n in
    let reads = reads_of owner in
    let guard = boolean rng ~depth:config.max_depth ~reads in
    let extra_target =
      (* Occasionally a second simultaneous assignment, to a distinct slot
         drawn from the owner's neighborhood. *)
      if Array.length hood.(owner) > 1 && Prng.int rng 4 = 0 then
        let t = hood.(owner).(Prng.int rng (Array.length hood.(owner))) in
        if t <> owner then [ t ] else []
      else []
    in
    let assigns =
      List.map
        (fun slot -> (slot, num rng ~depth:config.max_depth ~reads))
        (owner :: extra_target)
    in
    { Spec.a_name = Printf.sprintf "%s%d" prefix j; a_guard = guard; a_assigns = assigns }
  in
  let n_actions = Prng.int_in rng 1 (max 1 config.max_actions) in
  let actions = List.init n_actions (action "a") in
  (* Faults are single-variable perturbations guarded against the no-op
     self-loop — the action form of Sim.Fault.corrupt. *)
  let fault j =
    let slot = Prng.int rng n in
    let v = var_of slot in
    let lo, hi = Spec.bounds doms.(slot) in
    let x = Prng.int_in rng lo hi in
    {
      Spec.a_name = Printf.sprintf "fault:%d" j;
      a_guard = Expr.Cmp (Expr.Ne, Expr.Var v, Expr.Const x);
      a_assigns = [ (slot, Expr.Const x) ];
    }
  in
  let n_faults = Prng.int_in rng 1 (max 1 config.max_faults) in
  let faults = List.init n_faults fault in
  let cube () =
    let k = Prng.int_in rng 1 n in
    let slots = Prng.sample_without_replacement rng k n in
    Array.to_list slots
    |> List.map (fun slot ->
           let lo, hi = Spec.bounds doms.(slot) in
           (slot, Prng.int_in rng lo hi))
  in
  let n_cubes = Prng.int_in rng 1 2 in
  let cubes = List.init n_cubes (fun _ -> cube ()) in
  { pre_spec with actions; faults; cubes }

let model ?config rng = Spec.materialize (spec ?config rng)
