type counterexample = {
  trial : int;
  seed : int;
  failure : Oracle.failure;
  spec : Spec.t;
  original_failure : Oracle.failure;
  original_actions : int;
  shrink : Shrink.stats;
}

type report = {
  trials : int;
  start_seed : int;
  counterexamples : counterexample list;
}

(* The oracle stream must differ from the generator stream but be derived
   from the same scalar seed, so one printed number replays everything. *)
let oracle_seed tseed = tseed lxor 0x2545F4914F6CDD1D

let eval ~oracle_config tseed spec =
  try
    Oracle.run ~config:oracle_config
      ~rng:(Prng.create (oracle_seed tseed))
      (Spec.materialize spec)
  with e ->
    Some { Oracle.oracle = "exception"; detail = Printexc.to_string e }

let run_trial ~gen_config ~oracle_config ~shrink i tseed =
  let spec = Generate.spec ~config:gen_config (Prng.create tseed) in
  match eval ~oracle_config tseed spec with
  | None -> (spec, None)
  | Some failure ->
      let min_spec, min_failure, stats =
        if shrink then
          Shrink.minimize ~oracle:(eval ~oracle_config tseed) spec failure
        else (spec, failure, { Shrink.evals = 0; accepted = 0 })
      in
      ( spec,
        Some
          {
            trial = i;
            seed = tseed;
            failure = min_failure;
            spec = min_spec;
            original_failure = failure;
            original_actions = Spec.action_count spec;
            shrink = stats;
          } )

let run ?(gen_config = Generate.default) ?(oracle_config = Oracle.default)
    ?(shrink = true) ?(jobs = 1) ?(obs = Obs.Ctx.disabled) ~seed ~count () =
  if count < 0 then invalid_arg "Fuzz.run: count must be non-negative";
  if jobs <= 0 then invalid_arg "Fuzz.run: jobs must be positive";
  let completed = Atomic.make 0 in
  let one i =
    let tseed = seed + i in
    let r = run_trial ~gen_config ~oracle_config ~shrink i tseed in
    let done_ = Atomic.fetch_and_add completed 1 + 1 in
    Obs.Ctx.tick obs ~label:"fuzz" ~states:done_ ();
    (i, tseed, r)
  in
  let outcomes =
    Par.Pool.with_pool ~jobs (fun pool ->
        Par.Pool.map_reduce pool ~n:count
          ~map:(fun ~worker:_ lo hi -> List.init (hi - lo) (fun k -> one (lo + k)))
          (fun acc chunk -> List.rev_append chunk acc)
          [])
    |> List.rev
  in
  (* All recording is post-hoc and in trial order, so counters and the
     JSONL trace are identical at any job count. *)
  if Obs.Ctx.enabled obs then begin
    let trials_c = Obs.Ctx.counter obs "fuzz.trials" in
    let cex_c = Obs.Ctx.counter obs "fuzz.counterexamples" in
    let shrink_c = Obs.Ctx.counter obs "fuzz.shrink_evals" in
    List.iter
      (fun (i, tseed, (spec, cex)) ->
        Obs.Metrics.incr trials_c;
        let base =
          [
            ("trial", Obs.Sink.I i);
            ("seed", Obs.Sink.I tseed);
            ("vars", Obs.Sink.I (List.length (Spec.live_slots spec)));
            ("actions", Obs.Sink.I (Spec.action_count spec));
            ("states", Obs.Sink.F (Spec.space_size spec));
          ]
        in
        match cex with
        | None -> Obs.Ctx.emit obs "fuzz.trial" (base @ [ ("ok", Obs.Sink.B true) ])
        | Some c ->
            Obs.Metrics.incr cex_c;
            Obs.Metrics.add shrink_c c.shrink.Shrink.evals;
            Obs.Metrics.incr
              (Obs.Ctx.counter obs ("fuzz.fail." ^ c.failure.Oracle.oracle));
            Obs.Ctx.emit obs "fuzz.trial"
              (base
              @ [
                  ("ok", Obs.Sink.B false);
                  ("oracle", Obs.Sink.S c.failure.Oracle.oracle);
                  ("min_actions", Obs.Sink.I (Spec.action_count c.spec));
                  ("min_vars", Obs.Sink.I (List.length (Spec.live_slots c.spec)));
                  ("shrink_evals", Obs.Sink.I c.shrink.Shrink.evals);
                ]))
      outcomes;
    let cex_total =
      List.length (List.filter (fun (_, _, (_, c)) -> c <> None) outcomes)
    in
    Obs.Ctx.emit obs "fuzz.done"
      [ ("trials", Obs.Sink.I count); ("counterexamples", Obs.Sink.I cex_total) ];
    Obs.Ctx.finish_progress obs ~label:"fuzz" ~states:count
  end;
  {
    trials = count;
    start_seed = seed;
    counterexamples = List.filter_map (fun (_, _, (_, c)) -> c) outcomes;
  }

let pp_report ppf r =
  match r.counterexamples with
  | [] ->
      Format.fprintf ppf "fuzz: %d trials from seed %d: all oracles hold"
        r.trials r.start_seed
  | cexs ->
      Format.fprintf ppf
        "@[<v>fuzz: %d trials from seed %d: %d counterexample(s)@,@," r.trials
        r.start_seed (List.length cexs);
      List.iter
        (fun c ->
          Format.fprintf ppf
            "@[<v>[trial %d] oracle %s: %s@,\
            \  reproduce: nonmask fuzz --seed %d --count 1@,\
            \  shrunk %d -> %d actions (%d oracle evals, %d reductions)@,%a@,@]"
            c.trial c.failure.Oracle.oracle c.failure.Oracle.detail c.seed
            c.original_actions (Spec.action_count c.spec)
            c.shrink.Shrink.evals c.shrink.Shrink.accepted Spec.pp c.spec)
        cexs
