type counterexample = {
  trial : int;
  seed : int;
  failure : Oracle.failure;
  spec : Spec.t;
  original_failure : Oracle.failure;
  original_actions : int;
  shrink : Shrink.stats;
}

type timeout_record = { t_trial : int; t_seed : int; t_attempts : int }

type report = {
  trials : int;
  start_seed : int;
  counterexamples : counterexample list;
  skipped : int;
  timeouts : timeout_record list;
}

type outcome =
  | Done of Spec.t * counterexample option
  | Skipped
  | Timed_out of Spec.t * int  (* attempts made, all expired *)

(* The oracle stream must differ from the generator stream but be derived
   from the same scalar seed, so one printed number replays everything. *)
let oracle_seed tseed = tseed lxor 0x2545F4914F6CDD1D

let eval ~oracle_config ~guard tseed spec =
  try
    Oracle.run ~config:oracle_config ~guard
      ~rng:(Prng.create (oracle_seed tseed))
      (Spec.materialize spec)
  with
  | (Explore.Engine.Interrupted _ | Rt.Cancel.Cancelled _) as e ->
      (* watchdog/cancellation trips are control flow, not oracle
         verdicts — never fold them into an "exception" failure *)
      raise e
  | e -> Some { Oracle.oracle = "exception"; detail = Printexc.to_string e }

let run_trial ~gen_config ~oracle_config ~shrink ~guard ~watchdog i tseed =
  let spec = Generate.spec ~config:gen_config (Prng.create tseed) in
  let guard_on = Rt.Guard.active guard in
  let global_tripped () =
    guard_on && Rt.Guard.poll guard ~states:0 ~bytes:0 <> None
  in
  (* One attempt's guard: the global budget with the deadline tightened
     to the watchdog's per-attempt allowance, in a fresh scope — the
     global cancel token is only {e linked} (observed, never marked), so
     a watchdog expiry inside the oracle cannot poison the shared token
     and cancel the rest of the sweep. *)
  let attempt_guard () =
    match watchdog with
    | None -> guard
    | Some w ->
        let b = Rt.Guard.budget guard in
        let wd = Rt.Watchdog.deadline w in
        let deadline =
          match b.Rt.Budget.deadline with
          | None -> Some wd
          | Some d -> Some (Float.min d wd)
        in
        Rt.Guard.create
          ~budget:{ b with Rt.Budget.deadline }
          ?link:(Rt.Guard.cancel guard) ()
  in
  let max_retries =
    match watchdog with None -> 0 | Some w -> w.Rt.Watchdog.retries
  in
  (* A fuzz trial is a pure function of its seed, but a timeout is a
     wall-clock accident — so retries replay the {e same} seed (a loaded
     machine can expire a watchdog spuriously); a trial whose every
     attempt expires is reported with its seed for offline replay. *)
  let rec attempt k =
    match eval ~oracle_config ~guard:(attempt_guard ()) tseed spec with
    | r -> `Eval r
    | exception (Explore.Engine.Interrupted _ | Rt.Cancel.Cancelled _) ->
        if global_tripped () then `Stopped
        else if k < max_retries then attempt (k + 1)
        else `Expired (k + 1)
  in
  match attempt 0 with
  | `Stopped -> Skipped
  | `Expired attempts -> Timed_out (spec, attempts)
  | `Eval None -> Done (spec, None)
  | `Eval (Some failure) ->
      (* Shrink evals get fresh per-eval watchdog deadlines; an expired
         or cancelled eval rejects that reduction (returns None), so a
         global stop mid-shrink just freezes the current minimum — the
         counterexample is never lost to the clock. *)
      let shrink_oracle s =
        try eval ~oracle_config ~guard:(attempt_guard ()) tseed s
        with Explore.Engine.Interrupted _ | Rt.Cancel.Cancelled _ -> None
      in
      let min_spec, min_failure, stats =
        if shrink then Shrink.minimize ~oracle:shrink_oracle spec failure
        else (spec, failure, { Shrink.evals = 0; accepted = 0 })
      in
      Done
        ( spec,
          Some
            {
              trial = i;
              seed = tseed;
              failure = min_failure;
              spec = min_spec;
              original_failure = failure;
              original_actions = Spec.action_count spec;
              shrink = stats;
            } )

(* Corpus files are best-effort artifacts: a spec whose materialization
   fails (it cannot, for specs the trial actually ran) or an unwritable
   directory must not turn a completed sweep into a crash. *)
let write_corpus ~dir ~all outcomes =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with _ -> ());
  let write name spec =
    match Emit.spec_to_nm spec with
    | text ->
        let oc = open_out (Filename.concat dir name) in
        output_string oc text;
        close_out oc
    | exception _ -> ()
  in
  List.iter
    (fun (i, tseed, outcome) ->
      let base = Printf.sprintf "trial-%04d-seed-%d" i tseed in
      match outcome with
      | Done (spec, Some c) ->
          write (base ^ ".nm") spec;
          write (base ^ "-min.nm") c.spec
      | Done (spec, None) -> if all then write (base ^ ".nm") spec
      | Skipped | Timed_out _ -> ())
    outcomes

let run ?(gen_config = Generate.default) ?(oracle_config = Oracle.default)
    ?(shrink = true) ?jobs ?pool ?(obs = Obs.Ctx.disabled)
    ?(guard = Rt.Guard.inert) ?watchdog ?corpus_out ?(corpus_all = false)
    ~seed ~count () =
  let jobs =
    match (jobs, pool) with
    | Some j, _ -> j
    | None, Some p -> Par.Pool.jobs p
    | None, None -> 1
  in
  if count < 0 then invalid_arg "Fuzz.run: count must be non-negative";
  if jobs <= 0 then invalid_arg "Fuzz.run: jobs must be positive";
  let guard_on = Rt.Guard.active guard in
  let completed = Atomic.make 0 in
  let one i =
    let tseed = seed + i in
    (* Announce the seed {e before} the trial runs: if a trial hangs or
       the process dies, the last [fuzz.start] in the trace names the
       seed to replay. Emitted live (from whichever worker runs the
       trial), unlike the post-hoc per-trial records below. *)
    if Obs.Ctx.enabled obs then
      Obs.Ctx.emit obs "fuzz.start"
        [ ("trial", Obs.Sink.I i); ("seed", Obs.Sink.I tseed) ];
    let outcome =
      if guard_on && Rt.Guard.poll guard ~states:0 ~bytes:0 <> None then
        Skipped
      else
        run_trial ~gen_config ~oracle_config ~shrink ~guard ~watchdog i tseed
    in
    let done_ = Atomic.fetch_and_add completed 1 + 1 in
    Obs.Ctx.tick obs ~label:"fuzz" ~states:done_ ();
    (i, tseed, outcome)
  in
  let outcomes =
    Par.Pool.use ?pool ~jobs (fun pool ->
        Par.Pool.map_reduce pool ~n:count
          ~map:(fun ~worker:_ lo hi -> List.init (hi - lo) (fun k -> one (lo + k)))
          (fun acc chunk -> List.rev_append chunk acc)
          [])
    |> List.rev
  in
  (match corpus_out with
  | Some dir -> write_corpus ~dir ~all:corpus_all outcomes
  | None -> ());
  (* All recording is post-hoc and in trial order, so counters and the
     JSONL trace are identical at any job count (modulo the live
     [fuzz.start] lines, whose per-trial {e count} is stable). *)
  if Obs.Ctx.enabled obs then begin
    let trials_c = Obs.Ctx.counter obs "fuzz.trials" in
    let cex_c = Obs.Ctx.counter obs "fuzz.counterexamples" in
    let shrink_c = Obs.Ctx.counter obs "fuzz.shrink_evals" in
    List.iter
      (fun (i, tseed, outcome) ->
        Obs.Metrics.incr trials_c;
        let head = [ ("trial", Obs.Sink.I i); ("seed", Obs.Sink.I tseed) ] in
        let spec_fields spec =
          [
            ("vars", Obs.Sink.I (List.length (Spec.live_slots spec)));
            ("actions", Obs.Sink.I (Spec.action_count spec));
            ("states", Obs.Sink.F (Spec.space_size spec));
          ]
        in
        match outcome with
        | Skipped ->
            Obs.Metrics.incr (Obs.Ctx.counter obs "fuzz.skipped");
            Obs.Ctx.emit obs "fuzz.trial"
              (head @ [ ("skipped", Obs.Sink.B true) ])
        | Timed_out (spec, attempts) ->
            Obs.Metrics.incr (Obs.Ctx.counter obs "fuzz.timeouts");
            Obs.Ctx.emit obs "fuzz.trial"
              (head @ spec_fields spec
              @ [
                  ("timeout", Obs.Sink.B true);
                  ("attempts", Obs.Sink.I attempts);
                ])
        | Done (spec, None) ->
            Obs.Ctx.emit obs "fuzz.trial"
              (head @ spec_fields spec @ [ ("ok", Obs.Sink.B true) ])
        | Done (spec, Some c) ->
            Obs.Metrics.incr cex_c;
            Obs.Metrics.add shrink_c c.shrink.Shrink.evals;
            Obs.Metrics.incr
              (Obs.Ctx.counter obs ("fuzz.fail." ^ c.failure.Oracle.oracle));
            Obs.Ctx.emit obs "fuzz.trial"
              (head @ spec_fields spec
              @ [
                  ("ok", Obs.Sink.B false);
                  ("oracle", Obs.Sink.S c.failure.Oracle.oracle);
                  ("min_actions", Obs.Sink.I (Spec.action_count c.spec));
                  ("min_vars", Obs.Sink.I (List.length (Spec.live_slots c.spec)));
                  ("shrink_evals", Obs.Sink.I c.shrink.Shrink.evals);
                ]))
      outcomes;
    let cex_total =
      List.length
        (List.filter
           (fun (_, _, o) -> match o with Done (_, Some _) -> true | _ -> false)
           outcomes)
    in
    Obs.Ctx.emit obs "fuzz.done"
      [ ("trials", Obs.Sink.I count); ("counterexamples", Obs.Sink.I cex_total) ];
    Obs.Ctx.finish_progress obs ~label:"fuzz" ~states:count
  end;
  {
    trials = count;
    start_seed = seed;
    counterexamples =
      List.filter_map
        (fun (_, _, o) -> match o with Done (_, c) -> c | _ -> None)
        outcomes;
    skipped =
      List.length
        (List.filter (fun (_, _, o) -> o = Skipped) outcomes);
    timeouts =
      List.filter_map
        (fun (i, tseed, o) ->
          match o with
          | Timed_out (_, attempts) ->
              Some { t_trial = i; t_seed = tseed; t_attempts = attempts }
          | _ -> None)
        outcomes;
  }

let pp_report ppf r =
  let degraded ppf =
    if r.skipped > 0 then
      Format.fprintf ppf "@,  %d trial(s) skipped (budget exhausted)"
        r.skipped;
    List.iter
      (fun t ->
        Format.fprintf ppf
          "@,  [trial %d] watchdog expired on all %d attempt(s); replay: \
           nonmask fuzz --seed %d --count 1"
          t.t_trial t.t_attempts t.t_seed)
      r.timeouts
  in
  match r.counterexamples with
  | [] ->
      Format.fprintf ppf "@[<v>fuzz: %d trials from seed %d: %s%t@]" r.trials
        r.start_seed
        (if r.skipped > 0 || r.timeouts <> [] then
           "no counterexample among the completed trials"
         else "all oracles hold")
        degraded
  | cexs ->
      Format.fprintf ppf
        "@[<v>fuzz: %d trials from seed %d: %d counterexample(s)%t@,@,"
        r.trials r.start_seed (List.length cexs) degraded;
      List.iter
        (fun c ->
          Format.fprintf ppf
            "@[<v>[trial %d] oracle %s: %s@,\
            \  reproduce: nonmask fuzz --seed %d --count 1@,\
            \  shrunk %d -> %d actions (%d oracle evals, %d reductions)@,%a@,@]"
            c.trial c.failure.Oracle.oracle c.failure.Oracle.detail c.seed
            c.original_actions (Spec.action_count c.spec)
            c.shrink.Shrink.evals c.shrink.Shrink.accepted Spec.pp c.spec)
        cexs
