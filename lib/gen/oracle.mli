(** Differential and metamorphic oracles over a generated model.

    Every oracle is a property that must hold of {e any} well-formed
    guarded program, so a violation is a bug in the library (or, during
    harness self-tests, the simulated {!config.defect}):

    - [region-agree]: all three {!Explore.Engine} backends produce the
      same reachable region — state set, edge multiset (by state key and
      action index), terminal set, and explored count — from both the
      legitimate-seed and whole-space root sets;
    - [verdict-agree]: {!Explore.Convergence.check_unfair} returns the
      same verdict on every backend — stats on success, failure kind on
      failure. Witness states are exploration-order-dependent, so each
      backend's deadlock witness is only required to be {e valid}
      (terminal under the program and outside the target), not identical;
    - [span-agree]: {!Explore.Faultspan} computes identical spans (count,
      roots, depth profile) on every backend, at budgets 0, the
      certification budget, and unbounded;
    - [span-monotone]: the span is monotone in the fault budget, and the
      budget-0 span equals the program-only closure of the roots;
    - [cert-agree]: {!Nonmask.Certify.tolerance} produces the same
      certificate (overall verdict and per-check outcomes) on every
      backend;
    - [reorder-stable]: the certificate verdict and the invariant's
      closure verdict are unchanged when the program's actions are
      re-ordered;
    - [storm-consistent]: when the certificate is positive and the
      fault-free convergence verdict is exact (acyclic region), a
      recurring-fault storm under the certified budget converges within
      the theorem-implied step bound — {!Sim.Storm} can never contradict
      a positive certificate;
    - [adversary-sound]: when the certificate is positive,
      {!Tol.Adversary.worst_case} over the budgeted span is identical on
      the eager and lazy engines, its verdict coincides exactly with the
      unfair convergence check over the same span ([Bounded w] iff the
      fault-free region is acyclic with worst case [w], and then the
      bounds are equal), and when bounded the adversary-implied composite
      bound dominates every storm trial — the worst-case daemon really is
      worst-case.

    All randomness (storm streams, the reordering permutation) is drawn
    from the caller's [rng] up front, so a run is a pure function of the
    model and the stream. *)

type failure = { oracle : string; detail : string }

type config = {
  cert_budget : int;  (** fault budget for spans/certificates (default 2) *)
  storm_trials : int;  (** storm trials per model (default 20) *)
  storm_rate : float;  (** per-step fault probability (default 0.2) *)
  defect : Explore.Engine.backend option;
      (** simulate a defect in this backend (off-by-one explored/span
          counts) — used by harness self-tests and shrinker tests *)
}

val default : config

val oracle_names : string list
(** The oracles in evaluation order. *)

val run_all :
  ?config:config -> ?guard:Rt.Guard.t -> rng:Prng.t -> Spec.model -> failure list
(** Evaluate every oracle; collect each one's first violation. *)

val run :
  ?config:config ->
  ?guard:Rt.Guard.t ->
  rng:Prng.t ->
  Spec.model ->
  failure option
(** First violation in {!oracle_names} order, or [None]. This is the
    shrinker's predicate: it short-circuits, so minimization stays fast.

    [guard] (default {!Rt.Guard.inert}) is threaded into every engine
    the oracles build, so a watchdog deadline or cancellation request
    interrupts a pathological model's exploration mid-oracle —
    {!Explore.Engine.Interrupted} (or [Rt.Cancel.Cancelled] from eager
    builds) escapes to the caller; it is {e not} converted into an
    oracle failure. *)
