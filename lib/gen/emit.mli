(** Render a materialized model as [.nm] source.

    The emitted text parses and elaborates back ({!Lang.Driver}) to a
    model with the same environment (live slots in order, same names
    and domains), the same program action names and order, and
    semantically identical guards, assignments, invariant, and initial
    state — the contract the [emit-roundtrip] oracle checks. Fault
    actions are kept (renamed [f<j>], since [fault:<j>] is not a
    surface-syntax name). Deterministic output. *)

val model_to_nm : Spec.model -> string

val spec_to_nm : Spec.t -> string
(** [model_to_nm] of {!Spec.materialize}.
    @raise Invalid_argument like {!Spec.materialize}. *)
