module Json = Obs.Json

let fragments =
  [|
    "\""; "\\"; "\n"; "\r"; "\t"; "\b"; "\012"; "\000"; "\x01"; "\x1f";
    "a"; "Z"; " "; "/"; "{}"; "[]"; ":"; ","; "caf\xc3\xa9"; "\xe2\x9c\x93";
    "0"; "-"; "e"; ".";
  |]

let string_ rng =
  let n = Prng.int rng 25 in
  let buf = Buffer.create 32 in
  for _ = 1 to n do
    Buffer.add_string buf (Prng.pick rng fragments)
  done;
  Buffer.contents buf

let number rng =
  match Prng.int rng 12 with
  | 0 -> Json.Int 0
  | 1 -> Json.Int max_int
  | 2 -> Json.Int min_int
  | 3 -> Json.Int (Prng.int_in rng (-1000) 1000)
  | 4 -> Json.Float (-0.)
  | 5 -> Json.Float 0.
  | 6 -> Json.Float 1.5e300 (* forces %.17g exponent rendering *)
  | 7 -> Json.Float 6.02e-23
  | 8 -> Json.Float (float_of_int (Prng.int_in rng (-1000) 1000))
      (* integral: renders with a ".0" suffix *)
  | 9 -> Json.Float (Prng.float rng 1.0)
  | 10 -> Json.Float (Float.of_int (Prng.int_in rng (-1000) 1000) *. 1e17)
      (* integral but >= 1e15: exponent form *)
  | _ -> Json.Float (ldexp (Prng.float rng 2.0 -. 1.0) (Prng.int_in rng (-60) 60))

let rec value ?(depth = 4) rng =
  if depth <= 0 then
    match Prng.int rng 4 with
    | 0 -> Json.Null
    | 1 -> Json.Bool (Prng.bool rng)
    | 2 -> number rng
    | _ -> Json.Str (string_ rng)
  else
    match Prng.int rng 7 with
    | 0 -> Json.Null
    | 1 -> Json.Bool (Prng.bool rng)
    | 2 -> number rng
    | 3 -> Json.Str (string_ rng)
    | 4 | 5 ->
        Json.List (List.init (Prng.int rng 5) (fun _ -> value ~depth:(depth - 1) rng))
    | _ ->
        Json.Obj
          (List.init (Prng.int rng 5) (fun i ->
               (Printf.sprintf "%d%s" i (string_ rng), value ~depth:(depth - 1) rng)))
