module State = Guarded.State
module Compile = Guarded.Compile

type result = {
  steps : int array;
  failures : int;
  fault_counts : int array;
  summary : Stats.summary option;
  skipped : int;
  timeouts : int;
  retries : int;
}

exception Trial_timeout

(* One storm: per iteration, a coin decides between injecting the fault and
   executing one daemon-chosen program step (mirroring Runner's simultaneous
   multi-action execution for distributed daemons). Returns
   [(converged, iterations, faults_injected)]. [deadline] is an absolute
   wall-clock watchdog, polled every 256 iterations; expiry raises
   {!Trial_timeout}. *)
let run_storm ~max_steps ~fault_budget ~deadline ~rng ~daemon ~init ~stop
    ~fault ~rate (cp : Compile.program) =
  let state = State.copy init in
  let scratch = State.copy init in
  let timed = deadline < infinity in
  let rec loop steps faults =
    if timed && steps land 255 = 0 && Unix.gettimeofday () > deadline then
      raise Trial_timeout
    else if stop state then (true, steps, faults)
    else if steps >= max_steps then (false, steps, faults)
    else begin
      let may_fault =
        match fault_budget with None -> true | Some b -> faults < b
      in
      if may_fault && rate > 0. && Prng.float rng 1.0 < rate then begin
        fault.Fault.inject rng state;
        loop (steps + 1) (faults + 1)
      end
      else
        match Compile.enabled_indices cp state with
        | [] ->
            (* Program-terminal. Only a future fault can move the state, so
               keep ticking while faults remain possible; otherwise the trial
               is stuck for good. *)
            if may_fault && rate > 0. then loop (steps + 1) faults
            else (false, steps, faults)
        | enabled ->
            let ctx = { Daemon.program = cp; step = steps; state; enabled } in
            (match (daemon : Daemon.t).choose ctx with
            | [ a ] ->
                cp.actions.(a).apply_into state scratch;
                State.blit ~src:scratch ~dst:state
            | chosen ->
                State.blit ~src:state ~dst:scratch;
                List.iter
                  (fun a ->
                    let post = cp.actions.(a).apply state in
                    Guarded.Var.Set.iter
                      (fun v ->
                        State.set_index scratch (Guarded.Var.index v)
                          (State.get_index post (Guarded.Var.index v)))
                      (Guarded.Action.writes cp.actions.(a).source))
                  chosen;
                State.blit ~src:scratch ~dst:state);
            loop (steps + 1) faults
    end
  in
  loop 0 0

let trials ?(max_steps = 100_000) ?fault_budget ?jobs ?pool
    ?(obs = Obs.Ctx.disabled) ?(guard = Rt.Guard.inert) ?watchdog ~rng ~trials
    ~daemon ~prepare ~stop ~fault ~rate cp =
  let jobs =
    match (jobs, pool) with
    | Some j, _ -> j
    | None, Some p -> Par.Pool.jobs p
    | None, None -> 1
  in
  if jobs <= 0 then
    invalid_arg (Printf.sprintf "Storm.trials: jobs must be positive (got %d)" jobs);
  let guard_on = Rt.Guard.active guard in
  (* Pre-split every trial's stream sequentially: [Prng.split] only draws
     from the parent, and trials only ever touch their own stream, so
     these are exactly the streams the sequential loop would have used —
     the basis of the any-job-count determinism contract. *)
  let trial_rngs = Array.make trials None in
  for i = 0 to trials - 1 do
    trial_rngs.(i) <- Some (Prng.split rng)
  done;
  let ok_a = Array.make trials false in
  let steps_a = Array.make trials 0 in
  let fault_counts = Array.make trials 0 in
  let skipped_a = Array.make trials false in
  let abandoned_a = Array.make trials false in
  let timeout_attempts = Array.make trials 0 in
  let max_retries =
    match watchdog with None -> 0 | Some w -> w.Rt.Watchdog.retries
  in
  (* Per-trial order matches the sequential loop: prepare, then daemon,
     then the storm itself, all on the trial's own stream. Retry attempt
     [k] replays the trial on a derived stream — copy the trial's base
     stream, discard [k] splits — so attempt 0 is bit-identical to the
     watchdog-free run and every retry is reproducible from the same
     root seed. *)
  let completed = Atomic.make 0 in
  let run_trial cp i =
    (if guard_on && Rt.Guard.poll guard ~states:0 ~bytes:0 <> None then
       skipped_a.(i) <- true
     else
       let base = Option.get trial_rngs.(i) in
       let rec attempt k =
         let trial_rng = Prng.copy base in
         for _ = 1 to k do
           ignore (Prng.split trial_rng)
         done;
         let init = prepare trial_rng in
         let d = daemon trial_rng in
         let deadline =
           match watchdog with
           | None -> infinity
           | Some w -> Rt.Watchdog.deadline w
         in
         match
           run_storm ~max_steps ~fault_budget ~deadline ~rng:trial_rng
             ~daemon:d ~init ~stop ~fault ~rate cp
         with
         | ok, steps, faults ->
             ok_a.(i) <- ok;
             steps_a.(i) <- steps;
             fault_counts.(i) <- faults
         | exception Trial_timeout ->
             timeout_attempts.(i) <- timeout_attempts.(i) + 1;
             if k < max_retries then attempt (k + 1)
             else begin
               abandoned_a.(i) <- true;
               steps_a.(i) <- max_steps
             end
       in
       attempt 0);
    if Obs.Ctx.enabled obs then
      (* ticks may come from any worker domain; the reporter is
         try_lock-guarded, so contended ticks are dropped, not blocking *)
      Obs.Ctx.tick obs ~label:"storm"
        ~states:(Atomic.fetch_and_add completed 1 + 1)
        ()
  in
  (if jobs = 1 then
     for i = 0 to trials - 1 do
       run_trial cp i
     done
   else
     Par.Pool.use ?pool ~jobs @@ fun pool ->
     (* Compiled actions carry private scratch buffers, so each worker
        domain gets its own recompilation of the program. *)
     let worker_cp =
       Array.init (Par.Pool.jobs pool) (fun w ->
           if w = 0 then cp else Compile.program cp.Compile.source)
     in
     Par.Pool.parallel_for pool ~n:trials (fun ~worker lo hi ->
         for i = lo to hi - 1 do
           run_trial worker_cp.(worker) i
         done));
  let converged = ref [] in
  let failures = ref 0 in
  let skipped = ref 0 in
  let timeouts = ref 0 in
  let timeout_total = ref 0 in
  for i = trials - 1 downto 0 do
    timeout_total := !timeout_total + timeout_attempts.(i);
    if skipped_a.(i) then incr skipped
    else if abandoned_a.(i) then begin
      incr timeouts;
      incr failures
    end
    else if ok_a.(i) then converged := steps_a.(i) :: !converged
    else incr failures
  done;
  (* every timed-out attempt was either retried or the trial's last *)
  let retries = !timeout_total - !timeouts in
  let steps = Array.of_list !converged in
  let summary =
    if Array.length steps = 0 then None else Some (Stats.summarize_ints steps)
  in
  if Obs.Ctx.enabled obs then begin
    (* trial events are emitted post-hoc in trial-index order, so the
       trace is byte-stable at any job count even though workers finish
       trials in nondeterministic order; watchdog/guard annotations are
       appended only on affected trials, keeping undisturbed traces
       byte-identical to guard-free runs *)
    let steps_hist = Obs.Ctx.histogram obs "storm.steps" in
    for i = 0 to trials - 1 do
      Obs.Metrics.observe steps_hist steps_a.(i);
      Obs.Ctx.emit obs "storm.trial"
        ([
           ("trial", Obs.Sink.I i);
           ("converged", Obs.Sink.B ok_a.(i));
           ("steps", Obs.Sink.I steps_a.(i));
           ("faults", Obs.Sink.I fault_counts.(i));
         ]
        @ (if skipped_a.(i) then [ ("skipped", Obs.Sink.B true) ] else [])
        @
        if timeout_attempts.(i) > 0 then
          [
            ("timeout_attempts", Obs.Sink.I timeout_attempts.(i));
            ("abandoned", Obs.Sink.B abandoned_a.(i));
          ]
        else [])
    done;
    Obs.Metrics.add (Obs.Ctx.counter obs "storm.trials") trials;
    Obs.Metrics.add (Obs.Ctx.counter obs "storm.converged")
      (Array.length steps);
    Obs.Metrics.add (Obs.Ctx.counter obs "storm.failures") !failures;
    if !skipped > 0 then
      Obs.Metrics.add (Obs.Ctx.counter obs "storm.skipped") !skipped;
    if !timeouts > 0 then
      Obs.Metrics.add (Obs.Ctx.counter obs "storm.timeouts") !timeouts;
    if retries > 0 then
      Obs.Metrics.add (Obs.Ctx.counter obs "storm.retries") retries;
    Obs.Metrics.add
      (Obs.Ctx.counter obs "storm.steps_total")
      (Array.fold_left ( + ) 0 steps_a);
    Obs.Metrics.add
      (Obs.Ctx.counter obs "storm.faults_injected")
      (Array.fold_left ( + ) 0 fault_counts);
    Obs.Ctx.emit obs "storm.done"
      [ ("trials", Obs.Sink.I trials); ("failures", Obs.Sink.I !failures) ];
    Obs.Ctx.finish_progress obs ~label:"storm" ~states:trials
  end;
  {
    steps;
    failures = !failures;
    fault_counts;
    summary;
    skipped = !skipped;
    timeouts = !timeouts;
    retries;
  }

let pp_result ppf r =
  let mean_faults =
    if Array.length r.fault_counts = 0 then 0.
    else
      float_of_int (Array.fold_left ( + ) 0 r.fault_counts)
      /. float_of_int (Array.length r.fault_counts)
  in
  (match r.summary with
  | None -> Format.fprintf ppf "no trial converged (%d failures)" r.failures
  | Some s ->
      (* the quantile columns (p90, max, ...) are clamped at whatever
         the sampled trials happened to see — label them as observations
         so the rendering can never be read as a guarantee; the sound
         guarantee is the adversary bound (pp_result_with_bound) *)
      Format.fprintf ppf "observed %a%s" Stats.pp_summary s
        (if r.failures > 0 then Printf.sprintf " (%d failures)" r.failures
         else ""));
  Format.fprintf ppf " faults/trial=%.1f" mean_faults;
  if r.timeouts > 0 || r.retries > 0 then
    Format.fprintf ppf " timeouts=%d retries=%d" r.timeouts r.retries;
  if r.skipped > 0 then Format.fprintf ppf " skipped=%d" r.skipped

let pp_result_with_bound ~bound ppf r =
  pp_result ppf r;
  Format.fprintf ppf " bound=%s"
    (match bound with Some w -> string_of_int w | None -> "unbounded")
