(** Descriptive statistics for experiment results. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val summarize_ints : int array -> summary

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0, 1]; linear interpolation. The
    array must be sorted ascending. A single-element array yields its
    element for every [q]; [q] outside [0, 1] clamps to the extremes.
    @raise Invalid_argument on an empty array or a NaN [q]. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line [n=.. mean=.. sd=.. min/median/p90/max=..] rendering. *)
