(** Fault-storm experiments: faults that keep occurring {e during} recovery.

    {!Experiment.convergence_trials} injects one fault burst and measures the
    fault-free recovery that follows — the nonmasking-tolerance regime where
    faults occur finitely often. A storm instead flips a coin every step: with
    probability [rate] the fault injects again, otherwise the daemon executes
    a program step. This probes the recurring-fault regime that
    [Core.Certify.tolerance]'s recurrence check analyses exhaustively — a
    protocol whose combined program ∪ fault graph has a fault-sustained
    livelock shows up here as stabilization times that grow (and trials that
    fail outright) as [rate] increases. *)

type result = {
  steps : int array;  (** Step counts of the converged trials. *)
  failures : int;
      (** Trials that exhausted [max_steps] without the invariant holding
          (or deadlocked with no fault left to unstick them), including
          trials abandoned by the watchdog. *)
  fault_counts : int array;
      (** Faults injected per trial, converged or not — [trials] entries
          ([0] for skipped trials). *)
  summary : Stats.summary option;  (** Over [steps]; [None] if empty. *)
  skipped : int;
      (** Trials never run because the global [guard] had already tripped
          — the run's verdict is partial (the CLI reports exit 5). *)
  timeouts : int;
      (** Trials abandoned after the watchdog expired on every attempt. *)
  retries : int;
      (** Total replacement attempts launched after a timed-out attempt. *)
}

val trials :
  ?max_steps:int ->
  ?fault_budget:int ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?obs:Obs.Ctx.t ->
  ?guard:Rt.Guard.t ->
  ?watchdog:Rt.Watchdog.t ->
  rng:Prng.t ->
  trials:int ->
  daemon:(Prng.t -> Daemon.t) ->
  prepare:(Prng.t -> Guarded.State.t) ->
  stop:(Guarded.State.t -> bool) ->
  fault:Fault.t ->
  rate:float ->
  Guarded.Compile.program ->
  result
(** Run [trials] independent storms (each trial gets its own [Prng.split] of
    [rng], as in {!Experiment.convergence_trials}). A trial starts from
    [prepare] and iterates until [stop] holds or [max_steps] (default
    [100_000]) iterations elapse. Each iteration is either a fault injection
    (probability [rate], while under [fault_budget] — default unlimited) or
    one daemon-chosen program step; every iteration counts toward the step
    budget, so a trial stuck in a program-terminal state waiting on the coin
    still terminates. [rate = 0.] degenerates to fault-free convergence
    trials.

    [jobs] (default [1]) spreads the trials over that many worker domains;
    [pool] (default none) borrows a caller-owned shared {!Par.Pool} instead
    of spawning a transient one (and supplies the default [jobs]).
    Every trial's PRNG stream is split off [rng] up front in trial order and
    the program is recompiled per worker, so the [result] — step counts,
    failures, fault counts, quantiles — is bit-identical at any job count.
    When [jobs > 1], [prepare], [daemon], [stop], and [fault] must be safe
    to call from concurrent domains (the built-in faults and daemons are:
    they only touch the trial's own state and stream).

    [obs] (default {!Obs.Ctx.disabled}) records storm metrics
    ([storm.trials]/[converged]/[failures]/[faults_injected]/
    [steps_total], histogram [storm.steps]), emits one [storm.trial]
    event per trial — post-hoc, in trial-index order, so the trace is
    byte-stable at any job count — plus a closing [storm.done], and
    drives progress ticks as trials complete.

    [guard] (default {!Rt.Guard.inert}) is polled before each trial
    starts: once the run's deadline passes or cancellation is requested,
    the remaining trials are {e skipped} (counted in [skipped], their
    [storm.trial] events annotated [skipped=true]) instead of the whole
    run being thrown away — graceful degradation to a partial sample.
    [watchdog] (default none) puts a wall-clock timeout on every
    individual trial: a trial that exceeds [timeout_s] is abandoned and
    retried up to [retries] times, attempt [k] replaying on a stream
    derived from the trial's own base stream ([Prng.copy], then [k]
    discarded splits — attempt 0 is bit-identical to the watchdog-free
    trial, and every retry is reproducible from the same root seed).
    A trial whose every attempt times out counts as a failure and a
    [timeouts] entry. Watchdog and guard trips depend on wall-clock
    timing, so runs that trip are {e reproducibly seeded} but not
    bit-deterministic; undisturbed runs remain bit-identical at any job
    count.
    @raise Invalid_argument when [jobs <= 0]. *)

val pp_result : Format.formatter -> result -> unit
(** Step summary plus failure count and mean faults injected per trial.
    The quantile columns are prefixed [observed]: they are clamped at
    whatever the sampled trials happened to see under one random daemon,
    never a guarantee. *)

val pp_result_with_bound :
  bound:int option -> Format.formatter -> result -> unit
(** {!pp_result} plus a [bound=] column carrying the {e sound} worst-case
    recovery bound the caller computed (e.g. [Tol.Adversary.worst_case]
    over the same span): [bound=N] for a finite bound, [bound=unbounded]
    when no finite bound exists ([None]). Keeping [observed] and [bound]
    as separately labeled columns is what stops a storm report from
    being misread as a recovery-time guarantee. *)
