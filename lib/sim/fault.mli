(** Fault models: RNG injectors with first-class action semantics.

    Section 3 of the paper defines every fault class as a set of {e actions}
    that perturb program state; the fault span [T] is the set of states those
    actions can produce. A {!t} therefore carries two equivalent views of the
    same fault class:

    - [inject]: the RNG form, mutating a state in place — what the simulator
      and the storm harness fire during runs;
    - [actions]/[burst]: the action-set form — ordinary guarded actions (one
      per atomic perturbation) plus the maximum number of those actions a
      single occurrence of the fault may perform. This form is what the
      exhaustive analyses consume: [Explore.Faultspan] computes the fault
      span [T] as a closure under these actions, and [Nonmask.Certify.
      tolerance] certifies nonmasking [T]-tolerance against them.

    Both views keep every variable inside its domain (the domains {e define}
    the state space — a value outside every domain is not a state of the
    program). The two views produce the same span: e.g. [corrupt ~k]'s RNG
    form changes at most [k] variables, and its action form is the
    single-variable reassignments with [burst = k], whose [k]-step closure
    is exactly the Hamming ball of radius [k]. For [compose] the action form
    over-approximates (any interleaving of the parts, not their fixed
    order), which is sound for tolerance certification: a larger [T] only
    strengthens the certificate's obligations. *)

type t = {
  name : string;
  inject : Prng.t -> Guarded.State.t -> unit;
  actions : Guarded.Action.t list Lazy.t;
      (** One guarded action per atomic perturbation, lazily built. Action
          names carry the ["fault:"] prefix so they never clash with program
          actions when combined via {!Guarded.Program.add_actions}. *)
  burst : int;
      (** Maximum number of [actions] steps a single occurrence (one
          [inject] call) of this fault can perform. *)
}

val actions : t -> Guarded.Action.t list
(** Force and return the action-set view. *)

val burst : t -> int

val corrupt : Guarded.Env.t -> k:int -> t
(** Pick [min k var_count] distinct variables; set each to a uniformly
    random value of its domain (possibly the current one). Action form: for
    every variable [v] and every domain value [x ≠ v]'s current value, the
    action [fault:v:=x]; [burst = min k var_count]. *)

val corrupt_vars : Guarded.Var.t list -> k:int -> t
(** Same, but drawing only from the given variables — e.g. the variables of
    [k] chosen processes. *)

val scramble : Guarded.Env.t -> t
(** Replace the whole state by a uniformly random one: the harshest fault
    the paper's model admits, and the standard initial condition for
    stabilization experiments. Action form: all single-variable
    reassignments with [burst = var_count], whose closure is the whole
    space — the stabilizing fault span [T = true]. *)

val reset_vars : (Guarded.Var.t * int) list -> t
(** Deterministically force the given variables to the given values —
    models a crash-and-restart that reinitializes part of a process.
    Action form: a single simultaneous assignment, guarded to exclude the
    no-op self-loop; [burst = 1]. *)

val compose : string -> t list -> t
(** Apply each fault in order. Action form: the union of the parts' actions
    (deduplicated by name) with [burst] the sum of the parts' bursts — an
    over-approximation of the ordered application, hence sound for span
    computation. *)

val of_actions : string -> burst:int -> Guarded.Action.t list -> t
(** A fault class given directly by its actions. The derived RNG form
    performs up to [burst] steps, each executing a uniformly chosen enabled
    action (stopping early when none is enabled). *)

val pp : Format.formatter -> t -> unit
