module State = Guarded.State
module Var = Guarded.Var
module Domain = Guarded.Domain
module Env = Guarded.Env
module Action = Guarded.Action
module Expr = Guarded.Expr

type t = {
  name : string;
  inject : Prng.t -> Guarded.State.t -> unit;
  actions : Guarded.Action.t list Lazy.t;
  burst : int;
}

let actions t = Lazy.force t.actions
let burst t = t.burst

let random_value rng domain =
  match (domain : Domain.t) with
  | Bool -> Prng.int rng 2
  | Range { lo; hi } -> Prng.int_in rng lo hi
  | Enum { labels; _ } -> Prng.int rng (Array.length labels)

(* One action per (variable, value) pair: [fault:v:=x] with guard [v <> x],
   so every fault step changes the state (the no-op perturbation is already
   covered by taking fewer steps). *)
let assign_actions vars =
  List.concat_map
    (fun v ->
      let d = Var.domain v in
      List.map
        (fun x ->
          Action.make
            ~name:
              (Printf.sprintf "fault:%s:=%s" (Var.name v)
                 (Domain.value_to_string d x))
            ~guard:Expr.(var v <> int x)
            [ (v, Expr.int x) ])
        (Domain.values d))
    (Array.to_list vars)

let corrupt_of_array name vars ~k =
  {
    name;
    inject =
      (fun rng s ->
        let n = Array.length vars in
        let k = min k n in
        let picks = Prng.sample_without_replacement rng k n in
        Array.iter
          (fun i ->
            let v = vars.(i) in
            State.set s v (random_value rng (Var.domain v)))
          picks);
    actions = lazy (assign_actions vars);
    burst = min k (Array.length vars);
  }

let corrupt env ~k =
  corrupt_of_array (Printf.sprintf "corrupt-%d" k) (Env.vars env) ~k

let corrupt_vars vars ~k =
  corrupt_of_array
    (Printf.sprintf "corrupt-%d-of-%d" k (List.length vars))
    (Array.of_list vars) ~k

let scramble env =
  let vars = Env.vars env in
  {
    name = "scramble";
    inject =
      (fun rng s ->
        Array.iter
          (fun v -> State.set s v (random_value rng (Var.domain v)))
          vars);
    actions = lazy (assign_actions vars);
    burst = Array.length vars;
  }

let reset_vars bindings =
  {
    name = "reset";
    inject = (fun _ s -> List.iter (fun (v, x) -> State.set s v x) bindings);
    actions =
      lazy
        [
          Action.make ~name:"fault:reset"
            ~guard:
              (Expr.not_
                 (Expr.conj
                    (List.map (fun (v, x) -> Expr.(var v = int x)) bindings)))
            (List.map (fun (v, x) -> (v, Expr.int x)) bindings);
        ];
    burst = 1;
  }

let compose name faults =
  {
    name;
    inject = (fun rng s -> List.iter (fun f -> f.inject rng s) faults);
    actions =
      lazy
        (let seen = Hashtbl.create 16 in
         List.concat_map
           (fun f ->
             List.filter
               (fun a ->
                 let n = Action.name a in
                 if Hashtbl.mem seen n then false
                 else begin
                   Hashtbl.add seen n ();
                   true
                 end)
               (Lazy.force f.actions))
           faults);
    burst = List.fold_left (fun acc f -> acc + f.burst) 0 faults;
  }

let of_actions name ~burst actions =
  {
    name;
    inject =
      (fun rng s ->
        (try
           for _ = 1 to burst do
             match List.filter (fun a -> Action.enabled a s) actions with
             | [] -> raise Exit
             | enabled ->
                 let a = Prng.pick_list rng enabled in
                 State.blit ~src:(Action.execute a s) ~dst:s
           done
         with Exit -> ()));
    actions = lazy actions;
    burst;
  }

let pp ppf f = Format.pp_print_string ppf f.name
