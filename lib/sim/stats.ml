type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if Float.is_nan q then invalid_arg "Stats.percentile: q is nan";
  if n = 1 then sorted.(0)
  else begin
    (* q outside [0, 1] clamps to the extremes rather than indexing out
       of bounds *)
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize data =
  let n = Array.length data in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let sum = Array.fold_left ( +. ) 0.0 data in
  let mean = sum /. float_of_int n in
  let sq_dev =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 data
  in
  let stddev =
    if n <= 1 then 0.0 else sqrt (sq_dev /. float_of_int (n - 1))
  in
  {
    n;
    mean;
    stddev;
    min = sorted.(0);
    p25 = percentile sorted 0.25;
    median = percentile sorted 0.5;
    p75 = percentile sorted 0.75;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
    max = sorted.(n - 1);
  }

let summarize_ints data = summarize (Array.map float_of_int data)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.0f med=%.1f p90=%.1f max=%.0f" s.n s.mean
    s.stddev s.min s.median s.p90 s.max
