type t = {
  enabled : bool;
  metrics : Metrics.t;
  sink : Sink.t;
  progress : Progress.t option;
  t0 : float;
}

let disabled =
  {
    enabled = false;
    metrics = Metrics.create ();
    sink = Sink.noop;
    progress = None;
    t0 = 0.;
  }

let create ?(sink = Sink.noop) ?progress () =
  {
    enabled = true;
    metrics = Metrics.create ();
    sink;
    progress;
    t0 = Unix.gettimeofday ();
  }

let enabled t = t.enabled
let metrics t = t.metrics
let sink t = t.sink

let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name
let histogram t name = Metrics.histogram t.metrics name

let emit t name fields = if t.enabled then Sink.emit t.sink name fields

let now () = Unix.gettimeofday ()

let time t name f =
  if not t.enabled then f ()
  else begin
    let start = now () in
    let r = f () in
    let us = int_of_float ((now () -. start) *. 1e6) in
    Metrics.observe (histogram t (name ^ "_us")) us;
    Sink.emit t.sink "span" [ ("name", Sink.S name); ("us", Sink.I us) ];
    r
  end

let tick t ~label ~states ?frontier ?depth () =
  match t.progress with
  | Some p when t.enabled -> Progress.tick p ~label ~states ?frontier ?depth ()
  | _ -> ()

let finish_progress t ~label ~states =
  match t.progress with
  | Some p when t.enabled -> Progress.final p ~label ~states
  | _ -> ()

let metrics_json t ~extra =
  let elapsed = if t.enabled then now () -. t.t0 else 0. in
  Json.Obj
    [
      ("meta", Json.Obj extra);
      ("elapsed_s", Json.Float elapsed);
      ( "peak_rss_kb",
        match Progress.peak_rss_kb () with
        | Some kb -> Json.Int kb
        | None -> Json.Null );
      ("metrics", Metrics.snapshot t.metrics);
    ]

let write_metrics t ~file ~extra =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (Json.to_string (metrics_json t ~extra));
  output_char oc '\n'

let close t = Sink.close t.sink
