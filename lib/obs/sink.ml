type value = I of int | F of float | S of string | B of bool

type jsonl_state = {
  oc : out_channel;
  mutex : Mutex.t;
  mutable seq : int;
  mutable closed : bool;
  t0 : float;
}

type t = Noop | Jsonl of jsonl_state

let noop = Noop

let jsonl oc =
  Jsonl
    {
      oc;
      mutex = Mutex.create ();
      seq = 0;
      closed = false;
      t0 = Unix.gettimeofday ();
    }

let json_of_value = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.Str s
  | B b -> Json.Bool b

let emit t name fields =
  match t with
  | Noop -> ()
  | Jsonl st ->
      let ts = Unix.gettimeofday () -. st.t0 in
      Mutex.lock st.mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) @@ fun () ->
      if not st.closed then begin
        let line =
          Json.Obj
            (("seq", Json.Int st.seq)
            :: ("ts", Json.Float ts)
            :: ("ev", Json.Str name)
            :: List.map (fun (k, v) -> (k, json_of_value v)) fields)
        in
        st.seq <- st.seq + 1;
        output_string st.oc (Json.to_string line);
        output_char st.oc '\n'
      end

let close = function
  | Noop -> ()
  | Jsonl st ->
      Mutex.lock st.mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) @@ fun () ->
      if not st.closed then begin
        st.closed <- true;
        close_out st.oc
      end
