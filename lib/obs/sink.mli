(** Pluggable event sinks.

    An event is a name plus flat typed fields; a sink decides what to do
    with it. {!noop} drops everything at the cost of one branch — the
    contract the E17 bench column verifies. {!jsonl} appends one JSON
    object per event to a channel, serialized under a mutex so events
    from concurrent domains never interleave bytes. *)

type value = I of int | F of float | S of string | B of bool

type t

val noop : t

val jsonl : out_channel -> t
(** Events as JSON lines:
    [{"seq":<n>,"ts":<seconds since sink creation>,"ev":"<name>",...fields}].
    [seq] is a per-sink monotone sequence number assigned under the
    sink's mutex, so lines are totally ordered even when emitted from
    worker domains. The channel is flushed and closed by {!close}. *)

val emit : t -> string -> (string * value) list -> unit

val close : t -> unit
(** Flush and close a {!jsonl} sink's channel (idempotent); no-op for
    {!noop}. *)
