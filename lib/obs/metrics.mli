(** Domain-safe metrics registry.

    Every instrument is built on [Atomic.t] so the parallel engine's
    worker domains can record without taking a lock: counters and gauges
    are single atomic ints, histograms are arrays of atomic bucket
    counts. Registration (name → instrument) takes a mutex, but that
    happens at setup time, never on a hot path — instrument handles are
    meant to be looked up once and then used from any domain.

    Snapshots are deterministic: instruments render sorted by name, so
    two runs that record the same values produce byte-identical JSON. *)

type t
(** A registry. *)

type counter
(** Monotone integer count. *)

type gauge
(** Last-written (or running-max) integer value. *)

type histogram
(** Integer-valued distribution over exponential (power-of-two) buckets,
    with exact count, sum, and max. Record durations in microseconds,
    sizes in states/bytes — the unit is the caller's convention, named
    by the instrument's suffix (e.g. [_us]). *)

val create : unit -> t

val counter : t -> string -> counter
(** Get or register the counter [name].
    @raise Invalid_argument if [name] is registered as another kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** Monotone update: keep the maximum of the current and given value. *)

val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one observation. Negative values clamp to bucket 0. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int

val snapshot : t -> Json.t
(** All instruments as one JSON object, sorted by name. Counters and
    gauges render as ints; a histogram renders as
    [{"count":..,"sum":..,"max":..,"buckets":{"<=N":count,..}}] with
    only the non-empty buckets listed. *)

val render_prometheus : t -> string
(** The registry in Prometheus text exposition format — the scrape body
    a [/metrics]-style endpoint (the serve daemon's [metrics] op)
    returns. Instrument names sanitize to [[a-zA-Z0-9_:]] (dots become
    underscores); histograms emit cumulative [_bucket{le="..."}] lines
    over the power-of-two buckets plus [_sum]/[_count]. Deterministic:
    families are sorted by sanitized name. *)
