type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- recursive-descent parser --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* A decoded \uXXXX escape, re-encoded as UTF-8. *)
  let add_codepoint buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some cp -> add_codepoint buf cp
                | None -> fail "bad \\u escape");
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec go () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          go ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "at offset %d: %s" p msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
