type counter = int Atomic.t
type gauge = int Atomic.t

(* Bucket [i] counts observations in (2^(i-1), 2^i]; bucket 0 counts
   values <= 1. 63 buckets cover the whole non-negative int range. *)
let n_buckets = 63

type histogram = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  hmax : int Atomic.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  instruments : (string, instrument) Hashtbl.t;
  mutex : Mutex.t;
}

let create () = { instruments = Hashtbl.create 32; mutex = Mutex.create () }

let get_or_register t name ~wrap ~unwrap ~make =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  match Hashtbl.find_opt t.instruments name with
  | Some existing -> (
      match unwrap existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as another kind"
               name))
  | None ->
      let v = make () in
      Hashtbl.add t.instruments name (wrap v);
      v

let counter t name =
  get_or_register t name
    ~wrap:(fun c -> Counter c)
    ~unwrap:(function Counter c -> Some c | _ -> None)
    ~make:(fun () -> Atomic.make 0)

let gauge t name =
  get_or_register t name
    ~wrap:(fun g -> Gauge g)
    ~unwrap:(function Gauge g -> Some g | _ -> None)
    ~make:(fun () -> Atomic.make 0)

let histogram t name =
  get_or_register t name
    ~wrap:(fun h -> Histogram h)
    ~unwrap:(function Histogram h -> Some h | _ -> None)
    ~make:(fun () ->
      {
        buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
        count = Atomic.make 0;
        sum = Atomic.make 0;
        hmax = Atomic.make 0;
      })

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let value = Atomic.get

let set = Atomic.set

let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

let gauge_value = Atomic.get

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* bits of v-1: values in (2^(i-1), 2^i] share index i *)
    let i = ref 0 in
    let x = ref (v - 1) in
    while !x > 0 do
      i := !i + 1;
      x := !x lsr 1
    done;
    min (n_buckets - 1) !i
  end

let observe h v =
  let v = max 0 v in
  ignore (Atomic.fetch_and_add h.buckets.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  ignore (Atomic.fetch_and_add h.sum v);
  set_max h.hmax v

let hist_count h = Atomic.get h.count
let hist_sum h = Atomic.get h.sum

let hist_json h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(i) in
    if c > 0 then
      buckets :=
        (Printf.sprintf "<=%d" (if i = 0 then 1 else 1 lsl i), Json.Int c)
        :: !buckets
  done;
  Json.Obj
    [
      ("count", Json.Int (Atomic.get h.count));
      ("sum", Json.Int (Atomic.get h.sum));
      ("max", Json.Int (Atomic.get h.hmax));
      ("buckets", Json.Obj !buckets);
    ]

(* Prometheus text exposition: the scrape body a `/metrics`-style
   endpoint serves. Names sanitize to [a-zA-Z0-9_:] (dots become
   underscores); histograms render their exact count/sum/max plus the
   power-of-two buckets as cumulative `_bucket{le="..."}` lines, which
   is what Prometheus expects of a histogram family. Deterministic:
   families sort by (sanitized) name. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let render_prometheus t =
  Mutex.lock t.mutex;
  let instruments =
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
    Hashtbl.fold (fun name instr acc -> (name, instr) :: acc) t.instruments []
  in
  let buf = Buffer.create 1024 in
  let families =
    List.sort (fun (a, _) (b, _) -> compare (sanitize a) (sanitize b))
      instruments
  in
  List.iter
    (fun (name, instr) ->
      let n = sanitize name in
      match instr with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Atomic.get c))
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Atomic.get g))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
          let cumulative = ref 0 in
          for i = 0 to n_buckets - 1 do
            let c = Atomic.get h.buckets.(i) in
            if c > 0 then begin
              cumulative := !cumulative + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n
                   (if i = 0 then 1 else 1 lsl i)
                   !cumulative)
            end
          done;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n
               (Atomic.get h.count));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %d\n" n (Atomic.get h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" n (Atomic.get h.count)))
    families;
  Buffer.contents buf

let snapshot t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  let fields =
    Hashtbl.fold
      (fun name instr acc ->
        let v =
          match instr with
          | Counter c -> Json.Int (Atomic.get c)
          | Gauge g -> Json.Int (Atomic.get g)
          | Histogram h -> hist_json h
        in
        (name, v) :: acc)
      t.instruments []
  in
  Json.Obj (List.sort (fun (a, _) (b, _) -> compare a b) fields)
