type t = {
  interval : float;
  out : out_channel;
  t0 : float;
  mutex : Mutex.t;
  mutable last : float;
}

let create ?(interval = 1.0) ?(out = stderr) () =
  { interval; out; t0 = Unix.gettimeofday (); mutex = Mutex.create (); last = 0. }

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rv = ref None in
      (try
         while true do
           let line = input_line ic in
           try Scanf.sscanf line "VmHWM: %d kB" (fun kb -> rv := Some kb)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         done
       with End_of_file -> ());
      close_in ic;
      !rv

let rss_cell () =
  match peak_rss_kb () with
  | Some kb -> Printf.sprintf " rss=%.1fMB" (float_of_int kb /. 1024.)
  | None -> ""

let line t ~label ~states ?frontier ?depth () =
  let elapsed = Unix.gettimeofday () -. t.t0 in
  let rate =
    if elapsed > 0. then float_of_int states /. elapsed else 0.
  in
  Printf.fprintf t.out "%s: %d states (%.0f/s)%s%s elapsed=%.1fs%s\n%!"
    label states rate
    (match frontier with
    | Some f -> Printf.sprintf " frontier=%d" f
    | None -> "")
    (match depth with
    | Some d -> Printf.sprintf " depth=%d" d
    | None -> "")
    elapsed (rss_cell ())

let tick t ~label ~states ?frontier ?depth () =
  if Mutex.try_lock t.mutex then
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
    let now = Unix.gettimeofday () in
    if now -. t.last >= t.interval then begin
      t.last <- now;
      line t ~label ~states ?frontier ?depth ()
    end

let final t ~label ~states =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  t.last <- Unix.gettimeofday ();
  line t ~label ~states ()
