(** Periodic live progress for long-running explorations.

    The reporter is {e driven}, not threaded: the instrumented loop calls
    {!tick} at natural checkpoints (a BFS level, a chunk of expansions, a
    completed trial) and the reporter decides — at most once per
    [interval] seconds — whether to print a line. Ticks from concurrent
    domains are safe: the rate limit is guarded by [Mutex.try_lock], so
    a contended tick is simply dropped rather than blocking a worker. *)

type t

val create : ?interval:float -> ?out:out_channel -> unit -> t
(** [interval] defaults to [1.0] seconds; [interval <= 0.] reports on
    every tick (useful in tests). [out] defaults to [stderr]. *)

val tick :
  t ->
  label:string ->
  states:int ->
  ?frontier:int ->
  ?depth:int ->
  unit ->
  unit
(** Report [states] processed so far under [label]. Prints
    [label: <states> states (<rate>/s) frontier=<n> depth=<n>
    elapsed=<s> rss=<MB>] when the interval has elapsed. The rate is
    cumulative (states over total elapsed time). *)

val final : t -> label:string -> states:int -> unit
(** Unconditional closing line (elapsed, rate, peak RSS), printed once
    per label regardless of the interval. *)

val peak_rss_kb : unit -> int option
(** VmHWM from [/proc/self/status] — the process peak resident set, in
    kB. [None] where procfs is unavailable. *)
