(** The observability context threaded through engines, certification,
    storms, and the bench harness: one metrics registry, one event sink,
    and an optional live-progress reporter.

    The {!disabled} context is the default everywhere. Instrumented code
    guards every recording with [Ctx.enabled], so a disabled context
    costs one branch per checkpoint — checkpoints sit at wave/trial
    granularity, never per state, which is what keeps the E17 overhead
    column flat. *)

type t

val disabled : t
(** The shared inert context: [enabled] is [false], nothing records. *)

val create : ?sink:Sink.t -> ?progress:Progress.t -> unit -> t
(** An enabled context with a fresh metrics registry. [sink] defaults to
    {!Sink.noop}; without [progress], {!tick} and {!finish_progress} do
    nothing. *)

val enabled : t -> bool
val metrics : t -> Metrics.t
val sink : t -> Sink.t

val counter : t -> string -> Metrics.counter
val gauge : t -> string -> Metrics.gauge
val histogram : t -> string -> Metrics.histogram

val emit : t -> string -> (string * Sink.value) list -> unit
(** Forward an event to the sink; no-op when disabled. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]). *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f] and — when enabled — records its wall
    duration in microseconds into histogram [<name>_us] and emits a
    [span] event [{name; us}]. Exceptions propagate; nothing is
    recorded for a raising [f]. *)

val tick :
  t -> label:string -> states:int -> ?frontier:int -> ?depth:int -> unit -> unit
(** Progress checkpoint; forwarded to the reporter when one is attached. *)

val finish_progress : t -> label:string -> states:int -> unit
(** Closing progress line (unconditional), when a reporter is attached. *)

val metrics_json : t -> extra:(string * Json.t) list -> Json.t
(** [{"meta":{...extra},"elapsed_s":..,"peak_rss_kb":..,"metrics":...}] —
    the machine-readable run summary written by [--metrics-out]. *)

val write_metrics : t -> file:string -> extra:(string * Json.t) list -> unit
(** Write {!metrics_json} to [file].
    @raise Sys_error when the path is unwritable. *)

val close : t -> unit
(** Close the sink (flush the trace file). Idempotent. *)
