(** Minimal JSON values: just enough to render metrics snapshots and
    JSONL trace events, and to parse them back in tests and tooling.
    No external dependency — the container has no yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) rendering. Non-finite floats render as [null]
    — JSON has no representation for them. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse one JSON document; trailing garbage is an error. Numbers
    without [.], [e] or [E] that fit in an OCaml [int] parse as {!Int},
    everything else as {!Float}. [Error msg] carries a position. *)

val member : string -> t -> t option
(** Field lookup in an {!Obj}; [None] on missing field or non-object. *)

val to_int : t -> int option
(** The int value of an {!Int} (or integral {!Float}); [None] otherwise. *)
