(** Computed fault spans (Section 3 of the paper).

    The fault span [T] of a fault class [F] for a program [p] with invariant
    [S] is the closure of [S] under [p ∪ F]: every state a computation can
    be in while faults of the class keep occurring. The paper supplies [T]
    by hand (for stabilizing programs, [T = true]); here it is {e computed},
    so nonmasking [T]-tolerance can be certified exactly — including the
    bounded-fault regime where at most [budget] fault occurrences are
    interleaved with arbitrarily many program steps. The bounded span
    generalizes {!Engine.ball}, which only perturbs the initial state:
    [compute ~budget:k] follows program steps {e between} the perturbations.

    The search is a layered frontier BFS keyed by {!Engine.encode_key}
    (the dense mixed-radix code, or the bit-packed code under an engine's
    [packed_keys]), with depths held in the engine's flat visited-table
    representation ({!Engine.make_visited}) and frontiers in chunked
    {!Flatqueue}s — the same machinery for every engine backend; eager
    and lazy engines differ only in their exploration budget
    ({!Engine.max_states}), so verdicts agree whenever neither overflows.
    Layer [d] holds the states whose cheapest derivation from the roots
    uses exactly [d] fault steps; program successors stay in their layer,
    fault successors go to the next. *)

type t

val compute :
  Engine.t ->
  ?program:Guarded.Compile.program ->
  ?envs:Guarded.Compile.program ->
  ?budget:int ->
  ?resume:Rt.Snapshot.t ->
  faults:Guarded.Compile.program ->
  from:Engine.roots ->
  unit ->
  t
(** Closure of [from] under the fault actions and (when given) the program
    actions. [budget] caps the number of fault steps along any derivation;
    omitted, faults may occur unboundedly (the paper's recurring-fault
    span). [envs] are environment actions (Roohitavaf–Kulkarni): they
    extend the span exactly like program steps — 0-cost closure edges that
    never consume [budget] — and are folded into the span's config hash,
    so checkpoints cannot cross an environment change. [All]/[Pred] roots
    sweep the space, so they require it to fit the engine's budget;
    [Seeds] works on spaces of any size.

    The search polls the engine's guard ({!Engine.guard}) at chunk/wave
    boundaries; a trip raises {!Engine.Interrupted}, carrying (under
    [~snapshots:true]) a ["span"]-kind checkpoint of the layered
    wavefront. [resume] continues from such a checkpoint over the same
    configuration (same actions, budget, codec, salt) to a span
    bit-identical to the uninterrupted run, on either the sequential or
    parallel backend at any job count — the root set is taken from the
    snapshot, so [from] is ignored.
    @raise Engine.Region_overflow when the span (or a root sweep) exceeds
    the engine's state budget.
    @raise Engine.Interrupted when the engine's guard trips.
    @raise Rt.Snapshot.Corrupt when [resume] has the wrong kind or a
    mismatched config hash. *)

val count : t -> int
(** Number of states in the span. *)

val root_count : t -> int
(** Number of root states the search was seeded with. *)

val max_depth : t -> int
(** Largest fault layer reached: the most fault steps any member of the
    span actually needs. [0] when the span equals the program-closure of
    the roots. *)

val depth_histogram : t -> int array
(** [h.(d)] is the number of states first reached with [d] fault steps;
    length [max_depth + 1]. *)

val mem : t -> Guarded.State.t -> bool
(** Span membership. States outside the variable domains are not members. *)

val depth : t -> Guarded.State.t -> int option
(** Fault layer of a member state; [None] for non-members. *)

val iter : t -> (Guarded.State.t -> unit) -> unit
(** Visit every member. The state is a shared buffer; copy it to retain. *)

val nth_key : t -> int -> int
(** Engine key of the [i]-th member {e in iter order} ([0 <= i < count]):
    [iter] visits exactly [decode(nth_key t 0), decode(nth_key t 1), …].
    Lets consumers scan the span by index — chunked, in parallel, without
    materializing the member states. *)

val decode_nth_into : t -> int -> Guarded.State.t -> unit
(** Decode the [i]-th member (iter order) into a caller buffer —
    allocation-free indexed access for streaming scans
    ({!Core.Certify}'s closure check). *)

val states : t -> Guarded.State.t list
(** All members as fresh states — usable as [Engine.Seeds] roots for
    convergence queries over the span. *)
