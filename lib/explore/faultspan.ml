module State = Guarded.State
module Compile = Guarded.Compile

type t = {
  space : Space.t;
  keys : int list;  (** member keys, reverse discovery order *)
  count : int;
  depth_of : (int, int) Hashtbl.t;  (** key -> fault layer of first reach *)
  roots : int;
  max_depth : int;
  histogram : int array;
}

let count t = t.count
let root_count t = t.roots
let max_depth t = t.max_depth
let depth_histogram t = Array.sub t.histogram 0 (t.max_depth + 1)

let mem t s =
  match Space.encode t.space s with
  | key -> Hashtbl.mem t.depth_of key
  | exception Invalid_argument _ -> false

let depth t s =
  match Space.encode t.space s with
  | key -> Hashtbl.find_opt t.depth_of key
  | exception Invalid_argument _ -> None

let iter t f =
  let buf = State.make (Space.env t.space) in
  List.iter
    (fun key ->
      Space.decode_into t.space key buf;
      f buf)
    t.keys

let states t =
  List.rev_map (fun key -> Space.decode t.space key) t.keys

(* Layered 0-1 BFS: program edges cost 0 (stay in the current layer), fault
   edges cost 1 (feed the next layer). Layers are processed in order, so the
   layer a state is first seen in is its minimal fault count. *)
let compute engine ?program ?budget ~faults ~from () =
  let space = Engine.space engine in
  let cap = Engine.max_states engine in
  let prog_actions =
    match program with
    | None -> [||]
    | Some (cp : Compile.program) -> cp.Compile.actions
  in
  let fault_actions = (faults : Compile.program).Compile.actions in
  let depth_of : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let keys = ref [] in
  let count = ref 0 in
  let cur = Queue.create () in
  let next = Queue.create () in
  let visit level target_queue key =
    if not (Hashtbl.mem depth_of key) then begin
      incr count;
      if !count > cap then raise (Engine.Region_overflow !count);
      Hashtbl.add depth_of key level;
      keys := key :: !keys;
      Queue.add key target_queue
    end
  in
  (match from with
  | Engine.Seeds l ->
      List.iter (fun s -> visit 0 cur (Space.encode space s)) l
  | Engine.All | Engine.Pred _ ->
      if Space.size space > cap then
        raise (Engine.Region_overflow (Space.size space));
      let p = match from with Engine.Pred p -> p | _ -> fun _ -> true in
      Space.iter space (fun id s -> if p s then visit 0 cur id));
  let roots = !count in
  let buf = State.make (Space.env space) in
  let post = State.make (Space.env space) in
  let level = ref 0 in
  let continue = ref true in
  while !continue do
    (* Phase 1: complete the program closure of this layer before firing any
       fault edge, so a state program-reachable at this layer is never first
       seen deeper (which would mislabel its depth and, under a budget,
       wrongly prune its fault successors). *)
    let layer_members = ref [] in
    while not (Queue.is_empty cur) do
      let key = Queue.pop cur in
      layer_members := key :: !layer_members;
      Space.decode_into space key buf;
      Array.iter
        (fun (ca : Compile.action) ->
          if ca.enabled buf then begin
            ca.apply_into buf post;
            visit !level cur (Space.encode space post)
          end)
        prog_actions
    done;
    (* Phase 2: fault successors of every member of the completed layer. *)
    let fault_allowed =
      match budget with None -> true | Some b -> !level < b
    in
    if fault_allowed then
      List.iter
        (fun key ->
          Space.decode_into space key buf;
          Array.iter
            (fun (ca : Compile.action) ->
              if ca.enabled buf then begin
                ca.apply_into buf post;
                visit (!level + 1) next (Space.encode space post)
              end)
            fault_actions)
        !layer_members;
    if Queue.is_empty next then continue := false
    else begin
      incr level;
      Queue.transfer next cur
    end
  done;
  let max_depth = !level in
  let histogram = Array.make (max_depth + 1) 0 in
  Hashtbl.iter
    (fun _ d -> histogram.(d) <- histogram.(d) + 1)
    depth_of;
  { space; keys = !keys; count = !count; depth_of; roots; max_depth; histogram }
