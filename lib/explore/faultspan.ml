module State = Guarded.State
module Compile = Guarded.Compile
module Vec = Par.Ivec

type t = {
  engine : Engine.t;
  keys : Vec.t;  (** member keys, discovery order ({!iter} walks it backwards) *)
  count : int;
  depth_of : Flatset.t;  (** key -> fault layer of first reach *)
  roots : int;
  max_depth : int;
  histogram : int array;
}

let count t = t.count
let root_count t = t.roots
let max_depth t = t.max_depth
let depth_histogram t = Array.sub t.histogram 0 (t.max_depth + 1)

let mem t s =
  match Engine.encode_key t.engine s with
  | key -> Flatset.mem t.depth_of key
  | exception Invalid_argument _ -> false

let depth t s =
  match Engine.encode_key t.engine s with
  | key ->
      let d = Flatset.find_def t.depth_of key (-1) in
      if d < 0 then None else Some d
  | exception Invalid_argument _ -> None

(* Members in reverse discovery order — the order [iter] has always
   used (the seed implementation consed keys onto a list), which
   certification output and tests pin down. *)
let iter t f =
  let buf = State.make (Engine.env t.engine) in
  for i = Vec.len t.keys - 1 downto 0 do
    Engine.decode_key_into t.engine (Vec.get t.keys i) buf;
    f buf
  done

let nth_key t i = Vec.get t.keys (t.count - 1 - i)

let decode_nth_into t i buf =
  Engine.decode_key_into t.engine (nth_key t i) buf

let states t =
  List.init t.count (fun i -> Engine.decode_key t.engine (Vec.get t.keys i))

(* Shared observability hooks: one [faultspan.layer] event per completed
   fault layer, plus totals when the span is done. Layer structure is
   bit-identical between the sequential and parallel searches, so the
   event stream is too. *)
let obs_layer obs ~layer ~members ~discovered ~total =
  if Obs.Ctx.enabled obs then begin
    Obs.Metrics.incr (Obs.Ctx.counter obs "faultspan.layers");
    Obs.Ctx.emit obs "faultspan.layer"
      [
        ("layer", Obs.Sink.I layer);
        ("members", Obs.Sink.I members);
        ("discovered", Obs.Sink.I discovered);
      ];
    Obs.Ctx.tick obs ~label:"faultspan" ~states:total ~depth:layer ()
  end

let obs_done obs ~states ~roots ~max_depth =
  if Obs.Ctx.enabled obs then begin
    Obs.Metrics.incr (Obs.Ctx.counter obs "faultspan.spans");
    Obs.Metrics.add (Obs.Ctx.counter obs "faultspan.states") states;
    Obs.Metrics.set_max (Obs.Ctx.gauge obs "faultspan.max_depth") max_depth;
    Obs.Ctx.emit obs "faultspan.done"
      [
        ("states", Obs.Sink.I states);
        ("roots", Obs.Sink.I roots);
        ("max_depth", Obs.Sink.I max_depth);
      ];
    Obs.Ctx.finish_progress obs ~label:"faultspan" ~states
  end

let histogram_of depth_of max_depth =
  let histogram = Array.make (max_depth + 1) 0 in
  Flatset.iter depth_of (fun _ d -> histogram.(d) <- histogram.(d) + 1);
  histogram

(* Root sweeps run in dense id order whatever the key representation;
   under packed keys the id's state buffer is re-encoded. *)
let key_of_id engine id s =
  if Engine.packed_keys engine then Engine.encode_key engine s else id

(* --- span snapshots ---

   A span search can be checkpointed at two kinds of boundary:
   mid-{e closure} (phase 0: the current layer's program closure is
   still draining a FIFO of pending keys) and mid-{e fault} (phase 1:
   the layer's members are being fault-expanded, in reverse pop order).
   Both record: every visited key with its depth (discovery order), the
   accumulated next-layer seeds, and the phase's own pending work — the
   remaining closure FIFO plus the members popped so far (phase 0), or
   the members still awaiting fault expansion {e in processing order}
   (phase 1). The FIFO/wave equivalence that makes region checkpoints
   backend-portable applies layer-by-layer here, so span checkpoints
   also resume on either backend at any job count. *)

let kind_span = "span"

let action_names (cp : Compile.program) =
  Array.to_list
    (Array.map
       (fun (ca : Compile.action) -> Guarded.Action.name ca.Compile.source)
       cp.Compile.actions)

let span_hash engine ?program ?envs ?budget ~faults () =
  let parts =
    kind_span
    :: (match budget with
       | None -> "budget=none"
       | Some b -> Printf.sprintf "budget=%d" b)
    :: ((match program with None -> [] | Some cp -> action_names cp)
       @ (match envs with
         | None -> []
         | Some cp -> "/envs" :: action_names cp)
       @ ("/faults" :: action_names faults))
  in
  Engine.config_hash engine ~parts

let build_span_snapshot ~hash ~phase ~level ~roots ~layer_members ~keys
    ~depth_find ~frontier ~next ~pending =
  let ks = Vec.to_array keys in
  let ds = Array.map depth_find ks in
  {
    Rt.Snapshot.kind = kind_span;
    config_hash = hash;
    meta =
      [
        ("count", Array.length ks);
        ("level", level);
        ("roots", roots);
        ("phase", phase);
        ("layer_members", layer_members);
      ];
    sections =
      [
        ("keys", ks);
        ("depths", ds);
        ("frontier", frontier);
        ("next", next);
        ("pending", pending);
      ];
  }

(* Shared restore: rebuild the visited table (via [add]) and the keys
   vector, and hand back the phase-specific pending work. *)
let restore_span ~hash snap ~add ~keys =
  (match (snap : Rt.Snapshot.t).Rt.Snapshot.kind with
  | k when k = kind_span -> ()
  | k ->
      raise
        (Rt.Snapshot.Corrupt
           (Printf.sprintf
              "snapshot kind %S where %S was expected (written by a \
               different subcommand?)"
              k kind_span)));
  if snap.Rt.Snapshot.config_hash <> hash then
    raise
      (Rt.Snapshot.Corrupt
         "config-hash mismatch: this checkpoint was written under a \
          different model or engine configuration");
  let ks = Rt.Snapshot.section snap "keys" in
  let ds = Rt.Snapshot.section snap "depths" in
  if Array.length ks <> Array.length ds then
    raise (Rt.Snapshot.Corrupt "keys/depths length mismatch");
  if Rt.Snapshot.meta_int snap "count" <> Array.length ks then
    raise (Rt.Snapshot.Corrupt "inconsistent count");
  Array.iteri
    (fun i k ->
      add k ds.(i);
      ignore (Vec.push keys k))
    ks;
  let phase = Rt.Snapshot.meta_int snap "phase" in
  if phase <> 0 && phase <> 1 then
    raise (Rt.Snapshot.Corrupt "implausible phase");
  ( phase,
    Rt.Snapshot.meta_int snap "level",
    Rt.Snapshot.meta_int snap "roots",
    Rt.Snapshot.meta_int snap "layer_members",
    Rt.Snapshot.section snap "frontier",
    Rt.Snapshot.section snap "next",
    Rt.Snapshot.section snap "pending" )

let queue_to_array q =
  let a = Array.make (Flatqueue.length q) 0 in
  let i = ref 0 in
  Flatqueue.iter q (fun k ->
      a.(!i) <- k;
      incr i);
  a

(* Layered 0-1 BFS: program edges cost 0 (stay in the current layer), fault
   edges cost 1 (feed the next layer). Layers are processed in order, so the
   layer a state is first seen in is its minimal fault count. *)
let compute_seq engine ?program ?envs ?budget ?resume ~faults ~from () =
  let obs = Engine.obs engine in
  let guard = Engine.guard engine in
  let guard_on = Rt.Guard.active guard in
  let space = Engine.space engine in
  let cap = Engine.max_states engine in
  let hash = span_hash engine ?program ?envs ?budget ~faults () in
  (* Environment actions ride the 0-cost closure phase: they extend the
     span like program steps and never consume fault budget. *)
  let actions_of = function
    | None -> [||]
    | Some (cp : Compile.program) -> cp.Compile.actions
  in
  let prog_actions = Array.append (actions_of program) (actions_of envs) in
  let fault_actions = (faults : Compile.program).Compile.actions in
  let depth_of = Engine.make_visited engine in
  let keys = Vec.create () in
  let count = ref 0 in
  let cur = Flatqueue.create () in
  let next = Flatqueue.create () in
  let level = ref 0 in
  let roots = ref 0 in
  (* cons order = reverse pop order; phase 2 walks the list head-first *)
  let layer_members = ref [] in
  let n_members = ref 0 in
  let resume_fault = ref None in
  let visit level target_queue key =
    if not (Flatset.mem depth_of key) then begin
      incr count;
      if !count > cap then raise (Engine.Region_overflow !count);
      Flatset.add depth_of key level;
      ignore (Vec.push keys key);
      Flatqueue.push target_queue key
    end
  in
  (match resume with
  | Some snap ->
      let phase, lvl, rts, members_total, frontier, next_a, pending =
        restore_span ~hash snap ~add:(Flatset.add depth_of) ~keys
      in
      count := Vec.len keys;
      level := lvl;
      roots := rts;
      Array.iter (fun k -> Flatqueue.push next k) next_a;
      if phase = 0 then begin
        Array.iter (fun k -> Flatqueue.push cur k) frontier;
        (* pending = members popped so far, in pop order: re-cons them so
           the list is exactly what the uninterrupted run would hold *)
        Array.iter
          (fun k ->
            layer_members := k :: !layer_members;
            incr n_members)
          pending
      end
      else begin
        resume_fault := Some pending;
        n_members := members_total
      end
  | None -> (
      (match from with
      | Engine.Seeds l ->
          List.iter (fun s -> visit 0 cur (Engine.encode_key engine s)) l
      | Engine.All | Engine.Pred _ ->
          if Space.size space > cap then
            raise (Engine.Region_overflow (Space.size space));
          let p = match from with Engine.Pred p -> p | _ -> fun _ -> true in
          Space.iter space (fun id s ->
              if p s then visit 0 cur (key_of_id engine id s)));
      roots := !count));
  let buf = State.make (Space.env space) in
  let post = State.make (Space.env space) in
  let live_bytes () =
    Flatset.bytes depth_of + Flatqueue.bytes cur + Flatqueue.bytes next
  in
  let interrupt reason ~phase ~frontier ~pending ~frontier_size =
    let snapshot =
      if not (Engine.wants_snapshots engine) then None
      else
        Some
          (build_span_snapshot ~hash ~phase ~level:!level ~roots:!roots
             ~layer_members:!n_members ~keys
             ~depth_find:(fun k -> Flatset.find_def depth_of k (-1))
             ~frontier ~next:(queue_to_array next) ~pending)
    in
    raise
      (Engine.Interrupted
         { reason; states_seen = !count; frontier_size; snapshot })
  in
  (* Fault successors of [order.(j ..)], already in processing order. *)
  let fault_expand order =
    let n = Array.length order in
    for j = 0 to n - 1 do
      (if guard_on && j land 1023 = 0 then
         match Rt.Guard.poll guard ~states:!count ~bytes:(live_bytes ()) with
         | None -> ()
         | Some reason ->
             interrupt reason ~phase:1 ~frontier:[||]
               ~pending:(Array.sub order j (n - j))
               ~frontier_size:(n - j));
      let key = order.(j) in
      Engine.decode_key_into engine key buf;
      Array.iter
        (fun (ca : Compile.action) ->
          if ca.enabled buf then begin
            ca.apply_into buf post;
            visit (!level + 1) next (Engine.encode_key engine post)
          end)
        fault_actions
    done
  in
  let continue = ref true in
  while !continue do
    let count_before = !count in
    (match !resume_fault with
    | Some pending ->
        resume_fault := None;
        fault_expand pending
    | None ->
        (* Phase 1: complete the program closure of this layer before firing
           any fault edge, so a state program-reachable at this layer is never
           first seen deeper (which would mislabel its depth and, under a
           budget, wrongly prune its fault successors). *)
        let pops = ref 0 in
        while not (Flatqueue.is_empty cur) do
          (if guard_on && !pops land 1023 = 0 then
             match
               Rt.Guard.poll guard ~states:!count ~bytes:(live_bytes ())
             with
             | None -> ()
             | Some reason ->
                 (* pending members so far, in pop order *)
                 let sofar = Array.make !n_members 0 in
                 let i = ref !n_members in
                 List.iter
                   (fun k ->
                     decr i;
                     sofar.(!i) <- k)
                   !layer_members;
                 interrupt reason ~phase:0 ~frontier:(queue_to_array cur)
                   ~pending:sofar ~frontier_size:(Flatqueue.length cur));
          let key = Flatqueue.pop cur in
          incr pops;
          layer_members := key :: !layer_members;
          incr n_members;
          Engine.decode_key_into engine key buf;
          Array.iter
            (fun (ca : Compile.action) ->
              if ca.enabled buf then begin
                ca.apply_into buf post;
                visit !level cur (Engine.encode_key engine post)
              end)
            prog_actions
        done;
        (* Phase 2: fault successors of every member of the completed layer. *)
        let fault_allowed =
          match budget with None -> true | Some b -> !level < b
        in
        if fault_allowed then fault_expand (Array.of_list !layer_members));
    obs_layer obs ~layer:!level ~members:!n_members
      ~discovered:(!count - count_before) ~total:!count;
    if Flatqueue.is_empty next then continue := false
    else begin
      incr level;
      Flatqueue.transfer next cur;
      layer_members := [];
      n_members := 0
    end
  done;
  let max_depth = !level in
  let histogram = histogram_of depth_of max_depth in
  obs_done obs ~states:!count ~roots:!roots ~max_depth;
  { engine; keys; count = !count; depth_of; roots = !roots; max_depth; histogram }

(* Parallel variant of the same layered search, for engines on the
   [Parallel] backend. Each expansion round — a program-closure wave or a
   layer's fault phase — runs in two phases: phase A expands every source
   state on some worker domain (per-worker compiled actions and state
   buffers; the compiled closures carry private scratch), collecting the
   successor keys that were unseen when probed in the sharded visited set;
   phase B commits them sequentially in the order the sequential search
   would have visited them. Two order quirks of [compute_seq] are
   reproduced deliberately: program-closure waves are FIFO (wave order ×
   action order = the single queue's pop order), and the fault phase walks
   the layer's members in {e reverse} pop order, because the sequential
   code conses members onto a list and never reverses it. The result —
   keys, depths, histogram, even the overflow point — is bit-identical at
   any job count, and checkpoints written at wave boundaries restore on
   either backend. *)
let compute_par engine ?program ?envs ?budget ?resume ~faults ~from () =
  let obs = Engine.obs engine in
  let guard = Engine.guard engine in
  let guard_on = Rt.Guard.active guard in
  let space = Engine.space engine in
  let env = Space.env space in
  let cap = Engine.max_states engine in
  let hash = span_hash engine ?program ?envs ?budget ~faults () in
  Par.Pool.use ?pool:(Engine.pool engine) ~jobs:(Engine.jobs engine)
  @@ fun pool ->
  let jobs = Par.Pool.jobs pool in
  let recompile (cp : Compile.program) w =
    if w = 0 then cp.Compile.actions
    else (Compile.program cp.Compile.source).Compile.actions
  in
  (* env actions join the closure set, after the program's (same order
     as the sequential search's joined array) *)
  let worker_prog =
    Array.init jobs (fun w ->
        let p =
          match program with None -> [||] | Some cp -> recompile cp w
        in
        match envs with
        | None -> p
        | Some cp -> Array.append p (recompile cp w))
  in
  let worker_fault = Array.init jobs (recompile faults) in
  let worker_buf = Array.init jobs (fun _ -> State.make env) in
  let worker_post = Array.init jobs (fun _ -> State.make env) in
  let worker_out = Array.init jobs (fun _ -> Vec.create ()) in
  let depth_of = Par.Shardmap.create () in
  let keys = Vec.create () in
  let count = ref 0 in
  let level = ref 0 in
  let roots = ref 0 in
  let resume_fault = ref None in
  let visit level target key =
    if not (Par.Shardmap.mem depth_of key) then begin
      incr count;
      if !count > cap then raise (Engine.Region_overflow !count);
      Par.Shardmap.add depth_of key level;
      ignore (Vec.push keys key);
      ignore (Vec.push target key)
    end
  in
  (* Expand [src] with per-worker [actions], then commit the candidates in
     source order ([~reverse] for the fault phase) × action order. Phase A
     drops successors already visited when probed; the commit re-probes,
     since an earlier commit of this very round may have claimed the key. *)
  let expand ~reverse worker_actions src level target =
    let len = Vec.len src in
    let succs = Array.make len [||] in
    Par.Pool.parallel_for pool ~n:len (fun ~worker lo hi ->
        let acts = (worker_actions : Compile.action array array).(worker) in
        let buf = worker_buf.(worker) and post = worker_post.(worker) in
        let out = worker_out.(worker) in
        for i = lo to hi - 1 do
          Engine.decode_key_into engine (Vec.get src i) buf;
          Vec.clear out;
          Array.iter
            (fun (ca : Compile.action) ->
              if ca.enabled buf then begin
                ca.apply_into buf post;
                let dst = Engine.encode_key engine post in
                if not (Par.Shardmap.mem depth_of dst) then
                  ignore (Vec.push out dst)
              end)
            acts;
          succs.(i) <- Vec.to_array out
        done);
    if reverse then
      for i = len - 1 downto 0 do
        Array.iter (fun k -> visit level target k) succs.(i)
      done
    else
      for i = 0 to len - 1 do
        Array.iter (fun k -> visit level target k) succs.(i)
      done
  in
  let wave = Vec.create () and next_wave = Vec.create () in
  let members = Vec.create () and next_layer = Vec.create () in
  (match resume with
  | Some snap ->
      let phase, lvl, rts, _members_total, frontier, next_a, pending =
        restore_span ~hash snap ~add:(Par.Shardmap.add depth_of) ~keys
      in
      count := Vec.len keys;
      level := lvl;
      roots := rts;
      Array.iter (fun k -> ignore (Vec.push next_layer k)) next_a;
      if phase = 0 then begin
        Array.iter (fun k -> ignore (Vec.push wave k)) frontier;
        Array.iter (fun k -> ignore (Vec.push members k)) pending
      end
      else resume_fault := Some pending
  | None -> (
      (match from with
      | Engine.Seeds l ->
          List.iter (fun s -> visit 0 wave (Engine.encode_key engine s)) l
      | Engine.All | Engine.Pred _ ->
          if Space.size space > cap then
            raise (Engine.Region_overflow (Space.size space));
          let p = match from with Engine.Pred p -> p | _ -> fun _ -> true in
          let n = Space.size space in
          let packed = Engine.packed_keys engine in
          let classes = Bytes.make n '\000' in
          let packed_key = if packed then Array.make n 0 else [||] in
          Par.Pool.parallel_for pool ~n (fun ~worker lo hi ->
              let buf = worker_buf.(worker) in
              for id = lo to hi - 1 do
                Space.decode_into space id buf;
                if p buf then begin
                  Bytes.unsafe_set classes id '\001';
                  if packed then
                    packed_key.(id) <- Engine.encode_key engine buf
                end
              done);
          for id = 0 to n - 1 do
            if Bytes.unsafe_get classes id = '\001' then
              visit 0 wave (if packed then packed_key.(id) else id)
          done);
      roots := !count));
  let live_bytes () =
    Par.Shardmap.bytes depth_of + Vec.bytes wave + Vec.bytes next_wave
    + Vec.bytes members + Vec.bytes next_layer
  in
  let interrupt reason ~phase ~frontier ~pending ~frontier_size =
    let snapshot =
      if not (Engine.wants_snapshots engine) then None
      else
        Some
          (build_span_snapshot ~hash ~phase ~level:!level ~roots:!roots
             ~layer_members:(Vec.len members) ~keys
             ~depth_find:(fun k -> Par.Shardmap.find_def depth_of k (-1))
             ~frontier ~next:(Vec.to_array next_layer) ~pending)
    in
    raise
      (Engine.Interrupted
         { reason; states_seen = !count; frontier_size; snapshot })
  in
  let poll_boundary ~phase ~frontier ~pending ~frontier_size =
    if guard_on then
      match Rt.Guard.poll guard ~states:!count ~bytes:(live_bytes ()) with
      | None -> ()
      | Some reason -> interrupt reason ~phase ~frontier ~pending ~frontier_size
  in
  let continue = ref true in
  while !continue do
    let count_before = !count in
    (match !resume_fault with
    | Some pending ->
        resume_fault := None;
        (* finish the interrupted fault phase: [pending] is already in
           processing order, so expand it forward *)
        let pv = Vec.of_array pending in
        expand ~reverse:false worker_fault pv (!level + 1) next_layer
    | None ->
        while Vec.len wave > 0 do
          (* wave-boundary cancellation point: the pending wave is the
             closure FIFO's remaining content *)
          poll_boundary ~phase:0 ~frontier:(Vec.to_array wave)
            ~pending:(Vec.to_array members) ~frontier_size:(Vec.len wave);
          for i = 0 to Vec.len wave - 1 do
            ignore (Vec.push members (Vec.get wave i))
          done;
          expand ~reverse:false worker_prog wave !level next_wave;
          Vec.clear wave;
          Vec.swap wave next_wave
        done;
        let fault_allowed =
          match budget with None -> true | Some b -> !level < b
        in
        if fault_allowed then begin
          (* phase boundary: pending fault work is the member list in
             processing (reverse pop) order *)
          (if guard_on then
             let n = Vec.len members in
             let pending = Array.init n (fun j -> Vec.get members (n - 1 - j)) in
             poll_boundary ~phase:1 ~frontier:[||] ~pending ~frontier_size:n);
          expand ~reverse:true worker_fault members (!level + 1) next_layer
        end);
    obs_layer obs ~layer:!level ~members:(Vec.len members)
      ~discovered:(!count - count_before) ~total:!count;
    if Vec.len next_layer = 0 then continue := false
    else begin
      incr level;
      Vec.clear members;
      Vec.swap wave next_layer
    end
  done;
  let max_depth = !level in
  (* fold the sharded table into the same flat representation the
     sequential search builds, so the record is backend-agnostic *)
  let depth_flat = Engine.make_visited engine in
  Par.Shardmap.iter depth_of (fun k d -> Flatset.add depth_flat k d);
  let histogram = histogram_of depth_flat max_depth in
  obs_done obs ~states:!count ~roots:!roots ~max_depth;
  {
    engine;
    keys;
    count = !count;
    depth_of = depth_flat;
    roots = !roots;
    max_depth;
    histogram;
  }

let compute engine ?program ?envs ?budget ?resume ~faults ~from () =
  match Engine.backend engine with
  | Engine.Parallel ->
      compute_par engine ?program ?envs ?budget ?resume ~faults ~from ()
  | Engine.Eager | Engine.Lazy ->
      compute_seq engine ?program ?envs ?budget ?resume ~faults ~from ()
