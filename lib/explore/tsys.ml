module State = Guarded.State
module Compile = Guarded.Compile

type t = {
  space : Space.t;
  program : Compile.program;
  offsets : int array; (* length n+1 *)
  dsts : int array;
  acts : int array;
}

let build ?(guard = Rt.Guard.inert) (cp : Compile.program) space =
  let n = Space.size space in
  let n_actions = Array.length cp.actions in
  let counts = Array.make (n + 1) 0 in
  let buf = State.make (Space.env space) in
  let guard_on = Rt.Guard.active guard in
  (* Pass 1: count transitions per state. *)
  for id = 0 to n - 1 do
    if guard_on && id land 8191 = 0 then
      Rt.Guard.check guard ~states:id ~bytes:(8 * (n + 1));
    Space.decode_into space id buf;
    for a = 0 to n_actions - 1 do
      if cp.actions.(a).enabled buf then counts.(id) <- counts.(id) + 1
    done
  done;
  let offsets = Array.make (n + 1) 0 in
  for id = 0 to n - 1 do
    offsets.(id + 1) <- offsets.(id) + counts.(id)
  done;
  let m = offsets.(n) in
  let dsts = Array.make m 0 and acts = Array.make m 0 in
  let post = State.make (Space.env space) in
  (* Pass 2: fill. *)
  let cursor = Array.copy offsets in
  for id = 0 to n - 1 do
    if guard_on && id land 8191 = 0 then
      Rt.Guard.check guard ~states:id ~bytes:(8 * ((2 * m) + (2 * (n + 1))));
    Space.decode_into space id buf;
    for a = 0 to n_actions - 1 do
      let ca = cp.actions.(a) in
      if ca.enabled buf then begin
        ca.apply_into buf post;
        let dst = Space.encode space post in
        let k = cursor.(id) in
        dsts.(k) <- dst;
        acts.(k) <- a;
        cursor.(id) <- k + 1
      end
    done
  done;
  { space; program = cp; offsets; dsts; acts }

let space t = t.space
let program t = t.program
let state_count t = Array.length t.offsets - 1
let transition_count t = Array.length t.dsts

let iter_succ t id f =
  for k = t.offsets.(id) to t.offsets.(id + 1) - 1 do
    f ~action:t.acts.(k) ~dst:t.dsts.(k)
  done

let succ t id =
  let acc = ref [] in
  for k = t.offsets.(id + 1) - 1 downto t.offsets.(id) do
    acc := (t.acts.(k), t.dsts.(k)) :: !acc
  done;
  !acc

let out_degree t id = t.offsets.(id + 1) - t.offsets.(id)
let is_terminal t id = out_degree t id = 0

let reachable t roots =
  let seen = Bitset.create (state_count t) in
  let queue = Queue.create () in
  List.iter
    (fun id ->
      if not (Bitset.mem seen id) then begin
        Bitset.add seen id;
        Queue.add id queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    iter_succ t id (fun ~action:_ ~dst ->
        if not (Bitset.mem seen dst) then begin
          Bitset.add seen dst;
          Queue.add dst queue
        end)
  done;
  seen

let region_graph_full t ~member =
  let n = state_count t in
  let state_to_node = Array.make n (-1) in
  let node_count = ref 0 in
  for id = 0 to n - 1 do
    if member id then begin
      state_to_node.(id) <- !node_count;
      incr node_count
    end
  done;
  let node_to_state = Array.make !node_count 0 in
  for id = 0 to n - 1 do
    if state_to_node.(id) >= 0 then node_to_state.(state_to_node.(id)) <- id
  done;
  let g = Dgraph.Digraph.create !node_count in
  Array.iteri
    (fun id node ->
      if node >= 0 then
        iter_succ t id (fun ~action ~dst ->
            if state_to_node.(dst) >= 0 then
              Dgraph.Digraph.add_edge g ~src:node ~dst:state_to_node.(dst)
                action))
    state_to_node;
  (g, node_to_state, fun id -> state_to_node.(id))

let region_graph t ~member =
  let g, _, _ = region_graph_full t ~member in
  g
