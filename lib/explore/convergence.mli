(** Convergence checking (Section 3 of the paper).

    The convergence requirement of [T]-tolerance for [S]: every computation
    that starts at a state where [T] holds reaches a state where [S] holds.
    Both checks run against an exploration {!Engine} — the eager CSR
    backend or the lazy frontier backend — and are backend-agnostic: the
    engines are equivalence-tested to return identical verdicts.

    {b Without fairness} the check is exact on finite instances: every
    maximal interleaving from the roots reaches [S] iff, in the transition
    graph restricted to the reachable [¬S] region, (a) no state is terminal
    and (b) there is no cycle. The paper's concluding remarks observe that
    its derived programs converge even without fairness; this checker is how
    we test that claim (experiment E8).

    {b With weak fairness} (every continuously enabled action is eventually
    executed — the paper's computation model of Section 2) we use a sound
    criterion: every SCC of the [¬S] region must have an action that is
    enabled at every state of the SCC and whose execution always leaves the
    SCC. If an SCC lacks one, the verdict is [Unknown] (the criterion is
    sufficient, not necessary). *)

type stats = {
  region_states : int;
      (** Reachable states violating the target predicate. *)
  explored : int;
      (** All states the engine visited (members or not) — for the lazy
          backend this is the peak memory driver. *)
  worst_case_steps : int option;
      (** Longest interleaving before the target necessarily holds; [None]
          when only fair convergence was established (an unfair daemon can
          loop, so no bound exists). *)
}

type failure =
  | Deadlock of Guarded.State.t
      (** A maximal computation ends in this [¬target] state. *)
  | Livelock of Guarded.State.t list
      (** A reachable cycle that never meets the target; the list is the
          cycle's states in order. *)

type verdict =
  | Converges of stats
  | Fails of failure
  | Unknown of Guarded.State.t list
      (** Sample states of an SCC the fair criterion could not discharge. *)

val check_unfair :
  ?resume:Rt.Snapshot.t ->
  Engine.t ->
  Guarded.Compile.program ->
  from:Engine.roots ->
  target:(Guarded.State.t -> bool) ->
  (stats, failure) result
(** Exact check: do all maximal interleavings from [from] reach [target]?
    [resume] continues the underlying region search from a checkpoint
    written by an interrupted run (see {!Engine.region}); the verdict is
    bit-identical to an uninterrupted check.
    @raise Engine.Region_overflow when a lazy engine exceeds its budget.
    @raise Engine.Interrupted when the engine's guard trips. *)

val check_fair :
  Engine.t ->
  Guarded.Compile.program ->
  from:Engine.roots ->
  target:(Guarded.State.t -> bool) ->
  verdict
(** First runs the exact unfair analysis (unfair convergence implies fair);
    on a livelock, applies the SCC escape criterion — on the {e same}
    region, built once. [Fails (Deadlock _)] is definitive under fairness
    too. *)

val pp_failure : Guarded.Env.t -> Format.formatter -> failure -> unit
val pp_verdict : Guarded.Env.t -> Format.formatter -> verdict -> unit
