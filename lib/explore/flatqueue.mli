(** Chunked streaming FIFO of ints — the frontier queue of the lazy
    search, replacing [int Queue.t] (a 3-word boxed cell per element)
    with recycled flat chunks (8 bytes per element plus one chunk of
    slack). Pushes go into the back chunk, pops drain the front chunk;
    full chunks in between wait in a (chunk-granularity, hence cheap)
    boxed queue, and drained chunks are recycled into the next push
    instead of churning the GC. *)

type t

exception Empty

val create : ?chunk:int -> unit -> t
(** [chunk] (default 16384) is the elements-per-chunk granularity. *)

val push : t -> int -> unit
val pop : t -> int
(** Dequeue the oldest element. @raise Empty on an empty queue. *)

val is_empty : t -> bool
val length : t -> int
val clear : t -> unit

val iter : t -> (int -> unit) -> unit
(** Visit every queued element front-to-back without consuming it —
    how checkpoints capture the pending frontier. *)

val transfer : t -> t -> unit
(** [transfer src dst] moves every element of [src] to the back of
    [dst], leaving [src] empty — [Queue.transfer]'s contract, O(1) when
    [dst] is empty (the layered searches' frontier flip). *)

val bytes : t -> int
(** Current heap footprint of the chunk storage. *)

val peak_bytes : t -> int
(** High-water footprint since creation — what the frontier actually
    cost at the widest BFS level. *)
