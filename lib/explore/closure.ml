module State = Guarded.State
module Compile = Guarded.Compile

type violation = {
  pre : Guarded.State.t;
  action : Guarded.Action.t;
  post : Guarded.State.t;
}

type scope =
  | Whole_space
  | Reachable of Guarded.Compile.program * Engine.roots

let pp_violation env ppf v =
  Format.fprintf ppf "@[<v>action %s violates the predicate:@,pre  = %a@,post = %a@]"
    (Guarded.Action.name v.action) (State.pp env) v.pre (State.pp env) v.post

let iter_scope engine scope f =
  match scope with
  | Whole_space -> Engine.iter_states engine f
  | Reachable (cp, from) -> Engine.iter_reachable engine cp ~from f

let action_preserves ?(given = fun _ -> true) ?(scope = Whole_space) engine
    (ca : Compile.action) ~pred =
  let post = State.make (Engine.env engine) in
  let result = ref (Ok ()) in
  (try
     iter_scope engine scope (fun s ->
         if given s && pred s && ca.enabled s then begin
           ca.apply_into s post;
           if not (pred post) then begin
             result :=
               Error
                 { pre = State.copy s; action = ca.source; post = State.copy post };
             raise Exit
           end
         end)
   with Exit -> ());
  !result

let program_closed ?given ?scope engine (cp : Compile.program) ~pred =
  let rec go i =
    if i >= Array.length cp.actions then Ok ()
    else
      match action_preserves ?given ?scope engine cp.actions.(i) ~pred with
      | Ok () -> go (i + 1)
      | Error _ as e -> e
  in
  go 0
