module State = Guarded.State
module Compile = Guarded.Compile

type stats = {
  region_states : int;
  explored : int;
  worst_case_steps : int option;
}

type failure =
  | Deadlock of Guarded.State.t
  | Livelock of Guarded.State.t list

type verdict =
  | Converges of stats
  | Fails of failure
  | Unknown of Guarded.State.t list

(* First terminal member of the region, scanning with early exit. *)
let find_deadlock engine (region : Engine.region) =
  let n = Array.length region.node_key in
  let rec go i =
    if i >= n then None
    else if region.terminal.(i) then
      Some (Deadlock (Engine.decode_key engine region.node_key.(i)))
    else go (i + 1)
  in
  go 0

(* The exact unfair analysis of an already-built region: converges iff no
   member is terminal and the member graph is acyclic. *)
let analyze_unfair engine (region : Engine.region) =
  match find_deadlock engine region with
  | Some f -> Error f
  | None -> (
      match Dgraph.Topo.find_cycle region.graph with
      | Some nodes ->
          Error
            (Livelock
               (List.map
                  (fun v -> Engine.decode_key engine region.node_key.(v))
                  nodes))
      | None ->
          let region_states = Array.length region.node_key in
          let worst =
            if region_states = 0 then 0
            else
              match Dgraph.Topo.longest_path_lengths region.graph with
              | Some dist -> Array.fold_left max 0 dist + 1
              | None -> assert false (* acyclic: find_cycle returned None *)
          in
          Ok
            {
              region_states;
              explored = region.explored;
              worst_case_steps = Some worst;
            })

let check_unfair ?resume engine cp ~from ~target =
  analyze_unfair engine (Engine.region ?resume engine cp ~from ~target)

(* Weak-fairness escape criterion for one SCC: an action enabled at every
   state of the component whose execution always leaves the component.
   Decode/post buffers are reused across all (node, action) pairs. *)
let scc_has_uniform_exit engine cp (region : Engine.region)
    (scc : Dgraph.Scc.t) comp members =
  let env = Engine.env engine in
  let buf = State.make env in
  let post = State.make env in
  let in_same_component node =
    node >= 0 && scc.Dgraph.Scc.component.(node) = comp
  in
  let action_works (ca : Compile.action) =
    List.for_all
      (fun node ->
        Engine.decode_key_into engine region.node_key.(node) buf;
        ca.enabled buf
        &&
        begin
          ca.apply_into buf post;
          not
            (in_same_component (region.node_of_key (Engine.encode_key engine post)))
        end)
      members
  in
  Array.exists action_works cp.Compile.actions

let check_fair engine cp ~from ~target =
  let region = Engine.region engine cp ~from ~target in
  match analyze_unfair engine region with
  | Ok stats -> Converges stats
  | Error (Deadlock _ as f) -> Fails f
  | Error (Livelock _) -> (
      let scc = Dgraph.Scc.compute region.graph in
      let bad = ref None in
      (try
         for comp = 0 to scc.Dgraph.Scc.count - 1 do
           let members = scc.Dgraph.Scc.members.(comp) in
           let nontrivial =
             match members with
             | [ v ] -> Dgraph.Digraph.has_self_loop region.graph v
             | _ -> true
           in
           if
             nontrivial
             && not (scc_has_uniform_exit engine cp region scc comp members)
           then begin
             bad := Some members;
             raise Exit
           end
         done
       with Exit -> ());
      match !bad with
      | Some members ->
          let sample =
            List.filteri (fun i _ -> i < 10) members
            |> List.map (fun v -> Engine.decode_key engine region.node_key.(v))
          in
          Unknown sample
      | None ->
          Converges
            {
              region_states = Array.length region.node_key;
              explored = region.explored;
              worst_case_steps = None;
            })

let pp_failure env ppf = function
  | Deadlock s ->
      Format.fprintf ppf "@[<v>deadlock outside target at %a@]" (State.pp env)
        s
  | Livelock states ->
      Format.fprintf ppf "@[<v>livelock outside target:@,%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut (State.pp env))
        states

let pp_verdict env ppf = function
  | Converges { region_states; worst_case_steps; _ } ->
      Format.fprintf ppf "converges (region %d states%s)" region_states
        (match worst_case_steps with
        | Some w -> Printf.sprintf ", worst case %d steps" w
        | None -> ", fair only")
  | Fails f -> pp_failure env ppf f
  | Unknown _ -> Format.pp_print_string ppf "unknown (fair criterion failed)"
