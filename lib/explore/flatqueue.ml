exception Empty

(* Invariants: when [front == back] (physically) the data is
   [front.(head .. tail)] and [mid] is empty; otherwise the data is
   [front.(head .. fstop)] ++ the full chunks of [mid] ++
   [back.(0 .. tail)]. [back] always fills from 0, so an exhausted
   front can adopt it directly. One drained chunk is kept in [spare]
   for the next push instead of being dropped to the GC. *)
type t = {
  chunk : int;
  mid : int array Queue.t;
  mutable front : int array;
  mutable head : int;
  mutable fstop : int;
  mutable back : int array;
  mutable tail : int;
  mutable len : int;
  mutable spare : int array option;
  mutable peak : int;
}

let create ?(chunk = 16384) () =
  if chunk < 1 then invalid_arg "Flatqueue.create: chunk must be positive";
  let c = Array.make chunk 0 in
  {
    chunk;
    mid = Queue.create ();
    front = c;
    head = 0;
    fstop = 0;
    back = c;
    tail = 0;
    len = 0;
    spare = None;
    peak = 8 * chunk;
  }

let length t = t.len
let is_empty t = t.len = 0

let live_chunks t =
  (if t.front == t.back then 1 else 2 + Queue.length t.mid)
  + match t.spare with Some _ -> 1 | None -> 0

let bytes t = 8 * t.chunk * live_chunks t
let peak_bytes t = max t.peak (bytes t)

let fresh_chunk t =
  match t.spare with
  | Some c ->
      t.spare <- None;
      c
  | None -> Array.make t.chunk 0

let push t x =
  if t.tail = t.chunk then begin
    (if t.front == t.back then t.fstop <- t.chunk
     else Queue.add t.back t.mid);
    t.back <- fresh_chunk t;
    t.tail <- 0;
    let b = bytes t in
    if b > t.peak then t.peak <- b
  end;
  t.back.(t.tail) <- x;
  t.tail <- t.tail + 1;
  t.len <- t.len + 1

let rec pop t =
  if t.len = 0 then raise Empty;
  if t.front == t.back then begin
    let x = t.front.(t.head) in
    t.head <- t.head + 1;
    t.len <- t.len - 1;
    if t.head >= t.tail then begin
      t.head <- 0;
      t.tail <- 0
    end;
    x
  end
  else if t.head >= t.fstop then begin
    (* front drained: recycle it and adopt the next chunk *)
    t.spare <- Some t.front;
    (match Queue.take_opt t.mid with
    | Some c ->
        t.front <- c;
        t.fstop <- t.chunk
    | None -> t.front <- t.back);
    t.head <- 0;
    pop t
  end
  else begin
    let x = t.front.(t.head) in
    t.head <- t.head + 1;
    t.len <- t.len - 1;
    x
  end

let iter t f =
  if t.len > 0 then
    if t.front == t.back then
      for i = t.head to t.tail - 1 do
        f t.front.(i)
      done
    else begin
      for i = t.head to t.fstop - 1 do
        f t.front.(i)
      done;
      Queue.iter (fun c -> Array.iter f c) t.mid;
      for i = 0 to t.tail - 1 do
        f t.back.(i)
      done
    end

let clear t =
  Queue.clear t.mid;
  t.front <- t.back;
  t.head <- 0;
  t.fstop <- 0;
  t.tail <- 0;
  t.len <- 0

let transfer src dst =
  if dst.len = 0 && src.chunk = dst.chunk then begin
    (* the frontier flip: O(1) structure exchange *)
    let fr = dst.front and hd = dst.head and fs = dst.fstop in
    let bk = dst.back and tl = dst.tail and ln = dst.len in
    Queue.transfer src.mid dst.mid;
    dst.front <- src.front;
    dst.head <- src.head;
    dst.fstop <- src.fstop;
    dst.back <- src.back;
    dst.tail <- src.tail;
    dst.len <- src.len;
    if dst.peak < src.peak then dst.peak <- src.peak;
    src.front <- fr;
    src.head <- hd;
    src.fstop <- fs;
    src.back <- bk;
    src.tail <- tl;
    src.len <- ln
  end
  else
    while src.len > 0 do
      push dst (pop src)
    done
