(** Transition systems.

    The complete step relation of a program over an enumerated state space:
    for each state id and each enabled action, the id of the post-state.
    Stored in compressed-sparse-row form; analyses that need graph
    algorithms materialize the (sub)graphs they care about. *)

type t

val build : ?guard:Rt.Guard.t -> Guarded.Compile.program -> Space.t -> t
(** Explore every state once; cost O(states × actions). [guard]
    (default {!Rt.Guard.inert}) is polled during both CSR passes; a
    trip raises {!Rt.Cancel.Cancelled} — the partial relation is not
    resumable, so eager interruptions carry no snapshot.
    @raise Guarded.State.Domain_violation if some action pushes an in-domain
    state out of its domains — a modeling error worth failing loudly on. *)

val space : t -> Space.t
val program : t -> Guarded.Compile.program
val state_count : t -> int
val transition_count : t -> int

val iter_succ : t -> int -> (action:int -> dst:int -> unit) -> unit
val succ : t -> int -> (int * int) list
(** [(action index, destination id)] pairs. *)

val out_degree : t -> int -> int
val is_terminal : t -> int -> bool

val reachable : t -> int list -> Bitset.t
(** Forward closure of a set of state ids. *)

val region_graph : t -> member:(int -> bool) -> int Dgraph.Digraph.t
(** The subgraph induced on [{ id | member id }]: nodes are re-indexed
    densely; use the returned mapping functions below. Edge labels are
    action indices. *)

val region_graph_full :
  t ->
  member:(int -> bool) ->
  int Dgraph.Digraph.t * int array * (int -> int)
(** [(graph, node_to_state, state_to_node)]: the induced subgraph together
    with both direction mappings. [state_to_node] returns [-1] for
    non-members. *)
