(** Enumerable state spaces.

    A program over finite domains has [Π size(domain)] states; this module
    gives every state a dense integer id via mixed-radix encoding, so the
    checker can index per-state data with arrays rather than hash tables.

    For stabilizing programs the fault span is [true]: the state space
    {e is} the fault span, so exhaustively checking all ids checks all
    corrupted states the paper's fault model can produce (faults keep each
    variable within its domain; that is what "domain" means in Section 2). *)

type t

exception Too_large of float
(** Raised by [create] when the space exceeds the cap; carries the size. *)

val create : ?max_states:int -> Guarded.Env.t -> t
(** Build the enumeration for an environment. [max_states] defaults to
    [2_000_000]. @raise Too_large when the product of domain sizes exceeds
    the cap (or {!encodable_max}, whichever is smaller). *)

val create_unbounded : Guarded.Env.t -> t
(** Build the mixed-radix encoding without the [max_states] cap. The
    resulting space supports {!encode}/{!decode} but is generally too big
    to materialize arrays over: it is meant for on-the-fly engines that
    key hash tables by state code. @raise Too_large only when the product
    of domain sizes exceeds {!encodable_max} (encoding would overflow). *)

val encodable_max : int
(** Largest state count whose mixed-radix codes fit in an OCaml [int]. *)

val env : t -> Guarded.Env.t
val size : t -> int

val codec : t -> Codec.t
(** The underlying codec; the space's own {!encode}/{!decode} are its
    dense layout. Engines use this to derive packed keys for huge-space
    exploration without re-deriving the per-slot layout. *)

val encode : t -> Guarded.State.t -> int
(** @raise Invalid_argument if some variable is outside its domain. *)

val decode : t -> int -> Guarded.State.t
val decode_into : t -> int -> Guarded.State.t -> unit
(** Fill an existing state buffer; avoids allocation in the checker loop. *)

val iter : t -> (int -> Guarded.State.t -> unit) -> unit
(** Visit every state in id order. The state value is a shared buffer —
    callers must copy it if they retain it. *)

val satisfying : t -> (Guarded.State.t -> bool) -> int list
(** Ids of all states satisfying the predicate. *)

val count_satisfying : t -> (Guarded.State.t -> bool) -> int
