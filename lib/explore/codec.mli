(** State codecs: one audited translation between [Guarded.State.t] and
    machine integers, sized from the finite domains of an environment.

    Three layouts over the same per-slot data:

    - {b Dense} (mixed-radix): slot [i] contributes [digit_i * weight_i]
      with [weight_i = Π_{j<i} base_j]. Codes are the contiguous range
      [0 .. Π base_i - 1] — the id space the eager backend's CSR arrays
      and the direct-mapped visited tables index by. Available whenever
      the product of domain sizes fits {!Space.encodable_max} ([2^60]).

    - {b Packed} (bit fields): slot [i] contributes
      [digit_i lsl shift_i] with [ceil(log2 base_i)] bits per slot.
      Decoding is shift/mask instead of div/mod, but the code range is
      sparse: packed codes only key hash tables, never arrays. Packed
      needs at least as many bits as dense ([Σ ceil(log2 b_i) ≥
      log2 Π b_i]), so it is a decode-speed representation, not a
      capacity extension. Available when the fields fit 62 bits (packed
      codes stay non-negative OCaml ints).

    - {b Wide} (two words): the packed fields split across two 62-bit
      words for environments up to 124 bits — the spill format for
      future disk/mmap state stores. No engine uses it yet; it is
      tested and kept in lockstep with the one-word layouts.

    Layout availability is explicit: [require_*] raises the typed
    {!Overflow} instead of silently wrapping past the word size (the
    enforcement the 2^60 cap previously only had in documentation, via
    float comparison at space construction). All encoders raise
    [Invalid_argument] on a state outside its domains, like
    [Space.encode] always has. *)

type t

exception Overflow of { layout : string; bits : int; states : float }
(** A layout cannot represent this environment: [bits] is the width the
    layout would need, [states] the (possibly huge, hence float) state
    count. *)

val of_env : Guarded.Env.t -> t
(** Size the codec from an environment's variable domains. Never raises:
    availability of each layout is queried (or enforced) separately. *)

val env : t -> Guarded.Env.t

val states : t -> float
(** Product of the domain sizes, as a float (may exceed any int). *)

val slots : t -> int

val dense_bits : t -> int
(** Bits of the largest dense code, [ceil(log2 states)]; [> 62] when the
    dense layout is unavailable (capped at 126 to avoid float overflow
    games). *)

val packed_bits : t -> int
(** Total bit-field width, [Σ ceil(log2 base_i)]. *)

val dense_ok : t -> bool
(** Dense codes fit an OCaml int: [states <= Space.encodable_max]. *)

val packed_ok : t -> bool
(** Packed codes fit one non-negative OCaml int: [packed_bits <= 62]. *)

val wide_ok : t -> bool
(** The packed fields, laid out word-aligned (no field straddles the
    boundary), fit two 62-bit words. Always true when
    [packed_bits <= 63]; bounded above by [packed_bits <= 124]. *)

val require_dense : t -> unit
(** @raise Overflow when {!dense_ok} is false. *)

val require_packed : t -> unit
(** @raise Overflow when {!packed_ok} is false. *)

val require_wide : t -> unit
(** @raise Overflow when {!wide_ok} is false. *)

val dense_size : t -> int
(** The dense code range as an int. @raise Overflow when not {!dense_ok}. *)

val encode_dense : t -> Guarded.State.t -> int
(** @raise Invalid_argument if some variable is outside its domain. *)

val decode_dense_into : t -> int -> Guarded.State.t -> unit

val encode_packed : t -> Guarded.State.t -> int
(** @raise Invalid_argument if some variable is outside its domain. *)

val decode_packed_into : t -> int -> Guarded.State.t -> unit

val encode_wide : t -> Guarded.State.t -> int * int
(** [(lo, hi)]: word-aligned fields, low word first.
    @raise Overflow when not {!wide_ok}.
    @raise Invalid_argument if some variable is outside its domain. *)

val decode_wide_into : t -> int * int -> Guarded.State.t -> unit

val pp_layout : Format.formatter -> t -> unit
(** Render the per-slot layout table (base, bits, shift, weight) — the
    diagram DESIGN.md's state-storage section refers to. *)
