(** Closure checking (Section 3 of the paper).

    A state predicate [R] is closed in a program iff every action preserves
    [R]: from any state where the action is enabled and [R] holds,
    execution yields a state where [R] holds. By default the check sweeps
    every in-domain state, so a success is a proof for that instance and a
    failure carries a concrete counterexample step.

    On spaces too large to sweep, restrict the check to a {!scope}: the
    states reachable from a root set under a program's actions. When the
    roots include every state satisfying [given ∧ pred] this is equivalent
    to the full sweep (a violation can only fire at such a state); when
    they do not, the result is a proof for the explored region only.

    The optional [given] hypothesis restricts the check to states satisfying
    it — Theorem 3's obligations have the form "preserves [c] {e whenever
    all constraints in lower layers hold}". *)

type violation = {
  pre : Guarded.State.t;
  action : Guarded.Action.t;
  post : Guarded.State.t;
}

(** What part of the state space the check covers. *)
type scope =
  | Whole_space  (** every in-domain state (the default) *)
  | Reachable of Guarded.Compile.program * Engine.roots
      (** only states reachable from the roots under the program *)

val pp_violation : Guarded.Env.t -> Format.formatter -> violation -> unit

val action_preserves :
  ?given:(Guarded.State.t -> bool) ->
  ?scope:scope ->
  Engine.t ->
  Guarded.Compile.action ->
  pred:(Guarded.State.t -> bool) ->
  (unit, violation) result
(** Does this action preserve [pred] (under hypothesis [given])? Stops at
    the first violation.
    @raise Engine.Region_overflow when a lazy engine exceeds its budget. *)

val program_closed :
  ?given:(Guarded.State.t -> bool) ->
  ?scope:scope ->
  Engine.t ->
  Guarded.Compile.program ->
  pred:(Guarded.State.t -> bool) ->
  (unit, violation) result
(** Is [pred] closed under every action of the program? Returns the first
    violating step otherwise. *)
