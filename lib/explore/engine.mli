(** Pluggable exploration engines.

    The convergence and closure checkers only ever need the states
    {e reachable} from a set of roots; how those states are found is a
    strategy choice:

    - {b Eager} (the classical backend): enumerate the whole mixed-radix
      state space once, build the complete transition relation in CSR form
      ({!Tsys}), and answer every query by array indexing. Fast per query,
      but memory and build time are O(states × actions) regardless of how
      small the interesting region is, and the space must fit under the
      [max_states] cap (2M by default).

    - {b Lazy} (on-the-fly frontier search): generate successors on demand
      with the compiled actions on a reusable state buffer, keeping a
      hashed visited set keyed by {!Space.encode}. Only discovered states
      cost anything, so instances far beyond the eager cap get verdicts as
      long as the {e reachable region} from the given roots stays under the
      exploration budget.

    - {b Parallel} (level-synchronized multicore frontier search): the
      lazy search split over a {!Par.Pool} of worker domains. Each BFS
      level expands its frontier in parallel against a sharded visited
      set ({!Par.Shardmap}), then commits discoveries sequentially in
      frontier order × action order — exactly the lazy backend's FIFO
      discovery order — so the resulting {!region} (node numbering, edge
      order, explored count, even the overflow point) is bit-identical
      to [Lazy] at any job count.

    All backends produce the same {!region} record, so every analysis
    (deadlock, cycle, SCC escape, closure) is written once against this
    interface. An equivalence test suite asserts identical verdicts. *)

type backend = Eager | Lazy | Parallel

(** Visited-set representation for the lazy and parallel backends (the
    eager backend's CSR relation is its own storage):

    - [Direct]: a flat [Bigarray] of int32 node ids indexed by dense
      state code — 4 bytes per state of the {e whole} dense range,
      regardless of how many states the search reaches. Unbeatable when
      most of the space is reachable; needs the dense range to be
      materializable (at most [2^30] slots).
    - [Probed]: an open-addressing flat table ({!Flatset} over
      {!Par.Flattbl}) sized by what the search actually visits —
      roughly 16-32 bytes per {e visited} state at the resting load
      factor. The only choice for sparse regions of huge spaces.
    - [Auto] (default): [Direct] when the dense range has at most
      [2^28] slots {e and} is no more than 8× the exploration budget
      (so the up-front array cannot dwarf what the budget allows the
      search to touch); [Probed] otherwise.

    The choice never affects results: discovery order, node numbering,
    edge order, and overflow points are storage-invariant. *)
type storage = Auto | Direct | Probed

type t

val create :
  ?backend:backend ->
  ?max_states:int ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?storage:storage ->
  ?packed_keys:bool ->
  ?obs:Obs.Ctx.t ->
  ?guard:Rt.Guard.t ->
  ?snapshots:bool ->
  ?salt:string ->
  Guarded.Env.t ->
  t
(** Build an engine for an environment. [max_states] (default [2_000_000])
    caps the enumerated space for the eager backend and the number of
    {e visited} states for the lazy and parallel backends. [jobs]
    (default {!Par.Pool.default_jobs}, i.e.
    [Domain.recommended_domain_count ()]) sets the worker-domain count
    used by the parallel backend; other backends record but ignore it.
    [pool] (default none) is a caller-owned shared {!Par.Pool} the
    parallel backend (and the analyses layered on the engine — fault
    spans, certification) borrows instead of spawning a transient pool
    per search: the amortization point for a long-lived service. When
    given, it also supplies the default [jobs]; the caller keeps
    ownership and must not run two analyses over it concurrently.
    [storage] (default [Auto]) picks the visited-set representation for
    the lazy/parallel backends; see {!storage}. [packed_keys] (default
    [false]) keys states by their bit-packed {!Codec} code instead of
    the dense mixed-radix id: decode becomes shift/mask instead of
    division, at the cost of forcing [Probed] storage and making raw
    [node_key] values incomparable with dense-keyed engines (use
    {!decode_key}). [obs] (default {!Obs.Ctx.disabled}) receives the
    engine's metrics, trace events, and progress ticks — see the
    README's event schema. [guard] (default {!Rt.Guard.inert}) is the
    cooperative budget/cancellation point every search polls at
    wave/chunk boundaries; a tripped guard raises {!Interrupted} with a
    partial-progress record. [snapshots] (default [false]) makes those
    interrupts carry a resumable {!Rt.Snapshot.t} of the wavefront.
    [salt] (default [""]) is caller context — the CLI's canonical
    instance/flag spelling — folded into snapshot config hashes so a
    checkpoint cannot silently resume against a different model.
    @raise Space.Too_large for an eager engine over a bigger space.
    @raise Codec.Overflow when [packed_keys] and the packed layout
    exceeds one word.
    @raise Invalid_argument when [jobs <= 0], when [packed_keys] is
    combined with the eager backend or [Direct] storage, or when
    [Direct] is forced over a dense range above [2^30]. *)

val of_space : ?obs:Obs.Ctx.t -> Space.t -> t
(** Eager engine over an already-created space. *)

val backend : t -> backend
val backend_name : t -> string
val space : t -> Space.t
val env : t -> Guarded.Env.t
val max_states : t -> int

val jobs : t -> int
(** Worker-domain count used by the parallel backend ([1] for engines
    built via {!of_space}). *)

val pool : t -> Par.Pool.t option
(** The caller-owned shared pool this engine borrows, if any (see
    {!create}). *)

val obs : t -> Obs.Ctx.t
(** The engine's observability context. Analyses layered on the engine
    ({!Faultspan}, certification) record into the same context, so one
    [--metrics-out] snapshot covers the whole pipeline. *)

val guard : t -> Rt.Guard.t
(** The engine's cancellation/budget polling point. Analyses layered on
    the engine ({!Faultspan}, certification) poll the same guard, so one
    budget governs the whole pipeline. *)

val wants_snapshots : t -> bool
(** Whether interrupts should carry resumable snapshots (see
    {!create}). *)

val config_hash : t -> parts:string list -> string
(** Fingerprint of this engine's result-affecting configuration (codec
    layout, key representation, budget, [salt]) combined with
    caller-supplied [parts] such as action names. Backend and job count
    are excluded: checkpoints resume across both. *)

val codec : t -> Codec.t
(** The bit-layout codec sized from the engine's environment. *)

val packed_keys : t -> bool
(** Whether this engine keys states by packed codes (see {!create}). *)

val storage_name : t -> string
(** Resolved storage representation: ["csr"] (eager), ["direct"], or
    ["probed"]. *)

val storage_bytes : t -> int
(** Flat-storage footprint of the most recent lazy/parallel search:
    visited-table bytes plus the frontier queue's high-water bytes.
    [0] before any search and for the eager backend (whose CSR cost is
    reported by {!Tsys}). Divide by [region.explored] for the
    bytes-per-state figure the E19 experiment reports. *)

val encode_key : t -> Guarded.State.t -> int
(** The key this engine files a state under — [Space.encode] for dense
    engines, [Codec.encode_packed] under [packed_keys]. *)

val decode_key : t -> int -> Guarded.State.t
(** Decode an engine key (as found in [node_key]) to a fresh state. *)

val decode_key_into : t -> int -> Guarded.State.t -> unit
(** Allocation-free {!decode_key} into a caller buffer. *)

val make_visited : t -> Flatset.t
(** A fresh visited table following the engine's storage policy
    (direct-mapped over small dense ranges, open-addressing otherwise).
    Layered searches built on the engine ({!Faultspan}) use this so one
    [storage] knob governs the whole pipeline. *)

exception Region_overflow of int
(** Raised when a lazy exploration visits more states than the engine's
    budget; carries the number of states visited so far. *)

(** Partial progress handed back when a search stops cooperatively —
    the guard's budget tripped or cancellation was requested. When the
    engine was created with [~snapshots:true], [snapshot] holds a
    resumable checkpoint of the wavefront (lazy/parallel region and
    span searches only; the eager CSR build and streaming scans carry
    [None]). *)
type interrupt = {
  reason : Rt.Cancel.reason;
  states_seen : int;
  frontier_size : int;
  snapshot : Rt.Snapshot.t option;
}

exception Interrupted of interrupt

(** Root sets for reachability queries. [All] and [Pred] enumerate the
    space (so they require it to fit the budget); [Seeds] works on spaces
    of any size. *)
type roots =
  | All
  | Pred of (Guarded.State.t -> bool)
  | Seeds of Guarded.State.t list

(** The region of interest for convergence checking: the subgraph induced
    on the reachable states where the target predicate does {e not} hold.
    Nodes are dense ints; [node_key.(v)] is the state's engine key — the
    mixed-radix code by default, the bit-packed code under [packed_keys]
    (decode with {!decode_key}). [terminal.(v)] says the state has no
    enabled action in the {e full} program. [explored] counts every state
    visited by the search, members or not. *)
type region = {
  graph : int Dgraph.Digraph.t;  (** edge labels are action indices *)
  node_key : int array;
  terminal : bool array;
  explored : int;
  node_of_key : int -> int;  (** [-1] for non-members *)
}

val region :
  ?resume:Rt.Snapshot.t ->
  t ->
  Guarded.Compile.program ->
  from:roots ->
  target:(Guarded.State.t -> bool) ->
  region
(** States reachable from [from] (paths may pass through target states),
    restricted to those violating [target], with the induced step graph.
    [resume] continues from a checkpoint written by an interrupted
    region search over the same configuration; the continuation (on the
    lazy or parallel backend, at any job count) reaches a result
    bit-identical to the uninterrupted run — the root set is taken from
    the snapshot, so [from] is ignored.
    @raise Region_overflow when a lazy search exceeds the budget.
    @raise Interrupted when the engine's guard trips.
    @raise Rt.Snapshot.Corrupt when [resume] has the wrong kind or a
    mismatched config hash, or on the eager backend. *)

val state_of_node : t -> region -> int -> Guarded.State.t
(** Decode a region node's state (fresh copy). *)

val iter_states : t -> (Guarded.State.t -> unit) -> unit
(** Visit every in-domain state (full sweep). The state is a shared
    buffer; copy it to retain it. @raise Region_overflow when the space
    exceeds a lazy engine's budget — use a reachability query instead. *)

val iter_reachable :
  t ->
  Guarded.Compile.program ->
  from:roots ->
  (Guarded.State.t -> unit) ->
  unit
(** Visit every state reachable from the roots, once each, in BFS order.
    The state is a shared buffer. @raise Region_overflow over budget. *)

val ball :
  Guarded.Env.t ->
  center:Guarded.State.t ->
  radius:int ->
  Guarded.State.t list
(** All in-domain states differing from [center] in at most [radius]
    variables — the paper's bounded-fault spans, useful as lazy seeds. *)
