(* Direct storage is int32: 4 bytes per slot of the dense range, with
   Int32.min_int marking absent slots (so value -1, the engines'
   non-member node id, stays representable). *)

type direct = {
  slots : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable dcount : int;
}

type t = Direct of direct | Probed of Par.Flattbl.t

let absent32 = Int32.min_int
let direct_max = 1 lsl 30

let direct ~size =
  if size < 0 || size > direct_max then
    invalid_arg
      (Printf.sprintf "Flatset.direct: size %d outside [0, 2^30]" size);
  let slots = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout size in
  Bigarray.Array1.fill slots absent32;
  Direct { slots; dcount = 0 }

let probed ?capacity () = Probed (Par.Flattbl.create ?capacity ())
let kind = function Direct _ -> `Direct | Probed _ -> `Probed

let[@inline] in_range d key = key >= 0 && key < Bigarray.Array1.dim d.slots

let mem t key =
  match t with
  | Direct d -> in_range d key && Bigarray.Array1.unsafe_get d.slots key <> absent32
  | Probed p -> Par.Flattbl.mem p key

let find_def t key default =
  match t with
  | Direct d ->
      if not (in_range d key) then default
      else
        let v = Bigarray.Array1.unsafe_get d.slots key in
        if v = absent32 then default else Int32.to_int v
  | Probed p -> Par.Flattbl.find_def p key default

let add t key v =
  match t with
  | Direct d ->
      if not (in_range d key) then
        invalid_arg "Flatset.add: key outside the direct range";
      let v32 = Int32.of_int v in
      if Int32.to_int v32 <> v || v32 = absent32 then
        invalid_arg "Flatset.add: value outside the int32 range";
      if Bigarray.Array1.unsafe_get d.slots key = absent32 then
        d.dcount <- d.dcount + 1;
      Bigarray.Array1.unsafe_set d.slots key v32
  | Probed p -> Par.Flattbl.add p key v

let remove t key =
  match t with
  | Direct d ->
      if in_range d key && Bigarray.Array1.unsafe_get d.slots key <> absent32
      then begin
        d.dcount <- d.dcount - 1;
        Bigarray.Array1.unsafe_set d.slots key absent32
      end
  | Probed p -> Par.Flattbl.remove p key

let length = function
  | Direct d -> d.dcount
  | Probed p -> Par.Flattbl.length p

let iter t f =
  match t with
  | Direct d ->
      for key = 0 to Bigarray.Array1.dim d.slots - 1 do
        let v = Bigarray.Array1.unsafe_get d.slots key in
        if v <> absent32 then f key (Int32.to_int v)
      done
  | Probed p -> Par.Flattbl.iter p f

let bytes = function
  | Direct d -> 4 * Bigarray.Array1.dim d.slots
  | Probed p -> Par.Flattbl.bytes p
